// Certificate-corpus audit: reuse clustering + Heninger-style batch-GCD
// shared-prime detection over a pile of certificates (the §5.3 analyses as
// a standalone tool).
//
//   ./build/examples/cert_audit
#include <cstdio>
#include <map>
#include <set>

#include "crypto/batch_gcd.hpp"
#include "crypto/keycache.hpp"
#include "crypto/x509.hpp"
#include "report/report.hpp"
#include "util/date.hpp"
#include "util/hex.hpp"

using namespace opcua_study;

int main() {
  std::puts("== certificate corpus audit ==\n");

  // Build a corpus: 20 healthy devices, one distributor image copied onto
  // 6 devices, and 3 devices with a shared prime (broken RNG).
  KeyFactory keys(777, "");
  std::vector<Bytes> corpus;
  auto make_cert = [&](const RsaKeyPair& kp, const std::string& cn, const std::string& org,
                       HashAlgorithm h) {
    CertificateSpec spec;
    spec.subject = {cn, org, "DE"};
    spec.signature_hash = h;
    spec.application_uri = "urn:audit:" + cn;
    spec.not_before_days = days_from_civil({2019, 2, 1});
    spec.not_after_days = days_from_civil({2029, 2, 1});
    return x509_create(spec, kp.pub, kp.priv);
  };

  for (int i = 0; i < 20; ++i) {
    corpus.push_back(make_cert(keys.get("healthy-" + std::to_string(i), 512),
                               "device-" + std::to_string(i), "Healthy GmbH",
                               i % 2 ? HashAlgorithm::sha256 : HashAlgorithm::sha1));
  }
  const Bytes image_cert = make_cert(keys.get("image", 512), "factory-image",
                                     "CopyPaste Industrial", HashAlgorithm::sha1);
  for (int i = 0; i < 6; ++i) corpus.push_back(image_cert);
  {
    Rng rng(42);
    const Bignum shared_p = Bignum::generate_prime(rng, 256, 8);
    for (int i = 0; i < 3; ++i) {
      const Bignum q = Bignum::generate_prime(rng, 256, 8);
      RsaPrivateKey priv;
      priv.p = shared_p;
      priv.q = q;
      priv.n = shared_p * q;
      priv.e = Bignum{65537};
      const Bignum phi = (shared_p - Bignum{1}) * (q - Bignum{1});
      priv.d = Bignum::mod_inverse(priv.e, phi);
      priv.dp = priv.d % (shared_p - Bignum{1});
      priv.dq = priv.d % (q - Bignum{1});
      priv.qinv = Bignum::mod_inverse(q, shared_p);
      corpus.push_back(make_cert({priv.public_key(), priv}, "weakrng-" + std::to_string(i),
                                 "BadEntropy AG", HashAlgorithm::sha256));
    }
  }
  std::printf("corpus: %zu certificates\n\n", corpus.size());

  // 1. Reuse clustering by thumbprint.
  std::map<std::string, std::pair<int, std::string>> clusters;
  for (const auto& der : corpus) {
    const Certificate cert = x509_parse(der);
    auto& cluster = clusters[to_hex(x509_thumbprint(der))];
    cluster.first++;
    cluster.second = cert.subject.organization;
  }
  std::puts("certificate reuse:");
  for (const auto& [fp, info] : clusters) {
    if (info.first < 2) continue;
    std::printf("  %s... on %d devices (org: %s)  <-- copied key material\n",
                fp.substr(0, 16).c_str(), info.first, info.second.c_str());
  }

  // 2. Shared-prime scan (deduplicated moduli).
  std::set<std::string> seen;
  std::vector<Bignum> moduli;
  std::vector<std::string> owner;
  for (const auto& der : corpus) {
    const Certificate cert = x509_parse(der);
    if (seen.insert(cert.public_key.n.to_hex()).second) {
      moduli.push_back(cert.public_key.n);
      owner.push_back(cert.subject.common_name);
    }
  }
  const BatchGcdResult result = batch_gcd(moduli);
  std::puts("\nshared-prime scan (batch GCD):");
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    if (result.shared_factor[i].is_zero()) continue;
    std::printf("  %-12s shares prime %s... -> private key RECOVERABLE\n", owner[i].c_str(),
                result.shared_factor[i].to_hex().substr(0, 16).c_str());
  }
  std::printf("\n%zu of %zu distinct moduli compromised by shared primes\n",
              result.affected(), moduli.size());
  return 0;
}
