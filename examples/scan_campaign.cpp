// Run a miniature Internet-wide measurement end to end: build a small
// synthetic Internet, sweep it zmap-style, grab every OPC UA host plus an
// MQTT-over-TLS broker fleet through the protocol-plugin registry, and
// print a security assessment — the whole paper pipeline in one file.
//
// Telemetry rides along: the run always emits TELEMETRY_report.json and
// TELEMETRY_metrics.prom (the deterministic metrics plane), --trace dumps
// the flight recorder to TELEMETRY_trace.jsonl, and --verbose raises the
// log sink to debug.
//
//   ./build/examples/scan_campaign [scale] [--verbose] [--trace]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "assess/assess.hpp"
#include "cli.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "population/deploy.hpp"
#include "report/report.hpp"
#include "report/telemetry.hpp"
#include "scanner/campaign.hpp"
#include "scanner/dataset.hpp"
#include "study/study.hpp"

using namespace opcua_study;

int main(int argc, char** argv) {
  const examples::Cli cli(argc, argv, {"trace"});
  const int hosts = static_cast<int>(cli.number_or(0, 24));
  obs::set_enabled(true);
  obs::set_trace_enabled(cli.flag("trace"));
  std::printf("== miniature scan campaign over %d OPC UA hosts ==\n", hosts);

  // Build a small population: a mix of the paper's archetypes.
  PopulationPlan plan;
  Rng rng(2024);
  for (int i = 0; i < hosts; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "mini";
    host.manufacturer = i % 3 == 0 ? "Bachmann" : (i % 3 == 1 ? "Wago" : "other");
    host.application_uri = (i % 3 == 0   ? "urn:bachmann:m1com:mini-"
                            : i % 3 == 1 ? "urn:wago:codesys:mini-"
                                         : "urn:generic:opcua:mini-") +
                           std::to_string(i);
    host.product_uri = "http://example.org/mini";
    host.application_name = "mini host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 5);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 1, 1});
    switch (i % 4) {
      case 0:  // None-only with anonymous access (the paper's worst case)
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.certificate.signature_hash = HashAlgorithm::sha1;
        host.outcome = PlannedOutcome::accessible;
        host.classification = PlannedClass::production;
        host.variable_count = 25;
        host.method_count = 5;
        host.readable_fraction = 1.0;
        host.writable_fraction = 0.2;
        host.executable_fraction = 0.9;
        break;
      case 1:  // deprecated policies, credentials required
        host.modes = {MessageSecurityMode::None, MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::None, SecurityPolicy::Basic128Rsa15};
        host.tokens = {UserTokenType::UserName};
        host.certificate.signature_hash = HashAlgorithm::sha1;
        host.outcome = PlannedOutcome::auth_rejected;
        break;
      case 2:  // strong policy but weak certificate (the paper's 409)
        host.modes = {MessageSecurityMode::None, MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::None, SecurityPolicy::Basic256Sha256};
        host.tokens = {UserTokenType::UserName};
        host.certificate.signature_hash = HashAlgorithm::sha1;
        host.outcome = PlannedOutcome::auth_rejected;
        break;
      default:  // locked down properly
        host.modes = {MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::Basic256Sha256};
        host.tokens = {UserTokenType::UserName, UserTokenType::Certificate};
        host.certificate.signature_hash = HashAlgorithm::sha256;
        host.certificate.key_bits = 2048;
        host.trust_all_client_certs = false;
        host.outcome = PlannedOutcome::channel_rejected;
        break;
    }
    plan.hosts.push_back(std::move(host));
  }
  // A broker fleet on port 8883 rides along: the campaign below sweeps both
  // protocol families in one pass through the plugin registry.
  const int brokers = std::max(1, hosts / 3);
  add_mqtt_population(plan, 2024, brokers);

  DeployConfig deploy_config;
  deploy_config.seed = 11;
  deploy_config.dummy_hosts = 500;  // non-OPC-UA port-4840 noise
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  Network net;
  deployer.deploy_week(net, 7);

  KeyFactory keys(11, "");
  CampaignConfig campaign_config;
  campaign_config.seed = 3;
  campaign_config.protocols = {{ProtocolId::opcua, 4840},
                               {ProtocolId::mqtt_tls, kMqttTlsDefaultPort}};
  campaign_config.grabber.client = make_scanner_identity(11, keys);
  Campaign campaign(campaign_config, net);
  const ScanSnapshot snapshot = campaign.run(7);

  std::map<ProtocolId, std::size_t> by_protocol;
  for (const auto& host : snapshot.hosts) ++by_protocol[host.protocol];
  std::printf("probes: %llu, port open: %llu, speakers: %zu (",
              static_cast<unsigned long long>(snapshot.probes_sent),
              static_cast<unsigned long long>(snapshot.tcp_open_count), snapshot.hosts.size());
  bool first = true;
  for (const auto& [protocol, count] : by_protocol) {
    std::printf("%s%s %zu", first ? "" : ", ", protocol_name(protocol).c_str(), count);
    first = false;
  }
  std::printf(")\n");

  ModePolicyStats modes = assess_modes_policies(snapshot);
  AuthStats auth = assess_auth(snapshot);
  CertConformanceStats certs = assess_certificates(snapshot);

  TextTable summary;
  summary.set_header({"assessment", "hosts"});
  summary.add_row({"servers found", fmt_int(modes.servers)});
  summary.add_row({"no security at all", fmt_int(modes.none_only)});
  summary.add_row({"deprecated policy as maximum", fmt_int(modes.deprecated_max)});
  summary.add_row({"certificate weaker than policy", fmt_int(certs.weaker_than_max)});
  summary.add_row({"anonymous access offered", fmt_int(auth.anonymous_offered)});
  summary.add_row({"publicly accessible", fmt_int(auth.accessible)});
  summary.add_row({"client certificate rejected", fmt_int(auth.channel_rejected)});
  std::fputs(summary.str().c_str(), stdout);

  // Release the anonymized dataset, like the paper does.
  Anonymizer anonymizer;
  const std::string jsonl = to_release_jsonl(snapshot, anonymizer);
  std::printf("\nanonymized dataset release (first line of %d):\n%s\n",
              static_cast<int>(snapshot.hosts.size()),
              jsonl.substr(0, jsonl.find('\n')).c_str());

  // Telemetry report: the grab_outcome totals reconcile exactly with the
  // snapshot's per-host ProbeOutcome grades (pinned by test_observability).
  const obs::MetricsSample sample = obs::collect();
  TelemetryReportOptions report_options;
  report_options.campaign_label = "scan_campaign-example";
  write_telemetry_report("TELEMETRY_report.json", sample, report_options);
  write_prometheus_textfile("TELEMETRY_metrics.prom", sample);
  std::printf("telemetry: %llu grabs kept -> TELEMETRY_report.json, TELEMETRY_metrics.prom\n",
              static_cast<unsigned long long>(sample[obs::Metric::grab_outcome].total()));
  if (cli.flag("trace")) {
    if (obs::dump_trace("TELEMETRY_trace.jsonl")) {
      std::printf("flight recorder: %zu events -> TELEMETRY_trace.jsonl\n",
                  obs::trace_collect().size());
    }
  }
  return 0;
}
