// The always-on study service, end to end: register a campaign history
// in the CampaignCatalog, keep it resident, and answer JSON queries over
// the concurrent QueryService.
//
// Builds the same seeded 4-campaign history as series_report (the
// recorded study campaign plus three deterministic evolution steps, each
// cached next to the base with its posture sketch sidecar), registers
// every member with the catalog, wires them into a resident series, and
// then runs a battery of queries through an 4-worker pool — catalog
// inventory, cohort-filtered posture cuts, the paper's study summary, a
// pairwise diff, and the longitudinal series analysis. Each query is
// also executed synchronously and compared byte-for-byte against the
// pooled response: the service's determinism contract, demonstrated.
//
//   ./build/study_service [base-file [member-count]] [--verbose]
//   ./build/study_service -- e.g. "kind=posture campaign=m0 deficient=1"
//     (a trailing query string runs instead of the demo battery)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "study/followup.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

using namespace opcua_study;

namespace {

/// Must match bench::kStudySeed (bench/bench_common.hpp) — the seed the
/// figure benches record the campaign cache under.
constexpr std::uint64_t kBaseSeed = 20200209;

/// Same resolution order as the bench suite's snapshot_cache_path().
std::string default_base_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_SNAPSHOT_CACHE")) return env;
  return ".opcua_study_snapshots.bin";
}

/// Same derivation as series_report, so the two examples share the
/// generated member cache.
std::uint64_t member_file_seed(const SnapshotMeta& base_final, std::uint64_t model_seed,
                               std::size_t step) {
  return hash64("series-member-of:" + std::to_string(kBaseSeed) + ":" +
                std::to_string(base_final.date_days) + ":" +
                std::to_string(base_final.host_count) + ":" + std::to_string(model_seed) + ":" +
                std::to_string(step));
}

}  // namespace

int main(int argc, char** argv) {
  const examples::Cli cli(argc, argv);
  const std::string base_path = cli.positional_or(0, default_base_path());
  const std::size_t member_count = static_cast<std::size_t>(cli.number_or(1, 4));
  obs::set_enabled(true);

  SnapshotMeta base_final;
  try {
    const SnapshotReader base(base_path, kBaseSeed);
    if (base.snapshots().empty()) {
      std::printf("recorded base campaign at %s holds no measurements\n", base_path.c_str());
      return 0;
    }
    base_final = base.snapshots().back();
  } catch (const SnapshotError& e) {
    std::printf("cannot open recorded base campaign: %s\n"
                "run any bench binary first (it records the dataset), e.g. "
                "./build/fig2_population\n",
                e.what());
    return 0;
  }

  // Generate (or reuse) the follow-up members, then register everything.
  svc::CampaignCatalog catalog;
  std::vector<std::string> member_names;
  try {
    FollowupConfig config;
    config.campaign_label = "";  // derive followup-<k> per step
    CampaignSet set;
    set.add_file(base_path, kBaseSeed);
    catalog.register_campaign("m0", base_path, kBaseSeed);
    member_names.push_back("m0");
    for (std::size_t step = 1; step < member_count; ++step) {
      const std::string path = ".opcua_study_series_m" + std::to_string(step) + ".bin";
      const std::uint64_t file_seed = member_file_seed(base_final, config.seed, step);
      bool cached = true;
      try {
        const SnapshotReader probe(path, file_seed);
      } catch (const SnapshotError&) {
        cached = false;
      }
      if (cached) {
        set.add_file(path, file_seed);
      } else {
        std::printf("generating series member %zu at %s (deterministic evolution model)...\n",
                    step, path.c_str());
        extend_series(set, config, path, file_seed);
      }
      const std::string name = "m" + std::to_string(step);
      catalog.register_campaign(name, path, file_seed);
      member_names.push_back(name);
    }
    catalog.register_series("history", member_names);
  } catch (const SnapshotError& e) {
    obs::logf(obs::LogLevel::error, "catalog registration failed: %s", e.what());
    return 1;
  }

  svc::QueryServiceOptions service_options;
  service_options.workers = 4;
  svc::QueryService service(catalog, service_options);

  // A trailing free-form query replaces the demo battery.
  std::vector<std::string> query_texts;
  if (cli.positional().size() > 2) {
    std::string text;
    for (std::size_t i = 2; i < cli.positional().size(); ++i) {
      if (!text.empty()) text += ' ';
      text += cli.positional()[i];
    }
    query_texts.push_back(text);
  } else {
    query_texts = {
        "kind=catalog",
        "kind=posture campaign=m0 as_limit=4",
        "kind=posture campaign=m0 deficient=1",
        "kind=study campaign=m0",
        "kind=diff base=m0 followup=m1",
        "kind=series series=history",
    };
  }

  std::printf("== study service: %zu campaigns resident, %zu queries over %d workers ==\n\n",
              member_names.size(), query_texts.size(), service_options.workers);

  // Submit the whole battery to the pool, then compare each pooled
  // response against a synchronous execution of the same request — the
  // byte-determinism contract in action.
  std::vector<svc::QueryRequest> requests;
  std::vector<std::future<svc::QueryResponse>> futures;
  for (const std::string& text : query_texts) {
    try {
      requests.push_back(svc::parse_query_request(text));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bad query '%s': %s\n", text.c_str(), e.what());
      return 2;
    }
    futures.push_back(service.submit(requests.back()));
  }
  bool all_deterministic = true;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const svc::QueryResponse pooled = futures[i].get();
    const svc::QueryResponse inline_run = service.execute(requests[i]);
    const bool same = pooled.body == inline_run.body;
    all_deterministic = all_deterministic && same;
    std::printf("query: %s\n  status=%s bytes=%zu pooled==inline: %s\n", query_texts[i].c_str(),
                pooled.rejected ? "rejected" : (pooled.ok ? "ok" : "error"), pooled.body.size(),
                same ? "yes" : "NO");
    if (query_texts.size() == 1 || requests[i].kind == svc::QueryRequest::Kind::catalog) {
      std::printf("  %s\n", pooled.body.c_str());
    }
  }
  if (!all_deterministic) {
    obs::logf(obs::LogLevel::error, "pooled and inline responses diverged");
    return 1;
  }

  const obs::MetricsSample sample = obs::collect();
  std::printf("\nservice counters: %llu queries, %llu cache hits, %llu cache misses, "
              "peak resident %llu bytes\n",
              static_cast<unsigned long long>(sample[obs::Metric::svc_queries].total()),
              static_cast<unsigned long long>(sample[obs::Metric::svc_cache_hits].total()),
              static_cast<unsigned long long>(sample[obs::Metric::svc_cache_misses].total()),
              static_cast<unsigned long long>(sample[obs::Metric::svc_resident_bytes].total()));

  // Persist the last response (the series analysis in the demo battery).
  const std::string json_path = "SVC_report.json";
  std::ofstream report(json_path, std::ios::trunc);
  report << service.execute(requests.back()).body;
  std::printf("last response written to %s\n", json_path.c_str());
  return 0;
}
