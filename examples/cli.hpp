// Shared command-line handling for the example programs.
//
// Every example takes the same tiny grammar: a few positional operands
// plus "--" flags, with "--verbose" raising the log sink to debug. Each
// example used to hand-roll the same argv loop; this helper owns it, so
// flag handling (and its error behaviour) stays identical across the
// example suite.
//
// Unknown flags are rejected with exit code 2 — a typo like "--verbsoe"
// fails loudly instead of being silently swallowed as a positional.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "obs/log.hpp"

namespace opcua_study::examples {

class Cli {
 public:
  /// Parse argv. `known_flags` lists the extra flags this example accepts
  /// (without the "--" prefix); "--verbose" is always accepted and wired
  /// to the debug log level here.
  Cli(int argc, char** argv, std::initializer_list<const char*> known_flags = {}) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string name = arg.substr(2);
        bool known = name == "verbose";
        for (const char* flag : known_flags) known = known || name == flag;
        if (!known) {
          std::fprintf(stderr, "%s: unknown flag --%s\n", argv[0], name.c_str());
          std::exit(2);
        }
        flags_.push_back(name);
      } else {
        positional_.push_back(arg);
      }
    }
    if (flag("verbose")) obs::set_log_level(obs::LogLevel::debug);
  }

  bool flag(const std::string& name) const {
    for (const std::string& f : flags_) {
      if (f == name) return true;
    }
    return false;
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Positional operand `index`, or `fallback` when absent.
  std::string positional_or(std::size_t index, const std::string& fallback) const {
    return index < positional_.size() ? positional_[index] : fallback;
  }

  /// Positional operand `index` as a number, or `fallback` when absent.
  /// A malformed number fails loudly (exit 2) instead of parsing as 0.
  long number_or(std::size_t index, long fallback) const {
    if (index >= positional_.size()) return fallback;
    const std::string& text = positional_[index];
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
      std::fprintf(stderr, "expected a number, got '%s'\n", text.c_str());
      std::exit(2);
    }
    return value;
  }

 private:
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace opcua_study::examples
