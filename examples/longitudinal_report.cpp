// Longitudinal operator report over a recorded campaign dataset: streams
// the snapshots cached by the bench suite through the shared analysis
// library and summarizes how (little) the security posture changed — the
// paper's §5.5 told as a report. The dataset is never materialized in
// RAM: the aggregator consumes it chunk by chunk.
//
//   ./build/longitudinal_report [snapshot-file]
#include <cstdio>

#include "analysis/analysis.hpp"
#include "report/report.hpp"
#include "scanner/snapshot_io.hpp"
#include "util/date.hpp"

using namespace opcua_study;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : ".opcua_study_snapshots.bin";
  StudyAnalysis analysis;
  try {
    AnalysisOptions options;
    options.threads = 0;
    analysis = analyze_file(path, 20200209, options);
  } catch (const SnapshotError& e) {
    std::printf("cannot analyze recorded campaign: %s\n"
                "run any bench binary first (it records the dataset), e.g. "
                "./build/fig3_modes_policies\n",
                e.what());
    return 0;
  }
  const LongitudinalStats& stats = analysis.longitudinal;
  if (stats.weeks.empty()) {
    std::printf("recorded campaign at %s holds no measurements\n", path.c_str());
    return 0;
  }
  std::printf("== longitudinal security report (%zu measurements) ==\n\n", stats.weeks.size());

  TextTable table;
  table.set_header({"measurement", "servers", "deficient", "trend"});
  for (const auto& week : stats.weeks) {
    table.add_row({format_date(civil_from_days(week.date_days)), fmt_int(week.servers),
                   fmt_double(week.deficient_pct, 1) + "%",
                   render_bar(week.deficient_pct - 85, 10, 24)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nno longitudinal improvement: deficiency stayed at %.1f%% +/- %.1f over the "
              "whole campaign.\n\n",
              stats.deficiency_avg, stats.deficiency_std);

  std::printf("certificate hygiene:\n");
  std::printf("  %zu distinct certificates observed\n", stats.total_distinct_certificates);
  std::printf("  %zu SHA-1 certificates were *created after* SHA-1 policies were deprecated "
              "(2017)\n",
              stats.sha1_after_2017);
  std::printf("  %zu of them since 2019\n", stats.sha1_after_2019);
  std::printf("  %zu certificate renewals on static IPs — only %d replaced SHA-1, %d even "
              "downgraded\n",
              stats.renewals.size(), stats.sha1_upgrades, stats.downgrades);

  const int first = stats.weeks.front().reuse_devices;
  const int last = stats.weeks.back().reuse_devices;
  std::printf("\ncertificate copying continues: the distributor fleet sharing one private key "
              "grew from %d to %d devices during the campaign.\n",
              first, last);

  const ScanQualityStats& quality = analysis.scan_quality;
  if (quality.faulted > 0) {
    std::printf("\nscan quality: %llu of %llu records saw network faults (%llu events, "
                "%llu retries); %llu recovered to complete (%.1f%%), %llu truncated, "
                "%llu degraded.\n",
                static_cast<unsigned long long>(quality.faulted),
                static_cast<unsigned long long>(quality.hosts),
                static_cast<unsigned long long>(quality.fault_events),
                static_cast<unsigned long long>(quality.retries),
                static_cast<unsigned long long>(quality.recovered),
                100.0 * quality.recovery_rate,
                static_cast<unsigned long long>(quality.truncated),
                static_cast<unsigned long long>(quality.degraded));
  }
  return 0;
}
