// Operator tool: point the assessor at a single OPC UA server and get a
// security report — the "assessment tools assist operators" use case the
// paper cites (Roepert et al.). Demonstrates the grabber + assessment on
// one host instead of the whole Internet.
//
//   ./build/examples/assess_server [none|deprecated|weakcert|good]
#include <cstdio>
#include <cstring>

#include "assess/assess.hpp"
#include "crypto/x509.hpp"
#include "netsim/opcua_service.hpp"
#include "report/report.hpp"
#include "scanner/grabber.hpp"
#include "study/study.hpp"

using namespace opcua_study;

namespace {

ServerConfig make_profile(const std::string& profile, const RsaKeyPair& keys) {
  ServerConfig config;
  config.identity.application_uri = "urn:assess:target";
  config.identity.application_name = "assessment target (" + profile + ")";
  auto space = std::make_shared<AddressSpace>();
  const std::uint16_t ns = space->add_namespace("urn:plant:energy:substation");
  space->add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Feeder");
  space->add_variable(NodeId(ns, 2), NodeId(ns, 1), "EnergyMeter_kWh", Variant{1234.5},
                      access_level::kCurrentRead | access_level::kCurrentWrite);
  space->add_method(NodeId(ns, 3), NodeId(ns, 1), "AckAlarm", true);
  config.address_space = space;

  HashAlgorithm cert_hash = HashAlgorithm::sha256;
  EndpointConfig ep;
  ep.url = "opc.tcp://10.1.0.1:4840/";
  if (profile == "none") {
    ep.token_types = {UserTokenType::Anonymous};
    config.endpoints.push_back(ep);
  } else if (profile == "deprecated") {
    config.endpoints.push_back(ep);
    ep.mode = MessageSecurityMode::SignAndEncrypt;
    ep.policy = SecurityPolicy::Basic128Rsa15;
    cert_hash = HashAlgorithm::sha1;
    config.endpoints.push_back(ep);
  } else if (profile == "weakcert") {
    ep.mode = MessageSecurityMode::SignAndEncrypt;
    ep.policy = SecurityPolicy::Basic256Sha256;
    ep.token_types = {UserTokenType::UserName};
    cert_hash = HashAlgorithm::sha1;  // strong policy, SHA-1 certificate
    config.endpoints.push_back(ep);
  } else {  // good
    ep.mode = MessageSecurityMode::SignAndEncrypt;
    ep.policy = SecurityPolicy::Basic256Sha256;
    ep.token_types = {UserTokenType::UserName};
    config.endpoints.push_back(ep);
  }
  CertificateSpec spec;
  spec.subject = {"assess-target", "Plant Org", "DE"};
  spec.signature_hash = cert_hash;
  spec.application_uri = config.identity.application_uri;
  spec.not_before_days = days_from_civil({2019, 8, 1});
  spec.not_after_days = days_from_civil({2029, 8, 1});
  config.certificates = {x509_create(spec, keys.pub, keys.priv)};
  config.private_keys = {keys.priv};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string profile = argc > 1 ? argv[1] : "deprecated";
  std::printf("== assessing a single server (profile: %s) ==\n\n", profile.c_str());

  Rng rng(5150);
  const RsaKeyPair server_keys = rsa_generate(rng, 1024, 8);
  Network net;
  const Ipv4 ip = make_ipv4(10, 1, 0, 1);
  net.listen(ip, kOpcUaDefaultPort,
             make_opcua_factory(std::make_shared<Server>(make_profile(profile, server_keys), 1)));

  KeyFactory keys(5150, "");
  GrabberConfig grabber_config;
  grabber_config.client = make_scanner_identity(5150, keys);
  Grabber grabber(grabber_config, net, 1);
  const HostScanRecord record = grabber.grab(ip, kOpcUaDefaultPort);

  if (!record.speaks_opcua) {
    std::puts("target does not speak OPC UA");
    return 1;
  }

  TextTable report;
  report.set_header({"check", "finding", "verdict"});
  const SecurityPolicy max_policy = strongest_policy(record);
  MessageSecurityMode max_mode = MessageSecurityMode::None;
  for (const auto mode : record.advertised_modes()) {
    if (security_mode_rank(mode) > security_mode_rank(max_mode)) max_mode = mode;
  }
  report.add_row({"strongest security mode", security_mode_name(max_mode),
                  max_mode == MessageSecurityMode::None ? "FAIL: no communication security" : "ok"});
  report.add_row({"strongest security policy", std::string(policy_info(max_policy).name),
                  policy_info(max_policy).deprecated ? "FAIL: deprecated since 2017"
                  : policy_info(max_policy).secure  ? "ok"
                                                    : "FAIL: no security"});
  if (const auto cert = primary_certificate(record)) {
    const CertConformance conf =
        classify_certificate(max_policy, cert->signature_hash, cert->key_bits());
    report.add_row({"certificate",
                    hash_name(cert->signature_hash) + " / " + std::to_string(cert->key_bits()) +
                        " bit",
                    conf == CertConformance::conformant ? "ok"
                    : conf == CertConformance::too_weak ? "FAIL: weaker than announced policy"
                                                        : "WARN: stronger than policy allows"});
  }
  report.add_row({"anonymous access", record.anonymous_offered ? "offered" : "not offered",
                  record.anonymous_offered ? "FAIL: disable anonymous authentication" : "ok"});
  if (record.session == SessionOutcome::accessible) {
    int writable = 0;
    for (const auto& node : record.nodes) writable += node.writable;
    report.add_row({"address space", std::to_string(record.nodes.size()) + " nodes traversed, " +
                                         std::to_string(writable) + " anonymously writable",
                    writable > 0 ? "FAIL: anonymous writes possible" : "WARN: readable"});
  }
  std::fputs(report.str().c_str(), stdout);

  std::printf("\noverall: %s\n",
              is_deficient(record)
                  ? "DEFICIENT configuration (would count towards the paper's 92%)"
                  : "no configuration deficits found");
  return 0;
}
