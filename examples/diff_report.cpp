// Cross-campaign differential report: where did the insecure deployments
// of the base campaign end up two years later?
//
// Diffs the recorded study campaign (cached by the bench suite) against a
// follow-up campaign. When no follow-up file exists yet, one is generated
// on the spot with the deterministic evolution model — the repo's own
// "PAM 2022" — and cached next to the base. Both campaigns stream chunk
// by chunk; neither is materialized.
//
//   ./build/diff_report [base-file [followup-file]] [--verbose]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "diff/diff.hpp"
#include "obs/log.hpp"
#include "report/report.hpp"
#include "study/followup.hpp"
#include "util/date.hpp"
#include "util/rng.hpp"

using namespace opcua_study;

namespace {

/// Must match bench::kStudySeed (bench/bench_common.hpp) — the seed the
/// figure benches record the campaign cache under.
constexpr std::uint64_t kBaseSeed = 20200209;

/// Same resolution order as the bench suite's snapshot_cache_path().
std::string default_base_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_SNAPSHOT_CACHE")) return env;
  return ".opcua_study_snapshots.bin";
}

/// The follow-up cache is stamped with a seed derived from the base
/// campaign's final measurement, so regenerating or swapping the base
/// invalidates a stale follow-up instead of silently diffing against it.
std::uint64_t followup_file_seed(const SnapshotMeta& base_final, std::uint64_t model_seed) {
  return hash64("followup-of:" + std::to_string(kBaseSeed) + ":" +
                std::to_string(base_final.date_days) + ":" +
                std::to_string(base_final.host_count) + ":" +
                std::to_string(base_final.probes_sent) + ":" + std::to_string(model_seed));
}

std::string fmt_count(std::uint64_t v) { return fmt_int(static_cast<long>(v)); }

std::string fmt_share(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return fmt_double(100.0 * static_cast<double>(part) / static_cast<double>(whole), 1) + "%";
}

void print_matrix(const char* title, const TransitionMatrix& m, const char* const buckets[3]) {
  std::printf("%s (rows: base, columns: follow-up)\n", title);
  TextTable table;
  table.set_header({"", buckets[0], buckets[1], buckets[2]});
  for (std::size_t from = 0; from < 3; ++from) {
    table.add_row({buckets[from], fmt_count(m.counts[from][0]), fmt_count(m.counts[from][1]),
                   fmt_count(m.counts[from][2])});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("  upgraded: %s, downgraded: %s, unchanged: %s\n\n",
              fmt_count(m.upgraded()).c_str(), fmt_count(m.downgraded()).c_str(),
              fmt_count(m.total() - m.upgraded() - m.downgraded()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const examples::Cli cli(argc, argv);
  const std::string base_path = cli.positional_or(0, default_base_path());
  const std::string followup_path = cli.positional_or(1, ".opcua_study_followup.bin");
  FollowupConfig followup_config;

  std::uint64_t followup_seed = 0;
  try {
    const SnapshotReader base(base_path, kBaseSeed);
    if (base.snapshots().empty()) {
      std::printf("recorded base campaign at %s holds no measurements\n", base_path.c_str());
      return 0;
    }
    followup_seed = followup_file_seed(base.snapshots().back(), followup_config.seed);
  } catch (const SnapshotError& e) {
    std::printf("cannot open recorded base campaign: %s\n"
                "run any bench binary first (it records the dataset), e.g. "
                "./build/fig2_population\n",
                e.what());
    return 0;
  }

  CampaignDiff diff;
  try {
    bool have_followup = true;
    try {
      // A follow-up generated from a different base fails the seed check
      // here and is regenerated.
      const SnapshotReader probe(followup_path, followup_seed);
    } catch (const SnapshotError&) {
      have_followup = false;
    }
    if (!have_followup) {
      std::printf("generating follow-up campaign %s from %s (deterministic evolution model)...\n",
                  followup_path.c_str(), base_path.c_str());
      const SnapshotReader base(base_path, kBaseSeed);
      SnapshotWriter writer(followup_path, followup_seed);
      run_followup_study_streamed(base, followup_config, writer);
    }
    DiffOptions options;
    options.threads = 0;
    diff = diff_files(base_path, kBaseSeed, followup_path, followup_seed, options);
  } catch (const SnapshotError& e) {
    // A failed generation or diff is a real error (the CI smoke step must
    // go red), unlike the friendly missing-base case above.
    obs::logf(obs::LogLevel::error, "campaign diff failed: %s", e.what());
    return 1;
  }

  std::printf("== cross-campaign differential report ==\n\n");
  std::printf("base:      %s (%s, %s hosts)\n",
              diff.base_week.campaign_label.empty() ? "<unlabeled>"
                                                    : diff.base_week.campaign_label.c_str(),
              format_date(civil_from_days(diff.base_week.date_days)).c_str(),
              fmt_count(diff.base_hosts).c_str());
  std::printf("follow-up: %s (%s, %s hosts)\n\n",
              diff.followup_week.campaign_label.empty()
                  ? "<unlabeled>"
                  : diff.followup_week.campaign_label.c_str(),
              format_date(civil_from_days(diff.followup_week.date_days)).c_str(),
              fmt_count(diff.followup_hosts).c_str());

  TextTable population;
  population.set_header({"population", "hosts", "share of base"});
  population.add_row({"re-identified by address", fmt_count(diff.matched_by_address),
                      fmt_share(diff.matched_by_address, diff.base_hosts)});
  population.add_row({"re-identified by certificate (IP churn)",
                      fmt_count(diff.matched_by_certificate),
                      fmt_share(diff.matched_by_certificate, diff.base_hosts)});
  population.add_row({"retired", fmt_count(diff.retired), fmt_share(diff.retired, diff.base_hosts)});
  population.add_row({"newly arrived", fmt_count(diff.arrived), "-"});
  std::fputs(population.str().c_str(), stdout);
  std::printf("\n");

  print_matrix("security-mode transitions", diff.mode_transitions, kModeBuckets);
  print_matrix("security-policy transitions", diff.policy_transitions, kPolicyBuckets);

  TextTable posture;
  posture.set_header({"posture change over matched hosts", "retained", "dropped", "adopted"});
  posture.add_row({"deprecated policies (Basic128Rsa15/Basic256)",
                   fmt_count(diff.deprecated_retained), fmt_count(diff.deprecated_dropped),
                   fmt_count(diff.deprecated_adopted)});
  posture.add_row({"anonymous access", fmt_count(diff.anonymous_retained),
                   fmt_count(diff.anonymous_dropped), fmt_count(diff.anonymous_adopted)});
  std::fputs(posture.str().c_str(), stdout);

  std::printf("\ncertificate evolution over matched hosts:\n");
  std::printf("  %s kept verbatim (the paper's copying behaviour), %s renewed, %s rotated, "
              "%s gained, %s lost, %s without certificates\n",
              fmt_count(diff.certs_verbatim).c_str(), fmt_count(diff.certs_renewed).c_str(),
              fmt_count(diff.certs_rotated).c_str(), fmt_count(diff.certs_gained).c_str(),
              fmt_count(diff.certs_lost).c_str(), fmt_count(diff.certs_absent).c_str());

  const std::uint64_t matched = diff.matched();
  std::printf("\nsecurity deficits (paper §5.2 definition):\n");
  std::printf("  %s of %s matched hosts stayed deficient (%s), %s remediated, %s regressed\n",
              fmt_count(diff.still_deficient).c_str(), fmt_count(matched).c_str(),
              fmt_share(diff.still_deficient, matched).c_str(), fmt_count(diff.remediated).c_str(),
              fmt_count(diff.regressed).c_str());

  const std::string json_path = "DIFF_report.json";
  std::ofstream out(json_path, std::ios::trunc);
  out << campaign_diff_json(diff);
  std::printf("\nmachine-readable report written to %s\n", json_path.c_str());
  return 0;
}
