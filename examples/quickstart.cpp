// Quickstart: bring up an OPC UA server with a secure and an insecure
// endpoint on the simulated network, connect with the client, and read a
// value over an encrypted channel.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "crypto/x509.hpp"
#include "netsim/opcua_service.hpp"
#include "opcua/client.hpp"
#include "util/date.hpp"

using namespace opcua_study;

namespace {

struct Identity {
  RsaKeyPair keys;
  Bytes cert;
};

Identity make_identity(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  Identity id;
  id.keys = rsa_generate(rng, 1024, 8);
  CertificateSpec spec;
  spec.subject = {name, "Quickstart Org", "DE"};
  spec.application_uri = "urn:quickstart:" + name;
  spec.not_before_days = days_from_civil({2020, 1, 1});
  spec.not_after_days = days_from_civil({2030, 1, 1});
  id.cert = x509_create(spec, id.keys.pub, id.keys.priv);
  return id;
}

}  // namespace

int main() {
  std::puts("== OPC UA study quickstart ==");

  // 1. A server with a plaintext and a Basic256Sha256 endpoint.
  const Identity server_id = make_identity("demo-server", 1);
  const Identity client_id = make_identity("demo-client", 2);

  ServerConfig config;
  config.identity.application_uri = "urn:quickstart:demo-server";
  config.identity.application_name = "Quickstart demo server";
  config.certificates = {server_id.cert};
  config.private_keys = {server_id.keys.priv};
  auto space = std::make_shared<AddressSpace>();
  const std::uint16_t ns = space->add_namespace("urn:quickstart:plant");
  space->add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Tank");
  space->add_variable(NodeId(ns, 2), NodeId(ns, 1), "m3InflowPerHour", Variant{17.5},
                      access_level::kCurrentRead);
  space->add_variable(NodeId(ns, 3), NodeId(ns, 1), "rSetFillLevel", Variant{80.0},
                      access_level::kCurrentRead | access_level::kCurrentWrite);
  config.address_space = space;

  EndpointConfig open_ep;
  open_ep.url = "opc.tcp://10.0.0.1:4840/";
  config.endpoints.push_back(open_ep);
  EndpointConfig secure_ep = open_ep;
  secure_ep.mode = MessageSecurityMode::SignAndEncrypt;
  secure_ep.policy = SecurityPolicy::Basic256Sha256;
  config.endpoints.push_back(secure_ep);

  // 2. Put it on the simulated Internet and connect.
  Network net;
  net.listen(make_ipv4(10, 0, 0, 1), kOpcUaDefaultPort,
             make_opcua_factory(std::make_shared<Server>(std::move(config), 42)));
  auto conn = net.connect(make_ipv4(10, 0, 0, 1), kOpcUaDefaultPort);

  ClientConfig client_config;
  client_config.certificate_der = client_id.cert;
  client_config.private_key = client_id.keys.priv;
  Client client(client_config, *conn, Rng(7));

  if (is_bad(client.hello("opc.tcp://10.0.0.1:4840/"))) return 1;

  // 3. Discover the endpoints (always possible on an insecure channel).
  if (is_bad(client.open_channel(SecurityPolicy::None, MessageSecurityMode::None))) return 1;
  std::vector<EndpointDescription> endpoints;
  client.get_endpoints("opc.tcp://10.0.0.1:4840/", endpoints);
  std::printf("server advertises %zu endpoints:\n", endpoints.size());
  Bytes server_cert;
  for (const auto& ep : endpoints) {
    std::printf("  mode=%-15s policy=%s\n", security_mode_name(ep.security_mode).c_str(),
                ep.security_policy_uri.c_str());
    if (!ep.server_certificate.empty()) server_cert = ep.server_certificate;
  }
  const Certificate parsed = x509_parse(server_cert);
  std::printf("server certificate: CN=%s, %s, %zu-bit RSA\n",
              parsed.subject.common_name.c_str(), hash_name(parsed.signature_hash).c_str(),
              parsed.key_bits());
  client.close_channel();

  // 4. Re-connect on the encrypted endpoint and read values.
  conn = net.connect(make_ipv4(10, 0, 0, 1), kOpcUaDefaultPort);
  Client secure_client(client_config, *conn, Rng(8));
  secure_client.hello("opc.tcp://10.0.0.1:4840/");
  if (is_bad(secure_client.open_channel(SecurityPolicy::Basic256Sha256,
                                        MessageSecurityMode::SignAndEncrypt, server_cert))) {
    std::puts("secure channel failed");
    return 1;
  }
  Client::SessionInfo info;
  secure_client.create_session(&info);
  secure_client.activate_session_anonymous();
  std::printf("secure channel up (Basic256Sha256 + SignAndEncrypt), "
              "server proof-of-possession signature valid: %s\n",
              info.server_signature_valid ? "yes" : "no");

  DataValue dv;
  secure_client.read(NodeId(ns, 2), AttributeId::Value, dv);
  std::printf("m3InflowPerHour = %s\n", dv.value.to_display_string().c_str());
  secure_client.read(NodeId(ns, 3), AttributeId::UserAccessLevel, dv);
  std::printf("rSetFillLevel anonymous access level = %s (1=read, 3=read+write)\n",
              dv.value.to_display_string().c_str());
  secure_client.close_session();
  secure_client.close_channel();
  std::puts("done.");
  return 0;
}
