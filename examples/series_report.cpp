// Campaign-series report: the longitudinal story across N campaigns —
// where did the insecure deployments of the base campaign end up, how
// long did remediation take, and who relapsed?
//
// Builds a seeded 4-campaign series: the recorded study campaign (cached
// by the bench suite) as member 0, extended three times with the
// deterministic evolution model via extend_series — the repo's own
// multi-year follow-up history. Each generated member is cached next to
// the base under a seed derived from the base campaign and the step, so
// regenerating or swapping the base invalidates stale members instead of
// silently analyzing against them. Every member streams chunk by chunk;
// none is materialized.
//
//   ./build/series_report [base-file [member-count]]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "obs/log.hpp"
#include "report/report.hpp"
#include "series/series.hpp"
#include "study/followup.hpp"
#include "util/date.hpp"
#include "util/rng.hpp"

using namespace opcua_study;

namespace {

/// Must match bench::kStudySeed (bench/bench_common.hpp) — the seed the
/// figure benches record the campaign cache under.
constexpr std::uint64_t kBaseSeed = 20200209;

/// Same resolution order as the bench suite's snapshot_cache_path().
std::string default_base_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_SNAPSHOT_CACHE")) return env;
  return ".opcua_study_snapshots.bin";
}

/// Cache seed of generated member `step`: derived from the base
/// campaign's final measurement and the step ordinal.
std::uint64_t member_file_seed(const SnapshotMeta& base_final, std::uint64_t model_seed,
                               std::size_t step) {
  return hash64("series-member-of:" + std::to_string(kBaseSeed) + ":" +
                std::to_string(base_final.date_days) + ":" +
                std::to_string(base_final.host_count) + ":" + std::to_string(model_seed) + ":" +
                std::to_string(step));
}

std::string fmt_count(std::uint64_t v) { return fmt_int(static_cast<long>(v)); }

std::string fmt_share(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return fmt_double(100.0 * static_cast<double>(part) / static_cast<double>(whole), 1) + "%";
}

std::string member_name(const SnapshotMeta& meta) {
  return meta.campaign_label.empty() ? "<unlabeled>" : meta.campaign_label;
}

}  // namespace

int main(int argc, char** argv) {
  const examples::Cli cli(argc, argv);
  const std::string base_path = cli.positional_or(0, default_base_path());
  const std::size_t member_count = static_cast<std::size_t>(cli.number_or(1, 4));
  FollowupConfig config;
  config.campaign_label = "";  // derive followup-<k> per step

  SnapshotMeta base_final;
  try {
    const SnapshotReader base(base_path, kBaseSeed);
    if (base.snapshots().empty()) {
      std::printf("recorded base campaign at %s holds no measurements\n", base_path.c_str());
      return 0;
    }
    base_final = base.snapshots().back();
  } catch (const SnapshotError& e) {
    std::printf("cannot open recorded base campaign: %s\n"
                "run any bench binary first (it records the dataset), e.g. "
                "./build/fig2_population\n",
                e.what());
    return 0;
  }

  SeriesAnalysis series;
  try {
    CampaignSet set;
    set.add_file(base_path, kBaseSeed);
    for (std::size_t step = 1; step < member_count; ++step) {
      const std::string path = ".opcua_study_series_m" + std::to_string(step) + ".bin";
      const std::uint64_t file_seed = member_file_seed(base_final, config.seed, step);
      bool cached = true;
      try {
        // A member generated from a different base or step fails the seed
        // check here and is regenerated.
        const SnapshotReader probe(path, file_seed);
      } catch (const SnapshotError&) {
        cached = false;
      }
      if (cached) {
        set.add_file(path, file_seed);
      } else {
        std::printf("generating series member %zu at %s (deterministic evolution model)...\n",
                    step, path.c_str());
        extend_series(set, config, path, file_seed);
      }
    }
    SeriesOptions options;
    options.threads = 0;
    series = analyze_series(set, options);
  } catch (const SnapshotError& e) {
    // A failed generation or analysis is a real error (the CI smoke step
    // must go red), unlike the friendly missing-base case above.
    obs::logf(obs::LogLevel::error, "campaign series analysis failed: %s", e.what());
    return 1;
  }

  std::printf("== campaign-series report (%zu members) ==\n\n", series.members.size());

  TextTable fleet;
  fleet.set_header({"member", "date", "hosts", "deficient", "matched", "arrived", "retired next"});
  for (const SeriesMemberStats& member : series.members) {
    fleet.add_row({member_name(member.meta),
                   format_date(civil_from_days(member.meta.date_days)),
                   fmt_count(member.hosts),
                   fmt_share(member.deficient, member.hosts),
                   fmt_count(member.matched_from_previous), fmt_count(member.arrived),
                   fmt_count(member.retired_into_next)});
  }
  std::fputs(fleet.str().c_str(), stdout);

  std::printf("\nper-step posture movement (matched hosts):\n");
  TextTable steps;
  steps.set_header({"step", "matched", "by cert", "mode up", "mode down", "policy up",
                    "policy down", "remediated", "regressed", "confidence"});
  for (std::size_t k = 0; k < series.steps.size(); ++k) {
    const CampaignDiff& step = series.steps[k];
    steps.add_row({member_name(step.base_week) + " -> " + member_name(step.followup_week),
                   fmt_count(step.matched()), fmt_count(step.matched_by_certificate),
                   fmt_count(step.mode_transitions.upgraded()),
                   fmt_count(step.mode_transitions.downgraded()),
                   fmt_count(step.policy_transitions.upgraded()),
                   fmt_count(step.policy_transitions.downgraded()),
                   fmt_count(step.remediated), fmt_count(step.regressed),
                   fmt_double(step.mean_match_confidence(), 3)});
  }
  std::fputs(steps.str().c_str(), stdout);

  std::printf("\nhost-identity timelines: %s total, %s spanning every member (%s)\n",
              fmt_count(series.timelines.total).c_str(),
              fmt_count(series.timelines.full_span).c_str(),
              fmt_share(series.timelines.full_span, series.timelines.total).c_str());
  TextTable lengths;
  lengths.set_header({"observed in", "timelines"});
  for (std::size_t len = 1; len < series.timelines.length_histogram.size(); ++len) {
    lengths.add_row({fmt_count(len) + (len == 1 ? " member" : " members"),
                     fmt_count(series.timelines.length_histogram[len])});
  }
  std::fputs(lengths.str().c_str(), stdout);

  std::printf("\ntime to remediation (hosts starting below a secure policy):\n");
  TextTable remediation;
  remediation.set_header({"campaigns until secure", "timelines", "share"});
  for (std::size_t k = 1; k < series.remediation.steps_to_secure.size(); ++k) {
    remediation.add_row({fmt_count(k), fmt_count(series.remediation.steps_to_secure[k]),
                         fmt_share(series.remediation.steps_to_secure[k],
                                   series.remediation.insecure_at_start)});
  }
  remediation.add_row({"never (while observed)", fmt_count(series.remediation.never_remediated),
                       fmt_share(series.remediation.never_remediated,
                                 series.remediation.insecure_at_start)});
  std::fputs(remediation.str().c_str(), stdout);
  std::printf("  %s of %s insecure starters remediated; %s later relapsed below secure\n",
              fmt_count(series.remediation.remediated).c_str(),
              fmt_count(series.remediation.insecure_at_start).c_str(),
              fmt_count(series.remediation.relapsed).c_str());

  std::printf("\nre-identification evidence over %s links: %s by address, %s by corroborated "
              "certificate, %s by bare certificate (mean confidence %s)\n",
              fmt_count(series.links_by_address + series.links_by_cert_corroborated +
                        series.links_by_cert_bare)
                  .c_str(),
              fmt_count(series.links_by_address).c_str(),
              fmt_count(series.links_by_cert_corroborated).c_str(),
              fmt_count(series.links_by_cert_bare).c_str(),
              fmt_double(series.mean_link_confidence(), 3).c_str());

  const std::string json_path = "SERIES_report.json";
  std::ofstream out(json_path, std::ios::trunc);
  out << series_analysis_json(series);
  std::printf("\nmachine-readable report written to %s\n", json_path.c_str());
  return 0;
}
