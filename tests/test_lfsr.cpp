// zmap-style LFSR sweep: maximal-period and full-coverage properties.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "scanner/lfsr.hpp"

namespace opcua_study {
namespace {

// Every width must produce a full permutation of [1, 2^w).
class LfsrPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrPeriod, FullPeriodPermutation) {
  const int width = GetParam();
  LfsrSequence lfsr(width, 0xdeadbeef);
  const std::uint32_t period = (std::uint32_t{1} << width) - 1;
  std::vector<bool> seen(static_cast<std::size_t>(period) + 1, false);
  for (std::uint32_t i = 0; i < period; ++i) {
    const std::uint32_t v = lfsr.next();
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, period);
    ASSERT_FALSE(seen[v]) << "repeated state " << v << " at step " << i;
    seen[v] = true;
  }
  // After a full period the sequence must cycle back to its start.
  LfsrSequence again(width, 0xdeadbeef);
  const std::uint32_t first = again.next();
  LfsrSequence check(width, 0xdeadbeef);
  for (std::uint32_t i = 0; i < period; ++i) check.next();
  EXPECT_EQ(check.next(), first);
}

INSTANTIATE_TEST_SUITE_P(Widths4To20, LfsrPeriod,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 18, 20));

TEST(Lfsr, RejectsBadWidths) {
  EXPECT_THROW(LfsrSequence(3, 1), std::invalid_argument);
  EXPECT_THROW(LfsrSequence(33, 1), std::invalid_argument);
}

TEST(Lfsr, ZeroSeedIsCoerced) {
  LfsrSequence lfsr(8, 0);
  EXPECT_NE(lfsr.next(), 0u);
}

class SweepCoverage : public ::testing::TestWithParam<std::string> {};

TEST_P(SweepCoverage, VisitsEveryAddressExactlyOnce) {
  const Cidr universe = parse_cidr(GetParam());
  AddressSweep sweep(universe, 12345);
  std::set<Ipv4> seen;
  while (auto ip = sweep.next()) {
    EXPECT_TRUE(universe.contains(*ip));
    EXPECT_TRUE(seen.insert(*ip).second) << format_ipv4(*ip);
  }
  EXPECT_EQ(seen.size(), universe.size());
  EXPECT_EQ(sweep.emitted(), universe.size());
}

INSTANTIATE_TEST_SUITE_P(Universes, SweepCoverage,
                         ::testing::Values("10.0.0.0/24", "192.168.0.0/20", "172.16.0.0/16",
                                           "10.0.0.0/28"));

TEST(Sweep, OrderIsScrambledButDeterministic) {
  AddressSweep a(parse_cidr("10.0.0.0/24"), 1);
  AddressSweep b(parse_cidr("10.0.0.0/24"), 1);
  AddressSweep c(parse_cidr("10.0.0.0/24"), 2);
  std::vector<Ipv4> seq_a, seq_b, seq_c;
  while (auto ip = a.next()) seq_a.push_back(*ip);
  while (auto ip = b.next()) seq_b.push_back(*ip);
  while (auto ip = c.next()) seq_c.push_back(*ip);
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);  // different seed, different order
  // Not sequential: the first few addresses should not be monotone.
  bool monotone = true;
  for (std::size_t i = 1; i < 10; ++i) monotone &= seq_a[i] > seq_a[i - 1];
  EXPECT_FALSE(monotone);
}

}  // namespace
}  // namespace opcua_study
