// Known-answer and property tests for MD5 / SHA-1 / SHA-256.
#include <gtest/gtest.h>

#include "crypto/hash.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace opcua_study {
namespace {

std::string hex_hash(HashAlgorithm alg, std::string_view msg) { return to_hex(hash(alg, msg)); }

TEST(Md5, KnownVectors) {
  EXPECT_EQ(hex_hash(HashAlgorithm::md5, ""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex_hash(HashAlgorithm::md5, "abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex_hash(HashAlgorithm::md5, "message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex_hash(HashAlgorithm::md5, "abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Sha1, KnownVectors) {
  EXPECT_EQ(hex_hash(HashAlgorithm::sha1, ""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex_hash(HashAlgorithm::sha1, "abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex_hash(HashAlgorithm::sha1, "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(hex_hash(HashAlgorithm::sha256, ""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_hash(HashAlgorithm::sha256, "abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_hash(HashAlgorithm::sha256,
                     "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.digest();
  EXPECT_EQ(to_hex(Bytes(d.begin(), d.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HashProperties, DigestSizes) {
  EXPECT_EQ(digest_size(HashAlgorithm::md5), 16u);
  EXPECT_EQ(digest_size(HashAlgorithm::sha1), 20u);
  EXPECT_EQ(digest_size(HashAlgorithm::sha256), 32u);
  EXPECT_EQ(hash_name(HashAlgorithm::sha1), "SHA-1");
}

class HashChunking : public ::testing::TestWithParam<std::tuple<HashAlgorithm, std::size_t>> {};

// Streaming in arbitrary chunk sizes must match one-shot hashing.
TEST_P(HashChunking, StreamingEqualsOneShot) {
  const auto [alg, chunk_size] = GetParam();
  Rng rng(42);
  const Bytes data = rng.bytes(1037);
  Bytes streamed;
  switch (alg) {
    case HashAlgorithm::md5: {
      Md5 h;
      for (std::size_t off = 0; off < data.size(); off += chunk_size) {
        const std::size_t n = std::min(chunk_size, data.size() - off);
        h.update(std::span(data).subspan(off, n));
      }
      auto d = h.digest();
      streamed.assign(d.begin(), d.end());
      break;
    }
    case HashAlgorithm::sha1: {
      Sha1 h;
      for (std::size_t off = 0; off < data.size(); off += chunk_size) {
        const std::size_t n = std::min(chunk_size, data.size() - off);
        h.update(std::span(data).subspan(off, n));
      }
      auto d = h.digest();
      streamed.assign(d.begin(), d.end());
      break;
    }
    case HashAlgorithm::sha256: {
      Sha256 h;
      for (std::size_t off = 0; off < data.size(); off += chunk_size) {
        const std::size_t n = std::min(chunk_size, data.size() - off);
        h.update(std::span(data).subspan(off, n));
      }
      auto d = h.digest();
      streamed.assign(d.begin(), d.end());
      break;
    }
  }
  EXPECT_EQ(streamed, hash(alg, data));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndChunks, HashChunking,
    ::testing::Combine(::testing::Values(HashAlgorithm::md5, HashAlgorithm::sha1,
                                         HashAlgorithm::sha256),
                       ::testing::Values(std::size_t{1}, std::size_t{7}, std::size_t{63},
                                         std::size_t{64}, std::size_t{65}, std::size_t{512})));

// Hash padding boundaries: lengths around the 56/64-byte block edges are the
// classic off-by-one spots.
class HashBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashBoundary, LengthSensitivity) {
  const std::size_t len = GetParam();
  const Bytes a(len, 0x5a);
  Bytes b = a;
  if (!b.empty()) b.back() ^= 1;
  for (HashAlgorithm alg :
       {HashAlgorithm::md5, HashAlgorithm::sha1, HashAlgorithm::sha256}) {
    EXPECT_EQ(hash(alg, a).size(), digest_size(alg));
    if (!a.empty()) {
      EXPECT_NE(hash(alg, a), hash(alg, b)) << hash_name(alg) << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockEdges, HashBoundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128));

}  // namespace
}  // namespace opcua_study
