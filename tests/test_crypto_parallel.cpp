// Determinism guards for the parallel crypto fast path.
//
// The PR that parallelized deployment keygen pinned one invariant above
// all: thread count must never change a single bit of the study corpus.
// Every key label owns an independent Rng stream, so (a) KeyFactory
// prefetch on N workers produces the same cache as serial get() calls,
// (b) a Deployer running with key_threads=4 yields a scan snapshot that
// is field-identical to key_threads=1, and (c) batch_gcd verdicts are
// invariant under its worker count. CI runs this as the ctest guard for
// the parallel deployment path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "crypto/keycache.hpp"
#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "study/study.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
  // Serial pool runs inline.
  ThreadPool serial(1);
  int calls = 0;
  serial.parallel_for(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
  // Exceptions propagate to the caller.
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(KeyFactoryParallel, PrefetchMatchesSerialGeneration) {
  KeyFactory serial(909, "");
  KeyFactory parallel(909, "");
  const std::vector<std::pair<std::string, std::size_t>> wants = {
      {"host-1", 512}, {"host-2", 512}, {"group-7", 512}, {"host-3-dual", 512},
      {"host-1", 512},  // duplicate request must not double-generate
  };
  parallel.prefetch(wants, 4);
  EXPECT_EQ(parallel.generated(), 4u);
  for (const auto& [label, bits] : wants) {
    const RsaKeyPair a = serial.get(label, bits);
    const RsaKeyPair b = parallel.get(label, bits);
    EXPECT_EQ(a.pub, b.pub) << label;
    EXPECT_EQ(a.priv.p, b.priv.p) << label;
    EXPECT_EQ(a.priv.q, b.priv.q) << label;
    EXPECT_EQ(a.priv.d, b.priv.d) << label;
  }
  // Prefetched entries are cache hits for get().
  EXPECT_EQ(parallel.cache_hits(), wants.size());
  // A second prefetch of the same labels is a no-op.
  parallel.prefetch(wants, 4);
  EXPECT_EQ(parallel.generated(), 4u);
}

TEST(KeyFactoryParallel, FlushIsAtomicAndPreservesForeignSeeds) {
  const std::string cache = "/tmp/opcua_study_test_keycache_atomic";
  std::remove(cache.c_str());
  std::remove((cache + ".tmp").c_str());
  {
    KeyFactory other(1, cache);
    other.get("host-9", 512);
  }
  {
    KeyFactory mine(2, cache);
    mine.prefetch({{"host-1", 512}}, 2);
    mine.flush();
    // The temp file must not linger after a successful flush.
    std::ifstream tmp(cache + ".tmp");
    EXPECT_FALSE(tmp.good());
  }
  // Both seeds survive the rewrite.
  KeyFactory other_again(1, cache);
  KeyFactory mine_again(2, cache);
  other_again.get("host-9", 512);
  mine_again.get("host-1", 512);
  EXPECT_EQ(other_again.generated(), 0u);
  EXPECT_EQ(mine_again.generated(), 0u);
  std::remove(cache.c_str());
}

// A compact population exercising every key path: reuse groups, dual
// certificates, CA-signed certificates, ephemerals, and keyless hosts.
PopulationPlan small_plan() {
  PopulationPlan plan;
  ReuseGroupPlan group;
  group.id = 0;
  group.key_bits = 1024;
  group.subject_organization = "FactoryImages GmbH";
  plan.reuse_groups.push_back(group);
  for (int i = 0; i < 14; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "parallel-test";
    host.manufacturer = "other";
    host.application_uri = "urn:test:par:" + std::to_string(i);
    host.product_uri = "http://example.org/par";
    host.application_name = "par host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 3);
    host.modes = {MessageSecurityMode::None};
    host.policies = {SecurityPolicy::None};
    host.tokens = {UserTokenType::Anonymous};
    host.outcome = PlannedOutcome::accessible;
    host.classification = PlannedClass::test;
    host.variable_count = 3;
    host.method_count = 1;
    host.certificate.present = i % 5 != 4;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 3, 1});
    if (i % 4 == 0) host.certificate.reuse_group = 0;
    if (i == 1) host.certificate.dual_certificate = true;
    if (i == 2) host.certificate.ca_signed = true;
    if (i == 3) host.certificate.ephemeral = true;
    plan.hosts.push_back(std::move(host));
  }
  return plan;
}

ScanSnapshot scan_with_key_threads(const PopulationPlan& plan, int key_threads) {
  DeployConfig config;
  config.seed = 4242;
  config.dummy_hosts = 40;
  config.fast_keys = true;
  config.key_threads = key_threads;
  config.key_cache_path = "";  // in-memory: forces real generation
  Deployer deployer(plan, config);
  Network net;
  deployer.deploy_week(net, 7);

  KeyFactory scanner_keys(4242, "");
  CampaignConfig campaign_config;
  campaign_config.seed = 4242;
  campaign_config.grabber.client = make_scanner_identity(4242, scanner_keys);
  Campaign campaign(campaign_config, net);
  return campaign.run(7);
}

TEST(ParallelDeployment, SnapshotIdenticalAcrossKeyThreadCounts) {
  // The CI guard: threads=4 deployment must produce a snapshot that is
  // field-identical to threads=1 — same hosts, same certificates, same
  // endpoints, record for record.
  const PopulationPlan plan = small_plan();
  const ScanSnapshot serial = scan_with_key_threads(plan, 1);
  const ScanSnapshot parallel = scan_with_key_threads(plan, 4);
  ASSERT_EQ(serial.hosts.size(), parallel.hosts.size());
  EXPECT_TRUE(serial == parallel);
  EXPECT_GT(serial.hosts.size(), 0u);
}

}  // namespace
}  // namespace opcua_study
