// Security-policy registry (Table 1) and the certificate-conformance
// lattice that drives Figure 4.
#include <gtest/gtest.h>

#include "opcua/secpolicy.hpp"

namespace opcua_study {
namespace {

TEST(PolicyRegistry, Table1Contents) {
  const auto& d1 = policy_info(SecurityPolicy::Basic128Rsa15);
  EXPECT_TRUE(d1.deprecated);
  EXPECT_EQ(d1.min_key_bits, 1024u);
  EXPECT_EQ(d1.max_key_bits, 2048u);
  EXPECT_EQ(d1.min_cert_hash, HashAlgorithm::sha1);
  EXPECT_EQ(d1.max_cert_hash, HashAlgorithm::sha1);
  EXPECT_EQ(d1.short_name, "D1");

  const auto& d2 = policy_info(SecurityPolicy::Basic256);
  EXPECT_TRUE(d2.deprecated);
  EXPECT_EQ(d2.max_cert_hash, HashAlgorithm::sha256);  // D2 allows SHA-256 certs

  const auto& s2 = policy_info(SecurityPolicy::Basic256Sha256);
  EXPECT_TRUE(s2.secure);
  EXPECT_EQ(s2.min_key_bits, 2048u);
  EXPECT_EQ(s2.max_key_bits, 4096u);
  EXPECT_EQ(s2.short_name, "S2");

  EXPECT_FALSE(policy_info(SecurityPolicy::None).secure);
  EXPECT_FALSE(policy_info(SecurityPolicy::None).deprecated);
}

TEST(PolicyRegistry, RanksAreStrictlyOrdered) {
  int prev = -1;
  for (const auto policy : kAllPolicies) {
    EXPECT_GT(policy_info(policy).rank, prev);
    prev = policy_info(policy).rank;
  }
}

TEST(PolicyRegistry, UriRoundTrip) {
  for (const auto policy : kAllPolicies) {
    const auto& info = policy_info(policy);
    const auto parsed = policy_from_uri(info.uri);
    ASSERT_TRUE(parsed.has_value()) << info.uri;
    EXPECT_EQ(*parsed, policy);
    const auto by_name = policy_from_short_name(info.short_name);
    ASSERT_TRUE(by_name.has_value());
    EXPECT_EQ(*by_name, policy);
  }
  EXPECT_FALSE(policy_from_uri("http://example.org/not-a-policy").has_value());
  EXPECT_FALSE(policy_from_short_name("Z9").has_value());
}

TEST(Conformance, PaperExamples) {
  using SP = SecurityPolicy;
  // S2 with SHA-1 or short keys: the paper's 409 "too weak".
  EXPECT_EQ(classify_certificate(SP::Basic256Sha256, HashAlgorithm::sha1, 2048),
            CertConformance::too_weak);
  EXPECT_EQ(classify_certificate(SP::Basic256Sha256, HashAlgorithm::sha256, 1024),
            CertConformance::too_weak);
  EXPECT_EQ(classify_certificate(SP::Basic256Sha256, HashAlgorithm::md5, 2048),
            CertConformance::too_weak);
  EXPECT_EQ(classify_certificate(SP::Basic256Sha256, HashAlgorithm::sha256, 2048),
            CertConformance::conformant);
  EXPECT_EQ(classify_certificate(SP::Basic256Sha256, HashAlgorithm::sha256, 4096),
            CertConformance::conformant);
  // D1 with SHA-256: the paper's 75 "too strong".
  EXPECT_EQ(classify_certificate(SP::Basic128Rsa15, HashAlgorithm::sha256, 2048),
            CertConformance::too_strong);
  EXPECT_EQ(classify_certificate(SP::Basic128Rsa15, HashAlgorithm::sha1, 2048),
            CertConformance::conformant);
  // D2 allows SHA-256 certs but not >2048-bit keys: the paper's 5.
  EXPECT_EQ(classify_certificate(SP::Basic256, HashAlgorithm::sha256, 2048),
            CertConformance::conformant);
  EXPECT_EQ(classify_certificate(SP::Basic256, HashAlgorithm::sha256, 4096),
            CertConformance::too_strong);
  // Policy None has no certificate requirements.
  EXPECT_EQ(classify_certificate(SP::None, HashAlgorithm::md5, 512),
            CertConformance::conformant);
}

TEST(Conformance, WeaknessDominatesOverStrength) {
  // MD5 signature with an oversized key: still "too weak" (the announced
  // security level is not delivered).
  EXPECT_EQ(classify_certificate(SecurityPolicy::Basic128Rsa15, HashAlgorithm::md5, 4096),
            CertConformance::too_weak);
}

class ConformanceLattice
    : public ::testing::TestWithParam<std::tuple<SecurityPolicy, HashAlgorithm, std::size_t>> {};

// Property: upgrading hash or key of a conformant certificate never makes
// it "too weak"; downgrading never makes it "too strong".
TEST_P(ConformanceLattice, Monotonicity) {
  const auto [policy, hash, bits] = GetParam();
  if (policy == SecurityPolicy::None) return;
  const CertConformance base = classify_certificate(policy, hash, bits);
  // Stronger hash.
  if (hash != HashAlgorithm::sha256) {
    const HashAlgorithm stronger =
        hash == HashAlgorithm::md5 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
    const CertConformance up = classify_certificate(policy, stronger, bits);
    if (base == CertConformance::conformant) {
      EXPECT_NE(up, CertConformance::too_weak);
    }
    if (base == CertConformance::too_strong) {
      EXPECT_EQ(up, CertConformance::too_strong);
    }
  }
  // Larger key.
  const CertConformance bigger = classify_certificate(policy, hash, bits * 2);
  if (base == CertConformance::conformant && bigger == CertConformance::too_weak) {
    // A larger key can only stay weak if the hash is the weak dimension.
    EXPECT_LT(hash_rank(hash), hash_rank(policy_info(policy).min_cert_hash));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConformanceLattice,
    ::testing::Combine(::testing::ValuesIn(kAllPolicies),
                       ::testing::Values(HashAlgorithm::md5, HashAlgorithm::sha1,
                                         HashAlgorithm::sha256),
                       ::testing::Values(std::size_t{1024}, std::size_t{2048},
                                         std::size_t{4096})));

TEST(Modes, RankingAndNames) {
  EXPECT_LT(security_mode_rank(MessageSecurityMode::None),
            security_mode_rank(MessageSecurityMode::Sign));
  EXPECT_LT(security_mode_rank(MessageSecurityMode::Sign),
            security_mode_rank(MessageSecurityMode::SignAndEncrypt));
  EXPECT_EQ(security_mode_name(MessageSecurityMode::SignAndEncrypt), "SignAndEncrypt");
  EXPECT_EQ(security_mode_rank(MessageSecurityMode::Invalid), -1);
}

}  // namespace
}  // namespace opcua_study
