// Calibration tests: the population *plan* must reproduce every marginal
// the paper reports. These run on pure plan data (no keys, no sockets), so
// they are fast and pin down the entire cohort algebra of DESIGN.md §4.
#include <gtest/gtest.h>

#include <cmath>

#include <map>
#include <set>

#include "population/plan.hpp"

namespace opcua_study {
namespace {

class PopulationPlanTest : public ::testing::Test {
 protected:
  static const PopulationPlan& plan() {
    static const PopulationPlan p = build_population_plan(42);
    return p;
  }
  static std::vector<const HostPlan*> final_servers() {
    std::vector<const HostPlan*> out;
    for (const auto& host : plan().hosts) {
      if (!host.discovery && host.present_in_week(7)) out.push_back(&host);
    }
    return out;
  }
};

TEST_F(PopulationPlanTest, FinalWeekHas1114Servers) {
  EXPECT_EQ(final_servers().size(), 1114u);
}

TEST_F(PopulationPlanTest, WeeklyTotalsMatchFigure2) {
  const WeeklyTargets targets;
  for (int w = 0; w < kNumMeasurements; ++w) {
    long servers = 0, discovery = 0;
    for (const auto& host : plan().hosts) {
      if (!host.present_in_week(w)) continue;
      if (host.discovery) {
        ++discovery;
      } else if (!host.via_reference_only || w >= 3) {
        ++servers;
      }
    }
    EXPECT_EQ(servers, targets.servers_found[w]) << "week " << w;
    EXPECT_EQ(discovery, targets.discovery_found[w]) << "week " << w;
    // Paper: between 1761 and 2069 hosts.
    EXPECT_GE(targets.total(w), 1761);
    EXPECT_LE(targets.total(w), 2069);
  }
  // Final week: 42 % discovery servers.
  const double discovery_share = 807.0 / (807 + 1114);
  EXPECT_NEAR(discovery_share, 0.42, 0.01);
}

TEST_F(PopulationPlanTest, SecurityModeMarginalsMatchFigure3) {
  std::map<std::string, int> support, least, most;
  for (const auto* host : final_servers()) {
    bool n = false, s = false, e = false;
    for (auto m : host->modes) {
      n |= m == MessageSecurityMode::None;
      s |= m == MessageSecurityMode::Sign;
      e |= m == MessageSecurityMode::SignAndEncrypt;
    }
    support["N"] += n;
    support["S"] += s;
    support["E"] += e;
    (n ? least["N"] : s ? least["S"] : least["E"]) += 1;
    (e ? most["E"] : s ? most["S"] : most["N"]) += 1;
  }
  EXPECT_EQ(support["N"], 1035);
  EXPECT_EQ(support["S"], 588);
  EXPECT_EQ(support["E"], 843);
  EXPECT_EQ(least["N"], 1035);
  EXPECT_EQ(least["S"], 28);
  EXPECT_EQ(least["E"], 51);
  EXPECT_EQ(most["N"], 270);
  EXPECT_EQ(most["S"], 1);
  EXPECT_EQ(most["E"], 843);
}

TEST_F(PopulationPlanTest, SecurityPolicyMarginalsMatchFigure3) {
  std::map<SecurityPolicy, int> support, least, most;
  for (const auto* host : final_servers()) {
    SecurityPolicy weakest = SecurityPolicy::None;
    SecurityPolicy strongest = SecurityPolicy::None;
    int weakest_rank = 1000, strongest_rank = -1;
    for (auto p : host->policies) {
      support[p] += 1;
      const int rank = policy_info(p).rank;
      if (rank < weakest_rank) {
        weakest_rank = rank;
        weakest = p;
      }
      if (rank > strongest_rank) {
        strongest_rank = rank;
        strongest = p;
      }
    }
    least[weakest] += 1;
    most[strongest] += 1;
  }
  using SP = SecurityPolicy;
  EXPECT_EQ(support[SP::None], 1035);
  EXPECT_EQ(support[SP::Basic128Rsa15], 715);
  EXPECT_EQ(support[SP::Basic256], 762);
  EXPECT_EQ(support[SP::Aes128Sha256RsaOaep], 10);
  EXPECT_EQ(support[SP::Basic256Sha256], 564);
  EXPECT_EQ(support[SP::Aes256Sha256RsaPss], 8);
  EXPECT_EQ(least[SP::None], 1035);
  EXPECT_EQ(least[SP::Basic128Rsa15], 13);
  EXPECT_EQ(least[SP::Basic256], 50);
  EXPECT_EQ(least[SP::Basic256Sha256], 16);
  EXPECT_EQ(most[SP::None], 270);
  EXPECT_EQ(most[SP::Basic128Rsa15], 24);
  EXPECT_EQ(most[SP::Basic256], 256);
  EXPECT_EQ(most[SP::Aes128Sha256RsaOaep], 0);
  EXPECT_EQ(most[SP::Basic256Sha256], 556);
  EXPECT_EQ(most[SP::Aes256Sha256RsaPss], 8);
  // 786 hosts still support a deprecated (SHA-1) policy; only 16 enforce
  // strong policies; 564 can speak a sufficient one.
  int deprecated_any = 0;
  for (const auto* host : final_servers()) {
    bool dep = false;
    for (auto p : host->policies) dep |= policy_info(p).deprecated;
    deprecated_any += dep;
  }
  EXPECT_EQ(deprecated_any, 786);
}

TEST_F(PopulationPlanTest, CertificateConformanceMatchesFigure4) {
  int s2_weak = 0, d1_strong = 0, d2_strong = 0, s1_weak = 0, weaker_than_max = 0, no_cert = 0;
  for (const auto* host : final_servers()) {
    if (!host->certificate.present) {
      ++no_cert;
      continue;
    }
    const HashAlgorithm hash = host->certificate.signature_hash;
    const std::size_t bits = host->certificate.key_bits;
    for (auto p : host->policies) {
      const CertConformance conf = classify_certificate(p, hash, bits);
      if (p == SecurityPolicy::Basic256Sha256 && conf == CertConformance::too_weak) ++s2_weak;
      if (p == SecurityPolicy::Basic128Rsa15 && conf == CertConformance::too_strong) ++d1_strong;
      if (p == SecurityPolicy::Basic256 && conf == CertConformance::too_strong) ++d2_strong;
      if (p == SecurityPolicy::Aes128Sha256RsaOaep && conf == CertConformance::too_weak) ++s1_weak;
    }
    if (classify_certificate(host->max_policy(), hash, bits) == CertConformance::too_weak) {
      ++weaker_than_max;
    }
  }
  EXPECT_EQ(s2_weak, 409);    // Fig. 4 "↓409"
  EXPECT_EQ(d1_strong, 75);   // Fig. 4 "↑75"
  EXPECT_EQ(d2_strong, 5);    // Fig. 4 "↑5"
  EXPECT_EQ(s1_weak, 7);      // Fig. 4 "↓7"
  EXPECT_EQ(no_cert, 40);
  // §5.2 takeaway: 70 % of the 844 servers that could provide sufficient
  // security realize a weaker level in practice (591 = 409 + 182 MD5 on
  // deprecated-max hosts).
  EXPECT_EQ(weaker_than_max, 591);
  EXPECT_NEAR(static_cast<double>(weaker_than_max) / 844.0, 0.70, 0.005);
}

TEST_F(PopulationPlanTest, DeficitRollupIs92Percent) {
  int none_only = 0, deprecated_max = 0, weak_cert = 0, deficient = 0;
  for (const auto* host : final_servers()) {
    const SecurityPolicy max = host->max_policy();
    const bool no_sec = max == SecurityPolicy::None;
    const bool dep_max = policy_info(max).deprecated;
    const bool cert_weak =
        host->certificate.present &&
        classify_certificate(max, host->certificate.signature_hash,
                             host->certificate.key_bits) == CertConformance::too_weak;
    none_only += no_sec;
    deprecated_max += dep_max;
    weak_cert += cert_weak;
    if (no_sec || dep_max || cert_weak || host->anonymous_offered()) ++deficient;
  }
  EXPECT_EQ(none_only, 270);       // 24 % offer no security at all
  EXPECT_EQ(deprecated_max, 280);  // 25 % top out at deprecated policies
  EXPECT_EQ(deficient, 1025);      // 92.0 % of 1114
  EXPECT_NEAR(static_cast<double>(deficient) / 1114.0, 0.92, 0.002);
}

TEST_F(PopulationPlanTest, Table2JointDistribution) {
  // (anon,cred,cert,token) -> [prod, test, uncl, auth, sc]
  std::map<std::string, std::array<int, 5>> cells;
  for (const auto* host : final_servers()) {
    std::string row;
    for (UserTokenType t : {UserTokenType::Anonymous, UserTokenType::UserName,
                            UserTokenType::Certificate, UserTokenType::IssuedToken}) {
      bool has = false;
      for (auto tt : host->tokens) has |= tt == t;
      row += has ? '1' : '0';
    }
    auto& cell = cells[row];
    switch (host->outcome) {
      case PlannedOutcome::accessible:
        switch (host->classification) {
          case PlannedClass::production: cell[0]++; break;
          case PlannedClass::test: cell[1]++; break;
          case PlannedClass::unclassified: cell[2]++; break;
          case PlannedClass::not_applicable: FAIL() << "accessible without class"; break;
        }
        break;
      case PlannedOutcome::auth_rejected: cell[3]++; break;
      case PlannedOutcome::channel_rejected: cell[4]++; break;
    }
  }
  const std::map<std::string, std::array<int, 5>> expected = {
      {"1000", {116, 8, 5, 9, 1}},   {"0100", {0, 0, 0, 467, 21}},
      {"1100", {168, 20, 134, 38, 5}}, {"0110", {0, 0, 0, 4, 7}},
      {"1110", {11, 14, 17, 17, 3}},  {"0111", {0, 0, 0, 0, 43}},
      {"1111", {0, 0, 0, 6, 0}},
  };
  EXPECT_EQ(cells.size(), expected.size());
  for (const auto& [row, want] : expected) {
    ASSERT_TRUE(cells.contains(row)) << row;
    EXPECT_EQ(cells.at(row), want) << row;
  }
}

TEST_F(PopulationPlanTest, AccessControlHeadlines) {
  int anon = 0, anon_secure_only = 0, accessible = 0, sc_rejected = 0;
  for (const auto* host : final_servers()) {
    if (host->anonymous_offered()) {
      ++anon;
      if (!host->offers_none_mode()) ++anon_secure_only;
    }
    accessible += host->outcome == PlannedOutcome::accessible;
    sc_rejected += host->outcome == PlannedOutcome::channel_rejected;
  }
  EXPECT_EQ(anon, 572);
  EXPECT_EQ(anon - 9, 563);  // anonymous among the 1034 channel-capable hosts
  EXPECT_EQ(anon_secure_only, 71);
  EXPECT_EQ(accessible, 493);
  EXPECT_EQ(sc_rejected, 80);
  EXPECT_EQ(1114 - sc_rejected, 1034);
}

TEST_F(PopulationPlanTest, ReuseGroupsMatchSection53) {
  std::map<int, int> group_sizes;
  std::map<int, std::set<std::uint32_t>> group_ases;
  for (const auto* host : final_servers()) {
    if (host->certificate.reuse_group >= 0) {
      group_sizes[host->certificate.reuse_group]++;
      group_ases[host->certificate.reuse_group].insert(host->asn);
    }
  }
  EXPECT_EQ(group_sizes[0], 385);
  EXPECT_EQ(group_ases[0].size(), 24u);
  EXPECT_EQ(group_sizes[1], 9);
  EXPECT_EQ(group_ases[1].size(), 8u);
  EXPECT_EQ(group_sizes[2], 6);
  EXPECT_EQ(group_ases[2].size(), 5u);
  // Nine certificates on >= 3 hosts.
  int ge3 = 0;
  for (const auto& [group, size] : group_sizes) {
    if (size >= 3) ++ge3;
  }
  EXPECT_EQ(ge3, 9);
  // The reuse fleet grows 263 → 400, +3 in the final week (§5.5).
  auto reuse_at_week = [&](int w) {
    int n = 0;
    for (const auto& host : plan().hosts) {
      if (!host.discovery && host.certificate.reuse_group >= 0 &&
          host.certificate.reuse_group <= 2 && host.present_in_week(w)) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(reuse_at_week(0), 263);
  EXPECT_EQ(reuse_at_week(7), 400);
  EXPECT_EQ(reuse_at_week(7) - reuse_at_week(6), 3);
}

TEST_F(PopulationPlanTest, ManufacturerClustersMatchFigure2) {
  std::map<std::string, int> counts;
  for (const auto* host : final_servers()) counts[host->manufacturer]++;
  EXPECT_EQ(counts["Bachmann"], 406);
  EXPECT_EQ(counts["Beckhoff"], 112);
  EXPECT_EQ(counts["Wago"], 78);
  // The all-None manufacturer of §B.1.1: every device None-only.
  for (const auto* host : final_servers()) {
    if (host->manufacturer == "EnergoTec") {
      EXPECT_EQ(host->max_policy(), SecurityPolicy::None);
    }
  }
  EXPECT_EQ(counts["EnergoTec"], 51);
}

TEST_F(PopulationPlanTest, CertificateLedgerMatchesSection55) {
  // Distinct certificates across all eight measurements = 4296 (§5.5):
  // 877 final-week distinct + 108 departers + 84 renewals + 7 * 461
  // ephemerals.
  int ephemerals = 0, duals = 0, renewals = 0, upgrades = 0, downgrades = 0, sw_updates = 0;
  int departers = 0;
  std::set<std::string> stable_labels;
  for (const auto& host : plan().hosts) {
    if (host.discovery) continue;
    if (host.cohort == "departer") {
      ++departers;
      continue;
    }
    if (!host.present_in_week(7)) continue;
    ephemerals += host.certificate.ephemeral;
    duals += host.certificate.dual_certificate;
    if (host.renewal) {
      ++renewals;
      sw_updates += host.renewal->software_update;
      if (!host.renewal->dual) {
        if (host.renewal->old_hash == HashAlgorithm::sha1 &&
            host.certificate.signature_hash == HashAlgorithm::sha256) {
          ++upgrades;
        }
        if (host.renewal->old_hash == HashAlgorithm::sha256 &&
            host.certificate.signature_hash == HashAlgorithm::sha1) {
          ++downgrades;
        }
      }
    }
    if (host.certificate.present) {
      stable_labels.insert(host.certificate.reuse_group >= 0
                               ? "group-" + std::to_string(host.certificate.reuse_group)
                               : "host-" + std::to_string(host.index));
    }
  }
  EXPECT_EQ(ephemerals, 461);
  EXPECT_EQ(duals, 224);
  EXPECT_EQ(departers, 108);
  EXPECT_EQ(renewals, 84);
  EXPECT_EQ(upgrades, 7);
  EXPECT_EQ(downgrades, 1);
  EXPECT_EQ(sw_updates, 9);
  // Final-week distinct = distinct primaries + duals.
  const long final_distinct = static_cast<long>(stable_labels.size()) + duals;
  EXPECT_EQ(final_distinct, 877);
  const long total = final_distinct + departers + renewals + 7L * ephemerals;
  EXPECT_EQ(total, 4296);
}

TEST_F(PopulationPlanTest, Sha1NotBeforeLedgerMatchesSection55) {
  // SHA-1 certificates generated after the 2017 deprecation: 2174, of which
  // 1923 since 2019 (§5.5). Ephemeral certs are stamped with the scan date
  // (all post-2019: 8 x 234); renewals contribute 49 post-2019 SHA-1 certs.
  const std::int64_t y2017 = days_from_civil({2017, 1, 1});
  const std::int64_t y2019 = days_from_civil({2019, 1, 1});
  long stable_2017 = 0, stable_2019 = 0, eph_sha1 = 0, renewal_sha1 = 0;
  std::set<std::string> seen_groups;
  for (const auto& host : plan().hosts) {
    if (host.discovery || host.cohort == "departer" || !host.certificate.present) continue;
    const auto& cert = host.certificate;
    if (cert.ephemeral) {
      if (cert.signature_hash == HashAlgorithm::sha1) ++eph_sha1;
      continue;
    }
    if (host.renewal && !host.renewal->dual && cert.signature_hash == HashAlgorithm::sha1) {
      ++renewal_sha1;  // the renewed (post-2019) primary
    }
    if (host.renewal && host.renewal->dual) ++renewal_sha1;  // refreshed SHA-1 dual
    // Stable primaries (deduplicate reuse groups).
    if (cert.signature_hash == HashAlgorithm::sha1) {
      const std::string label = cert.reuse_group >= 0
                                    ? "group-" + std::to_string(cert.reuse_group)
                                    : "host-" + std::to_string(host.index);
      if (seen_groups.insert(label).second) {
        if (cert.not_before_days >= y2019) {
          ++stable_2019;
        } else if (cert.not_before_days >= y2017) {
          ++stable_2017;
        }
      }
    }
    if (cert.dual_certificate) {
      if (cert.dual_not_before_days >= y2019) {
        ++stable_2019;
      } else if (cert.dual_not_before_days >= y2017) {
        ++stable_2017;
      }
    }
  }
  EXPECT_EQ(eph_sha1, 234);
  EXPECT_EQ(renewal_sha1, 49);  // 48 dual refreshes + 1 downgrade
  const long post_2019 = 8 * eph_sha1 + renewal_sha1 + stable_2019;
  const long post_2017 = post_2019 + stable_2017;
  EXPECT_EQ(post_2019, 1923);
  EXPECT_EQ(post_2017, 2174);
}

TEST_F(PopulationPlanTest, WeeklyDeficiencyStaysInPaperBand) {
  double sum = 0, sum_sq = 0, min = 100, max = 0;
  for (int w = 0; w < kNumMeasurements; ++w) {
    long found = 0, deficient = 0;
    for (const auto& host : plan().hosts) {
      if (host.discovery || !host.present_in_week(w)) continue;
      if (host.via_reference_only && w < 3) continue;
      ++found;
      const SecurityPolicy maxp = host.max_policy();
      const bool bad = maxp == SecurityPolicy::None || policy_info(maxp).deprecated ||
                       (host.certificate.present &&
                        classify_certificate(
                            maxp,
                            host.renewal && !host.renewal->dual && w < host.renewal->week
                                ? host.renewal->old_hash
                                : host.certificate.signature_hash,
                            host.certificate.key_bits) == CertConformance::too_weak) ||
                       host.anonymous_offered();
      deficient += bad;
    }
    const double pct = 100.0 * static_cast<double>(deficient) / static_cast<double>(found);
    sum += pct;
    sum_sq += pct * pct;
    min = std::min(min, pct);
    max = std::max(max, pct);
  }
  const double avg = sum / kNumMeasurements;
  const double std_dev = std::sqrt(sum_sq / kNumMeasurements - avg * avg);
  EXPECT_NEAR(avg, 92.0, 0.4);      // paper: avg 92 %
  EXPECT_LE(std_dev, 1.1);          // paper: std 0.8
  EXPECT_GE(min, 91.0);             // paper: min 91 %
  EXPECT_LE(max, 94.0);             // paper: max 94 %
}

TEST_F(PopulationPlanTest, Figure7AccessFractionQuantiles) {
  int accessible = 0, read97 = 0, write10 = 0, exec86 = 0;
  for (const auto* host : final_servers()) {
    if (host->outcome != PlannedOutcome::accessible) continue;
    ++accessible;
    read97 += host->readable_fraction > 0.97;
    write10 += host->writable_fraction > 0.10;
    exec86 += host->executable_fraction > 0.86;
  }
  ASSERT_EQ(accessible, 493);
  EXPECT_NEAR(static_cast<double>(read97) / accessible, 0.90, 0.02);
  EXPECT_NEAR(static_cast<double>(write10) / accessible, 0.33, 0.02);
  EXPECT_NEAR(static_cast<double>(exec86) / accessible, 0.61, 0.02);
}

TEST_F(PopulationPlanTest, ViaReferenceHostsAreStableNonDefaultPort) {
  int count = 0;
  for (const auto* host : final_servers()) {
    if (!host->via_reference_only) continue;
    ++count;
    EXPECT_NE(host->port, kOpcUaDefaultPort);
    EXPECT_FALSE(host->certificate.ephemeral);
    EXPECT_EQ(host->arrival_week, 0);
  }
  EXPECT_EQ(count, 45);
  // Every referenced host is wired to a discovery server.
  std::set<int> referenced;
  for (const auto& [ds, target] : plan().discovery_references) referenced.insert(target);
  EXPECT_EQ(referenced.size(), 45u);
}

TEST_F(PopulationPlanTest, DeterministicAcrossCalls) {
  const PopulationPlan a = build_population_plan(42);
  const PopulationPlan b = build_population_plan(42);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].cohort, b.hosts[i].cohort);
    EXPECT_EQ(a.hosts[i].asn, b.hosts[i].asn);
    EXPECT_EQ(a.hosts[i].certificate.not_before_days, b.hosts[i].certificate.not_before_days);
  }
}

}  // namespace
}  // namespace opcua_study
