// Campaign-level behaviour: endpoint-URL parsing (port-range hardening),
// exclusion-prefix filtering, reference-following dedup, and the paper's
// calendar gate (references only followed from measurement 3 onwards).
#include <gtest/gtest.h>

#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "scanner/host_task.hpp"
#include "study/study.hpp"

namespace opcua_study {
namespace {

// ------------------------------------------------------------ parse_opc_url

TEST(ParseOpcUrl, AcceptsIpAndPort) {
  const auto parsed = parse_opc_url("opc.tcp://10.1.2.3:4841/server");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, make_ipv4(10, 1, 2, 3));
  EXPECT_EQ(parsed->second, 4841);
}

TEST(ParseOpcUrl, DefaultsToPort4840) {
  const auto parsed = parse_opc_url("opc.tcp://10.1.2.3/");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, kOpcUaDefaultPort);
}

TEST(ParseOpcUrl, RejectsOutOfRangePorts) {
  // Regression: std::stoi happily parsed these and the uint16_t cast
  // silently truncated (99999 -> 34463).
  EXPECT_FALSE(parse_opc_url("opc.tcp://1.2.3.4:99999/").has_value());
  EXPECT_FALSE(parse_opc_url("opc.tcp://1.2.3.4:65536/").has_value());
  EXPECT_FALSE(parse_opc_url("opc.tcp://1.2.3.4:-5/").has_value());
  EXPECT_FALSE(parse_opc_url("opc.tcp://1.2.3.4:0/").has_value());
  EXPECT_FALSE(parse_opc_url("opc.tcp://1.2.3.4:99999999999999/").has_value());
  EXPECT_FALSE(parse_opc_url("opc.tcp://1.2.3.4:x/").has_value());
  EXPECT_TRUE(parse_opc_url("opc.tcp://1.2.3.4:65535/").has_value());
  EXPECT_TRUE(parse_opc_url("opc.tcp://1.2.3.4:1/").has_value());
}

TEST(ParseOpcUrl, RejectsHostnamesAndForeignSchemes) {
  EXPECT_FALSE(parse_opc_url("opc.tcp://device.local:4840/").has_value());
  EXPECT_FALSE(parse_opc_url("http://1.2.3.4:4840/").has_value());
  EXPECT_FALSE(parse_opc_url("").has_value());
}

// ---------------------------------------------------------------- fixtures

HostPlan simple_host(int index, std::uint32_t asn) {
  HostPlan host;
  host.index = index;
  host.cohort = "campaign";
  host.manufacturer = "other";
  host.application_uri = "urn:generic:opcua:camp-" + std::to_string(index);
  host.product_uri = "http://example.org/campaign";
  host.application_name = "campaign host " + std::to_string(index);
  host.asn = asn;
  host.modes = {MessageSecurityMode::None};
  host.policies = {SecurityPolicy::None};
  host.tokens = {UserTokenType::Anonymous};
  host.certificate.present = true;
  host.certificate.key_bits = 1024;
  host.certificate.not_before_days = days_from_civil({2019, 6, 1});
  host.outcome = PlannedOutcome::accessible;
  host.classification = PlannedClass::production;
  host.variable_count = 2;
  host.method_count = 1;
  return host;
}

struct CampaignRun {
  Network net;
  ScanSnapshot snapshot;

  CampaignRun(const PopulationPlan& plan, int week, std::vector<Cidr> exclusions = {}) {
    DeployConfig deploy_config;
    deploy_config.seed = 31;
    deploy_config.dummy_hosts = 0;
    deploy_config.fast_keys = true;
    deploy_config.key_cache_path = "";
    Deployer deployer(plan, deploy_config);
    deployer.deploy_week(net, week);

    KeyFactory keys(31, "");
    CampaignConfig config;
    config.seed = 13;
    config.exclusions = std::move(exclusions);
    config.grabber.client = make_scanner_identity(31, keys);
    config.grabber.traverse_address_space = false;  // keep these runs fast
    Campaign campaign(config, net);
    snapshot = campaign.run(week);
  }

  int count(const std::string& uri_suffix) const {
    int n = 0;
    for (const auto& host : snapshot.hosts) {
      if (host.application_uri.ends_with(uri_suffix)) ++n;
    }
    return n;
  }
};

// ------------------------------------------------------- exclusion filtering

TEST(Campaign, ExclusionPrefixesAreNeverProbed) {
  PopulationPlan plan;
  plan.hosts.push_back(simple_host(0, 64503));
  plan.hosts.push_back(simple_host(1, 64503));
  plan.hosts.push_back(simple_host(2, 64504));

  DeployConfig deploy_config;
  deploy_config.seed = 31;
  deploy_config.dummy_hosts = 0;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer probe_deployer(plan, deploy_config);
  // Exclude host 1 exactly, and host 2's whole AS block.
  const std::vector<Cidr> exclusions = {
      Cidr{probe_deployer.ip_of(plan.hosts[1], 7), 32},
      Cidr{probe_deployer.ip_of(plan.hosts[2], 7) & 0xffff0000u, 16},
  };

  CampaignRun run(plan, 7, exclusions);
  EXPECT_EQ(run.snapshot.hosts.size(), 1u);
  EXPECT_EQ(run.count("camp-0"), 1);
  EXPECT_EQ(run.count("camp-1"), 0);
  EXPECT_EQ(run.count("camp-2"), 0);
  // Excluded addresses are filtered before probing, not after.
  EXPECT_EQ(run.snapshot.probes_sent, 1u);
}

TEST(Campaign, ExclusionAppliesToReferencedTargetsToo) {
  PopulationPlan plan;
  HostPlan ds = simple_host(0, 64503);
  ds.discovery = true;
  ds.application_uri = "urn:opcfoundation:ua:lds:camp";
  ds.certificate.present = false;
  plan.hosts.push_back(ds);
  HostPlan target = simple_host(1, 64504);
  target.port = 4842;
  target.via_reference_only = true;
  plan.hosts.push_back(target);
  plan.discovery_references.emplace_back(0, 1);

  DeployConfig deploy_config;
  deploy_config.seed = 31;
  deploy_config.dummy_hosts = 0;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer probe_deployer(plan, deploy_config);
  const std::vector<Cidr> exclusions = {Cidr{probe_deployer.ip_of(plan.hosts[1], 7), 32}};

  CampaignRun run(plan, 7, exclusions);
  // The discovery server is found; the referenced-but-opted-out host is not.
  EXPECT_EQ(run.count("lds:camp"), 1);
  EXPECT_EQ(run.count("camp-1"), 0);
}

// ------------------------------------------------------------------- dedup

TEST(Campaign, SameTargetReferencedTwiceIsGrabbedOnce) {
  PopulationPlan plan;
  for (int i = 0; i < 2; ++i) {
    HostPlan ds = simple_host(i, 64503 + static_cast<std::uint32_t>(i));
    ds.discovery = true;
    ds.application_uri = "urn:opcfoundation:ua:lds:camp-" + std::to_string(i);
    ds.certificate.present = false;
    plan.hosts.push_back(ds);
  }
  HostPlan target = simple_host(2, 64505);
  target.port = 4843;
  target.via_reference_only = true;
  plan.hosts.push_back(target);
  // Both discovery servers announce the same target.
  plan.discovery_references.emplace_back(0, 2);
  plan.discovery_references.emplace_back(1, 2);

  CampaignRun run(plan, 7);
  EXPECT_EQ(run.count("camp-2"), 1);
  EXPECT_EQ(run.snapshot.hosts.size(), 3u);
  int via_reference = 0;
  for (const auto& host : run.snapshot.hosts) via_reference += host.found_via_reference;
  EXPECT_EQ(via_reference, 1);
}

TEST(Campaign, SelfReferencesAreNotFollowedTwice) {
  // A host referenced by a discovery server that was *also* found by the
  // sweep is only grabbed in phase 2 (the `scanned` set dedups it).
  PopulationPlan plan;
  HostPlan ds = simple_host(0, 64503);
  ds.discovery = true;
  ds.application_uri = "urn:opcfoundation:ua:lds:camp";
  ds.certificate.present = false;
  plan.hosts.push_back(ds);
  HostPlan target = simple_host(1, 64504);  // default port: found by sweep
  plan.hosts.push_back(target);
  plan.discovery_references.emplace_back(0, 1);

  CampaignRun run(plan, 7);
  EXPECT_EQ(run.count("camp-1"), 1);
  for (const auto& host : run.snapshot.hosts) {
    EXPECT_FALSE(host.found_via_reference) << host.application_uri;
  }
}

// ----------------------------------------------------------- calendar gate

TEST(Campaign, ReferencesOnlyFollowedFromMeasurementThree) {
  PopulationPlan plan;
  HostPlan ds = simple_host(0, 64503);
  ds.discovery = true;
  ds.application_uri = "urn:opcfoundation:ua:lds:camp";
  ds.certificate.present = false;
  plan.hosts.push_back(ds);
  HostPlan target = simple_host(1, 64504);
  target.port = 4844;
  target.via_reference_only = true;
  plan.hosts.push_back(target);
  plan.discovery_references.emplace_back(0, 1);

  // 2020-04-19 (index 2): references recorded but not followed.
  CampaignRun before_gate(plan, 2);
  EXPECT_EQ(before_gate.count("camp-1"), 0);
  EXPECT_EQ(before_gate.count("lds:camp"), 1);

  // 2020-05-04 (index 3): the paper switched reference-following on.
  CampaignRun after_gate(plan, 3);
  EXPECT_EQ(after_gate.count("camp-1"), 1);
}

}  // namespace
}  // namespace opcua_study
