// Fault-injection resilience tests: deterministic fault streams across
// engine concurrency and shard/thread layouts, fault-free byte identity,
// scan-quality persistence (v6 tail), the scan-quality analysis section,
// and crash-safe checkpoint/resume campaigns.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/analysis.hpp"
#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "scanner/snapshot_io.hpp"
#include "study/checkpoint.hpp"
#include "study/sharded.hpp"
#include "study/study.hpp"
#include "util/date.hpp"

namespace opcua_study {
namespace {

constexpr std::uint64_t kFaultSeed = 909;

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// Small mixed-posture population (mirrors the scan-engine test plan): 12
/// rotating postures, a discovery server, and a referenced host on 4841.
PopulationPlan fault_plan() {
  PopulationPlan plan;
  for (int i = 0; i < 12; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "faults";
    host.manufacturer = "other";
    host.application_uri = "urn:generic:opcua:faults-" + std::to_string(i);
    host.product_uri = "http://example.org/faults";
    host.application_name = "fault host " + std::to_string(i);
    host.asn = 64600 + static_cast<std::uint32_t>(i % 3);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 3, 1});
    switch (i % 4) {
      case 0:
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.outcome = PlannedOutcome::accessible;
        host.classification = PlannedClass::production;
        host.variable_count = 6;
        host.method_count = 2;
        host.writable_fraction = 0.3;
        host.executable_fraction = 0.5;
        break;
      case 1:
        host.modes = {MessageSecurityMode::None, MessageSecurityMode::Sign};
        host.policies = {SecurityPolicy::None, SecurityPolicy::Basic128Rsa15};
        host.tokens = {UserTokenType::UserName};
        host.outcome = PlannedOutcome::auth_rejected;
        break;
      case 2:
        host.modes = {MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::Basic256Sha256};
        host.certificate.key_bits = 2048;
        host.trust_all_client_certs = false;
        host.outcome = PlannedOutcome::channel_rejected;
        break;
      default:
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.reject_all_sessions = true;
        host.outcome = PlannedOutcome::auth_rejected;
        break;
    }
    plan.hosts.push_back(std::move(host));
  }
  HostPlan ds;
  ds.index = 12;
  ds.cohort = "faults";
  ds.discovery = true;
  ds.manufacturer = "OPC Foundation";
  ds.application_uri = "urn:opcfoundation:ua:lds:faults";
  ds.application_name = "fault lds";
  ds.asn = 64601;
  ds.certificate.present = false;
  ds.tokens = {UserTokenType::Anonymous};
  ds.modes = {MessageSecurityMode::None};
  ds.policies = {SecurityPolicy::None};
  plan.hosts.push_back(ds);

  HostPlan ref;
  ref.index = 13;
  ref.cohort = "faults";
  ref.manufacturer = "other";
  ref.application_uri = "urn:generic:opcua:faults-13";
  ref.application_name = "fault referenced host";
  ref.asn = 64602;
  ref.port = 4841;
  ref.via_reference_only = true;
  ref.certificate.present = true;
  ref.certificate.key_bits = 1024;
  ref.certificate.not_before_days = days_from_civil({2019, 3, 1});
  ref.modes = {MessageSecurityMode::None};
  ref.policies = {SecurityPolicy::None};
  ref.tokens = {UserTokenType::Anonymous};
  ref.outcome = PlannedOutcome::accessible;
  ref.classification = PlannedClass::test;
  ref.variable_count = 4;
  ref.method_count = 1;
  plan.hosts.push_back(ref);

  plan.discovery_references.emplace_back(12, 13);
  return plan;
}

Deployer make_deployer(const PopulationPlan& plan) {
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 30;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  return Deployer(plan, deploy_config);
}

/// One campaign against the plan; `profile` (when enabled) is installed on
/// the Network as FaultPlan(kFaultSeed, profile).
ScanSnapshot run_campaign(const PopulationPlan& plan, std::size_t max_in_flight,
                          const FaultProfile& profile, int week = 7) {
  Network net;
  Deployer deployer = make_deployer(plan);
  deployer.deploy_week(net, week);
  if (profile.enabled()) {
    net.set_fault_plan(std::make_unique<FaultPlan>(kFaultSeed, profile));
  }

  KeyFactory keys(42, "");
  CampaignConfig config;
  config.seed = 5;
  config.max_in_flight = max_in_flight;
  config.grabber.client = make_scanner_identity(42, keys);
  Campaign campaign(config, net);
  return campaign.run(week);
}

// ------------------------------------------------------------ determinism

TEST(FaultInjection, RecordsIdenticalAcrossInFlightWindows) {
  const PopulationPlan plan = fault_plan();
  const FaultProfile hostile = FaultProfile::hostile();
  const ScanSnapshot narrow = run_campaign(plan, 1, hostile);
  const ScanSnapshot medium = run_campaign(plan, 16, hostile);
  const ScanSnapshot wide = run_campaign(plan, 256, hostile);

  ASSERT_EQ(narrow.hosts.size(), medium.hosts.size());
  for (std::size_t i = 0; i < narrow.hosts.size(); ++i) {
    EXPECT_EQ(narrow.hosts[i], medium.hosts[i])
        << "record mismatch for " << format_ipv4(narrow.hosts[i].ip);
  }
  EXPECT_EQ(narrow, medium);
  EXPECT_EQ(narrow, wide);

  // The hostile profile actually fired: some hosts saw faults, and some
  // of those recovered through retries.
  std::uint64_t faulted = 0, retried = 0;
  for (const auto& host : narrow.hosts) {
    faulted += host.fault_events > 0;
    retried += host.retries > 0;
  }
  EXPECT_GT(faulted, 0u);
  EXPECT_GT(retried, 0u);
}

TEST(FaultInjection, FaultFreePlanMatchesNoPlanByteForByte) {
  const PopulationPlan plan = fault_plan();
  const ScanSnapshot bare = run_campaign(plan, 64, FaultProfile{});
  // A plan with an all-zero profile is never consulted: records identical.
  Network net;
  Deployer deployer = make_deployer(plan);
  deployer.deploy_week(net, 7);
  net.set_fault_plan(std::make_unique<FaultPlan>(kFaultSeed, FaultProfile{}));
  KeyFactory keys(42, "");
  CampaignConfig config;
  config.seed = 5;
  config.max_in_flight = 64;
  config.grabber.client = make_scanner_identity(42, keys);
  Campaign campaign(config, net);
  const ScanSnapshot with_noop_plan = campaign.run(7);
  EXPECT_EQ(bare, with_noop_plan);

  // Fault-free records carry pristine quality fields, and their snapshot
  // file is byte-identical to one written before the fault machinery
  // existed (no quality tails, no flag bit 6).
  for (const auto& host : bare.hosts) {
    EXPECT_EQ(host.completeness, ProbeOutcome::complete);
    EXPECT_EQ(host.retries, 0);
    EXPECT_EQ(host.fault_events, 0);
  }
  const std::string path_a = "/tmp/opcua_test_faultfree_a.bin";
  const std::string path_b = "/tmp/opcua_test_faultfree_b.bin";
  save_snapshots(path_a, 42, {bare});
  save_snapshots(path_b, 42, {with_noop_plan});
  EXPECT_EQ(read_file_bytes(path_a), read_file_bytes(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(FaultInjection, ShardedFaultedRunsDeterministicAcrossThreadsAndShards) {
  const PopulationPlan plan = fault_plan();
  KeyFactory keys(42, "");

  auto run_sharded = [&](int shards, int threads) {
    Deployer deployer = make_deployer(plan);
    ShardedCampaignConfig config;
    config.campaign.seed = 5;
    config.campaign.grabber.client = make_scanner_identity(42, keys);
    config.shards = shards;
    config.threads = threads;
    config.faults = FaultProfile::hostile();
    config.fault_seed = kFaultSeed;
    return run_sharded_campaign(deployer, 7, config);
  };

  const ScanSnapshot base = run_sharded(3, 1);
  EXPECT_EQ(base, run_sharded(3, 4));  // thread count is irrelevant
  // Fault streams are keyed by (ip, port), not by shard, so even the
  // shard layout is irrelevant to the injected sequence.
  const ScanSnapshot resharded = run_sharded(2, 2);
  ASSERT_EQ(base.hosts.size(), resharded.hosts.size());
  for (std::size_t i = 0; i < base.hosts.size(); ++i) {
    EXPECT_EQ(base.hosts[i], resharded.hosts[i]);
  }

  std::uint64_t faulted = 0;
  for (const auto& host : base.hosts) faulted += host.fault_events > 0;
  EXPECT_GT(faulted, 0u);
}

// ------------------------------------------------- quality persistence ----

HostScanRecord quality_record(std::uint32_t ip_octet, ProbeOutcome grade,
                              std::uint16_t retries, std::uint16_t faults) {
  HostScanRecord host;
  host.ip = make_ipv4(10, 1, 2, ip_octet);
  host.port = 4840;
  host.asn = 64500;
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.application_uri = "urn:test:quality:" + std::to_string(ip_octet);
  host.completeness = grade;
  host.retries = retries;
  host.fault_events = faults;
  host.bytes_sent = 1234;
  host.duration_seconds = 1.5;
  return host;
}

TEST(FaultInjection, QualityFieldsRoundTripThroughV6) {
  ScanSnapshot snapshot;
  snapshot.measurement_index = 0;
  snapshot.date_days = days_from_civil({2020, 8, 30});
  snapshot.probes_sent = 100;
  snapshot.tcp_open_count = 4;
  snapshot.hosts.push_back(quality_record(1, ProbeOutcome::complete, 0, 0));
  snapshot.hosts.push_back(quality_record(2, ProbeOutcome::complete, 2, 3));  // recovered
  snapshot.hosts.push_back(quality_record(3, ProbeOutcome::truncated, 16, 7));
  snapshot.hosts.push_back(quality_record(4, ProbeOutcome::degraded, 4, 2));

  const std::string path = "/tmp/opcua_test_quality_tail.bin";
  save_snapshots(path, 42, {snapshot});
  const auto loaded = load_snapshots(path, 42);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->front(), snapshot);

  // The scan-quality section sees the same numbers through both the row
  // decoder and the columnar fast path (analyze_file uses the latter on
  // little-endian hosts).
  const StudyAnalysis from_file = analyze_file(path, 42, {});
  const StudyAnalysis from_memory = analyze_snapshots({snapshot}, {});
  EXPECT_TRUE(from_file.figures_equal(from_memory));
  EXPECT_EQ(from_file.scan_quality.hosts, 4u);
  EXPECT_EQ(from_file.scan_quality.complete, 2u);
  EXPECT_EQ(from_file.scan_quality.truncated, 1u);
  EXPECT_EQ(from_file.scan_quality.degraded, 1u);
  EXPECT_EQ(from_file.scan_quality.faulted, 3u);
  EXPECT_EQ(from_file.scan_quality.recovered, 1u);
  EXPECT_EQ(from_file.scan_quality.retries, 22u);
  EXPECT_EQ(from_file.scan_quality.fault_events, 12u);
  EXPECT_NEAR(from_file.scan_quality.recovery_rate, 1.0 / 3.0, 1e-12);
  std::remove(path.c_str());
}

TEST(FaultInjection, FaultFreeAnalysisReportsTrivialQuality) {
  ScanSnapshot snapshot;
  snapshot.measurement_index = 0;
  snapshot.date_days = days_from_civil({2020, 8, 30});
  snapshot.hosts.push_back(quality_record(1, ProbeOutcome::complete, 0, 0));
  const StudyAnalysis analysis = analyze_snapshots({snapshot}, {});
  EXPECT_EQ(analysis.scan_quality.faulted, 0u);
  EXPECT_EQ(analysis.scan_quality.complete, 1u);
  EXPECT_EQ(analysis.scan_quality.recovery_rate, 1.0);
}

TEST(FaultInjection, RowFormatsRefuseQualityFields) {
  ScanSnapshot snapshot;
  snapshot.measurement_index = 0;
  snapshot.hosts.push_back(quality_record(1, ProbeOutcome::degraded, 1, 1));

  const std::string path = "/tmp/opcua_test_quality_v5.bin";
  SnapshotWriter writer(path, 42, SnapshotWriter::kDefaultChunkRecords, 5);
  writer.begin_snapshot(0, 0);
  EXPECT_THROW(writer.add_host(snapshot.hosts.front()), SnapshotError);
  EXPECT_THROW(save_snapshots_v4(path, 42, {snapshot}), SnapshotError);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// --------------------------------------------------- checkpoint / resume ----

TEST(FaultInjection, KilledCampaignResumesToByteIdenticalSnapshot) {
  const PopulationPlan plan = fault_plan();
  KeyFactory keys(42, "");

  CheckpointConfig config;
  config.campaign.campaign.seed = 5;
  config.campaign.campaign.grabber.client = make_scanner_identity(42, keys);
  config.campaign.shards = 2;
  config.campaign.threads = 2;
  config.campaign.faults = FaultProfile::hostile();
  config.campaign.fault_seed = kFaultSeed;
  config.first_week = 6;
  config.weeks = 2;
  config.snapshot_seed = 42;
  config.chunk_records = 3;  // force chunk boundaries inside each shard batch

  // Reference: the same campaign written by the plain streamed runner.
  const std::string direct_path = "/tmp/opcua_test_ckpt_direct.bin";
  {
    Deployer deployer = make_deployer(plan);
    SnapshotWriter writer(direct_path, 42, config.chunk_records);
    for (int week = config.first_week; week < config.first_week + config.weeks; ++week) {
      run_sharded_campaign_streamed(deployer, week, config.campaign, writer);
    }
    writer.finish();
  }

  // Uninterrupted checkpointed run.
  const std::string full_path = "/tmp/opcua_test_ckpt_full.bin";
  config.dir = "/tmp/opcua_test_ckpt_full_dir";
  std::filesystem::remove_all(config.dir);
  {
    Deployer deployer = make_deployer(plan);
    EXPECT_TRUE(run_checkpointed_study(deployer, config, full_path));
  }

  // "Killed" run: stop after a single sealed unit, then resume twice (the
  // second resume starts from a partially filled manifest).
  const std::string resumed_path = "/tmp/opcua_test_ckpt_resumed.bin";
  config.dir = "/tmp/opcua_test_ckpt_resumed_dir";
  std::filesystem::remove_all(config.dir);
  {
    Deployer deployer = make_deployer(plan);
    CheckpointConfig partial = config;
    partial.stop_after_units = 1;
    EXPECT_FALSE(run_checkpointed_study(deployer, partial, resumed_path));
    EXPECT_FALSE(std::filesystem::exists(resumed_path));
  }
  {
    Deployer deployer = make_deployer(plan);
    CheckpointConfig partial = config;
    partial.stop_after_units = 2;
    EXPECT_FALSE(run_checkpointed_study(deployer, partial, resumed_path));
  }
  {
    Deployer deployer = make_deployer(plan);
    EXPECT_TRUE(run_checkpointed_study(deployer, config, resumed_path));
  }

  const Bytes direct = read_file_bytes(direct_path);
  EXPECT_EQ(read_file_bytes(full_path), direct);
  EXPECT_EQ(read_file_bytes(resumed_path), direct);

  // The assembled file carries the scan-quality evidence of the faults.
  const StudyAnalysis analysis = analyze_file(resumed_path, 42, {});
  EXPECT_GT(analysis.scan_quality.faulted, 0u);
  EXPECT_EQ(analysis.scan_quality.weeks.size(), 2u);

  std::filesystem::remove_all("/tmp/opcua_test_ckpt_full_dir");
  std::filesystem::remove_all("/tmp/opcua_test_ckpt_resumed_dir");
  std::remove(direct_path.c_str());
  std::remove(full_path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(FaultInjection, CheckpointManifestRejectsIncompatibleResume) {
  const PopulationPlan plan = fault_plan();
  KeyFactory keys(42, "");

  CheckpointConfig config;
  config.campaign.campaign.seed = 5;
  config.campaign.campaign.grabber.client = make_scanner_identity(42, keys);
  config.campaign.shards = 2;
  config.first_week = 7;
  config.weeks = 1;
  config.snapshot_seed = 42;
  config.dir = "/tmp/opcua_test_ckpt_mismatch_dir";
  std::filesystem::remove_all(config.dir);

  const std::string out = "/tmp/opcua_test_ckpt_mismatch.bin";
  {
    Deployer deployer = make_deployer(plan);
    CheckpointConfig partial = config;
    partial.stop_after_units = 1;
    EXPECT_FALSE(run_checkpointed_study(deployer, partial, out));
  }
  {
    Deployer deployer = make_deployer(plan);
    CheckpointConfig different = config;
    different.campaign.faults = FaultProfile::hostile();  // changes the identity header
    EXPECT_THROW(run_checkpointed_study(deployer, different, out), SnapshotError);
  }
  std::filesystem::remove_all(config.dir);
  std::remove(out.c_str());
}

}  // namespace
}  // namespace opcua_study
