// HMAC (RFC 2202/4231 vectors), P_SHA KDF, and AES-CBC (FIPS-197 / SP 800-38A).
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace opcua_study {
namespace {

TEST(Hmac, Rfc2202Sha1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac(HashAlgorithm::sha1, key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  const Bytes key2 = to_bytes("Jefe");
  EXPECT_EQ(to_hex(hmac(HashAlgorithm::sha1, key2, to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc4231Sha256) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac(HashAlgorithm::sha256, key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Case 3: 0xaa*20 key, 0xdd*50 data
  const Bytes key3(20, 0xaa);
  const Bytes data3(50, 0xdd);
  EXPECT_EQ(to_hex(hmac(HashAlgorithm::sha256, key3, data3)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc2202Md5) {
  const Bytes key(16, 0x0b);
  EXPECT_EQ(to_hex(hmac(HashAlgorithm::md5, key, to_bytes("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(80, 0xaa);
  EXPECT_EQ(to_hex(hmac(HashAlgorithm::sha1, key,
                        to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(PHash, ExpandsToRequestedLengthDeterministically) {
  Rng rng(7);
  const Bytes secret = rng.bytes(32);
  const Bytes seed = rng.bytes(32);
  for (std::size_t len : {1u, 16u, 20u, 33u, 64u, 100u, 256u}) {
    const Bytes a = p_hash(HashAlgorithm::sha256, secret, seed, len);
    const Bytes b = p_hash(HashAlgorithm::sha256, secret, seed, len);
    EXPECT_EQ(a.size(), len);
    EXPECT_EQ(a, b);
  }
  // Prefix property: shorter expansions are prefixes of longer ones.
  const Bytes long_out = p_hash(HashAlgorithm::sha1, secret, seed, 96);
  const Bytes short_out = p_hash(HashAlgorithm::sha1, secret, seed, 40);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(PHash, DistinctForSwappedSecretAndSeed) {
  Rng rng(8);
  const Bytes a = rng.bytes(16), b = rng.bytes(16);
  EXPECT_NE(p_hash(HashAlgorithm::sha256, a, b, 32), p_hash(HashAlgorithm::sha256, b, a, 32));
}

TEST(Aes, Fips197KnownAnswer128) {
  // FIPS-197 Appendix C.1
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(to_hex({out, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(out, back);
  EXPECT_EQ(to_hex({back, 16}), to_hex(pt));
}

TEST(Aes, Fips197KnownAnswer256) {
  // FIPS-197 Appendix C.3
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(to_hex({out, 16}), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesCbc, Sp80038aVector) {
  // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt (first two blocks).
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  EXPECT_EQ(to_hex(ct), "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2");
  EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
}

class AesCbcRoundTrip : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AesCbcRoundTrip, EncryptDecryptIdentity) {
  const auto [key_len, blocks] = GetParam();
  Rng rng(static_cast<std::uint64_t>(key_len * 1000 + blocks));
  const Bytes key = rng.bytes(key_len);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(blocks * 16);
  const Bytes ct = aes_cbc_encrypt(key, iv, pt);
  EXPECT_EQ(ct.size(), pt.size());
  if (!pt.empty()) {
    EXPECT_NE(ct, pt);
  }
  EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(KeySizesAndLengths, AesCbcRoundTrip,
                         ::testing::Combine(::testing::Values(std::size_t{16}, std::size_t{24},
                                                              std::size_t{32}),
                                            ::testing::Values(std::size_t{0}, std::size_t{1},
                                                              std::size_t{2}, std::size_t{17})));

TEST(AesCbc, RejectsBadInputs) {
  const Bytes key(16, 0), iv(16, 0);
  EXPECT_THROW(aes_cbc_encrypt(key, iv, Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(aes_cbc_encrypt(key, Bytes(8, 0), Bytes(16, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(10, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace opcua_study
