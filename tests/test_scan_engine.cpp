// Concurrent scan engine tests: the event scheduler primitives, the
// equivalence of interleaved and sequential campaigns (same hosts, same
// per-host records), determinism across runs, and the sharded runner.
#include <gtest/gtest.h>

#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "scanner/host_task.hpp"
#include "scanner/scheduler.hpp"
#include "study/sharded.hpp"
#include "study/study.hpp"

namespace opcua_study {
namespace {

// ------------------------------------------------------------ EventScheduler

TEST(EventScheduler, RunsEventsInTimeOrder) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<int> order;
  sched.schedule_at(300, [&] { order.push_back(3); });
  sched.schedule_at(100, [&] { order.push_back(1); });
  sched.schedule_at(200, [&] { order.push_back(2); });
  EXPECT_EQ(sched.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now_us(), 300u);
}

TEST(EventScheduler, SimultaneousEventsRunFifo) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, EventsMayScheduleMoreEvents) {
  SimClock clock;
  EventScheduler sched(clock);
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 4) sched.schedule_in(1000, chain);
  };
  sched.schedule_in(1000, chain);
  EXPECT_EQ(sched.run_until_idle(), 4u);
  EXPECT_EQ(clock.now_us(), 4000u);
}

TEST(EventScheduler, PastEventsClampToNow) {
  SimClock clock;
  clock.advance_us(500);
  EventScheduler sched(clock);
  sched.schedule_at(100, [] {});
  EXPECT_TRUE(sched.run_next());
  EXPECT_EQ(clock.now_us(), 500u);  // never goes backwards
}

TEST(SimClock, AdvanceToIsMonotonic) {
  SimClock clock;
  clock.advance_to(1000);
  EXPECT_EQ(clock.now_us(), 1000u);
  clock.advance_to(400);
  EXPECT_EQ(clock.now_us(), 1000u);
}

// ----------------------------------------------------- deferred connections

TEST(Netsim, DeferredConnectionChargesLocally) {
  Network net;
  const Ipv4 ip = make_ipv4(10, 9, 9, 9);
  net.listen(ip, 80, [] { return std::make_unique<DummyBannerService>("srv"); });
  auto conn = net.connect(ip, 80, ConnMode::Deferred);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(net.clock().now_us(), 0u);  // global clock untouched
  const Bytes reply = conn->roundtrip(to_bytes("GET /"));
  EXPECT_FALSE(reply.empty());
  EXPECT_EQ(net.clock().now_us(), 0u);
  // Handshake RTT + request RTT + transfer time were banked on the conn.
  const std::uint64_t elapsed = conn->take_elapsed();
  EXPECT_GE(elapsed, 2 * net.rtt_us(ip));
  EXPECT_EQ(conn->take_elapsed(), 0u);  // take drains
}

TEST(Netsim, DeferredRefusalChargesNothing) {
  Network net;
  EXPECT_EQ(net.connect(make_ipv4(10, 9, 9, 10), 80, ConnMode::Deferred), nullptr);
  EXPECT_EQ(net.clock().now_us(), 0u);
}

TEST(Netsim, BlockingAndDeferredChargeTheSameTotal) {
  const Ipv4 ip = make_ipv4(10, 9, 9, 11);
  Network blocking_net;
  blocking_net.listen(ip, 80, [] { return std::make_unique<DummyBannerService>("a"); });
  auto b = blocking_net.connect(ip, 80);
  b->roundtrip(to_bytes("GET /"));
  const std::uint64_t blocking_total = blocking_net.clock().now_us();

  Network deferred_net;
  deferred_net.listen(ip, 80, [] { return std::make_unique<DummyBannerService>("a"); });
  auto d = deferred_net.connect(ip, 80, ConnMode::Deferred);
  d->roundtrip(to_bytes("GET /"));
  EXPECT_EQ(d->take_elapsed(), blocking_total);
}

// --------------------------------------------------------- engine equality

PopulationPlan engine_plan() {
  PopulationPlan plan;
  for (int i = 0; i < 12; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "engine";
    host.manufacturer = "other";
    host.application_uri = "urn:generic:opcua:engine-" + std::to_string(i);
    host.product_uri = "http://example.org/engine";
    host.application_name = "engine host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 3);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 3, 1});
    switch (i % 4) {
      case 0:
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.outcome = PlannedOutcome::accessible;
        host.classification = PlannedClass::production;
        host.variable_count = 6;
        host.method_count = 2;
        host.writable_fraction = 0.3;
        host.executable_fraction = 0.5;
        break;
      case 1:
        host.modes = {MessageSecurityMode::None, MessageSecurityMode::Sign};
        host.policies = {SecurityPolicy::None, SecurityPolicy::Basic128Rsa15};
        host.tokens = {UserTokenType::UserName};
        host.outcome = PlannedOutcome::auth_rejected;
        break;
      case 2:
        host.modes = {MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::Basic256Sha256};
        host.certificate.key_bits = 2048;
        host.trust_all_client_certs = false;
        host.outcome = PlannedOutcome::channel_rejected;
        break;
      default:
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.reject_all_sessions = true;
        host.outcome = PlannedOutcome::auth_rejected;
        break;
    }
    plan.hosts.push_back(std::move(host));
  }
  // A discovery server (12) referencing host 13 on a non-default port.
  HostPlan ds;
  ds.index = 12;
  ds.cohort = "engine";
  ds.discovery = true;
  ds.manufacturer = "OPC Foundation";
  ds.application_uri = "urn:opcfoundation:ua:lds:engine";
  ds.application_name = "engine lds";
  ds.asn = 64504;
  ds.certificate.present = false;
  ds.tokens = {UserTokenType::Anonymous};
  ds.modes = {MessageSecurityMode::None};
  ds.policies = {SecurityPolicy::None};
  plan.hosts.push_back(ds);

  HostPlan ref;
  ref.index = 13;
  ref.cohort = "engine";
  ref.manufacturer = "other";
  ref.application_uri = "urn:generic:opcua:engine-13";
  ref.application_name = "engine referenced host";
  ref.asn = 64505;
  ref.port = 4841;
  ref.via_reference_only = true;
  ref.certificate.present = true;
  ref.certificate.key_bits = 1024;
  ref.certificate.not_before_days = days_from_civil({2019, 3, 1});
  ref.modes = {MessageSecurityMode::None};
  ref.policies = {SecurityPolicy::None};
  ref.tokens = {UserTokenType::Anonymous};
  ref.outcome = PlannedOutcome::accessible;
  ref.classification = PlannedClass::test;
  ref.variable_count = 4;
  ref.method_count = 1;
  plan.hosts.push_back(ref);

  plan.discovery_references.emplace_back(12, 13);
  return plan;
}

ScanSnapshot run_engine_campaign(const PopulationPlan& plan, std::size_t max_in_flight,
                                 int week = 7) {
  Network net;
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 30;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  deployer.deploy_week(net, week);

  KeyFactory keys(42, "");
  CampaignConfig config;
  config.seed = 5;
  config.max_in_flight = max_in_flight;
  config.grabber.client = make_scanner_identity(42, keys);
  Campaign campaign(config, net);
  return campaign.run(week);
}

/// The acceptance property: an interleaved campaign produces the same
/// snapshot — same hosts, same per-host records, field by field — as the
/// lock-step sequential engine.
TEST(ScanEngine, ConcurrentCampaignEqualsSequential) {
  const PopulationPlan plan = engine_plan();
  const ScanSnapshot sequential = run_engine_campaign(plan, 1);
  const ScanSnapshot concurrent = run_engine_campaign(plan, 64);

  ASSERT_EQ(sequential.hosts.size(), concurrent.hosts.size());
  for (std::size_t i = 0; i < sequential.hosts.size(); ++i) {
    EXPECT_EQ(sequential.hosts[i], concurrent.hosts[i])
        << "record mismatch for " << format_ipv4(sequential.hosts[i].ip);
  }
  EXPECT_EQ(sequential, concurrent);
}

TEST(ScanEngine, WideInterleavingStillEqual) {
  const PopulationPlan plan = engine_plan();
  EXPECT_EQ(run_engine_campaign(plan, 2), run_engine_campaign(plan, 256));
}

/// Satellite: two runs of the same campaign seed with max_in_flight 1 and
/// 256 produce identical sorted host sets (and, stronger, identical
/// snapshots run-to-run).
TEST(ScanEngine, DeterminismRegression) {
  const PopulationPlan plan = engine_plan();
  const ScanSnapshot narrow = run_engine_campaign(plan, 1);
  const ScanSnapshot wide = run_engine_campaign(plan, 256);

  auto sorted_hosts = [](const ScanSnapshot& snapshot) {
    std::vector<std::pair<Ipv4, std::uint16_t>> hosts;
    for (const auto& record : snapshot.hosts) hosts.emplace_back(record.ip, record.port);
    std::sort(hosts.begin(), hosts.end());
    return hosts;
  };
  EXPECT_EQ(sorted_hosts(narrow), sorted_hosts(wide));

  // Re-running the exact same configuration is bit-identical.
  EXPECT_EQ(run_engine_campaign(plan, 256), wide);
}

TEST(ScanEngine, ConcurrentCampaignCompressesSimulatedTime) {
  const PopulationPlan plan = engine_plan();

  auto simulated_us = [&](std::size_t max_in_flight) {
    Network net;
    DeployConfig deploy_config;
    deploy_config.seed = 42;
    deploy_config.dummy_hosts = 0;
    deploy_config.fast_keys = true;
    deploy_config.key_cache_path = "";
    Deployer deployer(plan, deploy_config);
    deployer.deploy_week(net, 7);
    KeyFactory keys(42, "");
    CampaignConfig config;
    config.seed = 5;
    config.max_in_flight = max_in_flight;
    config.grabber.client = make_scanner_identity(42, keys);
    Campaign campaign(config, net);
    campaign.run(7);
    return net.clock().now_us();
  };

  const std::uint64_t lock_step = simulated_us(1);
  const std::uint64_t interleaved = simulated_us(256);
  // With every host in flight at once, the campaign's simulated wall-clock
  // collapses from the sum of per-host times towards the slowest host (plus
  // the reference-following wave, which only starts once phase 2 drains).
  EXPECT_LT(interleaved * 2, lock_step);
}

// ------------------------------------------------------------ sharded runs

TEST(ShardedStudy, MergedShardsMatchSingleNetworkCampaign) {
  const PopulationPlan plan = engine_plan();
  const ScanSnapshot reference = run_engine_campaign(plan, 256);

  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 30;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  KeyFactory keys(42, "");
  ShardedCampaignConfig config;
  config.campaign.seed = 5;
  config.campaign.grabber.client = make_scanner_identity(42, keys);
  config.shards = 3;
  config.threads = 2;
  const ScanSnapshot merged = run_sharded_campaign(deployer, 7, config);

  auto key_of = [](const HostScanRecord& r) { return std::make_pair(r.ip, r.port); };
  std::vector<HostScanRecord> expected = reference.hosts;
  std::sort(expected.begin(), expected.end(),
            [&](const auto& a, const auto& b) { return key_of(a) < key_of(b); });
  ASSERT_EQ(merged.hosts.size(), expected.size());
  for (std::size_t i = 0; i < merged.hosts.size(); ++i) {
    EXPECT_EQ(key_of(merged.hosts[i]), key_of(expected[i]));
    EXPECT_EQ(merged.hosts[i].session, expected[i].session);
    EXPECT_EQ(merged.hosts[i].endpoints, expected[i].endpoints);
    EXPECT_EQ(merged.hosts[i].nodes, expected[i].nodes);
  }
  EXPECT_EQ(merged.measurement_index, reference.measurement_index);
  EXPECT_EQ(merged.probes_sent, reference.probes_sent);
  EXPECT_EQ(merged.tcp_open_count, reference.tcp_open_count);
}

TEST(ShardedStudy, ShardingIsDeterministic) {
  const PopulationPlan plan = engine_plan();
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 10;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  KeyFactory keys(42, "");

  auto run_once = [&] {
    Deployer deployer(plan, deploy_config);
    ShardedCampaignConfig config;
    config.campaign.seed = 5;
    config.campaign.grabber.client = make_scanner_identity(42, keys);
    config.shards = 4;
    config.threads = 4;
    return run_sharded_campaign(deployer, 7, config);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace opcua_study
