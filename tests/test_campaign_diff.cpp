// Cross-campaign differential analysis:
//  - campaign label/epoch round-trips through the v5 footer (files
//    without it default, v4 unaffected),
//  - the follow-up evolution model is deterministic and its streamed and
//    in-memory paths produce the identical campaign,
//  - the matcher re-identifies hosts by address and by certificate, and
//    every CampaignDiff count matches hand-crafted expectations,
//  - the diff is identical for any thread count and for streamed vs.
//    load-all inputs, and a corrupt second campaign fails with a
//    descriptive SnapshotError,
//  - the sharded streamed study writer produces the sharded campaign's
//    host set with thread-count-invariant bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "diff/diff.hpp"
#include "scanner/snapshot_io.hpp"
#include "study/followup.hpp"
#include "study/sharded.hpp"
#include "util/date.hpp"
#include "util/hex.hpp"

namespace opcua_study {
namespace {

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

FollowupConfig small_followup_config() {
  FollowupConfig config;
  // Keep the test-time mint cheap and hermetic: the diff tests exercise
  // fingerprints and determinism, not minted-certificate conformance.
  config.mint_keys = 4;
  config.mint_fleet = 32;
  config.mint_key_bits = 512;
  config.key_cache_path = "";
  return config;
}

/// Per-host unique certificates (serial = host index) from a small key
/// pool: the certificate matcher needs fingerprints that identify hosts.
const std::vector<Bytes>& unique_certs() {
  static const std::vector<Bytes> certs = [] {
    KeyFactory keys(991, "");
    std::vector<Bytes> ders;
    for (int i = 0; i < 80; ++i) {
      const RsaKeyPair kp = keys.get("diff-test-" + std::to_string(i % 6), 512);
      CertificateSpec spec;
      spec.subject = {"diff device " + std::to_string(i), "Diff Test Org", "DE"};
      spec.signature_hash = i % 2 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
      spec.serial = Bignum{static_cast<std::uint64_t>(5000 + i)};
      spec.not_before_days = days_from_civil({2019, 1, 1});
      spec.not_after_days = spec.not_before_days + 3650;
      spec.application_uri = "urn:difftest:device:" + std::to_string(i);
      ders.push_back(x509_create(spec, kp.pub, kp.priv));
    }
    return ders;
  }();
  return certs;
}

HostScanRecord make_host(std::size_t i) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x16000000u + static_cast<std::uint32_t>(i));
  host.port = kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 5);
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.application_uri = "urn:generic:difftest-" + std::to_string(i);
  host.software_version = "1.0";

  EndpointObservation ep;
  ep.url = "opc.tcp://d" + std::to_string(i) + ":4840/";
  const SecurityPolicy policy = i % 4 == 0   ? SecurityPolicy::None
                                : i % 4 == 1 ? SecurityPolicy::Basic256
                                             : SecurityPolicy::Basic256Sha256;
  ep.mode = policy == SecurityPolicy::None ? MessageSecurityMode::None
                                           : MessageSecurityMode::SignAndEncrypt;
  ep.policy_uri = std::string(policy_info(policy).uri);
  ep.policy = policy;
  ep.policy_known = true;
  ep.token_types = i % 2 ? std::vector<UserTokenType>{UserTokenType::Anonymous,
                                                      UserTokenType::UserName}
                         : std::vector<UserTokenType>{UserTokenType::UserName};
  if (i % 5 != 0) ep.certificate_der = unique_certs()[i % unique_certs().size()];
  host.endpoints.push_back(std::move(ep));

  host.channel = ChannelOutcome::established;
  host.anonymous_offered = i % 2 == 1;
  host.session = host.anonymous_offered ? SessionOutcome::accessible
                                        : SessionOutcome::not_attempted;
  host.namespaces = {"http://opcfoundation.org/UA/"};
  host.bytes_sent = 1000 + i;
  host.duration_seconds = 50.0;
  return host;
}

std::vector<ScanSnapshot> make_base_study(std::size_t hosts_per_week, int weeks = 2) {
  std::vector<ScanSnapshot> snapshots;
  for (int week = 0; week < weeks; ++week) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = week;
    snapshot.date_days = days_from_civil({2020, 2, 9}) + 28 * week;
    snapshot.probes_sent = 5000;
    snapshot.tcp_open_count = 500;
    for (std::size_t i = 0; i < hosts_per_week; ++i) snapshot.hosts.push_back(make_host(i));
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

// ------------------------------------------------ campaign label/epoch ----

TEST(CampaignMeta, RoundTripsThroughV5Footer) {
  const std::string path = "/tmp/opcua_diff_meta.bin";
  const std::vector<ScanSnapshot> study = make_base_study(4, 2);
  {
    SnapshotWriter writer(path, 42);
    writer.set_campaign("imc2020-study", days_from_civil({2020, 2, 9}));
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  const SnapshotReader reader(path, 42);
  ASSERT_EQ(reader.snapshots().size(), 2u);
  for (const auto& meta : reader.snapshots()) {
    EXPECT_EQ(meta.campaign_label, "imc2020-study");
    EXPECT_EQ(meta.campaign_epoch_days, days_from_civil({2020, 2, 9}));
  }
  // The records themselves are untouched by the campaign block.
  EXPECT_EQ(reader.load_all(), study);
  std::remove(path.c_str());
}

TEST(CampaignMeta, FilesWithoutLabelDefaultAndStayByteIdentical) {
  const std::string labeled = "/tmp/opcua_diff_meta_labeled.bin";
  const std::string plain = "/tmp/opcua_diff_meta_plain.bin";
  const std::vector<ScanSnapshot> study = make_base_study(3, 1);
  save_snapshots(plain, 42, study);  // never calls set_campaign
  {
    SnapshotWriter writer(labeled, 42);
    writer.set_campaign("x", 1);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  // Unlabeled writers omit the campaign block entirely: the file is
  // byte-identical to the pre-label format, and readers default the meta.
  const SnapshotReader reader(plain, 42);
  EXPECT_EQ(reader.snapshots()[0].campaign_label, "");
  EXPECT_EQ(reader.snapshots()[0].campaign_epoch_days, 0);
  EXPECT_NE(read_file_bytes(plain), read_file_bytes(labeled));
  EXPECT_EQ(read_file_bytes(plain).size() +
                (4 + 4 + 1 + 8),  // CAMP magic + string "x" (len+1 byte) + i64
            read_file_bytes(labeled).size());

  // v4 files never carry a campaign block and load with defaults.
  const std::string v4 = "/tmp/opcua_diff_meta_v4.bin";
  save_snapshots_v4(v4, 7, study);
  const SnapshotReader v4_reader(v4, 7);
  EXPECT_EQ(v4_reader.snapshots()[0].campaign_label, "");
  EXPECT_EQ(v4_reader.snapshots()[0].campaign_epoch_days, 0);
  std::remove(labeled.c_str());
  std::remove(plain.c_str());
  std::remove(v4.c_str());
}

// ------------------------------------------------------ evolution model ----

TEST(FollowupModel, EvolutionIsAPureFunctionOfHostIdentity) {
  const FollowupModel model(small_followup_config());
  const FollowupModel twin(small_followup_config());
  int retired = 0, churned = 0, renewed = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    const HostScanRecord host = make_host(i);
    const auto a = model.evolve(host);
    const auto b = model.evolve(host);   // same model, repeated call
    const auto c = twin.evolve(host);    // independent model, same config
    ASSERT_EQ(a.has_value(), b.has_value());
    ASSERT_EQ(a.has_value(), c.has_value());
    if (!a) {
      ++retired;
      continue;
    }
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*a, *c);
    EXPECT_EQ(a->port, host.port);
    if (a->ip != host.ip) {
      ++churned;
      EXPECT_EQ(a->ip, FollowupModel::churned_ip(host.ip));
      EXPECT_GE(a->ip, 0x80000000u);  // churn range disjoint from base
    }
    if (!host.endpoints[0].certificate_der.empty() &&
        a->endpoints[0].certificate_der != host.endpoints[0].certificate_der) {
      ++renewed;
    }
  }
  // The model exercises its interesting transitions on this population.
  EXPECT_GT(retired, 0);
  EXPECT_GT(churned, 0);
  EXPECT_GT(renewed, 0);
}

TEST(FollowupModel, ChurnedAddressesNeverCollide) {
  std::set<Ipv4> seen;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    const Ipv4 ip = 0x16000000u + i * 7;
    EXPECT_TRUE(seen.insert(FollowupModel::churned_ip(ip)).second);
  }
}

TEST(FollowupStudy, StreamedMatchesInMemory) {
  const std::string base_path = "/tmp/opcua_diff_base_stream.bin";
  const std::string followup_path = "/tmp/opcua_diff_followup_stream.bin";
  const std::vector<ScanSnapshot> base = make_base_study(50);
  save_snapshots(base_path, 42, base);

  FollowupConfig config = small_followup_config();
  config.campaign_label = "followup-test";
  const std::vector<ScanSnapshot> in_memory = run_followup_study(base, config);
  ASSERT_EQ(in_memory.size(), 1u);
  {
    const SnapshotReader reader(base_path, 42);
    SnapshotWriter writer(followup_path, config.seed);
    run_followup_study_streamed(reader, config, writer);
  }
  const SnapshotReader followup(followup_path, config.seed);
  EXPECT_EQ(followup.load_all(), in_memory);
  ASSERT_EQ(followup.snapshots().size(), 1u);
  EXPECT_EQ(followup.snapshots()[0].campaign_label, "followup-test");
  EXPECT_EQ(followup.snapshots()[0].campaign_epoch_days,
            followup_epoch_days(config, base.back().date_days));
  // The evolved population mixes survivors and new deployments.
  EXPECT_GT(followup.total_records(), 0u);
  std::remove(base_path.c_str());
  std::remove(followup_path.c_str());
}

// --------------------------------------------------------- the matcher ----

TEST(CampaignDiffTest, MatchesHandCraftedExpectations) {
  // Hosts without certificates keep the posture logic free of the
  // key-length conformance dimension; the cert cases get their own hosts.
  auto bare_host = [](Ipv4 ip, MessageSecurityMode mode, SecurityPolicy policy, bool anonymous) {
    HostScanRecord host;
    host.ip = ip;
    host.port = kOpcUaDefaultPort;
    host.speaks_opcua = true;
    EndpointObservation ep;
    ep.url = "opc.tcp://x:4840/";
    ep.mode = mode;
    ep.policy_uri = std::string(policy_info(policy).uri);
    ep.policy = policy;
    ep.policy_known = true;
    ep.token_types = anonymous ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                               : std::vector<UserTokenType>{UserTokenType::UserName};
    host.endpoints.push_back(std::move(ep));
    host.anonymous_offered = anonymous;
    return host;
  };
  auto with_cert = [&](HostScanRecord host, std::size_t cert_index) {
    host.endpoints[0].certificate_der = unique_certs()[cert_index];
    return host;
  };

  ScanSnapshot base;
  base.measurement_index = 0;
  base.date_days = 100;
  // 1: stays at its address, upgrades None-only -> SignAndEncrypt/secure,
  //    drops anonymous (deficient -> clean: remediated).
  base.hosts.push_back(bare_host(10, MessageSecurityMode::None, SecurityPolicy::None, true));
  // 2: churns IP but keeps its certificate verbatim -> re-identified.
  base.hosts.push_back(
      with_cert(bare_host(11, MessageSecurityMode::Sign, SecurityPolicy::Basic256, false), 0));
  // 3: retires.
  base.hosts.push_back(bare_host(12, MessageSecurityMode::None, SecurityPolicy::None, true));
  // 4: stays, renews its certificate (disjoint fingerprints).
  base.hosts.push_back(with_cert(
      bare_host(13, MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, false),
      1));
  // 6: stays None-only/anonymous but gains a first certificate.
  base.hosts.push_back(bare_host(14, MessageSecurityMode::None, SecurityPolicy::None, true));

  ScanSnapshot followup;
  followup.measurement_index = 0;
  followup.date_days = 830;
  followup.hosts.push_back(
      bare_host(10, MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, false));
  followup.hosts.push_back(
      with_cert(bare_host(77, MessageSecurityMode::Sign, SecurityPolicy::Basic256, false), 0));
  followup.hosts.push_back(with_cert(
      bare_host(13, MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, false),
      2));
  // 5: brand new arrival.
  followup.hosts.push_back(bare_host(99, MessageSecurityMode::None, SecurityPolicy::None, true));
  followup.hosts.push_back(
      with_cert(bare_host(14, MessageSecurityMode::None, SecurityPolicy::None, true), 4));

  const CampaignDiff diff = diff_snapshots({base}, {followup}, {});
  EXPECT_EQ(diff.base_hosts, 5u);
  EXPECT_EQ(diff.followup_hosts, 5u);
  EXPECT_EQ(diff.matched_by_address, 3u);      // hosts 1, 4 and 6
  EXPECT_EQ(diff.matched_by_certificate, 1u);  // host 2 across the churn
  EXPECT_EQ(diff.retired, 1u);                 // host 3
  EXPECT_EQ(diff.arrived, 1u);                 // host 5

  EXPECT_EQ(diff.mode_transitions.at(0, 0), 1u);  // host 6 stays None
  EXPECT_EQ(diff.mode_transitions.at(0, 2), 1u);  // None -> SignAndEncrypt
  EXPECT_EQ(diff.mode_transitions.at(1, 1), 1u);  // Sign stays
  EXPECT_EQ(diff.mode_transitions.at(2, 2), 1u);
  EXPECT_EQ(diff.mode_transitions.upgraded(), 1u);
  EXPECT_EQ(diff.mode_transitions.downgraded(), 0u);
  EXPECT_EQ(diff.policy_transitions.at(0, 0), 1u);
  EXPECT_EQ(diff.policy_transitions.at(0, 2), 1u);  // None -> secure
  EXPECT_EQ(diff.policy_transitions.at(1, 1), 1u);  // deprecated retained
  EXPECT_EQ(diff.policy_transitions.at(2, 2), 1u);

  EXPECT_EQ(diff.deprecated_retained, 1u);
  EXPECT_EQ(diff.deprecated_dropped, 0u);
  EXPECT_EQ(diff.anonymous_retained, 1u);  // host 6
  EXPECT_EQ(diff.anonymous_dropped, 1u);
  EXPECT_EQ(diff.anonymous_adopted, 0u);

  EXPECT_EQ(diff.certs_verbatim, 1u);  // host 2
  EXPECT_EQ(diff.certs_renewed, 1u);   // host 4
  EXPECT_EQ(diff.certs_gained, 1u);    // host 6
  EXPECT_EQ(diff.certs_lost, 0u);
  EXPECT_EQ(diff.certs_absent, 1u);    // host 1
  EXPECT_EQ(diff.certs_rotated, 0u);

  EXPECT_EQ(diff.remediated, 1u);       // host 1
  // host 2 (deprecated maximum), host 4 (512-bit key too weak for its
  // announced Basic256Sha256) and host 6 (anonymous) stay deficient.
  EXPECT_EQ(diff.still_deficient, 3u);
  EXPECT_EQ(diff.regressed, 0u);
  EXPECT_EQ(diff.never_deficient, 0u);
}

TEST(CampaignDiffTest, ReusedCertificatesReIdentifyNobody) {
  // Two base hosts share one certificate; both churn. The fingerprint is
  // ambiguous on the base side, so neither may be cert-matched.
  auto host_with = [&](Ipv4 ip, std::size_t cert_index) {
    HostScanRecord host;
    host.ip = ip;
    host.port = kOpcUaDefaultPort;
    host.speaks_opcua = true;
    EndpointObservation ep;
    ep.url = "opc.tcp://x:4840/";
    ep.mode = MessageSecurityMode::SignAndEncrypt;
    ep.policy = SecurityPolicy::Basic256Sha256;
    ep.policy_uri = std::string(policy_info(ep.policy).uri);
    ep.policy_known = true;
    ep.token_types = {UserTokenType::UserName};
    ep.certificate_der = unique_certs()[cert_index];
    host.endpoints.push_back(std::move(ep));
    return host;
  };
  ScanSnapshot base, followup;
  base.hosts = {host_with(1, 3), host_with(2, 3)};
  followup.hosts = {host_with(50, 3), host_with(51, 3)};
  const CampaignDiff diff = diff_snapshots({base}, {followup}, {});
  EXPECT_EQ(diff.matched_by_certificate, 0u);
  EXPECT_EQ(diff.retired, 2u);
  EXPECT_EQ(diff.arrived, 2u);
}

// ------------------------------------------------ determinism and scale ----

TEST(CampaignDiffTest, DeterministicAcrossThreadsAndStreamedVsLoadAll) {
  const std::string base_path = "/tmp/opcua_diff_det_base.bin";
  const std::string followup_path = "/tmp/opcua_diff_det_followup.bin";
  const std::vector<ScanSnapshot> base = make_base_study(80);
  const FollowupConfig config = small_followup_config();
  const std::vector<ScanSnapshot> followup = run_followup_study(base, config);
  {
    // Small chunks -> many parallel posture work units with ragged tails.
    SnapshotWriter writer(base_path, 42, 17);
    writer.set_campaign("det-base", 100);
    for (const auto& snapshot : base) writer.add_snapshot(snapshot);
    writer.finish();
  }
  {
    SnapshotWriter writer(followup_path, config.seed, 23);
    writer.set_campaign("det-followup", 930);
    for (const auto& snapshot : followup) writer.add_snapshot(snapshot);
    writer.finish();
  }
  DiffOptions serial;
  serial.threads = 1;
  DiffOptions parallel;
  parallel.threads = 8;
  const CampaignDiff streamed1 = diff_files(base_path, 42, followup_path, config.seed, serial);
  const CampaignDiff streamed8 = diff_files(base_path, 42, followup_path, config.seed, parallel);
  EXPECT_EQ(streamed1, streamed8);

  // Load-all inputs (in-memory vectors, no campaign labels) must produce
  // the identical counts, for any chunking.
  DiffOptions tiny_chunks;
  tiny_chunks.threads = 8;
  tiny_chunks.chunk_records = 7;
  const CampaignDiff load_all = diff_snapshots(base, followup, tiny_chunks);
  EXPECT_TRUE(streamed1.counts_equal(load_all));
  EXPECT_GT(streamed1.matched(), 0u);
  EXPECT_GT(streamed1.matched_by_certificate, 0u);
  EXPECT_GT(streamed1.retired, 0u);
  EXPECT_GT(streamed1.arrived, 0u);
  std::remove(base_path.c_str());
  std::remove(followup_path.c_str());
}

TEST(CampaignDiffTest, CorruptSecondCampaignFailsWithSnapshotError) {
  const std::string base_path = "/tmp/opcua_diff_corrupt_base.bin";
  const std::string followup_path = "/tmp/opcua_diff_corrupt_followup.bin";
  const std::vector<ScanSnapshot> base = make_base_study(30);
  const std::vector<ScanSnapshot> followup = run_followup_study(base, small_followup_config());
  save_snapshots(base_path, 42, base);
  save_snapshots(followup_path, 42, followup);
  const Bytes full = read_file_bytes(followup_path);
  ASSERT_GT(full.size(), 200u);

  // Truncation anywhere in the second campaign must surface as a
  // descriptive SnapshotError from the diff entry point.
  for (const std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{40}}) {
    write_file_bytes(followup_path, Bytes(full.begin(), full.begin() + static_cast<long>(cut)));
    try {
      diff_files(base_path, 42, followup_path, 42, {});
      FAIL() << "diff of a truncated follow-up campaign (cut at " << cut << ") did not throw";
    } catch (const SnapshotError& e) {
      EXPECT_FALSE(std::string(e.what()).empty());
    }
  }

  // A flipped byte inside a record payload fails on decode, not before:
  // corrupt the first chunk's payload and expect the posture pass to
  // surface the SnapshotError (or the flip to land harmlessly).
  Bytes mutated = full;
  mutated[80] ^= 0x40;
  write_file_bytes(followup_path, mutated);
  try {
    const CampaignDiff diff = diff_files(base_path, 42, followup_path, 42, {});
    EXPECT_EQ(diff.followup_hosts, followup.back().hosts.size());
  } catch (const SnapshotError& e) {
    EXPECT_FALSE(std::string(e.what()).empty());
  }
  std::remove(base_path.c_str());
  std::remove(followup_path.c_str());
}

TEST(CampaignDiffTest, PairingValidation) {
  const std::vector<ScanSnapshot> base = make_base_study(10, 1);
  const std::vector<ScanSnapshot> followup = run_followup_study(base, small_followup_config());
  auto write_labeled = [&](const std::string& path, const std::vector<ScanSnapshot>& study,
                           const std::string& label, std::int64_t epoch) {
    SnapshotWriter writer(path, 42);
    writer.set_campaign(label, epoch);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  };
  const std::string a = "/tmp/opcua_diff_pair_a.bin";
  const std::string b = "/tmp/opcua_diff_pair_b.bin";

  // Follow-up epoch before the base epoch: the pairing is backwards.
  write_labeled(a, base, "study-2020", 2000);
  write_labeled(b, followup, "study-2022", 1000);
  EXPECT_THROW(diff_files(a, 42, b, 42, {}), SnapshotError);
  DiffOptions unchecked;
  unchecked.validate_pairing = false;
  EXPECT_NO_THROW(diff_files(a, 42, b, 42, unchecked));

  // The same campaign on both sides is not a pair either.
  EXPECT_THROW(diff_files(a, 42, a, 42, {}), SnapshotError);

  // Correctly ordered pair passes.
  write_labeled(b, followup, "study-2022", 2730);
  EXPECT_NO_THROW(diff_files(a, 42, b, 42, {}));

  // Unlabeled inputs predate the campaign block: nothing to validate.
  save_snapshots(a, 42, base);
  save_snapshots(b, 42, followup);
  EXPECT_NO_THROW(diff_files(a, 42, b, 42, {}));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ------------------------------------------- sharded streamed scan side ----

PopulationPlan diff_engine_plan() {
  PopulationPlan plan;
  for (int i = 0; i < 10; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "diff-engine";
    host.manufacturer = "other";
    host.application_uri = "urn:generic:opcua:diff-engine-" + std::to_string(i);
    host.application_name = "diff engine host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 3);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 3, 1});
    if (i % 3 == 0) {
      host.modes = {MessageSecurityMode::None};
      host.policies = {SecurityPolicy::None};
      host.tokens = {UserTokenType::Anonymous};
      host.outcome = PlannedOutcome::accessible;
      host.classification = PlannedClass::test;
      host.variable_count = 3;
    } else {
      host.modes = {MessageSecurityMode::None, MessageSecurityMode::Sign};
      host.policies = {SecurityPolicy::None, SecurityPolicy::Basic256Sha256};
      host.tokens = {UserTokenType::UserName};
      host.outcome = PlannedOutcome::auth_rejected;
    }
    plan.hosts.push_back(std::move(host));
  }
  return plan;
}

TEST(ShardedStreamedStudy, MatchesShardedCampaignWithThreadInvariantBytes) {
  const PopulationPlan plan = diff_engine_plan();
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 20;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  KeyFactory keys(42, "");

  ShardedCampaignConfig config;
  config.campaign.seed = 5;
  config.campaign.grabber.client = make_scanner_identity(42, keys);
  config.shards = 3;

  auto run_streamed = [&](const std::string& path, int threads) {
    Deployer deployer(plan, deploy_config);
    ShardedCampaignConfig streamed_config = config;
    streamed_config.threads = threads;
    SnapshotWriter writer(path, 42);
    const SnapshotMeta meta =
        run_sharded_campaign_streamed(deployer, 7, streamed_config, writer);
    writer.finish();
    return meta;
  };
  const std::string serial_path = "/tmp/opcua_diff_sharded_serial.bin";
  const std::string threaded_path = "/tmp/opcua_diff_sharded_threaded.bin";
  const SnapshotMeta meta1 = run_streamed(serial_path, 1);
  const SnapshotMeta meta4 = run_streamed(threaded_path, 4);

  // Same bytes for any worker-thread count: shard batches land in shard
  // order regardless of completion order.
  EXPECT_EQ(meta1, meta4);
  EXPECT_EQ(read_file_bytes(serial_path), read_file_bytes(threaded_path));

  // Same host set (and records) as the buffered sharded merge; only the
  // canonical order differs (shard-major vs. global sort).
  Deployer deployer(plan, deploy_config);
  ShardedCampaignConfig merged_config = config;
  merged_config.threads = 2;
  const ScanSnapshot merged = run_sharded_campaign(deployer, 7, merged_config);
  std::vector<ScanSnapshot> streamed = SnapshotReader(serial_path, 42).load_all();
  ASSERT_EQ(streamed.size(), 1u);
  std::sort(streamed[0].hosts.begin(), streamed[0].hosts.end(),
            [](const HostScanRecord& a, const HostScanRecord& b) {
              return std::make_pair(a.ip, a.port) < std::make_pair(b.ip, b.port);
            });
  EXPECT_EQ(streamed[0].hosts, merged.hosts);
  EXPECT_EQ(meta1.probes_sent, merged.probes_sent);
  EXPECT_EQ(meta1.tcp_open_count, merged.tcp_open_count);
  EXPECT_EQ(meta1.host_count, merged.hosts.size());
  std::remove(serial_path.c_str());
  std::remove(threaded_path.c_str());
}

}  // namespace
}  // namespace opcua_study
