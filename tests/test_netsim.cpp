// Simulated-Internet unit tests: listeners, probes, RTT determinism, AS
// database longest-prefix matching, clock accounting.
#include <gtest/gtest.h>

#include "netsim/network.hpp"

namespace opcua_study {
namespace {

TEST(Netsim, ListenProbeConnectLifecycle) {
  Network net;
  const Ipv4 ip = make_ipv4(10, 5, 5, 5);
  EXPECT_FALSE(net.syn_probe(ip, 4840));
  net.listen(ip, 4840, [] { return std::make_unique<DummyBannerService>("x"); });
  EXPECT_TRUE(net.syn_probe(ip, 4840));
  EXPECT_TRUE(net.is_listening(ip, 4840));
  EXPECT_FALSE(net.is_listening(ip, 4841));
  EXPECT_EQ(net.listener_count(), 1u);
  auto conn = net.connect(ip, 4840);
  ASSERT_NE(conn, nullptr);
  net.close_listener(ip, 4840);
  EXPECT_FALSE(net.syn_probe(ip, 4840));
  EXPECT_EQ(net.connect(ip, 4840), nullptr);
}

TEST(Netsim, PortsAreIndependent) {
  Network net;
  const Ipv4 ip = make_ipv4(10, 5, 5, 6);
  net.listen(ip, 4840, [] { return std::make_unique<DummyBannerService>("a"); });
  net.listen(ip, 48010, [] { return std::make_unique<DummyBannerService>("b"); });
  EXPECT_EQ(net.listener_count(), 2u);
  const auto endpoints = net.bound_endpoints();
  EXPECT_EQ(endpoints.size(), 2u);
}

TEST(Netsim, RttIsDeterministicAndBounded) {
  Network net;
  for (Ipv4 ip : {make_ipv4(1, 2, 3, 4), make_ipv4(200, 9, 8, 7), Ipv4{0}}) {
    const auto rtt = net.rtt_us(ip);
    EXPECT_EQ(rtt, net.rtt_us(ip));
    EXPECT_GE(rtt, 10000u);   // >= 10 ms
    EXPECT_LE(rtt, 150000u);  // <= 150 ms
  }
  EXPECT_NE(net.rtt_us(make_ipv4(1, 2, 3, 4)), net.rtt_us(make_ipv4(1, 2, 3, 5)));
}

TEST(Netsim, ConnectionAccountsBytesAndTime) {
  Network net;
  const Ipv4 ip = make_ipv4(10, 5, 5, 7);
  net.listen(ip, 80, [] { return std::make_unique<DummyBannerService>("srv"); });
  auto conn = net.connect(ip, 80);
  const std::uint64_t t0 = net.clock().now_us();
  const Bytes reply = conn->roundtrip(to_bytes("GET /"));
  EXPECT_FALSE(reply.empty());
  EXPECT_EQ(conn->bytes_sent(), 5u);
  EXPECT_EQ(conn->bytes_received(), reply.size());
  EXPECT_GT(net.clock().now_us(), t0);
  EXPECT_EQ(net.total_bytes_sent(), 5u);
  // The banner service serves once, then the connection is dead.
  EXPECT_TRUE(conn->peer_closed());
  EXPECT_THROW(conn->roundtrip(to_bytes("again")), DecodeError);
}

TEST(AsDb, LongestPrefixMatchWins) {
  AsDatabase db;
  db.add(parse_cidr("20.0.0.0/8"), {100, "big"});
  db.add(parse_cidr("20.1.0.0/16"), {200, "specific"});
  EXPECT_EQ(db.asn_of(make_ipv4(20, 2, 0, 1)), 100u);
  EXPECT_EQ(db.asn_of(make_ipv4(20, 1, 9, 9)), 200u);
  EXPECT_EQ(db.asn_of(make_ipv4(30, 0, 0, 1)), 0u);
  EXPECT_EQ(db.lookup(make_ipv4(20, 1, 0, 1))->name, "specific");
  EXPECT_EQ(db.lookup(make_ipv4(99, 0, 0, 1)), nullptr);
}

TEST(SimClock, DayAndFiletimeProgression) {
  SimClock clock(days_from_civil({2020, 2, 9}));
  EXPECT_EQ(clock.today_days(), days_from_civil({2020, 2, 9}));
  clock.advance_ms(36ULL * 3600 * 1000);  // +1.5 days
  EXPECT_EQ(clock.today_days(), days_from_civil({2020, 2, 10}));
  EXPECT_GT(clock.now_filetime(), filetime_from_days(days_from_civil({2020, 2, 9})));
  clock.reset(days_from_civil({2020, 3, 1}));
  EXPECT_EQ(clock.now_us(), 0u);
  EXPECT_EQ(clock.today_days(), days_from_civil({2020, 3, 1}));
}

}  // namespace
}  // namespace opcua_study
