// End-to-end OPC UA stack tests: encoding round-trips, transport framing,
// secure conversation, and full client↔server exchanges over the simulated
// network — for every security policy and mode combination of Table 1.
#include <gtest/gtest.h>

#include "crypto/x509.hpp"
#include "netsim/opcua_service.hpp"
#include "opcua/client.hpp"
#include "util/date.hpp"

namespace opcua_study {
namespace {

// ------------------------------------------------------- shared fixtures ----

struct TestIdentity {
  RsaKeyPair keys;
  Bytes cert_der;
};

TestIdentity make_identity(const std::string& cn, std::uint64_t seed, HashAlgorithm sig_hash,
                           std::size_t bits = 768) {
  Rng rng(seed);
  TestIdentity id;
  id.keys = rsa_generate(rng, bits, 8);
  CertificateSpec spec;
  spec.subject = {cn, "Test Org", "DE"};
  spec.signature_hash = sig_hash;
  spec.serial = Bignum{seed};
  spec.not_before_days = days_from_civil({2019, 1, 1});
  spec.not_after_days = days_from_civil({2030, 1, 1});
  spec.application_uri = "urn:" + cn;
  id.cert_der = x509_create(spec, id.keys.pub, id.keys.priv);
  return id;
}

const TestIdentity& server_identity() {
  static const TestIdentity id = make_identity("test-server", 9001, HashAlgorithm::sha256);
  return id;
}

const TestIdentity& client_identity() {
  static const TestIdentity id = make_identity("test-scanner", 9002, HashAlgorithm::sha256);
  return id;
}

std::shared_ptr<AddressSpace> make_space() {
  auto space = std::make_shared<AddressSpace>();
  const std::uint16_t ns = space->add_namespace("urn:test:vendor");
  space->add_object(NodeId(ns, 100), node_ids::kObjectsFolder, "Plant");
  space->add_variable(NodeId(ns, 101), NodeId(ns, 100), "m3InflowPerHour", Variant{12.5},
                      access_level::kCurrentRead);
  space->add_variable(NodeId(ns, 102), NodeId(ns, 100), "rSetFillLevel", Variant{80.0},
                      access_level::kCurrentRead | access_level::kCurrentWrite);
  space->add_variable(NodeId(ns, 103), NodeId(ns, 100), "secret", Variant{"classified"}, 0);
  space->add_method(NodeId(ns, 104), NodeId(ns, 100), "AddEndpoint", true);
  space->add_method(NodeId(ns, 105), NodeId(ns, 100), "Reboot", false);
  return space;
}

ServerConfig make_server_config(SecurityPolicy policy, MessageSecurityMode mode,
                                bool with_none_endpoint = true) {
  ServerConfig config;
  config.identity.application_uri = "urn:test-server";
  config.identity.product_uri = "urn:test:product";
  config.identity.application_name = "Test Server";
  config.certificates = {server_identity().cert_der};
  config.private_keys = {server_identity().keys.priv};
  config.address_space = make_space();
  if (with_none_endpoint) {
    EndpointConfig none_ep;
    none_ep.url = "opc.tcp://10.0.0.1:4840/";
    none_ep.mode = MessageSecurityMode::None;
    none_ep.policy = SecurityPolicy::None;
    none_ep.token_types = {UserTokenType::Anonymous, UserTokenType::UserName};
    config.endpoints.push_back(none_ep);
  }
  if (policy != SecurityPolicy::None) {
    EndpointConfig secure_ep;
    secure_ep.url = "opc.tcp://10.0.0.1:4840/";
    secure_ep.mode = mode;
    secure_ep.policy = policy;
    secure_ep.token_types = {UserTokenType::Anonymous, UserTokenType::UserName};
    config.endpoints.push_back(secure_ep);
  }
  return config;
}

struct Rig {
  Network net;
  std::shared_ptr<Server> server;
  std::unique_ptr<NetConnection> conn;
  std::unique_ptr<Client> client;

  explicit Rig(ServerConfig config) {
    server = std::make_shared<Server>(std::move(config), 77);
    const Ipv4 ip = make_ipv4(10, 0, 0, 1);
    net.listen(ip, kOpcUaDefaultPort, make_opcua_factory(server));
    conn = net.connect(ip, kOpcUaDefaultPort);
    ClientConfig cc;
    cc.certificate_der = client_identity().cert_der;
    cc.private_key = client_identity().keys.priv;
    client = std::make_unique<Client>(cc, *conn, Rng(123));
  }
};

// ------------------------------------------------------------- encoding ----

TEST(UaEncoding, NodeIdFormsRoundTrip) {
  UaWriter w;
  w.node_id(NodeId(0, 84));           // two-byte
  w.node_id(NodeId(3, 1025));         // four-byte
  w.node_id(NodeId(300, 500000));     // numeric
  w.node_id(NodeId(2, "m3Inflow"));   // string
  UaReader r(w.bytes());
  EXPECT_EQ(r.node_id(), NodeId(0, 84));
  EXPECT_EQ(r.node_id(), NodeId(3, 1025));
  EXPECT_EQ(r.node_id(), NodeId(300, 500000));
  EXPECT_EQ(r.node_id(), NodeId(2, "m3Inflow"));
  EXPECT_TRUE(r.done());
}

TEST(UaEncoding, StringsAndNulls) {
  UaWriter w;
  w.string("hello");
  w.null_string();
  w.string("");
  UaReader r(w.bytes());
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.string(), "");
  EXPECT_EQ(r.string(), "");
}

TEST(UaEncoding, VariantsRoundTrip) {
  const std::vector<Variant> values = {
      Variant{},
      Variant{true},
      Variant{std::int32_t{-5}},
      Variant{std::uint32_t{17}},
      Variant{std::int64_t{1} << 40},
      Variant{2.75},
      Variant{"text value"},
      Variant{Bytes{1, 2, 3}},
      Variant{std::vector<std::string>{"http://opcfoundation.org/UA/", "urn:vendor"}},
  };
  UaWriter w;
  for (const auto& v : values) w.variant(v);
  UaReader r(w.bytes());
  for (const auto& v : values) EXPECT_EQ(r.variant(), v);
}

TEST(UaEncoding, DataValueWithStatus) {
  DataValue dv;
  dv.status = StatusCode::BadNotReadable;
  UaWriter w;
  w.data_value(dv);
  UaReader r(w.bytes());
  const DataValue back = r.data_value();
  EXPECT_EQ(back.status, StatusCode::BadNotReadable);
  EXPECT_TRUE(back.value.empty());
}

TEST(UaEncoding, EndpointDescriptionRoundTrip) {
  EndpointDescription e;
  e.endpoint_url = "opc.tcp://192.0.2.1:4840/";
  e.server.application_uri = "urn:dev";
  e.server.application_name = {"en", "Device"};
  e.server_certificate = {1, 2, 3, 4};
  e.security_mode = MessageSecurityMode::SignAndEncrypt;
  e.security_policy_uri = std::string(policy_info(SecurityPolicy::Basic256Sha256).uri);
  UserTokenPolicy t;
  t.policy_id = "anonymous";
  t.token_type = UserTokenType::Anonymous;
  e.user_identity_tokens.push_back(t);
  UaWriter w;
  e.encode(w);
  UaReader r(w.bytes());
  const EndpointDescription back = EndpointDescription::decode(r);
  EXPECT_EQ(back.endpoint_url, e.endpoint_url);
  EXPECT_EQ(back.security_mode, MessageSecurityMode::SignAndEncrypt);
  EXPECT_EQ(back.server_certificate, e.server_certificate);
  ASSERT_EQ(back.user_identity_tokens.size(), 1u);
  EXPECT_EQ(back.user_identity_tokens[0].token_type, UserTokenType::Anonymous);
}

TEST(UaEncoding, ServiceEnvelope) {
  GetEndpointsRequest req;
  req.endpoint_url = "opc.tcp://host:4840/";
  const Bytes packed = pack_service(req);
  EXPECT_EQ(peek_type_id(packed), type_ids::kGetEndpointsRequest);
  const auto back = unpack_service<GetEndpointsRequest>(packed);
  EXPECT_EQ(back.endpoint_url, req.endpoint_url);
  EXPECT_THROW(unpack_service<BrowseRequest>(packed), DecodeError);
}

// ------------------------------------------------------------ transport ----

TEST(Transport, FrameRoundTrip) {
  const Bytes body = to_bytes("payload");
  const Bytes wire = frame_message("HEL", body);
  const Frame frame = parse_frame(wire);
  EXPECT_EQ(frame.type, "HEL");
  EXPECT_EQ(frame.body, body);
  Bytes bad = wire;
  bad.pop_back();
  EXPECT_THROW(parse_frame(bad), DecodeError);
}

TEST(Transport, HelloAckErrRoundTrip) {
  HelloMessage hello;
  hello.endpoint_url = "opc.tcp://10.0.0.1:4840/";
  EXPECT_EQ(HelloMessage::decode(hello.encode()).endpoint_url, hello.endpoint_url);
  ErrorMessage err;
  err.error = StatusCode::BadSecurityChecksFailed;
  err.reason = "nope";
  const ErrorMessage back = ErrorMessage::decode(err.encode());
  EXPECT_EQ(back.error, StatusCode::BadSecurityChecksFailed);
  EXPECT_EQ(back.reason, "nope");
}

// ------------------------------------------------- secure conversation ----

class SecureConversation : public ::testing::TestWithParam<SecurityPolicy> {};

TEST_P(SecureConversation, OpnRoundTripAllPolicies) {
  const SecurityPolicy policy = GetParam();
  Rng rng(5);
  const Bytes body = to_bytes("open secure channel request body");
  OpnSecurity sec;
  sec.policy = policy;
  if (policy != SecurityPolicy::None) {
    sec.local_private = &client_identity().keys.priv;
    sec.local_cert_der = client_identity().cert_der;
    sec.remote_public = &server_identity().keys.pub;
    sec.remote_cert_thumbprint = x509_thumbprint(server_identity().cert_der);
  }
  const Bytes wire = build_opn(42, sec, SequenceHeader{7, 9}, body, rng);
  if (policy != SecurityPolicy::None) {
    // Body must not appear in the clear.
    const std::string wire_str(wire.begin(), wire.end());
    EXPECT_EQ(wire_str.find("open secure channel"), std::string::npos);
  }
  const OpnParsed parsed = parse_opn(
      wire, policy == SecurityPolicy::None ? nullptr : &server_identity().keys.priv);
  EXPECT_EQ(parsed.channel_id, 42u);
  EXPECT_EQ(parsed.policy, policy);
  EXPECT_EQ(parsed.seq.sequence_number, 7u);
  EXPECT_EQ(parsed.seq.request_id, 9u);
  EXPECT_EQ(parsed.body, body);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SecureConversation, ::testing::ValuesIn(kAllPolicies));

TEST(SecureConversationNegative, WrongKeyFailsToParse) {
  Rng rng(6);
  OpnSecurity sec;
  sec.policy = SecurityPolicy::Basic256Sha256;
  sec.local_private = &client_identity().keys.priv;
  sec.local_cert_der = client_identity().cert_der;
  sec.remote_public = &server_identity().keys.pub;
  sec.remote_cert_thumbprint = x509_thumbprint(server_identity().cert_der);
  const Bytes wire = build_opn(1, sec, SequenceHeader{1, 1}, to_bytes("x"), rng);
  EXPECT_THROW(parse_opn(wire, &client_identity().keys.priv), DecodeError);
}

class SymmetricSecurity
    : public ::testing::TestWithParam<std::tuple<SecurityPolicy, MessageSecurityMode>> {};

TEST_P(SymmetricSecurity, MsgRoundTrip) {
  const auto [policy, mode] = GetParam();
  Rng rng(7);
  const Bytes client_nonce = rng.bytes(32);
  const Bytes server_nonce = rng.bytes(32);
  const DerivedKeys sender = derive_keys(policy, server_nonce, client_nonce);
  const Bytes body = to_bytes("browse request payload: rSetFillLevel");
  const Bytes wire = build_msg("MSG", 3, 4, SequenceHeader{10, 11}, body, policy, mode, sender);
  if (mode == MessageSecurityMode::SignAndEncrypt) {
    const std::string wire_str(wire.begin(), wire.end());
    EXPECT_EQ(wire_str.find("rSetFillLevel"), std::string::npos);
  }
  const MsgParsed parsed = parse_msg(wire, policy, mode, sender);
  EXPECT_EQ(parsed.channel_id, 3u);
  EXPECT_EQ(parsed.token_id, 4u);
  EXPECT_EQ(parsed.body, body);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndModes, SymmetricSecurity,
    ::testing::Combine(::testing::Values(SecurityPolicy::Basic128Rsa15, SecurityPolicy::Basic256,
                                         SecurityPolicy::Aes128Sha256RsaOaep,
                                         SecurityPolicy::Basic256Sha256,
                                         SecurityPolicy::Aes256Sha256RsaPss),
                       ::testing::Values(MessageSecurityMode::Sign,
                                         MessageSecurityMode::SignAndEncrypt)));

TEST(SymmetricSecurityNegative, TamperedMessageRejected) {
  Rng rng(8);
  const DerivedKeys keys = derive_keys(SecurityPolicy::Basic256Sha256, rng.bytes(32), rng.bytes(32));
  Bytes wire = build_msg("MSG", 1, 1, SequenceHeader{1, 1}, to_bytes("data"),
                         SecurityPolicy::Basic256Sha256, MessageSecurityMode::Sign, keys);
  wire[wire.size() - 5] ^= 1;
  EXPECT_THROW(
      parse_msg(wire, SecurityPolicy::Basic256Sha256, MessageSecurityMode::Sign, keys),
      DecodeError);
}

TEST(KeyDerivation, DirectionsDiffer) {
  Rng rng(9);
  const Bytes a = rng.bytes(32), b = rng.bytes(32);
  const DerivedKeys ab = derive_keys(SecurityPolicy::Basic256Sha256, a, b);
  const DerivedKeys ba = derive_keys(SecurityPolicy::Basic256Sha256, b, a);
  EXPECT_NE(ab.sig_key, ba.sig_key);
  EXPECT_NE(ab.enc_key, ba.enc_key);
  EXPECT_EQ(ab.sig_key.size(), 32u);
  EXPECT_EQ(ab.enc_key.size(), 32u);
  EXPECT_EQ(ab.iv.size(), 16u);
}

// ----------------------------------------------------- client <-> server ----

TEST(ClientServer, DiscoveryOnNoneChannel) {
  Rig rig(make_server_config(SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt));
  EXPECT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  EXPECT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  std::vector<EndpointDescription> endpoints;
  EXPECT_EQ(rig.client->get_endpoints("opc.tcp://10.0.0.1:4840/", endpoints), StatusCode::Good);
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[0].security_mode, MessageSecurityMode::None);
  EXPECT_EQ(endpoints[1].security_mode, MessageSecurityMode::SignAndEncrypt);
  EXPECT_FALSE(endpoints[1].server_certificate.empty());
  // Certificate in the endpoint must parse as the server's cert.
  const Certificate cert = x509_parse(endpoints[1].server_certificate);
  EXPECT_EQ(cert.subject.common_name, "test-server");
}

class ClientServerSecure
    : public ::testing::TestWithParam<std::tuple<SecurityPolicy, MessageSecurityMode>> {};

TEST_P(ClientServerSecure, FullSessionOverSecureChannel) {
  const auto [policy, mode] = GetParam();
  Rig rig(make_server_config(policy, mode));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(policy, mode, server_identity().cert_der), StatusCode::Good);

  Client::SessionInfo info;
  ASSERT_EQ(rig.client->create_session(&info), StatusCode::Good);
  EXPECT_TRUE(info.server_signature_valid);
  ASSERT_EQ(rig.client->activate_session_anonymous(), StatusCode::Good);

  // Browse to the vendor object and read values.
  std::vector<ReferenceDescription> refs;
  ASSERT_EQ(rig.client->browse(node_ids::kObjectsFolder, refs), StatusCode::Good);
  ASSERT_EQ(refs.size(), 2u);  // Server + Plant
  DataValue dv;
  ASSERT_EQ(rig.client->read(NodeId(1, 101), AttributeId::Value, dv), StatusCode::Good);
  EXPECT_EQ(dv.value, Variant{12.5});
  // Unreadable node yields BadNotReadable, not data.
  ASSERT_EQ(rig.client->read(NodeId(1, 103), AttributeId::Value, dv), StatusCode::Good);
  EXPECT_EQ(dv.status, StatusCode::BadNotReadable);
  EXPECT_EQ(rig.client->close_session(), StatusCode::Good);
}

INSTANTIATE_TEST_SUITE_P(
    SecureVariants, ClientServerSecure,
    ::testing::Values(
        std::make_tuple(SecurityPolicy::Basic128Rsa15, MessageSecurityMode::Sign),
        std::make_tuple(SecurityPolicy::Basic256, MessageSecurityMode::SignAndEncrypt),
        std::make_tuple(SecurityPolicy::Aes128Sha256RsaOaep, MessageSecurityMode::SignAndEncrypt),
        std::make_tuple(SecurityPolicy::Basic256Sha256, MessageSecurityMode::Sign),
        std::make_tuple(SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt),
        std::make_tuple(SecurityPolicy::Aes256Sha256RsaPss, MessageSecurityMode::SignAndEncrypt)));

TEST(ClientServer, StrictServerRejectsSelfSignedCert) {
  ServerConfig config =
      make_server_config(SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt);
  config.trust_all_client_certs = false;
  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  const StatusCode status = rig.client->open_channel(
      SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt,
      server_identity().cert_der);
  EXPECT_EQ(status, StatusCode::BadSecurityChecksFailed);
  EXPECT_FALSE(rig.client->channel_open());
}

TEST(ClientServer, AnonymousRejectedWhenNotOffered) {
  ServerConfig config =
      make_server_config(SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt);
  for (auto& ep : config.endpoints) ep.token_types = {UserTokenType::UserName};
  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  ASSERT_EQ(rig.client->create_session(), StatusCode::Good);
  EXPECT_EQ(rig.client->activate_session_anonymous(), StatusCode::BadIdentityTokenRejected);
}

TEST(ClientServer, FaultyServerRejectsAnonymousDespiteOffering) {
  ServerConfig config =
      make_server_config(SecurityPolicy::None, MessageSecurityMode::None);
  config.reject_anonymous_sessions = true;
  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  ASSERT_EQ(rig.client->create_session(), StatusCode::Good);
  EXPECT_EQ(rig.client->activate_session_anonymous(), StatusCode::BadIdentityTokenRejected);
}

TEST(ClientServer, UsernameAuthentication) {
  ServerConfig config = make_server_config(SecurityPolicy::None, MessageSecurityMode::None);
  config.users = {{"operator", "hunter2"}};
  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  ASSERT_EQ(rig.client->create_session(), StatusCode::Good);
  EXPECT_EQ(rig.client->activate_session_username("operator", "wrong"),
            StatusCode::BadUserAccessDenied);
  ASSERT_EQ(rig.client->create_session(), StatusCode::Good);
  EXPECT_EQ(rig.client->activate_session_username("operator", "hunter2"), StatusCode::Good);
}

TEST(ClientServer, BrowseRequiresActivatedSession) {
  Rig rig(make_server_config(SecurityPolicy::None, MessageSecurityMode::None));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  std::vector<ReferenceDescription> refs;
  EXPECT_EQ(rig.client->browse(node_ids::kRootFolder, refs), StatusCode::BadSessionNotActivated);
}

TEST(ClientServer, NamespaceArrayAndSoftwareVersion) {
  ServerConfig config = make_server_config(SecurityPolicy::None, MessageSecurityMode::None);
  config.identity.software_version = "3.1.4";
  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  ASSERT_EQ(rig.client->create_session(), StatusCode::Good);
  ASSERT_EQ(rig.client->activate_session_anonymous(), StatusCode::Good);
  std::vector<std::string> namespaces;
  ASSERT_EQ(rig.client->read_string_array(node_ids::kNamespaceArray, namespaces),
            StatusCode::Good);
  ASSERT_EQ(namespaces.size(), 2u);
  EXPECT_EQ(namespaces[0], "http://opcfoundation.org/UA/");
  EXPECT_EQ(namespaces[1], "urn:test:vendor");
  DataValue dv;
  ASSERT_EQ(rig.client->read(node_ids::kSoftwareVersion, AttributeId::Value, dv), StatusCode::Good);
  EXPECT_EQ(dv.value, Variant{"3.1.4"});
}

TEST(ClientServer, BrowseContinuationPoints) {
  ServerConfig config = make_server_config(SecurityPolicy::None, MessageSecurityMode::None);
  auto space = std::make_shared<AddressSpace>();
  const std::uint16_t ns = space->add_namespace("urn:many");
  space->add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Bucket");
  for (std::uint32_t i = 0; i < 25; ++i) {
    space->add_variable(NodeId(ns, 100 + i), NodeId(ns, 1), "v" + std::to_string(i), Variant{1.0},
                        access_level::kCurrentRead);
  }
  config.address_space = space;
  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  ASSERT_EQ(rig.client->create_session(), StatusCode::Good);
  ASSERT_EQ(rig.client->activate_session_anonymous(), StatusCode::Good);
  std::vector<ReferenceDescription> refs;
  ASSERT_EQ(rig.client->browse(NodeId(ns, 1), refs, 10), StatusCode::Good);
  EXPECT_EQ(refs.size(), 25u);  // gathered through continuation points
}

TEST(ClientServer, DummyServiceIsNotOpcUa) {
  Network net;
  const Ipv4 ip = make_ipv4(10, 9, 9, 9);
  net.listen(ip, kOpcUaDefaultPort, [] {
    return std::make_unique<DummyBannerService>("nginx");
  });
  auto conn = net.connect(ip, kOpcUaDefaultPort);
  ASSERT_NE(conn, nullptr);
  ClientConfig cc;
  Client client(cc, *conn, Rng(1));
  EXPECT_NE(client.hello("opc.tcp://10.9.9.9:4840/"), StatusCode::Good);
}

TEST(ClientServer, ConnectionToClosedPortFails) {
  Network net;
  EXPECT_EQ(net.connect(make_ipv4(10, 1, 1, 1), kOpcUaDefaultPort), nullptr);
  EXPECT_FALSE(net.syn_probe(make_ipv4(10, 1, 1, 1), kOpcUaDefaultPort));
}

TEST(ClientServer, TrafficIsAccounted) {
  Rig rig(make_server_config(SecurityPolicy::None, MessageSecurityMode::None));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  EXPECT_GT(rig.conn->bytes_sent(), 0u);
  EXPECT_GT(rig.conn->bytes_received(), 0u);
  EXPECT_GT(rig.net.clock().now_us(), 0u);
}

TEST(ClientServer, DiscoveryServerAnnouncesForeignEndpoints) {
  ServerConfig config;
  config.identity.application_uri = "urn:discovery";
  config.identity.application_type = ApplicationType::DiscoveryServer;
  EndpointConfig ep;
  ep.url = "opc.tcp://10.0.0.1:4840/";
  ep.certificate_index = -1;
  config.endpoints.push_back(ep);
  EndpointDescription foreign;
  foreign.endpoint_url = "opc.tcp://10.0.0.2:4841/";
  foreign.server.application_uri = "urn:other-server";
  foreign.security_mode = MessageSecurityMode::None;
  foreign.security_policy_uri = std::string(policy_info(SecurityPolicy::None).uri);
  config.foreign_endpoints.push_back(foreign);
  ApplicationDescription known;
  known.application_uri = "urn:other-server";
  known.discovery_urls = {"opc.tcp://10.0.0.2:4841/"};
  config.known_servers.push_back(known);

  Rig rig(std::move(config));
  ASSERT_EQ(rig.client->hello("opc.tcp://10.0.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(rig.client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  std::vector<EndpointDescription> endpoints;
  ASSERT_EQ(rig.client->get_endpoints("opc.tcp://10.0.0.1:4840/", endpoints), StatusCode::Good);
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[1].endpoint_url, "opc.tcp://10.0.0.2:4841/");
  std::vector<ApplicationDescription> servers;
  ASSERT_EQ(rig.client->find_servers("opc.tcp://10.0.0.1:4840/", servers), StatusCode::Good);
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(servers[1].application_uri, "urn:other-server");
}

}  // namespace
}  // namespace opcua_study
