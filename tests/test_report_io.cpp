// Report rendering and snapshot persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "report/report.hpp"
#include "scanner/snapshot_io.hpp"

namespace opcua_study {
namespace {

TEST(Report, TableAlignsColumns) {
  TextTable table;
  table.set_header({"a", "long-header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide-cell", "x", ""});
  const std::string out = table.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // Every line has the same length (fixed-width columns).
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Report, Bars) {
  EXPECT_EQ(render_bar(0, 100, 10), "..........");
  EXPECT_EQ(render_bar(100, 100, 10), "##########");
  EXPECT_EQ(render_bar(50, 100, 10), "#####.....");
  EXPECT_EQ(render_bar(200, 100, 10), "##########");  // clamped
  EXPECT_EQ(render_bar(5, 0, 4), "####");              // degenerate max
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt_int(42), "42");
  EXPECT_EQ(fmt_pct(0.9203, 1), "92.0%");
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
}

TEST(Report, ComparisonMarksMismatches) {
  const auto good = compare_num("x", 10, 10, 0);
  const auto bad = compare_num("y", 10, 12, 1);
  EXPECT_TRUE(good.matches);
  EXPECT_FALSE(bad.matches);
  const std::string block = render_comparison("t", {good, bad});
  EXPECT_NE(block.find("MISMATCH"), std::string::npos);
  EXPECT_NE(block.find("DEVIATIONS PRESENT"), std::string::npos);
  const std::string clean = render_comparison("t", {good});
  EXPECT_NE(clean.find("[all reproduced]"), std::string::npos);
}

ScanSnapshot sample_snapshot() {
  ScanSnapshot snapshot;
  snapshot.measurement_index = 7;
  snapshot.date_days = 18504;
  snapshot.probes_sent = 1000;
  snapshot.tcp_open_count = 50;
  HostScanRecord host;
  host.ip = make_ipv4(20, 0, 0, 5);
  host.port = 4840;
  host.asn = 64500;
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.application_uri = "urn:test:device";
  host.application_type = ApplicationType::Server;
  host.software_version = "1.2.0";
  EndpointObservation ep;
  ep.url = "opc.tcp://20.0.0.5:4840/";
  ep.mode = MessageSecurityMode::SignAndEncrypt;
  ep.policy_uri = std::string(policy_info(SecurityPolicy::Basic256Sha256).uri);
  ep.policy = SecurityPolicy::Basic256Sha256;
  ep.policy_known = true;
  ep.token_types = {UserTokenType::Anonymous, UserTokenType::UserName};
  ep.certificate_der = {1, 2, 3, 4, 5};
  host.endpoints.push_back(ep);
  host.referenced_targets.emplace_back(make_ipv4(20, 0, 0, 9), 4841);
  host.channel = ChannelOutcome::established;
  host.channel_policy = SecurityPolicy::Basic256Sha256;
  host.channel_mode = MessageSecurityMode::SignAndEncrypt;
  host.anonymous_offered = true;
  host.session = SessionOutcome::accessible;
  host.namespaces = {"http://opcfoundation.org/UA/", "urn:plant"};
  NodeObservation node;
  node.browse_name = "m3InflowPerHour";
  node.node_class = NodeClass::Variable;
  node.readable = true;
  host.nodes.push_back(node);
  host.bytes_sent = 123456;
  host.duration_seconds = 110.5;
  snapshot.hosts.push_back(std::move(host));
  return snapshot;
}

TEST(SnapshotIo, RoundTrip) {
  const std::string path = "/tmp/opcua_study_test_snapshots.bin";
  const std::vector<ScanSnapshot> snapshots = {sample_snapshot()};
  save_snapshots(path, 42, snapshots);

  const auto loaded = load_snapshots(path, 42);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  const ScanSnapshot& snapshot = loaded->front();
  EXPECT_EQ(snapshot.measurement_index, 7);
  EXPECT_EQ(snapshot.probes_sent, 1000u);
  ASSERT_EQ(snapshot.hosts.size(), 1u);
  const HostScanRecord& host = snapshot.hosts.front();
  EXPECT_EQ(host.ip, make_ipv4(20, 0, 0, 5));
  EXPECT_EQ(host.application_uri, "urn:test:device");
  ASSERT_EQ(host.endpoints.size(), 1u);
  EXPECT_EQ(host.endpoints[0].policy, SecurityPolicy::Basic256Sha256);
  EXPECT_TRUE(host.endpoints[0].policy_known);
  EXPECT_EQ(host.endpoints[0].token_types.size(), 2u);
  EXPECT_EQ(host.endpoints[0].certificate_der, (Bytes{1, 2, 3, 4, 5}));
  ASSERT_EQ(host.referenced_targets.size(), 1u);
  EXPECT_EQ(host.referenced_targets[0].second, 4841);
  EXPECT_EQ(host.session, SessionOutcome::accessible);
  ASSERT_EQ(host.nodes.size(), 1u);
  EXPECT_EQ(host.nodes[0].browse_name, "m3InflowPerHour");
  EXPECT_DOUBLE_EQ(host.duration_seconds, 110.5);

  // Wrong seed -> cache miss.
  EXPECT_FALSE(load_snapshots(path, 43).has_value());
  // Missing file -> cache miss.
  EXPECT_FALSE(load_snapshots("/tmp/no_such_snapshot_file.bin", 42).has_value());
  std::remove(path.c_str());
}

TEST(SnapshotIo, CorruptFileRejected) {
  const std::string path = "/tmp/opcua_study_corrupt.bin";
  save_snapshots(path, 42, {sample_snapshot()});
  // Truncate.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(load_snapshots(path, 42).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opcua_study
