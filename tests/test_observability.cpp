// Observability-plane tests: stable metrics byte-identical across thread
// counts / in-flight windows / shard layouts (fault-free and hostile),
// snapshot byte-identity with telemetry on vs. off, exact reconciliation
// of the grab_outcome account against kept snapshot records, the flight
// recorder's byte-reproducible dump and bounded ring, the thread pool's
// empty-range / error-index contract, and the exposition formats.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "population/deploy.hpp"
#include "report/telemetry.hpp"
#include "scanner/campaign.hpp"
#include "scanner/protocol.hpp"
#include "scanner/snapshot_io.hpp"
#include "study/sharded.hpp"
#include "study/study.hpp"
#include "util/date.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {
namespace {

constexpr std::uint64_t kFaultSeed = 909;

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// Restores the obs plane to its default-off, empty state around a test so
/// suites never leak telemetry into each other.
struct ObsGuard {
  ObsGuard() {
    obs::reset();
    obs::trace_reset();
    obs::set_enabled(true);
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    obs::reset();
    obs::trace_reset();
  }
};

/// Mixed OPC UA + MQTT-over-TLS population (mirrors the protocol-plugin
/// test plan): 8 rotating OPC UA postures plus an 8-broker MQTT fleet.
PopulationPlan mixed_plan() {
  PopulationPlan plan;
  for (int i = 0; i < 8; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "obs";
    host.manufacturer = "other";
    host.application_uri = "urn:generic:opcua:obs-" + std::to_string(i);
    host.application_name = "obs host " + std::to_string(i);
    host.asn = 64700 + static_cast<std::uint32_t>(i % 3);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 3, 1});
    if (i % 3 == 0) {
      host.modes = {MessageSecurityMode::None};
      host.policies = {SecurityPolicy::None};
      host.tokens = {UserTokenType::Anonymous};
      host.outcome = PlannedOutcome::accessible;
      host.classification = PlannedClass::production;
      host.variable_count = 4;
      host.method_count = 1;
    } else {
      host.modes = {MessageSecurityMode::None, MessageSecurityMode::Sign};
      host.policies = {SecurityPolicy::None, SecurityPolicy::Basic128Rsa15};
      host.tokens = {UserTokenType::UserName};
      host.outcome = PlannedOutcome::auth_rejected;
    }
    plan.hosts.push_back(std::move(host));
  }
  add_mqtt_population(plan, 99, 8);
  return plan;
}

Deployer make_deployer(const PopulationPlan& plan) {
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 20;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  return Deployer(plan, deploy_config);
}

CampaignConfig mixed_campaign_config(KeyFactory& keys) {
  CampaignConfig config;
  config.seed = 5;
  config.grabber.client = make_scanner_identity(42, keys);
  config.protocols = {ProtocolTarget{ProtocolId::opcua, kOpcUaDefaultPort},
                     ProtocolTarget{ProtocolId::mqtt_tls, kMqttTlsDefaultPort}};
  return config;
}

/// One plain (unsharded) mixed campaign on the calling thread; hostile
/// faults when `hostile`.
ScanSnapshot run_mixed_campaign(const PopulationPlan& plan, std::size_t max_in_flight,
                                bool hostile, int week = 7) {
  Network net;
  Deployer deployer = make_deployer(plan);
  deployer.deploy_week(net, week);
  if (hostile) net.set_fault_plan(std::make_unique<FaultPlan>(kFaultSeed, FaultProfile::hostile()));
  KeyFactory keys(42, "");
  CampaignConfig config = mixed_campaign_config(keys);
  config.max_in_flight = max_in_flight;
  Campaign campaign(config, net);
  return campaign.run(week);
}

// -------------------------------------------------- layout invariance ----

TEST(Observability, StableTelemetryByteIdenticalAcrossLayouts) {
  const ObsGuard guard;
  const PopulationPlan plan = mixed_plan();

  // Every configuration scans the same simulated world, so the *stable*
  // exposition must come out byte-for-byte identical: shard count, thread
  // count and the in-flight window are execution details, not results.
  const auto stable_json_for = [&](int shards, int threads, std::size_t in_flight,
                                   bool hostile) {
    obs::reset();
    Deployer deployer = make_deployer(plan);
    KeyFactory keys(42, "");
    ShardedCampaignConfig config;
    config.campaign = mixed_campaign_config(keys);
    config.campaign.max_in_flight = in_flight;
    config.shards = shards;
    config.threads = threads;
    if (hostile) {
      config.faults = FaultProfile::hostile();
      config.fault_seed = kFaultSeed;
    }
    const ScanSnapshot snapshot = run_sharded_campaign(deployer, 7, config);
    EXPECT_FALSE(snapshot.hosts.empty());
    return telemetry_json(obs::collect());
  };

  for (const bool hostile : {false, true}) {
    const std::string base = stable_json_for(1, 1, 1, hostile);
    EXPECT_EQ(base, stable_json_for(1, 1, 256, hostile)) << "in-flight window leaked";
    EXPECT_EQ(base, stable_json_for(3, 4, 64, hostile)) << "shard/thread layout leaked";
    EXPECT_EQ(base, stable_json_for(2, 2, 16, hostile)) << "shard/thread layout leaked";

    // The account is non-trivial: tasks launched for both protocol
    // families, and (hostile only) injected faults on the wire.
    EXPECT_NE(base.find("\"grab_outcome\""), std::string::npos);
    EXPECT_NE(base.find("\"mqtt-tls/complete\""), std::string::npos);
    if (hostile) {
      obs::reset();
      const ScanSnapshot snapshot = run_mixed_campaign(plan, 64, true);
      const auto sample = obs::collect();
      EXPECT_GT(sample[obs::Metric::net_faults_injected].total(), 0u);
      EXPECT_GT(sample[obs::Metric::grab_fault_events].total(), 0u);
      (void)snapshot;
    }
    // Operational metrics (wall timings, peaks) stay out of the stable
    // contract — they may differ across layouts, so they must not appear.
    EXPECT_EQ(base.find("wall_us"), std::string::npos);
    EXPECT_EQ(base.find("operational"), std::string::npos);
  }
}

// ----------------------------------------------- snapshot byte identity ----

TEST(Observability, SnapshotBytesIdenticalTelemetryOnVsOff) {
  const PopulationPlan plan = mixed_plan();
  const std::string path_off = "/tmp/opcua_test_obs_off.bin";
  const std::string path_on = "/tmp/opcua_test_obs_on.bin";

  // Telemetry observes the campaign; it must never steer it. The full
  // pipeline (hostile campaign -> v6 snapshot file) runs once with the
  // whole obs plane off and once with metrics + flight recorder on.
  const auto run_to_file = [&](const std::string& path, bool telemetry) {
    obs::reset();
    obs::trace_reset();
    obs::set_enabled(telemetry);
    obs::set_trace_enabled(telemetry);
    const ScanSnapshot snapshot = run_mixed_campaign(plan, 32, true);
    save_snapshots(path, 42, {snapshot});
    return snapshot;
  };

  const ScanSnapshot off = run_to_file(path_off, false);
  const ScanSnapshot on = run_to_file(path_on, true);
  EXPECT_EQ(off, on);
  EXPECT_EQ(read_file_bytes(path_off), read_file_bytes(path_on));

  // The instrumented run actually recorded: metrics and trace non-empty.
  const auto sample = obs::collect();
  EXPECT_GT(sample[obs::Metric::scan_tasks_launched].total(), 0u);
  EXPECT_GT(sample[obs::Metric::snapshot_bytes_written].total(), 0u);
  EXPECT_NE(obs::trace_jsonl().find("\"event\":\"campaign_begin\""), std::string::npos);

  obs::set_enabled(false);
  obs::set_trace_enabled(false);
  obs::reset();
  obs::trace_reset();
  std::remove(path_off.c_str());
  std::remove(path_on.c_str());
}

// --------------------------------------------------- exact reconciliation ----

TEST(Observability, OutcomeTotalsReconcileWithKeptRecords) {
  const ObsGuard guard;
  const ScanSnapshot snapshot = run_mixed_campaign(mixed_plan(), 64, true);
  const auto sample = obs::collect();

  // Recompute the expected account from the snapshot itself: one
  // grab_outcome increment per kept record in its (protocol, grade) cell,
  // and per-protocol sums for retries / fault events / bytes sent.
  std::array<std::uint64_t, 8> outcome{};
  std::array<std::uint64_t, 2> retries{};
  std::array<std::uint64_t, 2> faults{};
  std::array<std::uint64_t, 2> bytes{};
  for (const auto& host : snapshot.hosts) {
    const auto protocol = static_cast<unsigned>(host.protocol);
    ASSERT_LT(protocol, 2u);
    outcome[protocol * 4 + static_cast<unsigned>(host.completeness)] += 1;
    retries[protocol] += host.retries;
    faults[protocol] += host.fault_events;
    bytes[protocol] += host.bytes_sent;
  }

  const auto& grab_outcome = sample[obs::Metric::grab_outcome];
  ASSERT_EQ(grab_outcome.cells.size(), outcome.size());
  for (std::size_t cell = 0; cell < outcome.size(); ++cell) {
    EXPECT_EQ(grab_outcome.cells[cell], outcome[cell])
        << "grab_outcome cell " << obs::kOutcomeCells[cell];
  }
  EXPECT_EQ(grab_outcome.total(), snapshot.hosts.size());
  for (std::size_t protocol = 0; protocol < 2; ++protocol) {
    EXPECT_EQ(sample[obs::Metric::grab_retries].cells[protocol], retries[protocol]);
    EXPECT_EQ(sample[obs::Metric::grab_fault_events].cells[protocol], faults[protocol]);
    EXPECT_EQ(sample[obs::Metric::grab_bytes_sent].cells[protocol], bytes[protocol]);
  }
  // The hostile profile left marks to reconcile against.
  EXPECT_GT(sample[obs::Metric::grab_fault_events].total(), 0u);
}

// ------------------------------------------------------- flight recorder ----

TEST(Observability, FlightRecorderDumpIsByteReproducible) {
  const ObsGuard guard;
  obs::set_trace_enabled(true);
  const PopulationPlan plan = mixed_plan();

  const auto run_traced = [&]() {
    obs::reset();
    obs::trace_reset();
    const ScanSnapshot snapshot = run_mixed_campaign(plan, 8, true);
    return std::make_pair(obs::trace_jsonl(), snapshot.hosts.size());
  };

  const auto [first, kept] = run_traced();
  const auto [second, kept_again] = run_traced();
  EXPECT_EQ(first, second);  // the dump is byte-reproducible run over run
  EXPECT_EQ(kept, kept_again);
  EXPECT_NE(first.find("\"event\":\"campaign_begin\""), std::string::npos);
  EXPECT_NE(first.find("\"event\":\"sweep_complete\""), std::string::npos);
  EXPECT_NE(first.find("\"event\":\"host_complete\""), std::string::npos);

  // Semantics: every event carries the campaign's week scope, timestamps
  // never run backwards within the single-threaded timeline, and
  // campaign_end accounts for exactly the kept records.
  const std::vector<obs::TraceRecord> events = obs::trace_collect();
  ASSERT_FALSE(events.empty());
  std::uint64_t last_t = 0;
  std::uint64_t campaign_end_a = 0;
  std::size_t host_completes = 0;
  for (const auto& event : events) {
    EXPECT_EQ(event.week, 7);
    EXPECT_GE(event.t_us, last_t);
    last_t = event.t_us;
    if (event.event == obs::TraceEvent::campaign_end) campaign_end_a = event.a;
    if (event.event == obs::TraceEvent::host_complete) ++host_completes;
  }
  EXPECT_EQ(campaign_end_a, kept);
  EXPECT_GE(host_completes, kept);  // non-speaking hosts complete too
}

TEST(Observability, TraceRingOverflowKeepsNewestAndCountsDrops) {
  const ObsGuard guard;
  obs::set_trace_enabled(true);
  obs::set_trace_capacity(4);

  // A fresh thread leases a fresh ring with the shrunken capacity; ten
  // events through a 4-slot ring keep the newest four and count six drops.
  std::thread recorder([] {
    const obs::TraceScope scope(1, 0);
    for (std::uint64_t i = 0; i < 10; ++i) {
      obs::trace(obs::TraceEvent::host_complete, i);
    }
  });
  recorder.join();
  obs::set_trace_capacity(4096);

  std::vector<std::uint64_t> kept;
  for (const auto& event : obs::trace_collect()) {
    if (event.week == 1 && event.shard == 0) kept.push_back(event.t_us);
  }
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{6, 7, 8, 9}));
  EXPECT_EQ(obs::collect()[obs::Metric::trace_events_dropped].total(), 6u);
}

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPoolContract, EmptyRangeIsNoOp) {
  const ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(pool.last_error_index(), ThreadPool::kNoError);

  std::atomic<int> merges{0};
  pool.parallel_for_merged(
      0, [&](std::size_t) { ++calls; }, [&](std::size_t) { ++merges; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(merges.load(), 0);
  EXPECT_EQ(pool.last_error_index(), ThreadPool::kNoError);
}

TEST(ThreadPoolContract, ExceptionKeepsTypeAndReportsIndex) {
  const ThreadPool pool(4);
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i == 37) throw std::out_of_range("iteration 37");
    });
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "iteration 37");  // original type and message
  }
  EXPECT_EQ(pool.last_error_index(), 37u);

  // A clean call resets the sticky index.
  pool.parallel_for(4, [](std::size_t) {});
  EXPECT_EQ(pool.last_error_index(), ThreadPool::kNoError);

  // The inline (single-thread) fast path keeps the same contract.
  const ThreadPool inline_pool(1);
  try {
    inline_pool.parallel_for(8, [](std::size_t i) {
      if (i == 5) throw std::domain_error("iteration 5");
    });
    FAIL() << "expected std::domain_error";
  } catch (const std::domain_error&) {
  }
  EXPECT_EQ(inline_pool.last_error_index(), 5u);
}

TEST(ThreadPoolContract, MergedDrainReportsMergedIndexNotDrainer) {
  const ThreadPool pool(4);

  // merge(3) throws: merges 0..2 already ran (in order), and the reported
  // index is the merged chunk, not whichever iteration drained the prefix.
  std::vector<std::size_t> merged;
  try {
    pool.parallel_for_merged(
        16, [](std::size_t) {},
        [&](std::size_t i) {
          if (i == 3) throw std::runtime_error("merge 3");
          merged.push_back(i);
        });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "merge 3");
  }
  EXPECT_EQ(pool.last_error_index(), 3u);
  EXPECT_EQ(merged, (std::vector<std::size_t>{0, 1, 2}));

  // A worker throw in merged mode reports the worker's index.
  try {
    pool.parallel_for_merged(
        16,
        [](std::size_t i) {
          if (i == 11) throw std::length_error("iteration 11");
        },
        [](std::size_t) {});
    FAIL() << "expected std::length_error";
  } catch (const std::length_error&) {
  }
  EXPECT_EQ(pool.last_error_index(), 11u);
}

// -------------------------------------------------------------- exposition ----

TEST(Observability, ExpositionFormatsAndDisabledPlane) {
  const ObsGuard guard;
  obs::add(obs::Metric::grab_outcome, 3, 0);               // opcua/complete
  obs::observe_us(obs::Metric::phase_connect_us, 500, 1);  // mqtt-tls cell
  obs::gauge_peak(obs::Metric::scheduler_in_flight_peak, 7);
  obs::add(obs::Metric::snapshot_bytes_written, 1234);
  const auto sample = obs::collect();

  // JSON: stable-only by default, operational on request, label stamped.
  const std::string stable = telemetry_json(sample);
  EXPECT_NE(stable.find("\"schema\": \"opcua-telemetry-v1\""), std::string::npos);
  EXPECT_NE(stable.find("\"opcua/complete\": 3"), std::string::npos);
  EXPECT_EQ(stable.find("scheduler_in_flight_peak"), std::string::npos);
  TelemetryReportOptions options;
  options.include_operational = true;
  options.campaign_label = "obs-unit";
  const std::string full = telemetry_json(sample, options);
  EXPECT_NE(full.find("\"campaign\": \"obs-unit\""), std::string::npos);
  EXPECT_NE(full.find("\"operational\""), std::string::npos);
  EXPECT_NE(full.find("\"scheduler_in_flight_peak\": 7"), std::string::npos);

  // Prometheus text: prefixed names, cell labels, cumulative histograms.
  const std::string prom = telemetry_prometheus(sample);
  EXPECT_NE(prom.find("opcua_study_grab_outcome{cell=\"opcua/complete\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("opcua_study_phase_connect_us_bucket{cell=\"mqtt-tls\",le=\"1000\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("opcua_study_phase_connect_us_sum{cell=\"mqtt-tls\"} 500"),
            std::string::npos);
  EXPECT_NE(prom.find("opcua_study_phase_connect_us_count{cell=\"mqtt-tls\"} 1"),
            std::string::npos);
  EXPECT_EQ(prom.find("scheduler_in_flight_peak"), std::string::npos);
  EXPECT_NE(telemetry_prometheus(sample, true).find("opcua_study_scheduler_in_flight_peak 7"),
            std::string::npos);

  // Equal samples serialize to equal bytes — the exposition adds nothing
  // non-deterministic (no timestamps, no map iteration order).
  EXPECT_EQ(telemetry_json(sample), telemetry_json(obs::collect()));

  // Label values are escaped per the exposition format: backslash, quote
  // and newline can never break a sample line apart.
  EXPECT_EQ(prometheus_escape_label("plain-label"), "plain-label");
  EXPECT_EQ(prometheus_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  TelemetryReportOptions hostile;
  hostile.campaign_label = "week\"1\\2\n3";
  const std::string labeled = telemetry_prometheus(sample, hostile);
  EXPECT_NE(labeled.find("campaign=\"week\\\"1\\\\2\\n3\""), std::string::npos);
  EXPECT_EQ(labeled.find('\n' + std::string("3\"")), std::string::npos);  // no raw newline
  EXPECT_NE(labeled.find("opcua_study_grab_outcome{campaign=\"week\\\"1\\\\2\\n3\","
                         "cell=\"opcua/complete\"} 3"),
            std::string::npos);
  // The label-free overload stays byte-identical to an empty label.
  TelemetryReportOptions unlabeled;
  EXPECT_EQ(telemetry_prometheus(sample, unlabeled), telemetry_prometheus(sample, false));

  // Disabled plane: every record site is a no-op, not an error.
  obs::reset();
  obs::set_enabled(false);
  obs::add(obs::Metric::grab_outcome, 5, 0);
  obs::observe_us(obs::Metric::phase_connect_us, 500, 0);
  obs::gauge_peak(obs::Metric::scheduler_in_flight_peak, 9);
  const auto empty = obs::collect();
  EXPECT_EQ(empty[obs::Metric::grab_outcome].total(), 0u);
  EXPECT_EQ(empty[obs::Metric::phase_connect_us].hists[0].count, 0u);
  EXPECT_EQ(empty[obs::Metric::scheduler_in_flight_peak].total(), 0u);
}

}  // namespace
}  // namespace opcua_study
