// RSA keygen, PKCS#1 v1.5 / OAEP / PSS round-trips and negative cases.
// Test keys are small (512/768 bit) to keep the suite fast; the study
// corpus uses 1024-4096 via the KeyFactory disk cache.
#include <gtest/gtest.h>

#include "crypto/keycache.hpp"
#include "crypto/rsa.hpp"
#include "util/rng.hpp"

namespace opcua_study {
namespace {

const RsaKeyPair& test_key_512() {
  static const RsaKeyPair kp = [] {
    Rng rng(1001);
    return rsa_generate(rng, 512, 8);
  }();
  return kp;
}

const RsaKeyPair& test_key_768() {
  static const RsaKeyPair kp = [] {
    Rng rng(1002);
    return rsa_generate(rng, 768, 8);
  }();
  return kp;
}

TEST(RsaKeygen, KeyShape) {
  const auto& kp = test_key_512();
  EXPECT_EQ(kp.pub.n.bit_length(), 512u);
  EXPECT_EQ(kp.pub.e.low_u64(), 65537u);
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.pub.n);
  EXPECT_NE(kp.priv.p, kp.priv.q);
  // d*e == 1 mod phi
  const Bignum phi = (kp.priv.p - Bignum{1}) * (kp.priv.q - Bignum{1});
  EXPECT_EQ((kp.priv.d * kp.priv.e) % phi, Bignum{1});
}

TEST(RsaKeygen, RawRoundTripViaCrt) {
  const auto& kp = test_key_512();
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const Bignum m = Bignum::random_below(rng, kp.pub.n);
    EXPECT_EQ(rsa_public_op(kp.pub, rsa_private_op(kp.priv, m)), m);
    EXPECT_EQ(rsa_private_op(kp.priv, rsa_public_op(kp.pub, m)), m);
  }
}

class RsaSignature : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(RsaSignature, Pkcs1v15SignVerify) {
  const HashAlgorithm alg = GetParam();
  const auto& kp = test_key_768();
  const Bytes msg = to_bytes("OPC UA secure channel handshake");
  const Bytes sig = rsa_pkcs1v15_sign(kp.priv, alg, msg);
  EXPECT_EQ(sig.size(), kp.pub.modulus_bytes());
  EXPECT_TRUE(rsa_pkcs1v15_verify(kp.pub, alg, msg, sig));
  // Tampered message / signature must fail.
  Bytes bad_msg = msg;
  bad_msg[0] ^= 1;
  EXPECT_FALSE(rsa_pkcs1v15_verify(kp.pub, alg, bad_msg, sig));
  Bytes bad_sig = sig;
  bad_sig[10] ^= 1;
  EXPECT_FALSE(rsa_pkcs1v15_verify(kp.pub, alg, msg, bad_sig));
  // Wrong key must fail.
  EXPECT_FALSE(rsa_pkcs1v15_verify(test_key_512().pub, alg, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(AllHashes, RsaSignature,
                         ::testing::Values(HashAlgorithm::md5, HashAlgorithm::sha1,
                                           HashAlgorithm::sha256));

TEST(RsaPss, SignVerifyAndTamper) {
  const auto& kp = test_key_768();
  Rng rng(3);
  const Bytes msg = to_bytes("Aes256_Sha256_RsaPss policy signature");
  const Bytes sig = rsa_pss_sign(kp.priv, HashAlgorithm::sha256, msg, rng);
  EXPECT_TRUE(rsa_pss_verify(kp.pub, HashAlgorithm::sha256, msg, sig));
  Bytes bad = msg;
  bad.push_back('!');
  EXPECT_FALSE(rsa_pss_verify(kp.pub, HashAlgorithm::sha256, bad, sig));
  Bytes bad_sig = sig;
  bad_sig[0] ^= 0x80;
  EXPECT_FALSE(rsa_pss_verify(kp.pub, HashAlgorithm::sha256, msg, bad_sig));
  // PSS is randomized: two signatures differ but both verify.
  const Bytes sig2 = rsa_pss_sign(kp.priv, HashAlgorithm::sha256, msg, rng);
  EXPECT_NE(sig, sig2);
  EXPECT_TRUE(rsa_pss_verify(kp.pub, HashAlgorithm::sha256, msg, sig2));
}

TEST(RsaEncrypt, Pkcs1v15RoundTrip) {
  const auto& kp = test_key_512();
  Rng rng(4);
  for (std::size_t len : {0u, 1u, 16u, 32u, 53u}) {  // 53 = 64-11 max
    const Bytes pt = rng.bytes(len);
    const Bytes ct = rsa_pkcs1v15_encrypt(kp.pub, pt, rng);
    EXPECT_EQ(ct.size(), kp.pub.modulus_bytes());
    const auto back = rsa_pkcs1v15_decrypt(kp.priv, ct);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, pt);
  }
  EXPECT_THROW(rsa_pkcs1v15_encrypt(kp.pub, rng.bytes(54), rng), std::invalid_argument);
  EXPECT_EQ(rsa_pkcs1v15_max_plaintext(kp.pub), 53u);
}

TEST(RsaEncrypt, OaepRoundTripSha1AndSha256) {
  const auto& kp = test_key_768();
  Rng rng(5);
  for (HashAlgorithm alg : {HashAlgorithm::sha1, HashAlgorithm::sha256}) {
    const std::size_t max_len = rsa_oaep_max_plaintext(kp.pub, alg);
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, max_len / 2, max_len}) {
      const Bytes pt = rng.bytes(len);
      const Bytes ct = rsa_oaep_encrypt(kp.pub, alg, pt, rng);
      const auto back = rsa_oaep_decrypt(kp.priv, alg, ct);
      ASSERT_TRUE(back.has_value()) << hash_name(alg) << " len=" << len;
      EXPECT_EQ(*back, pt);
    }
    EXPECT_THROW(rsa_oaep_encrypt(kp.pub, alg, rng.bytes(max_len + 1), rng),
                 std::invalid_argument);
  }
}

TEST(RsaEncrypt, DecryptRejectsGarbage) {
  const auto& kp = test_key_512();
  Rng rng(6);
  const Bytes garbage = rng.bytes(kp.pub.modulus_bytes());
  // Overwhelmingly likely to fail padding checks.
  EXPECT_FALSE(rsa_pkcs1v15_decrypt(kp.priv, garbage).has_value());
  EXPECT_FALSE(rsa_oaep_decrypt(kp.priv, HashAlgorithm::sha1, garbage).has_value());
  EXPECT_FALSE(rsa_pkcs1v15_decrypt(kp.priv, Bytes(3, 0)).has_value());
}

TEST(KeyFactory, DeterministicAndCached) {
  const std::string cache = "/tmp/opcua_study_test_keycache";
  std::remove(cache.c_str());
  {
    KeyFactory f1(77, cache);
    const RsaKeyPair a = f1.get("host-1", 512);
    const RsaKeyPair b = f1.get("host-1", 512);
    EXPECT_EQ(a.pub, b.pub);
    EXPECT_EQ(f1.generated(), 1u);
    EXPECT_EQ(f1.cache_hits(), 1u);
    const RsaKeyPair c = f1.get("host-2", 512);
    EXPECT_FALSE(c.pub == a.pub);
  }
  {
    // Fresh factory must load from disk, not regenerate.
    KeyFactory f2(77, cache);
    const RsaKeyPair a = f2.get("host-1", 512);
    EXPECT_EQ(f2.generated(), 0u);
    EXPECT_EQ(f2.cache_hits(), 1u);
    // And a different seed must not see those entries.
    KeyFactory f3(78, cache);
    const RsaKeyPair other = f3.get("host-1", 512);
    EXPECT_FALSE(other.pub == a.pub);
    EXPECT_EQ(f3.generated(), 1u);
  }
  std::remove(cache.c_str());
}

TEST(KeyFactory, SameLabelDifferentBitsAreIndependent) {
  KeyFactory f(5, "");
  const RsaKeyPair small = f.get("host", 512);
  EXPECT_EQ(small.pub.n.bit_length(), 512u);
}

}  // namespace
}  // namespace opcua_study
