// Assessment-layer unit tests on synthetic scan records: deficiency rules,
// renewal detection across weeks, survival curves.
#include <gtest/gtest.h>

#include "assess/assess.hpp"
#include "crypto/keycache.hpp"
#include "util/date.hpp"

namespace opcua_study {
namespace {

Bytes make_cert(const std::string& cn, HashAlgorithm hash, std::uint64_t key_seed,
                std::int64_t not_before = days_from_civil({2018, 1, 1})) {
  static KeyFactory keys(123, "");
  const RsaKeyPair kp = keys.get("assess-" + std::to_string(key_seed), 512);
  CertificateSpec spec;
  spec.subject = {cn, "Assess Org", "DE"};
  spec.signature_hash = hash;
  spec.serial = Bignum{key_seed * 100 + static_cast<std::uint64_t>(hash_rank(hash))};
  spec.not_before_days = not_before;
  spec.not_after_days = not_before + 3650;
  spec.application_uri = "urn:assess:" + cn;
  return x509_create(spec, kp.pub, kp.priv);
}

HostScanRecord make_host(Ipv4 ip, SecurityPolicy max_policy, HashAlgorithm cert_hash,
                         bool anonymous, std::uint64_t key_seed) {
  HostScanRecord host;
  host.ip = ip;
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.application_uri = "urn:assess:host" + std::to_string(ip);
  host.software_version = "1.0";
  EndpointObservation ep;
  ep.mode = max_policy == SecurityPolicy::None ? MessageSecurityMode::None
                                               : MessageSecurityMode::SignAndEncrypt;
  ep.policy = max_policy;
  ep.policy_uri = std::string(policy_info(max_policy).uri);
  ep.policy_known = true;
  ep.token_types = anonymous
                       ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                       : std::vector<UserTokenType>{UserTokenType::UserName};
  ep.certificate_der = make_cert("host" + std::to_string(ip), cert_hash, key_seed);
  host.endpoints.push_back(std::move(ep));
  host.anonymous_offered = anonymous;
  host.channel = ChannelOutcome::established;
  host.session = anonymous ? SessionOutcome::accessible : SessionOutcome::auth_rejected;
  return host;
}

TEST(DeficiencyRules, EachDeficitTriggersIndependently) {
  // None-only: deficient.
  EXPECT_TRUE(is_deficient(make_host(1, SecurityPolicy::None, HashAlgorithm::sha256, false, 1)));
  // Deprecated max policy: deficient.
  EXPECT_TRUE(
      is_deficient(make_host(2, SecurityPolicy::Basic256, HashAlgorithm::sha1, false, 2)));
  // Strong policy + weak cert: deficient. (512-bit test keys are below every
  // minimum, so any cert here is "too weak" — use the hash dimension too.)
  EXPECT_TRUE(
      is_deficient(make_host(3, SecurityPolicy::Basic256Sha256, HashAlgorithm::sha1, false, 3)));
  // Anonymous access alone: deficient.
  HostScanRecord anon = make_host(4, SecurityPolicy::Basic256Sha256, HashAlgorithm::sha256, true, 4);
  EXPECT_TRUE(is_deficient(anon));
}

TEST(SurvivalCurve, MonotoneNonIncreasing) {
  std::vector<double> fracs = {0.1, 0.5, 0.9, 0.95, 1.0, 0.3, 0.8};
  const auto curve = AccessRightsStats::survival_curve(fracs);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].second, curve[i - 1].second);  // more hosts -> lower guaranteed fraction
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_TRUE(AccessRightsStats::survival_curve({}).empty());
}

TEST(HostsAbove, ThresholdSemantics) {
  const std::vector<double> fracs = {0.05, 0.5, 0.97, 0.98, 1.0};
  EXPECT_DOUBLE_EQ(AccessRightsStats::hosts_above(fracs, 0.97), 2.0 / 5.0);  // strictly above
  EXPECT_DOUBLE_EQ(AccessRightsStats::hosts_above(fracs, 0.0), 5.0 / 5.0);
  EXPECT_DOUBLE_EQ(AccessRightsStats::hosts_above({}, 0.5), 0.0);
}

std::vector<ScanSnapshot> synthetic_weeks() {
  // Three measurements with: one stable host, one SHA-1→SHA-256 upgrade at
  // week 1 (with software update), one SHA-256→SHA-1 downgrade at week 2,
  // and one dynamic-IP host whose certificate rotates weekly.
  std::vector<ScanSnapshot> weeks;
  for (int w = 0; w < 3; ++w) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = w;
    snapshot.date_days = measurement_days(w);

    snapshot.hosts.push_back(
        make_host(10, SecurityPolicy::Basic256Sha256, HashAlgorithm::sha256, false, 10));

    HostScanRecord upgrader = make_host(
        11, SecurityPolicy::Basic256Sha256, w >= 1 ? HashAlgorithm::sha256 : HashAlgorithm::sha1,
        false, 11);
    upgrader.software_version = w >= 1 ? "2.0" : "1.0";
    snapshot.hosts.push_back(std::move(upgrader));

    snapshot.hosts.push_back(make_host(
        12, SecurityPolicy::Basic256, w >= 2 ? HashAlgorithm::sha1 : HashAlgorithm::sha256,
        false, 12));

    HostScanRecord dynamic = make_host(100 + static_cast<Ipv4>(w),
                                       SecurityPolicy::Basic128Rsa15, HashAlgorithm::sha1, false,
                                       13);
    // Fresh certificate each week (new serial via NotBefore).
    dynamic.endpoints[0].certificate_der =
        make_cert("dynamic", HashAlgorithm::sha1, 13, snapshot.date_days);
    snapshot.hosts.push_back(std::move(dynamic));
    weeks.push_back(std::move(snapshot));
  }
  return weeks;
}

TEST(Longitudinal, RenewalDetectionOnStaticIps) {
  const LongitudinalStats stats = assess_longitudinal(synthetic_weeks());
  // Upgrade + downgrade detected; dynamic-IP host never pairs across weeks.
  ASSERT_EQ(stats.renewals.size(), 2u);
  EXPECT_EQ(stats.sha1_upgrades, 1);
  EXPECT_EQ(stats.downgrades, 1);
  EXPECT_EQ(stats.renewals_with_software_update, 1);
  int week1 = 0, week2 = 0;
  for (const auto& event : stats.renewals) {
    week1 += event.week == 1;
    week2 += event.week == 2;
  }
  EXPECT_EQ(week1, 1);
  EXPECT_EQ(week2, 1);
}

TEST(Longitudinal, DistinctCertificateCorpus) {
  const LongitudinalStats stats = assess_longitudinal(synthetic_weeks());
  // stable(1) + upgrader(2) + downgrader(2) + dynamic(3 distinct NotBefore).
  EXPECT_EQ(stats.total_distinct_certificates, 8u);
  EXPECT_EQ(stats.weeks.size(), 3u);
  EXPECT_EQ(stats.weeks[0].servers, 4);
}

TEST(Longitudinal, Sha1NotBeforeBuckets) {
  const LongitudinalStats stats = assess_longitudinal(synthetic_weeks());
  // SHA-1 certs: upgrader week0 (2018), downgrader week2 (2018), dynamic ×3
  // (2020 scan dates). All are >= 2017; the three dynamic ones are >= 2019.
  EXPECT_EQ(stats.sha1_after_2017, 5u);
  EXPECT_EQ(stats.sha1_after_2019, 3u);
}

TEST(Longitudinal, EmptyInput) {
  const LongitudinalStats stats = assess_longitudinal({});
  EXPECT_TRUE(stats.weeks.empty());
  EXPECT_EQ(stats.total_distinct_certificates, 0u);
  EXPECT_TRUE(stats.renewals.empty());
}

}  // namespace
}  // namespace opcua_study
