// The campaign-series API:
//  - hand-crafted N=3 identity chains: stable hosts, a churned-IP host
//    re-identified by certificate across all three campaigns (with
//    evidence grading), an ambiguous fleet certificate that must *not*
//    chain, remediation / relapse timelines,
//  - a two-member series reproduces the pairwise CampaignDiff field for
//    field (the N=2 specialization contract),
//  - extend_series grows deterministic file-backed and in-memory series
//    that analyze byte-identically, for any thread count,
//  - campaign-chain validation and SnapshotError on short sets, empty
//    members, and a truncated middle member,
//  - the early-prefix-merge aggregation stays thread-count-invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "analysis/analysis.hpp"
#include "diff/diff.hpp"
#include "series/matcher.hpp"
#include "series/series.hpp"
#include "study/followup.hpp"
#include "util/date.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {
namespace {

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Per-index unique certificates from a small key pool: the certificate
/// matcher needs fingerprints that identify hosts.
const std::vector<Bytes>& unique_certs() {
  static const std::vector<Bytes> certs = [] {
    KeyFactory keys(773, "");
    std::vector<Bytes> ders;
    for (int i = 0; i < 40; ++i) {
      const RsaKeyPair kp = keys.get("series-test-" + std::to_string(i % 4), 512);
      CertificateSpec spec;
      spec.subject = {"series device " + std::to_string(i), "Series Test Org", "DE"};
      spec.signature_hash = HashAlgorithm::sha256;
      spec.serial = Bignum{static_cast<std::uint64_t>(7000 + i)};
      spec.not_before_days = days_from_civil({2019, 1, 1});
      spec.not_after_days = spec.not_before_days + 3650;
      spec.application_uri = "urn:seriestest:device:" + std::to_string(i);
      ders.push_back(x509_create(spec, kp.pub, kp.priv));
    }
    return ders;
  }();
  return certs;
}

struct HostSpec {
  Ipv4 ip = 0;
  SecurityPolicy policy = SecurityPolicy::None;
  int cert = -1;                // index into unique_certs(), -1 = none
  std::string uri;              // application URI (corroboration signal)
  std::uint32_t asn = 0;        // corroboration signal
};

HostScanRecord make_host(const HostSpec& spec) {
  HostScanRecord host;
  host.ip = spec.ip;
  host.port = kOpcUaDefaultPort;
  host.asn = spec.asn;
  host.speaks_opcua = true;
  host.application_uri = spec.uri;
  EndpointObservation ep;
  ep.url = "opc.tcp://x:4840/";
  ep.mode = spec.policy == SecurityPolicy::None ? MessageSecurityMode::None
                                                : MessageSecurityMode::SignAndEncrypt;
  ep.policy_uri = std::string(policy_info(spec.policy).uri);
  ep.policy = spec.policy;
  ep.policy_known = true;
  ep.token_types = {UserTokenType::UserName};
  if (spec.cert >= 0) ep.certificate_der = unique_certs()[static_cast<std::size_t>(spec.cert)];
  host.endpoints.push_back(std::move(ep));
  return host;
}

ScanSnapshot make_measurement(std::int64_t date_days, const std::vector<HostSpec>& specs) {
  ScanSnapshot snapshot;
  snapshot.measurement_index = 0;
  snapshot.date_days = date_days;
  snapshot.probes_sent = 1000;
  snapshot.tcp_open_count = 100;
  for (const auto& spec : specs) snapshot.hosts.push_back(make_host(spec));
  return snapshot;
}

FollowupConfig small_followup_config() {
  FollowupConfig config;
  config.mint_keys = 4;
  config.mint_fleet = 32;
  config.mint_key_bits = 512;
  config.key_cache_path = "";
  return config;
}

/// A deterministic synthetic base campaign (same archetypes the diff
/// tests use).
std::vector<ScanSnapshot> make_base_study(std::size_t hosts, int weeks = 1) {
  std::vector<ScanSnapshot> snapshots;
  for (int week = 0; week < weeks; ++week) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = week;
    snapshot.date_days = days_from_civil({2020, 2, 9}) + 28 * week;
    snapshot.probes_sent = 5000;
    snapshot.tcp_open_count = 500;
    for (std::size_t i = 0; i < hosts; ++i) {
      HostSpec spec;
      spec.ip = static_cast<Ipv4>(0x16000000u + static_cast<std::uint32_t>(i));
      spec.policy = i % 4 == 0   ? SecurityPolicy::None
                    : i % 4 == 1 ? SecurityPolicy::Basic256
                                 : SecurityPolicy::Basic256Sha256;
      spec.cert = i % 5 == 0 ? -1 : static_cast<int>(i % unique_certs().size());
      spec.uri = "urn:generic:seriestest-" + std::to_string(i);
      spec.asn = 64500 + static_cast<std::uint32_t>(i % 5);
      snapshot.hosts.push_back(make_host(spec));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

// ------------------------------------------------- hand-crafted chains ----

TEST(SeriesChain, HandCraftedThreeMemberTimelines) {
  constexpr SecurityPolicy kNone = SecurityPolicy::None;
  constexpr SecurityPolicy kDepr = SecurityPolicy::Basic256;        // deprecated
  constexpr SecurityPolicy kSecure = SecurityPolicy::Basic256Sha256;
  const std::string uri_b = "urn:series:host-b";

  // Member 0: A stable None; B churner with corroborating URI; C1/C2
  // sharing one fleet certificate (ambiguous); D future relapser; E
  // retiree; G bare-evidence churner (no URI, no AS).
  const ScanSnapshot m0 = make_measurement(100, {
      {10, kNone, -1, "", 0},         // A
      {11, kDepr, 0, uri_b, 0},       // B
      {12, kDepr, 3, "", 0},          // C1
      {13, kDepr, 3, "", 0},          // C2
      {14, kNone, -1, "", 0},         // D
      {15, kNone, -1, "", 0},         // E (retires)
      {17, kDepr, 5, "", 0},          // G
  });
  // Member 1: B churned (cert 0 re-identifies, URI corroborates); C1/C2
  // churned with the shared cert (must NOT chain -> retire + arrive); D
  // upgraded to secure; F arrives; G still at its address.
  const ScanSnapshot m1 = make_measurement(200, {
      {10, kNone, -1, "", 0},         // A
      {60, kDepr, 0, uri_b, 0},       // B after churn
      {61, kDepr, 3, "", 0},          // "C1'" — ambiguous, new identity
      {62, kDepr, 3, "", 0},          // "C2'"
      {14, kSecure, -1, "", 0},       // D remediated after 1 campaign
      {16, kSecure, -1, "", 0},       // F arrival
      {17, kDepr, 5, "", 0},          // G
  });
  // Member 2: A remediates; B churns again (cert + URI); D relapses; G
  // churns with only the bare fingerprint as evidence.
  const ScanSnapshot m2 = make_measurement(300, {
      {10, kSecure, -1, "", 0},       // A remediated after 2 campaigns
      {70, kDepr, 0, uri_b, 0},       // B after second churn
      {61, kDepr, 3, "", 0},          // C1' stays
      {62, kDepr, 3, "", 0},          // C2' stays
      {14, kNone, -1, "", 0},         // D relapsed
      {16, kSecure, -1, "", 0},       // F
      {90, kDepr, 5, "", 0},          // G after churn, bare evidence
  });

  CampaignSet set;
  set.add_snapshots({m0}, "m0", 100);
  set.add_snapshots({m1}, "m1", 200);
  set.add_snapshots({m2}, "m2", 300);
  const SeriesAnalysis series = analyze_series(set, {});

  ASSERT_EQ(series.members.size(), 3u);
  ASSERT_EQ(series.steps.size(), 2u);

  // Step 0: A, D, G by address; B by corroborated certificate; the
  // ambiguous fleet certificate re-identifies nobody.
  EXPECT_EQ(series.steps[0].matched_by_address, 3u);
  EXPECT_EQ(series.steps[0].matched_by_certificate, 1u);
  EXPECT_EQ(series.steps[0].cert_matches_corroborated, 1u);
  EXPECT_EQ(series.steps[0].cert_matches_bare, 0u);
  EXPECT_EQ(series.steps[0].retired, 3u);   // C1, C2, E
  EXPECT_EQ(series.steps[0].arrived, 3u);   // C1', C2', F

  // Step 1: A, C1', C2', D, F by address; B corroborated; G bare.
  EXPECT_EQ(series.steps[1].matched_by_address, 5u);
  EXPECT_EQ(series.steps[1].matched_by_certificate, 2u);
  EXPECT_EQ(series.steps[1].cert_matches_corroborated, 1u);
  EXPECT_EQ(series.steps[1].cert_matches_bare, 1u);
  EXPECT_EQ(series.steps[1].retired, 0u);
  EXPECT_EQ(series.steps[1].arrived, 0u);

  // Evidence totals and the confidence grade they imply.
  EXPECT_EQ(series.links_by_address, 8u);
  EXPECT_EQ(series.links_by_cert_corroborated, 2u);
  EXPECT_EQ(series.links_by_cert_bare, 1u);
  EXPECT_NEAR(series.mean_link_confidence(), (8 * 1.0 + 2 * 0.9 + 1 * 0.6) / 11.0, 1e-12);
  EXPECT_NEAR(series.steps[1].mean_match_confidence(), (5 * 1.0 + 0.9 + 0.6) / 7.0, 1e-12);

  // Timelines: 7 starting at member 0, 3 arrivals at member 1.
  EXPECT_EQ(series.timelines.total, 10u);
  EXPECT_EQ(series.timelines.full_span, 4u);  // A, B, D, G
  ASSERT_EQ(series.timelines.length_histogram.size(), 4u);
  EXPECT_EQ(series.timelines.length_histogram[1], 3u);  // C1, C2, E
  EXPECT_EQ(series.timelines.length_histogram[2], 3u);  // C1', C2', F
  EXPECT_EQ(series.timelines.length_histogram[3], 4u);  // A, B, D, G

  // Remediation: everything except F starts below secure; D upgrades
  // after one campaign (then relapses), A after two.
  EXPECT_EQ(series.remediation.insecure_at_start, 9u);
  EXPECT_EQ(series.remediation.remediated, 2u);
  ASSERT_EQ(series.remediation.steps_to_secure.size(), 3u);
  EXPECT_EQ(series.remediation.steps_to_secure[1], 1u);  // D
  EXPECT_EQ(series.remediation.steps_to_secure[2], 1u);  // A
  EXPECT_EQ(series.remediation.never_remediated, 7u);
  EXPECT_EQ(series.remediation.relapsed, 1u);  // D

  // Fleet curve.
  EXPECT_EQ(series.members[0].hosts, 7u);
  EXPECT_EQ(series.members[0].arrived, 7u);
  EXPECT_EQ(series.members[0].retired_into_next, 3u);
  EXPECT_EQ(series.members[1].matched_from_previous, 4u);
  EXPECT_EQ(series.members[1].arrived, 3u);
  EXPECT_EQ(series.members[2].matched_from_previous, 7u);
  EXPECT_EQ(series.members[2].arrived, 0u);
  EXPECT_EQ(series.members[2].retired_into_next, 0u);
  EXPECT_EQ(series.members[0].deficient, 7u);
  EXPECT_EQ(series.members[1].deficient, 5u);  // D and F are clean
  EXPECT_EQ(series.members[2].deficient, 5u);  // A and F are clean

  // The annotations drive the member identity in the report.
  EXPECT_EQ(series.members[0].meta.campaign_label, "m0");
  EXPECT_EQ(series.members[2].meta.campaign_epoch_days, 300);
  const std::string json = series_analysis_json(series);
  EXPECT_NE(json.find("\"match_evidence\""), std::string::npos);
  EXPECT_NE(json.find("\"steps_to_secure\""), std::string::npos);
}

// ------------------------------------------------- N=2 specialization ----

TEST(SeriesEquivalence, TwoMemberSeriesReproducesPairwiseDiff) {
  const std::string base_path = "/tmp/opcua_series_pair_base.bin";
  const std::string followup_path = "/tmp/opcua_series_pair_followup.bin";
  {
    SnapshotWriter writer(base_path, 42);
    writer.set_campaign("series-base", days_from_civil({2020, 8, 30}));
    for (const auto& snapshot : make_base_study(120, 2)) writer.add_snapshot(snapshot);
    writer.finish();
  }
  CampaignSet set;
  set.add_file(base_path, 42);
  const SnapshotMeta followup_meta =
      extend_series(set, small_followup_config(), followup_path, 77);
  EXPECT_GT(followup_meta.host_count, 0u);
  EXPECT_EQ(followup_meta.campaign_label, "followup-2022");

  SeriesOptions series_options;
  series_options.threads = 4;
  const SeriesAnalysis series = analyze_series(set, series_options);
  DiffOptions diff_options;
  diff_options.threads = 2;
  const CampaignDiff diff = diff_files(base_path, 42, followup_path, 77, diff_options);

  // Field for field: the series' only step IS the pairwise diff,
  // including the campaign identity metadata and evidence grading.
  ASSERT_EQ(series.steps.size(), 1u);
  EXPECT_EQ(series.steps[0], diff);
  EXPECT_GT(diff.matched(), 0u);
  EXPECT_GT(diff.matched_by_certificate, 0u);
  EXPECT_EQ(diff.matched_by_certificate,
            diff.cert_matches_corroborated + diff.cert_matches_bare);
  std::remove(base_path.c_str());
  std::remove(followup_path.c_str());
}

// ------------------------------------- determinism across input shapes ----

TEST(SeriesDeterminism, ThreadCountAndStreamedVsLoadAllAreByteIdentical) {
  const std::string base_path = "/tmp/opcua_series_det_base.bin";
  const std::vector<std::string> followup_paths = {
      "/tmp/opcua_series_det_f1.bin", "/tmp/opcua_series_det_f2.bin",
      "/tmp/opcua_series_det_f3.bin"};
  {
    // Small chunks -> many parallel posture work units with ragged tails.
    SnapshotWriter writer(base_path, 42, 17);
    writer.set_campaign("det-base", 100);
    for (const auto& snapshot : make_base_study(90)) writer.add_snapshot(snapshot);
    writer.finish();
  }
  CampaignSet files;
  files.add_file(base_path, 42);
  for (std::size_t k = 0; k < followup_paths.size(); ++k) {
    extend_series(files, small_followup_config(), followup_paths[k], 1000 + k);
  }
  ASSERT_EQ(files.size(), 4u);
  // Distinct labels from default-config iteration, epochs +2y per step.
  const std::vector<SnapshotMeta> metas = files.final_metas();
  EXPECT_EQ(metas[1].campaign_label, "followup-2022");
  EXPECT_EQ(metas[2].campaign_label, "followup-2022-2");
  EXPECT_EQ(metas[3].campaign_label, "followup-2022-3");
  EXPECT_NO_THROW(files.validate());

  SeriesOptions serial;
  serial.threads = 1;
  SeriesOptions parallel;
  parallel.threads = 8;
  const SeriesAnalysis streamed1 = analyze_series(files, serial);
  const SeriesAnalysis streamed8 = analyze_series(files, parallel);
  EXPECT_EQ(streamed1, streamed8);
  EXPECT_EQ(series_analysis_json(streamed1), series_analysis_json(streamed8));

  // Load-all members (annotated with the files' identities) must analyze
  // byte-identically, for any chunking.
  CampaignSet memory;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const CampaignMember& member = files.member(i);
    memory.add_snapshots(SnapshotReader(member.path, member.seed).load_all(),
                         metas[i].campaign_label, metas[i].campaign_epoch_days);
  }
  SeriesOptions tiny_chunks;
  tiny_chunks.threads = 8;
  tiny_chunks.chunk_records = 7;
  const SeriesAnalysis load_all = analyze_series(memory, tiny_chunks);
  EXPECT_EQ(streamed1, load_all);
  EXPECT_EQ(series_analysis_json(streamed1), series_analysis_json(load_all));

  // The series exercises the interesting flows on this population.
  EXPECT_GT(streamed1.links_by_address, 0u);
  EXPECT_GT(streamed1.links_by_cert_corroborated + streamed1.links_by_cert_bare, 0u);
  EXPECT_GT(streamed1.timelines.full_span, 0u);
  EXPECT_GT(streamed1.remediation.insecure_at_start, 0u);
  std::remove(base_path.c_str());
  for (const auto& path : followup_paths) std::remove(path.c_str());
}

TEST(SeriesDeterminism, ExplicitEpochStillYieldsAValidChainWhenIterated) {
  CampaignSet set;
  set.add_snapshots({make_measurement(100, {{10, SecurityPolicy::None, -1, "", 0}})},
                    "explicit-base", 100);
  FollowupConfig config = small_followup_config();
  config.epoch_days = 3000;  // anchors the first extension
  const SnapshotMeta first = extend_series(set, config);
  const SnapshotMeta second = extend_series(set, config);
  EXPECT_EQ(first.campaign_epoch_days, 3000);
  EXPECT_EQ(second.campaign_epoch_days, 3000 + 730);  // advanced per step
  EXPECT_NO_THROW(set.validate());
  EXPECT_NO_THROW(analyze_series(set, {}));
}

// ----------------------------------------------------- error surfaces ----

TEST(SeriesErrors, ShortSetsEmptyMembersAndTruncationFail) {
  CampaignSet empty_set;
  EXPECT_THROW(analyze_series(empty_set, {}), SnapshotError);

  CampaignSet one;
  one.add_snapshots({make_measurement(100, {{10, SecurityPolicy::None, -1, "", 0}})});
  EXPECT_THROW(analyze_series(one, {}), SnapshotError);
  EXPECT_THROW(extend_series(empty_set, small_followup_config()), SnapshotError);

  // A member with zero measurements fails at open.
  CampaignSet with_empty;
  with_empty.add_snapshots({make_measurement(100, {{10, SecurityPolicy::None, -1, "", 0}})});
  with_empty.add_snapshots(std::vector<ScanSnapshot>{});
  EXPECT_THROW(analyze_series(with_empty, {}), SnapshotError);
}

TEST(SeriesErrors, TruncatedMiddleMemberFailsWithSnapshotError) {
  const std::string base_path = "/tmp/opcua_series_trunc_base.bin";
  const std::string mid_path = "/tmp/opcua_series_trunc_mid.bin";
  const std::string last_path = "/tmp/opcua_series_trunc_last.bin";
  {
    SnapshotWriter writer(base_path, 42);
    writer.set_campaign("trunc-base", 100);
    for (const auto& snapshot : make_base_study(40)) writer.add_snapshot(snapshot);
    writer.finish();
  }
  CampaignSet set;
  set.add_file(base_path, 42);
  extend_series(set, small_followup_config(), mid_path, 43);
  extend_series(set, small_followup_config(), last_path, 44);
  EXPECT_NO_THROW(analyze_series(set, {}));

  const Bytes full = read_file_bytes(mid_path);
  ASSERT_GT(full.size(), 120u);
  for (const std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{40}}) {
    write_file_bytes(mid_path, Bytes(full.begin(), full.begin() + static_cast<long>(cut)));
    try {
      analyze_series(set, {});
      FAIL() << "series with member 1 truncated at " << cut << " did not throw";
    } catch (const SnapshotError& e) {
      EXPECT_FALSE(std::string(e.what()).empty());
    }
  }
  std::remove(base_path.c_str());
  std::remove(mid_path.c_str());
  std::remove(last_path.c_str());
}

TEST(SeriesChainValidation, OrderingRules) {
  auto member = [](const std::string& label, std::int64_t epoch) {
    SnapshotMeta meta;
    meta.campaign_label = label;
    meta.campaign_epoch_days = epoch;
    return meta;
  };
  // Strictly increasing epochs over declared members, undeclared skipped.
  EXPECT_NO_THROW(validate_campaign_chain({member("a", 100), member("b", 200), member("c", 300)}));
  EXPECT_NO_THROW(validate_campaign_chain({member("a", 100), member("", 0), member("c", 300)}));
  EXPECT_THROW(validate_campaign_chain({member("a", 200), member("b", 100)}), SnapshotError);
  EXPECT_THROW(validate_campaign_chain({member("a", 100), member("b", 200), member("c", 150)}),
               SnapshotError);
  EXPECT_THROW(validate_campaign_chain({member("a", 100), member("a", 100)}), SnapshotError);

  // A label-only member in between cannot hide a time-reversed series:
  // epochs compare against the last declared one.
  EXPECT_THROW(validate_campaign_chain({member("a", 100), member("b", 0), member("c", 50)}),
               SnapshotError);
  EXPECT_NO_THROW(validate_campaign_chain({member("a", 100), member("b", 0), member("c", 150)}));

  // The same rules through the CampaignSet / analyze_series surface.
  const ScanSnapshot week = make_measurement(100, {{10, SecurityPolicy::None, -1, "", 0}});
  CampaignSet backwards;
  backwards.add_snapshots({week}, "late", 300);
  backwards.add_snapshots({week}, "early", 200);
  EXPECT_THROW(analyze_series(backwards, {}), SnapshotError);
  SeriesOptions unchecked;
  unchecked.validate_ordering = false;
  EXPECT_NO_THROW(analyze_series(backwards, unchecked));
}

// ---------------------------------------- early-merge thread invariance ----

TEST(AnalysisEarlyMerge, ThrowingMergeNeverMergesAnIndexTwice) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> merged(64);
  for (auto& m : merged) m = 0;
  try {
    pool.parallel_for_merged(
        merged.size(), [](std::size_t) {},
        [&](std::size_t i) {
          if (++merged[i] > 1) std::abort();  // exactly-once contract
          if (i == 5) throw std::runtime_error("merge failed");
        });
    FAIL() << "merge exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "merge failed");
  }
  // The ascending prefix up to the failure merged exactly once; the
  // poisoned drain never touched anything past it.
  for (std::size_t i = 0; i <= 5; ++i) EXPECT_EQ(merged[i].load(), 1) << i;
  for (std::size_t i = 6; i < merged.size(); ++i) EXPECT_EQ(merged[i].load(), 0) << i;
}

TEST(AnalysisEarlyMerge, PrefixMergedAggregationStaysThreadInvariant) {
  const std::vector<ScanSnapshot> study = make_base_study(70, 3);
  AnalysisOptions serial;
  serial.threads = 1;
  serial.chunk_records = 7;  // many ragged chunks -> many prefix merges
  AnalysisOptions parallel;
  parallel.threads = 8;
  parallel.chunk_records = 7;
  const StudyAnalysis a = analyze_snapshots(study, serial);
  const StudyAnalysis b = analyze_snapshots(study, parallel);
  EXPECT_TRUE(a.figures_equal(b));
}

}  // namespace
}  // namespace opcua_study
