// The study-service layer:
//  - posture sketch sidecars: round trip, absent-sidecar fallback, and
//    the staleness contract (a sidecar whose fingerprint mismatches its
//    snapshot fails with an error naming BOTH paths — never served,
//    never silently skipped; truncation and bit flips fail the checksum),
//  - sketch-fed series analysis is byte-identical to the full walk,
//  - the incremental-append contract: appending a sketched campaign to a
//    resident series reads zero snapshot chunks (pinned through the
//    snapshot_chunks_read counter),
//  - query responses are byte-identical across inline execution, a
//    1-worker pool, and an 8-worker pool — including error documents,
//  - admission control: submits beyond max_queue are rejected
//    immediately; workers == 0 + drain() runs the queue deterministically,
//  - parse_query_request round trips and rejects malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "series/sketch.hpp"
#include "study/followup.hpp"
#include "svc/service.hpp"
#include "util/date.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {
namespace {

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Per-index unique certificates from a small key pool (same scheme as
/// the series tests): the matcher needs identifying fingerprints.
const std::vector<Bytes>& unique_certs() {
  static const std::vector<Bytes> certs = [] {
    KeyFactory keys(911, "");
    std::vector<Bytes> ders;
    for (int i = 0; i < 24; ++i) {
      const RsaKeyPair kp = keys.get("svc-test-" + std::to_string(i % 4), 512);
      CertificateSpec spec;
      spec.subject = {"svc device " + std::to_string(i), "Svc Test Org", "DE"};
      spec.signature_hash = HashAlgorithm::sha256;
      spec.serial = Bignum{static_cast<std::uint64_t>(9000 + i)};
      spec.not_before_days = days_from_civil({2019, 1, 1});
      spec.not_after_days = spec.not_before_days + 3650;
      spec.application_uri = "urn:svctest:device:" + std::to_string(i);
      ders.push_back(x509_create(spec, kp.pub, kp.priv));
    }
    return ders;
  }();
  return certs;
}

HostScanRecord make_host(std::size_t i) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x20000000u + static_cast<std::uint32_t>(i));
  host.port = kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 5);
  host.speaks_opcua = true;
  host.application_uri = "urn:generic:svctest-" + std::to_string(i);
  EndpointObservation ep;
  ep.url = "opc.tcp://x:4840/";
  const SecurityPolicy policy = i % 3 == 0   ? SecurityPolicy::None
                                : i % 3 == 1 ? SecurityPolicy::Basic256
                                             : SecurityPolicy::Basic256Sha256;
  ep.mode = policy == SecurityPolicy::None ? MessageSecurityMode::None
                                           : MessageSecurityMode::SignAndEncrypt;
  ep.policy_uri = std::string(policy_info(policy).uri);
  ep.policy = policy;
  ep.policy_known = true;
  ep.token_types = i % 4 == 0 ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                              : std::vector<UserTokenType>{UserTokenType::UserName};
  if (i % 5 != 0) ep.certificate_der = unique_certs()[i % unique_certs().size()];
  host.endpoints.push_back(std::move(ep));
  host.anonymous_offered = i % 4 == 0;
  return host;
}

/// Write a one-measurement campaign of `hosts` hosts to `path`.
void write_campaign(const std::string& path, std::uint64_t seed, const std::string& label,
                    std::int64_t epoch_days, std::size_t hosts) {
  SnapshotWriter writer(path, seed);
  writer.set_campaign(label, epoch_days);
  writer.begin_snapshot(0, epoch_days);
  for (std::size_t i = 0; i < hosts; ++i) writer.add_host(make_host(i));
  writer.end_snapshot(hosts * 2, hosts);
  writer.finish();
}

std::vector<HostPosture> walk_postures(const std::string& path, std::uint64_t seed) {
  const SnapshotReader reader(path, seed);
  ThreadPool pool(1);
  const ReaderRecordSource source(reader);
  return collect_postures(source, pool);
}

FollowupConfig small_followup_config() {
  FollowupConfig config;
  config.mint_keys = 4;
  config.mint_fleet = 32;
  config.mint_key_bits = 512;
  config.key_cache_path = "";
  return config;
}

struct TempFiles {
  std::vector<std::string> paths;
  ~TempFiles() {
    for (const auto& path : paths) {
      std::remove(path.c_str());
      std::remove(posture_sketch_path(path).c_str());
    }
  }
  const std::string& add(const std::string& path) {
    paths.push_back(path);
    return paths.back();
  }
};

// ------------------------------------------------------ sketch sidecars ----

TEST(PostureSketch, RoundTripPreservesEveryPosture) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_sketch_rt.bin");
  write_campaign(path, 42, "sketch-rt", 100, 60);
  const SnapshotReader reader(path, 42);
  const std::vector<HostPosture> walked = walk_postures(path, 42);
  ASSERT_EQ(walked.size(), 60u);

  const std::string sidecar = posture_sketch_path(path);
  EXPECT_EQ(sidecar, path + ".sketch");
  write_posture_sketch(sidecar, reader.file_fingerprint(), walked);
  const auto loaded =
      read_posture_sketch(sidecar, path, reader.file_fingerprint(), walked.size());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, walked);
}

TEST(PostureSketch, AbsentSidecarReturnsNullopt) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_sketch_absent.bin");
  write_campaign(path, 42, "sketch-absent", 100, 5);
  EXPECT_FALSE(read_posture_sketch(posture_sketch_path(path), path, 1234, 5).has_value());
}

TEST(PostureSketch, StaleFingerprintFailsNamingBothPaths) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_sketch_stale.bin");
  write_campaign(path, 42, "sketch-stale", 100, 20);
  const SnapshotReader reader(path, 42);
  const std::vector<HostPosture> walked = walk_postures(path, 42);
  const std::string sidecar = posture_sketch_path(path);
  // A sketch cut from "another" snapshot: stamp a different fingerprint.
  write_posture_sketch(sidecar, reader.file_fingerprint() ^ 1, walked);
  try {
    read_posture_sketch(sidecar, path, reader.file_fingerprint(), walked.size());
    FAIL() << "stale sketch did not throw";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stale"), std::string::npos) << what;
    EXPECT_NE(what.find(sidecar), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(PostureSketch, HostCountMismatchFailsNamingBothPaths) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_sketch_count.bin");
  write_campaign(path, 42, "sketch-count", 100, 20);
  const SnapshotReader reader(path, 42);
  std::vector<HostPosture> walked = walk_postures(path, 42);
  walked.pop_back();  // one posture short of the snapshot's host count
  const std::string sidecar = posture_sketch_path(path);
  write_posture_sketch(sidecar, reader.file_fingerprint(), walked);
  try {
    read_posture_sketch(sidecar, path, reader.file_fingerprint(), 20);
    FAIL() << "count-mismatched sketch did not throw";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(sidecar), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(PostureSketch, TruncationAndBitFlipsFailTheChecksum) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_sketch_corrupt.bin");
  write_campaign(path, 42, "sketch-corrupt", 100, 30);
  const SnapshotReader reader(path, 42);
  const std::vector<HostPosture> walked = walk_postures(path, 42);
  const std::string sidecar = posture_sketch_path(path);
  write_posture_sketch(sidecar, reader.file_fingerprint(), walked);
  const Bytes full = read_file_bytes(sidecar);
  ASSERT_GT(full.size(), 48u);

  for (const std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{10}}) {
    write_file_bytes(sidecar, Bytes(full.begin(), full.begin() + static_cast<long>(cut)));
    EXPECT_THROW(read_posture_sketch(sidecar, path, reader.file_fingerprint(), walked.size()),
                 SnapshotError)
        << "cut at " << cut;
  }
  Bytes flipped = full;
  flipped[flipped.size() / 2] ^= 0x40;
  write_file_bytes(sidecar, flipped);
  EXPECT_THROW(read_posture_sketch(sidecar, path, reader.file_fingerprint(), walked.size()),
               SnapshotError);
  // The pristine bytes still load.
  write_file_bytes(sidecar, full);
  EXPECT_TRUE(
      read_posture_sketch(sidecar, path, reader.file_fingerprint(), walked.size()).has_value());
}

TEST(PostureSketch, EnsureWritesOnceThenLoads) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_sketch_ensure.bin");
  write_campaign(path, 42, "sketch-ensure", 100, 25);
  ThreadPool pool(1);
  const std::vector<HostPosture> first = ensure_posture_sketch(path, 42, pool);
  const Bytes sidecar_bytes = read_file_bytes(posture_sketch_path(path));
  ASSERT_FALSE(sidecar_bytes.empty());
  const std::vector<HostPosture> second = ensure_posture_sketch(path, 42, pool);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, walk_postures(path, 42));
  // Second call loaded the sidecar instead of rewriting it.
  EXPECT_EQ(read_file_bytes(posture_sketch_path(path)), sidecar_bytes);
}

// -------------------------------------------- sketch-fed series analysis ----

TEST(SeriesSketches, SketchFedAnalysisIsByteIdenticalToTheWalk) {
  TempFiles tmp;
  const std::string base = tmp.add("/tmp/opcua_svc_series_base.bin");
  write_campaign(base, 42, "svc-series-base", 100, 80);
  CampaignSet set;
  set.add_file(base, 42);
  // File-backed extend_series cuts a sketch sidecar per member.
  extend_series(set, small_followup_config(), tmp.add("/tmp/opcua_svc_series_f1.bin"), 43);
  extend_series(set, small_followup_config(), tmp.add("/tmp/opcua_svc_series_f2.bin"), 44);
  EXPECT_TRUE(read_posture_sketch(posture_sketch_path(tmp.paths[1]), tmp.paths[1],
                                  SnapshotReader(tmp.paths[1], 43).file_fingerprint(),
                                  set.final_metas()[1].host_count)
                  .has_value());

  SeriesOptions with_sketches;
  with_sketches.threads = 1;
  SeriesOptions without_sketches;
  without_sketches.threads = 1;
  without_sketches.use_sketches = false;
  const SeriesAnalysis fed = analyze_series(set, with_sketches);
  const SeriesAnalysis walked = analyze_series(set, without_sketches);
  EXPECT_EQ(fed, walked);
  EXPECT_EQ(series_analysis_json(fed), series_analysis_json(walked));
}

// ------------------------------------------------- incremental appends ----

TEST(CampaignCatalog, IncrementalAppendReadsZeroSnapshotChunks) {
  TempFiles tmp;
  const std::string base = tmp.add("/tmp/opcua_svc_cat_base.bin");
  write_campaign(base, 42, "svc-cat-base", 100, 80);
  CampaignSet set;
  set.add_file(base, 42);
  extend_series(set, small_followup_config(), tmp.add("/tmp/opcua_svc_cat_f1.bin"), 43);
  extend_series(set, small_followup_config(), tmp.add("/tmp/opcua_svc_cat_f2.bin"), 44);
  extend_series(set, small_followup_config(), tmp.add("/tmp/opcua_svc_cat_f3.bin"), 45);

  obs::reset();
  obs::set_enabled(true);
  svc::CampaignCatalog catalog;
  catalog.register_campaign("m0", tmp.paths[0], 42);
  catalog.register_campaign("m1", tmp.paths[1], 43);
  catalog.register_campaign("m2", tmp.paths[2], 44);
  catalog.register_campaign("m3", tmp.paths[3], 45);
  catalog.register_series("history", {"m0", "m1", "m2"});
  const std::shared_ptr<const SeriesAnalysis> before = catalog.series("history");
  EXPECT_EQ(before->members.size(), 3u);

  // The appended member was generated by extend_series, so its posture
  // sketch sidecar exists: the append is one sketch load plus one match —
  // no snapshot chunk is decoded or mapped, for any series length.
  const std::uint64_t chunks_before =
      obs::collect()[obs::Metric::snapshot_chunks_read].total();
  EXPECT_EQ(catalog.append_to_series("history", "m3"), 4u);
  const std::uint64_t chunks_after =
      obs::collect()[obs::Metric::snapshot_chunks_read].total();
  EXPECT_EQ(chunks_after - chunks_before, 0u);

  // The refreshed analysis matches the batch path over the same members.
  const std::shared_ptr<const SeriesAnalysis> after = catalog.series("history");
  EXPECT_EQ(after->members.size(), 4u);
  SeriesOptions batch_options;
  batch_options.threads = 1;
  const SeriesAnalysis batch = analyze_series(set, batch_options);
  EXPECT_EQ(*after, batch);
  EXPECT_EQ(series_analysis_json(*after), series_analysis_json(batch));
  obs::set_enabled(false);
  obs::reset();
}

// ------------------------------------------------ concurrent query API ----

TEST(QueryService, ResponsesAreByteIdenticalAcrossWorkerCounts) {
  TempFiles tmp;
  const std::string base = tmp.add("/tmp/opcua_svc_det_base.bin");
  write_campaign(base, 42, "svc-det-base", 100, 60);
  CampaignSet set;
  set.add_file(base, 42);
  extend_series(set, small_followup_config(), tmp.add("/tmp/opcua_svc_det_f1.bin"), 43);

  svc::CampaignCatalog catalog;
  catalog.register_campaign("m0", tmp.paths[0], 42);
  catalog.register_campaign("m1", tmp.paths[1], 43);
  catalog.register_series("history", {"m0", "m1"});

  const std::vector<std::string> battery = {
      "kind=catalog",
      "kind=posture campaign=m0",
      "kind=posture campaign=m0 deficient=1 as_limit=2",
      "kind=posture campaign=m1 asn=64502",
      "kind=study campaign=m0",
      "kind=diff base=m0 followup=m1",
      "kind=series series=history",
      "kind=posture campaign=nope",  // error document, same contract
  };
  std::vector<svc::QueryRequest> requests;
  for (const auto& text : battery) requests.push_back(svc::parse_query_request(text));

  // Inline baseline.
  std::vector<std::string> inline_bodies;
  {
    svc::QueryService service(catalog);
    for (const auto& request : requests) {
      inline_bodies.push_back(service.execute(request).body);
    }
    EXPECT_FALSE(service.execute(requests.back()).ok);
  }
  // Pooled at 1 and 8 workers; each request submitted twice to force
  // same-artifact races.
  for (const int workers : {1, 8}) {
    svc::QueryServiceOptions options;
    options.workers = workers;
    options.max_queue = 64;
    svc::QueryService service(catalog, options);
    std::vector<std::future<svc::QueryResponse>> futures;
    for (int round = 0; round < 2; ++round) {
      for (const auto& request : requests) futures.push_back(service.submit(request));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const svc::QueryResponse response = futures[i].get();
      EXPECT_FALSE(response.rejected);
      EXPECT_EQ(response.body, inline_bodies[i % requests.size()])
          << "workers=" << workers << " request " << i % requests.size();
    }
  }
}

TEST(QueryService, AdmissionControlRejectsBeyondMaxQueue) {
  TempFiles tmp;
  const std::string base = tmp.add("/tmp/opcua_svc_adm_base.bin");
  write_campaign(base, 42, "svc-adm-base", 100, 10);
  svc::CampaignCatalog catalog;
  catalog.register_campaign("m0", base, 42);

  svc::QueryServiceOptions options;
  options.workers = 0;  // nothing drains until drain() — deterministic
  options.max_queue = 2;
  svc::QueryService service(catalog, options);
  svc::QueryRequest request = svc::parse_query_request("kind=catalog");

  auto accepted1 = service.submit(request);
  auto accepted2 = service.submit(request);
  auto rejected = service.submit(request);
  // The rejection resolves immediately, before anything ran.
  const svc::QueryResponse shed = rejected.get();
  EXPECT_TRUE(shed.rejected);
  EXPECT_FALSE(shed.ok);
  EXPECT_NE(shed.body.find("queue is full"), std::string::npos) << shed.body;

  EXPECT_EQ(service.drain(), 2u);
  EXPECT_TRUE(accepted1.get().ok);
  EXPECT_TRUE(accepted2.get().ok);
  EXPECT_EQ(service.drain(), 0u);

  // Queued-but-unrun requests complete rejected at destruction.
  auto orphaned = service.submit(request);
  {
    svc::QueryService ignored(catalog, options);
  }
  SUCCEED();  // destructor with empty queue is clean
  // `service` still alive: drain the orphan so its promise resolves ok.
  EXPECT_EQ(service.drain(), 1u);
  EXPECT_TRUE(orphaned.get().ok);
}

TEST(QueryService, DestructorCompletesQueuedRequestsAsRejected) {
  TempFiles tmp;
  const std::string base = tmp.add("/tmp/opcua_svc_dtor_base.bin");
  write_campaign(base, 42, "svc-dtor-base", 100, 10);
  svc::CampaignCatalog catalog;
  catalog.register_campaign("m0", base, 42);

  std::future<svc::QueryResponse> orphan;
  {
    svc::QueryServiceOptions options;
    options.workers = 0;
    svc::QueryService service(catalog, options);
    orphan = service.submit(svc::parse_query_request("kind=catalog"));
  }
  const svc::QueryResponse response = orphan.get();
  EXPECT_TRUE(response.rejected);
  EXPECT_NE(response.body.find("shut down"), std::string::npos) << response.body;
}

TEST(QueryService, StaleSketchSurfacesAsDeterministicErrorNamingBothPaths) {
  TempFiles tmp;
  const std::string path = tmp.add("/tmp/opcua_svc_stale_q.bin");
  write_campaign(path, 42, "svc-stale-q", 100, 20);
  const SnapshotReader reader(path, 42);
  write_posture_sketch(posture_sketch_path(path), reader.file_fingerprint() ^ 1,
                       walk_postures(path, 42));

  svc::CampaignCatalog catalog;
  catalog.register_campaign("m0", path, 42);
  svc::QueryService service(catalog);
  const svc::QueryRequest request = svc::parse_query_request("kind=posture campaign=m0");
  const svc::QueryResponse first = service.execute(request);
  EXPECT_FALSE(first.ok);
  EXPECT_NE(first.body.find("stale"), std::string::npos) << first.body;
  EXPECT_NE(first.body.find(path), std::string::npos) << first.body;
  EXPECT_NE(first.body.find(posture_sketch_path(path)), std::string::npos) << first.body;
  // The cached failure re-raises deterministically: identical bytes.
  EXPECT_EQ(service.execute(request).body, first.body);
}

// ----------------------------------------------------- request parsing ----

TEST(QueryParsing, RoundTripsEveryKey) {
  const svc::QueryRequest request = svc::parse_query_request(
      "kind=posture campaign=c1 asn=64503 protocol=opcua mode=2 policy=1 anonymous=1 "
      "deficient=1 as_limit=8");
  EXPECT_EQ(request.kind, svc::QueryRequest::Kind::posture);
  EXPECT_EQ(request.campaign, "c1");
  ASSERT_TRUE(request.asn.has_value());
  EXPECT_EQ(*request.asn, 64503u);
  ASSERT_TRUE(request.protocol.has_value());
  EXPECT_EQ(*request.protocol, "opcua");
  ASSERT_TRUE(request.mode_bucket.has_value());
  EXPECT_EQ(*request.mode_bucket, 2);
  ASSERT_TRUE(request.policy_bucket.has_value());
  EXPECT_EQ(*request.policy_bucket, 1);
  EXPECT_TRUE(request.anonymous_only);
  EXPECT_TRUE(request.deficient_only);
  EXPECT_EQ(request.as_limit, 8u);

  const svc::QueryRequest diff = svc::parse_query_request("kind=diff base=a followup=b");
  EXPECT_EQ(diff.kind, svc::QueryRequest::Kind::diff);
  EXPECT_EQ(diff.base, "a");
  EXPECT_EQ(diff.followup, "b");
  EXPECT_EQ(svc::parse_query_request("kind=series series=s").series, "s");
  EXPECT_EQ(svc::parse_query_request("").kind, svc::QueryRequest::Kind::catalog);
}

TEST(QueryParsing, RejectsMalformedInput) {
  EXPECT_THROW(svc::parse_query_request("kind=bogus"), std::invalid_argument);
  EXPECT_THROW(svc::parse_query_request("wat=1"), std::invalid_argument);
  EXPECT_THROW(svc::parse_query_request("kind=posture asn=notanumber"),
               std::invalid_argument);
  EXPECT_THROW(svc::parse_query_request("kind"), std::invalid_argument);
}

}  // namespace
}  // namespace opcua_study
