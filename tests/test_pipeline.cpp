// End-to-end pipeline tests on a small hand-built population: deploy real
// servers, sweep + grab + follow references with the scanner, and verify
// the assessment recovers exactly the planted configurations.
#include <gtest/gtest.h>

#include "assess/assess.hpp"
#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "scanner/dataset.hpp"
#include "study/study.hpp"

namespace opcua_study {
namespace {

HostPlan base_host(int index, std::uint32_t asn) {
  HostPlan host;
  host.index = index;
  host.cohort = "test";
  host.manufacturer = "other";
  host.application_uri = "urn:generic:opcua:e2e-" + std::to_string(index);
  host.product_uri = "http://example.org/opcua";
  host.application_name = "e2e host " + std::to_string(index);
  host.asn = asn;
  host.tokens = {UserTokenType::Anonymous, UserTokenType::UserName};
  host.modes = {MessageSecurityMode::None};
  host.policies = {SecurityPolicy::None};
  host.certificate.present = true;
  host.certificate.signature_hash = HashAlgorithm::sha1;
  host.certificate.key_bits = 1024;
  host.certificate.not_before_days = days_from_civil({2019, 6, 1});
  host.outcome = PlannedOutcome::accessible;
  host.classification = PlannedClass::production;
  host.variable_count = 10;
  host.method_count = 3;
  host.readable_fraction = 1.0;
  host.writable_fraction = 0.3;
  host.executable_fraction = 0.67;
  return host;
}

PopulationPlan small_plan() {
  PopulationPlan plan;
  // A: None-only, anonymous, accessible production system.
  plan.hosts.push_back(base_host(0, 64503));

  // B: full mode/policy spread, credentials only -> auth-rejected.
  HostPlan b = base_host(1, 64504);
  b.modes = {MessageSecurityMode::None, MessageSecurityMode::Sign,
             MessageSecurityMode::SignAndEncrypt};
  b.policies = {SecurityPolicy::None, SecurityPolicy::Basic128Rsa15,
                SecurityPolicy::Basic256Sha256};
  b.tokens = {UserTokenType::UserName};
  b.outcome = PlannedOutcome::auth_rejected;
  b.classification = PlannedClass::not_applicable;
  plan.hosts.push_back(b);

  // C: secure-only, strict certificate validation -> channel rejected.
  HostPlan c = base_host(2, 64505);
  c.modes = {MessageSecurityMode::SignAndEncrypt};
  c.policies = {SecurityPolicy::Basic256Sha256};
  c.certificate.signature_hash = HashAlgorithm::sha256;
  c.certificate.key_bits = 2048;
  c.trust_all_client_certs = false;
  c.outcome = PlannedOutcome::channel_rejected;
  c.classification = PlannedClass::not_applicable;
  plan.hosts.push_back(c);

  // D: discovery server referencing E.
  HostPlan d = base_host(3, 64506);
  d.discovery = true;
  d.manufacturer = "OPC Foundation";
  d.application_uri = "urn:opcfoundation:ua:lds:e2e";
  d.certificate.present = false;
  d.tokens = {UserTokenType::Anonymous};
  d.classification = PlannedClass::not_applicable;
  plan.hosts.push_back(d);

  // E: only reachable via the discovery reference, non-default port, test system.
  HostPlan e = base_host(4, 64507);
  e.port = 4841;
  e.via_reference_only = true;
  e.classification = PlannedClass::test;
  e.writable_fraction = 0.0;
  plan.hosts.push_back(e);

  // F: anonymous offered but the server rejects sessions (faulty config).
  HostPlan f = base_host(5, 64503);
  f.tokens = {UserTokenType::Anonymous};
  f.reject_all_sessions = true;
  f.outcome = PlannedOutcome::auth_rejected;
  f.classification = PlannedClass::not_applicable;
  plan.hosts.push_back(f);

  plan.discovery_references.emplace_back(3, 4);
  return plan;
}

struct PipelineFixture {
  PopulationPlan plan = small_plan();
  Network net;
  ScanSnapshot snapshot;

  explicit PipelineFixture(int week = 7) {
    DeployConfig deploy_config;
    deploy_config.seed = 99;
    deploy_config.dummy_hosts = 40;
    deploy_config.fast_keys = true;
    deploy_config.key_cache_path = "";
    Deployer deployer(plan, deploy_config);
    deployer.deploy_week(net, week);

    KeyFactory scanner_keys(99, "");
    CampaignConfig config;
    config.seed = 7;
    config.grabber.client = make_scanner_identity(99, scanner_keys);
    Campaign campaign(config, net);
    snapshot = campaign.run(week);
  }

  const HostScanRecord* find(const std::string& uri_suffix) const {
    for (const auto& host : snapshot.hosts) {
      if (host.application_uri.ends_with(uri_suffix)) return &host;
    }
    return nullptr;
  }
};

const PipelineFixture& fixture() {
  static const PipelineFixture f;
  return f;
}

TEST(Pipeline, FindsAllOpcUaHostsAndOnlyThem) {
  const auto& snapshot = fixture().snapshot;
  // 5 directly + 1 via reference; 40 dummies are probed but dropped.
  EXPECT_EQ(snapshot.hosts.size(), 6u);
  EXPECT_GE(snapshot.tcp_open_count, 6u + 40u - 1);  // dummies may collide
  EXPECT_EQ(snapshot.server_count(), 5u);
  EXPECT_EQ(snapshot.discovery_count(), 1u);
}

TEST(Pipeline, ReferenceFollowingReachesNonDefaultPort) {
  const auto* e = fixture().find("e2e-4");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->found_via_reference);
  EXPECT_EQ(e->port, 4841);
  EXPECT_EQ(e->session, SessionOutcome::accessible);
}

TEST(Pipeline, AccessibleHostTraversed) {
  const auto* a = fixture().find("e2e-0");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->session, SessionOutcome::accessible);
  EXPECT_FALSE(a->namespaces.empty());
  int vars = 0, writable = 0, methods = 0, executable = 0;
  for (const auto& node : a->nodes) {
    if (node.node_class == NodeClass::Variable) {
      ++vars;
      writable += node.writable;
      EXPECT_TRUE(node.readable);
    }
    if (node.node_class == NodeClass::Method) {
      ++methods;
      executable += node.executable;
    }
  }
  EXPECT_EQ(vars, 14);  // 10 planted + 4 standard ns0 variables
  EXPECT_EQ(writable, 3);
  EXPECT_EQ(methods, 3);
  EXPECT_EQ(executable, 3);  // ceil(0.67 * 3)
  EXPECT_GT(a->bytes_sent, 0u);
  EXPECT_GT(a->duration_seconds, 0.0);
}

TEST(Pipeline, ModesPoliciesAndTokensRecovered) {
  const auto* b = fixture().find("e2e-1");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->advertised_modes().size(), 3u);
  const auto policies = b->advertised_policies();
  EXPECT_EQ(policies.size(), 3u);
  EXPECT_EQ(b->advertised_token_types(),
            (std::vector<UserTokenType>{UserTokenType::UserName}));
  EXPECT_EQ(b->session, SessionOutcome::auth_rejected);
  // The scanner connected on the strongest endpoint with its certificate.
  EXPECT_EQ(b->channel, ChannelOutcome::established);
  EXPECT_EQ(b->channel_mode, MessageSecurityMode::SignAndEncrypt);
  EXPECT_EQ(b->channel_policy, SecurityPolicy::Basic256Sha256);
  EXPECT_TRUE(b->server_signature_valid);
}

TEST(Pipeline, StrictServerCountsAsCertificateRejected) {
  const auto* c = fixture().find("e2e-2");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->channel, ChannelOutcome::cert_rejected);
  EXPECT_EQ(c->session, SessionOutcome::channel_rejected);
}

TEST(Pipeline, FaultyAnonymousServerIsAuthRejected) {
  const auto* f = fixture().find("e2e-5");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->anonymous_offered);
  EXPECT_EQ(f->session, SessionOutcome::auth_rejected);
}

TEST(Pipeline, AssessmentRecoversPlantedDistributions) {
  const auto& snapshot = fixture().snapshot;
  ModePolicyStats modes = assess_modes_policies(snapshot);
  EXPECT_EQ(modes.servers, 5);
  EXPECT_EQ(modes.none_only, 3);  // A, E, F
  EXPECT_EQ(modes.mode_support[MessageSecurityMode::SignAndEncrypt], 2);
  EXPECT_EQ(modes.policy_support[SecurityPolicy::Basic256Sha256], 2);

  const AuthStats auth = assess_auth(snapshot);
  EXPECT_EQ(auth.accessible, 2);
  EXPECT_EQ(auth.auth_rejected, 2);
  EXPECT_EQ(auth.channel_rejected, 1);
  EXPECT_EQ(auth.anonymous_offered, 4);
  EXPECT_EQ(auth.production, 1);
  EXPECT_EQ(auth.test, 1);

  const AccessRightsStats access = assess_access_rights(snapshot);
  ASSERT_EQ(access.read_fractions.size(), 2u);
  EXPECT_DOUBLE_EQ(access.read_fractions[0], 1.0);

  const ReuseStats reuse = assess_reuse(snapshot);
  EXPECT_EQ(reuse.clusters_ge3, 0);
  EXPECT_EQ(reuse.distinct_certificates, 5);  // A,B,C,E,F have distinct certs

  const SharedPrimeStats primes = assess_shared_primes(snapshot);
  EXPECT_EQ(primes.distinct_moduli, 5u);
  EXPECT_EQ(primes.moduli_with_shared_prime, 0u);
}

TEST(Pipeline, ManufacturerClustering) {
  EXPECT_EQ(manufacturer_cluster("urn:bachmann:m1com:device-17"), "Bachmann");
  EXPECT_EQ(manufacturer_cluster("urn:beckhoff:TwinCAT:plc1"), "Beckhoff");
  EXPECT_EQ(manufacturer_cluster("urn:opcfoundation:ua:lds:3"), "OPC Foundation");
  EXPECT_EQ(manufacturer_cluster("urn:something:else"), "other");
}

TEST(Pipeline, NamespaceClassifier) {
  EXPECT_EQ(classify_namespaces({"http://opcfoundation.org/UA/",
                                 "http://PLCopen.org/OpcUa/IEC61131-3/"}),
            SystemClass::production);
  EXPECT_EQ(classify_namespaces({"http://opcfoundation.org/UA/",
                                 "http://examples.freeopcua.github.io"}),
            SystemClass::test);
  EXPECT_EQ(classify_namespaces({"http://opcfoundation.org/UA/"}), SystemClass::unclassified);
  // Production wins over test when both appear.
  EXPECT_EQ(classify_namespaces({"urn:factory:line:press", "urn:open62541:tutorial:server"}),
            SystemClass::production);
}

TEST(Pipeline, DatasetAnonymization) {
  const auto& snapshot = fixture().snapshot;
  Anonymizer anonymizer;
  const std::string jsonl = to_release_jsonl(snapshot, anonymizer);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 6);
  // No raw IPs, URIs or subjects in the release.
  EXPECT_EQ(jsonl.find("opc.tcp://"), std::string::npos);
  EXPECT_EQ(jsonl.find("e2e-"), std::string::npos);
  EXPECT_NE(jsonl.find("[blackened]"), std::string::npos);
  EXPECT_NE(jsonl.find("\"accessible\""), std::string::npos);
  EXPECT_EQ(anonymizer.distinct_ips(), 6u);
}

TEST(Pipeline, EthicsExclusionListHonored) {
  PopulationPlan plan = small_plan();
  Network net;
  DeployConfig deploy_config;
  deploy_config.seed = 99;
  deploy_config.dummy_hosts = 0;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  deployer.deploy_week(net, 7);

  KeyFactory keys(99, "");
  CampaignConfig config;
  config.seed = 7;
  config.grabber.client = make_scanner_identity(99, keys);
  // Exclude host A's whole AS block: it must not be scanned.
  config.exclusions = {Cidr{deployer.ip_of(plan.hosts[0], 7), 32}};
  Campaign campaign(config, net);
  const ScanSnapshot snapshot = campaign.run(7);
  for (const auto& host : snapshot.hosts) {
    EXPECT_NE(host.application_uri, "urn:generic:opcua:e2e-0");
  }
}

TEST(Pipeline, LfsrSweepFindsSameHostsAsOracle) {
  PopulationPlan plan = small_plan();
  // Move every host into one /16 so the LFSR walk is fast.
  Network net;
  DeployConfig deploy_config;
  deploy_config.seed = 99;
  deploy_config.dummy_hosts = 0;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  for (auto& host : plan.hosts) host.asn = 64503;  // same /15 block
  Deployer deployer(plan, deploy_config);
  deployer.deploy_week(net, 7);

  KeyFactory keys(99, "");
  CampaignConfig config;
  config.seed = 7;
  config.grabber.client = make_scanner_identity(99, keys);
  config.oracle_sweep = false;
  config.universe = Cidr{deployer.ip_of(plan.hosts[0], 7) & 0xffff0000u, 16};
  Campaign campaign(config, net);
  const ScanSnapshot snapshot = campaign.run(7);
  EXPECT_EQ(snapshot.probes_sent, 65536u);
  EXPECT_EQ(snapshot.hosts.size(), 6u);  // same five + referenced host
}

}  // namespace
}  // namespace opcua_study
