// Protocol-plugin scan layer tests:
//  - the ProtocolProbe registry and the scheme-aware endpoint parser,
//  - OPC UA routed through the registry is byte-identical to the legacy
//    single-protocol engine (including across scan-thread counts),
//  - mixed OPC UA + MQTT fleets scan deterministically across in-flight
//    windows and shard layouts, and shared device certificates come out
//    byte-identical across the two services,
//  - the v6 protocol column round trips (and the mask footer with it),
//    the row formats refuse non-OPC-UA records, and campaign chains with
//    differing protocol sets are rejected,
//  - the per-protocol dimension agrees between the streaming Aggregator
//    and the assess/ reference, and shows up in diff and series output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/analysis.hpp"
#include "assess/assess.hpp"
#include "diff/diff.hpp"
#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "scanner/host_task.hpp"
#include "scanner/protocol.hpp"
#include "scanner/snapshot_io.hpp"
#include "series/series.hpp"
#include "study/sharded.hpp"
#include "study/study.hpp"
#include "util/date.hpp"

namespace opcua_study {
namespace {

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

// ----------------------------------------------------------- the registry

TEST(ProtocolRegistry, BuiltinBackendsInIdOrder) {
  const auto& registry = protocol_registry();
  ASSERT_EQ(registry.size(), static_cast<std::size_t>(kProtocolCount));
  EXPECT_EQ(registry[0]->id(), ProtocolId::opcua);
  EXPECT_EQ(registry[0]->name(), "opcua");
  EXPECT_EQ(registry[0]->default_port(), kOpcUaDefaultPort);
  EXPECT_EQ(registry[1]->id(), ProtocolId::mqtt_tls);
  EXPECT_EQ(registry[1]->name(), "mqtt-tls");
  EXPECT_EQ(registry[1]->default_port(), kMqttTlsDefaultPort);

  EXPECT_EQ(&protocol_probe(ProtocolId::opcua), registry[0]);
  EXPECT_EQ(&protocol_probe(ProtocolId::mqtt_tls), registry[1]);
  EXPECT_EQ(find_protocol_probe("mqtt-tls"), registry[1]);
  EXPECT_EQ(find_protocol_probe("opcua"), registry[0]);
  EXPECT_EQ(find_protocol_probe("modbus"), nullptr);
  EXPECT_THROW(protocol_probe(static_cast<ProtocolId>(200)), std::invalid_argument);
  EXPECT_EQ(protocol_name(ProtocolId::mqtt_tls), "mqtt-tls");
  EXPECT_EQ(protocol_name(static_cast<ProtocolId>(7)), "protocol-7");
}

TEST(ProtocolRegistry, SchemeAwareEndpointParser) {
  const auto opc = parse_endpoint_url("opc.tcp://10.1.2.3/");
  ASSERT_TRUE(opc.has_value());
  EXPECT_EQ(opc->protocol, ProtocolId::opcua);
  EXPECT_EQ(opc->ip, make_ipv4(10, 1, 2, 3));
  EXPECT_EQ(opc->port, kOpcUaDefaultPort);

  const auto mqtt = parse_endpoint_url("mqtts://10.1.2.4/");
  ASSERT_TRUE(mqtt.has_value());
  EXPECT_EQ(mqtt->protocol, ProtocolId::mqtt_tls);
  EXPECT_EQ(mqtt->port, kMqttTlsDefaultPort);  // per-scheme default, not 4840

  const auto explicit_port = parse_endpoint_url("mqtts://10.1.2.4:1883/topics");
  ASSERT_TRUE(explicit_port.has_value());
  EXPECT_EQ(explicit_port->port, 1883);

  EXPECT_FALSE(parse_endpoint_url("http://10.1.2.3/").has_value());
  EXPECT_FALSE(parse_endpoint_url("opc.tcp://broker.example:4840/").has_value());
  EXPECT_FALSE(parse_endpoint_url("opc.tcp://10.1.2.3:99999/").has_value());

  // The old OPC-UA-only name is an alias over the same parser.
  const auto legacy = parse_opc_url("opc.tcp://10.1.2.3:4841/x");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->first, make_ipv4(10, 1, 2, 3));
  EXPECT_EQ(legacy->second, 4841);
  EXPECT_FALSE(parse_opc_url("mqtts://10.1.2.4/").has_value());
}

// ------------------------------------------------- mixed-fleet populations

/// Small OPC UA population (a spread of postures plus a certificate reuse
/// group) with an MQTT broker fleet grown next to it. Two brokers run on
/// the reuse-group device image, presenting the fleet certificate.
PopulationPlan mixed_plan() {
  PopulationPlan plan;
  plan.reuse_groups.push_back({0, HashAlgorithm::sha1, 1024, 2, "Bachmann electronic"});
  for (int i = 0; i < 8; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "mixed";
    host.manufacturer = "other";
    host.application_uri = "urn:generic:opcua:mixed-" + std::to_string(i);
    host.application_name = "mixed host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 3);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 3, 1});
    if (i < 2) {
      host.certificate.reuse_group = 0;
      host.certificate.signature_hash = HashAlgorithm::sha1;
    }
    if (i % 3 == 0) {
      host.modes = {MessageSecurityMode::None};
      host.policies = {SecurityPolicy::None};
      host.tokens = {UserTokenType::Anonymous};
      host.outcome = PlannedOutcome::accessible;
      host.classification = PlannedClass::production;
      host.variable_count = 4;
      host.method_count = 1;
    } else {
      host.modes = {MessageSecurityMode::None, MessageSecurityMode::Sign};
      host.policies = {SecurityPolicy::None, SecurityPolicy::Basic128Rsa15};
      host.tokens = {UserTokenType::UserName};
      host.outcome = PlannedOutcome::auth_rejected;
    }
    plan.hosts.push_back(std::move(host));
  }
  add_mqtt_population(plan, 99, 8);
  return plan;
}

CampaignConfig mixed_campaign_config(KeyFactory& keys) {
  CampaignConfig config;
  config.seed = 5;
  config.grabber.client = make_scanner_identity(42, keys);
  config.protocols = {ProtocolTarget{ProtocolId::opcua, kOpcUaDefaultPort},
                      ProtocolTarget{ProtocolId::mqtt_tls, kMqttTlsDefaultPort}};
  return config;
}

ScanSnapshot run_mixed_campaign(const PopulationPlan& plan, std::size_t max_in_flight,
                                int week = 7) {
  Network net;
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 20;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  deployer.deploy_week(net, week);

  KeyFactory keys(42, "");
  CampaignConfig config = mixed_campaign_config(keys);
  config.max_in_flight = max_in_flight;
  Campaign campaign(config, net);
  return campaign.run(week);
}

// ------------------------------------- OPC UA through the registry: bytes

TEST(ProtocolPlugin, OpcUaThroughRegistryIsByteIdentical) {
  // The same campaign routed (a) through the legacy single-protocol
  // default and (b) through an explicit one-entry registry mix must
  // produce identical snapshots — and identical snapshot files.
  PopulationPlan plan = mixed_plan();
  plan.mqtt_hosts.clear();  // OPC UA only, both ways

  auto run_with = [&](bool explicit_mix) {
    Network net;
    DeployConfig deploy_config;
    deploy_config.seed = 42;
    deploy_config.dummy_hosts = 20;
    deploy_config.fast_keys = true;
    deploy_config.key_cache_path = "";
    Deployer deployer(plan, deploy_config);
    deployer.deploy_week(net, 7);
    KeyFactory keys(42, "");
    CampaignConfig config;
    config.seed = 5;
    config.grabber.client = make_scanner_identity(42, keys);
    if (explicit_mix) config.protocols = {ProtocolTarget{ProtocolId::opcua, kOpcUaDefaultPort}};
    Campaign campaign(config, net);
    return campaign.run(7);
  };
  const ScanSnapshot legacy = run_with(false);
  const ScanSnapshot registry = run_with(true);
  EXPECT_EQ(legacy, registry);

  const std::string legacy_path = "test_proto_legacy.bin";
  const std::string registry_path = "test_proto_registry.bin";
  save_snapshots(legacy_path, 5, {legacy});
  save_snapshots(registry_path, 5, {registry});
  EXPECT_EQ(read_file_bytes(legacy_path), read_file_bytes(registry_path));
  // OPC-UA-only output never declares a protocol mask (that is what keeps
  // it byte-identical to pre-registry files).
  const SnapshotReader reader(registry_path, 5);
  ASSERT_EQ(reader.snapshots().size(), 1u);
  EXPECT_EQ(reader.snapshots()[0].protocol_mask, 0u);
  std::remove(legacy_path.c_str());
  std::remove(registry_path.c_str());
}

TEST(ProtocolPlugin, MixedShardedStreamIsThreadCountInvariant) {
  const PopulationPlan plan = mixed_plan();
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 20;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";

  auto stream_with_threads = [&](int threads, const std::string& path) {
    Deployer deployer(plan, deploy_config);
    KeyFactory keys(42, "");
    ScanOptions options;
    options.shards = 3;
    options.threads = threads;
    options.protocols = {ProtocolTarget{ProtocolId::opcua, kOpcUaDefaultPort},
                         ProtocolTarget{ProtocolId::mqtt_tls, kMqttTlsDefaultPort}};
    const ShardedCampaignConfig config =
        make_sharded_config(mixed_campaign_config(keys), options);
    SnapshotWriter writer(path, 5);
    run_sharded_campaign_streamed(deployer, 7, config, writer);
    writer.finish();
  };
  stream_with_threads(1, "test_proto_t1.bin");
  stream_with_threads(8, "test_proto_t8.bin");
  EXPECT_EQ(read_file_bytes("test_proto_t1.bin"), read_file_bytes("test_proto_t8.bin"));

  // The mixed file declares both families in its protocol mask.
  const SnapshotReader reader("test_proto_t8.bin", 5);
  ASSERT_EQ(reader.snapshots().size(), 1u);
  EXPECT_EQ(reader.snapshots()[0].protocol_mask, 0b11u);
  std::remove("test_proto_t1.bin");
  std::remove("test_proto_t8.bin");
}

TEST(ProtocolPlugin, MixedFleetInterleaveDeterminism) {
  const PopulationPlan plan = mixed_plan();
  const ScanSnapshot lock_step = run_mixed_campaign(plan, 1);
  const ScanSnapshot interleaved = run_mixed_campaign(plan, 256);
  EXPECT_EQ(lock_step, interleaved);

  std::size_t opcua_count = 0, mqtt_count = 0;
  for (const auto& host : interleaved.hosts) {
    if (host.protocol == ProtocolId::opcua) ++opcua_count;
    if (host.protocol == ProtocolId::mqtt_tls) {
      ++mqtt_count;
      EXPECT_EQ(host.port, kMqttTlsDefaultPort);
      EXPECT_TRUE(host.speaks_opcua);  // "completed the probed handshake"
    }
  }
  EXPECT_EQ(opcua_count, 8u);
  EXPECT_EQ(mqtt_count, 8u);

  // Shard layouts repartition the universe but never the result.
  DeployConfig deploy_config;
  deploy_config.seed = 42;
  deploy_config.dummy_hosts = 20;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  auto sharded = [&](int shards) {
    Deployer deployer(plan, deploy_config);
    KeyFactory keys(42, "");
    ShardedCampaignConfig config;
    config.campaign = mixed_campaign_config(keys);
    config.shards = shards;
    config.threads = 2;
    return run_sharded_campaign(deployer, 7, config);
  };
  EXPECT_EQ(sharded(1), sharded(3));
}

TEST(ProtocolPlugin, SharedDeviceImageCertificateIsByteIdentical) {
  // Brokers deployed on an OPC UA reuse-group device image must present
  // the exact fleet certificate DER — which the matcher then must *not*
  // use to link the two services into one identity.
  const PopulationPlan plan = mixed_plan();
  const ScanSnapshot snapshot = run_mixed_campaign(plan, 256);

  std::vector<Bytes> opcua_fleet_certs;
  for (const auto& host : snapshot.hosts) {
    if (host.protocol != ProtocolId::opcua) continue;
    for (const auto& ep : host.endpoints) {
      if (!ep.certificate_der.empty()) opcua_fleet_certs.push_back(ep.certificate_der);
    }
  }
  std::size_t shared = 0;
  for (const auto& host : snapshot.hosts) {
    if (host.protocol != ProtocolId::mqtt_tls) continue;
    ASSERT_FALSE(host.endpoints.empty());
    const Bytes& der = host.endpoints.front().certificate_der;
    ASSERT_FALSE(der.empty());
    for (const auto& fleet : opcua_fleet_certs) {
      if (fleet == der) {
        ++shared;
        break;
      }
    }
  }
  EXPECT_EQ(shared, 2u);  // brokers 0 and 7 ride reuse group 0
}

// ---------------------------------------------------- v6 protocol column

std::vector<ScanSnapshot> synthetic_mixed_study(int weeks = 2) {
  std::vector<ScanSnapshot> snapshots;
  for (int week = 0; week < weeks; ++week) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = week;
    snapshot.date_days = days_from_civil({2020, 2, 9}) + 28 * week;
    snapshot.probes_sent = 500;
    snapshot.tcp_open_count = 40;
    for (std::size_t i = 0; i < 20; ++i) {
      HostScanRecord host;
      const bool mqtt = i % 3 == 2;
      host.protocol = mqtt ? ProtocolId::mqtt_tls : ProtocolId::opcua;
      host.ip = static_cast<Ipv4>(0x15000000u + static_cast<std::uint32_t>(i));
      host.port = mqtt ? kMqttTlsDefaultPort : kOpcUaDefaultPort;
      host.asn = 64500;
      host.tcp_open = true;
      host.speaks_opcua = true;
      host.application_uri = "urn:test:mixed:" + std::to_string(i);
      EndpointObservation ep;
      ep.url = (mqtt ? "mqtts://" : "opc.tcp://") + format_ipv4(host.ip);
      const SecurityPolicy policy =
          i % 2 == 0 ? SecurityPolicy::Basic128Rsa15 : SecurityPolicy::Basic256Sha256;
      ep.mode = MessageSecurityMode::SignAndEncrypt;
      ep.policy_uri = std::string(policy_info(policy).uri);
      ep.policy = policy;
      ep.policy_known = true;
      ep.token_types = {i % 4 == 0 ? UserTokenType::Anonymous : UserTokenType::UserName};
      ep.certificate_der = Bytes{0x30, 0x01, static_cast<std::uint8_t>(i % 5)};
      host.endpoints.push_back(std::move(ep));
      host.anonymous_offered = i % 4 == 0;
      host.bytes_sent = 100 + i;
      host.duration_seconds = 1.0;
      // Some records also carry a scan-quality tail, so the tail order
      // (quality first, protocol byte last) is exercised both ways.
      if (i % 5 == 1) host.retries = 2;
      snapshot.hosts.push_back(std::move(host));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

TEST(ProtocolColumn, V6RoundTripCarriesProtocolAndMask) {
  const std::vector<ScanSnapshot> study = synthetic_mixed_study();
  const std::string path = "test_proto_column.bin";
  save_snapshots(path, 11, study);

  const SnapshotReader reader(path, 11);
  ASSERT_EQ(reader.snapshots().size(), study.size());
  for (const auto& meta : reader.snapshots()) EXPECT_EQ(meta.protocol_mask, 0b11u);
  const std::vector<ScanSnapshot> loaded = reader.load_all();
  ASSERT_EQ(loaded.size(), study.size());
  for (std::size_t w = 0; w < study.size(); ++w) {
    ASSERT_EQ(loaded[w].hosts.size(), study[w].hosts.size());
    for (std::size_t i = 0; i < study[w].hosts.size(); ++i) {
      EXPECT_EQ(loaded[w].hosts[i], study[w].hosts[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(ProtocolColumn, RowFormatsRefuseNonOpcuaRecords) {
  const std::vector<ScanSnapshot> study = synthetic_mixed_study(1);
  const std::string path = "test_proto_refuse.bin";
  {
    SnapshotWriter v5(path, 11, SnapshotWriter::kDefaultChunkRecords, 5);
    v5.begin_snapshot(0, study[0].date_days);
    EXPECT_THROW(
        {
          for (const auto& host : study[0].hosts) v5.add_host(host);
        },
        SnapshotError);
  }
  EXPECT_THROW(save_snapshots_v4(path, 11, study), SnapshotError);
  std::remove(path.c_str());
}

TEST(ProtocolColumn, ChainValidationRejectsDifferingProtocolSets) {
  SnapshotMeta opcua_only;
  opcua_only.campaign_label = "a";
  opcua_only.campaign_epoch_days = 100;
  opcua_only.protocol_mask = 0b01;
  SnapshotMeta mixed;
  mixed.campaign_label = "b";
  mixed.campaign_epoch_days = 200;
  mixed.protocol_mask = 0b11;
  try {
    validate_campaign_chain({opcua_only, mixed});
    FAIL() << "differing protocol masks must not chain";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("mqtt-tls"), std::string::npos) << e.what();
  }
  // Equal masks — and undeclared (mask-0) members — chain fine.
  SnapshotMeta legacy;
  legacy.campaign_label = "c";
  legacy.campaign_epoch_days = 300;
  EXPECT_NO_THROW(validate_campaign_chain({mixed, legacy}));
  opcua_only.protocol_mask = 0b11;
  EXPECT_NO_THROW(validate_campaign_chain({opcua_only, mixed}));
}

// ------------------------------------------- the per-protocol dimension

TEST(ProtocolAnalysis, AggregatorMatchesAssessReference) {
  const std::vector<ScanSnapshot> study = synthetic_mixed_study();
  const ProtocolStats reference = assess_protocols(study);
  ASSERT_EQ(reference.weeks.size(), study.size());
  EXPECT_EQ(reference.weeks[0].hosts.at(ProtocolId::opcua), 14u);
  EXPECT_EQ(reference.weeks[0].hosts.at(ProtocolId::mqtt_tls), 6u);

  const StudyAnalysis in_memory = analyze_snapshots(study);
  EXPECT_EQ(in_memory.protocols, reference);

  // The columnar fast path decodes the protocol tail the same way.
  const std::string path = "test_proto_analysis.bin";
  save_snapshots(path, 11, study);
  const StudyAnalysis from_file = analyze_file(path, 11);
  EXPECT_EQ(from_file.protocols, reference);
  std::remove(path.c_str());
}

TEST(ProtocolAnalysis, DiffAndSeriesSplitByProtocol) {
  std::vector<ScanSnapshot> base = synthetic_mixed_study(1);
  std::vector<ScanSnapshot> followup = synthetic_mixed_study(1);
  followup[0].measurement_index = 1;
  followup[0].date_days += 28;

  DiffOptions options;
  options.validate_pairing = false;
  const CampaignDiff diff = diff_snapshots(base, followup, options);
  ASSERT_EQ(diff.by_protocol.size(), 2u);
  const ProtocolDiffRow& opcua_row = diff.by_protocol.at(ProtocolId::opcua);
  const ProtocolDiffRow& mqtt_row = diff.by_protocol.at(ProtocolId::mqtt_tls);
  EXPECT_EQ(opcua_row.base_hosts, 14u);
  EXPECT_EQ(mqtt_row.base_hosts, 6u);
  EXPECT_EQ(opcua_row.followup_hosts, 14u);
  EXPECT_EQ(mqtt_row.followup_hosts, 6u);
  // Identical populations at identical addresses: everything matches,
  // within its own protocol.
  EXPECT_EQ(opcua_row.matched, 14u);
  EXPECT_EQ(mqtt_row.matched, 6u);

  CampaignSet set;
  set.add_snapshots(std::move(base), "campaign-a", 100);
  set.add_snapshots(std::move(followup), "campaign-b", 200);
  const SeriesAnalysis series = analyze_series(set);
  ASSERT_EQ(series.members.size(), 2u);
  for (const auto& member : series.members) {
    EXPECT_EQ(member.hosts_by_protocol.at(ProtocolId::opcua), 14u);
    EXPECT_EQ(member.hosts_by_protocol.at(ProtocolId::mqtt_tls), 6u);
    EXPECT_EQ(member.deficient_by_protocol.size(), 2u);
  }
  const std::string json = series_analysis_json(series);
  EXPECT_NE(json.find("\"mqtt-tls\""), std::string::npos);
  EXPECT_NE(json.find("\"opcua\""), std::string::npos);
}

}  // namespace
}  // namespace opcua_study
