// Chunked snapshot pipeline + shared analysis library:
//  - v6 (columnar + cert dictionary) round trips across chunk boundaries,
//    v4 and v5 files still load, and rewriting either as v6 preserves
//    every record byte-deterministically,
//  - truncated / corrupt files fail with SnapshotError instead of
//    yielding garbage records; out-of-range dictionary ids are rejected,
//  - the streaming Aggregator is deterministic in the thread count and
//    input format and bit-identical to the assess/ reference
//    implementations (the v6 columnar fast path included).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/analysis.hpp"
#include "assess/assess.hpp"
#include "crypto/keycache.hpp"
#include "scanner/snapshot_io.hpp"
#include "util/date.hpp"

namespace opcua_study {
namespace {

Bytes read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Certificates shared across synthetic hosts so the reuse/deficit/
/// longitudinal passes have real clusters, renewals, and weak keys.
const std::vector<Bytes>& cert_fleet() {
  static const std::vector<Bytes> fleet = [] {
    KeyFactory keys(777, "");
    std::vector<Bytes> ders;
    for (int i = 0; i < 6; ++i) {
      const RsaKeyPair kp = keys.get("pipe-test-" + std::to_string(i), 512);
      CertificateSpec spec;
      spec.subject = {"device " + std::to_string(i),
                      i < 2 ? "Bachmann electronic" : "Test Org", "DE"};
      spec.signature_hash = i % 2 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
      spec.serial = Bignum{static_cast<std::uint64_t>(100 + i)};
      spec.not_before_days = days_from_civil({2018 + i % 3, 1, 1});
      spec.not_after_days = spec.not_before_days + 3650;
      spec.application_uri = "urn:test:device:" + std::to_string(i);
      ders.push_back(x509_create(spec, kp.pub, kp.priv));
    }
    return ders;
  }();
  return fleet;
}

HostScanRecord make_host(std::size_t i, int week) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x14000000u + static_cast<std::uint32_t>(i));
  host.port = i % 9 == 0 ? 4841 : kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 5);
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.found_via_reference = i % 7 == 0;
  host.application_uri =
      i % 3 == 0 ? "urn:bachmann:test-" + std::to_string(i) : "urn:generic:test-" + std::to_string(i);
  host.software_version = (i % 11 == 0 && week > 0) ? "2.0" : "1.0";
  if (i % 10 == 9) host.application_type = ApplicationType::DiscoveryServer;

  EndpointObservation ep;
  ep.url = "opc.tcp://t" + std::to_string(i) + ":4840/";
  const SecurityPolicy policy = i % 4 == 0   ? SecurityPolicy::None
                                : i % 4 == 1 ? SecurityPolicy::Basic256
                                             : SecurityPolicy::Basic256Sha256;
  ep.mode = policy == SecurityPolicy::None ? MessageSecurityMode::None
                                           : MessageSecurityMode::SignAndEncrypt;
  ep.policy_uri = std::string(policy_info(policy).uri);
  ep.policy = policy;
  ep.policy_known = true;
  ep.token_types = i % 2 ? std::vector<UserTokenType>{UserTokenType::Anonymous,
                                                      UserTokenType::UserName}
                         : std::vector<UserTokenType>{UserTokenType::Anonymous};
  // Certificate rotation in the final week on some hosts -> renewal events.
  const std::size_t cert_index = (i + ((week > 0 && i % 11 == 0) ? 1 : 0)) % cert_fleet().size();
  if (i % 4 != 0) ep.certificate_der = cert_fleet()[cert_index];
  host.endpoints.push_back(std::move(ep));

  host.channel = i % 8 == 7 ? ChannelOutcome::cert_rejected : ChannelOutcome::established;
  host.anonymous_offered = true;
  host.session = (i % 3 == 0 && host.channel == ChannelOutcome::established)
                     ? SessionOutcome::accessible
                     : SessionOutcome::auth_rejected;
  host.namespaces = {"http://opcfoundation.org/UA/"};
  if (host.session == SessionOutcome::accessible) {
    if (i % 6 == 0) host.namespaces.push_back("urn:plant:unit");
    for (int n = 0; n < 5; ++n) {
      NodeObservation node;
      node.browse_name = "n" + std::to_string(n);
      node.node_class = n < 4 ? NodeClass::Variable : NodeClass::Method;
      node.readable = true;
      node.writable = n % 2 == 0;
      node.executable = n == 4 && i % 2 == 0;
      host.nodes.push_back(node);
    }
  }
  host.bytes_sent = 1000 + i;
  host.duration_seconds = 100.0 + static_cast<double>(i % 20);
  return host;
}

std::vector<ScanSnapshot> make_study(std::size_t hosts_per_week, int weeks = 2) {
  std::vector<ScanSnapshot> snapshots;
  for (int week = 0; week < weeks; ++week) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = week;
    snapshot.date_days = days_from_civil({2020, 2, 9}) + 28 * week;
    snapshot.probes_sent = 1000 * (week + 1);
    snapshot.tcp_open_count = 100 * (week + 1);
    for (std::size_t i = 0; i < hosts_per_week; ++i) {
      snapshot.hosts.push_back(make_host(i, week));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

TEST(SnapshotV6, RoundTripAcrossChunkBoundaries) {
  const std::string path = "/tmp/opcua_test_v6_chunks.bin";
  const std::vector<ScanSnapshot> study = make_study(10);

  // chunk_records = 3 forces boundaries inside each measurement (10 hosts
  // -> chunks of 3+3+3+1) and a fresh chunk per measurement.
  SnapshotWriter writer(path, 42, 3);
  for (const auto& snapshot : study) writer.add_snapshot(snapshot);
  writer.finish();

  const SnapshotReader reader(path, 42);
  EXPECT_EQ(reader.version(), 6u);
  EXPECT_GT(reader.cert_count(), 0u);
  ASSERT_EQ(reader.snapshots().size(), 2u);
  EXPECT_EQ(reader.snapshots()[0].host_count, 10u);
  EXPECT_EQ(reader.snapshots()[1].measurement_index, 1);
  EXPECT_EQ(reader.snapshots()[1].probes_sent, 2000u);
  ASSERT_EQ(reader.chunks().size(), 8u);  // 4 per measurement
  EXPECT_EQ(reader.chunks()[3].record_count, 1u);
  EXPECT_EQ(reader.chunks()[4].snapshot_ordinal, 1u);

  // Chunk-by-chunk iteration reassembles the records exactly.
  EXPECT_EQ(reader.load_all(), study);
  std::vector<HostScanRecord> streamed;
  reader.for_each_host([&](std::size_t week, const HostScanRecord& host) {
    if (week == 0) streamed.push_back(host);
  });
  EXPECT_EQ(streamed, study[0].hosts);

  const auto loaded = load_snapshots(path, 42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, study);
  std::remove(path.c_str());
}

TEST(SnapshotV5, LegacyV4FilesStillLoad) {
  const std::string path = "/tmp/opcua_test_v4_compat.bin";
  const std::vector<ScanSnapshot> study = make_study(9);
  save_snapshots_v4(path, 7, study);

  const SnapshotReader reader(path, 7);
  EXPECT_EQ(reader.version(), 4u);
  ASSERT_EQ(reader.snapshots().size(), 2u);
  EXPECT_EQ(reader.snapshots()[0].host_count, 9u);
  EXPECT_EQ(reader.load_all(), study);

  const auto loaded = load_snapshots(path, 7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, study);

  // The analysis pipeline consumes v4 streams through the same interface.
  EXPECT_TRUE(analyze_file(path, 7, {}).figures_equal(analyze_snapshots(study, {})));
  std::remove(path.c_str());
}

TEST(SnapshotV5, AbandonedWriterLeavesUnloadableFile) {
  // A writer destroyed without finish() — e.g. stack unwinding after a
  // failed campaign — must not seal the partial dataset: a 3-of-8-week
  // file that loads cleanly would silently skew every longitudinal stat.
  // The writer streams into a sibling .tmp and only finish() renames it,
  // so the final path never even exists for an abandoned campaign.
  const std::string path = "/tmp/opcua_test_v5_abandoned.bin";
  std::remove(path.c_str());
  {
    SnapshotWriter writer(path, 42);
    writer.add_snapshot(make_study(4, 1).front());
    // no finish()
  }
  std::string error;
  EXPECT_FALSE(load_snapshots(path, 42, &error).has_value());
  EXPECT_NE(error.find("not found"), std::string::npos);
  // The partial bytes sit in the unsealed temp file, which also refuses
  // to load (no trailer was ever written).
  std::string tmp_error;
  EXPECT_FALSE(load_snapshots(path + ".tmp", 42, &tmp_error).has_value());
  EXPECT_NE(tmp_error.find("unsealed"), std::string::npos);
  std::remove((path + ".tmp").c_str());
}

TEST(SnapshotV5, SeedAndVersionMismatchRejected) {
  const std::string path = "/tmp/opcua_test_v5_seed.bin";
  save_snapshots(path, 42, make_study(3, 1));
  std::string error;
  EXPECT_FALSE(load_snapshots(path, 43, &error).has_value());
  EXPECT_NE(error.find("seed mismatch"), std::string::npos);
  EXPECT_FALSE(load_snapshots("/tmp/no_such_snapshot_file.bin", 42).has_value());
  std::remove(path.c_str());
}

TEST(SnapshotV5, TruncationAlwaysFailsCleanly) {
  const std::string path = "/tmp/opcua_test_v5_trunc.bin";
  const std::string cut_path = "/tmp/opcua_test_v5_trunc_cut.bin";
  save_snapshots(path, 42, make_study(6, 1));
  const Bytes full = read_file_bytes(path);
  ASSERT_GT(full.size(), 64u);

  // Every truncation point (dense near both ends, strided through the
  // middle) must produce a SnapshotError — never garbage records, never a
  // crash.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < std::min<std::size_t>(full.size(), 40); ++n) cuts.push_back(n);
  for (std::size_t n = 40; n + 1 < full.size(); n += 97) cuts.push_back(n);
  for (std::size_t back = 1; back <= 24 && back < full.size(); ++back) {
    cuts.push_back(full.size() - back);
  }
  for (const std::size_t cut : cuts) {
    write_file_bytes(cut_path, Bytes(full.begin(), full.begin() + static_cast<long>(cut)));
    std::string error;
    EXPECT_FALSE(load_snapshots(cut_path, 42, &error).has_value()) << "cut at " << cut;
    EXPECT_FALSE(error.empty()) << "cut at " << cut;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(SnapshotV5, CorruptEnumValuesRejected) {
  const std::string path = "/tmp/opcua_test_v5_enum.bin";
  std::vector<ScanSnapshot> study = make_study(3, 1);
  // An out-of-range enum hidden behind a reinterpreted cast — exactly what
  // a flipped bit in a record payload produces.
  study[0].hosts[1].application_type = static_cast<ApplicationType>(0x2a);
  save_snapshots(path, 42, study);
  std::string error;
  EXPECT_FALSE(load_snapshots(path, 42, &error).has_value());
  EXPECT_NE(error.find("application type"), std::string::npos);

  study[0].hosts[1].application_type = ApplicationType::Server;
  study[0].hosts[2].session = static_cast<SessionOutcome>(9);
  save_snapshots(path, 42, study);
  EXPECT_FALSE(load_snapshots(path, 42, &error).has_value());
  EXPECT_NE(error.find("session outcome"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotV5, RandomPayloadCorruptionNeverCrashes) {
  const std::string path = "/tmp/opcua_test_v5_fuzz.bin";
  const std::string bad_path = "/tmp/opcua_test_v5_fuzz_bad.bin";
  save_snapshots(path, 42, make_study(5, 1));
  const Bytes full = read_file_bytes(path);
  // Deterministic xorshift so the sweep is reproducible.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int trial = 0; trial < 200; ++trial) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    Bytes mutated = full;
    mutated[state % mutated.size()] ^= static_cast<std::uint8_t>(1u << (state % 8));
    write_file_bytes(bad_path, mutated);
    // Either the flip lands somewhere harmless (a string byte) and the
    // file still loads, or it must be rejected — never UB, never garbage
    // enum values (gtest would flag a crash/sanitizer fault here).
    const auto loaded = load_snapshots(bad_path, 42);
    if (loaded.has_value()) {
      ASSERT_EQ(loaded->size(), 1u);
      EXPECT_EQ(loaded->front().hosts.size(), 5u);
    }
  }
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

std::uint32_t read_le32(const Bytes& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) | (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint64_t read_le64(const Bytes& b, std::size_t at) {
  return static_cast<std::uint64_t>(read_le32(b, at)) |
         (static_cast<std::uint64_t>(read_le32(b, at + 4)) << 32);
}

void write_le32(Bytes& b, std::size_t at, std::uint32_t value) {
  b[at] = static_cast<std::uint8_t>(value);
  b[at + 1] = static_cast<std::uint8_t>(value >> 8);
  b[at + 2] = static_cast<std::uint8_t>(value >> 16);
  b[at + 3] = static_cast<std::uint8_t>(value >> 24);
}

/// Byte offset of the v6 certificate dictionary, recovered the same way
/// the reader finds it: trailer -> footer -> dict_offset field.
std::size_t v6_dict_offset(const Bytes& b) {
  const std::size_t footer = static_cast<std::size_t>(read_le64(b, b.size() - 12));
  const std::uint32_t snapshot_count = read_le32(b, footer + 4);
  std::size_t at = footer + 8 + 36ull * snapshot_count;
  const std::uint32_t chunk_count = read_le32(b, at);
  at += 4 + 24ull * chunk_count;
  return static_cast<std::size_t>(read_le64(b, at));
}

TEST(SnapshotV6, VarOffsetTableCorruptionRejected) {
  const std::string path = "/tmp/opcua_test_v6_offsets.bin";
  const std::string bad_path = "/tmp/opcua_test_v6_offsets_bad.bin";
  save_snapshots(path, 42, make_study(10, 1));
  const Bytes full = read_file_bytes(path);

  // First chunk header sits right after the 16-byte file header; its
  // var_offsets table (n + 1 u32s) starts 24 header + 32n column bytes in.
  const std::size_t chunk = 16;
  ASSERT_EQ(read_le32(full, chunk), 0x4b4e4843u);  // 'CHNK'
  const std::uint32_t n = read_le32(full, chunk + 8);
  ASSERT_EQ(n, 10u);
  const std::size_t offsets = chunk + 24 + 32ull * n;

  const auto expect_rejected = [&](const Bytes& mutated, const char* what) {
    write_file_bytes(bad_path, mutated);
    std::string error;
    EXPECT_FALSE(load_snapshots(bad_path, 42, &error).has_value()) << what;
    EXPECT_NE(error.find("var offsets"), std::string::npos) << what << ": " << error;
  };

  Bytes nonzero_first = full;
  write_le32(nonzero_first, offsets, 1);
  expect_rejected(nonzero_first, "offsets[0] != 0");

  Bytes non_monotone = full;
  ASSERT_GT(read_le32(full, offsets + 4), 0u);  // record 0 has var bytes
  write_le32(non_monotone, offsets + 8, 0);     // offsets[2] < offsets[1]
  expect_rejected(non_monotone, "non-monotone offsets");

  Bytes short_cover = full;
  write_le32(short_cover, offsets + 4ull * n, read_le32(full, offsets + 4ull * n) - 1);
  expect_rejected(short_cover, "offsets stop short of the var column");

  Bytes overflow = full;
  write_le32(overflow, offsets + 4ull * n, 0xffffffffu);
  expect_rejected(overflow, "offsets[n] = 0xffffffff");

  // Strided bit flips across the whole table: every one either still
  // loads (a slack byte is impossible here, but symmetry with the payload
  // fuzz) or throws SnapshotError — never UB.
  for (std::size_t bit = 0; bit < 4ull * (n + 1) * 8; bit += 7) {
    Bytes mutated = full;
    mutated[offsets + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    write_file_bytes(bad_path, mutated);
    const auto loaded = load_snapshots(bad_path, 42);
    if (loaded.has_value()) EXPECT_EQ(loaded->front().hosts.size(), 10u);
  }

  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(SnapshotV6, CertDictionaryCorruptionRejected) {
  const std::string path = "/tmp/opcua_test_v6_dict.bin";
  const std::string bad_path = "/tmp/opcua_test_v6_dict_bad.bin";
  save_snapshots(path, 42, make_study(10, 1));
  const Bytes full = read_file_bytes(path);
  const std::size_t dict = v6_dict_offset(full);
  ASSERT_EQ(read_le32(full, dict), 0x43494443u);  // 'CDIC'
  const std::uint32_t entries = read_le32(full, dict + 4);
  ASSERT_GT(entries, 0u);  // the cert fleet interned at least one DER

  const auto expect_rejected = [&](const Bytes& mutated, const char* what) {
    write_file_bytes(bad_path, mutated);
    std::string error;
    EXPECT_FALSE(load_snapshots(bad_path, 42, &error).has_value()) << what;
    EXPECT_NE(error.find("dictionary"), std::string::npos) << what << ": " << error;
  };

  Bytes bad_magic = full;
  bad_magic[dict] ^= 0xff;
  expect_rejected(bad_magic, "dictionary magic");

  Bytes bad_count = full;
  write_le32(bad_count, dict + 4, entries + 1);
  expect_rejected(bad_count, "entry count disagrees with footer");

  // Entry 0: u64 fingerprint, i32 DER length, DER bytes. Corrupting the
  // stored fingerprint or any DER byte must fail the open-time
  // recompute-and-compare.
  Bytes bad_fp = full;
  bad_fp[dict + 8] ^= 0x01;
  expect_rejected(bad_fp, "stored fingerprint");

  const std::uint32_t der_len = read_le32(full, dict + 16);
  ASSERT_GT(der_len, 8u);
  Bytes bad_der = full;
  bad_der[dict + 20 + der_len / 2] ^= 0x10;
  expect_rejected(bad_der, "DER content");

  Bytes bad_len = full;
  write_le32(bad_len, dict + 16, 0);
  expect_rejected(bad_len, "zero-length DER");

  // Strided flips across the whole dictionary region never crash.
  const std::size_t dict_end = static_cast<std::size_t>(read_le64(full, full.size() - 12));
  for (std::size_t at = dict; at < dict_end; at += 13) {
    Bytes mutated = full;
    mutated[at] ^= 0x40;
    write_file_bytes(bad_path, mutated);
    const auto loaded = load_snapshots(bad_path, 42);
    if (loaded.has_value()) EXPECT_EQ(loaded->front().hosts.size(), 10u);
  }

  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(SnapshotV6, EmptyAndRuntFilesNameTheirSize) {
  const std::string path = "/tmp/opcua_test_v6_runt.bin";
  write_file_bytes(path, Bytes{});
  std::string error;
  EXPECT_FALSE(load_snapshots(path, 42, &error).has_value());
  EXPECT_NE(error.find("empty (0 bytes)"), std::string::npos) << error;
  EXPECT_NE(error.find(path), std::string::npos) << error;

  write_file_bytes(path, Bytes{0x4f, 0x55, 0x41, 0x53, 0x06});  // 5 of 16 header bytes
  EXPECT_FALSE(load_snapshots(path, 42, &error).has_value());
  EXPECT_NE(error.find("5"), std::string::npos) << error;
  EXPECT_NE(error.find(path), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Analysis, MatchesAssessReferenceBitForBit) {
  const std::vector<ScanSnapshot> study = make_study(60);
  const StudyAnalysis analysis = analyze_snapshots(study, {});

  EXPECT_EQ(analysis.modes, assess_modes_policies(study.back()));
  EXPECT_EQ(analysis.certificates, assess_certificates(study.back()));
  EXPECT_EQ(analysis.reuse, assess_reuse(study.back()));
  EXPECT_EQ(analysis.auth, assess_auth(study.back()));
  EXPECT_EQ(analysis.access_rights, assess_access_rights(study.back()));
  EXPECT_EQ(analysis.deficits, assess_deficits(study.back()));
  EXPECT_EQ(analysis.longitudinal, assess_longitudinal(study));

  // The synthetic study is rich enough to exercise the interesting paths.
  EXPECT_GT(analysis.reuse.clusters_ge3, 0);
  EXPECT_GT(analysis.deficits.cert_reuse, 0);
  EXPECT_FALSE(analysis.longitudinal.renewals.empty());
  EXPECT_GT(analysis.longitudinal.weeks.back().reuse_devices, 0);
  EXPECT_FALSE(analysis.access_rights.read_fractions.empty());
}

TEST(Analysis, SharedPrimesMatchesReference) {
  const std::vector<ScanSnapshot> study = make_study(24, 1);
  AnalysisOptions options;
  options.shared_primes = true;
  options.shared_prime_threads = 1;
  const StudyAnalysis analysis = analyze_snapshots(study, options);
  EXPECT_EQ(analysis.shared_primes, assess_shared_primes(study.back()));
  EXPECT_GT(analysis.shared_primes.distinct_moduli, 0u);
}

TEST(Analysis, DeterministicAcrossThreadsAndChunking) {
  const std::string path = "/tmp/opcua_test_determinism.bin";
  const std::vector<ScanSnapshot> study = make_study(120);
  {
    // Small chunks -> many parallel work units with odd-sized tails.
    SnapshotWriter writer(path, 42, 17);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  AnalysisOptions serial;
  serial.threads = 1;
  AnalysisOptions parallel;
  parallel.threads = 8;
  const StudyAnalysis reference = analyze_snapshots(study, serial);
  const StudyAnalysis streamed1 = analyze_file(path, 42, serial);
  const StudyAnalysis streamed8 = analyze_file(path, 42, parallel);
  EXPECT_TRUE(streamed1.figures_equal(reference));
  EXPECT_TRUE(streamed8.figures_equal(reference));

  AnalysisOptions tiny_chunks;
  tiny_chunks.threads = 8;
  tiny_chunks.chunk_records = 7;
  EXPECT_TRUE(analyze_snapshots(study, tiny_chunks).figures_equal(reference));
  std::remove(path.c_str());
}

TEST(Analysis, EmptyAndSingleWeekStudies) {
  const std::string path = "/tmp/opcua_test_empty.bin";
  {
    SnapshotWriter writer(path, 42);
    writer.finish();
  }
  const SnapshotReader reader(path, 42);
  EXPECT_EQ(reader.snapshots().size(), 0u);
  EXPECT_EQ(reader.total_records(), 0u);
  const StudyAnalysis empty = analyze_reader(reader, {});
  EXPECT_TRUE(empty.weeks.empty());
  EXPECT_EQ(empty.modes.servers, 0);

  const std::vector<ScanSnapshot> one_week = make_study(8, 1);
  const StudyAnalysis analysis = analyze_snapshots(one_week, {});
  EXPECT_EQ(analysis.modes, assess_modes_policies(one_week.back()));
  EXPECT_EQ(analysis.longitudinal, assess_longitudinal(one_week));
  std::remove(path.c_str());
}

TEST(StreamedStudyWriter, MatchesBatchSave) {
  // The streamed writer (one measurement at a time) and save_snapshots
  // (whole vector) must produce files with identical logical content.
  const std::string batch_path = "/tmp/opcua_test_batch.bin";
  const std::string stream_path = "/tmp/opcua_test_stream.bin";
  const std::vector<ScanSnapshot> study = make_study(20, 3);
  save_snapshots(batch_path, 42, study);
  {
    SnapshotWriter writer(stream_path, 42);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  EXPECT_EQ(read_file_bytes(batch_path), read_file_bytes(stream_path));
  std::remove(batch_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(SnapshotV6, V5WriterStillSupported) {
  const std::string path = "/tmp/opcua_test_v5_writer.bin";
  const std::vector<ScanSnapshot> study = make_study(10);
  SnapshotWriter writer(path, 42, 3, /*format_version=*/5);
  for (const auto& snapshot : study) writer.add_snapshot(snapshot);
  writer.finish();

  const SnapshotReader reader(path, 42);
  EXPECT_EQ(reader.version(), 5u);
  EXPECT_FALSE(reader.columnar());
  EXPECT_EQ(reader.cert_count(), 0u);
  EXPECT_EQ(reader.load_all(), study);
  EXPECT_THROW(reader.column_view(0), SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotV6, RewriteFromV4AndV5IsEquivalentAndDeterministic) {
  const std::string v4_path = "/tmp/opcua_test_rw_v4.bin";
  const std::string v5_path = "/tmp/opcua_test_rw_v5.bin";
  const std::string out_a = "/tmp/opcua_test_rw_a.bin";
  const std::string out_b = "/tmp/opcua_test_rw_b.bin";
  const std::vector<ScanSnapshot> study = make_study(14);

  save_snapshots_v4(v4_path, 42, study);
  {
    SnapshotWriter writer(v5_path, 42, SnapshotWriter::kDefaultChunkRecords, 5);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }

  // v4 -> v6 and v5 -> v6 rewrites preserve every record and, fed the
  // same records and seed, produce byte-identical v6 files.
  const SnapshotReader v4_reader(v4_path, 42);
  const SnapshotReader v5_reader(v5_path, 42);
  save_snapshots(out_a, 42, v4_reader.load_all());
  save_snapshots(out_b, 42, v5_reader.load_all());
  EXPECT_EQ(read_file_bytes(out_a), read_file_bytes(out_b));

  const SnapshotReader v6_reader(out_a, 42);
  EXPECT_EQ(v6_reader.version(), 6u);
  EXPECT_EQ(v6_reader.load_all(), study);

  // Rewriting the same records again is byte-stable.
  save_snapshots(out_b, 42, v6_reader.load_all());
  EXPECT_EQ(read_file_bytes(out_a), read_file_bytes(out_b));

  std::remove(v4_path.c_str());
  std::remove(v5_path.c_str());
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
}

TEST(SnapshotV6, FiguresIdenticalAcrossFormatsAndThreads) {
  const std::string v4_path = "/tmp/opcua_test_fig_v4.bin";
  const std::string v5_path = "/tmp/opcua_test_fig_v5.bin";
  const std::string v6_path = "/tmp/opcua_test_fig_v6.bin";
  const std::vector<ScanSnapshot> study = make_study(48);
  save_snapshots_v4(v4_path, 42, study);
  {
    SnapshotWriter writer(v5_path, 42, 11, 5);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  {
    SnapshotWriter writer(v6_path, 42, 11, 6);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }

  // The v6 columnar fast path, the v4/v5 record decode paths, and the
  // in-memory reference must agree figure for figure at any thread count.
  AnalysisOptions serial;
  serial.threads = 1;
  serial.shared_primes = true;
  serial.shared_prime_threads = 1;
  AnalysisOptions parallel = serial;
  parallel.threads = 8;
  const StudyAnalysis reference = analyze_snapshots(study, serial);
  EXPECT_TRUE(analyze_file(v4_path, 42, serial).figures_equal(reference));
  EXPECT_TRUE(analyze_file(v5_path, 42, serial).figures_equal(reference));
  EXPECT_TRUE(analyze_file(v6_path, 42, serial).figures_equal(reference));
  EXPECT_TRUE(analyze_file(v6_path, 42, parallel).figures_equal(reference));
  std::remove(v4_path.c_str());
  std::remove(v5_path.c_str());
  std::remove(v6_path.c_str());
}

TEST(SnapshotV6, DictionaryIdOutOfRangeRejected) {
  const std::string path = "/tmp/opcua_test_dict_range.bin";
  const std::vector<ScanSnapshot> study = make_study(10, 1);
  {
    SnapshotWriter writer(path, 42, 3);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  Bytes bytes = read_file_bytes(path);
  std::uint64_t chunk1_offset = 0;
  {
    const SnapshotReader reader(path, 42);
    ASSERT_GE(reader.chunks().size(), 2u);
    ASSERT_EQ(reader.chunks()[1].record_count, 3u);
    chunk1_offset = reader.chunks()[1].file_offset;
  }
  // Chunk 1's first record is host 3, which carries a certificate: its var
  // record starts with u16 head count, then the u32 dictionary ids. Patch
  // the first id to a value far past the dictionary.
  const std::size_t id_offset = chunk1_offset + 24 + (47 * 3 + 4) + 2;
  bytes[id_offset + 0] = 0xfe;
  bytes[id_offset + 1] = 0xff;
  bytes[id_offset + 2] = 0xff;
  bytes[id_offset + 3] = 0xff;
  write_file_bytes(path, bytes);

  std::string error;
  EXPECT_FALSE(load_snapshots(path, 42, &error).has_value());
  EXPECT_NE(error.find("certificate id"), std::string::npos) << error;
  EXPECT_NE(error.find("dictionary range"), std::string::npos) << error;
  // The columnar figure pass must reject it too, not index out of bounds.
  EXPECT_THROW(analyze_file(path, 42, {}), SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotV6, SeedMismatchNamesFormatVersion) {
  const std::string v4_path = "/tmp/opcua_test_seed_v4.bin";
  const std::string v5_path = "/tmp/opcua_test_seed_v5.bin";
  const std::string v6_path = "/tmp/opcua_test_seed_v6.bin";
  const std::vector<ScanSnapshot> study = make_study(3, 1);
  save_snapshots_v4(v4_path, 42, study);
  {
    SnapshotWriter writer(v5_path, 42, SnapshotWriter::kDefaultChunkRecords, 5);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  save_snapshots(v6_path, 42, study);

  // The mis-seed diagnostic names the detected format version and the
  // offset of the seed field, so operators can see *what* they opened.
  const auto expect_mis_seed = [](const std::string& path, const char* version_tag) {
    std::string error;
    EXPECT_FALSE(load_snapshots(path, 43, &error).has_value());
    EXPECT_NE(error.find("seed mismatch"), std::string::npos) << error;
    EXPECT_NE(error.find("byte offset 8"), std::string::npos) << error;
    EXPECT_NE(error.find(version_tag), std::string::npos) << error;
  };
  expect_mis_seed(v4_path, "v4");
  expect_mis_seed(v5_path, "v5");
  expect_mis_seed(v6_path, "v6");
  std::remove(v4_path.c_str());
  std::remove(v5_path.c_str());
  std::remove(v6_path.c_str());
}

TEST(SnapshotV6, ReadChunkBufferOverloadMatches) {
  const std::string path = "/tmp/opcua_test_buffer.bin";
  const std::vector<ScanSnapshot> study = make_study(10);
  {
    SnapshotWriter writer(path, 42, 4);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  const SnapshotReader reader(path, 42);
  std::vector<HostScanRecord> buffer;  // reused across every chunk
  for (std::size_t c = 0; c < reader.chunks().size(); ++c) {
    reader.read_chunk(c, buffer);
    EXPECT_EQ(buffer, reader.read_chunk(c)) << "chunk " << c;
  }
  std::remove(path.c_str());
}

TEST(SnapshotV6, DistinctCertFingerprintsMatchDistinctCertificates) {
  for (std::size_t i = 0; i < 12; ++i) {
    HostScanRecord host = make_host(i, 0);
    // Duplicate an endpoint so the distinct filter has work to do.
    if (!host.endpoints.empty()) host.endpoints.push_back(host.endpoints.front());
    const std::vector<Bytes> ders = host.distinct_certificates();
    const std::vector<std::uint64_t> fps = host.distinct_cert_fingerprints();
    ASSERT_EQ(fps.size(), ders.size());
    for (std::size_t k = 0; k < ders.size(); ++k) {
      EXPECT_EQ(fps[k], certificate_fingerprint64(ders[k]));
    }
  }
}

TEST(SnapshotV6, DictionaryCompressionShrinksFile) {
  const std::string v5_path = "/tmp/opcua_test_size_v5.bin";
  const std::string v6_path = "/tmp/opcua_test_size_v6.bin";
  const std::vector<ScanSnapshot> study = make_study(200);
  {
    SnapshotWriter writer(v5_path, 42, SnapshotWriter::kDefaultChunkRecords, 5);
    for (const auto& snapshot : study) writer.add_snapshot(snapshot);
    writer.finish();
  }
  save_snapshots(v6_path, 42, study);
  // The fleet shares 6 certificates across 400 host records: the v6
  // dictionary stores each DER once, so the file must shrink well below
  // the v5 row format's inline-DER size.
  const std::size_t v5_size = read_file_bytes(v5_path).size();
  const std::size_t v6_size = read_file_bytes(v6_path).size();
  EXPECT_LT(v6_size * 2, v5_size) << "v5=" << v5_size << " v6=" << v6_size;
  std::remove(v5_path.c_str());
  std::remove(v6_path.c_str());
}

}  // namespace
}  // namespace opcua_study
