// AddressSpace unit tests: ns0 skeleton, access-level semantics, attribute
// dispatch.
#include <gtest/gtest.h>

#include "opcua/addressspace.hpp"

namespace opcua_study {
namespace {

TEST(AddressSpace, Ns0SkeletonExists) {
  AddressSpace space;
  EXPECT_NE(space.find(node_ids::kRootFolder), nullptr);
  EXPECT_NE(space.find(node_ids::kObjectsFolder), nullptr);
  EXPECT_NE(space.find(node_ids::kServer), nullptr);
  EXPECT_NE(space.find(node_ids::kNamespaceArray), nullptr);
  EXPECT_NE(space.find(node_ids::kServerStatus), nullptr);
  EXPECT_NE(space.find(node_ids::kSoftwareVersion), nullptr);
  EXPECT_EQ(space.find(NodeId(0, 424242)), nullptr);
  // Root organizes Objects; Objects organizes Server.
  bool found = false;
  for (const auto& ref : space.references_of(node_ids::kObjectsFolder)) {
    found |= ref.target == node_ids::kServer;
  }
  EXPECT_TRUE(found);
}

TEST(AddressSpace, NamespaceRegistrationIsIdempotent) {
  AddressSpace space;
  EXPECT_EQ(space.namespaces().size(), 1u);
  const std::uint16_t a = space.add_namespace("urn:x");
  const std::uint16_t b = space.add_namespace("urn:y");
  const std::uint16_t a_again = space.add_namespace("urn:x");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(a_again, a);
  EXPECT_EQ(space.namespaces().size(), 3u);
}

TEST(AddressSpace, NamespaceArrayValueTracksRegistrations) {
  AddressSpace space;
  space.add_namespace("urn:vendor");
  const DataValue dv = space.read_attribute(node_ids::kNamespaceArray, AttributeId::Value);
  ASSERT_TRUE(dv.value.is<std::vector<std::string>>());
  const auto& arr = dv.value.as<std::vector<std::string>>();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[1], "urn:vendor");
}

TEST(AddressSpace, SoftwareVersionReadable) {
  AddressSpace space;
  space.set_software_version("9.9.9");
  const DataValue dv = space.read_attribute(node_ids::kSoftwareVersion, AttributeId::Value);
  EXPECT_EQ(dv.value, Variant{"9.9.9"});
}

TEST(AddressSpace, UnreadableValueReturnsBadNotReadable) {
  AddressSpace space;
  const std::uint16_t ns = space.add_namespace("urn:t");
  space.add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Obj");
  space.add_variable(NodeId(ns, 2), NodeId(ns, 1), "hidden", Variant{1.0}, 0);
  EXPECT_EQ(space.read_attribute(NodeId(ns, 2), AttributeId::Value).status,
            StatusCode::BadNotReadable);
  // But UserAccessLevel itself is always readable (the scanner depends on it).
  const DataValue level = space.read_attribute(NodeId(ns, 2), AttributeId::UserAccessLevel);
  EXPECT_EQ(level.status, StatusCode::Good);
  EXPECT_EQ(level.value, Variant{std::uint32_t{0}});
}

TEST(AddressSpace, AttributeTypeMismatches) {
  AddressSpace space;
  const std::uint16_t ns = space.add_namespace("urn:t");
  space.add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Obj");
  space.add_method(NodeId(ns, 3), NodeId(ns, 1), "Go", true);
  // Executable on a non-method / Value on an object / unknown attribute.
  EXPECT_EQ(space.read_attribute(NodeId(ns, 1), AttributeId::Executable).status,
            StatusCode::BadAttributeIdInvalid);
  EXPECT_EQ(space.read_attribute(NodeId(ns, 1), AttributeId::Value).status,
            StatusCode::BadAttributeIdInvalid);
  EXPECT_EQ(space.read_attribute(NodeId(ns, 3), AttributeId::UserAccessLevel).status,
            StatusCode::BadAttributeIdInvalid);
  EXPECT_EQ(space.read_attribute(NodeId(ns, 3), AttributeId::UserExecutable).status,
            StatusCode::Good);
  EXPECT_EQ(space.read_attribute(NodeId(0, 999999), AttributeId::Value).status,
            StatusCode::BadNodeIdUnknown);
}

TEST(AddressSpace, BrowseNameAndDisplayName) {
  AddressSpace space;
  const std::uint16_t ns = space.add_namespace("urn:t");
  space.add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Obj");
  space.add_variable(NodeId(ns, 2), NodeId(ns, 1), "m3InflowPerHour", Variant{3.0},
                     access_level::kCurrentRead);
  EXPECT_EQ(space.read_attribute(NodeId(ns, 2), AttributeId::BrowseName).value,
            Variant{"m3InflowPerHour"});
  EXPECT_EQ(space.read_attribute(NodeId(ns, 2), AttributeId::DisplayName).value,
            Variant{"m3InflowPerHour"});
  EXPECT_EQ(space.read_attribute(NodeId(ns, 2), AttributeId::NodeClass).value,
            Variant{static_cast<std::uint32_t>(NodeClass::Variable)});
}

TEST(AddressSpace, CountsByClass) {
  AddressSpace space;
  const std::uint16_t ns = space.add_namespace("urn:t");
  space.add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Obj");
  for (std::uint32_t i = 0; i < 5; ++i) {
    space.add_variable(NodeId(ns, 10 + i), NodeId(ns, 1), "v", Variant{1.0},
                       access_level::kCurrentRead);
  }
  space.add_method(NodeId(ns, 100), NodeId(ns, 1), "m", false);
  // 4 ns0 variables + 5 added.
  EXPECT_EQ(space.count_of_class(NodeClass::Variable), 9u);
  EXPECT_EQ(space.count_of_class(NodeClass::Method), 1u);
}

}  // namespace
}  // namespace opcua_study
