// DER encoding and the X.509 subset: build → parse → verify round trips.
#include <gtest/gtest.h>

#include "crypto/batch_gcd.hpp"
#include "crypto/x509.hpp"
#include "util/date.hpp"
#include "util/rng.hpp"

namespace opcua_study {
namespace {

const RsaKeyPair& cert_key() {
  static const RsaKeyPair kp = [] {
    Rng rng(2001);
    return rsa_generate(rng, 768, 8);
  }();
  return kp;
}

TEST(Der, OidRoundTrip) {
  const Oid o{{1, 2, 840, 113549, 1, 1, 11}};
  EXPECT_EQ(o.to_string(), "1.2.840.113549.1.1.11");
  EXPECT_EQ(Oid::decode_body(o.encode_body()), o);
  const Oid san{{2, 5, 29, 17}};
  EXPECT_EQ(Oid::decode_body(san.encode_body()), san);
}

TEST(Der, IntegerEncoding) {
  DerWriter w;
  w.integer(Bignum{127});
  w.integer(Bignum{128});  // needs a leading zero byte
  w.integer(Bignum{0});
  DerParser p(w.bytes());
  EXPECT_EQ(p.read_integer().low_u64(), 127u);
  EXPECT_EQ(p.read_integer().low_u64(), 128u);
  EXPECT_TRUE(p.read_integer().is_zero());
  EXPECT_TRUE(p.done());
}

TEST(Der, LongFormLength) {
  DerWriter w;
  const Bytes big(300, 0xab);
  w.octet_string(big);
  DerParser p(w.bytes());
  EXPECT_EQ(p.read_octet_string(), big);
}

TEST(Der, TimeEncodingBothForms) {
  DerWriter w;
  w.time(days_from_civil({2020, 8, 30}));
  w.time(days_from_civil({2055, 1, 2}));  // GeneralizedTime territory
  DerParser p(w.bytes());
  EXPECT_EQ(p.read_time_days(), days_from_civil({2020, 8, 30}));
  EXPECT_EQ(p.read_time_days(), days_from_civil({2055, 1, 2}));
}

TEST(Der, ParserRejectsTruncation) {
  DerWriter w;
  w.octet_string(Bytes(10, 1));
  Bytes der = w.take();
  der.pop_back();
  DerParser p(der);
  EXPECT_THROW(p.read_octet_string(), DecodeError);
}

CertificateSpec base_spec() {
  CertificateSpec spec;
  spec.subject = {"device-7", "Bachmann electronic", "AT"};
  spec.signature_hash = HashAlgorithm::sha256;
  spec.serial = Bignum{123456789};
  spec.not_before_days = days_from_civil({2019, 5, 1});
  spec.not_after_days = days_from_civil({2039, 5, 1});
  spec.application_uri = "urn:device-7:bachmann:opcua";
  return spec;
}

TEST(X509, SelfSignedRoundTrip) {
  const auto& kp = cert_key();
  const Bytes der = x509_create(base_spec(), kp.pub, kp.priv);
  const Certificate cert = x509_parse(der);
  EXPECT_EQ(cert.subject.common_name, "device-7");
  EXPECT_EQ(cert.subject.organization, "Bachmann electronic");
  EXPECT_EQ(cert.subject.country, "AT");
  EXPECT_TRUE(cert.self_signed());
  EXPECT_EQ(cert.signature_hash, HashAlgorithm::sha256);
  EXPECT_EQ(cert.serial.low_u64(), 123456789u);
  EXPECT_EQ(cert.not_before_days, days_from_civil({2019, 5, 1}));
  EXPECT_EQ(cert.not_after_days, days_from_civil({2039, 5, 1}));
  EXPECT_EQ(cert.application_uri, "urn:device-7:bachmann:opcua");
  EXPECT_EQ(cert.public_key, kp.pub);
  EXPECT_EQ(cert.key_bits(), 768u);
  EXPECT_TRUE(x509_verify(cert, kp.pub));
}

class X509SignatureHashes : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(X509SignatureHashes, AllStudyHashesSupported) {
  const auto& kp = cert_key();
  CertificateSpec spec = base_spec();
  spec.signature_hash = GetParam();
  const Bytes der = x509_create(spec, kp.pub, kp.priv);
  const Certificate cert = x509_parse(der);
  EXPECT_EQ(cert.signature_hash, GetParam());
  EXPECT_TRUE(x509_verify(cert, kp.pub));
}

INSTANTIATE_TEST_SUITE_P(Md5Sha1Sha256, X509SignatureHashes,
                         ::testing::Values(HashAlgorithm::md5, HashAlgorithm::sha1,
                                           HashAlgorithm::sha256));

TEST(X509, CaSignedCertificateIsNotSelfSigned) {
  Rng rng(2002);
  const RsaKeyPair ca = rsa_generate(rng, 768, 8);
  CertificateSpec spec = base_spec();
  spec.issuer = X509Name{"Study CA", "CA Org", "DE"};
  const Bytes der = x509_create(spec, cert_key().pub, ca.priv);
  const Certificate cert = x509_parse(der);
  EXPECT_FALSE(cert.self_signed());
  EXPECT_EQ(cert.issuer.common_name, "Study CA");
  EXPECT_TRUE(x509_verify(cert, ca.pub));
  EXPECT_FALSE(x509_verify(cert, cert_key().pub));
}

TEST(X509, TamperedCertificateFailsVerification) {
  const auto& kp = cert_key();
  Bytes der = x509_create(base_spec(), kp.pub, kp.priv);
  Certificate cert = x509_parse(der);
  cert.tbs_der[40] ^= 1;
  EXPECT_FALSE(x509_verify(cert, kp.pub));
}

TEST(X509, ThumbprintIsSha1OfDer) {
  const auto& kp = cert_key();
  const Bytes der = x509_create(base_spec(), kp.pub, kp.priv);
  EXPECT_EQ(x509_thumbprint(der), hash(HashAlgorithm::sha1, der));
  EXPECT_EQ(x509_thumbprint(der).size(), 20u);
}

TEST(X509, ParseRejectsGarbage) {
  EXPECT_THROW(x509_parse(Bytes{}), DecodeError);
  EXPECT_THROW(x509_parse(Bytes(50, 0xff)), DecodeError);
  const auto& kp = cert_key();
  Bytes der = x509_create(base_spec(), kp.pub, kp.priv);
  der.resize(der.size() / 2);
  EXPECT_THROW(x509_parse(der), DecodeError);
}

TEST(X509, EmptySanOmitted) {
  const auto& kp = cert_key();
  CertificateSpec spec = base_spec();
  spec.application_uri.clear();
  const Certificate cert = x509_parse(x509_create(spec, kp.pub, kp.priv));
  EXPECT_TRUE(cert.application_uri.empty());
}

// --------------------------------------------------------- batch GCD ----

std::vector<Bignum> make_moduli(int count, std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bignum> out;
  std::vector<Bignum> primes;
  for (int i = 0; i < count + 1; ++i) primes.push_back(Bignum::generate_prime(rng, bits, 6));
  for (int i = 0; i < count; ++i) out.push_back(primes[static_cast<std::size_t>(i)] *
                                                primes[static_cast<std::size_t>(i) + 1]);
  return out;  // chain: consecutive moduli share a prime
}

TEST(BatchGcd, DetectsInjectedSharedPrimes) {
  const auto moduli = make_moduli(8, 96, 3001);
  const auto result = batch_gcd(moduli);
  EXPECT_EQ(result.affected(), 8u);  // every modulus shares with a neighbour
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    ASSERT_FALSE(result.shared_factor[i].is_zero());
    EXPECT_TRUE((moduli[i] % result.shared_factor[i]).is_zero());
  }
}

TEST(BatchGcd, CleanCorpusHasNoFindings) {
  Rng rng(3002);
  std::vector<Bignum> moduli;
  for (int i = 0; i < 12; ++i) {
    const Bignum p = Bignum::generate_prime(rng, 96, 6);
    const Bignum q = Bignum::generate_prime(rng, 96, 6);
    moduli.push_back(p * q);
  }
  EXPECT_EQ(batch_gcd(moduli).affected(), 0u);
}

TEST(BatchGcd, MatchesPairwiseReference) {
  Rng rng(3003);
  std::vector<Bignum> moduli;
  const Bignum shared = Bignum::generate_prime(rng, 80, 6);
  for (int i = 0; i < 9; ++i) {
    const Bignum q = Bignum::generate_prime(rng, 80, 6);
    if (i % 3 == 0) {
      moduli.push_back(shared * q);
    } else {
      moduli.push_back(Bignum::generate_prime(rng, 80, 6) * q);
    }
  }
  const auto fast = batch_gcd(moduli);
  const auto ref = pairwise_gcd(moduli);
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    EXPECT_EQ(fast.shared_factor[i].is_zero(), ref.shared_factor[i].is_zero()) << i;
  }
  EXPECT_EQ(fast.affected(), 3u);
}

TEST(BatchGcd, DuplicateModuliAreFlagged) {
  Rng rng(3004);
  const Bignum p = Bignum::generate_prime(rng, 80, 6);
  const Bignum q = Bignum::generate_prime(rng, 80, 6);
  const Bignum r = Bignum::generate_prime(rng, 80, 6);
  const Bignum s = Bignum::generate_prime(rng, 80, 6);
  const std::vector<Bignum> moduli = {p * q, p * q, r * s};
  const auto result = batch_gcd(moduli);
  EXPECT_FALSE(result.shared_factor[0].is_zero());
  EXPECT_FALSE(result.shared_factor[1].is_zero());
  EXPECT_TRUE(result.shared_factor[2].is_zero());
}

TEST(BatchGcd, TrivialSizes) {
  EXPECT_EQ(batch_gcd({}).affected(), 0u);
  EXPECT_EQ(batch_gcd({Bignum{15}}).affected(), 0u);
}

TEST(BatchGcd, MatchesPairwiseOnLargerRandomizedCorpus) {
  // A randomized ~90-modulus corpus drawn from a small prime pool, so
  // sharing patterns are arbitrary (chains, stars, duplicates, isolated
  // moduli) rather than hand-planted. The squares-tree batch sweep must
  // agree with the O(n²) pairwise reference factor class by factor class,
  // and it must be invariant under the worker-thread count.
  Rng rng(3005);
  std::vector<Bignum> pool;
  for (int i = 0; i < 24; ++i) pool.push_back(Bignum::generate_prime(rng, 72, 6));
  std::vector<Bignum> moduli;
  for (int i = 0; i < 90; ++i) {
    if (i % 11 == 0 && i > 0) {
      moduli.push_back(moduli[rng.below(moduli.size())]);  // exact duplicate
      continue;
    }
    const Bignum& p = pool[rng.below(pool.size())];
    const Bignum& q = pool[rng.below(pool.size())];
    moduli.push_back(p * q);
  }
  const auto fast = batch_gcd(moduli);
  const auto parallel = batch_gcd(moduli, 3);
  const auto ref = pairwise_gcd(moduli);
  ASSERT_EQ(fast.shared_factor.size(), moduli.size());
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    EXPECT_EQ(fast.shared_factor[i].is_zero(), ref.shared_factor[i].is_zero()) << i;
    if (!fast.shared_factor[i].is_zero()) {
      // The batch factor must be a non-trivial divisor of its modulus
      // (equal to it for exact duplicates).
      EXPECT_TRUE((moduli[i] % fast.shared_factor[i]).is_zero()) << i;
      EXPECT_GT(fast.shared_factor[i], Bignum{1});
      EXPECT_LE(fast.shared_factor[i], moduli[i]);
    }
    EXPECT_EQ(fast.shared_factor[i], parallel.shared_factor[i]) << i;
  }
  EXPECT_EQ(fast.affected(), ref.affected());
  EXPECT_GT(fast.affected(), 0u);
}

}  // namespace
}  // namespace opcua_study
