// Bignum arithmetic: known answers, algebraic properties, division oracle.
#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace opcua_study {
namespace {

TEST(Bignum, BasicConstructionAndFormat) {
  EXPECT_TRUE(Bignum{}.is_zero());
  EXPECT_EQ(Bignum{0x1234}.to_hex(), "1234");
  EXPECT_EQ(Bignum{0xdeadbeefcafeULL}.to_hex(), "deadbeefcafe");
  EXPECT_EQ(Bignum::from_hex("deadbeefcafe").low_u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(Bignum::from_hex("0").to_hex(), "0");
}

TEST(Bignum, ByteRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Bignum v = Bignum::random_bits(rng, 1 + static_cast<std::size_t>(rng.below(300)));
    const Bytes be = v.to_bytes_be();
    EXPECT_EQ(Bignum::from_bytes_be(be), v);
    const Bytes padded = v.to_bytes_be(64);
    EXPECT_EQ(padded.size(), std::max<std::size_t>(64, be.size()));
    EXPECT_EQ(Bignum::from_bytes_be(padded), v);
  }
}

TEST(Bignum, AddSubProperties) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Bignum a = Bignum::random_bits(rng, 200);
    const Bignum b = Bignum::random_bits(rng, 150);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) - a, b);
  }
  EXPECT_THROW(Bignum{1} - Bignum{2}, std::domain_error);
}

TEST(Bignum, MulKnownAnswersAndProperties) {
  EXPECT_EQ((Bignum::from_hex("ffffffff") * Bignum::from_hex("ffffffff")).to_hex(),
            "fffffffe00000001");
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = Bignum::random_bits(rng, 300);
    const Bignum b = Bignum::random_bits(rng, 200);
    const Bignum c = Bignum::random_bits(rng, 100);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
  EXPECT_TRUE((Bignum{0} * Bignum::from_hex("abcdef")).is_zero());
}

TEST(Bignum, Shifts) {
  const Bignum v = Bignum::from_hex("123456789abcdef0");
  EXPECT_EQ((v << 4).to_hex(), "123456789abcdef00");
  EXPECT_EQ((v >> 4).to_hex(), "123456789abcdef");
  EXPECT_EQ((v << 37 >> 37), v);
  EXPECT_TRUE((v >> 200).is_zero());
  Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    const Bignum a = Bignum::random_bits(rng, 128);
    const std::size_t s = rng.below(100);
    EXPECT_EQ((a << s) >> s, a);
  }
}

TEST(Bignum, ShiftAndTrimOnLimbBoundaries) {
  // Shifts by exact limb multiples and limb-multiple±1 must round-trip,
  // and values whose top limbs become zero must trim back to canonical
  // form (equal limb counts) or comparisons silently break.
  Rng rng(41);
  for (const std::size_t bits : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 191u, 320u}) {
    const Bignum a = Bignum::random_bits(rng, bits) + Bignum{1};
    for (const std::size_t s : {63u, 64u, 65u, 128u, 256u}) {
      EXPECT_EQ((a << s) >> s, a) << "bits=" << bits << " shift=" << s;
    }
  }
  // 2^64 and 2^128: single set bit exactly on a limb boundary.
  Bignum p64;
  p64.set_bit(64);
  EXPECT_EQ(p64.to_hex(), "10000000000000000");
  EXPECT_EQ(p64.bit_length(), 65u);
  EXPECT_EQ((p64 >> 64).low_u64(), 1u);
  EXPECT_TRUE((p64 >> 65).is_zero());
  EXPECT_EQ(p64 - Bignum{1}, Bignum::from_hex("ffffffffffffffff"));
  // Subtraction that clears the top limb must compare equal to the small
  // representation (trim correctness).
  Bignum top = Bignum::from_hex("10000000000000000000000000000000f");
  Bignum small = top - (Bignum{1} << 128);
  EXPECT_EQ(small, Bignum{0xf});
  EXPECT_EQ(small.limbs().size(), 1u);
  // Shifting everything out yields canonical zero.
  EXPECT_TRUE((Bignum::from_hex("ffffffffffffffffffffffffffffffff") >> 128).is_zero());
}

TEST(Bignum, KaratsubaMatchesSchoolbookAcrossThreshold) {
  // Force products through both kernels around the crossover — operand
  // sizes straddling the threshold, unbalanced shapes, and the sum-limbs
  // carry case — and require bit-identical results.
  const std::size_t saved = Bignum::karatsuba_threshold();
  Rng rng(42);
  for (const std::size_t a_limbs : {3u, 4u, 5u, 8u, 9u, 16u, 33u, 64u}) {
    for (const std::size_t b_limbs : {1u, 3u, 4u, 7u, 16u, 31u, 64u, 130u}) {
      Bignum a = Bignum::random_bits(rng, a_limbs * 64);
      Bignum b = Bignum::random_bits(rng, b_limbs * 64);
      a.set_bit(a_limbs * 64 - 1);  // full length, worst-case carries
      b.set_bit(b_limbs * 64 - 1);
      Bignum::set_karatsuba_threshold(4);  // smallest legal: deep recursion
      const Bignum karatsuba = a * b;
      const Bignum karatsuba_sqr = a.sqr();
      Bignum::set_karatsuba_threshold(1u << 20);  // schoolbook only
      EXPECT_EQ(karatsuba, a * b) << a_limbs << "x" << b_limbs;
      EXPECT_EQ(karatsuba_sqr, a * a) << a_limbs;
    }
  }
  Bignum::set_karatsuba_threshold(saved);
}

TEST(Bignum, SquaringMatchesMultiplication) {
  Rng rng(43);
  for (int i = 0; i < 60; ++i) {
    const Bignum a = Bignum::random_bits(rng, 1 + rng.below(4096));
    EXPECT_EQ(a.sqr(), a * a);
  }
  EXPECT_TRUE(Bignum{}.sqr().is_zero());
  EXPECT_EQ(Bignum{1}.sqr(), Bignum{1});
  // All-ones operands maximize the doubling-pass carries.
  const Bignum ones = Bignum::from_hex(std::string(96, 'f'));
  EXPECT_EQ(ones.sqr(), ones * ones);
}

TEST(Bignum, DivModKnownAnswers) {
  auto [q, r] = Bignum::from_hex("deadbeefcafebabe").divmod(Bignum::from_hex("12345"));
  EXPECT_EQ(q * Bignum::from_hex("12345") + r, Bignum::from_hex("deadbeefcafebabe"));
  EXPECT_LT(r, Bignum::from_hex("12345"));
  EXPECT_EQ((Bignum{100} / Bignum{7}).low_u64(), 14u);
  EXPECT_EQ((Bignum{100} % Bignum{7}).low_u64(), 2u);
  EXPECT_THROW(Bignum{1}.divmod(Bignum{}), std::domain_error);
}

// Knuth-D fast division must agree with the binary reference on random
// operand shapes, including the add-back-triggering corner cases.
class BignumDivision : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BignumDivision, MatchesBinaryReference) {
  const auto [a_bits, b_bits] = GetParam();
  Rng rng(hash64("div") ^ (a_bits * 131 + b_bits));
  for (int i = 0; i < 25; ++i) {
    const Bignum a = Bignum::random_bits(rng, a_bits);
    Bignum b = Bignum::random_bits(rng, b_bits);
    if (b.is_zero()) b = Bignum{1};
    const auto fast = a.divmod(b);
    const auto ref = a.divmod_binary(b);
    EXPECT_EQ(fast.quotient, ref.quotient);
    EXPECT_EQ(fast.remainder, ref.remainder);
    EXPECT_EQ(fast.quotient * b + fast.remainder, a);
    EXPECT_LT(fast.remainder, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperandShapes, BignumDivision,
    ::testing::Values(std::make_tuple(64, 32), std::make_tuple(64, 64), std::make_tuple(128, 64),
                      std::make_tuple(256, 33), std::make_tuple(512, 256),
                      std::make_tuple(1024, 512), std::make_tuple(2048, 1024),
                      std::make_tuple(333, 65), std::make_tuple(96, 96)));

// Above ~32 divisor limbs divmod() switches to Burnikel-Ziegler recursion;
// cross-check it against the Knuth-D base case on shapes that exercise the
// padded/odd-limb top-level, the blockwise loop, and the saturated-
// quotient branch of the 3h/2h step.
TEST(Bignum, BurnikelZieglerMatchesKnuth) {
  Rng rng(44);
  for (const auto& [a_bits, b_bits] :
       std::vector<std::pair<std::size_t, std::size_t>>{{8192, 4096},
                                                        {16384, 2112},
                                                        {12800, 6400},
                                                        {9000, 4321},
                                                        {5000, 4999},
                                                        {20000, 2500}}) {
    for (int i = 0; i < 3; ++i) {
      Bignum a = Bignum::random_bits(rng, a_bits);
      Bignum b = Bignum::random_bits(rng, b_bits);
      b.set_bit(b_bits - 1);
      const auto fast = a.divmod(b);
      const auto ref = a.divmod_knuth(b);
      EXPECT_EQ(fast.quotient, ref.quotient) << a_bits << "/" << b_bits;
      EXPECT_EQ(fast.remainder, ref.remainder) << a_bits << "/" << b_bits;
      EXPECT_EQ(fast.quotient * b + fast.remainder, a);
      EXPECT_LT(fast.remainder, b);
    }
  }
  // Dividend with long all-ones runs pushes the saturated-quotient branch.
  Bignum a = Bignum::from_hex(std::string(1600, 'f'));
  Bignum b = (Bignum{1} << 3200) - Bignum{1};
  const auto fast = a.divmod(b);
  EXPECT_EQ(fast.quotient, a.divmod_knuth(b).quotient);
  EXPECT_EQ(fast.quotient * b + fast.remainder, a);
}

TEST(Bignum, DivisionAddBackStress) {
  // Operands with long runs of 0xff limbs push qhat estimation to its edge.
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Bignum a = Bignum::random_bits(rng, 160);
    Bignum b = Bignum::random_bits(rng, 96);
    // Force many high bits.
    for (std::size_t bit = 96; bit < 160; ++bit) a.set_bit(bit);
    for (std::size_t bit = 64; bit < 96; ++bit) b.set_bit(bit);
    const auto fast = a.divmod(b);
    EXPECT_EQ(fast.quotient * b + fast.remainder, a);
    EXPECT_LT(fast.remainder, b);
  }
}

TEST(Bignum, ModU32) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = Bignum::random_bits(rng, 200);
    const std::uint32_t d = static_cast<std::uint32_t>(rng.range(1, 1 << 30));
    EXPECT_EQ(a.mod_u32(d), (a % Bignum{d}).low_u64());
  }
}

TEST(Bignum, ModU64) {
  Rng rng(51);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = Bignum::random_bits(rng, 300);
    const std::uint64_t d = rng.next() | (std::uint64_t{1} << 63);  // full-width divisor
    EXPECT_EQ(a.mod_u64(d), (a % Bignum{d}).low_u64());
  }
  EXPECT_EQ(Bignum{}.mod_u64(7), 0u);
  EXPECT_THROW(Bignum{1}.mod_u64(0), std::domain_error);
}

TEST(Bignum, Gcd) {
  EXPECT_EQ(Bignum::gcd(Bignum{12}, Bignum{18}).low_u64(), 6u);
  EXPECT_EQ(Bignum::gcd(Bignum{17}, Bignum{13}).low_u64(), 1u);
  EXPECT_EQ(Bignum::gcd(Bignum{}, Bignum{5}).low_u64(), 5u);
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    const Bignum g = Bignum::random_bits(rng, 64) + Bignum{1};
    const Bignum a = Bignum::random_bits(rng, 64) + Bignum{1};
    const Bignum b = Bignum::random_bits(rng, 64) + Bignum{1};
    const Bignum got = Bignum::gcd(g * a, g * b);
    EXPECT_TRUE((got % g).is_zero());  // g divides gcd
    EXPECT_TRUE(((g * a) % got).is_zero());
    EXPECT_TRUE(((g * b) % got).is_zero());
  }
}

TEST(Bignum, ModInverse) {
  EXPECT_EQ(Bignum::mod_inverse(Bignum{3}, Bignum{7}).low_u64(), 5u);
  EXPECT_THROW(Bignum::mod_inverse(Bignum{6}, Bignum{9}), std::domain_error);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const Bignum m = Bignum::random_bits(rng, 128) + Bignum{2};
    Bignum a = Bignum::random_bits(rng, 100) + Bignum{1};
    if (Bignum::gcd(a, m) != Bignum{1}) continue;
    const Bignum inv = Bignum::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, Bignum{1} % m);
  }
}

TEST(Bignum, ModPowKnownAnswersAndFermat) {
  EXPECT_EQ(Bignum::mod_pow(Bignum{2}, Bignum{10}, Bignum{1000}).low_u64(), 24u);
  EXPECT_EQ(Bignum::mod_pow(Bignum{5}, Bignum{0}, Bignum{7}).low_u64(), 1u);
  // Fermat's little theorem for a known prime.
  const Bignum p = Bignum::from_hex("ffffffffffffffc5");  // largest 64-bit prime
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    const Bignum a = Bignum::random_below(rng, p - Bignum{2}) + Bignum{1};
    EXPECT_EQ(Bignum::mod_pow(a, p - Bignum{1}, p), Bignum{1});
  }
}

TEST(Bignum, ModPowEvenModulus) {
  EXPECT_EQ(Bignum::mod_pow(Bignum{3}, Bignum{5}, Bignum{100}).low_u64(), 43u);
}

TEST(Bignum, ModPowEvenModulusMatchesReference) {
  // The even-modulus fallback (generic square-and-multiply with divmod)
  // must agree with a naive reference on random inputs — it is the one
  // mod_pow branch the Montgomery machinery never touches.
  Rng rng(52);
  for (int i = 0; i < 25; ++i) {
    Bignum mod = Bignum::random_bits(rng, 100 + rng.below(200)) + Bignum{2};
    if (mod.is_odd()) mod = mod + Bignum{1};  // force even
    const Bignum base = Bignum::random_bits(rng, 256);
    const Bignum exp = Bignum::random_bits(rng, 1 + rng.below(64));
    Bignum expected{1};
    expected = expected % mod;
    const Bignum b = base % mod;
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      expected = (expected * expected) % mod;
      if (exp.bit(bit)) expected = (expected * b) % mod;
    }
    EXPECT_EQ(Bignum::mod_pow(base, exp, mod), expected);
  }
  EXPECT_EQ(Bignum::mod_pow(Bignum{7}, Bignum{0}, Bignum{16}), Bignum{1});
  EXPECT_TRUE(Bignum::mod_pow(Bignum{5}, Bignum{3}, Bignum{1}).is_zero());
}

TEST(Bignum, WindowedPowMatchesGenericAndBase2Path) {
  // Odd moduli route through the fixed-window Montgomery path, with a
  // dedicated shift-doubling branch for base 2 (the Miller-Rabin front
  // test). Both must match plain square-and-multiply exactly.
  Rng rng(53);
  for (int i = 0; i < 20; ++i) {
    Bignum mod = Bignum::random_bits(rng, 200 + rng.below(1200));
    mod.set_bit(0);
    if (mod <= Bignum{2}) mod = Bignum{5};
    const Bignum exp = Bignum::random_bits(rng, 1 + rng.below(1200));
    for (const Bignum& base :
         {Bignum{2}, Bignum::random_bits(rng, 300), mod + Bignum{2}, Bignum{}}) {
      Bignum expected{1};
      expected = expected % mod;
      const Bignum b = base % mod;
      for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
        expected = (expected * expected) % mod;
        if (exp.bit(bit)) expected = (expected * b) % mod;
      }
      EXPECT_EQ(Bignum::mod_pow(base, exp, mod), expected);
    }
  }
}

TEST(Montgomery, MatchesPlainModMul) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    Bignum n = Bignum::random_bits(rng, 256);
    n.set_bit(0);  // odd
    n.set_bit(255);
    Montgomery mont(n);
    const Bignum a = Bignum::random_below(rng, n);
    const Bignum b = Bignum::random_below(rng, n);
    const Bignum got = mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
    EXPECT_EQ(got, (a * b) % n);
  }
}

TEST(Primes, MillerRabinKnownValues) {
  Rng rng(10);
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum{2}, 10, rng));
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum{65537}, 10, rng));
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum::from_hex("ffffffffffffffc5"), 10, rng));
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum{1}, 10, rng));
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum{561}, 10, rng));       // Carmichael
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum{41041}, 10, rng));     // Carmichael
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum{3215031751ULL}, 10, rng));
  const Bignum p = Bignum::from_hex("ffffffffffffffc5");
  EXPECT_FALSE(Bignum::is_probable_prime(p * p, 10, rng));
}

TEST(Primes, GeneratePrimeHasRequestedShape) {
  Rng rng(11);
  for (std::size_t bits : {128u, 192u, 256u}) {
    const Bignum p = Bignum::generate_prime(rng, bits, 8);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.bit(bits - 2));  // top-two-bits convention
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(Bignum::is_probable_prime(p, 12, rng));
  }
}

TEST(Rngs, DeterministicChildStreams) {
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(a.next(), b.next());
  Rng c1 = Rng(42).child("x");
  Rng c2 = Rng(42).child("x");
  Rng c3 = Rng(42).child("y");
  EXPECT_EQ(c1.next(), c2.next());
  EXPECT_NE(c1.next(), c3.next());
}

}  // namespace
}  // namespace opcua_study
