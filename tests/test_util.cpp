// util module: byte readers/writers, hex, dates, IPv4/CIDR.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/date.hpp"
#include "util/hex.hpp"
#include "util/ipv4.hpp"

namespace opcua_study {
namespace {

TEST(Bytesio, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  w.i32(-42);
  w.f64(3.5);
  w.raw(to_bytes("hello"));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_EQ(to_string(r.view(5)), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytesio, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x11223344);
  EXPECT_EQ(to_hex(w.bytes()), "44332211");
}

TEST(Bytesio, ReaderUnderflowThrows) {
  const Bytes data{1, 2, 3};
  ByteReader r(data);
  r.skip(2);
  EXPECT_THROW(r.u32(), DecodeError);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Bytesio, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u8(9);
  w.patch_u32(0, 0xcafebabe);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xcafebabeu);
  EXPECT_THROW(w.patch_u32(2, 1), std::logic_error);
}

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0x7f, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "007fff10");
  EXPECT_EQ(from_hex("007fff10"), data);
  EXPECT_EQ(from_hex("AbCd"), (Bytes{0xab, 0xcd}));
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Dates, CivilRoundTrip) {
  for (const CivilDate d : {CivilDate{1970, 1, 1}, CivilDate{2000, 2, 29}, CivilDate{2017, 1, 1},
                            CivilDate{2020, 8, 30}, CivilDate{2050, 12, 31}}) {
    EXPECT_EQ(civil_from_days(days_from_civil(d)), d);
  }
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(days_from_civil({1970, 1, 2}), 1);
  EXPECT_EQ(days_from_civil({2020, 2, 9}) - days_from_civil({2020, 2, 2}), 7);
}

TEST(Dates, FormatParse) {
  EXPECT_EQ(format_date({2020, 8, 30}), "2020-08-30");
  EXPECT_EQ(parse_date("2020-08-30"), (CivilDate{2020, 8, 30}));
  EXPECT_THROW(parse_date("garbage"), std::invalid_argument);
}

TEST(Dates, MeasurementCalendar) {
  EXPECT_EQ(format_date(measurement_date(0)), "2020-02-09");
  EXPECT_EQ(format_date(measurement_date(3)), "2020-05-04");
  EXPECT_EQ(format_date(measurement_date(7)), "2020-08-30");
  EXPECT_THROW(measurement_date(8), std::out_of_range);
  EXPECT_GT(measurement_days(7), measurement_days(0));
}

TEST(Dates, FiletimeRoundTrip) {
  const std::int64_t days = days_from_civil({2020, 5, 4});
  EXPECT_EQ(days_from_filetime(filetime_from_days(days)), days);
  EXPECT_GT(filetime_from_days(0), 0);  // 1970 is after 1601
}

TEST(Ipv4, FormatParse) {
  EXPECT_EQ(format_ipv4(make_ipv4(192, 168, 1, 200)), "192.168.1.200");
  EXPECT_EQ(parse_ipv4("10.0.0.1"), make_ipv4(10, 0, 0, 1));
  EXPECT_THROW(parse_ipv4("300.0.0.1"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("foo"), std::invalid_argument);
}

TEST(Ipv4, CidrContainsAndSize) {
  const Cidr c = parse_cidr("10.1.0.0/16");
  EXPECT_TRUE(c.contains(make_ipv4(10, 1, 200, 3)));
  EXPECT_FALSE(c.contains(make_ipv4(10, 2, 0, 1)));
  EXPECT_EQ(c.size(), 65536u);
  EXPECT_EQ(c.first(), make_ipv4(10, 1, 0, 0));
  const Cidr all = parse_cidr("0.0.0.0/0");
  EXPECT_TRUE(all.contains(make_ipv4(255, 255, 255, 255)));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
  const Cidr host = parse_cidr("1.2.3.4");
  EXPECT_EQ(host.prefix_len, 32);
  EXPECT_TRUE(host.contains(make_ipv4(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(make_ipv4(1, 2, 3, 5)));
  EXPECT_EQ(format_cidr(c), "10.1.0.0/16");
}

}  // namespace
}  // namespace opcua_study
