// Write and Call services: the attacker capabilities behind the paper's
// Fig. 7 numbers (anonymous writes / executions), gated by per-node rights.
#include <gtest/gtest.h>

#include "netsim/opcua_service.hpp"
#include "opcua/client.hpp"
#include "util/date.hpp"

namespace opcua_study {
namespace {

struct WriteCallRig {
  Network net;
  std::shared_ptr<Server> server;
  std::unique_ptr<NetConnection> conn;
  std::unique_ptr<Client> client;
  std::shared_ptr<AddressSpace> space;
  std::uint16_t ns = 0;

  WriteCallRig() {
    space = std::make_shared<AddressSpace>();
    ns = space->add_namespace("urn:writecall");
    space->add_object(NodeId(ns, 1), node_ids::kObjectsFolder, "Plant");
    space->add_variable(NodeId(ns, 2), NodeId(ns, 1), "rSetFillLevel", Variant{50.0},
                        access_level::kCurrentRead | access_level::kCurrentWrite);
    space->add_variable(NodeId(ns, 3), NodeId(ns, 1), "ReadOnlySensor", Variant{1.5},
                        access_level::kCurrentRead);
    space->add_method(NodeId(ns, 4), NodeId(ns, 1), "AddEndpoint", true);
    space->add_method(NodeId(ns, 5), NodeId(ns, 1), "Reboot", false);

    ServerConfig config;
    config.identity.application_uri = "urn:writecall:server";
    EndpointConfig ep;
    ep.url = "opc.tcp://10.2.0.1:4840/";
    ep.certificate_index = -1;
    config.endpoints.push_back(ep);
    config.address_space = space;
    server = std::make_shared<Server>(std::move(config), 3);
    net.listen(make_ipv4(10, 2, 0, 1), kOpcUaDefaultPort, make_opcua_factory(server));
    conn = net.connect(make_ipv4(10, 2, 0, 1), kOpcUaDefaultPort);
    client = std::make_unique<Client>(ClientConfig{}, *conn, Rng(4));
    EXPECT_EQ(client->hello("opc.tcp://10.2.0.1:4840/"), StatusCode::Good);
    EXPECT_EQ(client->open_channel(SecurityPolicy::None, MessageSecurityMode::None),
              StatusCode::Good);
    EXPECT_EQ(client->create_session(), StatusCode::Good);
    EXPECT_EQ(client->activate_session_anonymous(), StatusCode::Good);
  }
};

TEST(WriteService, AnonymousWriteHonorsUserAccessLevel) {
  WriteCallRig rig;
  StatusCode node_status = StatusCode::Good;
  // Writable node: the write lands.
  ASSERT_EQ(rig.client->write_value(NodeId(rig.ns, 2), Variant{99.5}, node_status),
            StatusCode::Good);
  EXPECT_EQ(node_status, StatusCode::Good);
  DataValue dv;
  ASSERT_EQ(rig.client->read(NodeId(rig.ns, 2), AttributeId::Value, dv), StatusCode::Good);
  EXPECT_EQ(dv.value, Variant{99.5});
  // Read-only node: rejected, value untouched.
  ASSERT_EQ(rig.client->write_value(NodeId(rig.ns, 3), Variant{0.0}, node_status),
            StatusCode::Good);
  EXPECT_EQ(node_status, StatusCode::BadNotWritable);
  ASSERT_EQ(rig.client->read(NodeId(rig.ns, 3), AttributeId::Value, dv), StatusCode::Good);
  EXPECT_EQ(dv.value, Variant{1.5});
  // Unknown node.
  ASSERT_EQ(rig.client->write_value(NodeId(rig.ns, 99), Variant{1.0}, node_status),
            StatusCode::Good);
  EXPECT_EQ(node_status, StatusCode::BadNodeIdUnknown);
}

TEST(CallService, AnonymousExecutionHonorsUserExecutable) {
  WriteCallRig rig;
  StatusCode method_status = StatusCode::Good;
  ASSERT_EQ(rig.client->call_method(NodeId(rig.ns, 1), NodeId(rig.ns, 4),
                                    {Variant{"opc.tcp://evil:4840/"}}, method_status),
            StatusCode::Good);
  EXPECT_EQ(method_status, StatusCode::Good);  // AddEndpoint executable by anyone
  ASSERT_EQ(rig.client->call_method(NodeId(rig.ns, 1), NodeId(rig.ns, 5), {}, method_status),
            StatusCode::Good);
  EXPECT_EQ(method_status, StatusCode::BadNotExecutable);  // Reboot locked down
  ASSERT_EQ(rig.client->call_method(NodeId(rig.ns, 1), NodeId(rig.ns, 77), {}, method_status),
            StatusCode::Good);
  EXPECT_EQ(method_status, StatusCode::BadNodeIdUnknown);
  // Calling a variable as a method is a type error.
  ASSERT_EQ(rig.client->call_method(NodeId(rig.ns, 1), NodeId(rig.ns, 2), {}, method_status),
            StatusCode::Good);
  EXPECT_EQ(method_status, StatusCode::BadAttributeIdInvalid);
}

TEST(WriteService, MessageRoundTrip) {
  WriteRequest req;
  WriteValue wv;
  wv.node_id = NodeId(2, "rSetFillLevel");
  wv.value.value = Variant{42.0};
  req.nodes_to_write.push_back(wv);
  const Bytes packed = pack_service(req);
  const auto back = unpack_service<WriteRequest>(packed);
  ASSERT_EQ(back.nodes_to_write.size(), 1u);
  EXPECT_EQ(back.nodes_to_write[0].node_id, NodeId(2, "rSetFillLevel"));
  EXPECT_EQ(back.nodes_to_write[0].value.value, Variant{42.0});
}

TEST(CallService, MessageRoundTrip) {
  CallRequest req;
  CallMethodRequest cm;
  cm.object_id = NodeId(1, 100);
  cm.method_id = NodeId(1, 101);
  cm.input_arguments = {Variant{true}, Variant{"arg"}};
  req.methods_to_call.push_back(cm);
  const auto back = unpack_service<CallRequest>(pack_service(req));
  ASSERT_EQ(back.methods_to_call.size(), 1u);
  EXPECT_EQ(back.methods_to_call[0].input_arguments.size(), 2u);

  CallResponse resp;
  CallMethodResult result;
  result.status = StatusCode::BadNotExecutable;
  result.output_arguments = {Variant{std::int32_t{7}}};
  resp.results.push_back(result);
  const auto back_resp = unpack_service<CallResponse>(pack_service(resp));
  ASSERT_EQ(back_resp.results.size(), 1u);
  EXPECT_EQ(back_resp.results[0].status, StatusCode::BadNotExecutable);
  EXPECT_EQ(back_resp.results[0].output_arguments[0], Variant{std::int32_t{7}});
}

TEST(WriteService, RequiresActivatedSession) {
  WriteCallRig rig;
  // New connection, channel only (no session).
  auto conn = rig.net.connect(make_ipv4(10, 2, 0, 1), kOpcUaDefaultPort);
  Client fresh(ClientConfig{}, *conn, Rng(5));
  ASSERT_EQ(fresh.hello("opc.tcp://10.2.0.1:4840/"), StatusCode::Good);
  ASSERT_EQ(fresh.open_channel(SecurityPolicy::None, MessageSecurityMode::None),
            StatusCode::Good);
  StatusCode node_status = StatusCode::Good;
  EXPECT_EQ(fresh.write_value(NodeId(rig.ns, 2), Variant{1.0}, node_status),
            StatusCode::BadSessionNotActivated);
}

// The decoders must reject garbage, never crash: every service decoder gets
// random bytes thrown at it (robustness requirement for a scanner that
// parses hostile input).
class DecoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 200; ++i) {
    const Bytes junk = rng.bytes(rng.below(120));
    try {
      UaReader r(junk);
      switch (GetParam() % 6) {
        case 0: EndpointDescription::decode(r); break;
        case 1: BrowseResponse::decode(r); break;
        case 2: CreateSessionResponse::decode(r); break;
        case 3: ReadResponse::decode(r); break;
        case 4: UserIdentityToken::decode(r); break;
        default: CallResponse::decode(r); break;
      }
    } catch (const DecodeError&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Services, DecoderFuzz, ::testing::Range(0, 12));

TEST(FrameFuzz, RandomFramesNeverCrashServer) {
  WriteCallRig rig;
  auto handler = rig.server->accept();
  Rng rng(999);
  for (int i = 0; i < 300; ++i) {
    const Bytes junk = rng.bytes(rng.below(100));
    // Must return an ERR frame or empty, never throw.
    const Bytes reply = handler->on_frame(junk);
    if (handler->closed()) {
      handler = rig.server->accept();
    }
    (void)reply;
  }
  SUCCEED();
}

}  // namespace
}  // namespace opcua_study
