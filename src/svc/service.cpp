// QueryService — request parsing, JSON rendering, bounded worker pool.
#include "svc/service.hpp"

#include <chrono>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"

namespace opcua_study::svc {

namespace {

const char* kind_name(QueryRequest::Kind kind) {
  return obs::kQueryKindCells[static_cast<std::size_t>(kind)];
}

QueryRequest::Kind parse_kind(const std::string& name) {
  for (std::size_t k = 0; k < std::size(obs::kQueryKindCells); ++k) {
    if (name == obs::kQueryKindCells[k]) return static_cast<QueryRequest::Kind>(k);
  }
  throw std::invalid_argument("unknown query kind: '" + name + "'");
}

std::uint64_t parse_number(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || value.empty()) {
    throw std::invalid_argument("query parameter " + key + "=" + value + " is not a number");
  }
  return parsed;
}

// --------------------------------------------------------- render: kinds --

void render_catalog(JsonWriter& json, CampaignCatalog& catalog) {
  json.key("campaigns").begin_array();
  for (const std::string& name : catalog.campaign_names()) {
    const SnapshotMeta meta = catalog.final_meta(name);
    const SnapshotReader& reader = catalog.reader(name);
    json.begin_object()
        .field("name", name)
        .field("label", meta.campaign_label)
        .field("epoch_days", static_cast<std::uint64_t>(meta.campaign_epoch_days))
        .field("date_days", static_cast<std::uint64_t>(meta.date_days))
        .field("weeks", static_cast<std::uint64_t>(reader.snapshots().size()))
        .field("hosts", meta.host_count)
        .field("records", reader.total_records())
        .field("format_version", static_cast<std::uint64_t>(reader.version()))
        .end_object();
  }
  json.end_array();
  json.key("series").begin_array();
  for (const std::string& name : catalog.series_names()) {
    const std::vector<std::string> members = catalog.series_members(name);
    json.begin_object().field("name", name).key("members").begin_array();
    for (const std::string& member : members) json.value(member);
    json.end_array().field("length", static_cast<std::uint64_t>(members.size())).end_object();
  }
  json.end_array();
}

bool posture_selected(const HostPosture& p, const QueryRequest& request) {
  if (request.asn && p.asn != *request.asn) return false;
  if (request.protocol && protocol_name(p.protocol) != *request.protocol) return false;
  if (request.mode_bucket && static_cast<int>(p.mode_bucket) != *request.mode_bucket) return false;
  if (request.policy_bucket && static_cast<int>(p.policy_bucket) != *request.policy_bucket) {
    return false;
  }
  if (request.anonymous_only && !p.anonymous) return false;
  if (request.deficient_only && !p.deficient) return false;
  return true;
}

void render_posture(JsonWriter& json, CampaignCatalog& catalog, const QueryRequest& request) {
  if (request.campaign.empty()) {
    throw std::invalid_argument("posture query needs campaign=<name>");
  }
  const auto postures = catalog.postures(request.campaign);
  const SnapshotMeta meta = catalog.final_meta(request.campaign);

  struct AsRow {
    std::uint64_t hosts = 0, deficient = 0, anonymous = 0;
  };
  std::uint64_t hosts = 0, deficient = 0, anonymous = 0, deprecated = 0;
  std::uint64_t mode_buckets[3] = {};
  std::uint64_t policy_buckets[3] = {};
  std::map<ProtocolId, AsRow> by_protocol;     // ordered: deterministic emit
  std::map<std::uint32_t, AsRow> by_as;        // ascending ASN
  for (const HostPosture& p : *postures) {
    if (!posture_selected(p, request)) continue;
    ++hosts;
    deficient += p.deficient;
    anonymous += p.anonymous;
    deprecated += p.supports_deprecated;
    if (p.mode_bucket < 3) ++mode_buckets[p.mode_bucket];
    if (p.policy_bucket < 3) ++policy_buckets[p.policy_bucket];
    AsRow& prow = by_protocol[p.protocol];
    ++prow.hosts;
    prow.deficient += p.deficient;
    prow.anonymous += p.anonymous;
    AsRow& row = by_as[p.asn];
    ++row.hosts;
    row.deficient += p.deficient;
    row.anonymous += p.anonymous;
  }

  json.field("campaign", request.campaign)
      .field("label", meta.campaign_label)
      .field("population", postures->size());
  json.key("filters").begin_object();
  if (request.asn) json.field("asn", static_cast<std::uint64_t>(*request.asn));
  if (request.protocol) json.field("protocol", *request.protocol);
  if (request.mode_bucket) json.field("mode_bucket", *request.mode_bucket);
  if (request.policy_bucket) json.field("policy_bucket", *request.policy_bucket);
  if (request.anonymous_only) json.field("anonymous_only", true);
  if (request.deficient_only) json.field("deficient_only", true);
  json.end_object();
  json.field("hosts", hosts)
      .field("deficient", deficient)
      .field("anonymous", anonymous)
      .field("supports_deprecated", deprecated);
  json.key("mode_buckets").begin_object();
  for (std::size_t b = 0; b < 3; ++b) json.field(kModeBuckets[b], mode_buckets[b]);
  json.end_object();
  json.key("policy_buckets").begin_object();
  for (std::size_t b = 0; b < 3; ++b) json.field(kPolicyBuckets[b], policy_buckets[b]);
  json.end_object();
  json.key("by_protocol").begin_object();
  for (const auto& [protocol, row] : by_protocol) {
    json.key(protocol_name(protocol))
        .begin_object()
        .field("hosts", row.hosts)
        .field("deficient", row.deficient)
        .field("anonymous", row.anonymous)
        .end_object();
  }
  json.end_object();
  json.field("as_total", static_cast<std::uint64_t>(by_as.size()))
      .field("as_truncated", by_as.size() > request.as_limit);
  json.key("by_as").begin_array();
  std::size_t emitted = 0;
  for (const auto& [asn, row] : by_as) {
    if (emitted++ >= request.as_limit) break;
    json.begin_object()
        .field("asn", static_cast<std::uint64_t>(asn))
        .field("hosts", row.hosts)
        .field("deficient", row.deficient)
        .field("anonymous", row.anonymous)
        .end_object();
  }
  json.end_array();
}

void render_study(JsonWriter& json, CampaignCatalog& catalog, const QueryRequest& request) {
  if (request.campaign.empty()) {
    throw std::invalid_argument("study query needs campaign=<name>");
  }
  const auto study = catalog.study(request.campaign);
  const SnapshotMeta meta = catalog.final_meta(request.campaign);
  json.field("campaign", request.campaign)
      .field("label", meta.campaign_label)
      .field("weeks", static_cast<std::uint64_t>(study->weeks.size()));
  json.key("modes")
      .begin_object()
      .field("servers", study->modes.servers)
      .field("none_only", study->modes.none_only)
      .field("secure_mode_capable", study->modes.secure_mode_capable)
      .field("deprecated_supported", study->modes.deprecated_supported)
      .field("deprecated_max", study->modes.deprecated_max)
      .field("strong_enforcing", study->modes.strong_enforcing)
      .field("strong_capable", study->modes.strong_capable)
      .end_object();
  json.key("certificates")
      .begin_object()
      .field("hosts_with_cert", study->certificates.hosts_with_cert)
      .field("ca_signed", study->certificates.ca_signed)
      .field("weaker_than_max", study->certificates.weaker_than_max)
      .field("distinct", study->reuse.distinct_certificates)
      .field("clusters_ge3", study->reuse.clusters_ge3)
      .field("hosts_in_ge3", study->reuse.hosts_in_ge3)
      .end_object();
  json.key("auth")
      .begin_object()
      .field("servers", study->auth.servers)
      .field("channel_capable", study->auth.channel_capable)
      .field("anonymous_offered", study->auth.anonymous_offered)
      .field("accessible", study->auth.accessible)
      .field("auth_rejected", study->auth.auth_rejected)
      .field("production", study->auth.production)
      .field("test", study->auth.test)
      .end_object();
  json.key("deficits")
      .begin_object()
      .field("servers", study->deficits.servers)
      .field("none_only", study->deficits.none_only)
      .field("deprecated_only", study->deficits.deprecated_only)
      .field("weak_certificate", study->deficits.weak_certificate)
      .field("cert_reuse", study->deficits.cert_reuse)
      .field("anonymous_access", study->deficits.anonymous_access)
      .field("deficient_total", study->deficits.deficient_total)
      .end_object();
  json.key("longitudinal")
      .begin_object()
      .field("weeks", static_cast<std::uint64_t>(study->longitudinal.weeks.size()))
      .field("deficiency_avg", study->longitudinal.deficiency_avg)
      .field("deficiency_std", study->longitudinal.deficiency_std)
      .field("deficiency_min", study->longitudinal.deficiency_min)
      .field("deficiency_max", study->longitudinal.deficiency_max)
      .field("total_distinct_certificates",
             static_cast<std::uint64_t>(study->longitudinal.total_distinct_certificates))
      .field("sha1_after_2017", static_cast<std::uint64_t>(study->longitudinal.sha1_after_2017))
      .field("renewals", static_cast<std::uint64_t>(study->longitudinal.renewals.size()))
      .field("sha1_upgrades", study->longitudinal.sha1_upgrades)
      .field("downgrades", study->longitudinal.downgrades)
      .end_object();
  json.key("scan_quality")
      .begin_object()
      .field("hosts", study->scan_quality.hosts)
      .field("complete", study->scan_quality.complete)
      .field("truncated", study->scan_quality.truncated)
      .field("degraded", study->scan_quality.degraded)
      .field("unreachable", study->scan_quality.unreachable)
      .field("faulted", study->scan_quality.faulted)
      .field("recovered", study->scan_quality.recovered)
      .field("recovery_rate", study->scan_quality.recovery_rate)
      .end_object();
}

void render_diff(JsonWriter& json, CampaignCatalog& catalog, const QueryRequest& request) {
  if (request.base.empty() || request.followup.empty()) {
    throw std::invalid_argument("diff query needs base=<name> followup=<name>");
  }
  const auto diff = catalog.diff(request.base, request.followup);
  append_campaign_diff_fields(json, *diff);
}

void render_series(JsonWriter& json, CampaignCatalog& catalog, const QueryRequest& request) {
  if (request.series.empty()) throw std::invalid_argument("series query needs series=<name>");
  const auto analysis = catalog.series(request.series);
  append_series_analysis_fields(json, *analysis);
  // Cumulative remediation curve: fraction of insecure starters secured
  // within <= k campaigns (the dashboard cut of steps_to_secure).
  json.key("remediation_curve").begin_array();
  std::uint64_t cumulative = 0;
  for (std::size_t k = 1; k < analysis->remediation.steps_to_secure.size(); ++k) {
    cumulative += analysis->remediation.steps_to_secure[k];
    const double fraction =
        analysis->remediation.insecure_at_start == 0
            ? 0.0
            : static_cast<double>(cumulative) /
                  static_cast<double>(analysis->remediation.insecure_at_start);
    json.begin_object()
        .field("campaigns", static_cast<std::uint64_t>(k))
        .field("cumulative_remediated", cumulative)
        .field("fraction", fraction)
        .end_object();
  }
  json.end_array();
}

}  // namespace

// ------------------------------------------------------------- parsing --

QueryRequest parse_query_request(const std::string& text) {
  QueryRequest request;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("query token '" + token + "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kind") {
      request.kind = parse_kind(value);
    } else if (key == "campaign") {
      request.campaign = value;
    } else if (key == "base") {
      request.base = value;
    } else if (key == "followup") {
      request.followup = value;
    } else if (key == "series") {
      request.series = value;
    } else if (key == "asn") {
      request.asn = static_cast<std::uint32_t>(parse_number(key, value));
    } else if (key == "protocol") {
      request.protocol = value;
    } else if (key == "mode") {
      request.mode_bucket = static_cast<int>(parse_number(key, value));
    } else if (key == "policy") {
      request.policy_bucket = static_cast<int>(parse_number(key, value));
    } else if (key == "anonymous") {
      request.anonymous_only = parse_number(key, value) != 0;
    } else if (key == "deficient") {
      request.deficient_only = parse_number(key, value) != 0;
    } else if (key == "as_limit") {
      request.as_limit = static_cast<std::size_t>(parse_number(key, value));
    } else {
      throw std::invalid_argument("unknown query parameter: '" + key + "'");
    }
  }
  return request;
}

// ------------------------------------------------------------- service --

QueryService::QueryService(CampaignCatalog& catalog, QueryServiceOptions options)
    : catalog_(catalog), options_(options) {
  if (options_.workers < 0) options_.workers = 0;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Requests still queued never ran: complete them as rejected so their
  // futures resolve instead of breaking.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    QueryResponse response;
    response.rejected = true;
    JsonWriter json;
    json.begin_object()
        .field("schema", "opcua-svc-v1")
        .field("kind", kind_name(pending.request.kind))
        .field("status", "rejected")
        .field("error", "query service shut down before execution")
        .end_object();
    response.body = json.str();
    pending.promise.set_value(std::move(response));
  }
}

QueryResponse QueryService::execute(const QueryRequest& request) {
  const bool timed = obs::enabled();
  const auto start =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  QueryResponse response;
  try {
    JsonWriter json;
    json.begin_object()
        .field("schema", "opcua-svc-v1")
        .field("kind", kind_name(request.kind))
        .field("status", "ok");
    json.key("result").begin_object();
    switch (request.kind) {
      case QueryRequest::Kind::catalog: render_catalog(json, catalog_); break;
      case QueryRequest::Kind::posture: render_posture(json, catalog_, request); break;
      case QueryRequest::Kind::study: render_study(json, catalog_, request); break;
      case QueryRequest::Kind::diff: render_diff(json, catalog_, request); break;
      case QueryRequest::Kind::series: render_series(json, catalog_, request); break;
    }
    json.end_object().end_object();
    response.ok = true;
    response.body = json.str();
  } catch (const std::exception& e) {
    // The error document is as deterministic as the success path: the
    // same bad request fails with the same bytes every time.
    JsonWriter json;
    json.begin_object()
        .field("schema", "opcua-svc-v1")
        .field("kind", kind_name(request.kind))
        .field("status", "error")
        .field("error", std::string(e.what()))
        .end_object();
    response.ok = false;
    response.body = json.str();
  }
  const unsigned cell = static_cast<unsigned>(request.kind);
  obs::add(obs::Metric::svc_queries, 1, cell);
  if (timed) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    obs::observe_us(obs::Metric::svc_query_us, static_cast<std::uint64_t>(us), cell);
  }
  if (obs::trace_enabled()) {
    obs::trace(obs::TraceEvent::query_executed, 0, 0, 0, static_cast<std::uint64_t>(cell),
               response.body.size());
  }
  return response;
}

std::future<QueryResponse> QueryService::submit(QueryRequest request) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_ && queue_.size() < options_.max_queue) {
      queue_.push_back(Pending{std::move(request), std::move(promise)});
      accepted = true;
    }
  }
  if (accepted) {
    cv_.notify_one();
    return future;
  }
  // Admission control: shed at the door, deterministically and without
  // blocking the caller.
  obs::add(obs::Metric::svc_queries_rejected, 1);
  QueryResponse response;
  response.rejected = true;
  JsonWriter json;
  json.begin_object()
      .field("schema", "opcua-svc-v1")
      .field("status", "rejected")
      .field("error",
             "query queue is full (max " + std::to_string(options_.max_queue) + ")")
      .end_object();
  response.body = json.str();
  promise.set_value(std::move(response));
  return future;
}

bool QueryService::run_one() {
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    pending = std::move(queue_.front());
    queue_.pop_front();
  }
  pending.promise.set_value(execute(pending.request));
  return true;
}

std::size_t QueryService::drain() {
  std::size_t ran = 0;
  while (run_one()) ++ran;
  return ran;
}

void QueryService::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // leftovers complete rejected in the destructor
    }
    run_one();
  }
}

}  // namespace opcua_study::svc
