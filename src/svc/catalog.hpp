// Campaign catalog — the resident data plane of the study service.
//
// The batch pipeline re-walks snapshot files per report; the catalog
// instead keeps every registered campaign's SnapshotReader open for its
// whole lifetime (v6 files stay memory-mapped, so column reads are
// zero-copy and concurrent readers never race) and caches the derived
// immutable artifacts — posture vectors, StudyAnalysis, CampaignDiff,
// SeriesAnalysis — behind a shared-nothing read path: every artifact is
// computed exactly once, published as shared_ptr<const T>, and then only
// ever read. Queries that race on a cold artifact dedupe through a
// shared_future (one computes, the rest wait on the same result), so an
// artifact is never computed twice and every caller observes the same
// object. A computation that throws stays cached as that exception:
// repeating the failing query deterministically re-raises the same
// error instead of retrying the work.
//
// Series are resident SeriesBuilders. Registering a series feeds each
// member's posture vector (sketch sidecar when present and valid —
// src/series/sketch.hpp; a stale sidecar is a hard error) into a
// builder; appending a campaign later costs one posture load plus one
// match, never a re-walk of earlier members. The SeriesAnalysis snapshot
// is refreshed at each append (closing live timelines is cheap next to a
// member walk), so series queries are pure pointer reads and a query
// racing an append sees either the old or the new immutable snapshot —
// never a half-updated one.
//
// Lifetime rules: registration is append-only — campaigns and series are
// never evicted, readers live as long as the catalog, and artifact
// pointers handed out remain valid (and immutable) after the catalog is
// destroyed. Cache hits/misses and peak resident bytes are accounted in
// obs:: (svc_cache_hits / svc_cache_misses / svc_resident_bytes).
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "diff/diff.hpp"
#include "series/series.hpp"

namespace opcua_study::svc {

struct CatalogOptions {
  /// Worker threads for posture/analysis passes on cache misses; 0 =
  /// hardware concurrency, 1 = inline. Artifacts are identical for any
  /// value.
  int analysis_threads = 1;
  /// Serve posture vectors from sketch sidecars when present and valid
  /// (a stale sidecar throws — see read_posture_sketch).
  bool use_sketches = true;
  /// Cut a sidecar after a posture pass that found none, so the next
  /// cold start of this catalog skips the walk.
  bool write_sketches = true;
};

class CampaignCatalog {
 public:
  explicit CampaignCatalog(CatalogOptions options = {});
  ~CampaignCatalog();

  CampaignCatalog(const CampaignCatalog&) = delete;
  CampaignCatalog& operator=(const CampaignCatalog&) = delete;

  /// Open the snapshot file at `path` (validated eagerly — a bad path or
  /// seed throws here, not at first query) and register it under `name`.
  /// Throws SnapshotError when the name is taken or the file is empty.
  void register_campaign(const std::string& name, const std::string& path, std::uint64_t seed);

  /// Build a resident series from already-registered campaigns, in the
  /// given order (chain-validated member by member). Costs one posture
  /// load per member — the members' earlier artifacts are reused.
  void register_series(const std::string& name, const std::vector<std::string>& campaigns);

  /// Append one registered campaign to a resident series: one posture
  /// load plus one match, regardless of the series' current length.
  /// Returns the new member count.
  std::size_t append_to_series(const std::string& series, const std::string& campaign);

  std::vector<std::string> campaign_names() const;  // registration order
  std::vector<std::string> series_names() const;    // registration order
  std::vector<std::string> series_members(const std::string& series) const;
  /// Final-measurement identity of a registered campaign.
  SnapshotMeta final_meta(const std::string& campaign) const;
  const SnapshotReader& reader(const std::string& campaign) const;

  // Cached artifacts. Each is computed at most once (racing callers
  // dedupe), immutable once published, and safe to hold past the call.
  std::shared_ptr<const std::vector<HostPosture>> postures(const std::string& campaign);
  std::shared_ptr<const StudyAnalysis> study(const std::string& campaign);
  std::shared_ptr<const CampaignDiff> diff(const std::string& base, const std::string& followup);
  std::shared_ptr<const SeriesAnalysis> series(const std::string& series);

  /// Estimated heap/mapping bytes held resident: snapshot payloads,
  /// cached posture vectors, live series builders.
  std::size_t resident_bytes() const;

 private:
  struct CampaignEntry {
    std::string path;
    std::uint64_t seed = 0;
    std::unique_ptr<SnapshotReader> reader;
  };
  struct SeriesEntry {
    std::vector<std::string> members;
    SeriesBuilder builder{true};
    /// Immutable analysis snapshot, refreshed at each append; null until
    /// the series holds two members.
    std::shared_ptr<const SeriesAnalysis> latest;
  };
  template <typename T>
  using Cache = std::map<std::string, std::shared_future<std::shared_ptr<const T>>>;

  const CampaignEntry& entry(const std::string& campaign) const;  // throws on unknown
  /// get-or-compute through `cache`: the first caller for `key` computes
  /// on its own thread with the lock released; racing callers block on
  /// the same shared_future. A throwing compute stays cached as its
  /// exception.
  template <typename T, typename Fn>
  std::shared_ptr<const T> cached(Cache<T>& cache, const std::string& key, unsigned artifact_cell,
                                  Fn compute);
  void note_resident_bytes() const;

  CatalogOptions options_;
  mutable std::mutex mutex_;  // registries + caches + series builders
  std::map<std::string, CampaignEntry> campaigns_;
  std::vector<std::string> campaign_order_;
  std::map<std::string, SeriesEntry> series_;
  std::vector<std::string> series_order_;
  Cache<std::vector<HostPosture>> posture_cache_;
  Cache<StudyAnalysis> study_cache_;
  Cache<CampaignDiff> diff_cache_;  // key: base + '\x1f' + followup
};

}  // namespace opcua_study::svc
