// QueryService — the study service's concurrent JSON query API.
//
// A QueryRequest names one of five query kinds over a CampaignCatalog
// and is rendered to a JSON document (schema "opcua-svc-v1", emitted
// through report/json.hpp):
//   catalog — registered campaigns and series, with identities;
//   posture — cohort-filtered population cuts of one campaign's final
//             measurement (per-AS, per-protocol, security-mode/policy
//             buckets, anonymous/deficient subsets);
//   study   — the paper's figure statistics (analyze_reader summary);
//   diff    — the pairwise CampaignDiff (exactly the campaign_diff_json
//             fields);
//   series  — the SeriesAnalysis (exactly the series_analysis_json
//             fields — remediation/relapse curves, censored timelines)
//             plus a derived cumulative remediation curve.
//
// Determinism contract: every response is a pure function of (catalog
// contents, request). Rendering reads only immutable cached artifacts,
// no timestamps and no iteration over unordered containers, so the same
// request returns byte-identical JSON whether executed inline, through
// one worker, or raced across eight — the concurrency tests pin this.
// Failures are part of the contract: a query that cannot be answered
// (unknown name, stale sketch, chain violation) renders a deterministic
// {"status":"error"} document rather than throwing across the pool.
//
// Concurrency model: execute() is synchronous and thread-safe (the
// catalog serializes artifact computation; rendering is shared-nothing).
// submit() feeds a bounded queue drained by a fixed worker pool; when
// the queue is full the request is *rejected immediately* with a
// {"status":"rejected"} response (admission control — load sheds at the
// door instead of queueing unboundedly, svc_queries_rejected counts it).
// With workers == 0 nothing drains the queue until drain() runs it
// inline — the deterministic mode the admission-control tests use.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/catalog.hpp"

namespace opcua_study::svc {

struct QueryRequest {
  /// Order matches obs::kQueryKindCells.
  enum class Kind : std::uint8_t { catalog = 0, posture, study, diff, series };
  Kind kind = Kind::catalog;

  std::string campaign;  // posture / study
  std::string base;      // diff
  std::string followup;  // diff
  std::string series;    // series

  // Cohort filters (posture queries; ignored elsewhere).
  std::optional<std::uint32_t> asn;
  std::optional<std::string> protocol;  // registry name, e.g. "opcua"
  std::optional<int> mode_bucket;       // index into kModeBuckets
  std::optional<int> policy_bucket;     // index into kPolicyBuckets
  bool anonymous_only = false;
  bool deficient_only = false;
  /// Cap on per-AS rows in the posture response (ascending ASN; the
  /// response flags truncation).
  std::size_t as_limit = 32;

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

/// Parse "key=value ..." text into a request, e.g.
///   "kind=posture campaign=imc2020 asn=64503 deficient=1 as_limit=8"
/// Keys: kind, campaign, base, followup, series, asn, protocol, mode,
/// policy, anonymous, deficient, as_limit. Throws std::invalid_argument
/// on unknown keys/kinds or malformed numbers.
QueryRequest parse_query_request(const std::string& text);

struct QueryResponse {
  bool ok = false;        // status "ok" (body is still well-formed JSON otherwise)
  bool rejected = false;  // refused by admission control, never executed
  std::string body;       // complete JSON document
};

struct QueryServiceOptions {
  /// Worker threads draining the submit() queue. 0 = no workers; queued
  /// requests run only through drain().
  int workers = 1;
  /// Admission control: submit() beyond this many waiting requests is
  /// rejected immediately.
  std::size_t max_queue = 64;
};

class QueryService {
 public:
  QueryService(CampaignCatalog& catalog, QueryServiceOptions options = {});
  ~QueryService();  // drains nothing: queued-but-unrun requests complete rejected

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Execute synchronously on the calling thread. Thread-safe; the
  /// response is byte-deterministic for (catalog contents, request).
  QueryResponse execute(const QueryRequest& request);

  /// Enqueue for the worker pool. The future resolves with the executed
  /// response, or immediately with a rejected response when the queue is
  /// at max_queue.
  std::future<QueryResponse> submit(QueryRequest request);

  /// Run queued requests inline on the calling thread until the queue is
  /// empty; returns how many ran. The workers == 0 deterministic mode.
  std::size_t drain();

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
  };
  void worker_loop();
  bool run_one();  // pop + execute + fulfil; false when queue empty

  CampaignCatalog& catalog_;
  QueryServiceOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace opcua_study::svc
