// CampaignCatalog — resident readers + once-computed artifact caches.
#include "svc/catalog.hpp"

#include "obs/metrics.hpp"
#include "series/matcher.hpp"
#include "series/sketch.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study::svc {

namespace {

// Artifact cells of svc_cache_hits / svc_cache_misses (kArtifactCells).
enum ArtifactCell : unsigned {
  kCellSketch = 0,
  kCellPostures = 1,
  kCellStudy = 2,
  kCellDiff = 3,
  kCellSeries = 4,
};

std::size_t posture_vector_bytes(const std::vector<HostPosture>& postures) {
  std::size_t bytes = postures.capacity() * sizeof(HostPosture);
  for (const HostPosture& p : postures) bytes += p.fps.capacity() * sizeof(std::uint64_t);
  return bytes;
}

}  // namespace

CampaignCatalog::CampaignCatalog(CatalogOptions options) : options_(options) {}

CampaignCatalog::~CampaignCatalog() = default;

void CampaignCatalog::register_campaign(const std::string& name, const std::string& path,
                                        std::uint64_t seed) {
  // Open (and fully validate) outside the lock: a slow or bad file never
  // stalls concurrent queries against already-registered campaigns.
  auto reader = std::make_unique<SnapshotReader>(path, seed);
  if (reader->snapshots().empty()) {
    throw SnapshotError("catalog: snapshot '" + path + "' holds no measurement");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (campaigns_.count(name) != 0) {
      throw SnapshotError("catalog: campaign name '" + name + "' is already registered");
    }
    CampaignEntry entry;
    entry.path = path;
    entry.seed = seed;
    entry.reader = std::move(reader);
    campaigns_.emplace(name, std::move(entry));
    campaign_order_.push_back(name);
  }
  note_resident_bytes();
}

void CampaignCatalog::register_series(const std::string& name,
                                      const std::vector<std::string>& campaigns) {
  if (campaigns.empty()) {
    throw SnapshotError("catalog: series '" + name + "' needs >= 1 member campaign");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (series_.count(name) != 0) {
      throw SnapshotError("catalog: series name '" + name + "' is already registered");
    }
  }
  // Feed a local builder first — a chain violation or missing campaign
  // leaves no half-registered series behind. Posture loads go through the
  // artifact cache, so members shared across series are loaded once.
  SeriesEntry entry;
  entry.members = campaigns;
  for (const std::string& campaign : campaigns) {
    const std::shared_ptr<const std::vector<HostPosture>> p = postures(campaign);
    entry.builder.add_member(final_meta(campaign), *p);
  }
  if (entry.builder.size() >= 2) {
    entry.latest = std::make_shared<const SeriesAnalysis>(entry.builder.analysis());
    obs::add(obs::Metric::svc_cache_misses, 1, kCellSeries);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (series_.count(name) != 0) {
      throw SnapshotError("catalog: series name '" + name + "' is already registered");
    }
    series_.emplace(name, std::move(entry));
    series_order_.push_back(name);
  }
  note_resident_bytes();
}

std::size_t CampaignCatalog::append_to_series(const std::string& series,
                                              const std::string& campaign) {
  // One posture load (cached/sketched) + one builder match. No lock is
  // held while the postures materialize, so queries stay live.
  const std::shared_ptr<const std::vector<HostPosture>> p = postures(campaign);
  const SnapshotMeta meta = final_meta(campaign);
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(series);
    if (it == series_.end()) {
      throw SnapshotError("catalog: unknown series '" + series + "'");
    }
    it->second.builder.add_member(meta, *p);
    it->second.members.push_back(campaign);
    count = it->second.builder.size();
    if (count >= 2) {
      it->second.latest = std::make_shared<const SeriesAnalysis>(it->second.builder.analysis());
      obs::add(obs::Metric::svc_cache_misses, 1, kCellSeries);
    }
  }
  note_resident_bytes();
  return count;
}

std::vector<std::string> CampaignCatalog::campaign_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return campaign_order_;
}

std::vector<std::string> CampaignCatalog::series_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_order_;
}

std::vector<std::string> CampaignCatalog::series_members(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(series);
  if (it == series_.end()) throw SnapshotError("catalog: unknown series '" + series + "'");
  return it->second.members;
}

const CampaignCatalog::CampaignEntry& CampaignCatalog::entry(const std::string& campaign) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = campaigns_.find(campaign);
  if (it == campaigns_.end()) {
    throw SnapshotError("catalog: unknown campaign '" + campaign + "'");
  }
  // Map nodes are stable and entries are never erased, so the reference
  // outlives the lock.
  return it->second;
}

SnapshotMeta CampaignCatalog::final_meta(const std::string& campaign) const {
  return entry(campaign).reader->snapshots().back();
}

const SnapshotReader& CampaignCatalog::reader(const std::string& campaign) const {
  return *entry(campaign).reader;
}

template <typename T, typename Fn>
std::shared_ptr<const T> CampaignCatalog::cached(Cache<T>& cache, const std::string& key,
                                                 unsigned artifact_cell, Fn compute) {
  std::shared_future<std::shared_ptr<const T>> future;
  std::packaged_task<std::shared_ptr<const T>()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache.find(key);
    if (it != cache.end()) {
      future = it->second;
    } else {
      task = std::packaged_task<std::shared_ptr<const T>()>(std::move(compute));
      future = task.get_future().share();
      cache.emplace(key, future);
    }
  }
  if (task.valid()) {
    obs::add(obs::Metric::svc_cache_misses, 1, artifact_cell);
    task();  // on this thread, lock released — racing callers wait below
    note_resident_bytes();
  } else {
    obs::add(obs::Metric::svc_cache_hits, 1, artifact_cell);
  }
  return future.get();  // rethrows a cached computation failure verbatim
}

std::shared_ptr<const std::vector<HostPosture>> CampaignCatalog::postures(
    const std::string& campaign) {
  return cached(posture_cache_, campaign, kCellPostures,
                [this, campaign]() -> std::shared_ptr<const std::vector<HostPosture>> {
    const CampaignEntry& e = entry(campaign);
    const std::string sidecar = posture_sketch_path(e.path);
    if (options_.use_sketches) {
      auto sketched =
          read_posture_sketch(sidecar, e.path, e.reader->file_fingerprint(),
                              e.reader->snapshots().back().host_count);
      if (sketched) {
        obs::add(obs::Metric::svc_cache_hits, 1, kCellSketch);
        return std::make_shared<const std::vector<HostPosture>>(*std::move(sketched));
      }
      obs::add(obs::Metric::svc_cache_misses, 1, kCellSketch);
    }
    ThreadPool pool(options_.analysis_threads);
    const ReaderRecordSource source(*e.reader);
    std::vector<HostPosture> postures = collect_postures(source, pool);
    if (options_.use_sketches && options_.write_sketches) {
      write_posture_sketch(sidecar, e.reader->file_fingerprint(), postures);
    }
    return std::make_shared<const std::vector<HostPosture>>(std::move(postures));
  });
}

std::shared_ptr<const StudyAnalysis> CampaignCatalog::study(const std::string& campaign) {
  return cached(study_cache_, campaign, kCellStudy,
                [this, campaign]() -> std::shared_ptr<const StudyAnalysis> {
    const CampaignEntry& e = entry(campaign);
    AnalysisOptions options;
    options.threads = options_.analysis_threads;
    return std::make_shared<const StudyAnalysis>(analyze_reader(*e.reader, options));
  });
}

std::shared_ptr<const CampaignDiff> CampaignCatalog::diff(const std::string& base,
                                                          const std::string& followup) {
  const std::string key = base + '\x1f' + followup;
  return cached(diff_cache_, key, kCellDiff,
                [this, base, followup]() -> std::shared_ptr<const CampaignDiff> {
    const SnapshotMeta base_week = final_meta(base);
    const SnapshotMeta followup_week = final_meta(followup);
    validate_campaign_chain({base_week, followup_week});
    // Cached postures + one match + one tally — byte-identical to
    // diff_campaigns over the same two files (which is exactly
    // collect + match + tally, see src/diff/diff.cpp).
    const auto b = postures(base);
    const auto f = postures(followup);
    CampaignDiff diff = tally_step(*b, *f, match_postures(*b, *f));
    diff.base_week = base_week;
    diff.followup_week = followup_week;
    return std::make_shared<const CampaignDiff>(std::move(diff));
  });
}

std::shared_ptr<const SeriesAnalysis> CampaignCatalog::series(const std::string& series) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(series);
  if (it == series_.end()) throw SnapshotError("catalog: unknown series '" + series + "'");
  if (!it->second.latest) {
    throw SnapshotError("catalog: series '" + series + "' holds " +
                        std::to_string(it->second.builder.size()) +
                        " member(s); an analysis needs >= 2");
  }
  obs::add(obs::Metric::svc_cache_hits, 1, kCellSeries);
  return it->second.latest;
}

std::size_t CampaignCatalog::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [name, e] : campaigns_) {
    (void)name;
    // The mapped (v6) or streamed (v5) snapshot payload, chunk index, and
    // dictionary — the bytes the resident reader pins.
    for (const SnapshotChunkInfo& chunk : e.reader->chunks()) bytes += chunk.payload_bytes;
    bytes += e.reader->chunks().size() * sizeof(SnapshotChunkInfo);
    bytes += e.reader->cert_count() * 64;  // dict entries + index estimate
  }
  for (const auto& [key, future] : posture_cache_) {
    (void)key;
    if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) continue;
    try {
      bytes += posture_vector_bytes(*future.get());
    } catch (const std::exception&) {
      // cached failures pin no postures
    }
  }
  for (const auto& [name, se] : series_) {
    (void)name;
    bytes += se.builder.resident_bytes();
    if (se.latest) bytes += sizeof(SeriesAnalysis);
  }
  return bytes;
}

void CampaignCatalog::note_resident_bytes() const {
  if (!obs::enabled()) return;
  obs::gauge_peak(obs::Metric::svc_resident_bytes, resident_bytes());
}

}  // namespace opcua_study::svc
