#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace opcua_study::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 4096;

struct Ring {
  std::vector<TraceRecord> buf;
  std::size_t next = 0;       // write cursor (wraps)
  std::uint64_t written = 0;  // total records ever written
  std::size_t capacity = kDefaultCapacity;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  // creation order
  std::vector<Ring*> free_list;
  std::size_t capacity = kDefaultCapacity;

  static TraceRegistry& instance() {
    static TraceRegistry* r = new TraceRegistry();  // leaked: outlives threads
    return *r;
  }

  Ring* acquire() {
    const std::lock_guard<std::mutex> lock(mu);
    if (!free_list.empty()) {
      Ring* ring = free_list.back();
      free_list.pop_back();
      return ring;
    }
    rings.push_back(std::make_unique<Ring>());
    rings.back()->capacity = capacity;
    return rings.back().get();
  }

  void release(Ring* ring) {
    const std::lock_guard<std::mutex> lock(mu);
    free_list.push_back(ring);
  }
};

struct RingLease {
  Ring* ring = nullptr;
  ~RingLease() {
    if (ring != nullptr) TraceRegistry::instance().release(ring);
  }
};

std::atomic<bool> g_trace_enabled{false};
thread_local RingLease t_ring;
thread_local std::int32_t t_week = TraceRecord::kNoScope;
thread_local std::int32_t t_shard = TraceRecord::kNoScope;

Ring& local_ring() {
  if (t_ring.ring == nullptr) t_ring.ring = TraceRegistry::instance().acquire();
  return *t_ring.ring;
}

}  // namespace

const char* trace_event_name(TraceEvent event) {
  switch (event) {
    case TraceEvent::campaign_begin: return "campaign_begin";
    case TraceEvent::sweep_complete: return "sweep_complete";
    case TraceEvent::wave_enqueued: return "wave_enqueued";
    case TraceEvent::host_complete: return "host_complete";
    case TraceEvent::campaign_end: return "campaign_end";
    case TraceEvent::unit_sealed: return "unit_sealed";
    case TraceEvent::unit_failed: return "unit_failed";
    case TraceEvent::query_executed: return "query_executed";
  }
  return "unknown";
}

bool trace_enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool on) { g_trace_enabled.store(on, std::memory_order_relaxed); }

void trace_reset() {
  TraceRegistry& registry = TraceRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) {
    ring->buf.clear();
    ring->next = 0;
    ring->written = 0;
  }
}

void set_trace_capacity(std::size_t events_per_thread) {
  TraceRegistry& registry = TraceRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  registry.capacity = std::max<std::size_t>(1, events_per_thread);
}

void trace(TraceEvent event, std::uint64_t t_us, std::uint32_t ip, std::uint16_t port,
           std::uint64_t a, std::uint64_t b) {
  if (!trace_enabled()) return;
  Ring& ring = local_ring();
  TraceRecord record;
  record.t_us = t_us;
  record.week = t_week;
  record.shard = t_shard;
  record.event = event;
  record.ip = ip;
  record.port = port;
  record.a = a;
  record.b = b;
  if (ring.buf.size() < ring.capacity) {
    ring.buf.push_back(record);
  } else {
    ring.buf[ring.next] = record;  // overwrite the oldest
    add(Metric::trace_events_dropped);
  }
  ring.next = (ring.next + 1) % ring.capacity;
  ++ring.written;
}

std::vector<TraceRecord> trace_collect() {
  std::vector<TraceRecord> events;
  TraceRegistry& registry = TraceRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) {
    // Oldest-first within the ring: once wrapped, the write cursor points
    // at the oldest surviving record.
    const std::size_t n = ring->buf.size();
    const std::size_t start = ring->written > n ? ring->next : 0;
    for (std::size_t i = 0; i < n; ++i) events.push_back(ring->buf[(start + i) % n]);
  }
  // A (week, shard) unit is scanned by one thread, so each scope group
  // lives in one ring; the stable sort orders groups deterministically
  // while per-ring insertion order carries each group's own timeline.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceRecord& x, const TraceRecord& y) {
                     return std::make_pair(x.week, x.shard) < std::make_pair(y.week, y.shard);
                   });
  return events;
}

std::string trace_jsonl() {
  std::string out;
  for (const TraceRecord& e : trace_collect()) {
    out += "{\"t_us\":" + std::to_string(e.t_us);
    if (e.week != TraceRecord::kNoScope) out += ",\"week\":" + std::to_string(e.week);
    if (e.shard != TraceRecord::kNoScope) out += ",\"shard\":" + std::to_string(e.shard);
    out += std::string(",\"event\":\"") + trace_event_name(e.event) + "\"";
    if (e.ip != 0) {
      out += ",\"ip\":\"" + std::to_string(e.ip >> 24) + "." + std::to_string((e.ip >> 16) & 0xff) +
             "." + std::to_string((e.ip >> 8) & 0xff) + "." + std::to_string(e.ip & 0xff) + "\"";
    }
    if (e.port != 0) out += ",\"port\":" + std::to_string(e.port);
    out += ",\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b) + "}\n";
  }
  return out;
}

bool dump_trace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << trace_jsonl();
  out.close();
  return static_cast<bool>(out);
}

TraceScope::TraceScope(std::int32_t week, std::int32_t shard)
    : prev_week_(t_week), prev_shard_(t_shard) {
  if (week != TraceRecord::kNoScope) t_week = week;
  if (shard != TraceRecord::kNoScope) t_shard = shard;
}

TraceScope::~TraceScope() {
  t_week = prev_week_;
  t_shard = prev_shard_;
}

}  // namespace opcua_study::obs
