#include "obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace opcua_study::obs {

namespace {

LogLevel default_level() {
  if (const char* env = std::getenv("OPCUA_STUDY_LOG")) {
    if (std::strcmp(env, "error") == 0) return LogLevel::error;
    if (std::strcmp(env, "warn") == 0) return LogLevel::warn;
    if (std::strcmp(env, "info") == 0) return LogLevel::info;
    if (std::strcmp(env, "debug") == 0) return LogLevel::debug;
  }
  return std::getenv("CI") != nullptr ? LogLevel::warn : LogLevel::info;
}

std::atomic<int> g_level{static_cast<int>(default_level())};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::error: return "error";
    case LogLevel::warn: return "warn";
    case LogLevel::info: return "info";
    case LogLevel::debug: return "debug";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[%s] ", tag(level));
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace opcua_study::obs
