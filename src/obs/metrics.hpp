// Deterministic telemetry: sharded per-thread metrics with a fixed,
// compile-time metric table.
//
// Determinism model. Every metric is tagged `stable` or `operational`.
// Stable metrics are integer counters / fixed-bucket histograms whose
// increments derive only from the simulated world (per-host records,
// endpoint-keyed fault draws, simulated-clock durations) — their aggregated
// totals are identical for any thread count, max_in_flight window, or shard
// layout, and the observability tests pin that down. Operational metrics
// (in-flight peaks, wall-clock timings, pool widths) describe the real
// execution and are excluded from the stable exposition by default.
//
// Aggregation. Each thread owns a shard of plain relaxed-atomic slots; the
// collector merges shards in creation order (counters and histogram buckets
// sum, gauges take the max), so the merged sample is order-independent for
// everything stable. Shards are leased from a free list when threads start
// and returned when they exit — fork-join pools that spawn fresh threads
// per call reuse the same storage instead of growing the registry.
//
// Cost. Every instrument site is `if (!obs::enabled()) return;` on one
// relaxed atomic load — no locks, no allocation, no hashing. Telemetry is
// off by default; enabling it must never change a snapshot byte (pinned by
// tests/test_observability.cpp).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace opcua_study::obs {

enum class MetricKind : std::uint8_t { counter, gauge, histogram };
enum class Stability : std::uint8_t { stable, operational };

/// Fixed metric ids. Adding a metric means one enum entry plus one
/// descriptor row below — offsets and storage are computed at compile time.
enum class Metric : std::uint16_t {
  // -- stable: the deterministic account of a campaign --------------------
  scan_tasks_launched,    // counter, per protocol
  scan_task_wakeups,      // counter: ProbeTask::step() calls
  scan_completion_us,     // histogram, per protocol: task-local sim duration
  grab_outcome,           // counter, protocol x ProbeOutcome (kept records)
  grab_retries,           // counter, per protocol (kept records)
  grab_fault_events,      // counter, per protocol (kept records)
  grab_bytes_sent,        // counter, per protocol (kept records)
  phase_connect_us,       // histogram, per protocol: TCP/TLS connect cost
  phase_hello_us,         // histogram, per protocol: hello exchange cost
  phase_endpoints_us,     // histogram: OPC UA GetEndpoints cost
  phase_auth_probe_us,    // histogram, per protocol: secure/auth probe cost
  net_faults_injected,    // counter, per fault class
  snapshot_chunks_written,
  snapshot_bytes_written,  // chunk header + payload bytes
  snapshot_chunks_read,
  snapshot_bytes_read,
  key_cache_hits,
  keys_generated,
  // -- operational: real-execution shape, excluded from stable exports ----
  scheduler_in_flight_peak,  // gauge: peak live tasks in one scheduler
  pool_jobs,                 // counter: ThreadPool::parallel_for calls
  pool_iterations,           // counter: indices executed by the pool
  pool_width_peak,           // gauge: widest worker set observed
  snapshot_write_wall_us,    // counter: wall-clock µs inside flush_chunk
  snapshot_read_wall_us,     // counter: wall-clock µs inside read_chunk
  analysis_pass_wall_us,     // counter: analyze_source wall-clock µs
  diff_pass_wall_us,         // counter: diff_campaigns wall-clock µs
  series_pass_wall_us,       // counter: analyze_series wall-clock µs
  trace_events_dropped,      // counter: flight-recorder ring overflow
  svc_queries,               // counter, per query kind: requests executed
  svc_queries_rejected,      // counter: admission-control rejections
  svc_cache_hits,            // counter, per artifact class
  svc_cache_misses,          // counter, per artifact class
  svc_query_us,              // histogram, per query kind: wall-clock latency
  svc_resident_bytes,        // gauge: peak resident catalog bytes
  kCount,
};

inline constexpr std::size_t kMetricCount = static_cast<std::size_t>(Metric::kCount);

// Cell label sets (Prometheus label value / JSON key per cell).
inline constexpr const char* kProtocolCells[] = {"opcua", "mqtt-tls"};
inline constexpr const char* kOutcomeCells[] = {
    "opcua/complete",    "opcua/truncated",    "opcua/degraded",    "opcua/unreachable",
    "mqtt-tls/complete", "mqtt-tls/truncated", "mqtt-tls/degraded", "mqtt-tls/unreachable",
};
inline constexpr const char* kFaultCells[] = {"syn_drop", "listener_flap", "reset",
                                              "stall",    "truncate",      "timeout"};
// Study-service dimensions: query kinds (QueryRequest::Kind order) and the
// cached-artifact classes the catalog accounts hits/misses against.
inline constexpr const char* kQueryKindCells[] = {"catalog", "posture", "study", "diff",
                                                  "series"};
inline constexpr const char* kArtifactCells[] = {"sketch", "postures", "study", "diff",
                                                 "series"};

struct MetricDef {
  const char* name;
  MetricKind kind;
  Stability stability;
  unsigned cells;                  // label arity; 1 = unlabeled
  const char* const* cell_names;   // nullptr when cells == 1
  const char* help;
};

inline constexpr MetricDef kMetricDefs[kMetricCount] = {
    {"scan_tasks_launched", MetricKind::counter, Stability::stable, 2, kProtocolCells,
     "probe tasks launched by the scan scheduler"},
    {"scan_task_wakeups", MetricKind::counter, Stability::stable, 1, nullptr,
     "probe task step() wake-ups on the event heap"},
    {"scan_completion_us", MetricKind::histogram, Stability::stable, 2, kProtocolCells,
     "per-task grab duration on the simulated clock (task-local)"},
    {"grab_outcome", MetricKind::counter, Stability::stable, 8, kOutcomeCells,
     "kept host records by protocol and ProbeOutcome grade"},
    {"grab_retries", MetricKind::counter, Stability::stable, 2, kProtocolCells,
     "retries recorded on kept host records"},
    {"grab_fault_events", MetricKind::counter, Stability::stable, 2, kProtocolCells,
     "injected-fault events recorded on kept host records"},
    {"grab_bytes_sent", MetricKind::counter, Stability::stable, 2, kProtocolCells,
     "application-layer bytes sent, summed over kept host records"},
    {"phase_connect_us", MetricKind::histogram, Stability::stable, 2, kProtocolCells,
     "simulated connect/handshake cost per successful connect"},
    {"phase_hello_us", MetricKind::histogram, Stability::stable, 2, kProtocolCells,
     "simulated hello-exchange cost"},
    {"phase_endpoints_us", MetricKind::histogram, Stability::stable, 1, nullptr,
     "simulated OPC UA GetEndpoints cost"},
    {"phase_auth_probe_us", MetricKind::histogram, Stability::stable, 2, kProtocolCells,
     "simulated secure-channel/auth probe cost per concluded probe"},
    {"net_faults_injected", MetricKind::counter, Stability::stable, 6, kFaultCells,
     "faults injected by the netsim fault plan, by class"},
    {"snapshot_chunks_written", MetricKind::counter, Stability::stable, 1, nullptr,
     "snapshot chunks sealed by SnapshotWriter"},
    {"snapshot_bytes_written", MetricKind::counter, Stability::stable, 1, nullptr,
     "chunk bytes (header + payload) written by SnapshotWriter"},
    {"snapshot_chunks_read", MetricKind::counter, Stability::stable, 1, nullptr,
     "snapshot chunks decoded or column-mapped by SnapshotReader"},
    {"snapshot_bytes_read", MetricKind::counter, Stability::stable, 1, nullptr,
     "chunk payload bytes served by SnapshotReader"},
    {"key_cache_hits", MetricKind::counter, Stability::stable, 1, nullptr,
     "KeyFactory cache hits"},
    {"keys_generated", MetricKind::counter, Stability::stable, 1, nullptr,
     "RSA key pairs generated by KeyFactory"},
    {"scheduler_in_flight_peak", MetricKind::gauge, Stability::operational, 1, nullptr,
     "peak concurrently-live probe tasks in one scheduler"},
    {"pool_jobs", MetricKind::counter, Stability::operational, 1, nullptr,
     "ThreadPool::parallel_for invocations"},
    {"pool_iterations", MetricKind::counter, Stability::operational, 1, nullptr,
     "indices executed through the thread pool"},
    {"pool_width_peak", MetricKind::gauge, Stability::operational, 1, nullptr,
     "widest concurrent worker set a pool job used"},
    {"snapshot_write_wall_us", MetricKind::counter, Stability::operational, 1, nullptr,
     "wall-clock microseconds spent sealing snapshot chunks"},
    {"snapshot_read_wall_us", MetricKind::counter, Stability::operational, 1, nullptr,
     "wall-clock microseconds spent decoding snapshot chunks"},
    {"analysis_pass_wall_us", MetricKind::counter, Stability::operational, 1, nullptr,
     "wall-clock microseconds per analyze_source pass"},
    {"diff_pass_wall_us", MetricKind::counter, Stability::operational, 1, nullptr,
     "wall-clock microseconds per campaign diff"},
    {"series_pass_wall_us", MetricKind::counter, Stability::operational, 1, nullptr,
     "wall-clock microseconds per series analysis"},
    {"trace_events_dropped", MetricKind::counter, Stability::operational, 1, nullptr,
     "flight-recorder events overwritten by ring overflow"},
    {"svc_queries", MetricKind::counter, Stability::operational, 5, kQueryKindCells,
     "study-service queries executed, by kind"},
    {"svc_queries_rejected", MetricKind::counter, Stability::operational, 1, nullptr,
     "study-service queries refused by admission control"},
    {"svc_cache_hits", MetricKind::counter, Stability::operational, 5, kArtifactCells,
     "catalog artifact-cache hits, by artifact class"},
    {"svc_cache_misses", MetricKind::counter, Stability::operational, 5, kArtifactCells,
     "catalog artifact-cache misses (artifact computed), by artifact class"},
    {"svc_query_us", MetricKind::histogram, Stability::operational, 5, kQueryKindCells,
     "study-service query latency (wall clock)"},
    {"svc_resident_bytes", MetricKind::gauge, Stability::operational, 1, nullptr,
     "peak resident bytes held by the campaign catalog"},
};

inline constexpr const MetricDef& metric_def(Metric m) {
  return kMetricDefs[static_cast<std::size_t>(m)];
}

// Shared fixed histogram bounds (microseconds): 100 µs .. 1000 s, one
// decade per bucket, plus the implicit +Inf bucket. Fixed bounds keep
// bucket counts order-independent sums, i.e. stable.
inline constexpr std::uint64_t kHistBounds[] = {
    100,        1'000,       10'000,        100'000,
    1'000'000,  10'000'000,  100'000'000,   1'000'000'000,
};
inline constexpr std::size_t kHistBucketCount = std::size(kHistBounds);
// Per-cell histogram storage: finite buckets, +Inf bucket, sum, count.
inline constexpr std::size_t kHistStride = kHistBucketCount + 3;

constexpr std::size_t slot_count(const MetricDef& def) {
  return def.kind == MetricKind::histogram ? def.cells * kHistStride : def.cells;
}

inline constexpr auto kSlotOffsets = [] {
  std::array<std::size_t, kMetricCount + 1> offsets{};
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    offsets[i + 1] = offsets[i] + slot_count(kMetricDefs[i]);
  }
  return offsets;
}();
inline constexpr std::size_t kSlotCount = kSlotOffsets[kMetricCount];

namespace detail {

struct Shard {
  std::array<std::atomic<std::uint64_t>, kSlotCount> slots{};
};

extern std::atomic<bool> g_enabled;

/// The calling thread's shard; leases one from the registry on first use.
Shard& local_shard();

}  // namespace detail

inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on);

/// Zero every slot of every shard (leased and free alike). Call between
/// runs when comparing samples; safe only while no instrumented work runs.
void reset();

inline void add(Metric m, std::uint64_t delta = 1, unsigned cell = 0) {
  if (!enabled()) return;
  detail::local_shard()
      .slots[kSlotOffsets[static_cast<std::size_t>(m)] + cell]
      .fetch_add(delta, std::memory_order_relaxed);
}

/// Gauge as a high-water mark: merged value is the max over shards.
inline void gauge_peak(Metric m, std::uint64_t value, unsigned cell = 0) {
  if (!enabled()) return;
  auto& slot = detail::local_shard().slots[kSlotOffsets[static_cast<std::size_t>(m)] + cell];
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur && !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

inline void observe_us(Metric m, std::uint64_t us, unsigned cell = 0) {
  if (!enabled()) return;
  auto* base = &detail::local_shard()
                    .slots[kSlotOffsets[static_cast<std::size_t>(m)] + cell * kHistStride];
  std::size_t bucket = kHistBucketCount;  // +Inf
  for (std::size_t b = 0; b < kHistBucketCount; ++b) {
    if (us <= kHistBounds[b]) {
      bucket = b;
      break;
    }
  }
  base[bucket].fetch_add(1, std::memory_order_relaxed);
  base[kHistBucketCount + 1].fetch_add(us, std::memory_order_relaxed);  // sum
  base[kHistBucketCount + 2].fetch_add(1, std::memory_order_relaxed);   // count
}

/// RAII wall-clock timer for the operational `*_wall_us` counters: adds the
/// elapsed microseconds on destruction. Skips the clock read entirely when
/// telemetry is disabled, so instrumented passes stay zero-cost.
class WallTimer {
 public:
  explicit WallTimer(Metric m)
      : metric_(m), on_(enabled()),
        start_(on_ ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{}) {}
  WallTimer(const WallTimer&) = delete;
  WallTimer& operator=(const WallTimer&) = delete;
  ~WallTimer() {
    if (!on_) return;
    add(metric_, static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                                std::chrono::steady_clock::now() - start_)
                                                .count()));
  }

 private:
  Metric metric_;
  bool on_;
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------------- sampling --

struct HistogramValue {
  std::array<std::uint64_t, kHistBucketCount + 1> buckets{};  // finite + Inf
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

/// One metric's merged value: `cells` for counters/gauges, `hists` for
/// histograms (always sized to the descriptor's cell arity).
struct MetricValue {
  Metric id = Metric::kCount;
  std::vector<std::uint64_t> cells;
  std::vector<HistogramValue> hists;
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : cells) t += v;
    return t;
  }
};

/// Aggregated sample of every metric, in metric-id order; shards merge in
/// creation order (sum / max), so stable metrics compare bit-for-bit.
struct MetricsSample {
  std::vector<MetricValue> metrics;  // size kMetricCount, indexed by id
  const MetricValue& operator[](Metric m) const {
    return metrics[static_cast<std::size_t>(m)];
  }
};

MetricsSample collect();

}  // namespace opcua_study::obs
