#include "obs/metrics.hpp"

#include <memory>
#include <mutex>

namespace opcua_study::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

struct Registry {
  std::mutex mu;
  // Creation order; shards are never destroyed while the process lives, so
  // raw pointers handed to threads stay valid past collect()/reset().
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<Shard*> free_list;

  static Registry& instance() {
    static Registry* r = new Registry();  // leaked: threads may outlive statics
    return *r;
  }

  Shard* acquire() {
    const std::lock_guard<std::mutex> lock(mu);
    if (!free_list.empty()) {
      Shard* shard = free_list.back();
      free_list.pop_back();
      return shard;
    }
    shards.push_back(std::make_unique<Shard>());
    return shards.back().get();
  }

  void release(Shard* shard) {
    const std::lock_guard<std::mutex> lock(mu);
    free_list.push_back(shard);  // counts persist; storage is reused only
  }
};

/// RAII lease: a shard per thread, returned to the free list on thread
/// exit so fork-join pools (fresh std::threads per call) reuse storage.
struct ShardLease {
  Shard* shard = nullptr;
  ~ShardLease() {
    if (shard != nullptr) Registry::instance().release(shard);
  }
};

thread_local ShardLease t_lease;

}  // namespace

Shard& local_shard() {
  if (t_lease.shard == nullptr) t_lease.shard = Registry::instance().acquire();
  return *t_lease.shard;
}

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  detail::Registry& registry = detail::Registry::instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& shard : registry.shards) {
    for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
  }
}

MetricsSample collect() {
  MetricsSample sample;
  sample.metrics.resize(kMetricCount);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    MetricValue& value = sample.metrics[i];
    value.id = static_cast<Metric>(i);
    const MetricDef& def = kMetricDefs[i];
    if (def.kind == MetricKind::histogram) {
      value.hists.resize(def.cells);
    } else {
      value.cells.assign(def.cells, 0);
    }
  }

  detail::Registry& registry = detail::Registry::instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  // Merge in shard creation order. Counters and buckets are sums and
  // gauges are maxes, so the merged sample is order-independent — the
  // fixed order just makes the walk itself deterministic.
  for (const auto& shard : registry.shards) {
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      const MetricDef& def = kMetricDefs[i];
      const std::size_t base = kSlotOffsets[i];
      MetricValue& value = sample.metrics[i];
      if (def.kind == MetricKind::histogram) {
        for (unsigned c = 0; c < def.cells; ++c) {
          HistogramValue& h = value.hists[c];
          const std::size_t cell_base = base + c * kHistStride;
          for (std::size_t b = 0; b <= kHistBucketCount; ++b) {
            h.buckets[b] += shard->slots[cell_base + b].load(std::memory_order_relaxed);
          }
          h.sum += shard->slots[cell_base + kHistBucketCount + 1].load(std::memory_order_relaxed);
          h.count +=
              shard->slots[cell_base + kHistBucketCount + 2].load(std::memory_order_relaxed);
        }
      } else if (def.kind == MetricKind::gauge) {
        for (unsigned c = 0; c < def.cells; ++c) {
          const std::uint64_t v = shard->slots[base + c].load(std::memory_order_relaxed);
          if (v > value.cells[c]) value.cells[c] = v;
        }
      } else {
        for (unsigned c = 0; c < def.cells; ++c) {
          value.cells[c] += shard->slots[base + c].load(std::memory_order_relaxed);
        }
      }
    }
  }
  return sample;
}

}  // namespace opcua_study::obs
