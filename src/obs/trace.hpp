// Flight recorder: a bounded, per-thread ring buffer of structured scan
// events, timestamped on the deterministic simulated clock.
//
// Every event carries the (week, shard) scope installed by the runner via
// TraceScope (thread-local, RAII). A (week, shard) unit is always scanned
// by exactly one thread, so its events land in one ring in program order;
// the collected dump stable-sorts events by (week, shard) while preserving
// per-ring insertion order — for a fixed configuration the dump is
// byte-reproducible run over run. (Timelines legitimately differ across
// max_in_flight windows; the cross-layout invariant is the metrics plane,
// not the trace.)
//
// The ring is bounded: when a thread records more than the per-thread
// capacity, the oldest events are overwritten and `trace_events_dropped`
// counts the loss. Like metrics, recording is off by default and each
// record site costs one relaxed load when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace opcua_study::obs {

enum class TraceEvent : std::uint8_t {
  campaign_begin,   // a = week
  sweep_complete,   // a = probes sent, b = open hosts
  wave_enqueued,    // a = referenced targets queued (follow-references wave)
  host_complete,    // ip/port set, a = ProbeOutcome, b = retries
  campaign_end,     // a = kept host records
  unit_sealed,      // a = kept hosts, b = probes sent (checkpoint segment sealed)
  unit_failed,      // a = week, b = shard (checkpoint worker threw)
  query_executed,   // a = QueryRequest::Kind, b = response bytes (study service)
};

const char* trace_event_name(TraceEvent event);

struct TraceRecord {
  std::uint64_t t_us = 0;  // simulated clock, µs since the campaign start day
  std::int32_t week = kNoScope;
  std::int32_t shard = kNoScope;
  TraceEvent event = TraceEvent::campaign_begin;
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  static constexpr std::int32_t kNoScope = INT32_MIN;
  bool operator==(const TraceRecord&) const = default;
};

bool trace_enabled();
void set_trace_enabled(bool on);

/// Drop every buffered event (all rings); keeps capacity and scopes.
void trace_reset();

/// Per-thread ring capacity for rings leased *after* the call.
void set_trace_capacity(std::size_t events_per_thread);

void trace(TraceEvent event, std::uint64_t t_us, std::uint32_t ip = 0, std::uint16_t port = 0,
           std::uint64_t a = 0, std::uint64_t b = 0);

/// Every buffered event, stable-sorted by (week, shard) with per-ring
/// insertion order preserved inside each scope.
std::vector<TraceRecord> trace_collect();

/// The collected trace as JSON lines (one event per line) — the flight
/// recorder's dump format, byte-reproducible for a fixed configuration.
std::string trace_jsonl();

/// Dump the trace to `path` (truncating). Returns false on I/O failure —
/// callers on crash paths must not throw over the original error.
bool dump_trace(const std::string& path);

/// RAII (week, shard) scope for events recorded by this thread. Pass
/// TraceRecord::kNoScope to inherit the enclosing scope's value.
class TraceScope {
 public:
  TraceScope(std::int32_t week, std::int32_t shard);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::int32_t prev_week_;
  std::int32_t prev_shard_;
};

}  // namespace opcua_study::obs
