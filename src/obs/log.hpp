// Leveled log sink for the tools around the library (benches, examples,
// long-running studies). Replaces the ad-hoc stderr progress prints.
//
// Default level: `warn` when the CI environment variable is set (GitHub
// Actions exports CI=true — progress chatter stays out of CI logs), `info`
// otherwise. OPCUA_STUDY_LOG=error|warn|info|debug overrides either way,
// and examples expose --verbose (→ debug) on top.
#pragma once

#include <cstdarg>

namespace opcua_study::obs {

enum class LogLevel : int { error = 0, warn = 1, info = 2, debug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style message to stderr, prefixed with its level tag; dropped
/// entirely when `level` is below the sink's threshold.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace opcua_study::obs
