// Deterministic PRNG used everywhere randomness is needed.
//
// Reproducibility is a hard requirement of the study pipeline: the same
// seed must produce bit-identical populations, certificates and scan
// results across runs and machines, so we do not use std::mt19937's
// distribution functions (implementation-defined) nor std::random_device.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace opcua_study {

/// splitmix64: used for seeding and hashing seed strings.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit hash for deriving child seeds from labels.
std::uint64_t hash64(std::string_view s);

/// xoshiro256** — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  /// Derive a child generator from a label. Children are independent
  /// streams: population, certificate serials, scan jitter etc. never
  /// interleave, keeping every subsystem reproducible in isolation.
  Rng child(std::string_view label) const;

  std::uint64_t next();
  /// Uniform in [0, bound) without modulo bias.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);
  /// Uniform double in [0, 1).
  double real();
  bool chance(double p);

  void fill(std::uint8_t* out, std::size_t n);
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace opcua_study
