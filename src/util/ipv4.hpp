// IPv4 address helpers for the simulated Internet.
#pragma once

#include <cstdint>
#include <string>

namespace opcua_study {

using Ipv4 = std::uint32_t;  // host byte order

std::string format_ipv4(Ipv4 addr);
Ipv4 parse_ipv4(const std::string& dotted);
constexpr Ipv4 make_ipv4(unsigned a, unsigned b, unsigned c, unsigned d) {
  return (static_cast<Ipv4>(a) << 24) | (static_cast<Ipv4>(b) << 16) |
         (static_cast<Ipv4>(c) << 8) | static_cast<Ipv4>(d);
}

/// CIDR prefix, e.g. 10.0.0.0/8. Used for scan universes, exclusion lists
/// and the AS database.
struct Cidr {
  Ipv4 base = 0;
  int prefix_len = 32;

  bool contains(Ipv4 addr) const {
    if (prefix_len == 0) return true;
    const Ipv4 mask = prefix_len >= 32 ? ~Ipv4{0} : ~((Ipv4{1} << (32 - prefix_len)) - 1);
    return (addr & mask) == (base & mask);
  }
  std::uint64_t size() const { return std::uint64_t{1} << (32 - prefix_len); }
  Ipv4 first() const {
    const Ipv4 mask = prefix_len >= 32 ? ~Ipv4{0} : (prefix_len == 0 ? 0 : ~((Ipv4{1} << (32 - prefix_len)) - 1));
    return base & mask;
  }
};

Cidr parse_cidr(const std::string& text);  // "a.b.c.d/len"
std::string format_cidr(const Cidr& c);

}  // namespace opcua_study
