#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace opcua_study {

ThreadPool::ThreadPool(int threads)
    : size_(threads > 0 ? threads
                        : std::max(1, static_cast<int>(std::thread::hardware_concurrency()))) {}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const int workers = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(size_), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Fork-join per call: the jobs routed here (RSA keygen, product-tree
  // levels) cost milliseconds to seconds per index, so thread start-up is
  // noise and a persistent worker set would only add lifecycle complexity.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::atomic<bool> error_claimed{false};
  auto body = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        if (!error_claimed.exchange(true)) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(body);
  body();  // the caller is worker zero
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace opcua_study
