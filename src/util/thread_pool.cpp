#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace opcua_study {

ThreadPool::ThreadPool(int threads)
    : size_(threads > 0 ? threads
                        : std::max(1, static_cast<int>(std::thread::hardware_concurrency()))) {}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  last_error_index_.store(kNoError, std::memory_order_relaxed);
  const int workers = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(size_), n));
  obs::add(obs::Metric::pool_jobs);
  obs::add(obs::Metric::pool_iterations, n);
  obs::gauge_peak(obs::Metric::pool_width_peak, static_cast<std::uint64_t>(workers));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        last_error_index_.store(i, std::memory_order_relaxed);
        throw;
      }
    }
    return;
  }

  // Fork-join per call: the jobs routed here (RSA keygen, product-tree
  // levels) cost milliseconds to seconds per index, so thread start-up is
  // noise and a persistent worker set would only add lifecycle complexity.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::atomic<bool> error_claimed{false};
  auto body = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        if (!error_claimed.exchange(true)) {
          first_error = std::current_exception();
          last_error_index_.store(i, std::memory_order_relaxed);
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(body);
  body();  // the caller is worker zero
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_merged(std::size_t n, const std::function<void(std::size_t)>& fn,
                                     const std::function<void(std::size_t)>& merge) const {
  if (n == 0) return;
  if (size_ <= 1 || n == 1) {
    last_error_index_.store(kNoError, std::memory_order_relaxed);
    obs::add(obs::Metric::pool_jobs);
    obs::add(obs::Metric::pool_iterations, n);
    obs::gauge_peak(obs::Metric::pool_width_peak, 1);
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
        merge(i);
      } catch (...) {
        last_error_index_.store(i, std::memory_order_relaxed);
        throw;
      }
    }
    return;
  }

  // Whichever worker completes an index takes the merge lock and drains
  // the contiguous completed prefix. Merges are serialized and strictly
  // ascending, so the merged state evolves exactly as in a sequential
  // pass; the last index to complete drains whatever remains, so by the
  // time parallel_for returns every index has been merged. next_merge
  // advances *before* the call and a throwing merge poisons the drain, so
  // even on failure no index is merged twice — parallel_for rethrows and
  // the partial merge is abandoned with the rest of the computation.
  std::vector<char> done(n, 0);
  std::size_t next_merge = 0;
  bool merge_failed = false;
  std::size_t merge_error_index = kNoError;  // guarded by merge_mutex
  std::mutex merge_mutex;
  try {
    parallel_for(n, [&](std::size_t i) {
      fn(i);
      const std::lock_guard<std::mutex> lock(merge_mutex);
      done[i] = 1;
      if (merge_failed) return;
      while (next_merge < n && done[next_merge]) {
        const std::size_t index = next_merge++;
        try {
          merge(index);
        } catch (...) {
          merge_failed = true;
          merge_error_index = index;
          throw;
        }
      }
    });
  } catch (...) {
    // A merge throw surfaces out of whichever iteration drained the prefix;
    // report the index that was actually being merged, not the drainer.
    if (merge_error_index != kNoError) {
      last_error_index_.store(merge_error_index, std::memory_order_relaxed);
    }
    throw;
  }
}

}  // namespace opcua_study
