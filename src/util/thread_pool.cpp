#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace opcua_study {

ThreadPool::ThreadPool(int threads)
    : size_(threads > 0 ? threads
                        : std::max(1, static_cast<int>(std::thread::hardware_concurrency()))) {}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const int workers = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(size_), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Fork-join per call: the jobs routed here (RSA keygen, product-tree
  // levels) cost milliseconds to seconds per index, so thread start-up is
  // noise and a persistent worker set would only add lifecycle complexity.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::atomic<bool> error_claimed{false};
  auto body = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        if (!error_claimed.exchange(true)) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(body);
  body();  // the caller is worker zero
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_merged(std::size_t n, const std::function<void(std::size_t)>& fn,
                                     const std::function<void(std::size_t)>& merge) const {
  if (n == 0) return;
  if (size_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
      merge(i);
    }
    return;
  }

  // Whichever worker completes an index takes the merge lock and drains
  // the contiguous completed prefix. Merges are serialized and strictly
  // ascending, so the merged state evolves exactly as in a sequential
  // pass; the last index to complete drains whatever remains, so by the
  // time parallel_for returns every index has been merged. next_merge
  // advances *before* the call and a throwing merge poisons the drain, so
  // even on failure no index is merged twice — parallel_for rethrows and
  // the partial merge is abandoned with the rest of the computation.
  std::vector<char> done(n, 0);
  std::size_t next_merge = 0;
  bool merge_failed = false;
  std::mutex merge_mutex;
  parallel_for(n, [&](std::size_t i) {
    fn(i);
    const std::lock_guard<std::mutex> lock(merge_mutex);
    done[i] = 1;
    if (merge_failed) return;
    while (next_merge < n && done[next_merge]) {
      const std::size_t index = next_merge++;
      try {
        merge(index);
      } catch (...) {
        merge_failed = true;
        throw;
      }
    }
  });
}

}  // namespace opcua_study
