#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace opcua_study {

std::string to_hex(std::span<const std::uint8_t> data);
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace opcua_study
