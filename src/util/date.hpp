// Civil-date arithmetic for the study calendar.
//
// The paper's measurements are weekly snapshots between 2020-02-09 and
// 2020-08-30; certificate validity handling (NotBefore / NotAfter) and the
// longitudinal analysis need exact date arithmetic. We use days-since-epoch
// (1970-01-01) with Howard Hinnant's civil-date algorithms; no time zones
// (the study operates at day granularity).
#pragma once

#include <cstdint>
#include <string>

namespace opcua_study {

struct CivilDate {
  int year = 1970;
  unsigned month = 1;  // 1..12
  unsigned day = 1;    // 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since 1970-01-01 (can be negative).
std::int64_t days_from_civil(const CivilDate& d);
CivilDate civil_from_days(std::int64_t days);

/// "YYYY-MM-DD"
std::string format_date(const CivilDate& d);
CivilDate parse_date(const std::string& s);

/// 100-nanosecond intervals since 1601-01-01 (OPC UA / Windows FILETIME),
/// the wire format of OPC UA DateTime values and X.509-adjacent timestamps.
std::int64_t filetime_from_days(std::int64_t days_since_epoch);
std::int64_t days_from_filetime(std::int64_t filetime);

/// The eight measurement dates of the paper (2020-02-09 .. 2020-08-30).
inline constexpr int kNumMeasurements = 8;
CivilDate measurement_date(int index);
std::int64_t measurement_days(int index);

}  // namespace opcua_study
