#include "util/rng.hpp"

#include <stdexcept>

namespace opcua_study {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::child(std::string_view label) const {
  return Rng(seed_ ^ (hash64(label) * 0x9e3779b97f4a7c15ULL + 1));
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range lo>hi");
  return lo + below(hi - lo + 1);
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) { return real() < p; }

void Rng::fill(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  fill(out.data(), n);
  return out;
}

}  // namespace opcua_study
