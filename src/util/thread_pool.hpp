// Fork-join data parallelism for the crypto fast path.
//
// Everything parallelized through this pool is *deterministic by
// construction*: callers only hand it pure functions writing disjoint
// output slots (per-label RSA key streams, product-tree nodes, remainder
// -tree reductions), so results are independent of thread count and
// scheduling. The pool itself therefore needs no ordering guarantees —
// workers pull indices from an atomic counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace opcua_study {

class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency(); 1 runs
  /// every parallel_for inline on the caller (no threads spawned at all).
  explicit ThreadPool(int threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Run fn(i) for every i in [0, n); blocks until all iterations finish.
  /// n == 0 is a no-op (no threads spawned, no callbacks invoked).
  /// Iterations are claimed from an atomic counter, so big-integer work of
  /// wildly different sizes (tree levels mix megabit roots with kilobit
  /// leaves) load-balances without an explicit schedule. If any iteration
  /// throws, the remaining ones are skipped and the first exception is
  /// rethrown on the caller *with its original type* — callers that need
  /// the failing index in an error message read last_error_index() and
  /// re-wrap at their own layer.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// parallel_for with an ordered early drain: fn(i) runs in parallel as
  /// above, and merge(i) is called exactly once per index — serialized,
  /// in strictly ascending order, as soon as the contiguous prefix of
  /// completed indices reaches i. The merge order is therefore identical
  /// to a sequential pass for any thread count, while a merged index's
  /// working state can be released long before the last index finishes
  /// (the streaming aggregator's peak-memory lever: chunk partials die as
  /// the completed prefix advances instead of all coexisting until the
  /// end). When every iteration completes, every index has been merged;
  /// if fn or merge throws, the drain stops (no index merges twice) and
  /// the first exception is rethrown on the caller.
  void parallel_for_merged(std::size_t n, const std::function<void(std::size_t)>& fn,
                           const std::function<void(std::size_t)>& merge) const;

  /// Index of the iteration whose exception the most recent parallel_for /
  /// parallel_for_merged on this pool rethrew, or kNoError if it completed
  /// cleanly. Valid only after the call returns (throwing or not) — this is
  /// for building "chunk N failed" messages, not for cross-thread peeking.
  static constexpr std::size_t kNoError = static_cast<std::size_t>(-1);
  std::size_t last_error_index() const { return last_error_index_.load(std::memory_order_relaxed); }

 private:
  int size_;
  mutable std::atomic<std::size_t> last_error_index_{kNoError};
};

}  // namespace opcua_study
