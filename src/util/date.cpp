#include "util/date.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace opcua_study {

std::int64_t days_from_civil(const CivilDate& d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  int y = d.year;
  const unsigned m = d.month;
  const unsigned dd = d.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return CivilDate{static_cast<int>(y + (m <= 2)), m, d};
}

std::string format_date(const CivilDate& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", d.year, d.month, d.day);
  return buf;
}

CivilDate parse_date(const std::string& s) {
  int y = 0;
  unsigned m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%u-%u", &y, &m, &d) != 3 || m < 1 || m > 12 || d < 1 || d > 31) {
    throw std::invalid_argument("bad date: " + s);
  }
  return CivilDate{y, m, d};
}

// Days between 1601-01-01 and 1970-01-01.
static constexpr std::int64_t kFiletimeEpochShiftDays = 134774;
static constexpr std::int64_t kTicksPerDay = 24LL * 3600 * 10'000'000;

std::int64_t filetime_from_days(std::int64_t days_since_epoch) {
  return (days_since_epoch + kFiletimeEpochShiftDays) * kTicksPerDay;
}

std::int64_t days_from_filetime(std::int64_t filetime) {
  return filetime / kTicksPerDay - kFiletimeEpochShiftDays;
}

static constexpr std::array<CivilDate, kNumMeasurements> kMeasurementDates = {{
    {2020, 2, 9},
    {2020, 3, 1},
    {2020, 4, 5},
    {2020, 5, 4},
    {2020, 6, 7},
    {2020, 7, 5},
    {2020, 8, 2},
    {2020, 8, 30},
}};

CivilDate measurement_date(int index) {
  if (index < 0 || index >= kNumMeasurements) throw std::out_of_range("measurement index");
  return kMeasurementDates[static_cast<std::size_t>(index)];
}

std::int64_t measurement_days(int index) { return days_from_civil(measurement_date(index)); }

}  // namespace opcua_study
