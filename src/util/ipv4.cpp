#include "util/ipv4.hpp"

#include <cstdio>
#include <stdexcept>

namespace opcua_study {

std::string format_ipv4(Ipv4 addr) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

Ipv4 parse_ipv4(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4 || a > 255 || b > 255 ||
      c > 255 || d > 255) {
    throw std::invalid_argument("bad IPv4: " + dotted);
  }
  return make_ipv4(a, b, c, d);
}

Cidr parse_cidr(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return Cidr{parse_ipv4(text), 32};
  Cidr c;
  c.base = parse_ipv4(text.substr(0, slash));
  c.prefix_len = std::stoi(text.substr(slash + 1));
  if (c.prefix_len < 0 || c.prefix_len > 32) throw std::invalid_argument("bad prefix: " + text);
  return c;
}

std::string format_cidr(const Cidr& c) {
  return format_ipv4(c.base) + "/" + std::to_string(c.prefix_len);
}

}  // namespace opcua_study
