#include "util/hex.hpp"

#include <stdexcept>

namespace opcua_study {

static constexpr char kDigits[] = "0123456789abcdef";

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

static int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex digit");
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace opcua_study
