// Byte-buffer primitives shared by the whole code base.
//
// All wire formats in this project (OPC UA binary, ASN.1 DER) are built on
// top of ByteWriter / ByteReader. OPC UA is little-endian; DER is
// big-endian and length-driven, so the reader/writer expose both.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace opcua_study {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a reader runs past the end of its buffer or a wire value is
/// structurally invalid. Callers at protocol boundaries catch this and turn
/// it into a protocol error (never a crash): a scanner must survive
/// arbitrary garbage from the network.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(b.begin(), b.end());
}

/// Append-only growable byte sink. Little-endian writers carry the `_le`
/// suffix implicitly (OPC UA default); big-endian variants are explicit.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void raw(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void raw(std::string_view s) { buf_.insert(buf_.end(), s.begin(), s.end()); }

  /// Patch a previously written little-endian u32 (used for message-size
  /// fields that are only known once the body is serialized).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    if (offset + 4 > buf_.size()) throw std::logic_error("patch_u32 out of range");
    for (int i = 0; i < 4; ++i) buf_[offset + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked sequential reader. Every accessor throws DecodeError on
/// underflow so malformed network input can never read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }

  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> view(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw DecodeError("buffer underflow");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace opcua_study
