#include "population/followup.hpp"

#include <algorithm>

#include "crypto/x509.hpp"
#include "util/date.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {

constexpr Ipv4 kNewDeploymentBase = 0x60000000u;  // 96.0.0.0/8 region

void set_policy(EndpointObservation& ep, SecurityPolicy policy, MessageSecurityMode mode) {
  ep.mode = mode;
  ep.policy = policy;
  ep.policy_uri = std::string(policy_info(policy).uri);
  ep.policy_known = true;
}

bool offers_token(const EndpointObservation& ep, UserTokenType token) {
  return std::find(ep.token_types.begin(), ep.token_types.end(), token) != ep.token_types.end();
}

}  // namespace

FollowupModel::FollowupModel(FollowupConfig config) : config_(std::move(config)) {
  // Mint the renewal/new-deployment certificate fleet up front: a small
  // key pool crossed with per-cert serials gives mint_fleet distinct
  // fingerprints for the price of mint_keys RSA generations.
  KeyFactory keys(config_.seed, config_.key_cache_path);
  const std::size_t key_count = std::max<std::size_t>(1, config_.mint_keys);
  const std::size_t fleet_size = std::max<std::size_t>(1, config_.mint_fleet);
  std::vector<std::pair<std::string, std::size_t>> wants;
  for (std::size_t k = 0; k < key_count; ++k) {
    wants.emplace_back("followup-mint-" + std::to_string(k), config_.mint_key_bits);
  }
  keys.prefetch(wants);
  fleet_.reserve(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    const RsaKeyPair kp = keys.get(wants[i % key_count].first, config_.mint_key_bits);
    CertificateSpec spec;
    spec.subject = {"followup device " + std::to_string(i), "Followup Manufacturing", "DE"};
    // A sliver of the fleet still mints SHA-1 — the follow-up studies kept
    // finding freshly created deprecated certificates.
    spec.signature_hash = i % 6 == 0 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
    spec.serial = Bignum{0x22000000ull + i};
    spec.not_before_days = days_from_civil({2021, 6, 1}) + static_cast<std::int64_t>(i % 365);
    spec.not_after_days = spec.not_before_days + 3650;
    spec.application_uri = "urn:followup:cert:" + std::to_string(i);
    fleet_.push_back(x509_create(spec, kp.pub, kp.priv));
  }
}

const Bytes& FollowupModel::minted_cert(std::uint64_t slot) const {
  return fleet_[static_cast<std::size_t>(slot % fleet_.size())];
}

Ipv4 FollowupModel::churned_ip(Ipv4 ip) {
  // Odd-constant multiplication mod 2^31 is a bijection on [0, 2^31); the
  // forced top bit keeps every churned address outside the base population
  // and new-deployment ranges (both below 2^31).
  const std::uint32_t mixed = ((ip & 0x7fffffffu) * 0x9e3779b1u) & 0x7fffffffu;
  return 0x80000000u | mixed;
}

std::optional<HostScanRecord> FollowupModel::evolve(const HostScanRecord& base) const {
  Rng rng = Rng(config_.seed)
                .child("followup-host")
                .child(std::to_string(base.ip) + ":" + std::to_string(base.port));
  // Every draw happens unconditionally, in one fixed order: the stream a
  // host consumes never depends on its configuration, so transitions can
  // be added behind these without reshuffling existing fates.
  const bool retire = rng.chance(config_.retire);
  const bool churn = rng.chance(config_.ip_churn);
  const bool upgrade = rng.chance(config_.upgrade);
  const bool downgrade = rng.chance(config_.downgrade);
  const bool shed_deprecated = rng.chance(config_.drop_deprecated);
  const bool renew = rng.chance(config_.cert_renewal);
  const bool drop_anon = rng.chance(config_.drop_anonymous);
  const bool add_anon = rng.chance(config_.add_anonymous);
  const std::uint64_t mint_slot = rng.next();

  if (retire) return std::nullopt;

  HostScanRecord host = base;
  if (churn) host.ip = churned_ip(host.ip);

  // Discovery servers only churn or retire; their endpoint lists are
  // references to other hosts, not a security posture of their own.
  if (!host.is_discovery_server() && !host.endpoints.empty()) {
    if (downgrade) {
      // Secure endpoints dropped; if the host was secure-only, its
      // strongest endpoint degrades to None/None (the misconfiguration
      // regressions the follow-up study observed).
      std::vector<EndpointObservation> keep;
      for (const auto& ep : host.endpoints) {
        if (ep.mode == MessageSecurityMode::None) keep.push_back(ep);
      }
      if (keep.empty()) {
        EndpointObservation ep = host.endpoints.front();
        set_policy(ep, SecurityPolicy::None, MessageSecurityMode::None);
        keep.push_back(std::move(ep));
      }
      host.endpoints = std::move(keep);
    } else if (upgrade) {
      bool secure_capable = false;
      for (const auto mode : host.advertised_modes()) {
        secure_capable |= security_mode_rank(mode) >= security_mode_rank(MessageSecurityMode::Sign);
      }
      if (!secure_capable) {
        EndpointObservation ep = host.endpoints.front();
        set_policy(ep, SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt);
        if (ep.certificate_der.empty()) {
          for (const auto& other : host.endpoints) {
            if (!other.certificate_der.empty()) {
              ep.certificate_der = other.certificate_der;
              break;
            }
          }
        }
        if (ep.certificate_der.empty()) ep.certificate_der = minted_cert(mint_slot);
        host.endpoints.push_back(std::move(ep));
      }
    }

    if (shed_deprecated) {
      const auto deprecated = [](const EndpointObservation& ep) {
        return ep.policy_known && policy_info(ep.policy).deprecated;
      };
      const auto survivors = std::count_if(host.endpoints.begin(), host.endpoints.end(),
                                           [&](const auto& ep) { return !deprecated(ep); });
      if (survivors > 0) {
        std::erase_if(host.endpoints, deprecated);
      } else {
        // Nothing would remain: migrate the deprecated endpoints to the
        // recommended policy in place instead.
        for (auto& ep : host.endpoints) {
          set_policy(ep, SecurityPolicy::Basic256Sha256, ep.mode);
        }
      }
    }

    if (renew) {
      const Bytes& der = minted_cert(mint_slot);
      for (auto& ep : host.endpoints) {
        if (!ep.certificate_der.empty()) ep.certificate_der = der;
      }
    }

    if (drop_anon) {
      for (auto& ep : host.endpoints) {
        std::erase(ep.token_types, UserTokenType::Anonymous);
        if (ep.token_types.empty()) ep.token_types.push_back(UserTokenType::UserName);
      }
    } else if (add_anon) {
      for (auto& ep : host.endpoints) {
        if (!offers_token(ep, UserTokenType::Anonymous)) {
          ep.token_types.push_back(UserTokenType::Anonymous);
        }
      }
    }

    // Re-derive the measured-outcome fields the surgery may have
    // invalidated; everything else in the record is what a 2022 scanner
    // would have observed unchanged.
    bool anonymous = false;
    for (const auto& ep : host.endpoints) anonymous |= offers_token(ep, UserTokenType::Anonymous);
    host.anonymous_offered = anonymous;
    if (!anonymous && host.session == SessionOutcome::accessible) {
      host.session = SessionOutcome::auth_rejected;
      host.namespaces.clear();
      host.nodes.clear();
    }
  }
  return host;
}

std::uint64_t FollowupModel::new_deployment_count(std::uint64_t base_hosts) const {
  return static_cast<std::uint64_t>(static_cast<double>(base_hosts) *
                                    std::max(0.0, config_.new_deployment_rate));
}

std::vector<HostScanRecord> FollowupModel::new_deployments(std::uint64_t base_hosts) const {
  std::vector<HostScanRecord> hosts;
  hosts.reserve(static_cast<std::size_t>(new_deployment_count(base_hosts)));
  visit_new_deployments(base_hosts,
                        [&](HostScanRecord&& host) { hosts.push_back(std::move(host)); });
  return hosts;
}

void FollowupModel::visit_new_deployments(
    std::uint64_t base_hosts, const std::function<void(HostScanRecord&&)>& fn) const {
  const std::uint64_t count = new_deployment_count(base_hosts);
  for (std::uint64_t i = 0; i < count; ++i) {
    Rng rng = Rng(config_.seed).child("followup-new").child(std::to_string(i));
    HostScanRecord host;
    host.ip = kNewDeploymentBase + static_cast<Ipv4>(i);
    host.port = kOpcUaDefaultPort;
    host.asn = 64500 + static_cast<std::uint32_t>(rng.below(48));
    host.tcp_open = true;
    host.speaks_opcua = true;
    host.application_uri = "urn:followup:new:" + std::to_string(i);
    host.product_uri = "http://example.org/followup";
    host.application_name = "followup deployment " + std::to_string(i);
    host.software_version = "3." + std::to_string(rng.below(4)) + ".0";
    const Bytes& der = minted_cert(rng.next());

    auto add_endpoint = [&](MessageSecurityMode mode, SecurityPolicy policy, bool with_cert,
                            std::vector<UserTokenType> tokens) {
      EndpointObservation ep;
      ep.url = "opc.tcp://new" + std::to_string(i) + ":4840/";
      set_policy(ep, policy, mode);
      ep.token_types = std::move(tokens);
      if (with_cert) ep.certificate_der = der;
      host.endpoints.push_back(std::move(ep));
    };

    // Posture mix skewed more secure than the 2020 base — but far from
    // clean, matching what the follow-up scans actually found.
    const double posture = rng.real();
    if (posture < 0.45) {
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true,
                   {UserTokenType::UserName});
    } else if (posture < 0.70) {
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true,
                   {UserTokenType::Anonymous, UserTokenType::UserName});
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true,
                   {UserTokenType::UserName});
    } else if (posture < 0.90) {
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, false,
                   {UserTokenType::Anonymous});
    } else {
      add_endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256, true,
                   {UserTokenType::Anonymous, UserTokenType::UserName});
    }

    host.channel = ChannelOutcome::established;
    const auto& last = host.endpoints.back();
    host.channel_policy = last.policy;
    host.channel_mode = last.mode;
    bool anonymous = false;
    for (const auto& ep : host.endpoints) anonymous |= offers_token(ep, UserTokenType::Anonymous);
    host.anonymous_offered = anonymous;
    host.session = anonymous ? SessionOutcome::accessible : SessionOutcome::not_attempted;
    if (host.session == SessionOutcome::accessible) {
      host.namespaces = {"http://opcfoundation.org/UA/"};
    }
    host.bytes_sent = 30000 + rng.below(5000);
    host.duration_seconds = 60.0 + static_cast<double>(rng.below(90));
    fn(std::move(host));
  }
}

}  // namespace opcua_study
