// The MQTT-over-TLS broker fleet: the proof population for the protocol
// plugin layer (scanner/protocol.hpp). Unlike the OPC UA population this
// fleet is not calibrated against published numbers — it exists to exercise
// the cross-protocol paths (mixed sweeps, per-protocol analysis, the
// matcher's protocol isolation), so the mix is a simple deterministic
// spread over the posture dimensions the scanner records.
#include "population/deploy.hpp"
#include "population/plan.hpp"
#include "population/profiles.hpp"
#include "util/rng.hpp"

namespace opcua_study {

void add_mqtt_population(PopulationPlan& plan, std::uint64_t seed, int count) {
  Rng rng = Rng(seed).child("mqtt-population");
  // Groups that actually have OPC UA members, so shared-certificate brokers
  // can copy the member's certificate class and NotBefore — the DER then
  // comes out byte-identical to the OPC UA fleet certificate.
  std::vector<const HostPlan*> group_member;
  group_member.resize(plan.reuse_groups.size(), nullptr);
  for (const auto& host : plan.hosts) {
    const int g = host.certificate.reuse_group;
    if (g >= 0 && static_cast<std::size_t>(g) < group_member.size() &&
        group_member[static_cast<std::size_t>(g)] == nullptr) {
      group_member[static_cast<std::size_t>(g)] = &host;
    }
  }

  const auto& versions = profiles::mqtt_software_versions();
  const auto& topics = profiles::mqtt_topic_prefixes();
  const std::uint32_t asns[] = {kIiotAsn, kRegionalAsn1, kRegionalAsn2};
  const int base_index = static_cast<int>(plan.mqtt_hosts.size());
  for (int i = 0; i < count; ++i) {
    MqttHostPlan broker;
    broker.index = base_index + i;
    broker.asn = asns[static_cast<std::size_t>(i) % 3];
    // Every 7th broker runs on the same device image as an OPC UA reuse
    // group (round-robin over the groups that have members).
    if (i % 7 == 0 && !plan.reuse_groups.empty()) {
      const std::size_t g = (static_cast<std::size_t>(i) / 7) % plan.reuse_groups.size();
      if (group_member[g] != nullptr) {
        broker.reuse_group = plan.reuse_groups[g].id;
        broker.signature_hash = group_member[g]->certificate.signature_hash;
        broker.key_bits = plan.reuse_groups[g].key_bits;
        broker.not_before_days = group_member[g]->certificate.not_before_days;
      }
    }
    if (broker.reuse_group < 0) {
      broker.signature_hash = i % 4 == 1 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
      broker.key_bits = i % 4 == 1 ? 1024 : 2048;
      broker.not_before_days =
          days_from_civil({2018, 1, 1}) + static_cast<std::int64_t>(rng.below(900));
    }
    broker.legacy_tls = i % 3 == 1;
    broker.anonymous_allowed = i % 4 == 0;
    broker.client_cert_auth = i % 5 == 2;
    broker.software_version = versions[static_cast<std::size_t>(i) % versions.size()];
    broker.topics = {topics[static_cast<std::size_t>(i) % topics.size()] + "status",
                     topics[static_cast<std::size_t>(i) % topics.size()] + "telemetry"};
    if (i % 11 == 7) broker.arrival_week = 3;   // late arrivals
    if (i % 13 == 9) broker.absence_mask = 1u << 5;  // one-week flappers
    plan.mqtt_hosts.push_back(std::move(broker));
  }
}

}  // namespace opcua_study
