// The calibrated population: every count in this file is derived from the
// paper's published numbers (see DESIGN.md §4 for the cohort algebra).
//
// Verification happens in two places: tests/test_population.cpp asserts the
// plan's marginals against the paper, and the end-to-end benches assert the
// same numbers *as measured by the scanner over the wire*.
#include "population/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "population/profiles.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {

using MSM = MessageSecurityMode;
using SP = SecurityPolicy;
using HA = HashAlgorithm;

// Mode sets solved from Fig. 3 (support / least / most secure).
const std::vector<MSM> kModesN = {MSM::None};
const std::vector<MSM> kModesE = {MSM::SignAndEncrypt};
const std::vector<MSM> kModesSE = {MSM::Sign, MSM::SignAndEncrypt};
const std::vector<MSM> kModesNS = {MSM::None, MSM::Sign};
const std::vector<MSM> kModesNE = {MSM::None, MSM::SignAndEncrypt};
const std::vector<MSM> kModesNSE = {MSM::None, MSM::Sign, MSM::SignAndEncrypt};

struct CertClass {
  bool present = true;
  HA hash = HA::sha256;
  std::size_t bits = 2048;
};
const CertClass kNoCert{false, HA::sha1, 0};
const CertClass kMd5_1024{true, HA::md5, 1024};
const CertClass kSha1_1024{true, HA::sha1, 1024};
const CertClass kSha1_2048{true, HA::sha1, 2048};
const CertClass kSha256_2048{true, HA::sha256, 2048};
const CertClass kSha256_4096{true, HA::sha256, 4096};

struct Check {
  const char* what;
  long expected;
  long actual;
};

void verify(std::vector<Check> checks) {
  for (const auto& c : checks) {
    if (c.expected != c.actual) {
      throw std::logic_error(std::string("population calibration broken: ") + c.what +
                             " expected " + std::to_string(c.expected) + " got " +
                             std::to_string(c.actual));
    }
  }
}

}  // namespace

std::vector<const HostPlan*> PopulationPlan::servers_in_week(int week) const {
  std::vector<const HostPlan*> out;
  for (const auto& host : hosts) {
    if (!host.discovery && host.present_in_week(week)) out.push_back(&host);
  }
  return out;
}

std::vector<const HostPlan*> PopulationPlan::discovery_in_week(int week) const {
  std::vector<const HostPlan*> out;
  for (const auto& host : hosts) {
    if (host.discovery && host.present_in_week(week)) out.push_back(&host);
  }
  return out;
}

PopulationPlan build_population_plan(std::uint64_t seed) {
  Rng rng = Rng(seed).child("population");
  PopulationPlan plan;

  // ---------------------------------------------------------------- certs --
  // Reuse groups (§5.3): G0 is the 385-host / 24-AS distributor certificate;
  // G1/G2 its 9-host / 8-AS and 6-host / 5-AS siblings (same manufacturer);
  // G3..G8 are six 3-host clusters; G9..G20 twelve 2-host pairs (below the
  // paper's >=3 reporting threshold, but present in real data).
  plan.reuse_groups.push_back({0, HA::sha1, 2048, 24, "Bachmann electronic"});
  plan.reuse_groups.push_back({1, HA::sha256, 2048, 8, "Bachmann electronic"});
  plan.reuse_groups.push_back({2, HA::sha256, 2048, 5, "Bachmann electronic"});
  for (int g = 3; g < 9; ++g) plan.reuse_groups.push_back({g, HA::sha1, 1024, 2, "EnergoTec"});
  for (int g = 9; g < 21; ++g) plan.reuse_groups.push_back({g, HA::sha1, 1024, 1, "ParkView"});

  // ------------------------------------------------------- server cohorts --
  // One emit per (cohort, mode-set, cert-class) slice; DESIGN.md §4 table.
  struct Slice {
    const char* cohort;
    int count;
    std::vector<SP> policies;
    const std::vector<MSM>* modes;
    CertClass cert;
  };
  const std::vector<SP> pN = {SP::None};
  const std::vector<SP> pC1 = {SP::Basic128Rsa15, SP::Basic256, SP::Basic256Sha256};
  const std::vector<SP> pC2 = {SP::Basic256, SP::Basic256Sha256};
  const std::vector<SP> pC2b = {SP::Basic256, SP::Basic256Sha256, SP::Aes256Sha256RsaPss};
  const std::vector<SP> pC3a = {SP::Basic256Sha256, SP::Aes256Sha256RsaPss};
  const std::vector<SP> pC3b = {SP::Basic256Sha256};
  const std::vector<SP> pC4 = {SP::None, SP::Basic128Rsa15};
  const std::vector<SP> pC5a = {SP::None, SP::Basic128Rsa15, SP::Basic256};
  const std::vector<SP> pC5b = {SP::None, SP::Basic256};
  const std::vector<SP> pC6a = {SP::None, SP::Basic128Rsa15, SP::Basic256,
                                SP::Aes128Sha256RsaOaep, SP::Basic256Sha256};
  const std::vector<SP> pC6b = {SP::None, SP::Basic128Rsa15, SP::Basic256, SP::Basic256Sha256};
  const std::vector<SP> pC6c = {SP::None, SP::Basic256, SP::Basic256Sha256};
  const std::vector<SP> pC7 = {SP::None, SP::Basic256Sha256};

  const std::vector<Slice> slices = {
      // C0: None-only hosts (270). 40 send no certificate at all.
      {"C0.nocert", 40, pN, &kModesN, kNoCert},
      {"C0.md5", 30, pN, &kModesN, kMd5_1024},
      {"C0.sha1_1024", 130, pN, &kModesN, kSha1_1024},
      {"C0.sha1_2048", 40, pN, &kModesN, kSha1_2048},
      {"C0.sha256", 30, pN, &kModesN, kSha256_2048},
      // C1 (13): no None; least=D1, max=S2; weak certs (part of the 409).
      {"C1", 13, pC1, &kModesE, kSha1_2048},
      // C2a (44): least=D2, max=S2; clean.
      {"C2a.se", 28, pC2, &kModesSE, kSha256_2048},
      {"C2a.e", 16, pC2, &kModesE, kSha256_2048},
      // C2b (6): least=D2, max=S3; clean.
      {"C2b", 6, pC2b, &kModesE, kSha256_2048},
      // C3a (2): least=S2, max=S3; clean.
      {"C3a", 2, pC3a, &kModesE, kSha256_2048},
      // C3b (14): the "enforcers" (S2 only); clean; 8 carry 4096-bit keys.
      {"C3b.2048", 6, pC3b, &kModesE, kSha256_2048},
      {"C3b.4096", 8, pC3b, &kModesE, kSha256_4096},
      // C4 (24): max=D1. MD5 certs are weaker than even D1 announces
      // (part of the 591 "weaker in practice", unannotated in Fig. 4).
      {"C4.md5", 20, pC4, &kModesNS, kMd5_1024},   // 1 host gets {N,S}
      {"C4.sha1", 4, pC4, &kModesNE, kSha1_1024},
      // C5a (249): max=D2.
      {"C5a.md5", 160, pC5a, &kModesNSE, kMd5_1024},
      {"C5a.sha1_1024", 45, pC5a, &kModesNSE, kSha1_1024},
      {"C5a.sha1_2048", 44, pC5a, &kModesNSE, kSha1_2048},
      // C5b (7): {N,D2}; 5 hosts carry 4096-bit keys (Fig. 4's "↑5").
      {"C5b.strong", 5, pC5b, &kModesNE, kSha256_4096},
      {"C5b.md5", 2, pC5b, &kModesNE, kMd5_1024},
      // C6a (10): the only S1 announcers; 7 weak (Fig. 4's "↓7").
      {"C6a.weak", 7, pC6a, &kModesNSE, kSha1_1024},
      {"C6a.strong", 3, pC6a, &kModesNSE, kSha256_2048},
      // C6b (377): the S2 mainstream. 72 SHA-256 certs (with C6a.strong
      // = the 75 "too strong for D1", Fig. 4's "↑75").
      {"C6b.good", 72, pC6b, &kModesNSE, kSha256_2048},
      {"C6b.sha1_1024", 59, pC6b, &kModesNE, kSha1_1024},
      {"C6b.sha1_2048", 246, pC6b, &kModesNSE, kSha1_2048},
      // C6c (14): {N,D2,S2}; clean.
      {"C6c", 14, pC6c, &kModesNE, kSha256_2048},
      // C6d (42): {N,D1,D2,S2}; SHA1/2048 (part of 409 and of group G0).
      {"C6d", 42, pC6b, &kModesNSE, kSha1_2048},
      // C7 (42): {N,S2} with SHA-1 certs (part of the 409).
      {"C7", 42, pC7, &kModesNE, kSha1_1024},
  };

  const WeeklyTargets targets;
  int index = 0;
  for (const auto& slice : slices) {
    for (int i = 0; i < slice.count; ++i) {
      HostPlan host;
      host.index = index++;
      host.cohort = slice.cohort;
      host.policies = slice.policies;
      host.modes = *slice.modes;
      host.certificate.present = slice.cert.present;
      host.certificate.signature_hash = slice.cert.hash;
      host.certificate.key_bits = slice.cert.bits;
      plan.hosts.push_back(std::move(host));
    }
  }
  // C4.md5: exactly one host carries the rare {None, Sign} mode set; the
  // other 19 use {None, SignAndEncrypt}.
  {
    int fixed = 0;
    for (auto& host : plan.hosts) {
      if (host.cohort == "C4.md5" && fixed++ > 0) host.modes = kModesNE;
    }
  }
  // C6b.sha1_1024 advertises {N,E}; rebalance mode sets so that
  // {N,S,E} = 559 and {N,E} = 205 overall: C6b.sha1_2048 contributes 246 to
  // {N,S,E}; 60 of C6b.good move to {N,E}.
  {
    int moved = 0;
    for (auto& host : plan.hosts) {
      if (host.cohort == "C6b.good" && moved < 60) {
        host.modes = kModesNE;
        ++moved;
      }
    }
  }

  auto hosts_in = [&plan](const std::string& prefix) {
    std::vector<HostPlan*> out;
    for (auto& host : plan.hosts) {
      if (host.cohort.rfind(prefix, 0) == 0) out.push_back(&host);
    }
    return out;
  };

  // Mode-set marginal checks (Fig. 3 left).
  {
    long support_n = 0, support_s = 0, support_e = 0, least_s = 0, least_e = 0, most_n = 0,
         most_s = 0;
    for (const auto& host : plan.hosts) {
      const bool n = std::count(host.modes.begin(), host.modes.end(), MSM::None) > 0;
      const bool s = std::count(host.modes.begin(), host.modes.end(), MSM::Sign) > 0;
      const bool e = std::count(host.modes.begin(), host.modes.end(), MSM::SignAndEncrypt) > 0;
      support_n += n;
      support_s += s;
      support_e += e;
      if (!n && s) ++least_s;
      if (!n && !s && e) ++least_e;
      if (!s && !e) ++most_n;
      if (s && !e) ++most_s;
    }
    verify({{"hosts", 1114, static_cast<long>(plan.hosts.size())},
            {"mode support None", 1035, support_n},
            {"mode support Sign", 588, support_s},
            {"mode support SignAndEncrypt", 843, support_e},
            {"mode least Sign", 28, least_s},
            {"mode least SignAndEncrypt", 51, least_e},
            {"mode most None", 270, most_n},
            {"mode most Sign", 1, most_s}});
  }

  // ------------------------------------------------------ reuse groups ----
  // G0 = every SHA1/2048 host (385 by construction: C0 40 + C1 13 +
  // C5a 44 + C6b 246 + C6d 42).
  {
    long g0 = 0;
    for (auto& host : plan.hosts) {
      if (host.certificate.present && host.certificate.signature_hash == HA::sha1 &&
          host.certificate.key_bits == 2048) {
        host.certificate.reuse_group = 0;
        ++g0;
      }
    }
    verify({{"reuse group G0", 385, g0}});
  }
  // G1 (9) and G2 (6): 5 "otherwise configured securely" hosts (C6b.good)
  // plus 10 None-only hosts with SHA-256 certs.
  {
    auto good = hosts_in("C6b.good");
    auto c0sha256 = hosts_in("C0.sha256");
    for (int i = 0; i < 4; ++i) good[static_cast<std::size_t>(i)]->certificate.reuse_group = 1;
    good[4]->certificate.reuse_group = 2;
    for (int i = 0; i < 5; ++i) c0sha256[static_cast<std::size_t>(i)]->certificate.reuse_group = 1;
    for (int i = 5; i < 10; ++i) c0sha256[static_cast<std::size_t>(i)]->certificate.reuse_group = 2;
  }
  // G3..G8 (six 3-host groups) and G9..G20 (twelve 2-host pairs) from the
  // None-only SHA1/1024 pool.
  {
    auto pool = hosts_in("C0.sha1_1024");
    std::size_t cursor = 0;
    for (int g = 3; g < 9; ++g) {
      for (int i = 0; i < 3; ++i) pool[cursor++]->certificate.reuse_group = g;
    }
    for (int g = 9; g < 21; ++g) {
      for (int i = 0; i < 2; ++i) pool[cursor++]->certificate.reuse_group = g;
    }
  }

  // ------------------------------------------------- Table 2 assignment ----
  // Reconciled Table 2 (the printed column totals 493/541/80 are exact; we
  // set the credentials-only row to 467/21 so rows sum to 1114 — see
  // EXPERIMENTS.md).
  struct RowSpec {
    std::vector<UserTokenType> tokens;
    int prod, test, uncl, auth, sc;
  };
  using UT = UserTokenType;
  const RowSpec kR1{{UT::Anonymous}, 116, 8, 5, 9, 1};
  const RowSpec kR2{{UT::UserName}, 0, 0, 0, 467, 21};
  const RowSpec kR3{{UT::Anonymous, UT::UserName}, 168, 20, 134, 38, 5};
  const RowSpec kR4{{UT::UserName, UT::Certificate}, 0, 0, 0, 4, 7};
  const RowSpec kR5{{UT::Anonymous, UT::UserName, UT::Certificate}, 11, 14, 17, 17, 3};
  const RowSpec kR6{{UT::UserName, UT::Certificate, UT::IssuedToken}, 0, 0, 0, 0, 43};
  const RowSpec kR7{{UT::Anonymous, UT::UserName, UT::Certificate, UT::IssuedToken}, 0, 0, 0, 6, 0};

  struct Cell {
    const RowSpec* row;
    PlannedOutcome outcome;
    PlannedClass cls;
    int count;
  };
  auto apply_cell = [](std::vector<HostPlan*>& pool, std::size_t& cursor, const Cell& cell) {
    for (int i = 0; i < cell.count; ++i) {
      if (cursor >= pool.size()) throw std::logic_error("table-2 pool exhausted");
      HostPlan* host = pool[cursor++];
      host->tokens = cell.row->tokens;
      host->outcome = cell.outcome;
      host->classification = cell.cls;
      if (cell.outcome == PlannedOutcome::channel_rejected) {
        host->trust_all_client_certs = false;
      } else if (cell.outcome == PlannedOutcome::auth_rejected && cell.row->tokens.size() == 1 &&
                 cell.row->tokens[0] == UT::Anonymous) {
        // anonymous-only yet rejecting: the paper's "faulty or incomplete
        // endpoint configuration" hosts.
        host->reject_all_sessions = true;
      } else if (cell.outcome == PlannedOutcome::auth_rejected) {
        bool anon = false;
        for (auto t : cell.row->tokens) anon |= t == UT::Anonymous;
        if (anon) host->reject_anonymous_sessions = true;
      }
    }
  };

  using PO = PlannedOutcome;
  using PC = PlannedClass;

  // (1) Clean no-None hosts: all 66 offer anonymous (the paper's "71
  // servers that otherwise force clients to communicate securely", with the
  // 5 weak C1 hosts below) and are accessible-but-unclassified.
  {
    auto pool = hosts_in("C2a");
    std::size_t cursor = 0;
    apply_cell(pool, cursor, {&kR3, PO::accessible, PC::unclassified, 44});
    pool = hosts_in("C3b");
    cursor = 0;
    apply_cell(pool, cursor, {&kR3, PO::accessible, PC::unclassified, 14});
    pool = hosts_in("C2b");
    cursor = 0;
    apply_cell(pool, cursor, {&kR5, PO::accessible, PC::unclassified, 6});
    pool = hosts_in("C3a");
    cursor = 0;
    apply_cell(pool, cursor, {&kR5, PO::accessible, PC::unclassified, 2});
  }
  // (2) C1: 5 anonymous but certificate-rejected (R3's sc cell), 8 in the
  // credentials-only row.
  {
    auto pool = hosts_in("C1");
    std::size_t cursor = 0;
    apply_cell(pool, cursor, {&kR3, PO::channel_rejected, PC::not_applicable, 5});
    apply_cell(pool, cursor, {&kR2, PO::auth_rejected, PC::not_applicable, 8});
  }
  // (3) Clean None-containing hosts (89): never anonymous.
  {
    auto pool = hosts_in("C6b.good");
    // Skip the 5 reuse-group members (they live in R2 below, "otherwise
    // configured securely", §5.3).
    std::vector<HostPlan*> reuse, rest;
    for (auto* h : pool) (h->certificate.reuse_group >= 0 ? reuse : rest).push_back(h);
    std::size_t cursor = 0;
    apply_cell(rest, cursor, {&kR6, PO::channel_rejected, PC::not_applicable, 43});
    apply_cell(rest, cursor, {&kR2, PO::auth_rejected, PC::not_applicable, 24});
    cursor = 0;
    apply_cell(reuse, cursor, {&kR2, PO::auth_rejected, PC::not_applicable, 5});
    auto c6c = hosts_in("C6c");
    cursor = 0;
    apply_cell(c6c, cursor, {&kR4, PO::auth_rejected, PC::not_applicable, 4});
    apply_cell(c6c, cursor, {&kR4, PO::channel_rejected, PC::not_applicable, 7});
    apply_cell(c6c, cursor, {&kR2, PO::auth_rejected, PC::not_applicable, 3});
    auto c6astrong = hosts_in("C6a.strong");
    cursor = 0;
    apply_cell(c6astrong, cursor, {&kR2, PO::auth_rejected, PC::not_applicable, 3});
  }
  // (4) Deficient anonymous hosts: 497 across the anonymous rows' remaining
  // cells + 4 certificate-rejected (R1's 1 + R5's 3) + 21 R2 sc-rejects.
  {
    auto c6bweak = hosts_in("C6b.sha1");  // matches sha1_1024 + sha1_2048
    std::size_t cursor = 0;
    apply_cell(c6bweak, cursor, {&kR1, PO::channel_rejected, PC::not_applicable, 1});
    apply_cell(c6bweak, cursor, {&kR5, PO::channel_rejected, PC::not_applicable, 3});
    apply_cell(c6bweak, cursor, {&kR2, PO::channel_rejected, PC::not_applicable, 21});
    apply_cell(c6bweak, cursor, {&kR3, PO::accessible, PC::production, 60});
    apply_cell(c6bweak, cursor, {&kR3, PO::auth_rejected, PC::not_applicable, 6});
    // Remaining C6b.weak hosts (214): credentials-only.
    const int c6b_left = static_cast<int>(c6bweak.size() - cursor);
    apply_cell(c6bweak, cursor, {&kR2, PO::auth_rejected, PC::not_applicable, c6b_left});
  }
  {
    // C0: 51 EnergoTec production systems + the test fleet + misc cells.
    auto c0 = hosts_in("C0");
    std::size_t cursor = 0;
    apply_cell(c0, cursor, {&kR1, PO::accessible, PC::production, 116});
    apply_cell(c0, cursor, {&kR1, PO::accessible, PC::test, 8});
    apply_cell(c0, cursor, {&kR1, PO::accessible, PC::unclassified, 5});
    apply_cell(c0, cursor, {&kR1, PO::auth_rejected, PC::not_applicable, 9});
    apply_cell(c0, cursor, {&kR3, PO::accessible, PC::test, 20});
    apply_cell(c0, cursor, {&kR3, PO::accessible, PC::unclassified, 50});
    apply_cell(c0, cursor, {&kR3, PO::auth_rejected, PC::not_applicable, 32});
    apply_cell(c0, cursor, {&kR2, PO::auth_rejected, PC::not_applicable,
                            static_cast<int>(c0.size() - cursor)});
  }
  {
    // C5a: the production-heavy deprecated fleet fills the remaining
    // anonymous cells (R3 prod/uncl, all of R5's deficient cells, R7).
    auto c5a = hosts_in("C5a");
    std::size_t cursor = 0;
    apply_cell(c5a, cursor, {&kR3, PO::accessible, PC::production, 108});
    apply_cell(c5a, cursor, {&kR3, PO::accessible, PC::unclassified, 26});
    apply_cell(c5a, cursor, {&kR5, PO::accessible, PC::production, 11});
    apply_cell(c5a, cursor, {&kR5, PO::accessible, PC::test, 14});
    apply_cell(c5a, cursor, {&kR5, PO::accessible, PC::unclassified, 9});
    apply_cell(c5a, cursor, {&kR5, PO::auth_rejected, PC::not_applicable, 17});
    apply_cell(c5a, cursor, {&kR7, PO::auth_rejected, PC::not_applicable, 6});
    apply_cell(c5a, cursor, {&kR2, PO::auth_rejected, PC::not_applicable,
                             static_cast<int>(c5a.size() - cursor)});
  }
  {
    // Everything else is credentials-only (the paper's dominant row).
    for (const char* cohort : {"C7", "C6d", "C6a.weak", "C4", "C5b"}) {
      auto pool = hosts_in(cohort);
      std::size_t cursor = 0;
      apply_cell(pool, cursor,
                 {&kR2, PO::auth_rejected, PC::not_applicable, static_cast<int>(pool.size())});
    }
  }

  // Table-2 marginal self-checks.
  {
    long accessible = 0, auth = 0, sc = 0, anon = 0, anon_no_none = 0, prod = 0, test = 0,
         uncl = 0;
    for (const auto& host : plan.hosts) {
      if (host.tokens.empty()) throw std::logic_error("host without tokens: " + host.cohort);
      switch (host.outcome) {
        case PO::accessible: ++accessible; break;
        case PO::auth_rejected: ++auth; break;
        case PO::channel_rejected: ++sc; break;
      }
      if (host.anonymous_offered()) {
        ++anon;
        if (!host.offers_none_mode()) ++anon_no_none;
      }
      switch (host.classification) {
        case PC::production: ++prod; break;
        case PC::test: ++test; break;
        case PC::unclassified: ++uncl; break;
        case PC::not_applicable: break;
      }
    }
    verify({{"accessible", 493, accessible},
            {"auth rejected", 541, auth},
            {"channel rejected", 80, sc},
            {"anonymous offered", 572, anon},
            {"anonymous on no-None hosts", 71, anon_no_none},
            {"production", 295, prod},
            {"test systems", 42, test},
            {"unclassified", 156, uncl}});
  }

  // ------------------------------------------ address-space shapes (Fig 7) --
  {
    Rng shape = rng.child("shapes");
    std::vector<HostPlan*> accessible;
    for (auto& host : plan.hosts) {
      if (host.outcome == PO::accessible) accessible.push_back(&host);
    }
    verify({{"accessible hosts for shapes", 493, static_cast<long>(accessible.size())}});
    for (std::size_t i = 0; i < accessible.size(); ++i) {
      HostPlan* host = accessible[i];
      host->variable_count = static_cast<int>(shape.range(30, 220));
      host->method_count = static_cast<int>(shape.range(4, 24));
      // Read: 90% of hosts expose > 97% of nodes (Fig. 7).
      host->readable_fraction =
          i < 444 ? 0.97 + 0.03 * shape.real() : 0.20 + 0.60 * shape.real();
      // Write: 33% of hosts allow anonymous writes to > 10% of nodes.
      host->writable_fraction = i % 3 == 0 && (493 - static_cast<int>(i)) / 3 + 163 > 164
                                    ? 0.0
                                    : 0.0;  // placeholder, set below
      // Execute: 61% of hosts allow > 86% of functions.
      host->executable_fraction =
          i < 301 ? 0.86 + 0.14 * shape.real() : 0.30 * shape.real();
    }
    // Writable: first 163 accessible hosts get > 10%, the rest below.
    for (std::size_t i = 0; i < accessible.size(); ++i) {
      accessible[i]->writable_fraction =
          i < 163 ? 0.12 + 0.45 * shape.real() : 0.08 * shape.real();
    }
    // Shuffle which hosts carry which fractions (decorrelate from cohorts)
    // by rotating the assignment deterministically.
    // (Kept simple: the CDF shape is what Fig. 7 reports.)
  }

  // --------------------------------------------------- manufacturers -------
  for (auto& host : plan.hosts) {
    if (host.certificate.reuse_group >= 0 && host.certificate.reuse_group <= 2) {
      host.manufacturer = "Bachmann";
    }
  }
  {
    // Bachmann: 385 + 15 reuse hosts + 6 extras = 406 (Fig. 2).
    int extras = 6;
    for (auto& host : plan.hosts) {
      if (extras > 0 && host.cohort == "C5a.md5" && host.manufacturer.empty()) {
        host.manufacturer = "Bachmann";
        --extras;
      }
    }
    // Beckhoff: 112 = C6b.sha1_1024 (59) + C6a (10) + 43 C5a.md5.
    int beckhoff_c5a = 43;
    for (auto& host : plan.hosts) {
      if (!host.manufacturer.empty()) continue;
      if (host.cohort == "C6b.sha1_1024" || host.cohort.rfind("C6a", 0) == 0) {
        host.manufacturer = "Beckhoff";
      } else if (beckhoff_c5a > 0 && host.cohort == "C5a.md5") {
        host.manufacturer = "Beckhoff";
        --beckhoff_c5a;
      }
    }
    // Wago: 78 = C2a (44) + C6c (14) + C3b (14) + C2b (6).
    for (auto& host : plan.hosts) {
      if (!host.manufacturer.empty()) continue;
      if (host.cohort.rfind("C2a", 0) == 0 || host.cohort == "C6c" ||
          host.cohort.rfind("C3b", 0) == 0 || host.cohort == "C2b") {
        host.manufacturer = "Wago";
      }
    }
    // EnergoTec: the all-None manufacturer of §B.1.1 (51 C0 hosts, all
    // accessible production systems) — minus those already in reuse pairs.
    int energo = 51;
    for (auto& host : plan.hosts) {
      if (!host.manufacturer.empty() || energo == 0) continue;
      if (host.cohort.rfind("C0", 0) == 0 && host.outcome == PO::accessible &&
          host.classification == PC::production) {
        host.manufacturer = "EnergoTec";
        --energo;
      }
    }
    // FreeOpcUa: 35 of the 42 test systems.
    int free_opcua = 35;
    for (auto& host : plan.hosts) {
      if (!host.manufacturer.empty() || free_opcua == 0) continue;
      if (host.classification == PC::test) {
        host.manufacturer = "FreeOpcUa";
        --free_opcua;
      }
    }
    // Unified Automation: remaining clean C6b/C6a hosts.
    for (auto& host : plan.hosts) {
      if (!host.manufacturer.empty()) continue;
      if (host.cohort == "C6b.good" || host.cohort == "C6a.strong") {
        host.manufacturer = "Unified Automation";
      }
    }
    // open62541: C7 + C3a + C1; B&R: C6d + C4; Siemens: 85 C5a; other: rest.
    int siemens = 85;
    for (auto& host : plan.hosts) {
      if (!host.manufacturer.empty()) continue;
      if (host.cohort == "C7" || host.cohort == "C3a" || host.cohort == "C1") {
        host.manufacturer = "open62541";
      } else if (host.cohort == "C6d" || host.cohort.rfind("C4", 0) == 0) {
        host.manufacturer = "B&R";
      } else if (siemens > 0 && host.cohort.rfind("C5a", 0) == 0) {
        host.manufacturer = "Siemens";
        --siemens;
      } else {
        host.manufacturer = "other";
      }
    }
  }
  {
    long bachmann = 0, beckhoff = 0, wago = 0;
    for (const auto& host : plan.hosts) {
      bachmann += host.manufacturer == "Bachmann";
      beckhoff += host.manufacturer == "Beckhoff";
      wago += host.manufacturer == "Wago";
    }
    verify({{"Bachmann", 406, bachmann}, {"Beckhoff", 112, beckhoff}, {"Wago", 78, wago}});
  }

  // Identity strings derived from the manufacturer cluster.
  {
    int serial = 1000;
    for (auto& host : plan.hosts) {
      const auto& profile = profiles::manufacturer(host.manufacturer);
      host.application_uri = profile.uri_prefix + "device-" + std::to_string(serial);
      host.product_uri = profile.product_uri;
      host.application_name = host.manufacturer + " OPC UA Server " + std::to_string(serial);
      ++serial;
    }
  }

  // ----------------------------------------- non-default-port servers ----
  // 45 servers only reachable through discovery references (Fig. 2's
  // "follow references / non-default port" annotation). Stable,
  // full-presence hosts so the certificate ledger below stays exact.
  {
    auto pool = hosts_in("C5a.md5");
    int moved = 0;
    for (std::size_t i = pool.size(); i-- > 0 && moved < 45;) {
      pool[i]->port = 48010;
      pool[i]->via_reference_only = true;
      ++moved;
    }
    verify({{"non-default-port hosts", 45, moved}});
  }

  // ------------------------------------------------ longitudinal ledger ----
  // Constants derived in DESIGN.md §4: 224 dual-certificate hosts, 461
  // ephemeral-certificate hosts (234 SHA-1-classed), 108 departing hosts,
  // 137 late arrivals into reuse group G0, 84 renewals.
  {
    // Ephemerals: dynamic-IP hosts regenerating their self-signed
    // certificate every measurement (same key). SHA-1 part: 234 of the
    // SHA1/1024 hosts outside reuse groups.
    int eph_sha1 = 234;
    for (auto& host : plan.hosts) {
      if (eph_sha1 == 0) break;
      if (host.via_reference_only) continue;
      if (host.certificate.present && host.certificate.reuse_group < 0 &&
          host.certificate.signature_hash == HA::sha1 && host.certificate.key_bits == 1024) {
        host.certificate.ephemeral = true;
        host.dynamic_ip = true;
        --eph_sha1;
      }
    }
    verify({{"sha1 ephemerals placed", 0, eph_sha1}});
    // Non-SHA-1 part: 227 from the MD5, C0 SHA-256 and clean SHA-256 pools.
    int eph_other = 227;
    for (auto& host : plan.hosts) {
      if (eph_other == 0) break;
      if (host.via_reference_only) continue;
      if (!host.certificate.present || host.certificate.reuse_group >= 0 ||
          host.certificate.ephemeral) {
        continue;
      }
      const bool md5 = host.certificate.signature_hash == HA::md5;
      const bool eligible_sha256 = host.cohort == "C0.sha256" || host.cohort == "C6c" ||
                                   host.cohort.rfind("C2", 0) == 0 ||
                                   host.cohort.rfind("C3", 0) == 0;
      if (md5 || eligible_sha256) {
        host.certificate.ephemeral = true;
        host.dynamic_ip = true;
        --eph_other;
      }
    }
    verify({{"other ephemerals placed", 0, eph_other}});
  }
  {
    // Dual certificates: 224 stable hosts present a second (SHA1/1024,
    // NotBefore 2017-2018) certificate on one endpoint.
    int duals = 224;
    Rng dual_rng = rng.child("dual");
    for (auto& host : plan.hosts) {
      if (duals == 0) break;
      if (!host.certificate.present || host.certificate.ephemeral || host.via_reference_only) {
        continue;
      }
      host.certificate.dual_certificate = true;
      host.certificate.dual_not_before_days = days_from_civil(
          {2017 + static_cast<int>(dual_rng.below(2)), 1 + static_cast<unsigned>(dual_rng.below(12)), 1 + static_cast<unsigned>(dual_rng.below(28))});
      --duals;
    }
    verify({{"dual certs placed", 0, duals}});
  }
  {
    // NotBefore for stable primary certificates. SHA-1 singles: 8 in
    // 2017-2018, 2 post-2019, 1 pre-2017; group certificates: 2017-2018;
    // everything else (MD5 / SHA-256): 2012-2019.
    Rng nb = rng.child("notbefore");
    int sha1_single_seen = 0;
    for (auto& host : plan.hosts) {
      if (!host.certificate.present) continue;
      auto& cert = host.certificate;
      if (cert.ephemeral) continue;  // stamped per measurement by the deployer
      if (cert.reuse_group >= 0) {
        cert.not_before_days =
            days_from_civil({2017, 6, 1}) + static_cast<std::int64_t>(cert.reuse_group);
      } else if (cert.signature_hash == HA::sha1) {
        // 11 stable SHA-1 singles: 1 pre-2017 (the later downgrade host),
        // 8 in 2017-2018, 2 post-2019 — the §5.5 NotBefore ledger.
        if (sha1_single_seen == 0) {
          cert.not_before_days = days_from_civil({2015, 4, 10});
        } else if (sha1_single_seen < 9) {
          cert.not_before_days = days_from_civil(
              {2017 + static_cast<int>(nb.below(2)), 1 + static_cast<unsigned>(nb.below(12)), 5});
        } else {
          cert.not_before_days = days_from_civil({2019, 3, 1 + static_cast<unsigned>(nb.below(20))});
        }
        ++sha1_single_seen;
      } else {
        cert.not_before_days = days_from_civil(
            {2012 + static_cast<int>(nb.below(8)), 1 + static_cast<unsigned>(nb.below(12)), 3});
      }
    }
    verify({{"stable sha1 singles", 11, sha1_single_seen}});
  }
  {
    // Renewals (84): 7 SHA-1→SHA-256 upgrades (week 1), 1 downgrade
    // (week 4), 48 dual-certificate SHA-1 refreshes, 28 SHA-256 refreshes;
    // 9 coincide with a SoftwareVersion update.
    int upgrades = 7, downgrade = 1, dual_refresh = 48, sha256_refresh = 28;
    // Software-update coincidences (9) must be *observable*: the scanner
    // only reads SoftwareVersion on accessible hosts, so the flag goes to
    // accessible renewal hosts.
    int sw_updates = 9;
    int week_cycle = 0;
    for (auto& host : plan.hosts) {
      if (host.certificate.ephemeral || !host.certificate.present || host.via_reference_only) {
        continue;
      }
      const bool accessible = host.outcome == PO::accessible;
      if (upgrades > 0 && host.cohort == "C6b.good" && host.certificate.reuse_group < 0) {
        host.renewal = RenewalPlan{1, HA::sha1, false};
        --upgrades;
      } else if (downgrade > 0 && host.cohort == "C7" && host.certificate.reuse_group < 0 &&
                 host.certificate.signature_hash == HA::sha1) {
        host.renewal = RenewalPlan{4, HA::sha256, false};
        --downgrade;
      } else if (dual_refresh > 0 && host.certificate.dual_certificate &&
                 host.certificate.reuse_group < 0) {
        const bool sw = accessible && sw_updates > 0;
        if (sw) --sw_updates;
        host.renewal = RenewalPlan{1 + (week_cycle++ % 7), HA::sha1, sw, /*dual=*/true};
        --dual_refresh;
      } else if (sha256_refresh > 0 && host.certificate.reuse_group < 0 &&
                 host.certificate.signature_hash == HA::sha256 &&
                 !host.certificate.dual_certificate) {
        const bool sw = accessible && sw_updates > 0;
        if (sw) --sw_updates;
        host.renewal = RenewalPlan{1 + (week_cycle++ % 7), HA::sha256, sw};
        --sha256_refresh;
      }
    }
    verify({{"upgrades placed", 0, upgrades},
            {"downgrade placed", 0, downgrade},
            {"dual refresh placed", 0, dual_refresh},
            {"sha256 refresh placed", 0, sha256_refresh}});
    if (sw_updates > 0) throw std::logic_error("software-update renewals not exhausted");
  }
  {
    // The two CA-signed certificates of §5.2 (99 % self-signed, 2 CA-signed):
    // stable, clean hosts without any other certificate special-casing.
    int ca = 2;
    for (auto& host : plan.hosts) {
      if (ca == 0) break;
      if (host.cohort == "C6b.good" && host.certificate.reuse_group < 0 &&
          !host.certificate.ephemeral && !host.certificate.dual_certificate && !host.renewal) {
        host.certificate.ca_signed = true;
        --ca;
      }
    }
    verify({{"CA-signed certificates", 0, ca}});
  }
  {
    // Group G0 growth: 263 reuse devices at week 0 → 400 at week 7
    // (§5.5: +3 in the final week). Late arrivals: cumulative
    // [0,22,49,77,102,115,134,137] across weeks 1..7.
    const int arrivals_cum[8] = {0, 22, 49, 77, 102, 115, 134, 137};
    int placed = 0;
    int week = 1;
    for (auto& host : plan.hosts) {
      if (host.certificate.reuse_group != 0) continue;
      if (placed >= 137) break;
      while (week < 8 && placed >= arrivals_cum[week]) ++week;
      if (week >= 8) break;
      host.arrival_week = week;
      ++placed;
    }
    verify({{"G0 arrivals", 137, placed}});
  }
  {
    // Clean-host flappers tune the weekly deficiency series into the
    // paper's [91 %, 94 %] band (DESIGN.md): offline clean hosts per week
    // w1..w7: {0,5,0,4,3,22,0}.
    const int offline[8] = {0, 0, 5, 0, 4, 3, 22, 0};
    std::vector<HostPlan*> clean;
    for (auto& host : plan.hosts) {
      const bool crypto_clean =
          host.cohort == "C6b.good" || host.cohort == "C6c" || host.cohort == "C6a.strong";
      if (crypto_clean && !host.anonymous_offered() && !host.renewal &&
          host.certificate.reuse_group < 0 && !host.certificate.ephemeral) {
        clean.push_back(&host);
      }
    }
    // 89 clean hosts minus 7 upgrade-renewals minus 5 reuse = 77 eligible;
    // at most 22 needed per week.
    for (int w = 1; w < 8; ++w) {
      for (int i = 0; i < offline[w]; ++i) {
        clean[static_cast<std::size_t>(i)]->absence_mask |= static_cast<std::uint8_t>(1u << w);
      }
    }
  }

  // Departers: 108 extra (deficient) hosts beyond the final 1114, active
  // early and gone by week 6 (K_active = {108,95,79,46,29,18,0,0}).
  {
    const int active[8] = {108, 95, 79, 46, 29, 18, 0, 0};
    for (int i = 0; i < 108; ++i) {
      HostPlan host;
      host.index = index++;
      host.cohort = "departer";
      host.manufacturer = "other";
      host.application_uri = "urn:generic:opcua:departed-" + std::to_string(i);
      host.product_uri = "http://example.org/opcua";
      host.application_name = "departed server";
      host.policies = pC5a;
      host.modes = kModesNSE;
      host.tokens = {UT::UserName};
      host.outcome = PO::auth_rejected;
      host.certificate.present = true;
      host.certificate.signature_hash = HA::md5;
      host.certificate.key_bits = 1024;
      host.certificate.not_before_days = days_from_civil({2016, 5, 20});
      // Departure week: host i leaves once i >= active[w].
      for (int w = 0; w < 8; ++w) {
        if (i >= active[w]) host.absence_mask |= static_cast<std::uint8_t>(1u << w);
      }
      plan.hosts.push_back(std::move(host));
    }
  }

  // ------------------------------------------------------- AS + addresses --
  {
    // 28 ASes: 64500 = the IIoT ISP of §B.1.2, 64501/64502 = regional ISPs.
    // G0 must span exactly 24 ASes, G1 8, G2 5.
    std::vector<HostPlan*> g0, g1, g2, rest;
    for (auto& host : plan.hosts) {
      switch (host.certificate.reuse_group) {
        case 0: g0.push_back(&host); break;
        case 1: g1.push_back(&host); break;
        case 2: g2.push_back(&host); break;
        default: rest.push_back(&host); break;
      }
    }
    for (std::size_t i = 0; i < g0.size(); ++i) {
      // 120 hosts in the IIoT AS, remainder round-robin over 23 more.
      g0[i]->asn = i < 120 ? 64500 : 64501 + static_cast<std::uint32_t>((i - 120) % 23);
    }
    for (std::size_t i = 0; i < g1.size(); ++i) {
      g1[i]->asn = 64501 + static_cast<std::uint32_t>(i % 8);
    }
    for (std::size_t i = 0; i < g2.size(); ++i) {
      g2[i]->asn = 64510 + static_cast<std::uint32_t>(i % 5);
    }
    // Everyone else: weak-cert hosts lean towards the IIoT AS, deprecated +
    // anonymous towards the two regional ISPs, remainder spread over 64503+.
    std::size_t spread = 0;
    for (auto* host : rest) {
      const bool weak_cert = host->certificate.present &&
                             (host->certificate.signature_hash == HA::md5 ||
                              host->certificate.key_bits < 2048);
      if (weak_cert && spread % 3 == 0) {
        host->asn = 64500;
      } else if (host->anonymous_offered() && host->max_policy() != SP::None &&
                 policy_info(host->max_policy()).deprecated) {
        host->asn = 64501 + static_cast<std::uint32_t>(spread % 2);
      } else {
        host->asn = 64503 + static_cast<std::uint32_t>(spread % 25);
      }
      ++spread;
    }
  }

  // ------------------------------------------------------ discovery fleet --
  // 962 discovery-server plans; weekly presence follows Fig. 2's series.
  {
    const int max_discovery = 962;
    const int server_count = index;
    for (int i = 0; i < max_discovery; ++i) {
      HostPlan host;
      host.index = index++;
      host.cohort = "DS";
      host.discovery = true;
      host.manufacturer = "OPC Foundation";
      host.application_uri = "urn:opcfoundation:ua:lds:" + std::to_string(i);
      host.product_uri = "http://opcfoundation.org/UA/LDS";
      host.application_name = "UA Local Discovery Server";
      host.modes = kModesN;
      host.policies = pN;
      host.tokens = {UT::Anonymous};
      host.certificate.present = false;
      host.asn = 64503 + static_cast<std::uint32_t>(i % 25);
      for (int w = 0; w < kNumMeasurements; ++w) {
        if (i >= targets.discovery_found[w]) host.absence_mask |= static_cast<std::uint8_t>(1u << w);
      }
      plan.hosts.push_back(std::move(host));
    }
    // Reference wiring: every via-reference-only server is announced by the
    // first discovery servers (which are present in all weeks).
    int ds_cursor = 0;
    for (int s = 0; s < server_count; ++s) {
      if (!plan.hosts[static_cast<std::size_t>(s)].via_reference_only) continue;
      plan.discovery_references.emplace_back(server_count + (ds_cursor % 200), s);
      ++ds_cursor;
    }
  }

  // Final weekly totals check (Fig. 2).
  for (int w = 0; w < kNumMeasurements; ++w) {
    long servers = 0, discovery = 0;
    for (const auto& host : plan.hosts) {
      if (!host.present_in_week(w)) continue;
      if (host.discovery) {
        ++discovery;
      } else if (!host.via_reference_only || w >= 3) {
        ++servers;
      }
    }
    verify({{"weekly servers", targets.servers_found[w], servers},
            {"weekly discovery", targets.discovery_found[w], discovery}});
  }

  return plan;
}

}  // namespace opcua_study
