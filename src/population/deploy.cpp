#include "population/deploy.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "crypto/x509.hpp"
#include "netsim/mqtt_service.hpp"
#include "netsim/opcua_service.hpp"
#include "population/profiles.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {

constexpr Ipv4 kPopulationBase = make_ipv4(20, 0, 0, 0);
constexpr Ipv4 kDummyBase = make_ipv4(30, 0, 0, 0);
constexpr std::uint32_t kAsBlockBits = 17;  // each AS owns a /15

Ipv4 as_base(std::uint32_t asn) {
  return kPopulationBase + ((asn - 64500) << kAsBlockBits);
}

}  // namespace

Deployer::Deployer(const PopulationPlan& plan, DeployConfig config)
    : plan_(plan), config_(config), keys_(config.seed, config.key_cache_path) {
  // Union-find over discovery references: a discovery server must share a
  // shard with every host it points at (see ShardSpec).
  for (const auto& host : plan_.hosts) component_[host.index] = host.index;
  const std::function<int(int)> find = [&](int index) {
    int root = index;
    while (component_[root] != root) root = component_[root];
    while (component_[index] != root) {
      const int next = component_[index];
      component_[index] = root;
      index = next;
    }
    return root;
  };
  for (const auto& [ds_index, target_index] : plan_.discovery_references) {
    if (!component_.contains(ds_index) || !component_.contains(target_index)) continue;
    const int a = find(ds_index);
    const int b = find(target_index);
    if (a != b) component_[std::max(a, b)] = std::min(a, b);  // smallest index wins
  }
  for (const auto& host : plan_.hosts) component_[host.index] = find(host.index);
}

int Deployer::shard_of(const HostPlan& host, int shard_count) const {
  if (shard_count <= 1) return 0;
  const auto it = component_.find(host.index);
  const int root = it != component_.end() ? it->second : host.index;
  return root % shard_count;
}

int Deployer::shard_of(const MqttHostPlan& host, int shard_count) const {
  if (shard_count <= 1) return 0;
  return host.index % shard_count;
}

Ipv4 Deployer::ip_of(const HostPlan& host, int week) const {
  if (host.dynamic_ip) {
    return as_base(host.asn) + 0x10000 +
           static_cast<Ipv4>(host.index) * 8 + static_cast<Ipv4>(week);
  }
  return as_base(host.asn) + 16 + static_cast<Ipv4>(host.index);
}

Ipv4 Deployer::ip_of(const MqttHostPlan& host) const {
  // Brokers live at base+0x8000, between the static (base+16+) and
  // dynamic (base+0x10000+) OPC UA ranges — no collision in any week.
  return as_base(host.asn) + 0x8000 + static_cast<Ipv4>(host.index);
}

std::vector<Cidr> Deployer::exclusion_list() const {
  // ~5.78 M addresses inside the dummy space (the paper excluded 5.79 M
  // opted-out addresses, 0.13 % of the IPv4 space).
  return {parse_cidr("30.192.0.0/10"), parse_cidr("30.128.0.0/12"),
          parse_cidr("30.64.0.0/13"), parse_cidr("31.0.0.0/19")};
}

std::pair<std::string, std::size_t> Deployer::key_id_for(const HostPlan& host, bool dual) const {
  std::string label;
  std::size_t bits = dual ? 1024 : host.certificate.key_bits;
  if (!dual && host.certificate.reuse_group >= 0) {
    const auto& group = plan_.reuse_groups[static_cast<std::size_t>(host.certificate.reuse_group)];
    label = "group-" + std::to_string(group.id);
    bits = group.key_bits;
  } else {
    label = "host-" + std::to_string(host.index) + (dual ? "-dual" : "");
  }
  if (config_.fast_keys) bits = 512;
  return {label, bits};
}

std::pair<std::string, std::size_t> Deployer::key_id_for(const MqttHostPlan& host) const {
  std::string label;
  std::size_t bits = host.key_bits;
  if (host.reuse_group >= 0) {
    const auto& group = plan_.reuse_groups[static_cast<std::size_t>(host.reuse_group)];
    // Same label as the group's OPC UA members: one private key, two
    // services — the cross-protocol sharing the matcher must not link.
    label = "group-" + std::to_string(group.id);
    bits = group.key_bits;
  } else {
    label = "mqtt-" + std::to_string(host.index);
  }
  if (config_.fast_keys) bits = 512;
  return {label, bits};
}

const RsaKeyPair& Deployer::keypair_for_label(const std::string& label, std::size_t bits) {
  const auto it = key_memo_.find(label);
  if (it != key_memo_.end()) return it->second;
  return key_memo_.emplace(label, keys_.get(label, bits)).first->second;
}

const RsaKeyPair& Deployer::keypair_for(const HostPlan& host, bool dual) {
  const auto [label, bits] = key_id_for(host, dual);
  return keypair_for_label(label, bits);
}

void Deployer::prefetch_keys(int week, const ShardSpec& shard) {
  // RSA generation dominates deployment wall-clock; batch-generate this
  // week's corpus in parallel, then let the serial host loop hit the
  // KeyFactory cache. Per-label Rng streams make the keys — and therefore
  // the deployed snapshot — identical for any key_threads value.
  std::vector<std::pair<std::string, std::size_t>> wants;
  bool needs_ca = false;
  for (const auto& host : plan_.hosts) {
    if (!host.present_in_week(week)) continue;
    if (shard_of(host, shard.count) != shard.index) continue;
    if (!host.certificate.present) continue;
    wants.push_back(key_id_for(host, false));
    if (host.certificate.dual_certificate) wants.push_back(key_id_for(host, true));
    if (host.certificate.ca_signed) needs_ca = true;
  }
  for (const auto& broker : plan_.mqtt_hosts) {
    if (!broker.present_in_week(week)) continue;
    if (shard_of(broker, shard.count) != shard.index) continue;
    wants.push_back(key_id_for(broker));
  }
  if (needs_ca) wants.emplace_back("study-ca", config_.fast_keys ? 512 : 2048);
  keys_.prefetch(wants, config_.key_threads);
}

std::shared_ptr<const MqttBrokerConfig> Deployer::mqtt_config_for(const MqttHostPlan& host) {
  if (const auto it = mqtt_memo_.find(host.index); it != mqtt_memo_.end()) return it->second;

  const auto [label, bits] = key_id_for(host);
  const RsaKeyPair& keys = keypair_for_label(label, bits);
  CertificateSpec spec;
  spec.signature_hash = host.signature_hash;
  spec.not_before_days = host.not_before_days;
  spec.not_after_days = host.not_before_days + 365 * 20;
  if (host.reuse_group >= 0) {
    // Mirror the OPC UA reuse-group certificate field-for-field (subject,
    // URI, serial, validity): with the class and NotBefore copied from a
    // group member by add_mqtt_population, the DER is byte-identical to
    // the fleet certificate the OPC UA members present.
    const auto& group = plan_.reuse_groups[static_cast<std::size_t>(host.reuse_group)];
    spec.subject = {"factory-image", group.subject_organization, "AT"};
    spec.application_uri = "urn:" + group.subject_organization + ":image:opcua";
    spec.serial = Bignum{9000 + static_cast<std::uint64_t>(group.id)};
  } else {
    spec.subject = {"broker-" + std::to_string(host.index), "MsgWorks", "DE"};
    spec.application_uri = "urn:msgworks:broker:" + std::to_string(host.index);
    spec.serial = Bignum{500000 + static_cast<std::uint64_t>(host.index)};
  }

  auto config = std::make_shared<MqttBrokerConfig>();
  config->certificate_der = x509_create(spec, keys.pub, keys.priv);
  config->legacy_tls = host.legacy_tls;
  config->auth_mask = mqtt_auth::kPassword;
  if (host.anonymous_allowed) config->auth_mask |= mqtt_auth::kAnonymous;
  if (host.client_cert_auth) config->auth_mask |= mqtt_auth::kClientCert;
  config->software_version = host.software_version;
  config->topics = host.topics;
  return mqtt_memo_.emplace(host.index, std::move(config)).first->second;
}

Bytes Deployer::certificate_for(const HostPlan& host, int week, bool dual) {
  // Certificates are stable across weeks unless the host is ephemeral or a
  // renewal applies, so memoise on the effective generation.
  const auto& cert_plan = host.certificate;
  int generation = 0;
  if (cert_plan.ephemeral) {
    generation = week;
  } else if (host.renewal && host.renewal->dual == dual && week >= host.renewal->week) {
    generation = 100 + host.renewal->week;
  }
  const auto memo_key = std::make_pair(host.index, std::make_pair(generation, dual));
  if (const auto it = cert_memo_.find(memo_key); it != cert_memo_.end()) return it->second;

  const RsaKeyPair& keys = keypair_for(host, dual);
  CertificateSpec spec;
  spec.signature_hash = dual ? HashAlgorithm::sha1 : cert_plan.signature_hash;
  std::int64_t not_before = dual ? cert_plan.dual_not_before_days : cert_plan.not_before_days;
  if (host.renewal && host.renewal->dual == dual) {
    if (week >= host.renewal->week) {
      // The new certificate: plan class, issued at the renewal date.
      not_before = measurement_days(host.renewal->week) - 1;
    } else if (!dual) {
      // The pre-renewal certificate carries the *old* class; its issue date
      // predates the 2017 deprecation so the §5.5 NotBefore ledger stays
      // exact (only the plan's stable singles carry post-2017 SHA-1 dates).
      spec.signature_hash = host.renewal->old_hash;
      not_before = std::min(not_before, days_from_civil({2016, 6, 1}));
    }
  }
  if (cert_plan.ephemeral) not_before = measurement_days(week);
  spec.not_before_days = not_before;
  spec.not_after_days = not_before + 365 * 20;
  spec.serial = Bignum{static_cast<std::uint64_t>(host.index) * 1000 +
                       static_cast<std::uint64_t>(generation) * 2 + (dual ? 1 : 0) + 1};

  if (!dual && cert_plan.reuse_group >= 0) {
    const auto& group = plan_.reuse_groups[static_cast<std::size_t>(cert_plan.reuse_group)];
    spec.subject = {"factory-image", group.subject_organization, "AT"};
    spec.application_uri = "urn:" + group.subject_organization + ":image:opcua";
    spec.serial = Bignum{9000 + static_cast<std::uint64_t>(group.id)};
  } else {
    spec.subject = {"device-" + std::to_string(host.index) + (dual ? "-alt" : ""),
                    host.manufacturer, "DE"};
    spec.application_uri = host.application_uri;
  }
  Bytes der;
  if (!dual && cert_plan.ca_signed) {
    spec.issuer = X509Name{"Industrial Device CA", "TrustWorks CA GmbH", "DE"};
    const RsaKeyPair& ca = keys_.get("study-ca", config_.fast_keys ? 512 : 2048);
    der = x509_create(spec, keys.pub, ca.priv);
  } else {
    der = x509_create(spec, keys.pub, keys.priv);
  }
  return cert_memo_.emplace(memo_key, std::move(der)).first->second;
}

std::shared_ptr<AddressSpace> Deployer::address_space_for(const HostPlan& host) {
  auto space = std::make_shared<AddressSpace>();
  Rng rng = Rng(config_.seed).child("space-" + std::to_string(host.index));

  std::uint16_t ns = 0;
  switch (host.classification) {
    case PlannedClass::production: {
      const auto& pool = profiles::production_namespaces();
      ns = space->add_namespace(pool[static_cast<std::size_t>(host.index) % pool.size()]);
      if (host.index % 3 == 0) space->add_namespace(pool[(static_cast<std::size_t>(host.index) + 1) % pool.size()]);
      break;
    }
    case PlannedClass::test: {
      const auto& pool = profiles::test_namespaces();
      ns = space->add_namespace(pool[static_cast<std::size_t>(host.index) % pool.size()]);
      break;
    }
    case PlannedClass::unclassified:
      // Standard namespace only (the paper's 156 unlabelable systems):
      // vendor nodes live in ns 0 with high ids.
      ns = 0;
      break;
    case PlannedClass::not_applicable:
      ns = space->add_namespace("urn:" + host.manufacturer + ":internal");
      break;
  }

  const std::uint32_t id_base = ns == 0 ? 50000 : 100;
  const NodeId root(ns, id_base);
  space->add_object(root, node_ids::kObjectsFolder, "Device");

  const int vars = host.variable_count > 0 ? host.variable_count : 12;
  const int methods = host.method_count > 0 ? host.method_count : 3;
  // ceil keeps measured fractions on the planned side of the Fig. 7
  // thresholds (0.97 / 0.10 / 0.86) regardless of the node count.
  const int readable =
      std::min(vars, static_cast<int>(std::ceil(host.readable_fraction * vars)));
  const int writable =
      std::min(vars, static_cast<int>(std::ceil(host.writable_fraction * vars)));
  const int executable =
      std::min(methods, static_cast<int>(std::ceil(host.executable_fraction * methods)));

  const auto& var_names = profiles::variable_names();
  for (int i = 0; i < vars; ++i) {
    std::uint8_t access = 0;
    if (i < readable) access |= access_level::kCurrentRead;
    // Writable nodes are spread across the readable prefix so that
    // read/write flags are not perfectly correlated.
    if (i % 7 != 0 ? (i < writable) : (vars - 1 - i < writable)) {
      access |= access_level::kCurrentWrite;
    }
    const std::string name =
        var_names[static_cast<std::size_t>(i) % var_names.size()] + "_" + std::to_string(i);
    Variant value;
    switch (i % 3) {
      case 0: value = Variant{rng.real() * 100.0}; break;
      case 1: value = Variant{static_cast<std::int32_t>(rng.below(1000))}; break;
      default: value = Variant{"value-" + std::to_string(rng.below(100))}; break;
    }
    space->add_variable(NodeId(ns, id_base + 1 + static_cast<std::uint32_t>(i)), root, name,
                        std::move(value), access);
  }
  const auto& method_names = profiles::method_names();
  for (int i = 0; i < methods; ++i) {
    const std::string name =
        method_names[static_cast<std::size_t>(i) % method_names.size()] + "_" + std::to_string(i);
    space->add_method(NodeId(ns, id_base + 10000 + static_cast<std::uint32_t>(i)), root, name,
                      i < executable);
  }
  return space;
}

ServerConfig Deployer::server_config(const HostPlan& host, int week) {
  ServerConfig config;
  config.identity.application_uri = host.application_uri;
  config.identity.product_uri = host.product_uri;
  config.identity.application_name = host.application_name;
  config.identity.application_type =
      host.discovery ? ApplicationType::DiscoveryServer : ApplicationType::Server;
  config.identity.software_version = host.software_version;
  if (host.renewal && host.renewal->software_update && week >= host.renewal->week) {
    config.identity.software_version = "1.3.0";
  }
  config.trust_all_client_certs = host.trust_all_client_certs;
  config.reject_anonymous_sessions = host.reject_anonymous_sessions;
  config.reject_all_sessions = host.reject_all_sessions;
  config.users = {{"operator", "secret-" + std::to_string(host.index)}};
  config.address_space = address_space_for(host);

  const std::string url = "opc.tcp://" + format_ipv4(ip_of(host, week)) + ":" +
                          std::to_string(host.port) + "/";
  int cert_index = -1;
  if (host.certificate.present) {
    config.certificates.push_back(certificate_for(host, week, false));
    config.private_keys.push_back(keypair_for(host, false).priv);
    cert_index = 0;
  }

  auto add_endpoint = [&](MessageSecurityMode mode, SecurityPolicy policy, int cert) {
    EndpointConfig ep;
    ep.url = url;
    ep.mode = mode;
    ep.policy = policy;
    ep.token_types = host.tokens;
    ep.certificate_index = cert;
    config.endpoints.push_back(std::move(ep));
  };

  if (host.offers_none_mode()) add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, cert_index);
  for (MessageSecurityMode mode : host.modes) {
    if (mode == MessageSecurityMode::None) continue;
    for (SecurityPolicy policy : host.policies) {
      if (policy == SecurityPolicy::None) continue;
      add_endpoint(mode, policy, cert_index);
    }
  }
  if (host.certificate.dual_certificate && host.certificate.present) {
    config.certificates.push_back(certificate_for(host, week, true));
    config.private_keys.push_back(keypair_for(host, true).priv);
    // The extra endpoint re-announces the host's first endpoint with the
    // second certificate (multi-application devices in the wild).
    EndpointConfig ep = config.endpoints.front();
    ep.certificate_index = 1;
    config.endpoints.push_back(std::move(ep));
  }
  return config;
}

void Deployer::deploy_week(Network& net, int week, const ShardSpec& shard) {
  // AS database.
  for (std::uint32_t asn = 64500; asn <= 64530; ++asn) {
    std::string name = "Transit-" + std::to_string(asn);
    if (asn == kIiotAsn) name = "FlowFabric IIoT Networks";
    if (asn == kRegionalAsn1) name = "Regio-Net East";
    if (asn == kRegionalAsn2) name = "AlpenTel West";
    net.as_db().add(Cidr{as_base(asn), 32 - static_cast<int>(kAsBlockBits)}, AsInfo{asn, name});
  }
  net.as_db().add(Cidr{kDummyBase, 8}, AsInfo{64998, "MiscHosting"});

  // OPC UA hosts: generate the week's key corpus in parallel first, then
  // build servers serially against the warm cache.
  prefetch_keys(week, shard);
  std::map<int, const HostPlan*> by_index;
  for (const auto& host : plan_.hosts) by_index[host.index] = &host;

  for (const auto& host : plan_.hosts) {
    if (!host.present_in_week(week)) continue;
    if (shard_of(host, shard.count) != shard.index) continue;
    ServerConfig config = server_config(host, week);
    if (host.discovery) {
      // Attach foreign endpoints for every referenced host present this week.
      for (const auto& [ds_index, target_index] : plan_.discovery_references) {
        if (ds_index != host.index) continue;
        const HostPlan* target = by_index.at(target_index);
        if (!target->present_in_week(week)) continue;
        EndpointDescription foreign;
        foreign.endpoint_url = "opc.tcp://" + format_ipv4(ip_of(*target, week)) + ":" +
                               std::to_string(target->port) + "/";
        foreign.server.application_uri = target->application_uri;
        foreign.server.application_name = {"en", target->application_name};
        foreign.security_mode = MessageSecurityMode::None;
        foreign.security_policy_uri = std::string(policy_info(SecurityPolicy::None).uri);
        config.foreign_endpoints.push_back(std::move(foreign));
      }
    }
    auto server = std::make_shared<Server>(std::move(config),
                                           config_.seed ^ static_cast<std::uint64_t>(host.index));
    net.listen(ip_of(host, week), host.port, make_opcua_factory(std::move(server)));
  }

  // MQTT-over-TLS brokers (fleet is empty unless add_mqtt_population()).
  for (const auto& broker : plan_.mqtt_hosts) {
    if (!broker.present_in_week(week)) continue;
    if (shard_of(broker, shard.count) != shard.index) continue;
    net.listen(ip_of(broker), broker.port, make_mqtt_factory(mqtt_config_for(broker)));
  }

  // Non-OPC-UA port-4840 background population.
  Rng dummy_rng = Rng(config_.seed).child("dummies");
  const char* banners[] = {"nginx", "lighttpd", "Microsoft-IIS/8.5", "BusyBox httpd", "mini_httpd"};
  for (int i = 0; i < config_.dummy_hosts; ++i) {
    // Draw ip + banner for every index regardless of shard so the RNG
    // stream — and therefore each dummy's address — is partition-invariant.
    const Ipv4 ip = kDummyBase + static_cast<Ipv4>(dummy_rng.below(1u << 24));
    const std::string banner = banners[dummy_rng.below(5)];
    // Deal dummies by *address*, not index: colliding draws then land in
    // the same shard, where listen() overwrites — the same dedup a single
    // Network applies — keeping sweep counters shard-count-invariant.
    if (shard.count > 1 && static_cast<int>(ip % static_cast<Ipv4>(shard.count)) != shard.index) {
      continue;
    }
    net.listen(ip, kOpcUaDefaultPort, [banner]() -> std::unique_ptr<ConnectionHandler> {
      return std::make_unique<DummyBannerService>(banner);
    });
  }
}

}  // namespace opcua_study
