// Manufacturer / namespace / node-name pools for the synthetic population.
//
// Manufacturer names are the clusters the paper reports (Fig. 2: Bachmann,
// Beckhoff, Wago, OPC Foundation discovery servers, "other"); the
// fictitious ones fill the paper's anonymized roles (the all-None vendor of
// §B.1.1, the energy/parking operators of §5.3/§5.4).
#pragma once

#include <string>
#include <vector>

namespace opcua_study {

namespace profiles {

// Application-URI prefixes per manufacturer cluster: the assessor clusters
// hosts the way the paper "manually clustered the values of the
// ApplicationURI field".
struct ManufacturerProfile {
  std::string name;
  std::string uri_prefix;
  std::string product_uri;
};

inline const std::vector<ManufacturerProfile>& manufacturers() {
  static const std::vector<ManufacturerProfile> kProfiles = {
      {"Bachmann", "urn:bachmann:m1com:", "http://bachmann.info/M1"},
      {"Beckhoff", "urn:beckhoff:TwinCAT:", "http://beckhoff.com/TwinCAT"},
      {"Wago", "urn:wago:codesys:", "http://wago.com/e!COCKPIT"},
      {"Siemens", "urn:siemens:s7:", "http://siemens.com/simatic"},
      {"B&R", "urn:br-automation:pvi:", "http://br-automation.com/APROL"},
      {"Unified Automation", "urn:unifiedautomation:uaserver:", "http://unifiedautomation.com"},
      {"open62541", "urn:open62541.server.application:", "http://open62541.org"},
      {"FreeOpcUa", "urn:freeopcua:python:", "http://freeopcua.github.io"},
      {"EnergoTec", "urn:energotec:gateway:", "http://energotec.example/iotgw"},
      {"OPC Foundation", "urn:opcfoundation:ua:lds:", "http://opcfoundation.org/UA/LDS"},
      {"other", "urn:generic:opcua:", "http://example.org/opcua"},
  };
  return kProfiles;
}

inline const ManufacturerProfile& manufacturer(const std::string& name) {
  for (const auto& m : manufacturers()) {
    if (m.name == name) return m;
  }
  return manufacturers().back();
}

// Namespace URIs driving the §5.4 production/test classification.
inline const std::vector<std::string>& production_namespaces() {
  static const std::vector<std::string> kNs = {
      "http://PLCopen.org/OpcUa/IEC61131-3/",
      "urn:plant:energy:substation",
      "urn:parking:guidance:lot",
      "urn:water:sewerage:scada",
      "http://siemens.com/simatic-s7-opcua",
      "urn:factory:line:press",
  };
  return kNs;
}

inline const std::vector<std::string>& test_namespaces() {
  static const std::vector<std::string> kNs = {
      "http://examples.freeopcua.github.io",
      "urn:freeopcua:python:server:example",
      "urn:open62541:tutorial:server",
  };
  return kNs;
}

// Node-name pools (the paper quotes m3InflowPerHour, rSetFillLevel and the
// AddEndpoint function; parking systems exposed license-plate data).
inline const std::vector<std::string>& variable_names() {
  static const std::vector<std::string> kNames = {
      "m3InflowPerHour", "rSetFillLevel",   "rTankLevel",      "iPumpState",
      "rFlowSetpoint",   "LicensePlateCam1", "FreeParkingLots", "rBoilerTemp",
      "iValvePosition",  "rPressureBar",     "EnergyMeter_kWh", "iBatchCounter",
      "bDoorOpen",       "rConveyorSpeed",   "iAlarmCode",      "sRecipeName",
  };
  return kNames;
}

// Broker banners / announced topic prefixes for the MQTT-over-TLS family
// (the second protocol backend, scanner/protocol.hpp). Versions mirror the
// broker mix TLS/MQTT scans report in the wild.
inline const std::vector<std::string>& mqtt_software_versions() {
  static const std::vector<std::string> kVersions = {
      "mosquitto/1.6.9", "mosquitto/2.0.11", "emqx/4.2.3", "HiveMQ/4.5.1", "VerneMQ/1.11.0",
  };
  return kVersions;
}

inline const std::vector<std::string>& mqtt_topic_prefixes() {
  static const std::vector<std::string> kTopics = {
      "factory/line1/", "energy/meters/", "parking/lots/", "water/pumps/", "building/hvac/",
  };
  return kTopics;
}

inline const std::vector<std::string>& method_names() {
  static const std::vector<std::string> kNames = {
      "AddEndpoint", "Start",         "Stop",        "ResetCounters",
      "AckAlarm",    "ReloadConfig",  "SetSetpoint", "UpdateFirmware",
  };
  return kNames;
}

}  // namespace profiles

}  // namespace opcua_study
