// Follow-up-campaign generator: a deterministic evolution model that
// turns one recorded campaign into a plausible later one.
//
// The source paper scanned in 2020; the PAM 2022 follow-up ("Missed
// Opportunities", Dahlmanns et al.) asked what those operators did in the
// two years between: did they migrate to secure configurations, churn
// addresses, renew certificates — or change nothing? This model replays
// that history onto measured records. Every transition is drawn from an
// Rng stream derived from (seed, ip, port), so a host's fate is a pure
// function of the config and its identity: evolution is reproducible,
// order-independent, and safe to run from concurrent chunk workers.
//
// Transitions per base host (all probabilities independent):
//   retirement        host disappears entirely
//   IP churn          host moves to a new address (31-bit bijection — no
//                     two churned hosts ever collide, and the churn range
//                     is disjoint from the base/new-deployment ranges)
//   security upgrade  a None-only host gains a SignAndEncrypt endpoint
//                     with the recommended Basic256Sha256 policy
//   security downgrade  secure endpoints dropped, None kept/added
//   deprecated drop   Basic128Rsa15/Basic256 endpoints removed (or
//                     upgraded in place when nothing else would remain)
//   cert renewal      all presented certificates replaced by a freshly
//                     minted one; otherwise the old DER is kept verbatim
//                     (the §5.3 copying behaviour the matcher exploits)
//   anonymous drop/add  anonymous token removed from / added to endpoints
//
// On top of the survivors, new_deployments() emits brand-new hosts (the
// population growth every follow-up study observed), with a posture mix
// skewed more secure than the 2020 base — but not clean.
#pragma once

#include <functional>
#include <optional>

#include "crypto/keycache.hpp"
#include "scanner/record.hpp"

namespace opcua_study {

struct FollowupConfig {
  std::uint64_t seed = 20220301;
  /// Stamped into the generated snapshot's campaign block (study layer).
  std::string campaign_label = "followup-2022";
  /// 0 = derive from the base campaign (final measurement + two years).
  std::int64_t epoch_days = 0;

  // Per-host transition probabilities.
  double retire = 0.12;
  double ip_churn = 0.25;
  double upgrade = 0.08;
  double downgrade = 0.02;
  double drop_deprecated = 0.05;
  double cert_renewal = 0.30;
  double drop_anonymous = 0.06;
  double add_anonymous = 0.02;
  /// New deployments per base host (applied to the base host count).
  double new_deployment_rate = 0.15;

  /// Certificates minted for renewals and new deployments come from a
  /// fixed fleet of (keys x serials) DERs generated once up front —
  /// renewal cost is O(fleet), not O(hosts), which is what keeps the
  /// 1M-host bench cheap. Renewed hosts drawing the same fleet cert simply
  /// extend the paper's certificate-reuse clusters. 2048-bit keys keep a
  /// minted certificate conformant with the secure policies: a renewal
  /// must not flip a clean host to "too weak certificate" by itself
  /// (benches/tests that only need fingerprints may drop to 512).
  std::size_t mint_keys = 16;
  std::size_t mint_fleet = 1024;
  std::size_t mint_key_bits = 2048;
  std::string key_cache_path = KeyFactory::default_cache_path();
};

class FollowupModel {
 public:
  explicit FollowupModel(FollowupConfig config);

  /// Evolve one base host. nullopt = retired. Pure function of
  /// (config, base) — thread-safe, order-independent.
  std::optional<HostScanRecord> evolve(const HostScanRecord& base) const;

  /// Brand-new deployments for a base population of `base_hosts` servers;
  /// deterministic, disjoint address range from both base and churn.
  /// visit_new_deployments generates one record at a time (the streamed
  /// study path never materializes the arrivals).
  std::vector<HostScanRecord> new_deployments(std::uint64_t base_hosts) const;
  void visit_new_deployments(std::uint64_t base_hosts,
                             const std::function<void(HostScanRecord&&)>& fn) const;
  std::uint64_t new_deployment_count(std::uint64_t base_hosts) const;

  /// The churned address of `ip`: a 31-bit multiplicative bijection with
  /// the top bit forced on, so churned addresses never collide with each
  /// other nor with the (sub-2^31) base population.
  static Ipv4 churned_ip(Ipv4 ip);

  const FollowupConfig& config() const { return config_; }

 private:
  const Bytes& minted_cert(std::uint64_t slot) const;

  FollowupConfig config_;
  std::vector<Bytes> fleet_;  // pre-minted renewal/new-deployment certs
};

}  // namespace opcua_study
