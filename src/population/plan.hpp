// Deployment plans: the ground-truth configuration of every simulated host.
//
// The generator emits *plans* (pure data, no crypto, no sockets) that the
// deployer later instantiates as real OPC UA servers. Keeping plans cheap
// lets the calibration tests assert every paper marginal without
// generating ~900 RSA keys.
//
// IMPORTANT: the analysis pipeline never reads plans — it only sees what
// the scanner measured over the wire. Plans are the "real Internet" the
// paper scanned; the assessment must *recover* these distributions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hash.hpp"
#include "opcua/messages.hpp"
#include "opcua/secpolicy.hpp"
#include "opcua/transport.hpp"
#include "util/date.hpp"
#include "util/ipv4.hpp"

namespace opcua_study {

/// Paper's Table 2 accessibility outcome for a host.
enum class PlannedOutcome {
  accessible,        // anonymous session succeeds
  auth_rejected,     // session refused (no anonymous / faulty config)
  channel_rejected,  // server validates client certs strictly
};

/// Paper's §5.4 classification of accessible systems.
enum class PlannedClass { production, test, unclassified, not_applicable };

struct CertificatePlan {
  bool present = true;               // None-only endpoints sometimes carry no cert
  HashAlgorithm signature_hash = HashAlgorithm::sha256;
  std::size_t key_bits = 2048;
  /// >= 0: index of the reuse group this host's certificate belongs to
  /// (all members share one certificate + private key, §5.3).
  int reuse_group = -1;
  /// NotBefore (days since 1970) for the §5.5 longitudinal analysis.
  std::int64_t not_before_days = 0;
  /// Host presents a second, distinct certificate on one endpoint.
  bool dual_certificate = false;
  std::int64_t dual_not_before_days = 0;
  /// Certificate is regenerated (same key, fresh serial/NotBefore) at every
  /// measurement — the §5.5 churn population explaining 4296 total certs.
  bool ephemeral = false;
  /// CA-signed instead of self-signed (the paper found exactly 2).
  bool ca_signed = false;
};

/// Certificate change on a specific week (84 renewal events in the study).
struct RenewalPlan {
  int week = -1;                       // measurement index of the change
  HashAlgorithm old_hash = HashAlgorithm::sha1;  // class before renewal
  bool software_update = false;        // SoftwareVersion bump same week (9 cases)
  bool dual = false;                   // the change affects the second certificate
};

struct HostPlan {
  int index = 0;
  std::string cohort;          // calibration cohort tag (C0, C1, ... C7, DS)
  bool discovery = false;

  std::string manufacturer;    // cluster label (Fig. 2 / Fig. 8a)
  std::string application_uri;
  std::string product_uri;
  std::string application_name;
  std::string software_version = "1.2.0";

  std::uint16_t port = kOpcUaDefaultPort;
  std::uint32_t asn = 0;
  /// Only reachable through discovery references (non-default port, Fig. 2).
  bool via_reference_only = false;

  std::vector<MessageSecurityMode> modes;
  std::vector<SecurityPolicy> policies;
  std::vector<UserTokenType> tokens;

  CertificatePlan certificate;
  bool trust_all_client_certs = true;
  bool reject_anonymous_sessions = false;
  bool reject_all_sessions = false;

  PlannedOutcome outcome = PlannedOutcome::auth_rejected;
  PlannedClass classification = PlannedClass::not_applicable;

  // Address-space shape for accessible hosts (Fig. 7 raw distributions).
  int variable_count = 0;
  int method_count = 0;
  double readable_fraction = 1.0;
  double writable_fraction = 0.0;
  double executable_fraction = 0.0;

  // Longitudinal behaviour.
  int arrival_week = 0;                 // first measurement the host exists
  std::uint8_t absence_mask = 0;        // bit w set = offline in week w (flappers)
  bool dynamic_ip = false;              // new IP every measurement
  std::optional<RenewalPlan> renewal;

  bool anonymous_offered() const {
    for (UserTokenType t : tokens) {
      if (t == UserTokenType::Anonymous) return true;
    }
    return false;
  }
  bool present_in_week(int week) const {
    return week >= arrival_week && ((absence_mask >> week) & 1) == 0;
  }
  bool offers_none_mode() const {
    for (auto m : modes) {
      if (m == MessageSecurityMode::None) return true;
    }
    return false;
  }
  SecurityPolicy max_policy() const {
    SecurityPolicy best = SecurityPolicy::None;
    for (auto p : policies) {
      if (policy_info(p).rank > policy_info(best).rank) best = p;
    }
    return best;
  }
};

/// A simulated MQTT-over-TLS broker — the second protocol family of the
/// plugin scan layer (scanner/protocol.hpp). Brokers carry TLS posture,
/// not OPC UA endpoint lists, so they get their own plan type; the fleet
/// stays empty unless add_mqtt_population() is called, keeping the default
/// deployment byte-identical to the pre-registry population.
struct MqttHostPlan {
  int index = 0;
  std::uint32_t asn = 0;
  std::uint16_t port = 8883;  // kMqttTlsDefaultPort (scanner/record.hpp)
  /// >= 0: the broker presents the same certificate and private key as the
  /// OPC UA reuse group — one device image running both services. The
  /// deployer resolves this to the group's KeyFactory label, so the DER is
  /// byte-identical to the OPC UA fleet certificate.
  int reuse_group = -1;
  HashAlgorithm signature_hash = HashAlgorithm::sha256;
  std::size_t key_bits = 2048;
  std::int64_t not_before_days = 0;
  /// Only deprecated TLS suites — the posture analog of a deprecated
  /// OPC UA security policy (drives is_deficient()).
  bool legacy_tls = false;
  bool anonymous_allowed = false;  // CONNECT succeeds without credentials
  bool client_cert_auth = false;   // accepts mutual-TLS authentication
  std::string software_version = "mosquitto/1.6.9";
  std::vector<std::string> topics;

  int arrival_week = 0;
  std::uint8_t absence_mask = 0;  // bit w set = offline in week w
  bool present_in_week(int week) const {
    return week >= arrival_week && ((absence_mask >> week) & 1) == 0;
  }
};

/// Reuse-group metadata (§5.3): group 0 is the 385-host / 24-AS cluster.
struct ReuseGroupPlan {
  int id = 0;
  HashAlgorithm signature_hash = HashAlgorithm::sha1;
  std::size_t key_bits = 2048;
  int as_spread = 1;  // number of distinct ASes the members must span
  std::string subject_organization;
};

struct PopulationPlan {
  std::vector<HostPlan> hosts;          // servers + discovery servers
  std::vector<ReuseGroupPlan> reuse_groups;
  /// discovery host index -> indices of hosts it references.
  std::vector<std::pair<int, int>> discovery_references;
  /// MQTT-over-TLS brokers; empty unless add_mqtt_population() was called.
  std::vector<MqttHostPlan> mqtt_hosts;

  std::vector<const HostPlan*> servers_in_week(int week) const;
  std::vector<const HostPlan*> discovery_in_week(int week) const;
};

/// Weekly target totals (Fig. 2): found hosts = servers + discovery.
/// Derived ledger: 932 stable port-4840 servers + cumulative G0 arrivals
/// {0,22,49,77,102,115,134,137} + active departers {108,95,79,46,29,18,0,0}
/// − offline clean flappers {0,0,5,0,4,3,22,0} + 45 referenced hosts (w≥3).
struct WeeklyTargets {
  int servers_found[kNumMeasurements] = {1040, 1049, 1055, 1100, 1104, 1107, 1089, 1114};
  int discovery_found[kNumMeasurements] = {721, 744, 781, 773, 798, 962, 878, 807};
  int total(int w) const { return servers_found[w] + discovery_found[w]; }
};

/// Build the full calibrated population (1114 servers + discovery fleet).
PopulationPlan build_population_plan(std::uint64_t seed);

/// Grow `count` MQTT-over-TLS brokers into plan.mqtt_hosts (deterministic
/// in `seed`). A slice of the fleet shares certificates with the OPC UA
/// reuse groups already in the plan — the cross-protocol device images the
/// matcher must *not* link (series/matcher.cpp) — the rest get their own
/// keys with a deterministic mix of legacy TLS, anonymous access, and
/// arrival/flap behaviour.
void add_mqtt_population(PopulationPlan& plan, std::uint64_t seed, int count);

}  // namespace opcua_study
