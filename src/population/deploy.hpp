// Deployer: instantiate a PopulationPlan as real OPC UA servers on the
// simulated Internet for a given measurement week.
//
// Everything the scanner later measures is realized here physically:
// real X.509 certificates (shared private keys for reuse groups, weekly
// regeneration for ephemerals, renewal events), endpoint lists per
// (mode × policy), identity-token offerings, trust behaviour, address
// spaces with per-node anonymous access rights, discovery servers with
// foreign endpoint references, and the non-OPC-UA port-4840 background
// population.
#pragma once

#include <map>
#include <memory>

#include "crypto/keycache.hpp"
#include "netsim/network.hpp"
#include "opcua/server.hpp"
#include "population/plan.hpp"

namespace opcua_study {

struct MqttBrokerConfig;

struct DeployConfig {
  std::uint64_t seed = 1;
  /// Non-OPC-UA services with an open port 4840 (the paper: only 0.5 ‰ of
  /// such hosts speak OPC UA; scaled down for simulation size).
  int dummy_hosts = 20000;
  /// Tests: clamp RSA keys to 512 bits (plans keep their nominal size,
  /// certificate *classification* then differs — only use in protocol
  /// tests, never in calibration benches).
  bool fast_keys = false;
  /// Worker threads for the keygen prefetch pass of deploy_week() (0 =
  /// hardware concurrency, 1 = serial). Every key label owns its own Rng
  /// stream, so the deployed snapshot is field-identical for any value.
  int key_threads = 0;
  std::string key_cache_path = KeyFactory::default_cache_path();
};

/// One partition of the simulated universe. The sharded study runner gives
/// every shard its own Network (and worker thread); hosts are assigned by
/// discovery-reference closure so a discovery server and every host it
/// references always land in the same shard — reference-following never
/// crosses a partition boundary.
struct ShardSpec {
  int index = 0;
  int count = 1;
};

class Deployer {
 public:
  Deployer(const PopulationPlan& plan, DeployConfig config);

  /// Register every host present in `week` (plus dummies) on `net`,
  /// restricted to the given shard. The default spec deploys everything.
  void deploy_week(Network& net, int week, const ShardSpec& shard = {});

  /// Shard a host belongs to under a `shard_count`-way partition
  /// (reference-closure component representative modulo shard count).
  int shard_of(const HostPlan& host, int shard_count) const;
  /// Brokers have no discovery references, so they shard by plain index.
  int shard_of(const MqttHostPlan& host, int shard_count) const;

  Ipv4 ip_of(const HostPlan& host, int week) const;
  Ipv4 ip_of(const MqttHostPlan& host) const;
  /// The scan exclusion list (paper §A.2: 5.79 M opted-out addresses).
  std::vector<Cidr> exclusion_list() const;

  std::size_t keys_generated() const { return keys_.generated(); }

 private:
  /// The (KeyFactory label, key bits) a host's primary or dual certificate
  /// uses — shared by the lazy keypair_for() path and the parallel
  /// prefetch pass so the two can never drift apart.
  std::pair<std::string, std::size_t> key_id_for(const HostPlan& host, bool dual) const;
  std::pair<std::string, std::size_t> key_id_for(const MqttHostPlan& host) const;
  /// Generate every RSA key `week`/`shard` will need on the worker pool
  /// before the (serial) server-construction loop runs.
  void prefetch_keys(int week, const ShardSpec& shard);
  Bytes certificate_for(const HostPlan& host, int week, bool dual);
  const RsaKeyPair& keypair_for(const HostPlan& host, bool dual);
  const RsaKeyPair& keypair_for_label(const std::string& label, std::size_t bits);
  /// The broker's wire config (certificate, TLS profile, auth methods) —
  /// stable across weeks, memoised, shared by every weekly redeploy.
  std::shared_ptr<const MqttBrokerConfig> mqtt_config_for(const MqttHostPlan& host);
  ServerConfig server_config(const HostPlan& host, int week);
  std::shared_ptr<AddressSpace> address_space_for(const HostPlan& host);

  const PopulationPlan& plan_;
  DeployConfig config_;
  KeyFactory keys_;
  std::map<std::string, RsaKeyPair> key_memo_;
  std::map<std::pair<int, std::pair<int, bool>>, Bytes> cert_memo_;  // (host,(week,dual))
  std::map<int, std::shared_ptr<const MqttBrokerConfig>> mqtt_memo_;
  /// host index -> smallest host index in its discovery-reference component.
  std::map<int, int> component_;
};

/// AS numbering used by the population (§B.1.2 narrative).
inline constexpr std::uint32_t kIiotAsn = 64500;       // the "(I)IoT ISP"
inline constexpr std::uint32_t kRegionalAsn1 = 64501;  // regional ISPs with
inline constexpr std::uint32_t kRegionalAsn2 = 64502;  // deprecated+anon hosts

}  // namespace opcua_study
