#include "scanner/dataset.hpp"

#include <sstream>

#include "crypto/x509.hpp"
#include "util/hex.hpp"

namespace opcua_study {

std::uint32_t Anonymizer::ip_id(Ipv4 ip) {
  const auto [it, inserted] = ip_ids_.try_emplace(ip, static_cast<std::uint32_t>(ip_ids_.size() + 1));
  (void)inserted;
  return it->second;
}

std::uint32_t Anonymizer::as_id(std::uint32_t asn) {
  const auto [it, inserted] = as_ids_.try_emplace(asn, static_cast<std::uint32_t>(as_ids_.size() + 1));
  (void)inserted;
  return it->second;
}

std::string to_release_json(HostScanRecord record, Anonymizer& anonymizer) {
  std::ostringstream out;
  out << "{\"host\":" << anonymizer.ip_id(record.ip) << ",\"as\":" << anonymizer.as_id(record.asn)
      << ",\"discovery\":" << (record.is_discovery_server() ? "true" : "false")
      << ",\"via_reference\":" << (record.found_via_reference ? "true" : "false");
  // ApplicationURIs often embed hostnames/serials; the release keeps only a
  // manufacturer-cluster hint, the rest is blackened.
  out << ",\"application_uri\":\"[blackened]\"";
  out << ",\"endpoints\":[";
  for (std::size_t i = 0; i < record.endpoints.size(); ++i) {
    const auto& ep = record.endpoints[i];
    if (i) out << ',';
    out << "{\"mode\":\"" << security_mode_name(ep.mode) << "\",\"policy\":\""
        << (ep.policy_known ? std::string(policy_info(ep.policy).short_name) : "?") << "\",\"tokens\":[";
    for (std::size_t t = 0; t < ep.token_types.size(); ++t) {
      if (t) out << ',';
      out << '"' << user_token_type_name(ep.token_types[t]) << '"';
    }
    out << ']';
    if (!ep.certificate_der.empty()) {
      try {
        const Certificate cert = x509_parse(ep.certificate_der);
        out << ",\"cert\":{\"sig\":\"" << hash_name(cert.signature_hash)
            << "\",\"key_bits\":" << cert.key_bits() << ",\"fingerprint\":\""
            << to_hex(x509_thumbprint(ep.certificate_der)).substr(0, 16)
            << "\",\"not_before_days\":" << cert.not_before_days
            << ",\"subject\":\"[blackened]\",\"san\":\"[blackened]\"}";
      } catch (const DecodeError&) {
        out << ",\"cert\":{\"error\":\"unparseable\"}";
      }
    }
    out << '}';
  }
  out << "],\"channel\":";
  switch (record.channel) {
    case ChannelOutcome::not_attempted: out << "\"not_attempted\""; break;
    case ChannelOutcome::established: out << "\"established\""; break;
    case ChannelOutcome::cert_rejected: out << "\"cert_rejected\""; break;
    case ChannelOutcome::failed: out << "\"failed\""; break;
  }
  out << ",\"session\":";
  switch (record.session) {
    case SessionOutcome::not_attempted: out << "\"not_attempted\""; break;
    case SessionOutcome::accessible: out << "\"accessible\""; break;
    case SessionOutcome::auth_rejected: out << "\"auth_rejected\""; break;
    case SessionOutcome::channel_rejected: out << "\"channel_rejected\""; break;
  }
  // Namespace URIs may identify operators: release only their count and the
  // classification inputs were consumed upstream. Node payload data is
  // excluded entirely (paper §A.1).
  out << ",\"namespace_count\":" << record.namespaces.size();
  out << ",\"nodes\":{\"total\":" << record.nodes.size() << "}";
  out << ",\"bytes_sent\":" << record.bytes_sent;
  out << ",\"duration_s\":" << record.duration_seconds;
  out << '}';
  return out.str();
}

std::string to_release_jsonl(const ScanSnapshot& snapshot, Anonymizer& anonymizer) {
  std::string out;
  for (const auto& host : snapshot.hosts) {
    out += to_release_json(host, anonymizer);
    out += '\n';
  }
  return out;
}

}  // namespace opcua_study
