// Dataset release: anonymization per the paper's §A.1.
//
// "we replace IP addresses and autonomous system IDs by consecutive
//  numbers as well as blacken fields in certificates containing equivalent
//  address information" — and payload data (node values) is excluded
// entirely, so address-space contents never leave the scanner.
#pragma once

#include <map>
#include <string>

#include "scanner/record.hpp"

namespace opcua_study {

/// Stable consecutive-id assignment across snapshots (the released dataset
/// spans all eight measurements).
class Anonymizer {
 public:
  std::uint32_t ip_id(Ipv4 ip);
  std::uint32_t as_id(std::uint32_t asn);
  std::size_t distinct_ips() const { return ip_ids_.size(); }

 private:
  std::map<Ipv4, std::uint32_t> ip_ids_;
  std::map<std::uint32_t, std::uint32_t> as_ids_;
};

/// One host record as a JSON line. Certificates are reduced to
/// non-identifying metadata (signature hash, key length, SHA-1 fingerprint
/// for reuse clustering, NotBefore); subjects/SANs are blackened.
std::string to_release_json(HostScanRecord record, Anonymizer& anonymizer);

/// Whole snapshot as JSONL.
std::string to_release_jsonl(const ScanSnapshot& snapshot, Anonymizer& anonymizer);

}  // namespace opcua_study
