#include "scanner/protocol.hpp"

#include <stdexcept>

#include "scanner/host_task.hpp"
#include "scanner/mqtt_task.hpp"

namespace opcua_study {

namespace {

class OpcUaProbe final : public ProtocolProbe {
 public:
  ProtocolId id() const override { return ProtocolId::opcua; }
  std::string_view name() const override { return "opcua"; }
  std::uint16_t default_port() const override { return kOpcUaDefaultPort; }
  std::unique_ptr<ProbeTask> make_task(const GrabberConfig& config, Network& network,
                                       std::uint64_t seed, std::uint64_t task_id, Ipv4 ip,
                                       std::uint16_t port) const override {
    return std::make_unique<HostGrabTask>(config, network, seed, task_id, ip, port);
  }
};

class MqttTlsProbe final : public ProtocolProbe {
 public:
  ProtocolId id() const override { return ProtocolId::mqtt_tls; }
  std::string_view name() const override { return "mqtt-tls"; }
  std::uint16_t default_port() const override { return kMqttTlsDefaultPort; }
  std::unique_ptr<ProbeTask> make_task(const GrabberConfig& config, Network& network,
                                       std::uint64_t seed, std::uint64_t task_id, Ipv4 ip,
                                       std::uint16_t port) const override {
    return std::make_unique<MqttGrabTask>(config, network, seed, task_id, ip, port);
  }
};

const OpcUaProbe kOpcUaProbe;
const MqttTlsProbe kMqttTlsProbe;

}  // namespace

const std::vector<const ProtocolProbe*>& protocol_registry() {
  static const std::vector<const ProtocolProbe*> registry = {&kOpcUaProbe, &kMqttTlsProbe};
  return registry;
}

const ProtocolProbe& protocol_probe(ProtocolId id) {
  for (const ProtocolProbe* probe : protocol_registry()) {
    if (probe->id() == id) return *probe;
  }
  throw std::invalid_argument("unknown protocol backend: " + protocol_name(id));
}

const ProtocolProbe* find_protocol_probe(std::string_view name) {
  for (const ProtocolProbe* probe : protocol_registry()) {
    if (probe->name() == name) return probe;
  }
  return nullptr;
}

std::optional<ParsedEndpoint> parse_endpoint_url(const std::string& url) {
  const ProtocolProbe* probe = nullptr;
  std::string_view scheme;
  for (const auto& [candidate, backend] :
       {std::pair<std::string_view, const ProtocolProbe*>{"opc.tcp://", &kOpcUaProbe},
        std::pair<std::string_view, const ProtocolProbe*>{"mqtts://", &kMqttTlsProbe}}) {
    if (url.rfind(candidate, 0) == 0) {
      scheme = candidate;
      probe = backend;
      break;
    }
  }
  if (probe == nullptr) return std::nullopt;

  std::string rest = url.substr(scheme.size());
  const auto slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const auto colon = rest.find(':');
  std::uint16_t port = probe->default_port();  // per-scheme default
  std::string host = rest;
  if (colon != std::string::npos) {
    host = rest.substr(0, colon);
    try {
      const int parsed = std::stoi(rest.substr(colon + 1));
      if (parsed < 1 || parsed > 65535) return std::nullopt;
      port = static_cast<std::uint16_t>(parsed);
    } catch (const std::exception&) {
      return std::nullopt;  // empty, non-numeric, or > INT_MAX
    }
  }
  try {
    return ParsedEndpoint{probe->id(), parse_ipv4(host), port};
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // hostname-based URL; the study follows IPs only
  }
}

}  // namespace opcua_study
