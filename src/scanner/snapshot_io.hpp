// Binary persistence for scan snapshots.
//
// The bench suite regenerates every table/figure from the same campaign;
// the first binary runs the scans and caches them, the rest load from disk
// (exactly like the paper's analyses ran on the recorded dataset rather
// than re-scanning per figure).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scanner/record.hpp"

namespace opcua_study {

void save_snapshots(const std::string& path, std::uint64_t seed,
                    const std::vector<ScanSnapshot>& snapshots);

/// Returns nullopt when the file is missing, corrupt, or was produced with
/// a different seed/format version.
std::optional<std::vector<ScanSnapshot>> load_snapshots(const std::string& path,
                                                        std::uint64_t seed);

}  // namespace opcua_study
