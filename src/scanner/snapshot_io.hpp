// Binary persistence for scan snapshots.
//
// The bench suite regenerates every table/figure from the same campaign;
// the first binary runs the scans and caches them, the rest load from disk
// (exactly like the paper's analyses ran on the recorded dataset rather
// than re-scanning per figure).
//
// Three format generations load through SnapshotReader:
//   v4 — retired monolithic row stream (whole-file decode, chunk index
//        synthesized on open);
//   v5 — chunked row stream: records in the v4 encoding, grouped into
//        fixed-size chunks, indexed by a footer;
//   v6 — the current *columnar* layout, written by default.
//
// Format v6 splits each chunk into fixed-width per-field columns plus one
// variable-length column, and hoists all certificate DER into a single
// file-level dictionary so a blob repeated across endpoints, hosts,
// chunks and measurements is stored exactly once:
//
//   header:  u32 magic 'OUAS'  u32 version=6  u64 seed
//   chunk*:  (8-byte aligned)
//            u32 'CHNK'  u32 snapshot_ordinal  u32 record_count=n
//            u32 reserved=0  u64 payload_bytes
//            fixed columns (47n + 4 bytes, decreasing alignment):
//              u64 bytes_sent[n]   u64 uri_hash[n]   f64 duration[n]
//              u32 ip[n]  u32 asn[n]  u32 var_offsets[n+1]  u16 port[n]
//              u8 application_type[n]  u8 channel[n]  u8 channel_policy[n]
//              u8 channel_mode[n]  u8 session[n]  u8 flags[n]
//              u8 mode_mask[n]  u8 policy_mask[n]  u8 token_mask[n]
//            var column (var_offsets[n] bytes): per record
//              u16 distinct_cert_count  u32 cert_id*
//              string application_uri | product_uri | name | software
//              u32 endpoint_count, per endpoint: string url  u8 mode
//                u8 policy_code (enum value; 255 = explicit URI follows)
//                u8 token_count  u8 token*  u32 cert_id (0xffffffff = none)
//              u32 ref_count ×(u32 ip  u16 port)
//              string[] namespaces
//              u32 node_count ×(string browse_name  u8 node_class
//                               u8 access bits r|w<<1|x<<2)
//              [scan-quality tail, only when flags bit 6 is set:
//               u8 completeness  u16 retries  u16 fault_events —
//               at least one field nonzero (an all-zero tail is
//               non-canonical and rejected)]
//              [protocol tail, only when flags bit 7 is set: u8
//               protocol id — always last in the slice, and always
//               nonzero (OPC UA is protocol 0 and carries no tail, so
//               single-protocol files stay byte-identical to
//               pre-registry output; a zero byte is rejected)]
//            zero padding to the next 8-byte boundary (not indexed;
//            recomputed as (8 - payload%8) % 8)
//   dict:    u32 'CDIC'  u32 entry_count
//            entry*: u64 fingerprint64  byte_string der
//   footer:  u32 'FOOT'  u32 snapshot_count
//            snapshot*: i32 measurement_index  i64 date_days
//                       u64 probes_sent  u64 tcp_open_count  u64 host_count
//            u32 chunk_count
//            chunk*: u32 snapshot_ordinal  u32 record_count
//                    u64 file_offset  u64 payload_bytes (unpadded)
//            u64 dict_offset  u64 dict_bytes  u32 dict_count
//            [optional campaign block — only when a label/epoch was set:
//             u32 'CAMP'  snapshot*: string campaign_label  i64 epoch_days]
//            [optional protocol block — only when any record is from a
//             non-OPC-UA backend: u32 'PROT'  snapshot*: u32 protocol
//             mask (bit p set = protocol id p present in that week)]
//   trailer: u64 footer_offset  u32 'SNAP'
//
// uri_hash, mode_mask, policy_mask and token_mask are *derived* columns
// (hash64 of the application URI; one bit per advertised endpoint mode /
// canonical policy / token type) so posture passes never touch the var
// column; the row decoder re-derives and cross-checks them, turning a
// flipped bit into a DecodeError instead of a silent misclassification.
// Dictionary ids are assigned by first appearance in the record stream
// and entries are stored in id order, which makes v6 output a pure
// function of (records, seed): byte-identical across runs, shard layouts
// and thread counts. v6 files are memory-mapped on open; ColumnView spans
// alias the mapping and stay valid exactly as long as the reader lives.
//
// The campaign block makes diff inputs self-describing (src/diff/ checks
// that a follow-up campaign really is later than its base). Files written
// without SnapshotWriter::set_campaign omit the block; readers default
// absent labels to ""/0, and the v4/v5 load paths are unaffected.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "opcua/encoding.hpp"
#include "scanner/record.hpp"

namespace opcua_study {

/// Thrown on any structural problem with a snapshot file: bad magic,
/// truncation, out-of-range enum values, inconsistent chunk index. The
/// message names what was wrong and where, so a corrupt multi-gigabyte
/// dataset fails loudly instead of yielding garbage records.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-measurement metadata, available without decoding any host record.
struct SnapshotMeta {
  int measurement_index = 0;
  std::int64_t date_days = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t tcp_open_count = 0;
  std::uint64_t host_count = 0;
  /// Which recorded campaign this measurement belongs to. Empty label /
  /// zero epoch = undeclared (v4 files and v5 files predating the label).
  std::string campaign_label;
  std::int64_t campaign_epoch_days = 0;
  /// Bit p set = protocol id p appears in this measurement. 0 =
  /// undeclared: v4/v5 files, and v6 files whose every record is OPC UA
  /// (the writer omits the block so such files stay byte-identical to
  /// pre-protocol output).
  std::uint32_t protocol_mask = 0;

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// One indexed record group. Chunks are stored (and indexed) in write
/// order: ascending snapshot ordinal, then record order within the week.
struct SnapshotChunkInfo {
  std::uint32_t snapshot_ordinal = 0;
  std::uint32_t record_count = 0;
  std::uint64_t file_offset = 0;   // of the chunk header
  std::uint64_t payload_bytes = 0;

  friend bool operator==(const SnapshotChunkInfo&, const SnapshotChunkInfo&) = default;
};

/// Bit assignments of the v6 per-record flags column.
namespace snapshot_flags {
inline constexpr std::uint8_t kTcpOpen = 1u << 0;
inline constexpr std::uint8_t kSpeaksOpcua = 1u << 1;
inline constexpr std::uint8_t kFoundViaReference = 1u << 2;
inline constexpr std::uint8_t kServerSignatureValid = 1u << 3;
inline constexpr std::uint8_t kAnonymousOffered = 1u << 4;
inline constexpr std::uint8_t kTraversalTruncated = 1u << 5;
/// Record carries a scan-quality tail (5 bytes at the end of its var
/// slice). Only set when any quality field is nonzero, so fault-free
/// files stay byte-identical to pre-fault output.
inline constexpr std::uint8_t kScanQuality = 1u << 6;
/// Record carries a protocol tail (1 byte, the very end of its var
/// slice). Only set for non-OPC-UA backends — protocol 0 records carry
/// no tail, so OPC-UA-only files stay byte-identical to pre-registry
/// output, and a zero tail byte is rejected as non-canonical.
inline constexpr std::uint8_t kProtocol = 1u << 7;
inline constexpr std::uint8_t kAllFlags = 0xff;
}  // namespace snapshot_flags

/// The v6 "no certificate" sentinel in endpoint cert_id slots.
inline constexpr std::uint32_t kNoCertId = 0xffffffffu;

/// Typed zero-copy view over one v6 chunk's columns. All spans alias the
/// reader's memory mapping: a ColumnView (and every UaReader handed out by
/// var_record) must not outlive the SnapshotReader it came from, and the
/// underlying bytes are immutable for the reader's whole lifetime, so
/// concurrent readers never race. Only available on little-endian hosts
/// (SnapshotReader::columnar() gates it); portable row decoding goes
/// through read_chunk.
struct ColumnView {
  std::uint32_t snapshot_ordinal = 0;
  std::size_t records = 0;

  std::span<const std::uint64_t> bytes_sent;
  std::span<const std::uint64_t> uri_hash;
  std::span<const double> duration_seconds;
  std::span<const std::uint32_t> ip;
  std::span<const std::uint32_t> asn;
  std::span<const std::uint32_t> var_offsets;  // records + 1 entries
  std::span<const std::uint16_t> port;
  std::span<const std::uint8_t> application_type;
  std::span<const std::uint8_t> channel;
  std::span<const std::uint8_t> channel_policy;
  std::span<const std::uint8_t> channel_mode;
  std::span<const std::uint8_t> session;
  std::span<const std::uint8_t> flags;
  std::span<const std::uint8_t> mode_mask;
  std::span<const std::uint8_t> policy_mask;
  std::span<const std::uint8_t> token_mask;
  std::span<const std::uint8_t> var_blob;

  /// Reader positioned at record i's slice of the var column (validated
  /// monotone and in-bounds when the view was created).
  UaReader var_record(std::size_t i) const {
    return UaReader(var_blob.subspan(var_offsets[i], var_offsets[i + 1] - var_offsets[i]));
  }
};

/// Lazy decoder over one record's var-column slice. Accessors must be
/// called in field order (cert_ids, application_uri, product_uri,
/// application_name, software_version, namespaces, visit_nodes); any
/// prefix may be skipped and the cursor skips the intervening fields
/// without materializing them. Throws DecodeError on malformed bytes.
class VarRecordCursor {
 public:
  explicit VarRecordCursor(UaReader r) : r_(std::move(r)) {}

  /// Distinct certificate dictionary ids, first-seen endpoint order.
  void cert_ids(std::vector<std::uint32_t>& out);
  std::string application_uri();
  std::string product_uri();
  std::string application_name();
  std::string software_version();
  std::vector<std::string> namespaces();
  /// fn(node_class, readable, writable, executable) per traversed node;
  /// browse names are skipped, not decoded.
  void visit_nodes(const std::function<void(NodeClass, bool, bool, bool)>& fn);

 private:
  enum Stage {
    kCertIds = 0, kApplicationUri, kProductUri, kApplicationName,
    kSoftwareVersion, kEndpoints, kRefs, kNamespaces, kNodes,
  };
  void advance(int target);
  void skip_string();

  UaReader r_;
  int stage_ = 0;
};

/// Streaming writer: open, then per measurement begin_snapshot() /
/// add_host()* / end_snapshot(); finish() seals the file with the footer.
/// A writer destroyed without finish() leaves the file unsealed, and
/// readers reject it — a half-written campaign never masquerades as a
/// complete dataset. Buffers at most one chunk of records (plus, for v6,
/// the certificate dictionary — one copy of each distinct DER).
class SnapshotWriter {
 public:
  static constexpr std::uint32_t kDefaultChunkRecords = 4096;
  static constexpr std::uint32_t kCurrentVersion = 6;

  /// `format_version` is 6 (the default, columnar) or 5 (the row format,
  /// kept writable for back-compat coverage and format-comparison
  /// benches).
  SnapshotWriter(const std::string& path, std::uint64_t seed,
                 std::uint32_t chunk_records = kDefaultChunkRecords,
                 std::uint32_t format_version = kCurrentVersion);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Stamp every *subsequent* begin_snapshot() with a campaign identity.
  /// Never called -> the footer omits the campaign block and the file is
  /// byte-identical to one written before labels existed.
  void set_campaign(const std::string& label, std::int64_t epoch_days);

  void begin_snapshot(int measurement_index, std::int64_t date_days);
  void add_host(const HostScanRecord& host);
  void end_snapshot(std::uint64_t probes_sent, std::uint64_t tcp_open_count);

  /// Convenience: append a fully materialized measurement.
  void add_snapshot(const ScanSnapshot& snapshot);

  /// Flushes the footer and closes the file (idempotent). Must be called
  /// for the file to be loadable.
  void finish();

 private:
  void flush_chunk();
  void add_host_v6(const HostScanRecord& host);
  std::uint32_t intern_certificate(const Bytes& der);

  std::string path_;
  std::uint64_t seed_;
  std::uint32_t chunk_records_;
  std::uint32_t format_version_;
  std::string campaign_label_;
  std::int64_t campaign_epoch_days_ = 0;
  bool campaign_set_ = false;
  std::vector<SnapshotMeta> snapshots_;
  std::vector<SnapshotChunkInfo> chunks_;
  Bytes chunk_buf_;  // v5: row-encoded records of the open chunk
  // v6 column buffers for the open chunk.
  struct ColumnBuffers;
  std::unique_ptr<ColumnBuffers> cols_;
  // v6 certificate dictionary: id order == first appearance order.
  std::vector<Bytes> dict_ders_;
  std::vector<std::uint64_t> dict_fps_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> dict_index_;  // fp64 -> ids
  std::uint32_t buffered_records_ = 0;
  std::uint64_t file_pos_ = 0;
  std::ofstream out_;
  bool in_snapshot_ = false;
  bool finished_ = false;
};

/// Random-access chunk reader. Opening validates the header, seed, the
/// complete chunk index (offsets inside the file, record counts consistent
/// with the per-snapshot host counts) and — for v6 — the certificate
/// dictionary (every stored fingerprint is recomputed from its DER), and
/// throws SnapshotError on any mismatch. v6 files are memory-mapped for
/// the reader's lifetime (falling back to a heap copy where mmap is
/// unavailable); v5 files are streamed per chunk. read_chunk() and
/// column_view() are const and thread-safe: workers may decode disjoint
/// chunks concurrently.
class SnapshotReader {
 public:
  SnapshotReader(const std::string& path, std::uint64_t seed);
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  std::uint32_t version() const { return version_; }
  const std::vector<SnapshotMeta>& snapshots() const { return snapshots_; }
  const std::vector<SnapshotChunkInfo>& chunks() const { return chunks_; }
  std::uint64_t total_records() const;

  /// 64-bit digest of the file's validated structure (format version,
  /// measurement metas, chunk index, certificate-dictionary fingerprints).
  /// Snapshot bytes are a pure function of (records, seed), so two files
  /// with equal fingerprints carry the same records for all practical
  /// purposes — this is the staleness check sidecar files (posture
  /// sketches, src/series/sketch.hpp) validate against before their
  /// contents are allowed to stand in for a record walk.
  std::uint64_t file_fingerprint() const;

  /// Decode one chunk into records (throws SnapshotError / DecodeError on
  /// corrupt payload bytes).
  std::vector<HostScanRecord> read_chunk(std::size_t chunk_index) const;

  /// Decode one chunk into a caller-owned buffer (cleared first). The
  /// streaming paths reuse one buffer across chunks instead of allocating
  /// a fresh vector per chunk.
  void read_chunk(std::size_t chunk_index, std::vector<HostScanRecord>& out) const;

  /// Stream every record in file order: fn(snapshot_ordinal, record).
  /// Holds at most one decoded chunk at a time.
  void for_each_host(
      const std::function<void(std::size_t, const HostScanRecord&)>& fn) const;

  /// Materialize everything (the legacy load-all path).
  std::vector<ScanSnapshot> load_all() const;

  /// True when column_view() is available: a v6 file on a little-endian
  /// host. Consumers fall back to read_chunk() row decoding otherwise.
  bool columnar() const;

  /// Zero-copy column access to one v6 chunk. The returned spans alias
  /// the reader's mapping and must not outlive it. Throws SnapshotError
  /// when !columnar() or on a malformed chunk (bad header, short columns,
  /// non-monotone var offsets).
  ColumnView column_view(std::size_t chunk_index) const;

  /// v6 certificate dictionary: deduplicated DER in id order.
  std::size_t cert_count() const { return dict_.size(); }
  std::span<const std::uint8_t> cert_der(std::uint32_t cert_id) const;
  std::uint64_t cert_fp64(std::uint32_t cert_id) const { return dict_.at(cert_id).fp64; }

 private:
  void open_v6(std::uint64_t file_size);
  struct DictEntry {
    std::uint64_t fp64 = 0;
    std::uint64_t offset = 0;  // of the DER bytes inside the file
    std::uint32_t length = 0;
  };

  std::string path_;
  std::uint32_t version_ = 0;
  std::vector<SnapshotMeta> snapshots_;
  std::vector<SnapshotChunkInfo> chunks_;
  std::vector<DictEntry> dict_;  // v6 only
  // v4: whole file on the heap. v6: memory mapping (or heap fallback).
  // v5 retains nothing; chunks are read on demand.
  const std::uint8_t* data_ = nullptr;
  std::size_t data_size_ = 0;
  Bytes heap_data_;
  void* mmap_ptr_ = nullptr;
  std::size_t mmap_len_ = 0;
};

/// Streams `snapshots` into a snapshot file (current format, v6) via
/// SnapshotWriter. Output is byte-deterministic: same records + seed give
/// identical bytes on every run.
void save_snapshots(const std::string& path, std::uint64_t seed,
                    const std::vector<ScanSnapshot>& snapshots);

/// Returns nullopt when the file is missing, corrupt, or was produced with
/// a different seed/format version; `error` (when given) receives a
/// human-readable reason naming the detected format version and the byte
/// offset of the failure where one is known.
std::optional<std::vector<ScanSnapshot>> load_snapshots(const std::string& path,
                                                        std::uint64_t seed,
                                                        std::string* error = nullptr);

/// Writes the retired monolithic v4 layout. Kept so the v4 back-compat
/// tests can fabricate historical files; production code writes v6.
void save_snapshots_v4(const std::string& path, std::uint64_t seed,
                       const std::vector<ScanSnapshot>& snapshots);

/// True when the measurement declares a campaign identity (label or epoch
/// set); v4 files and unlabeled v5 files don't, and are exempt from chain
/// validation.
bool campaign_declared(const SnapshotMeta& meta);

/// Validates that `members` (the final measurement of each campaign in an
/// ordered series) form a chain: declared epochs must strictly increase
/// (each non-zero epoch compares against the last non-zero one, even
/// across label-only members in between), and no two consecutive declared
/// members may carry the same (label, epoch) identity. Undeclared members
/// are skipped — a legacy file can sit anywhere in the series without
/// anchoring the chain. Members that declare a protocol mask must all
/// declare the *same* mask (a diff between an OPC-UA-only campaign and a
/// mixed fleet is apples-to-oranges); mask-0 members — pre-protocol files
/// — are exempt. Throws SnapshotError naming the offending link.
/// The old pairwise DiffOptions::validate_pairing check is this helper
/// applied to a two-member series.
void validate_campaign_chain(const std::vector<SnapshotMeta>& members);

}  // namespace opcua_study
