// Binary persistence for scan snapshots.
//
// The bench suite regenerates every table/figure from the same campaign;
// the first binary runs the scans and caches them, the rest load from disk
// (exactly like the paper's analyses ran on the recorded dataset rather
// than re-scanning per figure).
//
// Format v5 is *chunked*: host records are written in fixed-size record
// groups, and a footer indexes every chunk (snapshot ordinal, record
// count, byte offset, payload size). A SnapshotWriter therefore appends
// records as a campaign produces them — one chunk of buffering, never the
// whole measurement — and a SnapshotReader either streams records
// chunk-by-chunk in bounded memory or hands whole chunks to thread-pool
// workers for parallel aggregation (src/analysis/). Monolithic v4 files
// still load; the reader synthesizes a chunk index for them.
//
// File layout (all integers little-endian, records in the v4 encoding):
//
//   u32 magic 'OUAS'   u32 version=5   u64 seed
//   chunk*:  u32 'CHNK'  u32 snapshot_ordinal  u32 record_count
//            u64 payload_bytes  payload
//   footer:  u32 'FOOT'  u32 snapshot_count
//            snapshot*: i32 measurement_index  i64 date_days
//                       u64 probes_sent  u64 tcp_open_count  u64 host_count
//            u32 chunk_count
//            chunk*: u32 snapshot_ordinal  u32 record_count
//                    u64 file_offset  u64 payload_bytes
//            [optional campaign block — only when a label/epoch was set:
//             u32 'CAMP'  snapshot*: string campaign_label  i64 epoch_days]
//   trailer: u64 footer_offset  u32 'SNAP'
//
// The campaign block makes diff inputs self-describing (src/diff/ checks
// that a follow-up campaign really is later than its base). Files written
// without SnapshotWriter::set_campaign omit the block and stay
// byte-identical to pre-label v5 files; readers default absent labels to
// ""/0, and the v4 load path is unaffected.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "scanner/record.hpp"

namespace opcua_study {

/// Thrown on any structural problem with a snapshot file: bad magic,
/// truncation, out-of-range enum values, inconsistent chunk index. The
/// message names what was wrong and where, so a corrupt multi-gigabyte
/// dataset fails loudly instead of yielding garbage records.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-measurement metadata, available without decoding any host record.
struct SnapshotMeta {
  int measurement_index = 0;
  std::int64_t date_days = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t tcp_open_count = 0;
  std::uint64_t host_count = 0;
  /// Which recorded campaign this measurement belongs to. Empty label /
  /// zero epoch = undeclared (v4 files and v5 files predating the label).
  std::string campaign_label;
  std::int64_t campaign_epoch_days = 0;

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// One indexed record group. Chunks are stored (and indexed) in write
/// order: ascending snapshot ordinal, then record order within the week.
struct SnapshotChunkInfo {
  std::uint32_t snapshot_ordinal = 0;
  std::uint32_t record_count = 0;
  std::uint64_t file_offset = 0;   // of the chunk header
  std::uint64_t payload_bytes = 0;

  friend bool operator==(const SnapshotChunkInfo&, const SnapshotChunkInfo&) = default;
};

/// Streaming v5 writer: open, then per measurement begin_snapshot() /
/// add_host()* / end_snapshot(); finish() seals the file with the footer.
/// A writer destroyed without finish() leaves the file unsealed, and
/// readers reject it — a half-written campaign never masquerades as a
/// complete dataset. Buffers at most one chunk of records.
class SnapshotWriter {
 public:
  static constexpr std::uint32_t kDefaultChunkRecords = 4096;

  SnapshotWriter(const std::string& path, std::uint64_t seed,
                 std::uint32_t chunk_records = kDefaultChunkRecords);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Stamp every *subsequent* begin_snapshot() with a campaign identity.
  /// Never called -> the footer omits the campaign block and the file is
  /// byte-identical to one written before labels existed.
  void set_campaign(const std::string& label, std::int64_t epoch_days);

  void begin_snapshot(int measurement_index, std::int64_t date_days);
  void add_host(const HostScanRecord& host);
  void end_snapshot(std::uint64_t probes_sent, std::uint64_t tcp_open_count);

  /// Convenience: append a fully materialized measurement.
  void add_snapshot(const ScanSnapshot& snapshot);

  /// Flushes the footer and closes the file (idempotent). Must be called
  /// for the file to be loadable.
  void finish();

 private:
  void flush_chunk();

  std::string path_;
  std::uint64_t seed_;
  std::uint32_t chunk_records_;
  std::string campaign_label_;
  std::int64_t campaign_epoch_days_ = 0;
  bool campaign_set_ = false;
  std::vector<SnapshotMeta> snapshots_;
  std::vector<SnapshotChunkInfo> chunks_;
  Bytes chunk_buf_;
  std::uint32_t buffered_records_ = 0;
  std::uint64_t file_pos_ = 0;
  std::ofstream out_;
  bool in_snapshot_ = false;
  bool finished_ = false;
};

/// Random-access chunk reader. Opening validates the header, seed, and the
/// complete chunk index (offsets inside the file, record counts consistent
/// with the per-snapshot host counts) and throws SnapshotError on any
/// mismatch. read_chunk() is const and thread-safe: workers may decode
/// disjoint chunks concurrently.
class SnapshotReader {
 public:
  SnapshotReader(const std::string& path, std::uint64_t seed);

  std::uint32_t version() const { return version_; }
  const std::vector<SnapshotMeta>& snapshots() const { return snapshots_; }
  const std::vector<SnapshotChunkInfo>& chunks() const { return chunks_; }
  std::uint64_t total_records() const;

  /// Decode one chunk into records (throws SnapshotError / DecodeError on
  /// corrupt payload bytes).
  std::vector<HostScanRecord> read_chunk(std::size_t chunk_index) const;

  /// Stream every record in file order: fn(snapshot_ordinal, record).
  /// Holds at most one decoded chunk at a time.
  void for_each_host(
      const std::function<void(std::size_t, const HostScanRecord&)>& fn) const;

  /// Materialize everything (the legacy load-all path).
  std::vector<ScanSnapshot> load_all() const;

 private:
  std::string path_;
  std::uint32_t version_ = 0;
  std::vector<SnapshotMeta> snapshots_;
  std::vector<SnapshotChunkInfo> chunks_;
  Bytes v4_data_;  // v4 only: whole file retained, chunk offsets point into it
};

/// Streams `snapshots` into a v5 file via SnapshotWriter.
void save_snapshots(const std::string& path, std::uint64_t seed,
                    const std::vector<ScanSnapshot>& snapshots);

/// Returns nullopt when the file is missing, corrupt, or was produced with
/// a different seed/format version; `error` (when given) receives a
/// human-readable reason.
std::optional<std::vector<ScanSnapshot>> load_snapshots(const std::string& path,
                                                        std::uint64_t seed,
                                                        std::string* error = nullptr);

/// Writes the retired monolithic v4 layout. Kept so the v4→v5 back-compat
/// tests can fabricate historical files; production code writes v5.
void save_snapshots_v4(const std::string& path, std::uint64_t seed,
                       const std::vector<ScanSnapshot>& snapshots);

/// True when the measurement declares a campaign identity (label or epoch
/// set); v4 files and unlabeled v5 files don't, and are exempt from chain
/// validation.
bool campaign_declared(const SnapshotMeta& meta);

/// Validates that `members` (the final measurement of each campaign in an
/// ordered series) form a chain: declared epochs must strictly increase
/// (each non-zero epoch compares against the last non-zero one, even
/// across label-only members in between), and no two consecutive declared
/// members may carry the same (label, epoch) identity. Undeclared members
/// are skipped — a legacy file can sit anywhere in the series without
/// anchoring the chain. Throws SnapshotError naming the offending link.
/// The old pairwise DiffOptions::validate_pairing check is this helper
/// applied to a two-member series.
void validate_campaign_chain(const std::vector<SnapshotMeta>& members);

}  // namespace opcua_study
