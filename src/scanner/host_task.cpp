#include "scanner/host_task.hpp"

#include <algorithm>

namespace opcua_study {

std::optional<std::pair<Ipv4, std::uint16_t>> parse_opc_url(const std::string& url) {
  constexpr std::string_view kScheme = "opc.tcp://";
  if (url.rfind(kScheme, 0) != 0) return std::nullopt;
  std::string rest = url.substr(kScheme.size());
  const auto slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const auto colon = rest.find(':');
  std::uint16_t port = kOpcUaDefaultPort;
  std::string host = rest;
  if (colon != std::string::npos) {
    host = rest.substr(0, colon);
    try {
      const int parsed = std::stoi(rest.substr(colon + 1));
      if (parsed < 1 || parsed > 65535) return std::nullopt;
      port = static_cast<std::uint16_t>(parsed);
    } catch (const std::exception&) {
      return std::nullopt;  // empty, non-numeric, or > INT_MAX
    }
  }
  try {
    return std::make_pair(parse_ipv4(host), port);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // hostname-based URL; the study follows IPs only
  }
}

HostGrabTask::HostGrabTask(const GrabberConfig& config, Network& network, std::uint64_t seed,
                           std::uint64_t task_id, Ipv4 ip, std::uint16_t port)
    : config_(config), network_(network), seed_(seed), task_id_(task_id), ip_(ip), port_(port) {
  record_.ip = ip;
  record_.port = port;
  record_.asn = network_.as_db().asn_of(ip);
  url_ = "opc.tcp://" + format_ipv4(ip) + ":" + std::to_string(port) + "/";
}

HostGrabTask::~HostGrabTask() = default;

HostGrabTask::Step HostGrabTask::yield(std::uint64_t pace_us, Phase next) {
  const std::uint64_t wait = consumed_us_ + pace_us;
  elapsed_us_ += wait;
  consumed_us_ = 0;
  phase_ = next;
  return Step{wait, false};
}

HostGrabTask::Step HostGrabTask::finish(bool with_duration) {
  const std::uint64_t wait = consumed_us_;
  elapsed_us_ += wait;
  consumed_us_ = 0;
  if (with_duration) record_.duration_seconds = static_cast<double>(elapsed_us_) / 1e6;
  client_.reset();
  conn_.reset();
  phase_ = Phase::Done;
  return Step{wait, true};
}

bool HostGrabTask::budget_exhausted() const {
  const double elapsed_s =
      static_cast<double>(elapsed_us_ + consumed_us_ - assess_start_us_) / 1e6;
  return elapsed_s > static_cast<double>(config_.budget.max_host_seconds) ||
         (conn_ != nullptr && conn_->bytes_sent() > config_.budget.max_host_bytes);
}

const EndpointObservation* HostGrabTask::strongest_endpoint() const {
  // The paper's scanner presents its self-signed certificate on the
  // strongest advertised (mode, policy) combination.
  const EndpointObservation* best = nullptr;
  for (const auto& ep : record_.endpoints) {
    if (!ep.policy_known) continue;
    if (best == nullptr || security_mode_rank(ep.mode) > security_mode_rank(best->mode) ||
        (security_mode_rank(ep.mode) == security_mode_rank(best->mode) &&
         policy_info(ep.policy).rank > policy_info(best->policy).rank)) {
      best = &ep;
    }
  }
  return best;
}

HostGrabTask::Step HostGrabTask::step() {
  switch (phase_) {
    case Phase::Discovery: return step_discovery();
    case Phase::SecureProbe: return step_secure_probe();
    case Phase::ReadNamespaces: return step_read_namespaces();
    case Phase::ReadVersion: return step_read_version();
    case Phase::TraverseBrowse: return traverse_loop(/*browse_first=*/true);
    case Phase::TraverseRead: return step_traverse_read();
    case Phase::Done: break;
  }
  return Step{0, true};
}

HostGrabTask::Step HostGrabTask::step_discovery() {
  conn_ = network_.connect(ip_, port_, ConnMode::Deferred);
  if (!conn_) {
    consumed_us_ += network_.rtt_us(ip_);  // RST after one RTT
    return finish(/*with_duration=*/false);
  }
  record_.tcp_open = true;
  charge(*conn_);  // three-way handshake

  client_ = std::make_unique<Client>(config_.client, *conn_,
                                     Rng(seed_).child("grab-" + std::to_string(task_id_)));
  const StatusCode hello_status = client_->hello(url_);
  charge(*conn_);
  if (hello_status != StatusCode::Good) {
    return finish(/*with_duration=*/true);  // not an OPC UA speaker
  }
  const StatusCode open_status =
      client_->open_channel(SecurityPolicy::None, MessageSecurityMode::None);
  charge(*conn_);
  if (open_status != StatusCode::Good) return finish(/*with_duration=*/false);

  std::vector<EndpointDescription> endpoints;
  const StatusCode endpoints_status = client_->get_endpoints(url_, endpoints);
  charge(*conn_);
  if (endpoints_status != StatusCode::Good) return finish(/*with_duration=*/false);
  record_.speaks_opcua = true;

  for (const auto& ep : endpoints) {
    const auto target = parse_opc_url(ep.endpoint_url);
    const bool foreign = target && (target->first != ip_ || target->second != port_);
    if (foreign) {
      record_.referenced_targets.push_back(*target);
      continue;
    }
    EndpointObservation obs;
    obs.url = ep.endpoint_url;
    obs.mode = ep.security_mode;
    obs.policy_uri = ep.security_policy_uri;
    if (const auto policy = policy_from_uri(ep.security_policy_uri)) {
      obs.policy = *policy;
      obs.policy_known = true;
    }
    for (const auto& token : ep.user_identity_tokens) obs.token_types.push_back(token.token_type);
    obs.certificate_der = ep.server_certificate;
    record_.endpoints.push_back(std::move(obs));
    if (record_.application_uri.empty()) {
      record_.application_uri = ep.server.application_uri;
      record_.product_uri = ep.server.product_uri;
      record_.application_name = ep.server.application_name.text;
      record_.application_type = ep.server.application_type;
    }
  }
  record_.bytes_sent += conn_->bytes_sent();
  client_->close_channel();
  charge(*conn_);
  client_.reset();
  conn_.reset();

  for (const auto& ep : record_.endpoints) {
    for (UserTokenType t : ep.token_types) {
      if (t == UserTokenType::Anonymous) record_.anonymous_offered = true;
    }
  }

  if (!record_.endpoints.empty() && !record_.is_discovery_server() &&
      strongest_endpoint() != nullptr) {
    // The secure re-probe reconnects immediately (no pacing gap), but
    // yielding here lets the engine interleave other hosts.
    return yield(/*pace_us=*/0, Phase::SecureProbe);
  }
  return finish(/*with_duration=*/true);
}

HostGrabTask::Step HostGrabTask::step_secure_probe() {
  const EndpointObservation* best = strongest_endpoint();
  assess_start_us_ = elapsed_us_;

  conn_ = network_.connect(ip_, port_, ConnMode::Deferred);
  if (!conn_) {
    consumed_us_ += network_.rtt_us(ip_);
    return finish(/*with_duration=*/true);
  }
  charge(*conn_);
  client_ = std::make_unique<Client>(config_.client, *conn_,
                                     Rng(seed_).child("sess-" + std::to_string(task_id_)));
  const StatusCode hello_status = client_->hello(url_);
  charge(*conn_);
  if (hello_status != StatusCode::Good) return finish(/*with_duration=*/true);

  const StatusCode channel_status =
      client_->open_channel(best->policy, best->mode, best->certificate_der);
  charge(*conn_);
  record_.channel_policy = best->policy;
  record_.channel_mode = best->mode;
  if (is_bad(channel_status)) {
    record_.channel = best->policy == SecurityPolicy::None ? ChannelOutcome::failed
                                                           : ChannelOutcome::cert_rejected;
    record_.session = SessionOutcome::channel_rejected;
    record_.bytes_sent += conn_->bytes_sent();
    return finish(/*with_duration=*/true);
  }
  record_.channel = ChannelOutcome::established;

  // Attempt an anonymous session on every reachable server: servers without
  // an anonymous token reject it, which is exactly the paper's
  // "unaccessible, reason: authentication" population (Table 2).
  Client::SessionInfo info;
  StatusCode status = client_->create_session(&info);
  charge(*conn_);
  record_.server_signature_valid = info.server_signature_valid;
  if (is_good(status)) {
    status = client_->activate_session_anonymous();
    charge(*conn_);
  }
  if (is_bad(status)) {
    record_.session = SessionOutcome::auth_rejected;
    record_.bytes_sent += conn_->bytes_sent();
    return finish(/*with_duration=*/true);
  }
  record_.session = SessionOutcome::accessible;

  // Namespaces (classification input) and software version (§5.5) follow
  // after the inter-request pause.
  return yield(config_.budget.inter_request_ms * 1000, Phase::ReadNamespaces);
}

HostGrabTask::Step HostGrabTask::step_read_namespaces() {
  std::vector<std::string> namespaces;
  if (client_->read_string_array(node_ids::kNamespaceArray, namespaces) == StatusCode::Good) {
    record_.namespaces = std::move(namespaces);
  }
  charge(*conn_);
  return yield(config_.budget.inter_request_ms * 1000, Phase::ReadVersion);
}

HostGrabTask::Step HostGrabTask::step_read_version() {
  DataValue sv;
  if (client_->read(node_ids::kSoftwareVersion, AttributeId::Value, sv) == StatusCode::Good &&
      sv.value.is<std::string>()) {
    record_.software_version = sv.value.as<std::string>();
  }
  charge(*conn_);
  if (!config_.traverse_address_space) return finish_assess();

  // Breadth-first walk from the Objects folder, reading the anonymous
  // user's access rights for every variable/method. The scanner never
  // writes and never calls: rights are read from UserAccessLevel /
  // UserExecutable attributes (paper §A.1).
  queue_ = {node_ids::kObjectsFolder};
  visited_ = {node_ids::kObjectsFolder};
  return traverse_loop(/*browse_first=*/false);
}

HostGrabTask::Step HostGrabTask::traverse_loop(bool browse_first) {
  if (browse_first) {
    refs_.clear();
    ref_index_ = 0;
    if (client_->browse(current_node_, refs_, config_.browse_chunk) != StatusCode::Good) {
      refs_.clear();
    }
    charge(*conn_);
  }
  for (;;) {
    // Inner loop: walk the reference list of the current node.
    while (ref_index_ < refs_.size()) {
      const auto& ref = refs_[ref_index_];
      if (!visited_.insert(ref.node_id).second) {
        ++ref_index_;
        continue;
      }
      pending_obs_ = NodeObservation{};
      pending_obs_.browse_name = ref.browse_name.name;
      pending_obs_.node_class = ref.node_class;
      if (ref.node_class == NodeClass::Variable || ref.node_class == NodeClass::Method) {
        if (budget_exhausted()) {
          record_.traversal_truncated = true;
          return finish_assess();
        }
        pending_attr_ = ref.node_class == NodeClass::Variable ? AttributeId::UserAccessLevel
                                                              : AttributeId::UserExecutable;
        return yield(config_.budget.inter_request_ms * 1000, Phase::TraverseRead);
      }
      record_.nodes.push_back(pending_obs_);
      queue_.push_back(ref.node_id);
      ++ref_index_;
    }
    // Outer loop head: pick the next node to browse.
    if (queue_.empty()) return finish_assess();
    if (budget_exhausted()) {
      record_.traversal_truncated = true;
      return finish_assess();
    }
    current_node_ = queue_.front();
    queue_.pop_front();
    return yield(config_.budget.inter_request_ms * 1000, Phase::TraverseBrowse);
  }
}

HostGrabTask::Step HostGrabTask::step_traverse_read() {
  DataValue dv;
  if (client_->read(refs_[ref_index_].node_id, pending_attr_, dv) == StatusCode::Good) {
    if (pending_attr_ == AttributeId::UserAccessLevel && dv.value.is<std::uint32_t>()) {
      const auto level = dv.value.as<std::uint32_t>();
      pending_obs_.readable = level & access_level::kCurrentRead;
      pending_obs_.writable = level & access_level::kCurrentWrite;
    } else if (pending_attr_ == AttributeId::UserExecutable && dv.value.is<bool>()) {
      pending_obs_.executable = dv.value.as<bool>();
    }
  }
  charge(*conn_);
  record_.nodes.push_back(pending_obs_);
  queue_.push_back(refs_[ref_index_].node_id);
  ++ref_index_;
  return traverse_loop(/*browse_first=*/false);
}

HostGrabTask::Step HostGrabTask::finish_assess() {
  record_.bytes_sent += conn_->bytes_sent();
  client_->close_channel();
  charge(*conn_);
  return finish(/*with_duration=*/true);
}

}  // namespace opcua_study
