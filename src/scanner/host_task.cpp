#include "scanner/host_task.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace opcua_study {

namespace {
// Phase-timing cells are keyed by protocol; this task is the OPC UA backend.
constexpr unsigned kObsOpcua = static_cast<unsigned>(ProtocolId::opcua);
}  // namespace

std::optional<std::pair<Ipv4, std::uint16_t>> parse_opc_url(const std::string& url) {
  const auto parsed = parse_endpoint_url(url);
  if (!parsed || parsed->protocol != ProtocolId::opcua) return std::nullopt;
  return std::make_pair(parsed->ip, parsed->port);
}

HostGrabTask::HostGrabTask(const GrabberConfig& config, Network& network, std::uint64_t seed,
                           std::uint64_t task_id, Ipv4 ip, std::uint16_t port)
    : config_(config),
      network_(network),
      seed_(seed),
      task_id_(task_id),
      ip_(ip),
      port_(port),
      // Keyed by endpoint, not task id: task ids depend on sweep order and
      // shard layout, and retry jitter must not (fault streams are
      // endpoint-keyed for the same reason, see netsim/faults.hpp).
      retry_rng_(Rng(seed).child("retry-" + format_ipv4(ip) + ":" + std::to_string(port))) {
  record_.ip = ip;
  record_.port = port;
  record_.asn = network_.as_db().asn_of(ip);
  url_ = "opc.tcp://" + format_ipv4(ip) + ":" + std::to_string(port) + "/";
}

HostGrabTask::~HostGrabTask() = default;

HostGrabTask::Step HostGrabTask::yield(std::uint64_t pace_us, Phase next) {
  attempt_ = 0;  // a unit of work completed: the per-unit retry budget resets
  const std::uint64_t wait = consumed_us_ + pace_us;
  elapsed_us_ += wait;
  consumed_us_ = 0;
  phase_ = next;
  return Step{wait, false};
}

HostGrabTask::Step HostGrabTask::finish(bool with_duration) {
  if (conn_ != nullptr) fresh_fault();  // bank any unaccounted injected faults
  const std::uint64_t wait = consumed_us_;
  elapsed_us_ += wait;
  consumed_us_ = 0;
  if (with_duration) record_.duration_seconds = static_cast<double>(elapsed_us_) / 1e6;
  client_.reset();
  conn_.reset();
  phase_ = Phase::Done;
  return Step{wait, true};
}

bool HostGrabTask::budget_exhausted() const {
  const double elapsed_s =
      static_cast<double>(elapsed_us_ + consumed_us_ - assess_start_us_) / 1e6;
  return elapsed_s > static_cast<double>(config_.budget.max_host_seconds) ||
         (conn_ != nullptr && conn_->bytes_sent() > config_.budget.max_host_bytes);
}

const EndpointObservation* HostGrabTask::strongest_endpoint() const {
  // The paper's scanner presents its self-signed certificate on the
  // strongest advertised (mode, policy) combination.
  const EndpointObservation* best = nullptr;
  for (const auto& ep : record_.endpoints) {
    if (!ep.policy_known) continue;
    if (best == nullptr || security_mode_rank(ep.mode) > security_mode_rank(best->mode) ||
        (security_mode_rank(ep.mode) == security_mode_rank(best->mode) &&
         policy_info(ep.policy).rank > policy_info(best->policy).rank)) {
      best = &ep;
    }
  }
  return best;
}

// ---------------------------------------------------------- fault plumbing

void HostGrabTask::note_faults(std::uint32_t n) {
  const std::uint32_t total = record_.fault_events + n;
  record_.fault_events = total > 0xffff ? 0xffff : static_cast<std::uint16_t>(total);
}

bool HostGrabTask::fresh_fault() {
  if (conn_ == nullptr) return false;
  const std::uint32_t now = conn_->faults_injected();
  if (now > conn_faults_seen_) {
    note_faults(now - conn_faults_seen_);
    conn_faults_seen_ = now;
    return true;
  }
  return false;
}

void HostGrabTask::degrade(ProbeOutcome grade) {
  if (static_cast<std::uint8_t>(grade) > static_cast<std::uint8_t>(record_.completeness)) {
    record_.completeness = grade;
  }
}

bool HostGrabTask::can_retry() const {
  return attempt_ + 1 < config_.retry.max_attempts &&
         record_.retries < config_.retry.max_host_retries;
}

std::uint64_t HostGrabTask::backoff_us() {
  const RetryPolicy& policy = config_.retry;
  double ms = static_cast<double>(policy.backoff_base_ms);
  for (int i = 1; i < attempt_; ++i) ms *= policy.backoff_multiplier;
  const std::uint64_t jitter_ms =
      policy.backoff_jitter_ms > 0 ? retry_rng_.below(policy.backoff_jitter_ms + 1) : 0;
  return static_cast<std::uint64_t>(ms * 1000.0) + jitter_ms * 1000;
}

std::uint64_t HostGrabTask::connect_timeout_us() const {
  const FaultPlan* plan = network_.fault_plan();
  return plan != nullptr ? plan->profile().connect_timeout_us : 5'000'000;
}

void HostGrabTask::reset_discovery_state() {
  record_.speaks_opcua = false;
  record_.endpoints.clear();
  record_.referenced_targets.clear();
  record_.application_uri.clear();
  record_.product_uri.clear();
  record_.application_name.clear();
  record_.application_type = ApplicationType::Server;
  record_.anonymous_offered = false;
}

void HostGrabTask::reset_probe_state() {
  record_.channel = ChannelOutcome::not_attempted;
  record_.channel_policy = SecurityPolicy::None;
  record_.channel_mode = MessageSecurityMode::None;
  record_.server_signature_valid = false;
  record_.session = SessionOutcome::not_attempted;
}

HostGrabTask::Step HostGrabTask::retry_to(Phase next, bool drop_connection) {
  if (drop_connection && conn_ != nullptr) {
    charge(*conn_);
    fresh_fault();
    record_.bytes_sent += conn_->bytes_sent();
    client_.reset();
    conn_.reset();
    conn_faults_seen_ = 0;
  }
  ++attempt_;
  if (record_.retries < 0xffff) ++record_.retries;
  if (next == Phase::Discovery) reset_discovery_state();
  if (next == Phase::SecureProbe) reset_probe_state();
  const std::uint64_t wait = consumed_us_ + backoff_us();
  elapsed_us_ += wait;
  consumed_us_ = 0;
  phase_ = next;
  return Step{wait, false};
}

HostGrabTask::Step HostGrabTask::give_up() {
  if (conn_ != nullptr) {
    charge(*conn_);
    fresh_fault();
    record_.bytes_sent += conn_->bytes_sent();
    client_.reset();
    conn_.reset();
  }
  switch (phase_) {
    case Phase::Discovery:
      degrade(record_.speaks_opcua ? ProbeOutcome::degraded : ProbeOutcome::unreachable);
      return finish(/*with_duration=*/record_.tcp_open);
    case Phase::SecureProbe:
      degrade(ProbeOutcome::degraded);
      return finish(/*with_duration=*/true);
    default:
      // Mid-assessment: whatever was collected before the faults stands.
      degrade(ProbeOutcome::truncated);
      return finish(/*with_duration=*/true);
  }
}

HostGrabTask::Step HostGrabTask::on_net_fault() {
  Phase target;
  switch (phase_) {
    case Phase::Discovery: target = Phase::Discovery; break;
    case Phase::SecureProbe: target = Phase::SecureProbe; break;
    case Phase::Reconnect: target = Phase::Reconnect; break;
    default:
      resume_phase_ = phase_;
      target = Phase::Reconnect;
      break;
  }
  if (!can_retry()) return give_up();
  return retry_to(target, /*drop_connection=*/true);
}

HostGrabTask::Step HostGrabTask::reconnect_failed() {
  if (fresh_fault() && can_retry()) {
    return retry_to(Phase::Reconnect, /*drop_connection=*/true);
  }
  return give_up();  // phase_ == Reconnect grades the record `truncated`
}

HostGrabTask::Step HostGrabTask::step() {
  try {
    switch (phase_) {
      case Phase::Discovery: return step_discovery();
      case Phase::SecureProbe: return step_secure_probe();
      case Phase::ReadNamespaces: return step_read_namespaces();
      case Phase::ReadVersion: return step_read_version();
      case Phase::TraverseBrowse: return traverse_loop(/*browse_first=*/true);
      case Phase::TraverseRead: return step_traverse_read();
      case Phase::Reconnect: return step_reconnect();
      case Phase::Done: break;
    }
  } catch (const NetFault&) {
    return on_net_fault();
  }
  return Step{0, true};
}

HostGrabTask::Step HostGrabTask::step_discovery() {
  ConnectFault connect_fault = ConnectFault::None;
  conn_ = network_.connect(ip_, port_, ConnMode::Deferred, &connect_fault);
  if (!conn_) {
    if (connect_fault != ConnectFault::None) {
      note_faults(1);
      consumed_us_ += connect_fault == ConnectFault::SynDrop ? connect_timeout_us()
                                                             : network_.rtt_us(ip_);
      if (can_retry()) return retry_to(Phase::Discovery, /*drop_connection=*/false);
      return give_up();
    }
    consumed_us_ += network_.rtt_us(ip_);  // RST after one RTT
    return finish(/*with_duration=*/false);
  }
  record_.tcp_open = true;
  conn_faults_seen_ = 0;
  conn_->set_request_timeout_us(config_.retry.request_timeout_ms * 1000);
  charge(*conn_);  // three-way handshake
  obs::observe_us(obs::Metric::phase_connect_us, consumed_us_, kObsOpcua);

  client_ = std::make_unique<Client>(config_.client, *conn_,
                                     Rng(seed_).child("grab-" + std::to_string(task_id_)));
  const std::uint64_t hello_start_us = consumed_us_;
  const StatusCode hello_status = client_->hello(url_);
  charge(*conn_);
  obs::observe_us(obs::Metric::phase_hello_us, consumed_us_ - hello_start_us, kObsOpcua);
  if (hello_status != StatusCode::Good) {
    if (fresh_fault()) {
      if (can_retry()) return retry_to(Phase::Discovery, /*drop_connection=*/true);
      return give_up();
    }
    return finish(/*with_duration=*/true);  // not an OPC UA speaker
  }
  const StatusCode open_status =
      client_->open_channel(SecurityPolicy::None, MessageSecurityMode::None);
  charge(*conn_);
  if (open_status != StatusCode::Good) {
    if (fresh_fault()) {
      if (can_retry()) return retry_to(Phase::Discovery, /*drop_connection=*/true);
      return give_up();
    }
    return finish(/*with_duration=*/false);
  }

  std::vector<EndpointDescription> endpoints;
  const std::uint64_t endpoints_start_us = consumed_us_;
  const StatusCode endpoints_status = client_->get_endpoints(url_, endpoints);
  charge(*conn_);
  obs::observe_us(obs::Metric::phase_endpoints_us, consumed_us_ - endpoints_start_us);
  if (endpoints_status != StatusCode::Good) {
    if (fresh_fault()) {
      if (can_retry()) return retry_to(Phase::Discovery, /*drop_connection=*/true);
      return give_up();
    }
    return finish(/*with_duration=*/false);
  }
  record_.speaks_opcua = true;

  for (const auto& ep : endpoints) {
    const auto target = parse_opc_url(ep.endpoint_url);
    const bool foreign = target && (target->first != ip_ || target->second != port_);
    if (foreign) {
      record_.referenced_targets.push_back(*target);
      continue;
    }
    EndpointObservation obs;
    obs.url = ep.endpoint_url;
    obs.mode = ep.security_mode;
    obs.policy_uri = ep.security_policy_uri;
    if (const auto policy = policy_from_uri(ep.security_policy_uri)) {
      obs.policy = *policy;
      obs.policy_known = true;
    }
    for (const auto& token : ep.user_identity_tokens) obs.token_types.push_back(token.token_type);
    obs.certificate_der = ep.server_certificate;
    record_.endpoints.push_back(std::move(obs));
    if (record_.application_uri.empty()) {
      record_.application_uri = ep.server.application_uri;
      record_.product_uri = ep.server.product_uri;
      record_.application_name = ep.server.application_name.text;
      record_.application_type = ep.server.application_type;
    }
  }
  record_.bytes_sent += conn_->bytes_sent();
  try {
    client_->close_channel();
  } catch (const NetFault&) {
    // A fault on the goodbye costs nothing: everything is already recorded.
  }
  charge(*conn_);
  fresh_fault();
  client_.reset();
  conn_.reset();

  for (const auto& ep : record_.endpoints) {
    for (UserTokenType t : ep.token_types) {
      if (t == UserTokenType::Anonymous) record_.anonymous_offered = true;
    }
  }

  if (!record_.endpoints.empty() && !record_.is_discovery_server() &&
      strongest_endpoint() != nullptr) {
    // The secure re-probe reconnects immediately (no pacing gap), but
    // yielding here lets the engine interleave other hosts.
    return yield(/*pace_us=*/0, Phase::SecureProbe);
  }
  return finish(/*with_duration=*/true);
}

HostGrabTask::Step HostGrabTask::step_secure_probe() {
  const EndpointObservation* best = strongest_endpoint();
  assess_start_us_ = elapsed_us_;

  ConnectFault connect_fault = ConnectFault::None;
  conn_ = network_.connect(ip_, port_, ConnMode::Deferred, &connect_fault);
  if (!conn_) {
    if (connect_fault != ConnectFault::None) {
      note_faults(1);
      consumed_us_ += connect_fault == ConnectFault::SynDrop ? connect_timeout_us()
                                                             : network_.rtt_us(ip_);
      if (can_retry()) return retry_to(Phase::SecureProbe, /*drop_connection=*/false);
      return give_up();
    }
    consumed_us_ += network_.rtt_us(ip_);
    return finish(/*with_duration=*/true);
  }
  conn_faults_seen_ = 0;
  conn_->set_request_timeout_us(config_.retry.request_timeout_ms * 1000);
  charge(*conn_);
  client_ = std::make_unique<Client>(config_.client, *conn_,
                                     Rng(seed_).child("sess-" + std::to_string(task_id_)));
  const StatusCode hello_status = client_->hello(url_);
  charge(*conn_);
  if (hello_status != StatusCode::Good) {
    if (fresh_fault()) {
      if (can_retry()) return retry_to(Phase::SecureProbe, /*drop_connection=*/true);
      return give_up();
    }
    return finish(/*with_duration=*/true);
  }

  const StatusCode channel_status =
      client_->open_channel(best->policy, best->mode, best->certificate_der);
  charge(*conn_);
  record_.channel_policy = best->policy;
  record_.channel_mode = best->mode;
  if (is_bad(channel_status)) {
    if (fresh_fault()) {
      if (can_retry()) return retry_to(Phase::SecureProbe, /*drop_connection=*/true);
      return give_up();
    }
    record_.channel = best->policy == SecurityPolicy::None ? ChannelOutcome::failed
                                                           : ChannelOutcome::cert_rejected;
    record_.session = SessionOutcome::channel_rejected;
    record_.bytes_sent += conn_->bytes_sent();
    obs::observe_us(obs::Metric::phase_auth_probe_us, consumed_us_, kObsOpcua);
    return finish(/*with_duration=*/true);
  }
  record_.channel = ChannelOutcome::established;

  // Attempt an anonymous session on every reachable server: servers without
  // an anonymous token reject it, which is exactly the paper's
  // "unaccessible, reason: authentication" population (Table 2).
  Client::SessionInfo info;
  StatusCode status = client_->create_session(&info);
  charge(*conn_);
  record_.server_signature_valid = info.server_signature_valid;
  if (is_good(status)) {
    status = client_->activate_session_anonymous();
    charge(*conn_);
  }
  if (is_bad(status)) {
    if (fresh_fault()) {
      if (can_retry()) return retry_to(Phase::SecureProbe, /*drop_connection=*/true);
      return give_up();
    }
    record_.session = SessionOutcome::auth_rejected;
    record_.bytes_sent += conn_->bytes_sent();
    obs::observe_us(obs::Metric::phase_auth_probe_us, consumed_us_, kObsOpcua);
    return finish(/*with_duration=*/true);
  }
  record_.session = SessionOutcome::accessible;
  obs::observe_us(obs::Metric::phase_auth_probe_us, consumed_us_, kObsOpcua);

  // Namespaces (classification input) and software version (§5.5) follow
  // after the inter-request pause.
  return yield(config_.budget.inter_request_ms * 1000, Phase::ReadNamespaces);
}

HostGrabTask::Step HostGrabTask::step_reconnect() {
  ConnectFault connect_fault = ConnectFault::None;
  conn_ = network_.connect(ip_, port_, ConnMode::Deferred, &connect_fault);
  if (!conn_) {
    if (connect_fault != ConnectFault::None) {
      note_faults(1);
      consumed_us_ += connect_fault == ConnectFault::SynDrop ? connect_timeout_us()
                                                             : network_.rtt_us(ip_);
      if (can_retry()) return retry_to(Phase::Reconnect, /*drop_connection=*/false);
      return give_up();
    }
    // The listener is genuinely gone mid-assessment.
    consumed_us_ += network_.rtt_us(ip_);
    degrade(ProbeOutcome::truncated);
    return finish(/*with_duration=*/true);
  }
  conn_faults_seen_ = 0;
  conn_->set_request_timeout_us(config_.retry.request_timeout_ms * 1000);
  charge(*conn_);
  ++reconnects_;
  client_ = std::make_unique<Client>(
      config_.client, *conn_,
      Rng(seed_).child("sess-" + std::to_string(task_id_) + "-r" + std::to_string(reconnects_)));

  const EndpointObservation* best = strongest_endpoint();
  const StatusCode hello_status = client_->hello(url_);
  charge(*conn_);
  if (hello_status != StatusCode::Good) return reconnect_failed();

  const StatusCode channel_status =
      client_->open_channel(best->policy, best->mode, best->certificate_der);
  charge(*conn_);
  if (is_bad(channel_status)) return reconnect_failed();

  // Re-establish the anonymous session; the original probe's verdicts
  // (server_signature_valid, session outcome) are already recorded and are
  // deliberately not overwritten here.
  Client::SessionInfo info;
  StatusCode status = client_->create_session(&info);
  charge(*conn_);
  if (is_good(status)) {
    status = client_->activate_session_anonymous();
    charge(*conn_);
  }
  if (is_bad(status)) return reconnect_failed();

  return yield(config_.budget.inter_request_ms * 1000, resume_phase_);
}

HostGrabTask::Step HostGrabTask::step_read_namespaces() {
  std::vector<std::string> namespaces;
  const StatusCode status = client_->read_string_array(node_ids::kNamespaceArray, namespaces);
  charge(*conn_);
  if (status == StatusCode::Good) {
    record_.namespaces = std::move(namespaces);
  } else if (fresh_fault()) {
    // The connection survived (garbled reply): retry the read in place.
    if (!can_retry()) return give_up();
    return retry_to(Phase::ReadNamespaces, /*drop_connection=*/false);
  }
  return yield(config_.budget.inter_request_ms * 1000, Phase::ReadVersion);
}

HostGrabTask::Step HostGrabTask::step_read_version() {
  DataValue sv;
  const StatusCode status = client_->read(node_ids::kSoftwareVersion, AttributeId::Value, sv);
  charge(*conn_);
  if (status == StatusCode::Good && sv.value.is<std::string>()) {
    record_.software_version = sv.value.as<std::string>();
  } else if (status != StatusCode::Good && fresh_fault()) {
    if (!can_retry()) return give_up();
    return retry_to(Phase::ReadVersion, /*drop_connection=*/false);
  }
  if (!config_.traverse_address_space) return finish_assess();

  // Breadth-first walk from the Objects folder, reading the anonymous
  // user's access rights for every variable/method. The scanner never
  // writes and never calls: rights are read from UserAccessLevel /
  // UserExecutable attributes (paper §A.1).
  queue_ = {node_ids::kObjectsFolder};
  visited_ = {node_ids::kObjectsFolder};
  return traverse_loop(/*browse_first=*/false);
}

HostGrabTask::Step HostGrabTask::traverse_loop(bool browse_first) {
  if (browse_first) {
    refs_.clear();
    ref_index_ = 0;
    const StatusCode status = client_->browse(current_node_, refs_, config_.browse_chunk);
    charge(*conn_);
    if (status != StatusCode::Good) {
      refs_.clear();
      if (fresh_fault()) {
        if (!can_retry()) return give_up();
        return retry_to(Phase::TraverseBrowse, /*drop_connection=*/false);
      }
    }
  }
  for (;;) {
    // Inner loop: walk the reference list of the current node.
    while (ref_index_ < refs_.size()) {
      const auto& ref = refs_[ref_index_];
      if (!visited_.insert(ref.node_id).second) {
        ++ref_index_;
        continue;
      }
      pending_obs_ = NodeObservation{};
      pending_obs_.browse_name = ref.browse_name.name;
      pending_obs_.node_class = ref.node_class;
      if (ref.node_class == NodeClass::Variable || ref.node_class == NodeClass::Method) {
        if (budget_exhausted()) {
          record_.traversal_truncated = true;
          return finish_assess();
        }
        pending_attr_ = ref.node_class == NodeClass::Variable ? AttributeId::UserAccessLevel
                                                              : AttributeId::UserExecutable;
        return yield(config_.budget.inter_request_ms * 1000, Phase::TraverseRead);
      }
      record_.nodes.push_back(pending_obs_);
      queue_.push_back(ref.node_id);
      ++ref_index_;
    }
    // Outer loop head: pick the next node to browse.
    if (queue_.empty()) return finish_assess();
    if (budget_exhausted()) {
      record_.traversal_truncated = true;
      return finish_assess();
    }
    current_node_ = queue_.front();
    queue_.pop_front();
    return yield(config_.budget.inter_request_ms * 1000, Phase::TraverseBrowse);
  }
}

HostGrabTask::Step HostGrabTask::step_traverse_read() {
  DataValue dv;
  const StatusCode status = client_->read(refs_[ref_index_].node_id, pending_attr_, dv);
  charge(*conn_);
  if (status == StatusCode::Good) {
    if (pending_attr_ == AttributeId::UserAccessLevel && dv.value.is<std::uint32_t>()) {
      const auto level = dv.value.as<std::uint32_t>();
      pending_obs_.readable = level & access_level::kCurrentRead;
      pending_obs_.writable = level & access_level::kCurrentWrite;
    } else if (pending_attr_ == AttributeId::UserExecutable && dv.value.is<bool>()) {
      pending_obs_.executable = dv.value.as<bool>();
    }
  } else if (fresh_fault()) {
    if (!can_retry()) return give_up();
    return retry_to(Phase::TraverseRead, /*drop_connection=*/false);
  }
  record_.nodes.push_back(pending_obs_);
  queue_.push_back(refs_[ref_index_].node_id);
  ++ref_index_;
  return traverse_loop(/*browse_first=*/false);
}

HostGrabTask::Step HostGrabTask::finish_assess() {
  record_.bytes_sent += conn_->bytes_sent();
  try {
    client_->close_channel();
  } catch (const NetFault&) {
    // Assessment is complete; a fault on the goodbye changes nothing.
  }
  charge(*conn_);
  return finish(/*with_duration=*/true);
}

}  // namespace opcua_study
