// The protocol-plugin seam of the scan engine.
//
// A ProtocolProbe is one application-layer backend: a protocol id, a
// registry name, a default port profile, and a factory producing the
// resumable per-host state machine (ProbeTask) that the ScanScheduler
// drives. OPC UA is backend 0 — its task is the unmodified HostGrabTask,
// so a campaign routed through the registry produces byte-identical
// records and snapshots to the pre-registry engine (pinned by test).
// MQTT-over-TLS is backend 1, the proof that a second family slots in
// without touching the scheduler, the snapshot format's fixed columns, or
// the analysis layers above.
//
// Determinism contract for every backend: a task's record must be a pure
// function of (config, seed, task_id, ip, port) plus the simulated
// network's responses — never of scheduling order. RNG streams are keyed
// by task id (assigned in launch order) or by endpoint, exactly like the
// OPC UA engine's "grab-N" / "retry-<ip>:<port>" streams, so mixed-fleet
// campaigns interleave heterogeneous grabs and still reproduce the same
// bytes for any max_in_flight, thread count or shard layout.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "netsim/network.hpp"
#include "scanner/grabber.hpp"
#include "scanner/record.hpp"

namespace opcua_study {

/// A resumable per-host grab. step() performs one unit of protocol work
/// against a deferred connection and reports how much simulated time must
/// pass before the next step (see scanner/host_task.hpp for the model).
class ProbeTask {
 public:
  struct Step {
    /// Simulated time consumed by this step plus the pacing delay before
    /// the next one: schedule the next step() this far in the future.
    std::uint64_t wait_us = 0;
    bool done = false;
  };

  virtual ~ProbeTask() = default;
  virtual Step step() = 0;
  virtual bool done() const = 0;
  virtual HostScanRecord take_record() = 0;
};

/// One scan target: which backend to drive against which port.
struct ProtocolTarget {
  ProtocolId protocol = ProtocolId::opcua;
  std::uint16_t port = kOpcUaDefaultPort;

  friend bool operator==(const ProtocolTarget&, const ProtocolTarget&) = default;
};

/// One registered protocol backend.
class ProtocolProbe {
 public:
  virtual ~ProtocolProbe() = default;
  virtual ProtocolId id() const = 0;
  /// Stable registry name, equal to protocol_name(id()).
  virtual std::string_view name() const = 0;
  virtual std::uint16_t default_port() const = 0;
  /// Build the state machine for one host. `task_id` feeds the per-grab
  /// RNG streams; the scheduler assigns ids in launch order.
  virtual std::unique_ptr<ProbeTask> make_task(const GrabberConfig& config, Network& network,
                                               std::uint64_t seed, std::uint64_t task_id,
                                               Ipv4 ip, std::uint16_t port) const = 0;
};

/// Registry lookups. An unknown id is a programming error: protocol_probe
/// throws std::invalid_argument naming the id. find_protocol_probe returns
/// nullptr for names no backend claims.
const ProtocolProbe& protocol_probe(ProtocolId id);
const ProtocolProbe* find_protocol_probe(std::string_view name);
/// Every built-in backend, in id order.
const std::vector<const ProtocolProbe*>& protocol_registry();

/// Scheme-aware endpoint URL parse result.
struct ParsedEndpoint {
  ProtocolId protocol = ProtocolId::opcua;
  Ipv4 ip = 0;
  std::uint16_t port = 0;

  friend bool operator==(const ParsedEndpoint&, const ParsedEndpoint&) = default;
};

/// Parse "opc.tcp://a.b.c.d[:port]/..." or "mqtts://a.b.c.d[:port]/..."
/// into (protocol, ip, port). The port default follows the *scheme*
/// (opc.tcp -> 4840, mqtts -> 8883) instead of the old parser's blanket
/// OPC UA default. Rejects hostname URLs (the study follows IPs only),
/// unknown schemes and out-of-range ports.
std::optional<ParsedEndpoint> parse_endpoint_url(const std::string& url);

}  // namespace opcua_study
