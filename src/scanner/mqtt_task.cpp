#include "scanner/mqtt_task.hpp"

#include "netsim/mqtt_service.hpp"
#include "obs/metrics.hpp"
#include "opcua/secpolicy.hpp"

namespace opcua_study {

namespace {

// Phase-timing cells are keyed by protocol; this task is the MQTT backend.
constexpr unsigned kObsMqtt = static_cast<unsigned>(ProtocolId::mqtt_tls);

constexpr std::uint32_t kHello = 0x4c48514du;     // 'MQHL'
constexpr std::uint32_t kHelloAck = 0x4148514du;  // 'MQHA'
constexpr std::uint32_t kConnect = 0x4f43514du;   // 'MQCO'
constexpr std::uint32_t kConnAck = 0x4143514du;   // 'MQCA'
constexpr std::uint32_t kSysRead = 0x5253514du;   // 'MQSR'
constexpr std::uint32_t kSysVal = 0x5653514du;    // 'MQSV'

}  // namespace

MqttGrabTask::MqttGrabTask(const GrabberConfig& config, Network& network, std::uint64_t seed,
                           std::uint64_t task_id, Ipv4 ip, std::uint16_t port)
    : config_(config),
      network_(network),
      seed_(seed),
      task_id_(task_id),
      ip_(ip),
      port_(port),
      // Endpoint-keyed like the OPC UA task's jitter stream: retry timing
      // must not depend on sweep order or shard layout.
      retry_rng_(Rng(seed).child("retry-" + format_ipv4(ip) + ":" + std::to_string(port))) {
  record_.ip = ip;
  record_.port = port;
  record_.protocol = ProtocolId::mqtt_tls;
  record_.asn = network_.as_db().asn_of(ip);
}

MqttGrabTask::~MqttGrabTask() = default;

MqttGrabTask::Step MqttGrabTask::yield(std::uint64_t pace_us, Phase next) {
  attempt_ = 0;
  const std::uint64_t wait = consumed_us_ + pace_us;
  elapsed_us_ += wait;
  consumed_us_ = 0;
  phase_ = next;
  return Step{wait, false};
}

void MqttGrabTask::bank_connection() {
  if (conn_ == nullptr) return;
  charge(*conn_);
  const std::uint32_t faults = conn_->faults_injected();
  if (faults > conn_faults_seen_) note_faults(faults - conn_faults_seen_);
  record_.bytes_sent += conn_->bytes_sent();
  conn_.reset();
  conn_faults_seen_ = 0;
}

MqttGrabTask::Step MqttGrabTask::finish(bool with_duration) {
  bank_connection();
  const std::uint64_t wait = consumed_us_;
  elapsed_us_ += wait;
  consumed_us_ = 0;
  if (with_duration) record_.duration_seconds = static_cast<double>(elapsed_us_) / 1e6;
  phase_ = Phase::Done;
  return Step{wait, true};
}

void MqttGrabTask::note_faults(std::uint32_t n) {
  const std::uint32_t total = record_.fault_events + n;
  record_.fault_events = total > 0xffff ? 0xffff : static_cast<std::uint16_t>(total);
}

void MqttGrabTask::degrade(ProbeOutcome grade) {
  if (static_cast<std::uint8_t>(grade) > static_cast<std::uint8_t>(record_.completeness)) {
    record_.completeness = grade;
  }
}

bool MqttGrabTask::can_retry() const {
  return attempt_ + 1 < config_.retry.max_attempts &&
         record_.retries < config_.retry.max_host_retries;
}

std::uint64_t MqttGrabTask::backoff_us() {
  const RetryPolicy& policy = config_.retry;
  double ms = static_cast<double>(policy.backoff_base_ms);
  for (int i = 1; i < attempt_; ++i) ms *= policy.backoff_multiplier;
  const std::uint64_t jitter_ms =
      policy.backoff_jitter_ms > 0 ? retry_rng_.below(policy.backoff_jitter_ms + 1) : 0;
  return static_cast<std::uint64_t>(ms * 1000.0) + jitter_ms * 1000;
}

std::uint64_t MqttGrabTask::connect_timeout_us() const {
  const FaultPlan* plan = network_.fault_plan();
  return plan != nullptr ? plan->profile().connect_timeout_us : 5'000'000;
}

MqttGrabTask::Step MqttGrabTask::give_up() {
  bank_connection();
  switch (phase_) {
    case Phase::Hello:
      degrade(record_.speaks_opcua ? ProbeOutcome::degraded : ProbeOutcome::unreachable);
      return finish(/*with_duration=*/record_.tcp_open);
    case Phase::Connect:
      degrade(ProbeOutcome::degraded);
      return finish(/*with_duration=*/true);
    default:
      degrade(ProbeOutcome::truncated);
      return finish(/*with_duration=*/true);
  }
}

MqttGrabTask::Step MqttGrabTask::on_net_fault() {
  if (!can_retry()) return give_up();
  bank_connection();
  ++attempt_;
  if (record_.retries < 0xffff) ++record_.retries;
  // Every retry re-runs the whole exchange from the hello: the handshake
  // is two roundtrips, so resuming mid-session buys nothing.
  record_.speaks_opcua = false;
  record_.endpoints.clear();
  record_.anonymous_offered = false;
  record_.channel = ChannelOutcome::not_attempted;
  record_.channel_policy = SecurityPolicy::None;
  record_.channel_mode = MessageSecurityMode::None;
  record_.server_signature_valid = false;
  record_.session = SessionOutcome::not_attempted;
  record_.namespaces.clear();
  const std::uint64_t wait = consumed_us_ + backoff_us();
  elapsed_us_ += wait;
  consumed_us_ = 0;
  phase_ = Phase::Hello;
  return Step{wait, false};
}

MqttGrabTask::Step MqttGrabTask::step() {
  try {
    switch (phase_) {
      case Phase::Hello: return step_hello();
      case Phase::Connect: return step_connect();
      case Phase::SysRead: return step_sys_read();
      case Phase::Done: break;
    }
  } catch (const NetFault&) {
    return on_net_fault();
  } catch (const DecodeError&) {
    // Garbled reply: treat like a protocol reset (retryable under faults,
    // final on a clean network where it means "not an MQTT broker").
    if (conn_ != nullptr && conn_->faults_injected() > conn_faults_seen_) {
      return on_net_fault();
    }
    return finish(/*with_duration=*/record_.tcp_open);
  }
  return Step{0, true};
}

MqttGrabTask::Step MqttGrabTask::step_hello() {
  ConnectFault connect_fault = ConnectFault::None;
  conn_ = network_.connect(ip_, port_, ConnMode::Deferred, &connect_fault);
  if (!conn_) {
    if (connect_fault != ConnectFault::None) {
      note_faults(1);
      consumed_us_ += connect_fault == ConnectFault::SynDrop ? connect_timeout_us()
                                                             : network_.rtt_us(ip_);
      if (can_retry()) {
        ++attempt_;
        if (record_.retries < 0xffff) ++record_.retries;
        const std::uint64_t wait = consumed_us_ + backoff_us();
        elapsed_us_ += wait;
        consumed_us_ = 0;
        return Step{wait, false};
      }
      return give_up();
    }
    consumed_us_ += network_.rtt_us(ip_);  // RST after one RTT
    return finish(/*with_duration=*/false);
  }
  record_.tcp_open = true;
  conn_faults_seen_ = 0;
  conn_->set_request_timeout_us(config_.retry.request_timeout_ms * 1000);
  charge(*conn_);  // three-way handshake
  obs::observe_us(obs::Metric::phase_connect_us, consumed_us_, kObsMqtt);

  UaWriter hello;
  hello.u32(kHello);
  hello.u16(0x0303);
  const std::uint64_t hello_start_us = consumed_us_;
  const Bytes reply = conn_->roundtrip(hello.take());
  charge(*conn_);
  obs::observe_us(obs::Metric::phase_hello_us, consumed_us_ - hello_start_us, kObsMqtt);
  UaReader r(reply);
  if (reply.empty() || r.u32() != kHelloAck) {
    // Whatever answered is not our broker (dummy service / port reuse).
    return finish(/*with_duration=*/true);
  }
  const bool legacy_tls = r.byte() != 0;
  const std::uint8_t auth_mask = r.byte();
  Bytes cert_der = r.byte_string();
  const std::string banner = r.string();

  record_.speaks_opcua = true;  // completed the probed protocol's handshake
  record_.application_uri = "urn:mqtt:" + banner.substr(0, banner.find('/'));
  record_.application_name = "MQTT broker";
  record_.application_type = ApplicationType::Server;
  record_.software_version = banner;

  EndpointObservation ep;
  ep.url = "mqtts://" + format_ipv4(ip_) + ":" + std::to_string(port_) + "/";
  ep.mode = MessageSecurityMode::SignAndEncrypt;  // TLS on the wire
  // TLS profile -> policy bucket: legacy suites map onto the deprecated
  // policy class, modern suites onto the secure one, so the shared
  // deficiency taxonomy (deprecated-only, weak certificate, anonymous
  // access) applies unchanged.
  ep.policy = legacy_tls ? SecurityPolicy::Basic128Rsa15 : SecurityPolicy::Basic256Sha256;
  ep.policy_known = true;
  ep.policy_uri = std::string(policy_info(ep.policy).uri);
  if ((auth_mask & mqtt_auth::kAnonymous) != 0) ep.token_types.push_back(UserTokenType::Anonymous);
  if ((auth_mask & mqtt_auth::kPassword) != 0) ep.token_types.push_back(UserTokenType::UserName);
  if ((auth_mask & mqtt_auth::kClientCert) != 0) {
    ep.token_types.push_back(UserTokenType::Certificate);
  }
  ep.certificate_der = std::move(cert_der);
  record_.endpoints.push_back(std::move(ep));

  record_.channel = ChannelOutcome::established;
  record_.channel_mode = MessageSecurityMode::SignAndEncrypt;
  record_.channel_policy = record_.endpoints.front().policy;
  record_.server_signature_valid = true;
  record_.anonymous_offered = (auth_mask & mqtt_auth::kAnonymous) != 0;

  if (!record_.anonymous_offered) {
    record_.session = SessionOutcome::not_attempted;
    return finish(/*with_duration=*/true);
  }
  return yield(config_.budget.inter_request_ms * 1000, Phase::Connect);
}

MqttGrabTask::Step MqttGrabTask::step_connect() {
  UaWriter connect;
  connect.u32(kConnect);
  connect.byte(0);  // anonymous
  const Bytes reply = conn_->roundtrip(connect.take());
  charge(*conn_);
  obs::observe_us(obs::Metric::phase_auth_probe_us, consumed_us_, kObsMqtt);
  UaReader r(reply);
  if (reply.empty() || r.u32() != kConnAck) return finish(/*with_duration=*/true);
  if (r.byte() != 0) {
    record_.session = SessionOutcome::auth_rejected;
    return finish(/*with_duration=*/true);
  }
  record_.session = SessionOutcome::accessible;
  if (!config_.traverse_address_space) return finish(/*with_duration=*/true);
  return yield(config_.budget.inter_request_ms * 1000, Phase::SysRead);
}

MqttGrabTask::Step MqttGrabTask::step_sys_read() {
  UaWriter read;
  read.u32(kSysRead);
  const Bytes reply = conn_->roundtrip(read.take());
  charge(*conn_);
  UaReader r(reply);
  if (reply.empty() || r.u32() != kSysVal) return finish(/*with_duration=*/true);
  record_.software_version = r.string();
  record_.namespaces = r.string_array();
  return finish(/*with_duration=*/true);
}

}  // namespace opcua_study
