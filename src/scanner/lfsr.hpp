// zmap-style pseudo-random address iteration.
//
// zmap walks the IPv4 space in the order of a cyclic group element so that
// probes hit autonomous systems uniformly instead of hammering one prefix
// (the paper relies on "zmap's address randomization", §A.2). We implement
// the classic maximal-length Galois LFSR equivalent: a full period over
// [1, 2^w) with no repeats, extended to arbitrary CIDR universes by
// cycle-walking (skip states outside the range).
#pragma once

#include <cstdint>
#include <optional>

#include "util/ipv4.hpp"

namespace opcua_study {

/// Maximal-length Galois LFSR over w bits (4 <= w <= 32): visits every
/// value in [1, 2^w) exactly once per period.
class LfsrSequence {
 public:
  LfsrSequence(int width, std::uint32_t seed);

  std::uint32_t next();
  std::uint32_t period_length() const {
    return width_ >= 32 ? 0xffffffffu : ((std::uint32_t{1} << width_) - 1);
  }

 private:
  int width_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

/// One full pseudo-random pass over a CIDR universe (every address exactly
/// once, order scrambled, deterministic in the seed).
class AddressSweep {
 public:
  AddressSweep(const Cidr& universe, std::uint64_t seed);

  /// Next address, or nullopt when the sweep is complete.
  std::optional<Ipv4> next();
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t universe_size() const { return size_; }

 private:
  Ipv4 base_;
  std::uint64_t size_;
  int width_;
  LfsrSequence lfsr_;
  std::uint64_t emitted_ = 0;
  bool zero_emitted_ = false;
};

}  // namespace opcua_study
