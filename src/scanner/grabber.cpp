#include "scanner/grabber.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace opcua_study {

namespace {

/// Parse "opc.tcp://a.b.c.d:port/..." into (ip, port).
std::optional<std::pair<Ipv4, std::uint16_t>> parse_opc_url(const std::string& url) {
  constexpr std::string_view kScheme = "opc.tcp://";
  if (url.rfind(kScheme, 0) != 0) return std::nullopt;
  std::string rest = url.substr(kScheme.size());
  const auto slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const auto colon = rest.find(':');
  std::uint16_t port = kOpcUaDefaultPort;
  std::string host = rest;
  if (colon != std::string::npos) {
    host = rest.substr(0, colon);
    try {
      port = static_cast<std::uint16_t>(std::stoi(rest.substr(colon + 1)));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  try {
    return std::make_pair(parse_ipv4(host), port);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // hostname-based URL; the study follows IPs only
  }
}

}  // namespace

Grabber::Grabber(GrabberConfig config, Network& network, std::uint64_t seed)
    : config_(std::move(config)), network_(network), seed_(seed) {}

HostScanRecord Grabber::grab(Ipv4 ip, std::uint16_t port) {
  HostScanRecord record;
  record.ip = ip;
  record.port = port;
  record.asn = network_.as_db().asn_of(ip);
  ++grab_counter_;

  const std::uint64_t started_us = network_.clock().now_us();
  auto conn = network_.connect(ip, port);
  if (!conn) return record;
  record.tcp_open = true;

  const std::string url = "opc.tcp://" + format_ipv4(ip) + ":" + std::to_string(port) + "/";
  Client client(config_.client, *conn,
                Rng(seed_).child("grab-" + std::to_string(grab_counter_)));
  if (client.hello(url) != StatusCode::Good) {
    record.duration_seconds =
        static_cast<double>(network_.clock().now_us() - started_us) / 1e6;
    return record;  // not an OPC UA speaker
  }
  if (client.open_channel(SecurityPolicy::None, MessageSecurityMode::None) != StatusCode::Good) {
    return record;
  }
  std::vector<EndpointDescription> endpoints;
  if (client.get_endpoints(url, endpoints) != StatusCode::Good) return record;
  record.speaks_opcua = true;

  for (const auto& ep : endpoints) {
    const auto target = parse_opc_url(ep.endpoint_url);
    const bool foreign = target && (target->first != ip || target->second != port);
    if (foreign) {
      record.referenced_targets.push_back(*target);
      continue;
    }
    EndpointObservation obs;
    obs.url = ep.endpoint_url;
    obs.mode = ep.security_mode;
    obs.policy_uri = ep.security_policy_uri;
    if (const auto policy = policy_from_uri(ep.security_policy_uri)) {
      obs.policy = *policy;
      obs.policy_known = true;
    }
    for (const auto& token : ep.user_identity_tokens) obs.token_types.push_back(token.token_type);
    obs.certificate_der = ep.server_certificate;
    record.endpoints.push_back(std::move(obs));
    if (record.application_uri.empty()) {
      record.application_uri = ep.server.application_uri;
      record.product_uri = ep.server.product_uri;
      record.application_name = ep.server.application_name.text;
      record.application_type = ep.server.application_type;
    }
  }
  record.bytes_sent += conn->bytes_sent();
  client.close_channel();
  conn.reset();

  for (const auto& ep : record.endpoints) {
    for (UserTokenType t : ep.token_types) {
      if (t == UserTokenType::Anonymous) record.anonymous_offered = true;
    }
  }

  if (!record.endpoints.empty() && !record.is_discovery_server()) {
    assess_channel_and_session(record);
  }
  record.duration_seconds = static_cast<double>(network_.clock().now_us() - started_us) / 1e6;
  return record;
}

void Grabber::assess_channel_and_session(HostScanRecord& record) {
  // Pick the strongest advertised (mode, policy) endpoint — the paper's
  // scanner presents its self-signed certificate whenever Sign or
  // SignAndEncrypt is offered.
  const EndpointObservation* best = nullptr;
  for (const auto& ep : record.endpoints) {
    if (!ep.policy_known) continue;
    if (best == nullptr ||
        security_mode_rank(ep.mode) > security_mode_rank(best->mode) ||
        (security_mode_rank(ep.mode) == security_mode_rank(best->mode) &&
         policy_info(ep.policy).rank > policy_info(best->policy).rank)) {
      best = &ep;
    }
  }
  if (best == nullptr) return;

  const std::uint64_t started_us = network_.clock().now_us();
  auto conn = network_.connect(record.ip, record.port);
  if (!conn) return;
  const std::string url =
      "opc.tcp://" + format_ipv4(record.ip) + ":" + std::to_string(record.port) + "/";
  Client client(config_.client, *conn,
                Rng(seed_).child("sess-" + std::to_string(grab_counter_)));
  if (client.hello(url) != StatusCode::Good) return;

  const StatusCode channel_status = client.open_channel(best->policy, best->mode,
                                                        best->certificate_der);
  record.channel_policy = best->policy;
  record.channel_mode = best->mode;
  if (is_bad(channel_status)) {
    record.channel = best->policy == SecurityPolicy::None ? ChannelOutcome::failed
                                                          : ChannelOutcome::cert_rejected;
    record.session = SessionOutcome::channel_rejected;
    record.bytes_sent += conn->bytes_sent();
    return;
  }
  record.channel = ChannelOutcome::established;

  // Attempt an anonymous session on every reachable server: servers without
  // an anonymous token reject it, which is exactly the paper's
  // "unaccessible, reason: authentication" population (Table 2).
  Client::SessionInfo info;
  StatusCode status = client.create_session(&info);
  record.server_signature_valid = info.server_signature_valid;
  if (is_good(status)) status = client.activate_session_anonymous();
  if (is_bad(status)) {
    record.session = SessionOutcome::auth_rejected;
    record.bytes_sent += conn->bytes_sent();
    return;
  }
  record.session = SessionOutcome::accessible;

  // Read namespaces (classification input) and software version (§5.5).
  network_.clock().advance_ms(config_.budget.inter_request_ms);
  std::vector<std::string> namespaces;
  if (client.read_string_array(node_ids::kNamespaceArray, namespaces) == StatusCode::Good) {
    record.namespaces = std::move(namespaces);
  }
  network_.clock().advance_ms(config_.budget.inter_request_ms);
  DataValue sv;
  if (client.read(node_ids::kSoftwareVersion, AttributeId::Value, sv) == StatusCode::Good &&
      sv.value.is<std::string>()) {
    record.software_version = sv.value.as<std::string>();
  }

  if (config_.traverse_address_space) traverse(record, client, *conn, started_us);
  record.bytes_sent += conn->bytes_sent();
  client.close_channel();
}

void Grabber::traverse(HostScanRecord& record, Client& client, NetConnection& conn,
                       std::uint64_t started_us) {
  // Breadth-first walk from the Objects folder, reading the anonymous
  // user's access rights for every variable/method. The scanner never
  // writes and never calls: rights are read from UserAccessLevel /
  // UserExecutable attributes (paper §A.1).
  std::deque<NodeId> queue = {node_ids::kObjectsFolder};
  std::set<NodeId> visited = {node_ids::kObjectsFolder};

  auto budget_exhausted = [&] {
    const double elapsed_s =
        static_cast<double>(network_.clock().now_us() - started_us) / 1e6;
    if (elapsed_s > static_cast<double>(config_.budget.max_host_seconds) ||
        conn.bytes_sent() > config_.budget.max_host_bytes) {
      record.traversal_truncated = true;
      return true;
    }
    return false;
  };

  while (!queue.empty()) {
    if (budget_exhausted()) return;
    const NodeId node = queue.front();
    queue.pop_front();

    network_.clock().advance_ms(config_.budget.inter_request_ms);
    std::vector<ReferenceDescription> refs;
    if (client.browse(node, refs, config_.browse_chunk) != StatusCode::Good) continue;

    for (const auto& ref : refs) {
      if (!visited.insert(ref.node_id).second) continue;
      NodeObservation obs;
      obs.browse_name = ref.browse_name.name;
      obs.node_class = ref.node_class;

      if (ref.node_class == NodeClass::Variable) {
        if (budget_exhausted()) return;
        network_.clock().advance_ms(config_.budget.inter_request_ms);
        DataValue dv;
        if (client.read(ref.node_id, AttributeId::UserAccessLevel, dv) == StatusCode::Good &&
            dv.value.is<std::uint32_t>()) {
          const auto level = dv.value.as<std::uint32_t>();
          obs.readable = level & access_level::kCurrentRead;
          obs.writable = level & access_level::kCurrentWrite;
        }
      } else if (ref.node_class == NodeClass::Method) {
        if (budget_exhausted()) return;
        network_.clock().advance_ms(config_.budget.inter_request_ms);
        DataValue dv;
        if (client.read(ref.node_id, AttributeId::UserExecutable, dv) == StatusCode::Good &&
            dv.value.is<bool>()) {
          obs.executable = dv.value.as<bool>();
        }
      }
      record.nodes.push_back(std::move(obs));
      queue.push_back(ref.node_id);
    }
  }
}

}  // namespace opcua_study
