#include "scanner/grabber.hpp"

#include "scanner/host_task.hpp"

namespace opcua_study {

Grabber::Grabber(GrabberConfig config, Network& network, std::uint64_t seed)
    : config_(std::move(config)), network_(network), seed_(seed) {}

HostScanRecord Grabber::grab(Ipv4 ip, std::uint16_t port) {
  ++grab_counter_;
  HostGrabTask task(config_, network_, seed_, grab_counter_, ip, port);
  for (;;) {
    const HostGrabTask::Step step = task.step();
    network_.clock().advance_us(step.wait_us);
    if (step.done) break;
  }
  return task.take_record();
}

}  // namespace opcua_study
