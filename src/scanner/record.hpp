// Scan dataset records — the rows of the study's released dataset.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "opcua/messages.hpp"
#include "opcua/secpolicy.hpp"
#include "opcua/transport.hpp"
#include "util/ipv4.hpp"

namespace opcua_study {

/// Protocol family a record was measured with. OPC UA is backend 0 so a
/// default-constructed record — and every record written before the
/// protocol column existed — reads back as OPC UA.
enum class ProtocolId : std::uint8_t {
  opcua = 0,
  mqtt_tls = 1,
};

inline constexpr std::uint8_t kProtocolCount = 2;
inline constexpr std::uint16_t kMqttTlsDefaultPort = 8883;

/// Stable registry name ("opcua", "mqtt-tls"); "protocol-<n>" for ids the
/// build does not know (forward-compat error messages).
std::string protocol_name(ProtocolId id);

/// One advertised endpoint, as seen in a GetEndpoints response.
struct EndpointObservation {
  std::string url;
  MessageSecurityMode mode = MessageSecurityMode::None;
  std::string policy_uri;
  /// Parsed from policy_uri; None if the URI was unknown.
  SecurityPolicy policy = SecurityPolicy::None;
  bool policy_known = false;
  std::vector<UserTokenType> token_types;
  Bytes certificate_der;  // empty if the endpoint carried none

  friend bool operator==(const EndpointObservation&, const EndpointObservation&) = default;
};

enum class ChannelOutcome {
  not_attempted,   // server only advertises None (no certificate exchanged)
  established,     // secure channel up (possibly policy None)
  cert_rejected,   // server refused the scanner's self-signed certificate
  failed,          // other transport/crypto failure
};

/// How completely a host was scanned once fault injection (netsim/faults.hpp)
/// is in play. Graded worst-wins: a record keeps the most severe grade any
/// phase earned. Fault-free scans always stay `complete` (and the snapshot
/// encoding omits the field entirely), so pre-fault outputs are unchanged.
enum class ProbeOutcome : std::uint8_t {
  complete = 0,     // every phase finished (possibly after retries)
  truncated = 1,    // assessment cut short by faults: partial traversal/reads
  degraded = 2,     // a whole phase (e.g. secure probe) lost to faults
  unreachable = 3,  // host answered the sweep but the grab never got through
};

enum class SessionOutcome {
  not_attempted,    // no anonymous token advertised, or no channel
  accessible,       // anonymous session activated; address space traversed
  auth_rejected,    // CreateSession/ActivateSession refused
  channel_rejected, // no session possible: secure channel was refused
};

/// One node seen during anonymous address-space traversal with the access
/// rights the *anonymous* user holds (Fig. 7 raw data).
struct NodeObservation {
  std::string browse_name;
  NodeClass node_class = NodeClass::Unspecified;
  bool readable = false;
  bool writable = false;
  bool executable = false;

  friend bool operator==(const NodeObservation&, const NodeObservation&) = default;
};

struct HostScanRecord {
  Ipv4 ip = 0;
  std::uint16_t port = kOpcUaDefaultPort;
  /// Backend that produced this record. opcua (0) for every record written
  /// before the protocol column existed.
  ProtocolId protocol = ProtocolId::opcua;
  std::uint32_t asn = 0;
  bool tcp_open = false;
  /// The host completed the probed protocol's application-layer handshake
  /// (named for the original OPC UA-only scanner; an MQTT record sets it
  /// when the broker finished the TLS + CONNECT exchange).
  bool speaks_opcua = false;
  bool found_via_reference = false;  // reached through a discovery server

  // Application identity (from endpoint descriptions).
  std::string application_uri;
  std::string product_uri;
  std::string application_name;
  ApplicationType application_type = ApplicationType::Server;
  std::string software_version;

  std::vector<EndpointObservation> endpoints;
  /// Endpoints announced for *other* hosts (discovery references).
  std::vector<std::pair<Ipv4, std::uint16_t>> referenced_targets;

  ChannelOutcome channel = ChannelOutcome::not_attempted;
  SecurityPolicy channel_policy = SecurityPolicy::None;
  MessageSecurityMode channel_mode = MessageSecurityMode::None;
  bool server_signature_valid = false;

  bool anonymous_offered = false;
  SessionOutcome session = SessionOutcome::not_attempted;
  std::vector<std::string> namespaces;
  std::vector<NodeObservation> nodes;
  bool traversal_truncated = false;

  // Scan-quality fields (all zero on a fault-free network; see ProbeOutcome).
  ProbeOutcome completeness = ProbeOutcome::complete;
  std::uint16_t retries = 0;       // retry attempts spent on this host
  std::uint16_t fault_events = 0;  // injected faults observed (saturating)

  std::uint64_t bytes_sent = 0;
  double duration_seconds = 0;

  /// True if this host is a discovery server (announces only foreign
  /// endpoints / reference implementation LDS).
  bool is_discovery_server() const {
    return application_type == ApplicationType::DiscoveryServer;
  }

  /// Security modes/policies advertised on the host's own endpoints.
  std::vector<MessageSecurityMode> advertised_modes() const;
  std::vector<SecurityPolicy> advertised_policies() const;
  std::vector<UserTokenType> advertised_token_types() const;
  /// Distinct certificates across endpoints.
  std::vector<Bytes> distinct_certificates() const;
  /// 64-bit fingerprints (certificate_fingerprint64) of the distinct
  /// certificates, in the same first-seen endpoint order, without copying
  /// any DER. The cheap form for posture matching and census passes.
  std::vector<std::uint64_t> distinct_cert_fingerprints() const;
  /// Visit each distinct certificate's DER exactly once (first-seen
  /// endpoint order) without copying — fn(span) per distinct blob.
  template <typename Fn>
  void for_each_distinct_certificate(Fn&& fn) const {
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      const Bytes& der = endpoints[i].certificate_der;
      if (der.empty()) continue;
      bool seen = false;
      for (std::size_t j = 0; j < i && !seen; ++j) {
        seen = endpoints[j].certificate_der == der;
      }
      if (!seen) fn(std::span<const std::uint8_t>(der));
    }
  }

  /// Full-record equality — the engine-equivalence tests assert that a
  /// concurrent campaign reproduces the sequential one field by field.
  friend bool operator==(const HostScanRecord&, const HostScanRecord&) = default;
};

/// One weekly measurement.
struct ScanSnapshot {
  int measurement_index = 0;
  std::int64_t date_days = 0;
  std::vector<HostScanRecord> hosts;  // only hosts that speak OPC UA

  std::uint64_t probes_sent = 0;       // sweep probes
  std::uint64_t tcp_open_count = 0;    // hosts with port 4840 open
  std::size_t server_count() const;
  std::size_t discovery_count() const;

  friend bool operator==(const ScanSnapshot&, const ScanSnapshot&) = default;
};

}  // namespace opcua_study
