// Resumable per-host MQTT-over-TLS grab — backend 1 of the protocol
// registry (scanner/protocol.hpp).
//
// Pipeline per broker: TLS-posture hello (certificate, TLS profile, auth
// methods) → anonymous MQTT CONNECT when anonymous auth is advertised →
// $SYS read of the version banner and announced topic prefixes. Pacing,
// deferred-time accounting, budget decisions and fault resilience follow
// the OPC UA HostGrabTask model: every wait is task-local, retry jitter is
// drawn from the endpoint-keyed "retry-<ip>:<port>" stream, and nothing
// draws RNG on a fault-free network — so records are identical for any
// in-flight window, thread count or shard layout.
//
// Posture mapping onto the shared record schema: the TLS profile becomes
// the endpoint's security policy (modern suites -> Basic256Sha256,
// legacy/deprecated suites -> Basic128Rsa15, which the deficiency taxonomy
// already classes as deprecated), broker auth methods become user-token
// types, the broker certificate rides the usual certificate slot, and the
// $SYS topic prefixes land in `namespaces`. Cross-protocol analyses then
// fall out of the existing assess/diff/series machinery with ProtocolId
// as the new dimension.
#pragma once

#include <memory>

#include "netsim/network.hpp"
#include "scanner/grabber.hpp"
#include "scanner/protocol.hpp"
#include "scanner/record.hpp"
#include "util/rng.hpp"

namespace opcua_study {

class MqttGrabTask : public ProbeTask {
 public:
  MqttGrabTask(const GrabberConfig& config, Network& network, std::uint64_t seed,
               std::uint64_t task_id, Ipv4 ip, std::uint16_t port);
  ~MqttGrabTask() override;

  MqttGrabTask(const MqttGrabTask&) = delete;
  MqttGrabTask& operator=(const MqttGrabTask&) = delete;

  Step step() override;
  bool done() const override { return phase_ == Phase::Done; }
  HostScanRecord take_record() override { return std::move(record_); }
  const HostScanRecord& record() const { return record_; }

 private:
  enum class Phase {
    Hello,    // connect + TLS-posture hello
    Connect,  // paced anonymous MQTT CONNECT
    SysRead,  // paced $SYS version/topic read
    Done,
  };

  Step step_hello();
  Step step_connect();
  Step step_sys_read();

  Step yield(std::uint64_t pace_us, Phase next);
  Step finish(bool with_duration);
  Step on_net_fault();
  Step give_up();
  bool can_retry() const;
  std::uint64_t backoff_us();
  std::uint64_t connect_timeout_us() const;
  void charge(NetConnection& conn) { consumed_us_ += conn.take_elapsed(); }
  void note_faults(std::uint32_t n);
  void bank_connection();
  void degrade(ProbeOutcome grade);

  const GrabberConfig& config_;
  Network& network_;
  std::uint64_t seed_;
  std::uint64_t task_id_;
  Ipv4 ip_;
  std::uint16_t port_;

  Phase phase_ = Phase::Hello;
  HostScanRecord record_;
  std::uint64_t elapsed_us_ = 0;
  std::uint64_t consumed_us_ = 0;

  Rng retry_rng_;
  int attempt_ = 0;
  std::uint32_t conn_faults_seen_ = 0;

  std::unique_ptr<NetConnection> conn_;
};

}  // namespace opcua_study
