// A weekly measurement: sweep → interleaved grab wave → follow references.
#pragma once

#include "scanner/grabber.hpp"
#include "scanner/lfsr.hpp"
#include "scanner/record.hpp"
#include "scanner/scheduler.hpp"

namespace opcua_study {

struct CampaignConfig {
  /// Universe for the LFSR sweep (tests use /16 slices; the full study
  /// uses the oracle sweep, see DESIGN.md).
  Cidr universe = {0, 0};
  /// true: enumerate bound sockets from the simulator instead of walking
  /// the whole universe — outcome-equivalent to the LFSR sweep and O(hosts).
  bool oracle_sweep = true;
  std::uint16_t port = kOpcUaDefaultPort;
  /// Protocol mix of the campaign. Empty = the legacy single-profile sweep
  /// of `port` with the OPC UA backend (byte-identical to the pre-registry
  /// engine). Non-empty: one sweep pass per target, in list order, each on
  /// its own port; grabs from every pass share one scheduler and
  /// interleave on the event heap. Ports must be pairwise distinct.
  std::vector<ProtocolTarget> protocols;
  /// Opt-out prefixes (the paper excludes 5.79 M addresses, §A.2).
  std::vector<Cidr> exclusions;
  /// Follow endpoint references to other host/port combinations — the paper
  /// enabled this with the 2020-05-04 measurement.
  bool follow_references = true;
  GrabberConfig grabber;
  /// Hosts concurrently in flight in the grab engine. 1 degenerates to the
  /// old lock-step scanner; records are identical either way (DESIGN.md).
  std::size_t max_in_flight = 256;
  std::uint64_t seed = 1;
};

class Campaign {
 public:
  Campaign(CampaignConfig config, Network& network);

  /// Run one measurement; `measurement_index` selects the week (0..7) and
  /// controls reference-following per the paper's calendar.
  ScanSnapshot run(int measurement_index);

  bool excluded(Ipv4 ip) const;

  /// The effective protocol mix: config.protocols, or the legacy
  /// single-OPC-UA profile of config.port when the list is empty.
  std::vector<ProtocolTarget> targets() const;

 private:
  struct OpenHost {
    Ipv4 ip = 0;
    std::uint16_t port = 0;
    ProtocolId protocol = ProtocolId::opcua;
  };
  std::vector<OpenHost> sweep(ScanSnapshot& snapshot, int measurement_index);

  CampaignConfig config_;
  Network& network_;
};

}  // namespace opcua_study
