// Application-layer grab of one host — the zgrab2 OPC UA module analogue.
//
// Pipeline per host (paper §4):
//  1. connect + HEL; anything that does not speak UA-TCP is dropped
//     (only 0.5 ‰ of open port-4840 hosts run OPC UA),
//  2. OPN(None) + GetEndpoints → endpoint descriptions + certificates,
//  3. if Sign/SignAndEncrypt is advertised, re-connect and open a secure
//     channel presenting the scanner's self-signed certificate,
//  4. if anonymous access is advertised, create + activate a session,
//  5. traverse the address space (Browse + Read of access levels), pacing
//     500 ms between requests, capped at 60 min / 50 MB per host (§A.2).
//
// The pipeline itself lives in the resumable HostGrabTask state machine
// (scanner/host_task.hpp); Grabber is the lock-step compatibility shim that
// drives one task to completion while advancing the global clock, exactly
// like the pre-engine synchronous scanner did.
#pragma once

#include "netsim/network.hpp"
#include "opcua/client.hpp"
#include "scanner/record.hpp"

namespace opcua_study {

struct EthicsBudget {
  std::uint64_t inter_request_ms = 500;   // pause between requests to one host
  std::uint64_t max_host_seconds = 3600;  // 60 min limit
  std::uint64_t max_host_bytes = 50 * 1000 * 1000;  // 50 MB outgoing limit
};

/// Resilience knobs for fault-injected networks. Backoff for retry k
/// (1-based) is base * multiplier^(k-1) plus a deterministic jitter drawn
/// from the task's own RNG stream — identical across thread counts. On a
/// fault-free network none of this machinery ever engages.
struct RetryPolicy {
  int max_attempts = 4;                   // attempts per unit of work
  std::uint16_t max_host_retries = 16;    // total retry budget per host
  std::uint64_t request_timeout_ms = 10'000;  // per-request budget (task time)
  std::uint64_t backoff_base_ms = 250;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_jitter_ms = 100;  // uniform [0, jitter] added per retry
};

struct GrabberConfig {
  ClientConfig client;
  EthicsBudget budget;
  RetryPolicy retry;
  bool traverse_address_space = true;
  std::uint32_t browse_chunk = 64;  // max references per Browse answer
};

class Grabber {
 public:
  Grabber(GrabberConfig config, Network& network, std::uint64_t seed);

  /// Scan a single (ip, port); returns a fully populated record.
  HostScanRecord grab(Ipv4 ip, std::uint16_t port);

 private:
  GrabberConfig config_;
  Network& network_;
  std::uint64_t seed_;
  std::uint64_t grab_counter_ = 0;
};

}  // namespace opcua_study
