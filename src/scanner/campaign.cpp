#include "scanner/campaign.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/date.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {

/// Telemetry for a record the campaign keeps (i.e. one that lands in the
/// snapshot). Counting here — after the speaks-protocol filter — makes the
/// grab_outcome totals reconcile *exactly* with the snapshot's per-host
/// ProbeOutcome grades, dummy-banner noise excluded.
void note_kept_record(const HostScanRecord& record) {
  const unsigned protocol = static_cast<unsigned>(record.protocol);
  obs::add(obs::Metric::grab_outcome, 1,
           protocol * 4 + static_cast<unsigned>(record.completeness));
  obs::add(obs::Metric::grab_retries, record.retries, protocol);
  obs::add(obs::Metric::grab_fault_events, record.fault_events, protocol);
  obs::add(obs::Metric::grab_bytes_sent, record.bytes_sent, protocol);
}

}  // namespace

Campaign::Campaign(CampaignConfig config, Network& network)
    : config_(std::move(config)), network_(network) {}

bool Campaign::excluded(Ipv4 ip) const {
  return std::any_of(config_.exclusions.begin(), config_.exclusions.end(),
                     [ip](const Cidr& c) { return c.contains(ip); });
}

std::vector<ProtocolTarget> Campaign::targets() const {
  if (!config_.protocols.empty()) return config_.protocols;
  return {ProtocolTarget{ProtocolId::opcua, config_.port}};
}

std::vector<Campaign::OpenHost> Campaign::sweep(ScanSnapshot& snapshot, int measurement_index) {
  std::vector<OpenHost> open_hosts;
  const std::vector<ProtocolTarget> profiles = targets();
  if (config_.oracle_sweep) {
    const auto endpoints = network_.bound_endpoints();
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const ProtocolTarget& profile = profiles[pi];
      // Randomized order, like zmap's permutation. Profile 0 keeps the
      // historic seed ^ week stream, so a single-protocol campaign sweeps
      // in exactly the pre-registry order; later profiles get their own
      // streams via the high word.
      Rng order(config_.seed ^ static_cast<std::uint64_t>(measurement_index) ^
                (static_cast<std::uint64_t>(pi) << 32));
      std::vector<Ipv4> candidates;
      for (const auto& [ip, port] : endpoints) {
        if (port == profile.port) candidates.push_back(ip);
      }
      std::sort(candidates.begin(), candidates.end());
      order.shuffle(candidates);
      for (Ipv4 ip : candidates) {
        if (excluded(ip)) continue;
        ++snapshot.probes_sent;
        if (network_.syn_probe(ip, profile.port)) {
          open_hosts.push_back(OpenHost{ip, profile.port, profile.protocol});
        }
      }
    }
  } else {
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const ProtocolTarget& profile = profiles[pi];
      AddressSweep sweep(config_.universe, config_.seed +
                                               static_cast<std::uint64_t>(measurement_index) +
                                               (static_cast<std::uint64_t>(pi) << 32));
      while (auto ip = sweep.next()) {
        if (excluded(*ip)) continue;
        ++snapshot.probes_sent;
        if (network_.syn_probe(*ip, profile.port)) {
          open_hosts.push_back(OpenHost{*ip, profile.port, profile.protocol});
        }
      }
    }
  }
  return open_hosts;
}

ScanSnapshot Campaign::run(int measurement_index) {
  ScanSnapshot snapshot;
  snapshot.measurement_index = measurement_index;
  snapshot.date_days = measurement_days(measurement_index);
  network_.clock().reset(snapshot.date_days);
  const obs::TraceScope trace_scope(measurement_index, obs::TraceRecord::kNoScope);
  obs::trace(obs::TraceEvent::campaign_begin, network_.clock().now_us(), 0, 0,
             static_cast<std::uint64_t>(measurement_index));

  // Phase 1: port sweep (one pass per protocol target, in mix order).
  const std::vector<OpenHost> open_hosts = sweep(snapshot, measurement_index);
  snapshot.tcp_open_count = open_hosts.size();
  obs::trace(obs::TraceEvent::sweep_complete, network_.clock().now_us(), 0, 0,
             snapshot.probes_sent, open_hosts.size());

  // Phase 2: interleaved application-layer grab of every open host. The
  // scheduler keeps max_in_flight hosts active; ids continue across waves
  // exactly like the old per-campaign grab counter. Mixed-protocol grabs
  // share the scheduler (and the event heap), so heterogeneous hosts
  // interleave — deterministically, because launch order is sweep order.
  ScanScheduler scheduler(config_.grabber, network_,
                          config_.seed * 1000003 + static_cast<std::uint64_t>(measurement_index),
                          config_.max_in_flight);
  for (const OpenHost& host : open_hosts) scheduler.enqueue(host.ip, host.port, host.protocol);
  std::vector<HostScanRecord> records = scheduler.drain();

  std::set<std::pair<Ipv4, std::uint16_t>> scanned;
  std::vector<std::pair<Ipv4, std::uint16_t>> referenced;
  for (const OpenHost& host : open_hosts) scanned.insert({host.ip, host.port});
  for (auto& record : records) {
    for (const auto& target : record.referenced_targets) referenced.push_back(target);
    if (record.speaks_opcua) {
      note_kept_record(record);
      snapshot.hosts.push_back(std::move(record));
    }
  }

  // Phase 3: feed references to other host/port combinations back into the
  // scheduler (the paper enabled this as of 2020-05-04 = measurement 3).
  const bool follow = config_.follow_references && measurement_index >= 3;
  if (follow) {
    std::sort(referenced.begin(), referenced.end());
    referenced.erase(std::unique(referenced.begin(), referenced.end()), referenced.end());
    std::vector<std::pair<Ipv4, std::uint16_t>> wave;
    for (const auto& target : referenced) {
      if (excluded(target.first) || scanned.contains(target)) continue;
      scanned.insert(target);
      wave.push_back(target);
    }
    obs::trace(obs::TraceEvent::wave_enqueued, network_.clock().now_us(), 0, 0, wave.size());
    for (const auto& [ip, port] : wave) scheduler.enqueue(ip, port);
    for (auto& record : scheduler.drain()) {
      record.found_via_reference = true;
      if (record.tcp_open) ++snapshot.tcp_open_count;
      if (record.speaks_opcua) {
        note_kept_record(record);
        snapshot.hosts.push_back(std::move(record));
      }
    }
  }
  obs::trace(obs::TraceEvent::campaign_end, network_.clock().now_us(), 0, 0,
             snapshot.hosts.size());
  return snapshot;
}

}  // namespace opcua_study
