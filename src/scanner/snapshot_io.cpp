#include "scanner/snapshot_io.hpp"

#include <algorithm>
#include <limits>

#include "opcua/encoding.hpp"

namespace opcua_study {

namespace {

constexpr std::uint32_t kMagic = 0x4f554153;       // "OUAS"
constexpr std::uint32_t kVersion = 5;
constexpr std::uint32_t kLegacyVersion = 4;
constexpr std::uint32_t kChunkMagic = 0x4b4e4843;  // "CHNK"
constexpr std::uint32_t kFooterMagic = 0x544f4f46; // "FOOT"
constexpr std::uint32_t kCampaignMagic = 0x504d4143;  // "CAMP"
constexpr std::uint32_t kEndMagic = 0x50414e53;    // "SNAP"
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kChunkHeaderBytes = 4 + 4 + 4 + 8;
constexpr std::size_t kTrailerBytes = 8 + 4;
// Sanity ceilings: a corrupt length field must fail fast, not drive a
// multi-gigabyte reserve() or an hours-long decode loop.
constexpr std::uint32_t kMaxSnapshots = 100000;
constexpr std::uint64_t kMaxChunks = 1u << 26;

void write_host(UaWriter& w, const HostScanRecord& host) {
  w.u32(host.ip);
  w.u16(host.port);
  w.u32(host.asn);
  w.boolean(host.tcp_open);
  w.boolean(host.speaks_opcua);
  w.boolean(host.found_via_reference);
  w.string(host.application_uri);
  w.string(host.product_uri);
  w.string(host.application_name);
  w.u32(static_cast<std::uint32_t>(host.application_type));
  w.string(host.software_version);
  w.u32(static_cast<std::uint32_t>(host.endpoints.size()));
  for (const auto& ep : host.endpoints) {
    w.string(ep.url);
    w.u32(static_cast<std::uint32_t>(ep.mode));
    w.string(ep.policy_uri);
    w.u32(static_cast<std::uint32_t>(ep.token_types.size()));
    for (const auto t : ep.token_types) w.u32(static_cast<std::uint32_t>(t));
    w.byte_string(ep.certificate_der);
  }
  w.u32(static_cast<std::uint32_t>(host.referenced_targets.size()));
  for (const auto& [ip, port] : host.referenced_targets) {
    w.u32(ip);
    w.u16(port);
  }
  w.u32(static_cast<std::uint32_t>(host.channel));
  w.u32(static_cast<std::uint32_t>(host.channel_policy));
  w.u32(static_cast<std::uint32_t>(host.channel_mode));
  w.boolean(host.server_signature_valid);
  w.boolean(host.anonymous_offered);
  w.u32(static_cast<std::uint32_t>(host.session));
  w.string_array(host.namespaces);
  w.u32(static_cast<std::uint32_t>(host.nodes.size()));
  for (const auto& node : host.nodes) {
    w.string(node.browse_name);
    w.u32(static_cast<std::uint32_t>(node.node_class));
    w.boolean(node.readable);
    w.boolean(node.writable);
    w.boolean(node.executable);
  }
  w.boolean(host.traversal_truncated);
  w.u64(host.bytes_sent);
  w.f64(host.duration_seconds);
}

// Enum fields come off disk as raw u32s; a flipped bit must surface as a
// DecodeError, not as an out-of-range enum that downstream switch
// statements silently misclassify.
std::uint32_t checked_enum(UaReader& r, std::uint32_t max, const char* field) {
  const std::uint32_t v = r.u32();
  if (v > max) {
    throw DecodeError(std::string("snapshot record: invalid ") + field + " value " +
                      std::to_string(v));
  }
  return v;
}

NodeClass checked_node_class(UaReader& r) {
  const std::uint32_t v = r.u32();
  switch (v) {
    case 0: return NodeClass::Unspecified;
    case 1: return NodeClass::Object;
    case 2: return NodeClass::Variable;
    case 4: return NodeClass::Method;
    default:
      throw DecodeError("snapshot record: invalid node class value " + std::to_string(v));
  }
}

HostScanRecord read_host(UaReader& r) {
  HostScanRecord host;
  host.ip = r.u32();
  host.port = r.u16();
  host.asn = r.u32();
  host.tcp_open = r.boolean();
  host.speaks_opcua = r.boolean();
  host.found_via_reference = r.boolean();
  host.application_uri = r.string();
  host.product_uri = r.string();
  host.application_name = r.string();
  host.application_type = static_cast<ApplicationType>(checked_enum(r, 3, "application type"));
  host.software_version = r.string();
  const std::uint32_t n_eps = r.u32();
  for (std::uint32_t i = 0; i < n_eps; ++i) {
    EndpointObservation ep;
    ep.url = r.string();
    ep.mode = static_cast<MessageSecurityMode>(checked_enum(r, 3, "security mode"));
    ep.policy_uri = r.string();
    if (const auto policy = policy_from_uri(ep.policy_uri)) {
      ep.policy = *policy;
      ep.policy_known = true;
    }
    const std::uint32_t n_tokens = r.u32();
    for (std::uint32_t t = 0; t < n_tokens; ++t) {
      ep.token_types.push_back(
          static_cast<UserTokenType>(checked_enum(r, 3, "user token type")));
    }
    ep.certificate_der = r.byte_string();
    host.endpoints.push_back(std::move(ep));
  }
  const std::uint32_t n_refs = r.u32();
  for (std::uint32_t i = 0; i < n_refs; ++i) {
    const Ipv4 ip = r.u32();
    const std::uint16_t port = r.u16();
    host.referenced_targets.emplace_back(ip, port);
  }
  host.channel = static_cast<ChannelOutcome>(checked_enum(r, 3, "channel outcome"));
  host.channel_policy = static_cast<SecurityPolicy>(checked_enum(r, 5, "channel policy"));
  host.channel_mode = static_cast<MessageSecurityMode>(checked_enum(r, 3, "channel mode"));
  host.server_signature_valid = r.boolean();
  host.anonymous_offered = r.boolean();
  host.session = static_cast<SessionOutcome>(checked_enum(r, 3, "session outcome"));
  host.namespaces = r.string_array();
  const std::uint32_t n_nodes = r.u32();
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    NodeObservation node;
    node.browse_name = r.string();
    node.node_class = checked_node_class(r);
    node.readable = r.boolean();
    node.writable = r.boolean();
    node.executable = r.boolean();
    host.nodes.push_back(std::move(node));
  }
  host.traversal_truncated = r.boolean();
  host.bytes_sent = r.u64();
  host.duration_seconds = r.f64();
  return host;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot file not found: " + path);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

}  // namespace

// ------------------------------------------------------------- writer ----

SnapshotWriter::SnapshotWriter(const std::string& path, std::uint64_t seed,
                               std::uint32_t chunk_records)
    : path_(path), seed_(seed), chunk_records_(std::max<std::uint32_t>(1, chunk_records)) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw SnapshotError("cannot open snapshot file for writing: " + path);
  UaWriter header;
  header.u32(kMagic);
  header.u32(kVersion);
  header.u64(seed);
  const Bytes& bytes = header.bytes();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  file_pos_ = bytes.size();
}

SnapshotWriter::~SnapshotWriter() {
  // No auto-seal: a writer destroyed without finish() — e.g. during stack
  // unwinding after a failed campaign — must leave the file *unsealed*
  // (no trailer), so readers reject the partial dataset instead of
  // silently analyzing a truncated study.
}

void SnapshotWriter::set_campaign(const std::string& label, std::int64_t epoch_days) {
  if (finished_) throw SnapshotError("snapshot writer already finished: " + path_);
  campaign_label_ = label;
  campaign_epoch_days_ = epoch_days;
  campaign_set_ = true;
}

void SnapshotWriter::begin_snapshot(int measurement_index, std::int64_t date_days) {
  if (finished_) throw SnapshotError("snapshot writer already finished: " + path_);
  if (in_snapshot_) throw SnapshotError("begin_snapshot while a snapshot is open: " + path_);
  SnapshotMeta meta;
  meta.measurement_index = measurement_index;
  meta.date_days = date_days;
  meta.campaign_label = campaign_label_;
  meta.campaign_epoch_days = campaign_epoch_days_;
  snapshots_.push_back(meta);
  in_snapshot_ = true;
}

void SnapshotWriter::add_host(const HostScanRecord& host) {
  if (!in_snapshot_) throw SnapshotError("add_host outside begin/end_snapshot: " + path_);
  UaWriter w;
  write_host(w, host);
  const Bytes& encoded = w.bytes();
  chunk_buf_.insert(chunk_buf_.end(), encoded.begin(), encoded.end());
  ++buffered_records_;
  ++snapshots_.back().host_count;
  if (buffered_records_ >= chunk_records_) flush_chunk();
}

void SnapshotWriter::end_snapshot(std::uint64_t probes_sent, std::uint64_t tcp_open_count) {
  if (!in_snapshot_) throw SnapshotError("end_snapshot without begin_snapshot: " + path_);
  snapshots_.back().probes_sent = probes_sent;
  snapshots_.back().tcp_open_count = tcp_open_count;
  flush_chunk();  // chunks never straddle measurements
  in_snapshot_ = false;
}

void SnapshotWriter::add_snapshot(const ScanSnapshot& snapshot) {
  begin_snapshot(snapshot.measurement_index, snapshot.date_days);
  for (const auto& host : snapshot.hosts) add_host(host);
  end_snapshot(snapshot.probes_sent, snapshot.tcp_open_count);
}

void SnapshotWriter::flush_chunk() {
  if (buffered_records_ == 0) return;
  SnapshotChunkInfo info;
  info.snapshot_ordinal = static_cast<std::uint32_t>(snapshots_.size() - 1);
  info.record_count = buffered_records_;
  info.file_offset = file_pos_;
  info.payload_bytes = chunk_buf_.size();

  UaWriter header;
  header.u32(kChunkMagic);
  header.u32(info.snapshot_ordinal);
  header.u32(info.record_count);
  header.u64(info.payload_bytes);
  const Bytes& hb = header.bytes();
  out_.write(reinterpret_cast<const char*>(hb.data()), static_cast<std::streamsize>(hb.size()));
  out_.write(reinterpret_cast<const char*>(chunk_buf_.data()),
             static_cast<std::streamsize>(chunk_buf_.size()));
  file_pos_ += hb.size() + chunk_buf_.size();
  chunks_.push_back(info);
  chunk_buf_.clear();
  buffered_records_ = 0;
}

void SnapshotWriter::finish() {
  if (finished_) return;
  if (in_snapshot_) throw SnapshotError("finish with an open snapshot: " + path_);
  const std::uint64_t footer_offset = file_pos_;
  UaWriter w;
  w.u32(kFooterMagic);
  w.u32(static_cast<std::uint32_t>(snapshots_.size()));
  for (const auto& meta : snapshots_) {
    w.i32(meta.measurement_index);
    w.i64(meta.date_days);
    w.u64(meta.probes_sent);
    w.u64(meta.tcp_open_count);
    w.u64(meta.host_count);
  }
  w.u32(static_cast<std::uint32_t>(chunks_.size()));
  for (const auto& chunk : chunks_) {
    w.u32(chunk.snapshot_ordinal);
    w.u32(chunk.record_count);
    w.u64(chunk.file_offset);
    w.u64(chunk.payload_bytes);
  }
  if (campaign_set_) {
    w.u32(kCampaignMagic);
    for (const auto& meta : snapshots_) {
      w.string(meta.campaign_label);
      w.i64(meta.campaign_epoch_days);
    }
  }
  w.u64(footer_offset);
  w.u32(kEndMagic);
  const Bytes& bytes = w.bytes();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  out_.close();
  if (!out_) throw SnapshotError("write failure while sealing snapshot file: " + path_);
  finished_ = true;
}

// ------------------------------------------------------------- reader ----

SnapshotReader::SnapshotReader(const std::string& path, std::uint64_t seed) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot file not found: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < kHeaderBytes) {
    throw SnapshotError("snapshot file truncated: " + path + " holds only " +
                        std::to_string(file_size) + " bytes");
  }
  Bytes header(kHeaderBytes);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(header.data()), static_cast<std::streamsize>(header.size()));
  UaReader hr(header);
  if (hr.u32() != kMagic) throw SnapshotError("not a snapshot file (bad magic): " + path);
  version_ = hr.u32();
  if (version_ != kVersion && version_ != kLegacyVersion) {
    throw SnapshotError("unsupported snapshot version " + std::to_string(version_) + ": " + path);
  }
  const std::uint64_t file_seed = hr.u64();
  if (file_seed != seed) {
    throw SnapshotError("snapshot seed mismatch (file " + std::to_string(file_seed) +
                        ", expected " + std::to_string(seed) + "): " + path);
  }

  if (version_ == kLegacyVersion) {
    // v4: monolithic stream — decode once to synthesize the chunk index.
    // Legacy files are the small pre-chunking caches, so keeping the raw
    // bytes resident is acceptable; v5 readers never do this.
    v4_data_ = read_file(path);
    try {
      UaReader r(v4_data_);
      r.u32();  // magic
      r.u32();  // version
      r.u64();  // seed
      const std::uint32_t count = r.u32();
      if (count > kMaxSnapshots) {
        throw DecodeError("implausible snapshot count " + std::to_string(count));
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        SnapshotMeta meta;
        meta.measurement_index = r.i32();
        meta.date_days = r.i64();
        meta.probes_sent = r.u64();
        meta.tcp_open_count = r.u64();
        const std::uint32_t n_hosts = r.u32();
        meta.host_count = n_hosts;
        std::uint32_t remaining_hosts = n_hosts;
        while (remaining_hosts > 0) {
          SnapshotChunkInfo chunk;
          chunk.snapshot_ordinal = i;
          chunk.record_count =
              std::min<std::uint32_t>(remaining_hosts, SnapshotWriter::kDefaultChunkRecords);
          chunk.file_offset = r.base().position();
          for (std::uint32_t h = 0; h < chunk.record_count; ++h) read_host(r);
          chunk.payload_bytes = r.base().position() - chunk.file_offset;
          chunks_.push_back(chunk);
          remaining_hosts -= chunk.record_count;
        }
        snapshots_.push_back(meta);
      }
      if (!r.done()) {
        throw DecodeError(std::to_string(r.remaining()) + " trailing bytes after last snapshot");
      }
    } catch (const DecodeError& e) {
      throw SnapshotError("corrupt v4 snapshot file " + path + ": " + e.what());
    }
    return;
  }

  // v5: trailer -> footer -> validated chunk index.
  if (file_size < kHeaderBytes + kTrailerBytes) {
    throw SnapshotError("snapshot file truncated before trailer: " + path);
  }
  Bytes trailer(kTrailerBytes);
  in.seekg(static_cast<std::streamoff>(file_size - kTrailerBytes));
  in.read(reinterpret_cast<char*>(trailer.data()), static_cast<std::streamsize>(trailer.size()));
  UaReader tr(trailer);
  const std::uint64_t footer_offset = tr.u64();
  if (tr.u32() != kEndMagic) {
    throw SnapshotError("snapshot file truncated or unsealed (missing end marker): " + path);
  }
  if (footer_offset < kHeaderBytes || footer_offset > file_size - kTrailerBytes) {
    throw SnapshotError("snapshot footer offset out of range: " + path);
  }
  Bytes footer(static_cast<std::size_t>(file_size - kTrailerBytes - footer_offset));
  in.seekg(static_cast<std::streamoff>(footer_offset));
  in.read(reinterpret_cast<char*>(footer.data()), static_cast<std::streamsize>(footer.size()));
  if (!in) throw SnapshotError("read failure in snapshot footer: " + path);
  try {
    UaReader r(footer);
    if (r.u32() != kFooterMagic) throw DecodeError("bad footer magic");
    const std::uint32_t snapshot_count = r.u32();
    if (snapshot_count > kMaxSnapshots) {
      throw DecodeError("implausible snapshot count " + std::to_string(snapshot_count));
    }
    snapshots_.reserve(snapshot_count);
    for (std::uint32_t i = 0; i < snapshot_count; ++i) {
      SnapshotMeta meta;
      meta.measurement_index = r.i32();
      meta.date_days = r.i64();
      meta.probes_sent = r.u64();
      meta.tcp_open_count = r.u64();
      meta.host_count = r.u64();
      snapshots_.push_back(meta);
    }
    const std::uint32_t chunk_count = r.u32();
    if (chunk_count > kMaxChunks) {
      throw DecodeError("implausible chunk count " + std::to_string(chunk_count));
    }
    chunks_.reserve(chunk_count);
    std::vector<std::uint64_t> records_seen(snapshot_count, 0);
    std::uint64_t min_offset = kHeaderBytes;
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
      SnapshotChunkInfo chunk;
      chunk.snapshot_ordinal = r.u32();
      chunk.record_count = r.u32();
      chunk.file_offset = r.u64();
      chunk.payload_bytes = r.u64();
      if (chunk.snapshot_ordinal >= snapshot_count) {
        throw DecodeError("chunk " + std::to_string(i) + " references snapshot " +
                          std::to_string(chunk.snapshot_ordinal) + " of " +
                          std::to_string(snapshot_count));
      }
      if (chunk.record_count == 0) throw DecodeError("chunk " + std::to_string(i) + " is empty");
      // Chunks are written back to back in index order; each must lie
      // fully inside the data region [header, footer).
      if (chunk.file_offset < min_offset ||
          chunk.payload_bytes > footer_offset - kChunkHeaderBytes ||
          chunk.file_offset + kChunkHeaderBytes + chunk.payload_bytes > footer_offset) {
        throw DecodeError("chunk " + std::to_string(i) + " extent out of range");
      }
      min_offset = chunk.file_offset + kChunkHeaderBytes + chunk.payload_bytes;
      records_seen[chunk.snapshot_ordinal] += chunk.record_count;
      if (!chunks_.empty() && chunk.snapshot_ordinal < chunks_.back().snapshot_ordinal) {
        throw DecodeError("chunk index not ordered by snapshot");
      }
      chunks_.push_back(chunk);
    }
    if (!r.done()) {
      // Optional campaign block: files written before labels existed (or
      // without set_campaign) simply end after the chunk table.
      if (r.u32() != kCampaignMagic) throw DecodeError("bad campaign block magic");
      for (std::uint32_t i = 0; i < snapshot_count; ++i) {
        snapshots_[i].campaign_label = r.string();
        snapshots_[i].campaign_epoch_days = r.i64();
      }
    }
    if (!r.done()) throw DecodeError("trailing bytes in footer");
    for (std::uint32_t i = 0; i < snapshot_count; ++i) {
      if (records_seen[i] != snapshots_[i].host_count) {
        throw DecodeError("snapshot " + std::to_string(i) + " indexes " +
                          std::to_string(records_seen[i]) + " records but declares " +
                          std::to_string(snapshots_[i].host_count));
      }
    }
  } catch (const DecodeError& e) {
    throw SnapshotError("corrupt snapshot footer in " + path + ": " + e.what());
  }
}

std::uint64_t SnapshotReader::total_records() const {
  std::uint64_t total = 0;
  for (const auto& meta : snapshots_) total += meta.host_count;
  return total;
}

std::vector<HostScanRecord> SnapshotReader::read_chunk(std::size_t chunk_index) const {
  if (chunk_index >= chunks_.size()) {
    throw SnapshotError("chunk index " + std::to_string(chunk_index) + " out of range in " +
                        path_);
  }
  const SnapshotChunkInfo& info = chunks_[chunk_index];
  std::vector<HostScanRecord> records;
  records.reserve(info.record_count);
  try {
    if (version_ == kLegacyVersion) {
      UaReader r(std::span<const std::uint8_t>(v4_data_.data() + info.file_offset,
                                               info.payload_bytes));
      for (std::uint32_t i = 0; i < info.record_count; ++i) records.push_back(read_host(r));
      return records;
    }
    // Each call opens its own stream so thread-pool workers can decode
    // disjoint chunks concurrently without sharing a file cursor.
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw SnapshotError("snapshot file vanished: " + path_);
    in.seekg(static_cast<std::streamoff>(info.file_offset));
    Bytes data(kChunkHeaderBytes + info.payload_bytes);
    in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(data.size()));
    if (!in) throw SnapshotError("read failure in chunk of " + path_);
    UaReader r(data);
    if (r.u32() != kChunkMagic || r.u32() != info.snapshot_ordinal ||
        r.u32() != info.record_count || r.u64() != info.payload_bytes) {
      throw DecodeError("chunk header disagrees with footer index");
    }
    for (std::uint32_t i = 0; i < info.record_count; ++i) records.push_back(read_host(r));
    if (!r.done()) throw DecodeError("chunk payload longer than its records");
  } catch (const DecodeError& e) {
    throw SnapshotError("corrupt chunk " + std::to_string(chunk_index) + " in " + path_ + ": " +
                        e.what());
  }
  return records;
}

void SnapshotReader::for_each_host(
    const std::function<void(std::size_t, const HostScanRecord&)>& fn) const {
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const std::vector<HostScanRecord> records = read_chunk(c);
    for (const auto& record : records) fn(chunks_[c].snapshot_ordinal, record);
  }
}

std::vector<ScanSnapshot> SnapshotReader::load_all() const {
  std::vector<ScanSnapshot> out;
  out.reserve(snapshots_.size());
  for (const auto& meta : snapshots_) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = meta.measurement_index;
    snapshot.date_days = meta.date_days;
    snapshot.probes_sent = meta.probes_sent;
    snapshot.tcp_open_count = meta.tcp_open_count;
    snapshot.hosts.reserve(meta.host_count);
    out.push_back(std::move(snapshot));
  }
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    std::vector<HostScanRecord> records = read_chunk(c);
    auto& hosts = out[chunks_[c].snapshot_ordinal].hosts;
    for (auto& record : records) hosts.push_back(std::move(record));
  }
  return out;
}

// ---------------------------------------------------------- functions ----

void save_snapshots(const std::string& path, std::uint64_t seed,
                    const std::vector<ScanSnapshot>& snapshots) {
  SnapshotWriter writer(path, seed);
  for (const auto& snapshot : snapshots) writer.add_snapshot(snapshot);
  writer.finish();
}

std::optional<std::vector<ScanSnapshot>> load_snapshots(const std::string& path,
                                                        std::uint64_t seed,
                                                        std::string* error) {
  try {
    SnapshotReader reader(path, seed);
    return reader.load_all();
  } catch (const SnapshotError& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

void save_snapshots_v4(const std::string& path, std::uint64_t seed,
                       const std::vector<ScanSnapshot>& snapshots) {
  UaWriter w;
  w.u32(kMagic);
  w.u32(kLegacyVersion);
  w.u64(seed);
  w.u32(static_cast<std::uint32_t>(snapshots.size()));
  for (const auto& snapshot : snapshots) {
    w.i32(snapshot.measurement_index);
    w.i64(snapshot.date_days);
    w.u64(snapshot.probes_sent);
    w.u64(snapshot.tcp_open_count);
    w.u32(static_cast<std::uint32_t>(snapshot.hosts.size()));
    for (const auto& host : snapshot.hosts) write_host(w, host);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const Bytes& data = w.bytes();
  out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
}

bool campaign_declared(const SnapshotMeta& meta) {
  return !meta.campaign_label.empty() || meta.campaign_epoch_days != 0;
}

void validate_campaign_chain(const std::vector<SnapshotMeta>& members) {
  const SnapshotMeta* prev = nullptr;        // last declared member
  const SnapshotMeta* prev_epoch = nullptr;  // last declared member with a non-zero epoch
  for (const SnapshotMeta& member : members) {
    if (!campaign_declared(member)) continue;  // legacy input: nothing to anchor
    if (prev != nullptr && prev->campaign_label == member.campaign_label &&
        prev->campaign_epoch_days == member.campaign_epoch_days) {
      throw SnapshotError("campaign chain: consecutive members declare the same campaign '" +
                          member.campaign_label + "'");
    }
    // Epochs compare against the last member that *declared* one, so a
    // label-only member in between cannot hide a time-reversed series.
    if (prev_epoch != nullptr && member.campaign_epoch_days != 0 &&
        member.campaign_epoch_days <= prev_epoch->campaign_epoch_days) {
      throw SnapshotError("campaign chain: campaign '" + member.campaign_label + "' (epoch " +
                          std::to_string(member.campaign_epoch_days) +
                          ") is not after its predecessor '" + prev_epoch->campaign_label +
                          "' (epoch " + std::to_string(prev_epoch->campaign_epoch_days) + ")");
    }
    prev = &member;
    if (member.campaign_epoch_days != 0) prev_epoch = &member;
  }
}

}  // namespace opcua_study
