#include "scanner/snapshot_io.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>

#include <chrono>

#include "crypto/x509.hpp"
#include "obs/metrics.hpp"
#include "opcua/encoding.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OPCUA_STUDY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define OPCUA_STUDY_HAVE_MMAP 0
#endif

namespace opcua_study {

namespace {

constexpr std::uint32_t kMagic = 0x4f554153;       // "OUAS"
constexpr std::uint32_t kVersionV4 = 4;
constexpr std::uint32_t kVersionV5 = 5;
constexpr std::uint32_t kVersionV6 = 6;
constexpr std::uint32_t kChunkMagic = 0x4b4e4843;  // "CHNK"
constexpr std::uint32_t kFooterMagic = 0x544f4f46; // "FOOT"
constexpr std::uint32_t kDictMagic = 0x43494443;   // "CDIC"
constexpr std::uint32_t kCampaignMagic = 0x504d4143;  // "CAMP"
constexpr std::uint32_t kProtocolMagic = 0x544f5250;  // "PROT"
constexpr std::uint32_t kEndMagic = 0x50414e53;    // "SNAP"
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kChunkHeaderBytes = 4 + 4 + 4 + 8;        // v5
constexpr std::size_t kV6ChunkHeaderBytes = 4 + 4 + 4 + 4 + 8;  // v6, 8-aligned
constexpr std::size_t kTrailerBytes = 8 + 4;
// Sanity ceilings: a corrupt length field must fail fast, not drive a
// multi-gigabyte reserve() or an hours-long decode loop.
constexpr std::uint32_t kMaxSnapshots = 100000;
constexpr std::uint64_t kMaxChunks = 1u << 26;
constexpr std::uint64_t kMaxDictEntries = 1u << 26;

std::string version_tag(std::uint32_t version) { return "v" + std::to_string(version); }

/// "opcua+mqtt-tls" for a protocol mask (bit p = protocol id p).
std::string protocol_set_name(std::uint32_t mask) {
  std::string s;
  for (std::uint32_t p = 0; p < 32; ++p) {
    if (mask & (1u << p)) {
      if (!s.empty()) s += "+";
      s += protocol_name(static_cast<ProtocolId>(p));
    }
  }
  return s;
}

/// Error-message context naming what protocol family the failing data
/// claims to hold: "protocols=opcua+mqtt-tls" for v6 (a v6 file without a
/// protocol block is OPC-UA-only by construction), "pre-protocol v5/v4"
/// for the row formats, which predate the protocol column entirely.
std::string protocol_context(std::uint32_t version, std::uint32_t mask) {
  if (version != kVersionV6) return "pre-protocol " + version_tag(version);
  return "protocols=" + (mask == 0 ? std::string("opcua") : protocol_set_name(mask));
}

/// v6 chunk payloads are padded so every chunk header lands on an 8-byte
/// boundary (the header itself is 24 bytes, the file header 16): typed
/// column spans over the mapping are always aligned.
std::uint64_t v6_padding(std::uint64_t payload_bytes) { return (8 - payload_bytes % 8) % 8; }

// Portable little-endian loads for the v6 row decoder (works on any host
// endianness; the zero-copy ColumnView tier is little-endian only and
// gated by SnapshotReader::columnar()).
std::uint16_t le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
double lef64(const std::uint8_t* p) {
  const std::uint64_t bits = le64(p);
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void write_host(UaWriter& w, const HostScanRecord& host) {
  // The row formats predate fault injection and have no slot for the
  // scan-quality fields; silently dropping them would make a v5 round
  // trip lossy, so refuse instead (fault-free records always pass).
  if (host.completeness != ProbeOutcome::complete || host.retries != 0 ||
      host.fault_events != 0) {
    throw SnapshotError(
        "v5/v4 snapshot formats cannot encode scan-quality fields; "
        "write fault-injected campaigns as v6");
  }
  // Same stance for the protocol column: pre-protocol formats would decode
  // an MQTT broker as an OPC UA server, so refuse rather than lose the id.
  if (host.protocol != ProtocolId::opcua) {
    throw SnapshotError("v5/v4 snapshot formats cannot encode non-OPC-UA records (got " +
                        protocol_name(host.protocol) + "); write mixed campaigns as v6");
  }
  w.u32(host.ip);
  w.u16(host.port);
  w.u32(host.asn);
  w.boolean(host.tcp_open);
  w.boolean(host.speaks_opcua);
  w.boolean(host.found_via_reference);
  w.string(host.application_uri);
  w.string(host.product_uri);
  w.string(host.application_name);
  w.u32(static_cast<std::uint32_t>(host.application_type));
  w.string(host.software_version);
  w.u32(static_cast<std::uint32_t>(host.endpoints.size()));
  for (const auto& ep : host.endpoints) {
    w.string(ep.url);
    w.u32(static_cast<std::uint32_t>(ep.mode));
    w.string(ep.policy_uri);
    w.u32(static_cast<std::uint32_t>(ep.token_types.size()));
    for (const auto t : ep.token_types) w.u32(static_cast<std::uint32_t>(t));
    w.byte_string(ep.certificate_der);
  }
  w.u32(static_cast<std::uint32_t>(host.referenced_targets.size()));
  for (const auto& [ip, port] : host.referenced_targets) {
    w.u32(ip);
    w.u16(port);
  }
  w.u32(static_cast<std::uint32_t>(host.channel));
  w.u32(static_cast<std::uint32_t>(host.channel_policy));
  w.u32(static_cast<std::uint32_t>(host.channel_mode));
  w.boolean(host.server_signature_valid);
  w.boolean(host.anonymous_offered);
  w.u32(static_cast<std::uint32_t>(host.session));
  w.string_array(host.namespaces);
  w.u32(static_cast<std::uint32_t>(host.nodes.size()));
  for (const auto& node : host.nodes) {
    w.string(node.browse_name);
    w.u32(static_cast<std::uint32_t>(node.node_class));
    w.boolean(node.readable);
    w.boolean(node.writable);
    w.boolean(node.executable);
  }
  w.boolean(host.traversal_truncated);
  w.u64(host.bytes_sent);
  w.f64(host.duration_seconds);
}

// Enum fields come off disk as raw integers; a flipped bit must surface as
// a DecodeError, not as an out-of-range enum that downstream switch
// statements silently misclassify.
std::uint32_t checked_enum(UaReader& r, std::uint32_t max, const char* field) {
  const std::uint32_t v = r.u32();
  if (v > max) {
    throw DecodeError(std::string("snapshot record: invalid ") + field + " value " +
                      std::to_string(v));
  }
  return v;
}

std::uint32_t checked_enum8(std::uint8_t v, std::uint32_t max, const char* field) {
  if (v > max) {
    throw DecodeError(std::string("snapshot record: invalid ") + field + " value " +
                      std::to_string(v));
  }
  return v;
}

NodeClass node_class_from_value(std::uint32_t v) {
  switch (v) {
    case 0: return NodeClass::Unspecified;
    case 1: return NodeClass::Object;
    case 2: return NodeClass::Variable;
    case 4: return NodeClass::Method;
    default:
      throw DecodeError("snapshot record: invalid node class value " + std::to_string(v));
  }
}

NodeClass checked_node_class(UaReader& r) { return node_class_from_value(r.u32()); }

HostScanRecord read_host(UaReader& r) {
  HostScanRecord host;
  host.ip = r.u32();
  host.port = r.u16();
  host.asn = r.u32();
  host.tcp_open = r.boolean();
  host.speaks_opcua = r.boolean();
  host.found_via_reference = r.boolean();
  host.application_uri = r.string();
  host.product_uri = r.string();
  host.application_name = r.string();
  host.application_type = static_cast<ApplicationType>(checked_enum(r, 3, "application type"));
  host.software_version = r.string();
  const std::uint32_t n_eps = r.u32();
  for (std::uint32_t i = 0; i < n_eps; ++i) {
    EndpointObservation ep;
    ep.url = r.string();
    ep.mode = static_cast<MessageSecurityMode>(checked_enum(r, 3, "security mode"));
    ep.policy_uri = r.string();
    if (const auto policy = policy_from_uri(ep.policy_uri)) {
      ep.policy = *policy;
      ep.policy_known = true;
    }
    const std::uint32_t n_tokens = r.u32();
    for (std::uint32_t t = 0; t < n_tokens; ++t) {
      ep.token_types.push_back(
          static_cast<UserTokenType>(checked_enum(r, 3, "user token type")));
    }
    ep.certificate_der = r.byte_string();
    host.endpoints.push_back(std::move(ep));
  }
  const std::uint32_t n_refs = r.u32();
  for (std::uint32_t i = 0; i < n_refs; ++i) {
    const Ipv4 ip = r.u32();
    const std::uint16_t port = r.u16();
    host.referenced_targets.emplace_back(ip, port);
  }
  host.channel = static_cast<ChannelOutcome>(checked_enum(r, 3, "channel outcome"));
  host.channel_policy = static_cast<SecurityPolicy>(checked_enum(r, 5, "channel policy"));
  host.channel_mode = static_cast<MessageSecurityMode>(checked_enum(r, 3, "channel mode"));
  host.server_signature_valid = r.boolean();
  host.anonymous_offered = r.boolean();
  host.session = static_cast<SessionOutcome>(checked_enum(r, 3, "session outcome"));
  host.namespaces = r.string_array();
  const std::uint32_t n_nodes = r.u32();
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    NodeObservation node;
    node.browse_name = r.string();
    node.node_class = checked_node_class(r);
    node.readable = r.boolean();
    node.writable = r.boolean();
    node.executable = r.boolean();
    host.nodes.push_back(std::move(node));
  }
  host.traversal_truncated = r.boolean();
  host.bytes_sent = r.u64();
  host.duration_seconds = r.f64();
  return host;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot file not found: " + path);
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// Column base pointers of one v6 chunk payload. Offsets follow the
/// format comment in snapshot_io.hpp: columns in decreasing alignment,
/// fixed section 47n+4 bytes, var column behind it.
struct V6Layout {
  std::size_t n = 0;
  std::uint64_t var_bytes = 0;
  const std::uint8_t* bytes_sent = nullptr;
  const std::uint8_t* uri_hash = nullptr;
  const std::uint8_t* duration = nullptr;
  const std::uint8_t* ip = nullptr;
  const std::uint8_t* asn = nullptr;
  const std::uint8_t* var_offsets = nullptr;  // n + 1 little-endian u32s
  const std::uint8_t* port = nullptr;
  const std::uint8_t* application_type = nullptr;
  const std::uint8_t* channel = nullptr;
  const std::uint8_t* channel_policy = nullptr;
  const std::uint8_t* channel_mode = nullptr;
  const std::uint8_t* session = nullptr;
  const std::uint8_t* flags = nullptr;
  const std::uint8_t* mode_mask = nullptr;
  const std::uint8_t* policy_mask = nullptr;
  const std::uint8_t* token_mask = nullptr;
  const std::uint8_t* var = nullptr;
};

V6Layout v6_layout(const std::uint8_t* payload, std::uint64_t payload_bytes, std::uint32_t n) {
  const std::uint64_t fixed = 47ull * n + 4;
  if (payload_bytes < fixed) throw DecodeError("chunk payload shorter than its fixed columns");
  V6Layout lay;
  lay.n = n;
  lay.var_bytes = payload_bytes - fixed;
  if (lay.var_bytes > std::numeric_limits<std::uint32_t>::max()) {
    throw DecodeError("var column too large for its u32 offsets");
  }
  const std::uint8_t* p = payload;
  lay.bytes_sent = p; p += 8ull * n;
  lay.uri_hash = p; p += 8ull * n;
  lay.duration = p; p += 8ull * n;
  lay.ip = p; p += 4ull * n;
  lay.asn = p; p += 4ull * n;
  lay.var_offsets = p; p += 4ull * (n + 1);
  lay.port = p; p += 2ull * n;
  lay.application_type = p; p += n;
  lay.channel = p; p += n;
  lay.channel_policy = p; p += n;
  lay.channel_mode = p; p += n;
  lay.session = p; p += n;
  lay.flags = p; p += n;
  lay.mode_mask = p; p += n;
  lay.policy_mask = p; p += n;
  lay.token_mask = p; p += n;
  lay.var = p;
  return lay;
}

void validate_var_offsets(const V6Layout& lay) {
  std::uint32_t prev = le32(lay.var_offsets);
  if (prev != 0) throw DecodeError("var offsets do not start at zero");
  for (std::size_t i = 1; i <= lay.n; ++i) {
    const std::uint32_t cur = le32(lay.var_offsets + 4 * i);
    if (cur < prev) throw DecodeError("var offsets not monotone");
    prev = cur;
  }
  if (prev != lay.var_bytes) throw DecodeError("var offsets do not cover the var column");
}

std::uint32_t checked_cert_id(std::uint32_t id, std::size_t dict_size) {
  if (id >= dict_size) {
    throw DecodeError("certificate id " + std::to_string(id) + " out of dictionary range (" +
                      std::to_string(dict_size) + " entries)");
  }
  return id;
}

/// Decode record i of a v6 chunk back into a full HostScanRecord. The
/// derived columns (uri_hash, mode/policy/token masks) and the head cert
/// id list are re-derived from the decoded fields and cross-checked, so
/// corruption in either representation surfaces as a DecodeError.
HostScanRecord read_host_v6(const SnapshotReader& reader, const V6Layout& lay, std::size_t i) {
  HostScanRecord host;
  host.ip = le32(lay.ip + 4 * i);
  host.port = le16(lay.port + 2 * i);
  host.asn = le32(lay.asn + 4 * i);
  const std::uint8_t flags = lay.flags[i];
  if (flags & ~snapshot_flags::kAllFlags) {
    throw DecodeError("snapshot record: invalid flags value " + std::to_string(flags));
  }
  host.tcp_open = flags & snapshot_flags::kTcpOpen;
  host.speaks_opcua = flags & snapshot_flags::kSpeaksOpcua;
  host.found_via_reference = flags & snapshot_flags::kFoundViaReference;
  host.server_signature_valid = flags & snapshot_flags::kServerSignatureValid;
  host.anonymous_offered = flags & snapshot_flags::kAnonymousOffered;
  host.traversal_truncated = flags & snapshot_flags::kTraversalTruncated;
  host.application_type = static_cast<ApplicationType>(
      checked_enum8(lay.application_type[i], 3, "application type"));
  host.channel = static_cast<ChannelOutcome>(checked_enum8(lay.channel[i], 3, "channel outcome"));
  host.channel_policy =
      static_cast<SecurityPolicy>(checked_enum8(lay.channel_policy[i], 5, "channel policy"));
  host.channel_mode =
      static_cast<MessageSecurityMode>(checked_enum8(lay.channel_mode[i], 3, "channel mode"));
  host.session = static_cast<SessionOutcome>(checked_enum8(lay.session[i], 3, "session outcome"));
  host.bytes_sent = le64(lay.bytes_sent + 8 * i);
  host.duration_seconds = lef64(lay.duration + 8 * i);

  const std::uint32_t var_begin = le32(lay.var_offsets + 4 * i);
  const std::uint32_t var_end = le32(lay.var_offsets + 4 * (i + 1));
  UaReader r(std::span<const std::uint8_t>(lay.var + var_begin, var_end - var_begin));
  const std::uint16_t head_n = r.u16();
  std::vector<std::uint32_t> head;
  head.reserve(head_n);
  for (std::uint16_t k = 0; k < head_n; ++k) {
    head.push_back(checked_cert_id(r.u32(), reader.cert_count()));
  }
  host.application_uri = r.string();
  host.product_uri = r.string();
  host.application_name = r.string();
  host.software_version = r.string();
  const std::uint32_t n_eps = r.u32();
  std::vector<std::uint32_t> ep_ids;
  for (std::uint32_t e = 0; e < n_eps; ++e) {
    EndpointObservation ep;
    ep.url = r.string();
    ep.mode = static_cast<MessageSecurityMode>(checked_enum8(r.byte(), 3, "security mode"));
    const std::uint8_t code = r.byte();
    if (code == 0xff) {
      ep.policy_uri = r.string();
      if (const auto policy = policy_from_uri(ep.policy_uri)) {
        ep.policy = *policy;
        ep.policy_known = true;
      }
    } else if (code <= 5) {
      ep.policy = static_cast<SecurityPolicy>(code);
      ep.policy_known = true;
      ep.policy_uri = std::string(policy_info(ep.policy).uri);
    } else {
      throw DecodeError("snapshot record: invalid policy code value " + std::to_string(code));
    }
    const std::uint8_t n_tokens = r.byte();
    for (std::uint8_t t = 0; t < n_tokens; ++t) {
      ep.token_types.push_back(
          static_cast<UserTokenType>(checked_enum8(r.byte(), 3, "user token type")));
    }
    const std::uint32_t cert_id = r.u32();
    if (cert_id != kNoCertId) {
      checked_cert_id(cert_id, reader.cert_count());
      const auto der = reader.cert_der(cert_id);
      ep.certificate_der.assign(der.begin(), der.end());
    }
    ep_ids.push_back(cert_id);
    host.endpoints.push_back(std::move(ep));
  }
  const std::uint32_t n_refs = r.u32();
  for (std::uint32_t k = 0; k < n_refs; ++k) {
    const Ipv4 ip = r.u32();
    const std::uint16_t port = r.u16();
    host.referenced_targets.emplace_back(ip, port);
  }
  host.namespaces = r.string_array();
  const std::uint32_t n_nodes = r.u32();
  for (std::uint32_t k = 0; k < n_nodes; ++k) {
    NodeObservation node;
    node.browse_name = r.string();
    node.node_class = node_class_from_value(r.byte());
    const std::uint8_t access = r.byte();
    if (access & ~0x7u) {
      throw DecodeError("snapshot record: invalid node access bits " + std::to_string(access));
    }
    node.readable = access & 0x1;
    node.writable = access & 0x2;
    node.executable = access & 0x4;
    host.nodes.push_back(std::move(node));
  }
  if (flags & snapshot_flags::kScanQuality) {
    const std::uint8_t completeness = r.byte();
    if (completeness > 3) {
      throw DecodeError("snapshot record: invalid completeness value " +
                        std::to_string(completeness));
    }
    host.completeness = static_cast<ProbeOutcome>(completeness);
    host.retries = r.u16();
    host.fault_events = r.u16();
    if (completeness == 0 && host.retries == 0 && host.fault_events == 0) {
      throw DecodeError("snapshot record: all-zero scan-quality tail (non-canonical)");
    }
  }
  if (flags & snapshot_flags::kProtocol) {
    const std::uint8_t protocol = r.byte();
    if (protocol == 0) {
      throw DecodeError(
          "snapshot record: zero protocol tail byte (non-canonical; OPC UA records carry "
          "no protocol tail)");
    }
    if (protocol >= kProtocolCount) {
      throw DecodeError("snapshot record: invalid protocol value " + std::to_string(protocol));
    }
    host.protocol = static_cast<ProtocolId>(protocol);
  }
  if (!r.done()) throw DecodeError("var record longer than its fields");

  // Cross-check every derived representation against the decoded record.
  std::vector<std::uint32_t> expect_head;
  std::uint8_t mode_mask = 0, policy_mask = 0, token_mask = 0;
  for (std::size_t e = 0; e < host.endpoints.size(); ++e) {
    const EndpointObservation& ep = host.endpoints[e];
    mode_mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint32_t>(ep.mode));
    if (const auto policy = policy_from_uri(ep.policy_uri)) {
      policy_mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint32_t>(*policy));
    }
    for (const UserTokenType t : ep.token_types) {
      token_mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint32_t>(t));
    }
    const std::uint32_t id = ep_ids[e];
    if (id != kNoCertId &&
        std::find(expect_head.begin(), expect_head.end(), id) == expect_head.end()) {
      expect_head.push_back(id);
    }
  }
  if (head != expect_head) {
    throw DecodeError("certificate id list disagrees with the record's endpoints");
  }
  if (mode_mask != lay.mode_mask[i] || policy_mask != lay.policy_mask[i] ||
      token_mask != lay.token_mask[i]) {
    throw DecodeError("derived security columns disagree with the record's endpoints");
  }
  const std::uint64_t uri_hash =
      host.application_uri.empty() ? 0 : hash64(host.application_uri);
  if (uri_hash != le64(lay.uri_hash + 8 * i)) {
    throw DecodeError("uri hash column disagrees with the record's application URI");
  }
  return host;
}

}  // namespace

// -------------------------------------------------- var-record cursor ----

void VarRecordCursor::skip_string() {
  const std::int32_t len = r_.i32();
  if (len > 0) r_.base().skip(static_cast<std::size_t>(len));
}

void VarRecordCursor::advance(int target) {
  if (stage_ > target) {
    throw DecodeError("var record cursor: fields must be read in field order");
  }
  while (stage_ < target) {
    switch (stage_) {
      case kCertIds: {
        const std::uint16_t n = r_.u16();
        r_.base().skip(4ull * n);
        break;
      }
      case kApplicationUri:
      case kProductUri:
      case kApplicationName:
      case kSoftwareVersion:
        skip_string();
        break;
      case kEndpoints: {
        const std::uint32_t n = r_.u32();
        for (std::uint32_t e = 0; e < n; ++e) {
          skip_string();  // url
          r_.byte();      // mode
          const std::uint8_t code = r_.byte();
          if (code == 0xff) {
            skip_string();  // explicit policy URI
          } else if (code > 5) {
            throw DecodeError("snapshot record: invalid policy code value " +
                              std::to_string(code));
          }
          const std::uint8_t n_tokens = r_.byte();
          r_.base().skip(n_tokens);
          r_.u32();  // cert id
        }
        break;
      }
      case kRefs: {
        const std::uint32_t n = r_.u32();
        r_.base().skip(6ull * n);
        break;
      }
      case kNamespaces: {
        const std::int32_t n = r_.i32();
        for (std::int32_t k = 0; k < n; ++k) skip_string();
        break;
      }
      default:
        break;
    }
    ++stage_;
  }
}

void VarRecordCursor::cert_ids(std::vector<std::uint32_t>& out) {
  advance(kCertIds);
  out.clear();
  const std::uint16_t n = r_.u16();
  out.reserve(n);
  for (std::uint16_t k = 0; k < n; ++k) out.push_back(r_.u32());
  stage_ = kApplicationUri;
}

std::string VarRecordCursor::application_uri() {
  advance(kApplicationUri);
  std::string s = r_.string();
  stage_ = kProductUri;
  return s;
}

std::string VarRecordCursor::product_uri() {
  advance(kProductUri);
  std::string s = r_.string();
  stage_ = kApplicationName;
  return s;
}

std::string VarRecordCursor::application_name() {
  advance(kApplicationName);
  std::string s = r_.string();
  stage_ = kSoftwareVersion;
  return s;
}

std::string VarRecordCursor::software_version() {
  advance(kSoftwareVersion);
  std::string s = r_.string();
  stage_ = kEndpoints;
  return s;
}

std::vector<std::string> VarRecordCursor::namespaces() {
  advance(kNamespaces);
  std::vector<std::string> out = r_.string_array();
  stage_ = kNodes;
  return out;
}

void VarRecordCursor::visit_nodes(
    const std::function<void(NodeClass, bool, bool, bool)>& fn) {
  advance(kNodes);
  const std::uint32_t n = r_.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    skip_string();  // browse name
    const NodeClass node_class = node_class_from_value(r_.byte());
    const std::uint8_t access = r_.byte();
    if (access & ~0x7u) {
      throw DecodeError("snapshot record: invalid node access bits " + std::to_string(access));
    }
    fn(node_class, access & 0x1, access & 0x2, access & 0x4);
  }
  stage_ = kNodes + 1;
}

// ------------------------------------------------------------- writer ----

/// v6 per-chunk column accumulators plus the growing var column. One set
/// per open chunk; cleared on flush. Dictionary state lives on the writer
/// (file scope), not here.
struct SnapshotWriter::ColumnBuffers {
  std::vector<std::uint64_t> bytes_sent, uri_hash;
  std::vector<double> duration;
  std::vector<std::uint32_t> ip, asn, var_ends;
  std::vector<std::uint16_t> port;
  std::vector<std::uint8_t> application_type, channel, channel_policy, channel_mode, session,
      flags, mode_mask, policy_mask, token_mask;
  UaWriter var;
  std::vector<std::uint32_t> head_scratch;

  void clear() {
    bytes_sent.clear();
    uri_hash.clear();
    duration.clear();
    ip.clear();
    asn.clear();
    var_ends.clear();
    port.clear();
    application_type.clear();
    channel.clear();
    channel_policy.clear();
    channel_mode.clear();
    session.clear();
    flags.clear();
    mode_mask.clear();
    policy_mask.clear();
    token_mask.clear();
    var = UaWriter();
  }
};

SnapshotWriter::SnapshotWriter(const std::string& path, std::uint64_t seed,
                               std::uint32_t chunk_records, std::uint32_t format_version)
    : path_(path),
      seed_(seed),
      chunk_records_(std::max<std::uint32_t>(1, chunk_records)),
      format_version_(format_version) {
  if (format_version_ != kVersionV5 && format_version_ != kVersionV6) {
    throw SnapshotError("unsupported snapshot write version " +
                        std::to_string(format_version_) + ": " + path);
  }
  if (format_version_ == kVersionV6) cols_ = std::make_unique<ColumnBuffers>();
  // Write into a sibling temp file; finish() renames it over `path` so a
  // crash mid-campaign can never leave a half-written file at the final
  // name (same pattern as the key-cache flush).
  out_.open(path + ".tmp", std::ios::binary | std::ios::trunc);
  if (!out_) throw SnapshotError("cannot open snapshot file for writing: " + path + ".tmp");
  UaWriter header;
  header.u32(kMagic);
  header.u32(format_version_);
  header.u64(seed);
  const Bytes& bytes = header.bytes();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  file_pos_ = bytes.size();
}

SnapshotWriter::~SnapshotWriter() {
  // No auto-seal: a writer destroyed without finish() — e.g. during stack
  // unwinding after a failed campaign — must leave the file *unsealed*
  // (no trailer), so readers reject the partial dataset instead of
  // silently analyzing a truncated study.
}

void SnapshotWriter::set_campaign(const std::string& label, std::int64_t epoch_days) {
  if (finished_) throw SnapshotError("snapshot writer already finished: " + path_);
  campaign_label_ = label;
  campaign_epoch_days_ = epoch_days;
  campaign_set_ = true;
}

void SnapshotWriter::begin_snapshot(int measurement_index, std::int64_t date_days) {
  if (finished_) throw SnapshotError("snapshot writer already finished: " + path_);
  if (in_snapshot_) throw SnapshotError("begin_snapshot while a snapshot is open: " + path_);
  SnapshotMeta meta;
  meta.measurement_index = measurement_index;
  meta.date_days = date_days;
  meta.campaign_label = campaign_label_;
  meta.campaign_epoch_days = campaign_epoch_days_;
  snapshots_.push_back(meta);
  in_snapshot_ = true;
}

std::uint32_t SnapshotWriter::intern_certificate(const Bytes& der) {
  const std::uint64_t fp = certificate_fingerprint64(der);
  std::vector<std::uint32_t>& ids = dict_index_[fp];
  for (const std::uint32_t id : ids) {
    if (dict_ders_[id] == der) return id;
  }
  if (dict_ders_.size() >= kNoCertId) {
    throw SnapshotError("certificate dictionary overflow: " + path_);
  }
  const std::uint32_t id = static_cast<std::uint32_t>(dict_ders_.size());
  dict_ders_.push_back(der);
  dict_fps_.push_back(fp);
  ids.push_back(id);
  return id;
}

void SnapshotWriter::add_host_v6(const HostScanRecord& host) {
  ColumnBuffers& c = *cols_;
  c.ip.push_back(host.ip);
  c.port.push_back(host.port);
  c.asn.push_back(host.asn);
  c.bytes_sent.push_back(host.bytes_sent);
  c.duration.push_back(host.duration_seconds);
  c.uri_hash.push_back(host.application_uri.empty() ? 0 : hash64(host.application_uri));
  c.application_type.push_back(static_cast<std::uint8_t>(host.application_type));
  c.channel.push_back(static_cast<std::uint8_t>(host.channel));
  c.channel_policy.push_back(static_cast<std::uint8_t>(host.channel_policy));
  c.channel_mode.push_back(static_cast<std::uint8_t>(host.channel_mode));
  c.session.push_back(static_cast<std::uint8_t>(host.session));
  std::uint8_t flags = 0;
  if (host.tcp_open) flags |= snapshot_flags::kTcpOpen;
  if (host.speaks_opcua) flags |= snapshot_flags::kSpeaksOpcua;
  if (host.found_via_reference) flags |= snapshot_flags::kFoundViaReference;
  if (host.server_signature_valid) flags |= snapshot_flags::kServerSignatureValid;
  if (host.anonymous_offered) flags |= snapshot_flags::kAnonymousOffered;
  if (host.traversal_truncated) flags |= snapshot_flags::kTraversalTruncated;
  const bool scan_quality = host.completeness != ProbeOutcome::complete ||
                            host.retries != 0 || host.fault_events != 0;
  if (scan_quality) flags |= snapshot_flags::kScanQuality;
  const bool foreign_protocol = host.protocol != ProtocolId::opcua;
  if (foreign_protocol) flags |= snapshot_flags::kProtocol;
  c.flags.push_back(flags);

  // Per-endpoint pass: derived masks + dictionary interning. The head id
  // list mirrors distinct_certificates(): distinct ids, first-seen
  // endpoint order (interning dedups by DER content, so id identity is
  // content identity).
  std::uint8_t mode_mask = 0, policy_mask = 0, token_mask = 0;
  std::vector<std::uint32_t>& head = c.head_scratch;
  head.clear();
  std::vector<std::uint32_t> ep_ids;
  ep_ids.reserve(host.endpoints.size());
  for (const EndpointObservation& ep : host.endpoints) {
    mode_mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint32_t>(ep.mode));
    if (const auto policy = policy_from_uri(ep.policy_uri)) {
      policy_mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint32_t>(*policy));
    }
    for (const UserTokenType t : ep.token_types) {
      token_mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint32_t>(t));
    }
    std::uint32_t id = kNoCertId;
    if (!ep.certificate_der.empty()) {
      id = intern_certificate(ep.certificate_der);
      if (std::find(head.begin(), head.end(), id) == head.end()) head.push_back(id);
    }
    ep_ids.push_back(id);
  }
  c.mode_mask.push_back(mode_mask);
  c.policy_mask.push_back(policy_mask);
  c.token_mask.push_back(token_mask);

  UaWriter& w = c.var;
  if (head.size() > 0xffff) {
    throw SnapshotError("host advertises more than 65535 distinct certificates: " + path_);
  }
  w.u16(static_cast<std::uint16_t>(head.size()));
  for (const std::uint32_t id : head) w.u32(id);
  w.string(host.application_uri);
  w.string(host.product_uri);
  w.string(host.application_name);
  w.string(host.software_version);
  w.u32(static_cast<std::uint32_t>(host.endpoints.size()));
  for (std::size_t e = 0; e < host.endpoints.size(); ++e) {
    const EndpointObservation& ep = host.endpoints[e];
    w.string(ep.url);
    w.byte(static_cast<std::uint8_t>(ep.mode));
    // The policy code mirrors the read-side normalization: v5 readers
    // re-derive (policy, policy_known) from the URI, so only the URI's
    // identity is stored — canonically (one byte) when it names a table
    // policy, verbatim behind the 255 escape otherwise.
    if (const auto policy = policy_from_uri(ep.policy_uri)) {
      w.byte(static_cast<std::uint8_t>(*policy));
    } else {
      w.byte(0xff);
      w.string(ep.policy_uri);
    }
    if (ep.token_types.size() > 0xff) {
      throw SnapshotError("endpoint advertises more than 255 token types: " + path_);
    }
    w.byte(static_cast<std::uint8_t>(ep.token_types.size()));
    for (const UserTokenType t : ep.token_types) w.byte(static_cast<std::uint8_t>(t));
    w.u32(ep_ids[e]);
  }
  w.u32(static_cast<std::uint32_t>(host.referenced_targets.size()));
  for (const auto& [ip, port] : host.referenced_targets) {
    w.u32(ip);
    w.u16(port);
  }
  w.string_array(host.namespaces);
  w.u32(static_cast<std::uint32_t>(host.nodes.size()));
  for (const NodeObservation& node : host.nodes) {
    w.string(node.browse_name);
    w.byte(static_cast<std::uint8_t>(node.node_class));
    std::uint8_t access = 0;
    if (node.readable) access |= 0x1;
    if (node.writable) access |= 0x2;
    if (node.executable) access |= 0x4;
    w.byte(access);
  }
  if (scan_quality) {
    w.byte(static_cast<std::uint8_t>(host.completeness));
    w.u16(host.retries);
    w.u16(host.fault_events);
  }
  // The protocol byte is always the last byte of the slice, so columnar
  // consumers can peel it off without a cursor walk (nonzero by
  // construction: protocol 0 never sets the flag).
  if (foreign_protocol) w.byte(static_cast<std::uint8_t>(host.protocol));
  if (w.bytes().size() > std::numeric_limits<std::uint32_t>::max()) {
    throw SnapshotError("chunk var column exceeds 4 GiB; lower chunk_records: " + path_);
  }
  c.var_ends.push_back(static_cast<std::uint32_t>(w.bytes().size()));
}

void SnapshotWriter::add_host(const HostScanRecord& host) {
  if (!in_snapshot_) throw SnapshotError("add_host outside begin/end_snapshot: " + path_);
  if (format_version_ == kVersionV6) {
    add_host_v6(host);
  } else {
    UaWriter w;
    write_host(w, host);
    const Bytes& encoded = w.bytes();
    chunk_buf_.insert(chunk_buf_.end(), encoded.begin(), encoded.end());
  }
  snapshots_.back().protocol_mask |= 1u << static_cast<std::uint32_t>(host.protocol);
  ++buffered_records_;
  ++snapshots_.back().host_count;
  if (buffered_records_ >= chunk_records_) flush_chunk();
}

void SnapshotWriter::end_snapshot(std::uint64_t probes_sent, std::uint64_t tcp_open_count) {
  if (!in_snapshot_) throw SnapshotError("end_snapshot without begin_snapshot: " + path_);
  snapshots_.back().probes_sent = probes_sent;
  snapshots_.back().tcp_open_count = tcp_open_count;
  flush_chunk();  // chunks never straddle measurements
  in_snapshot_ = false;
}

void SnapshotWriter::add_snapshot(const ScanSnapshot& snapshot) {
  begin_snapshot(snapshot.measurement_index, snapshot.date_days);
  for (const auto& host : snapshot.hosts) add_host(host);
  end_snapshot(snapshot.probes_sent, snapshot.tcp_open_count);
}

void SnapshotWriter::flush_chunk() {
  if (buffered_records_ == 0) return;
  const bool obs_on = obs::enabled();
  const auto wall_start =
      obs_on ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  SnapshotChunkInfo info;
  info.snapshot_ordinal = static_cast<std::uint32_t>(snapshots_.size() - 1);
  info.record_count = buffered_records_;
  info.file_offset = file_pos_;

  UaWriter w;
  if (format_version_ == kVersionV6) {
    const ColumnBuffers& c = *cols_;
    const std::size_t n = buffered_records_;
    info.payload_bytes = 47ull * n + 4 + c.var.bytes().size();
    w.u32(kChunkMagic);
    w.u32(info.snapshot_ordinal);
    w.u32(info.record_count);
    w.u32(0);  // reserved: keeps the header 24 bytes, i.e. 8-aligned
    w.u64(info.payload_bytes);
    for (const std::uint64_t v : c.bytes_sent) w.u64(v);
    for (const std::uint64_t v : c.uri_hash) w.u64(v);
    for (const double v : c.duration) w.f64(v);
    for (const std::uint32_t v : c.ip) w.u32(v);
    for (const std::uint32_t v : c.asn) w.u32(v);
    w.u32(0);
    for (const std::uint32_t v : c.var_ends) w.u32(v);
    for (const std::uint16_t v : c.port) w.u16(v);
    w.base().raw(c.application_type);
    w.base().raw(c.channel);
    w.base().raw(c.channel_policy);
    w.base().raw(c.channel_mode);
    w.base().raw(c.session);
    w.base().raw(c.flags);
    w.base().raw(c.mode_mask);
    w.base().raw(c.policy_mask);
    w.base().raw(c.token_mask);
    w.base().raw(c.var.bytes());
    const std::uint64_t pad = v6_padding(info.payload_bytes);
    for (std::uint64_t p = 0; p < pad; ++p) w.byte(0);
    cols_->clear();
  } else {
    info.payload_bytes = chunk_buf_.size();
    w.u32(kChunkMagic);
    w.u32(info.snapshot_ordinal);
    w.u32(info.record_count);
    w.u64(info.payload_bytes);
    w.base().raw(chunk_buf_);
    chunk_buf_.clear();
  }
  const Bytes& bytes = w.bytes();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  file_pos_ += bytes.size();
  chunks_.push_back(info);
  buffered_records_ = 0;
  if (obs_on) {
    obs::add(obs::Metric::snapshot_chunks_written);
    obs::add(obs::Metric::snapshot_bytes_written, bytes.size());
    obs::add(obs::Metric::snapshot_write_wall_us,
             static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                            std::chrono::steady_clock::now() - wall_start)
                                            .count()));
  }
}

void SnapshotWriter::finish() {
  if (finished_) return;
  if (in_snapshot_) throw SnapshotError("finish with an open snapshot: " + path_);
  std::uint64_t dict_offset = 0;
  std::uint64_t dict_bytes = 0;
  if (format_version_ == kVersionV6) {
    dict_offset = file_pos_;
    UaWriter d;
    d.u32(kDictMagic);
    d.u32(static_cast<std::uint32_t>(dict_ders_.size()));
    for (std::size_t i = 0; i < dict_ders_.size(); ++i) {
      d.u64(dict_fps_[i]);
      d.byte_string(dict_ders_[i]);
    }
    const Bytes& db = d.bytes();
    out_.write(reinterpret_cast<const char*>(db.data()),
               static_cast<std::streamsize>(db.size()));
    dict_bytes = db.size();
    file_pos_ += dict_bytes;
  }
  const std::uint64_t footer_offset = file_pos_;
  UaWriter w;
  w.u32(kFooterMagic);
  w.u32(static_cast<std::uint32_t>(snapshots_.size()));
  for (const auto& meta : snapshots_) {
    w.i32(meta.measurement_index);
    w.i64(meta.date_days);
    w.u64(meta.probes_sent);
    w.u64(meta.tcp_open_count);
    w.u64(meta.host_count);
  }
  w.u32(static_cast<std::uint32_t>(chunks_.size()));
  for (const auto& chunk : chunks_) {
    w.u32(chunk.snapshot_ordinal);
    w.u32(chunk.record_count);
    w.u64(chunk.file_offset);
    w.u64(chunk.payload_bytes);
  }
  if (format_version_ == kVersionV6) {
    w.u64(dict_offset);
    w.u64(dict_bytes);
    w.u32(static_cast<std::uint32_t>(dict_ders_.size()));
  }
  if (campaign_set_) {
    w.u32(kCampaignMagic);
    for (const auto& meta : snapshots_) {
      w.string(meta.campaign_label);
      w.i64(meta.campaign_epoch_days);
    }
  }
  if (format_version_ == kVersionV6) {
    // The protocol block exists only for mixed fleets: an OPC-UA-only
    // campaign omits it (readers leave every mask 0 = undeclared) and the
    // file stays byte-identical to pre-protocol output.
    bool any_foreign = false;
    for (const auto& meta : snapshots_) any_foreign |= (meta.protocol_mask & ~1u) != 0;
    if (any_foreign) {
      w.u32(kProtocolMagic);
      for (const auto& meta : snapshots_) w.u32(meta.protocol_mask);
    }
  }
  w.u64(footer_offset);
  w.u32(kEndMagic);
  const Bytes& bytes = w.bytes();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  out_.close();
  if (!out_) throw SnapshotError("write failure while sealing snapshot file: " + path_ + ".tmp");
  const std::string tmp = path_ + ".tmp";
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot move sealed snapshot file into place: " + tmp + " -> " + path_);
  }
  finished_ = true;
}

// ------------------------------------------------------------- reader ----

SnapshotReader::SnapshotReader(const std::string& path, std::uint64_t seed) : path_(path) {
  std::uint64_t file_size = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw SnapshotError("snapshot file not found: " + path);
    in.seekg(0, std::ios::end);
    file_size = static_cast<std::uint64_t>(in.tellg());
    if (file_size == 0) {
      throw SnapshotError("snapshot file is empty (0 bytes): " + path);
    }
    if (file_size < kHeaderBytes) {
      throw SnapshotError("snapshot file truncated: " + path + " holds only " +
                          std::to_string(file_size) + " bytes, need at least " +
                          std::to_string(kHeaderBytes) + " for the header");
    }
    Bytes header(kHeaderBytes);
    in.seekg(0);
    in.read(reinterpret_cast<char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
    UaReader hr(header);
    if (hr.u32() != kMagic) throw SnapshotError("not a snapshot file (bad magic): " + path);
    version_ = hr.u32();
    if (version_ != kVersionV4 && version_ != kVersionV5 && version_ != kVersionV6) {
      throw SnapshotError("unsupported snapshot version " + std::to_string(version_) + ": " +
                          path);
    }
    const std::uint64_t file_seed = hr.u64();
    if (file_seed != seed) {
      throw SnapshotError("snapshot seed mismatch at byte offset 8 (" + version_tag(version_) +
                          " file seed " + std::to_string(file_seed) + ", expected " +
                          std::to_string(seed) + "): " + path);
    }

    if (version_ == kVersionV5) {
      // v5: trailer -> footer -> validated chunk index.
      if (file_size < kHeaderBytes + kTrailerBytes) {
        throw SnapshotError("snapshot file truncated before trailer (v5): " + path +
                            " holds only " + std::to_string(file_size) + " bytes, need at least " +
                            std::to_string(kHeaderBytes + kTrailerBytes));
      }
      Bytes trailer(kTrailerBytes);
      in.seekg(static_cast<std::streamoff>(file_size - kTrailerBytes));
      in.read(reinterpret_cast<char*>(trailer.data()),
              static_cast<std::streamsize>(trailer.size()));
      UaReader tr(trailer);
      const std::uint64_t footer_offset = tr.u64();
      if (tr.u32() != kEndMagic) {
        throw SnapshotError(
            "snapshot file truncated or unsealed (missing end marker at byte offset " +
            std::to_string(file_size - 4) + ", v5): " + path);
      }
      if (footer_offset < kHeaderBytes || footer_offset > file_size - kTrailerBytes) {
        throw SnapshotError("snapshot footer offset out of range (v5): " + path);
      }
      Bytes footer(static_cast<std::size_t>(file_size - kTrailerBytes - footer_offset));
      in.seekg(static_cast<std::streamoff>(footer_offset));
      in.read(reinterpret_cast<char*>(footer.data()),
              static_cast<std::streamsize>(footer.size()));
      if (!in) throw SnapshotError("read failure in snapshot footer: " + path);
      try {
        UaReader r(footer);
        if (r.u32() != kFooterMagic) throw DecodeError("bad footer magic");
        const std::uint32_t snapshot_count = r.u32();
        if (snapshot_count > kMaxSnapshots) {
          throw DecodeError("implausible snapshot count " + std::to_string(snapshot_count));
        }
        snapshots_.reserve(snapshot_count);
        for (std::uint32_t i = 0; i < snapshot_count; ++i) {
          SnapshotMeta meta;
          meta.measurement_index = r.i32();
          meta.date_days = r.i64();
          meta.probes_sent = r.u64();
          meta.tcp_open_count = r.u64();
          meta.host_count = r.u64();
          snapshots_.push_back(meta);
        }
        const std::uint32_t chunk_count = r.u32();
        if (chunk_count > kMaxChunks) {
          throw DecodeError("implausible chunk count " + std::to_string(chunk_count));
        }
        chunks_.reserve(chunk_count);
        std::vector<std::uint64_t> records_seen(snapshot_count, 0);
        std::uint64_t min_offset = kHeaderBytes;
        for (std::uint32_t i = 0; i < chunk_count; ++i) {
          SnapshotChunkInfo chunk;
          chunk.snapshot_ordinal = r.u32();
          chunk.record_count = r.u32();
          chunk.file_offset = r.u64();
          chunk.payload_bytes = r.u64();
          if (chunk.snapshot_ordinal >= snapshot_count) {
            throw DecodeError("chunk " + std::to_string(i) + " references snapshot " +
                              std::to_string(chunk.snapshot_ordinal) + " of " +
                              std::to_string(snapshot_count));
          }
          if (chunk.record_count == 0) {
            throw DecodeError("chunk " + std::to_string(i) + " is empty");
          }
          // Chunks are written back to back in index order; each must lie
          // fully inside the data region [header, footer).
          if (chunk.file_offset < min_offset ||
              chunk.payload_bytes > footer_offset - kChunkHeaderBytes ||
              chunk.file_offset + kChunkHeaderBytes + chunk.payload_bytes > footer_offset) {
            throw DecodeError("chunk " + std::to_string(i) + " extent out of range");
          }
          min_offset = chunk.file_offset + kChunkHeaderBytes + chunk.payload_bytes;
          records_seen[chunk.snapshot_ordinal] += chunk.record_count;
          if (!chunks_.empty() && chunk.snapshot_ordinal < chunks_.back().snapshot_ordinal) {
            throw DecodeError("chunk index not ordered by snapshot");
          }
          chunks_.push_back(chunk);
        }
        if (!r.done()) {
          // Optional campaign block: files written before labels existed
          // (or without set_campaign) simply end after the chunk table.
          if (r.u32() != kCampaignMagic) throw DecodeError("bad campaign block magic");
          for (std::uint32_t i = 0; i < snapshot_count; ++i) {
            snapshots_[i].campaign_label = r.string();
            snapshots_[i].campaign_epoch_days = r.i64();
          }
        }
        if (!r.done()) throw DecodeError("trailing bytes in footer");
        for (std::uint32_t i = 0; i < snapshot_count; ++i) {
          if (records_seen[i] != snapshots_[i].host_count) {
            throw DecodeError("snapshot " + std::to_string(i) + " indexes " +
                              std::to_string(records_seen[i]) + " records but declares " +
                              std::to_string(snapshots_[i].host_count));
          }
        }
      } catch (const DecodeError& e) {
        throw SnapshotError("corrupt snapshot footer in " + path + " (v5, footer at byte " +
                            std::to_string(footer_offset) + "): " + e.what());
      }
      return;
    }
  }

  if (version_ == kVersionV4) {
    // v4: monolithic stream — decode once to synthesize the chunk index.
    // Legacy files are the small pre-chunking caches, so keeping the raw
    // bytes resident is acceptable; v5/v6 readers never decode-at-open.
    heap_data_ = read_file(path);
    data_ = heap_data_.data();
    data_size_ = heap_data_.size();
    UaReader r(heap_data_);
    try {
      r.u32();  // magic
      r.u32();  // version
      r.u64();  // seed
      const std::uint32_t count = r.u32();
      if (count > kMaxSnapshots) {
        throw DecodeError("implausible snapshot count " + std::to_string(count));
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        SnapshotMeta meta;
        meta.measurement_index = r.i32();
        meta.date_days = r.i64();
        meta.probes_sent = r.u64();
        meta.tcp_open_count = r.u64();
        const std::uint32_t n_hosts = r.u32();
        meta.host_count = n_hosts;
        std::uint32_t remaining_hosts = n_hosts;
        while (remaining_hosts > 0) {
          SnapshotChunkInfo chunk;
          chunk.snapshot_ordinal = i;
          chunk.record_count =
              std::min<std::uint32_t>(remaining_hosts, SnapshotWriter::kDefaultChunkRecords);
          chunk.file_offset = r.base().position();
          for (std::uint32_t h = 0; h < chunk.record_count; ++h) read_host(r);
          chunk.payload_bytes = r.base().position() - chunk.file_offset;
          chunks_.push_back(chunk);
          remaining_hosts -= chunk.record_count;
        }
        snapshots_.push_back(meta);
      }
      if (!r.done()) {
        throw DecodeError(std::to_string(r.remaining()) + " trailing bytes after last snapshot");
      }
    } catch (const DecodeError& e) {
      throw SnapshotError("corrupt v4 snapshot file " + path + " (at byte " +
                          std::to_string(r.base().position()) + "): " + e.what());
    }
    return;
  }

  if (version_ == kVersionV6) open_v6(file_size);
}

SnapshotReader::~SnapshotReader() {
#if OPCUA_STUDY_HAVE_MMAP
  if (mmap_ptr_ != nullptr) ::munmap(mmap_ptr_, mmap_len_);
#endif
}

void SnapshotReader::open_v6(std::uint64_t file_size) {
#if OPCUA_STUDY_HAVE_MMAP
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                       fd, 0);
      if (p != MAP_FAILED) {
        mmap_ptr_ = p;
        mmap_len_ = static_cast<std::size_t>(st.st_size);
        data_ = static_cast<const std::uint8_t*>(p);
        data_size_ = mmap_len_;
      }
    }
    ::close(fd);
  }
#endif
  if (data_ == nullptr) {
    // Heap fallback (no mmap on this platform, or the map failed): one
    // resident copy, same lifetime and alignment guarantees.
    heap_data_ = read_file(path_);
    data_ = heap_data_.data();
    data_size_ = heap_data_.size();
  }
  if (data_size_ != file_size) {
    throw SnapshotError("snapshot file changed size while opening: " + path_);
  }

  if (data_size_ < kHeaderBytes + kTrailerBytes) {
    throw SnapshotError("snapshot file truncated before trailer (v6): " + path_ +
                        " holds only " + std::to_string(data_size_) + " bytes, need at least " +
                        std::to_string(kHeaderBytes + kTrailerBytes));
  }
  UaReader tr(std::span<const std::uint8_t>(data_ + data_size_ - kTrailerBytes, kTrailerBytes));
  const std::uint64_t footer_offset = tr.u64();
  if (tr.u32() != kEndMagic) {
    throw SnapshotError(
        "snapshot file truncated or unsealed (missing end marker at byte offset " +
        std::to_string(data_size_ - 4) + ", v6): " + path_);
  }
  if (footer_offset < kHeaderBytes || footer_offset > data_size_ - kTrailerBytes) {
    throw SnapshotError("snapshot footer offset out of range (v6): " + path_);
  }
  std::uint64_t dict_offset = 0;
  std::uint64_t dict_bytes = 0;
  std::uint32_t dict_count = 0;
  try {
    UaReader r(std::span<const std::uint8_t>(data_ + footer_offset,
                                             data_size_ - kTrailerBytes - footer_offset));
    if (r.u32() != kFooterMagic) throw DecodeError("bad footer magic");
    const std::uint32_t snapshot_count = r.u32();
    if (snapshot_count > kMaxSnapshots) {
      throw DecodeError("implausible snapshot count " + std::to_string(snapshot_count));
    }
    snapshots_.reserve(snapshot_count);
    for (std::uint32_t i = 0; i < snapshot_count; ++i) {
      SnapshotMeta meta;
      meta.measurement_index = r.i32();
      meta.date_days = r.i64();
      meta.probes_sent = r.u64();
      meta.tcp_open_count = r.u64();
      meta.host_count = r.u64();
      snapshots_.push_back(meta);
    }
    const std::uint32_t chunk_count = r.u32();
    if (chunk_count > kMaxChunks) {
      throw DecodeError("implausible chunk count " + std::to_string(chunk_count));
    }
    chunks_.reserve(chunk_count);
    std::vector<std::uint64_t> records_seen(snapshot_count, 0);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
      SnapshotChunkInfo chunk;
      chunk.snapshot_ordinal = r.u32();
      chunk.record_count = r.u32();
      chunk.file_offset = r.u64();
      chunk.payload_bytes = r.u64();
      if (chunk.snapshot_ordinal >= snapshot_count) {
        throw DecodeError("chunk " + std::to_string(i) + " references snapshot " +
                          std::to_string(chunk.snapshot_ordinal) + " of " +
                          std::to_string(snapshot_count));
      }
      if (chunk.record_count == 0) throw DecodeError("chunk " + std::to_string(i) + " is empty");
      records_seen[chunk.snapshot_ordinal] += chunk.record_count;
      if (!chunks_.empty() && chunk.snapshot_ordinal < chunks_.back().snapshot_ordinal) {
        throw DecodeError("chunk index not ordered by snapshot");
      }
      chunks_.push_back(chunk);
    }
    dict_offset = r.u64();
    dict_bytes = r.u64();
    dict_count = r.u32();
    if (dict_count > kMaxDictEntries) {
      throw DecodeError("implausible certificate dictionary size " + std::to_string(dict_count));
    }
    if (dict_offset < kHeaderBytes || dict_bytes < 8 || dict_bytes > footer_offset ||
        dict_offset > footer_offset - dict_bytes) {
      throw DecodeError("certificate dictionary extent out of range");
    }
    // Chunk extents validate against the dictionary, which begins where
    // the (8-aligned, padded) chunk region ends.
    std::uint64_t min_offset = kHeaderBytes;
    for (std::uint32_t i = 0; i < chunks_.size(); ++i) {
      const SnapshotChunkInfo& chunk = chunks_[i];
      if (chunk.file_offset % 8 != 0) {
        throw DecodeError("chunk " + std::to_string(i) + " misaligned");
      }
      if (chunk.file_offset < min_offset ||
          chunk.payload_bytes > dict_offset - kV6ChunkHeaderBytes ||
          chunk.file_offset + kV6ChunkHeaderBytes + chunk.payload_bytes +
                  v6_padding(chunk.payload_bytes) >
              dict_offset) {
        throw DecodeError("chunk " + std::to_string(i) + " extent out of range");
      }
      min_offset = chunk.file_offset + kV6ChunkHeaderBytes + chunk.payload_bytes +
                   v6_padding(chunk.payload_bytes);
    }
    // Optional blocks, each at most once, in write order: campaign
    // identity ('CAMP'), then per-snapshot protocol masks ('PROT').
    // Files predating either block simply end after the dictionary info.
    bool saw_campaign = false;
    bool saw_protocol = false;
    while (!r.done()) {
      const std::uint32_t block_magic = r.u32();
      if (block_magic == kCampaignMagic && !saw_campaign && !saw_protocol) {
        saw_campaign = true;
        for (std::uint32_t i = 0; i < snapshot_count; ++i) {
          snapshots_[i].campaign_label = r.string();
          snapshots_[i].campaign_epoch_days = r.i64();
        }
      } else if (block_magic == kProtocolMagic && !saw_protocol) {
        saw_protocol = true;
        for (std::uint32_t i = 0; i < snapshot_count; ++i) {
          snapshots_[i].protocol_mask = r.u32();
        }
      } else {
        throw DecodeError("bad optional footer block magic");
      }
    }
    for (std::uint32_t i = 0; i < snapshot_count; ++i) {
      if (records_seen[i] != snapshots_[i].host_count) {
        throw DecodeError("snapshot " + std::to_string(i) + " indexes " +
                          std::to_string(records_seen[i]) + " records but declares " +
                          std::to_string(snapshots_[i].host_count));
      }
    }
  } catch (const DecodeError& e) {
    throw SnapshotError("corrupt snapshot footer in " + path_ + " (v6, footer at byte " +
                        std::to_string(footer_offset) + "): " + e.what());
  }

  // Certificate dictionary: every entry's stored fingerprint must match a
  // recomputation from its DER — a flipped bit in either fails the open.
  try {
    UaReader d(std::span<const std::uint8_t>(data_ + dict_offset,
                                             static_cast<std::size_t>(dict_bytes)));
    if (d.u32() != kDictMagic) throw DecodeError("bad certificate dictionary magic");
    const std::uint32_t count = d.u32();
    if (count != dict_count) {
      throw DecodeError("dictionary declares " + std::to_string(count) +
                        " entries but the footer indexes " + std::to_string(dict_count));
    }
    dict_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      DictEntry entry;
      entry.fp64 = d.u64();
      const std::int32_t length = d.i32();
      if (length <= 0) {
        throw DecodeError("dictionary entry " + std::to_string(i) + " has no DER bytes");
      }
      entry.length = static_cast<std::uint32_t>(length);
      entry.offset = dict_offset + d.base().position();
      const auto der = d.base().view(entry.length);
      if (certificate_fingerprint64(der) != entry.fp64) {
        throw DecodeError("dictionary entry " + std::to_string(i) + " fingerprint mismatch");
      }
      dict_.push_back(entry);
    }
    if (!d.done()) throw DecodeError("trailing bytes in certificate dictionary");
  } catch (const DecodeError& e) {
    std::uint32_t mask = 0;
    for (const auto& meta : snapshots_) mask |= meta.protocol_mask;
    throw SnapshotError("corrupt certificate dictionary in " + path_ + " (v6, " +
                        protocol_context(version_, mask) + ", dictionary at byte " +
                        std::to_string(dict_offset) + "): " + e.what());
  }
}

bool SnapshotReader::columnar() const {
  return version_ == kVersionV6 && std::endian::native == std::endian::little;
}

std::span<const std::uint8_t> SnapshotReader::cert_der(std::uint32_t cert_id) const {
  if (cert_id >= dict_.size()) {
    throw SnapshotError("certificate id " + std::to_string(cert_id) +
                        " out of dictionary range (" + std::to_string(dict_.size()) +
                        " entries) in " + path_);
  }
  const DictEntry& entry = dict_[cert_id];
  return {data_ + entry.offset, entry.length};
}

std::uint64_t SnapshotReader::total_records() const {
  std::uint64_t total = 0;
  for (const auto& meta : snapshots_) total += meta.host_count;
  return total;
}

std::uint64_t SnapshotReader::file_fingerprint() const {
  // Folds the validated structural metadata — format version, every
  // measurement's identity/counters, the complete chunk index, and the
  // dictionary shape — into one 64-bit value. Snapshot output is a pure
  // function of (records, seed), so any record change moves a chunk
  // payload size or host count and therefore the fingerprint; sidecar
  // files (posture sketches) staple themselves to this value to detect a
  // swapped or rewritten snapshot without re-reading record bytes.
  std::string acc = "snapshot-fp:v" + std::to_string(version_);
  for (const auto& meta : snapshots_) {
    acc += ';';
    acc += std::to_string(meta.measurement_index) + ',' + std::to_string(meta.date_days) + ',' +
           std::to_string(meta.probes_sent) + ',' + std::to_string(meta.tcp_open_count) + ',' +
           std::to_string(meta.host_count) + ',' + meta.campaign_label + ',' +
           std::to_string(meta.campaign_epoch_days) + ',' + std::to_string(meta.protocol_mask);
  }
  for (const auto& chunk : chunks_) {
    acc += '|';
    acc += std::to_string(chunk.snapshot_ordinal) + ',' + std::to_string(chunk.record_count) +
           ',' + std::to_string(chunk.file_offset) + ',' + std::to_string(chunk.payload_bytes);
  }
  acc += "#dict:" + std::to_string(dict_.size());
  for (const auto& entry : dict_) acc += ',' + std::to_string(entry.fp64);
  return hash64(acc);
}

std::vector<HostScanRecord> SnapshotReader::read_chunk(std::size_t chunk_index) const {
  std::vector<HostScanRecord> records;
  read_chunk(chunk_index, records);
  return records;
}

void SnapshotReader::read_chunk(std::size_t chunk_index,
                                std::vector<HostScanRecord>& out) const {
  out.clear();
  if (chunk_index >= chunks_.size()) {
    throw SnapshotError("chunk index " + std::to_string(chunk_index) + " out of range in " +
                        path_);
  }
  const SnapshotChunkInfo& info = chunks_[chunk_index];
  out.reserve(info.record_count);
  const bool obs_on = obs::enabled();
  const auto wall_start =
      obs_on ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  const auto note_read = [&] {
    if (!obs_on) return;
    obs::add(obs::Metric::snapshot_chunks_read);
    obs::add(obs::Metric::snapshot_bytes_read, info.payload_bytes);
    obs::add(obs::Metric::snapshot_read_wall_us,
             static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                            std::chrono::steady_clock::now() - wall_start)
                                            .count()));
  };
  try {
    if (version_ == kVersionV4) {
      UaReader r(std::span<const std::uint8_t>(data_ + info.file_offset, info.payload_bytes));
      for (std::uint32_t i = 0; i < info.record_count; ++i) out.push_back(read_host(r));
      note_read();
      return;
    }
    if (version_ == kVersionV6) {
      const std::uint8_t* base = data_ + info.file_offset;
      UaReader h(std::span<const std::uint8_t>(base, kV6ChunkHeaderBytes));
      if (h.u32() != kChunkMagic || h.u32() != info.snapshot_ordinal ||
          h.u32() != info.record_count || h.u32() != 0 || h.u64() != info.payload_bytes) {
        throw DecodeError("chunk header disagrees with footer index");
      }
      const V6Layout lay =
          v6_layout(base + kV6ChunkHeaderBytes, info.payload_bytes, info.record_count);
      validate_var_offsets(lay);
      for (std::uint32_t i = 0; i < info.record_count; ++i) {
        out.push_back(read_host_v6(*this, lay, i));
      }
      note_read();
      return;
    }
    // v5: each call opens its own stream so thread-pool workers can decode
    // disjoint chunks concurrently without sharing a file cursor.
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw SnapshotError("snapshot file vanished: " + path_);
    in.seekg(static_cast<std::streamoff>(info.file_offset));
    Bytes data(kChunkHeaderBytes + info.payload_bytes);
    in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(data.size()));
    if (!in) throw SnapshotError("read failure in chunk of " + path_);
    UaReader r(data);
    if (r.u32() != kChunkMagic || r.u32() != info.snapshot_ordinal ||
        r.u32() != info.record_count || r.u64() != info.payload_bytes) {
      throw DecodeError("chunk header disagrees with footer index");
    }
    for (std::uint32_t i = 0; i < info.record_count; ++i) out.push_back(read_host(r));
    if (!r.done()) throw DecodeError("chunk payload longer than its records");
    note_read();
  } catch (const DecodeError& e) {
    throw SnapshotError(
        "corrupt chunk " + std::to_string(chunk_index) + " in " + path_ + " (" +
        version_tag(version_) + ", " +
        protocol_context(version_, snapshots_[info.snapshot_ordinal].protocol_mask) +
        ", chunk at byte " + std::to_string(info.file_offset) + "): " + e.what());
  }
}

ColumnView SnapshotReader::column_view(std::size_t chunk_index) const {
  if (!columnar()) {
    throw SnapshotError("column_view requires a v6 snapshot on a little-endian host: " + path_);
  }
  if (chunk_index >= chunks_.size()) {
    throw SnapshotError("chunk index " + std::to_string(chunk_index) + " out of range in " +
                        path_);
  }
  const SnapshotChunkInfo& info = chunks_[chunk_index];
  try {
    const std::uint8_t* base = data_ + info.file_offset;
    UaReader h(std::span<const std::uint8_t>(base, kV6ChunkHeaderBytes));
    if (h.u32() != kChunkMagic || h.u32() != info.snapshot_ordinal ||
        h.u32() != info.record_count || h.u32() != 0 || h.u64() != info.payload_bytes) {
      throw DecodeError("chunk header disagrees with footer index");
    }
    const V6Layout lay =
        v6_layout(base + kV6ChunkHeaderBytes, info.payload_bytes, info.record_count);
    validate_var_offsets(lay);
    ColumnView view;
    view.snapshot_ordinal = info.snapshot_ordinal;
    view.records = lay.n;
    view.bytes_sent = {reinterpret_cast<const std::uint64_t*>(lay.bytes_sent), lay.n};
    view.uri_hash = {reinterpret_cast<const std::uint64_t*>(lay.uri_hash), lay.n};
    view.duration_seconds = {reinterpret_cast<const double*>(lay.duration), lay.n};
    view.ip = {reinterpret_cast<const std::uint32_t*>(lay.ip), lay.n};
    view.asn = {reinterpret_cast<const std::uint32_t*>(lay.asn), lay.n};
    view.var_offsets = {reinterpret_cast<const std::uint32_t*>(lay.var_offsets), lay.n + 1};
    view.port = {reinterpret_cast<const std::uint16_t*>(lay.port), lay.n};
    view.application_type = {lay.application_type, lay.n};
    view.channel = {lay.channel, lay.n};
    view.channel_policy = {lay.channel_policy, lay.n};
    view.channel_mode = {lay.channel_mode, lay.n};
    view.session = {lay.session, lay.n};
    view.flags = {lay.flags, lay.n};
    view.mode_mask = {lay.mode_mask, lay.n};
    view.policy_mask = {lay.policy_mask, lay.n};
    view.token_mask = {lay.token_mask, lay.n};
    view.var_blob = {lay.var, static_cast<std::size_t>(lay.var_bytes)};
    // A column view is a zero-copy chunk read: same coverage accounting as
    // the record-decoding path, just without the decode cost.
    obs::add(obs::Metric::snapshot_chunks_read);
    obs::add(obs::Metric::snapshot_bytes_read, info.payload_bytes);
    return view;
  } catch (const DecodeError& e) {
    throw SnapshotError(
        "corrupt chunk " + std::to_string(chunk_index) + " in " + path_ + " (v6, " +
        protocol_context(version_, snapshots_[info.snapshot_ordinal].protocol_mask) +
        ", chunk at byte " + std::to_string(info.file_offset) + "): " + e.what());
  }
}

void SnapshotReader::for_each_host(
    const std::function<void(std::size_t, const HostScanRecord&)>& fn) const {
  std::vector<HostScanRecord> records;  // one decode buffer for the whole walk
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    read_chunk(c, records);
    for (const auto& record : records) fn(chunks_[c].snapshot_ordinal, record);
  }
}

std::vector<ScanSnapshot> SnapshotReader::load_all() const {
  std::vector<ScanSnapshot> out;
  out.reserve(snapshots_.size());
  for (const auto& meta : snapshots_) {
    ScanSnapshot snapshot;
    snapshot.measurement_index = meta.measurement_index;
    snapshot.date_days = meta.date_days;
    snapshot.probes_sent = meta.probes_sent;
    snapshot.tcp_open_count = meta.tcp_open_count;
    snapshot.hosts.reserve(meta.host_count);
    out.push_back(std::move(snapshot));
  }
  std::vector<HostScanRecord> records;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    read_chunk(c, records);
    auto& hosts = out[chunks_[c].snapshot_ordinal].hosts;
    for (auto& record : records) hosts.push_back(std::move(record));
  }
  return out;
}

// ---------------------------------------------------------- functions ----

void save_snapshots(const std::string& path, std::uint64_t seed,
                    const std::vector<ScanSnapshot>& snapshots) {
  SnapshotWriter writer(path, seed);
  for (const auto& snapshot : snapshots) writer.add_snapshot(snapshot);
  writer.finish();
}

std::optional<std::vector<ScanSnapshot>> load_snapshots(const std::string& path,
                                                        std::uint64_t seed,
                                                        std::string* error) {
  try {
    SnapshotReader reader(path, seed);
    return reader.load_all();
  } catch (const SnapshotError& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

void save_snapshots_v4(const std::string& path, std::uint64_t seed,
                       const std::vector<ScanSnapshot>& snapshots) {
  UaWriter w;
  w.u32(kMagic);
  w.u32(kVersionV4);
  w.u64(seed);
  w.u32(static_cast<std::uint32_t>(snapshots.size()));
  for (const auto& snapshot : snapshots) {
    w.i32(snapshot.measurement_index);
    w.i64(snapshot.date_days);
    w.u64(snapshot.probes_sent);
    w.u64(snapshot.tcp_open_count);
    w.u32(static_cast<std::uint32_t>(snapshot.hosts.size()));
    for (const auto& host : snapshot.hosts) write_host(w, host);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("cannot open snapshot file for writing: " + tmp);
    const Bytes& data = w.bytes();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.close();
    if (!out) throw SnapshotError("write failure while writing snapshot file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot move snapshot file into place: " + tmp + " -> " + path);
  }
}

bool campaign_declared(const SnapshotMeta& meta) {
  return !meta.campaign_label.empty() || meta.campaign_epoch_days != 0;
}

void validate_campaign_chain(const std::vector<SnapshotMeta>& members) {
  const SnapshotMeta* prev = nullptr;        // last declared member
  const SnapshotMeta* prev_epoch = nullptr;  // last declared member with a non-zero epoch
  const SnapshotMeta* prev_proto = nullptr;  // last member with a declared protocol mask
  for (const SnapshotMeta& member : members) {
    // Protocol sets must agree across the whole chain: a series mixing an
    // OPC-UA-only campaign with a mixed-fleet one would diff incomparable
    // populations. Mask 0 (pre-protocol files) anchors nothing.
    if (member.protocol_mask != 0) {
      if (prev_proto != nullptr && prev_proto->protocol_mask != member.protocol_mask) {
        throw SnapshotError("campaign chain: campaign '" + member.campaign_label + "' scans " +
                            protocol_set_name(member.protocol_mask) +
                            " but its predecessor '" + prev_proto->campaign_label + "' scans " +
                            protocol_set_name(prev_proto->protocol_mask));
      }
      prev_proto = &member;
    }
    if (!campaign_declared(member)) continue;  // legacy input: nothing to anchor
    if (prev != nullptr && prev->campaign_label == member.campaign_label &&
        prev->campaign_epoch_days == member.campaign_epoch_days) {
      throw SnapshotError("campaign chain: consecutive members declare the same campaign '" +
                          member.campaign_label + "'");
    }
    // Epochs compare against the last member that *declared* one, so a
    // label-only member in between cannot hide a time-reversed series.
    if (prev_epoch != nullptr && member.campaign_epoch_days != 0 &&
        member.campaign_epoch_days <= prev_epoch->campaign_epoch_days) {
      throw SnapshotError("campaign chain: campaign '" + member.campaign_label + "' (epoch " +
                          std::to_string(member.campaign_epoch_days) +
                          ") is not after its predecessor '" + prev_epoch->campaign_label +
                          "' (epoch " + std::to_string(prev_epoch->campaign_epoch_days) + ")");
    }
    prev = &member;
    if (member.campaign_epoch_days != 0) prev_epoch = &member;
  }
}

}  // namespace opcua_study
