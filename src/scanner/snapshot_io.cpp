#include "scanner/snapshot_io.hpp"

#include <fstream>

#include "opcua/encoding.hpp"

namespace opcua_study {

namespace {

constexpr std::uint32_t kMagic = 0x4f554153;  // "OUAS"
constexpr std::uint32_t kVersion = 4;

void write_host(UaWriter& w, const HostScanRecord& host) {
  w.u32(host.ip);
  w.u16(host.port);
  w.u32(host.asn);
  w.boolean(host.tcp_open);
  w.boolean(host.speaks_opcua);
  w.boolean(host.found_via_reference);
  w.string(host.application_uri);
  w.string(host.product_uri);
  w.string(host.application_name);
  w.u32(static_cast<std::uint32_t>(host.application_type));
  w.string(host.software_version);
  w.u32(static_cast<std::uint32_t>(host.endpoints.size()));
  for (const auto& ep : host.endpoints) {
    w.string(ep.url);
    w.u32(static_cast<std::uint32_t>(ep.mode));
    w.string(ep.policy_uri);
    w.u32(static_cast<std::uint32_t>(ep.token_types.size()));
    for (const auto t : ep.token_types) w.u32(static_cast<std::uint32_t>(t));
    w.byte_string(ep.certificate_der);
  }
  w.u32(static_cast<std::uint32_t>(host.referenced_targets.size()));
  for (const auto& [ip, port] : host.referenced_targets) {
    w.u32(ip);
    w.u16(port);
  }
  w.u32(static_cast<std::uint32_t>(host.channel));
  w.u32(static_cast<std::uint32_t>(host.channel_policy));
  w.u32(static_cast<std::uint32_t>(host.channel_mode));
  w.boolean(host.server_signature_valid);
  w.boolean(host.anonymous_offered);
  w.u32(static_cast<std::uint32_t>(host.session));
  w.string_array(host.namespaces);
  w.u32(static_cast<std::uint32_t>(host.nodes.size()));
  for (const auto& node : host.nodes) {
    w.string(node.browse_name);
    w.u32(static_cast<std::uint32_t>(node.node_class));
    w.boolean(node.readable);
    w.boolean(node.writable);
    w.boolean(node.executable);
  }
  w.boolean(host.traversal_truncated);
  w.u64(host.bytes_sent);
  w.f64(host.duration_seconds);
}

HostScanRecord read_host(UaReader& r) {
  HostScanRecord host;
  host.ip = r.u32();
  host.port = r.u16();
  host.asn = r.u32();
  host.tcp_open = r.boolean();
  host.speaks_opcua = r.boolean();
  host.found_via_reference = r.boolean();
  host.application_uri = r.string();
  host.product_uri = r.string();
  host.application_name = r.string();
  host.application_type = static_cast<ApplicationType>(r.u32());
  host.software_version = r.string();
  const std::uint32_t n_eps = r.u32();
  for (std::uint32_t i = 0; i < n_eps; ++i) {
    EndpointObservation ep;
    ep.url = r.string();
    ep.mode = static_cast<MessageSecurityMode>(r.u32());
    ep.policy_uri = r.string();
    if (const auto policy = policy_from_uri(ep.policy_uri)) {
      ep.policy = *policy;
      ep.policy_known = true;
    }
    const std::uint32_t n_tokens = r.u32();
    for (std::uint32_t t = 0; t < n_tokens; ++t) {
      ep.token_types.push_back(static_cast<UserTokenType>(r.u32()));
    }
    ep.certificate_der = r.byte_string();
    host.endpoints.push_back(std::move(ep));
  }
  const std::uint32_t n_refs = r.u32();
  for (std::uint32_t i = 0; i < n_refs; ++i) {
    const Ipv4 ip = r.u32();
    const std::uint16_t port = r.u16();
    host.referenced_targets.emplace_back(ip, port);
  }
  host.channel = static_cast<ChannelOutcome>(r.u32());
  host.channel_policy = static_cast<SecurityPolicy>(r.u32());
  host.channel_mode = static_cast<MessageSecurityMode>(r.u32());
  host.server_signature_valid = r.boolean();
  host.anonymous_offered = r.boolean();
  host.session = static_cast<SessionOutcome>(r.u32());
  host.namespaces = r.string_array();
  const std::uint32_t n_nodes = r.u32();
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    NodeObservation node;
    node.browse_name = r.string();
    node.node_class = static_cast<NodeClass>(r.u32());
    node.readable = r.boolean();
    node.writable = r.boolean();
    node.executable = r.boolean();
    host.nodes.push_back(std::move(node));
  }
  host.traversal_truncated = r.boolean();
  host.bytes_sent = r.u64();
  host.duration_seconds = r.f64();
  return host;
}

}  // namespace

void save_snapshots(const std::string& path, std::uint64_t seed,
                    const std::vector<ScanSnapshot>& snapshots) {
  UaWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(seed);
  w.u32(static_cast<std::uint32_t>(snapshots.size()));
  for (const auto& snapshot : snapshots) {
    w.i32(snapshot.measurement_index);
    w.i64(snapshot.date_days);
    w.u64(snapshot.probes_sent);
    w.u64(snapshot.tcp_open_count);
    w.u32(static_cast<std::uint32_t>(snapshot.hosts.size()));
    for (const auto& host : snapshot.hosts) write_host(w, host);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const Bytes& data = w.bytes();
  out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
}

std::optional<std::vector<ScanSnapshot>> load_snapshots(const std::string& path,
                                                        std::uint64_t seed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  try {
    UaReader r(data);
    if (r.u32() != kMagic || r.u32() != kVersion || r.u64() != seed) return std::nullopt;
    const std::uint32_t count = r.u32();
    std::vector<ScanSnapshot> snapshots;
    snapshots.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ScanSnapshot snapshot;
      snapshot.measurement_index = r.i32();
      snapshot.date_days = r.i64();
      snapshot.probes_sent = r.u64();
      snapshot.tcp_open_count = r.u64();
      const std::uint32_t n_hosts = r.u32();
      for (std::uint32_t h = 0; h < n_hosts; ++h) snapshot.hosts.push_back(read_host(r));
      snapshots.push_back(std::move(snapshot));
    }
    if (!r.done()) return std::nullopt;
    return snapshots;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace opcua_study
