#include "scanner/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace opcua_study {

ScanScheduler::ScanScheduler(GrabberConfig config, Network& network, std::uint64_t seed,
                             std::size_t max_in_flight)
    : config_(std::move(config)),
      network_(network),
      seed_(seed),
      max_in_flight_(std::max<std::size_t>(1, max_in_flight)) {}

void ScanScheduler::enqueue(Ipv4 ip, std::uint16_t port, ProtocolId protocol) {
  pending_.push_back(Target{ip, port, protocol});
}

void ScanScheduler::launch_next() {
  if (pending_.empty()) return;
  const Target target = pending_.front();
  pending_.pop_front();
  const std::size_t result_index = next_result_++;
  // The registry supplies the state machine; the id sequence is shared
  // across backends, so a mixed fleet assigns the same ids — and draws the
  // same task-keyed RNG streams — as any other launch of the same sweep.
  std::shared_ptr<ProbeTask> task = protocol_probe(target.protocol)
                                        .make_task(config_, network_, seed_, ++task_counter_,
                                                   target.ip, target.port);
  obs::add(obs::Metric::scan_tasks_launched, 1, static_cast<unsigned>(target.protocol));
  obs::gauge_peak(obs::Metric::scheduler_in_flight_peak, next_result_ - completed_);
  // First step fires "now": the sweep already paid the probe cost.
  network_.scheduler().schedule_in(0, [this, task, result_index] {
    step_task(task, result_index);
  });
}

void ScanScheduler::step_task(const std::shared_ptr<ProbeTask>& task,
                              std::size_t result_index) {
  obs::add(obs::Metric::scan_task_wakeups);
  const ProbeTask::Step step = task->step();
  if (!step.done) {
    network_.scheduler().schedule_in(step.wait_us, [this, task, result_index] {
      step_task(task, result_index);
    });
    return;
  }
  // The grab completes wait_us in the future (the final exchanges' cost);
  // only then does its in-flight slot free up for the next pending host.
  network_.scheduler().schedule_in(step.wait_us, [this, task, result_index] {
    results_[result_index] = task->take_record();
    if (obs::enabled()) {
      const HostScanRecord& record = results_[result_index];
      // Task-local duration: invariant across in-flight windows and shard
      // layouts, unlike the global event-heap timeline.
      obs::observe_us(obs::Metric::scan_completion_us,
                      static_cast<std::uint64_t>(record.duration_seconds * 1e6),
                      static_cast<unsigned>(record.protocol));
    }
    if (obs::trace_enabled()) {
      const HostScanRecord& record = results_[result_index];
      obs::trace(obs::TraceEvent::host_complete, network_.clock().now_us(), record.ip,
                 record.port, static_cast<std::uint64_t>(record.completeness), record.retries);
    }
    ++completed_;
    launch_next();
  });
}

std::vector<HostScanRecord> ScanScheduler::drain() {
  results_.clear();
  results_.resize(pending_.size());
  next_result_ = 0;
  completed_ = 0;
  const std::size_t initial = std::min(max_in_flight_, pending_.size());
  for (std::size_t i = 0; i < initial; ++i) launch_next();
  while (completed_ < results_.size()) {
    if (!network_.scheduler().run_next()) break;  // heap drained unexpectedly
  }
  return std::move(results_);
}

}  // namespace opcua_study
