#include "scanner/scheduler.hpp"

#include <algorithm>

namespace opcua_study {

ScanScheduler::ScanScheduler(GrabberConfig config, Network& network, std::uint64_t seed,
                             std::size_t max_in_flight)
    : config_(std::move(config)),
      network_(network),
      seed_(seed),
      max_in_flight_(std::max<std::size_t>(1, max_in_flight)) {}

void ScanScheduler::enqueue(Ipv4 ip, std::uint16_t port) { pending_.emplace_back(ip, port); }

void ScanScheduler::launch_next() {
  if (pending_.empty()) return;
  const auto [ip, port] = pending_.front();
  pending_.pop_front();
  const std::size_t result_index = next_result_++;
  auto task = std::make_shared<HostGrabTask>(config_, network_, seed_, ++task_counter_, ip, port);
  // First step fires "now": the sweep already paid the probe cost.
  network_.scheduler().schedule_in(0, [this, task, result_index] {
    step_task(task, result_index);
  });
}

void ScanScheduler::step_task(const std::shared_ptr<HostGrabTask>& task,
                              std::size_t result_index) {
  const HostGrabTask::Step step = task->step();
  if (!step.done) {
    network_.scheduler().schedule_in(step.wait_us, [this, task, result_index] {
      step_task(task, result_index);
    });
    return;
  }
  // The grab completes wait_us in the future (the final exchanges' cost);
  // only then does its in-flight slot free up for the next pending host.
  network_.scheduler().schedule_in(step.wait_us, [this, task, result_index] {
    results_[result_index] = task->take_record();
    ++completed_;
    launch_next();
  });
}

std::vector<HostScanRecord> ScanScheduler::drain() {
  results_.clear();
  results_.resize(pending_.size());
  next_result_ = 0;
  completed_ = 0;
  const std::size_t initial = std::min(max_in_flight_, pending_.size());
  for (std::size_t i = 0; i < initial; ++i) launch_next();
  while (completed_ < results_.size()) {
    if (!network_.scheduler().run_next()) break;  // heap drained unexpectedly
  }
  return std::move(results_);
}

}  // namespace opcua_study
