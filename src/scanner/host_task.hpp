// Resumable per-host grab — the zgrab2 OPC UA module as an explicit state
// machine.
//
// One task owns the full grab pipeline of a single host (paper §4):
// HEL → OPN(None) + GetEndpoints → secure-channel re-probe with the
// scanner's certificate → anonymous session → paced address-space
// traversal. Instead of blocking between paced requests, the task yields:
// step() executes one unit of protocol work against a *deferred*
// connection (netsim charges RTT + transfer time to the connection, not to
// the global clock) and returns how much simulated time must pass before
// the next step. The ScanScheduler converts those waits into events on the
// Network's event heap, keeping hundreds of hosts in flight at once; the
// Grabber compatibility shim instead advances the clock in lock-step.
//
// Every budget decision (500 ms pacing, 60 min / 50 MB caps, §A.2) is made
// against the task's *local* timeline, which makes a host's record — bytes,
// duration, truncation — independent of how many other hosts are in flight.
//
// On a fault-injected Network (netsim/faults.hpp) the task is resilient:
// every request runs under a per-request timeout budget, failures that the
// connection attributes to injected faults are retried with exponential
// backoff plus deterministic jitter (drawn from the endpoint-keyed
// "retry-<ip>:<port>" stream), a mid-assessment reset reconnects and
// resumes the traversal
// where it left off, and hosts that exhaust their retry budget finish with
// a graded ProbeOutcome instead of a crash. None of this machinery draws
// RNG or charges time on a fault-free network, so fault-free records stay
// byte-identical to the pre-fault engine.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>

#include "netsim/network.hpp"
#include "opcua/client.hpp"
#include "scanner/grabber.hpp"
#include "scanner/protocol.hpp"
#include "scanner/record.hpp"
#include "util/rng.hpp"

namespace opcua_study {

/// Parse "opc.tcp://a.b.c.d:port/..." into (ip, port). Kept as an alias of
/// the scheme-aware parse_endpoint_url (scanner/protocol.hpp), restricted
/// to the OPC UA scheme exactly like the original parser.
std::optional<std::pair<Ipv4, std::uint16_t>> parse_opc_url(const std::string& url);

class HostGrabTask : public ProbeTask {
 public:
  using Step = ProbeTask::Step;

  /// `task_id` feeds the per-grab RNG streams ("grab-N" / "sess-N"); the
  /// scheduler assigns ids in launch order so a concurrent campaign draws
  /// the same nonces as the sequential one. `config` must outlive the task
  /// (it holds the scanner identity — certificate + key — shared by every
  /// host in flight).
  HostGrabTask(const GrabberConfig& config, Network& network, std::uint64_t seed,
               std::uint64_t task_id, Ipv4 ip, std::uint16_t port);
  ~HostGrabTask() override;

  HostGrabTask(const HostGrabTask&) = delete;
  HostGrabTask& operator=(const HostGrabTask&) = delete;

  /// Execute the next unit of work (everything up to the next pacing gap).
  Step step() override;

  bool done() const override { return phase_ == Phase::Done; }
  Ipv4 ip() const { return ip_; }
  std::uint16_t port() const { return port_; }
  /// Task-local simulated time since the task started.
  std::uint64_t elapsed_us() const { return elapsed_us_; }
  const HostScanRecord& record() const { return record_; }
  HostScanRecord take_record() override { return std::move(record_); }

 private:
  enum class Phase {
    Discovery,       // connect + HEL + OPN(None) + GetEndpoints
    SecureProbe,     // reconnect on the strongest endpoint + session
    ReadNamespaces,  // paced NamespaceArray read
    ReadVersion,     // paced SoftwareVersion read
    TraverseBrowse,  // paced Browse of the current node
    TraverseRead,    // paced UserAccessLevel / UserExecutable read
    Reconnect,       // re-establish channel + session, then resume_phase_
    Done,
  };

  Step step_discovery();
  Step step_secure_probe();
  Step step_read_namespaces();
  Step step_read_version();
  /// The breadth-first traversal loop; `browse_first` resumes after the
  /// paced Browse wake-up.
  Step traverse_loop(bool browse_first);
  Step step_traverse_read();
  Step step_reconnect();

  // ---- fault resilience (no-ops on a fault-free network) ----
  /// Schedule a retry of `next` after the backoff delay. When
  /// `drop_connection`, the current connection's time/bytes/faults are
  /// banked first and the client is torn down.
  Step retry_to(Phase next, bool drop_connection);
  /// A NetTimeout/NetReset escaped the current phase: pick the retry target
  /// (same phase, or Reconnect for mid-assessment faults) or give up.
  Step on_net_fault();
  /// Retry budget exhausted: grade the record by how far we got and finish.
  Step give_up();
  Step reconnect_failed();
  bool can_retry() const;
  std::uint64_t backoff_us();
  std::uint64_t connect_timeout_us() const;
  /// True (and banks the count) when the connection saw injected faults we
  /// have not yet accounted — the signal that a bad status is retryable.
  bool fresh_fault();
  void note_faults(std::uint32_t n);
  void degrade(ProbeOutcome grade);
  void reset_discovery_state();
  void reset_probe_state();

  /// Move the connection's deferred time into this step's consumption.
  void charge(NetConnection& conn) { consumed_us_ += conn.take_elapsed(); }
  /// End the step: bank consumed time (+ pacing) and report it to the caller.
  Step yield(std::uint64_t pace_us, Phase next);
  Step finish(bool with_duration);
  Step finish_assess();
  bool budget_exhausted() const;
  const EndpointObservation* strongest_endpoint() const;

  const GrabberConfig& config_;
  Network& network_;
  std::uint64_t seed_;
  std::uint64_t task_id_;
  Ipv4 ip_;
  std::uint16_t port_;
  std::string url_;

  Phase phase_ = Phase::Discovery;
  HostScanRecord record_;
  std::uint64_t elapsed_us_ = 0;        // task-local clock
  std::uint64_t consumed_us_ = 0;       // charged during the current step
  std::uint64_t assess_start_us_ = 0;   // elapsed_us_ when SecureProbe began

  // Retry state. retry_rng_ is the endpoint-keyed "retry-<ip>:<port>"
  // jitter stream; it is only ever drawn when a retry actually happens.
  Rng retry_rng_;
  int attempt_ = 0;                     // retries spent on the current unit
  Phase resume_phase_ = Phase::Done;    // where Reconnect returns to
  std::uint32_t conn_faults_seen_ = 0;  // faults already banked on conn_
  std::uint32_t reconnects_ = 0;        // feeds the re-probe RNG stream label

  std::unique_ptr<NetConnection> conn_;  // declared before client_: client
  std::unique_ptr<Client> client_;       // holds a reference to *conn_

  // Traversal state (mirrors the former Grabber::traverse locals).
  std::deque<NodeId> queue_;
  std::set<NodeId> visited_;
  NodeId current_node_;
  std::vector<ReferenceDescription> refs_;
  std::size_t ref_index_ = 0;
  NodeObservation pending_obs_;
  AttributeId pending_attr_ = AttributeId::Value;
};

}  // namespace opcua_study
