// The interleaved campaign scheduler — the zmap/zgrab2 "thousands of hosts
// in flight" model for the simulated Internet.
//
// Hosts are enqueued in sweep order; up to `max_in_flight` of them hold a
// live HostGrabTask at any instant. Each task's pacing gaps (500 ms between
// requests, §A.2) become wake-up events on the Network's event heap instead
// of blocking clock advances, so the simulated wall-clock of a campaign is
// the *overlap* of the per-host timelines — the same reason the paper's
// weekly sweep fits a 24 h window despite 110 s average per-host time.
//
// Determinism: task ids are assigned in launch order (the RNG stream of a
// grab depends only on its id) and every budget decision is task-local, so
// the records a campaign produces are identical for any max_in_flight — a
// property the regression tests pin down. With max_in_flight = 1 the event
// timeline degenerates to the sequential scanner's, byte for byte.
//
// The scheduler is protocol-agnostic: every target names a registered
// ProtocolProbe backend and the scheduler drives whatever ProbeTask the
// registry hands back. Heterogeneous targets (OPC UA + MQTT/TLS) share
// one event heap and one id sequence, so a mixed fleet interleaves
// deterministically under the same launch-order contract.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "scanner/host_task.hpp"
#include "scanner/protocol.hpp"

namespace opcua_study {

class ScanScheduler {
 public:
  ScanScheduler(GrabberConfig config, Network& network, std::uint64_t seed,
                std::size_t max_in_flight = 256);

  /// Queue a host for grabbing. Order matters: ids (and therefore RNG
  /// streams) are assigned in this order. `protocol` selects the registry
  /// backend that drives the grab; the default keeps the historic
  /// OPC UA-only call sites unchanged.
  void enqueue(Ipv4 ip, std::uint16_t port, ProtocolId protocol = ProtocolId::opcua);

  /// Run until every queued host is done; returns records in enqueue
  /// order. May be called again after feeding more targets (the campaign's
  /// reference-following wave reuses the scheduler, continuing the id
  /// sequence exactly like the sequential scanner's grab counter did).
  std::vector<HostScanRecord> drain();

  std::size_t max_in_flight() const { return max_in_flight_; }
  std::uint64_t tasks_launched() const { return task_counter_; }

 private:
  struct Target {
    Ipv4 ip = 0;
    std::uint16_t port = 0;
    ProtocolId protocol = ProtocolId::opcua;
  };

  void launch_next();
  void step_task(const std::shared_ptr<ProbeTask>& task, std::size_t result_index);

  GrabberConfig config_;
  Network& network_;
  std::uint64_t seed_;
  std::size_t max_in_flight_;
  std::uint64_t task_counter_ = 0;

  std::deque<Target> pending_;
  std::vector<HostScanRecord> results_;
  std::size_t next_result_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace opcua_study
