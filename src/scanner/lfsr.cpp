#include "scanner/lfsr.hpp"

#include <stdexcept>

namespace opcua_study {

namespace {

// Maximal-length tap masks for right-shift Galois LFSRs (taps from the
// standard XAPP052 table; bit t-1 set for each tap t).
constexpr std::uint32_t tap_mask(int width) {
  switch (width) {
    case 4: return (1u << 3) | (1u << 2);                                  // 4,3
    case 5: return (1u << 4) | (1u << 2);                                  // 5,3
    case 6: return (1u << 5) | (1u << 4);                                  // 6,5
    case 7: return (1u << 6) | (1u << 5);                                  // 7,6
    case 8: return (1u << 7) | (1u << 5) | (1u << 4) | (1u << 3);          // 8,6,5,4
    case 9: return (1u << 8) | (1u << 4);                                  // 9,5
    case 10: return (1u << 9) | (1u << 6);                                 // 10,7
    case 11: return (1u << 10) | (1u << 8);                                // 11,9
    case 12: return (1u << 11) | (1u << 10) | (1u << 9) | (1u << 3);       // 12,11,10,4
    case 13: return (1u << 12) | (1u << 11) | (1u << 10) | (1u << 7);      // 13,12,11,8
    case 14: return (1u << 13) | (1u << 12) | (1u << 11) | (1u << 1);      // 14,13,12,2
    case 15: return (1u << 14) | (1u << 13);                               // 15,14
    case 16: return (1u << 15) | (1u << 14) | (1u << 12) | (1u << 3);      // 16,15,13,4
    case 17: return (1u << 16) | (1u << 13);                               // 17,14
    case 18: return (1u << 17) | (1u << 10);                               // 18,11
    case 19: return (1u << 18) | (1u << 17) | (1u << 16) | (1u << 13);     // 19,18,17,14
    case 20: return (1u << 19) | (1u << 16);                               // 20,17
    case 21: return (1u << 20) | (1u << 18);                               // 21,19
    case 22: return (1u << 21) | (1u << 20);                               // 22,21
    case 23: return (1u << 22) | (1u << 17);                               // 23,18
    case 24: return (1u << 23) | (1u << 22) | (1u << 21) | (1u << 16);     // 24,23,22,17
    case 25: return (1u << 24) | (1u << 21);                               // 25,22
    case 26: return (1u << 25) | (1u << 24) | (1u << 23) | (1u << 19);     // 26,25,24,20
    case 27: return (1u << 26) | (1u << 25) | (1u << 24) | (1u << 21);     // 27,26,25,22
    case 28: return (1u << 27) | (1u << 24);                               // 28,25
    case 29: return (1u << 28) | (1u << 26);                               // 29,27
    case 30: return (1u << 29) | (1u << 28) | (1u << 27) | (1u << 6);      // 30,29,28,7
    case 31: return (1u << 30) | (1u << 27);                               // 31,28
    case 32: return (1u << 31) | (1u << 21) | (1u << 1) | (1u << 0);       // 32,22,2,1
    default: return 0;
  }
}

}  // namespace

LfsrSequence::LfsrSequence(int width, std::uint32_t seed) : width_(width), mask_(tap_mask(width)) {
  if (mask_ == 0) throw std::invalid_argument("LFSR width must be in [4, 32]");
  const std::uint32_t range_mask =
      width >= 32 ? 0xffffffffu : ((std::uint32_t{1} << width) - 1);
  state_ = seed & range_mask;
  if (state_ == 0) state_ = 1;
}

std::uint32_t LfsrSequence::next() {
  const std::uint32_t out = state_;
  state_ = (state_ >> 1) ^ ((~((state_ & 1u) - 1u)) & mask_);
  return out;
}

AddressSweep::AddressSweep(const Cidr& universe, std::uint64_t seed)
    : base_(universe.first()),
      size_(universe.size()),
      width_(32 - universe.prefix_len),
      lfsr_(width_ < 4 ? 4 : width_, static_cast<std::uint32_t>(seed ^ (seed >> 32)) | 1u) {}

std::optional<Ipv4> AddressSweep::next() {
  if (emitted_ >= size_) return std::nullopt;
  // Emit offset 0 first (LFSRs never visit 0), then walk the LFSR cycle,
  // cycle-walking past states outside small universes (< 16 addresses).
  if (!zero_emitted_) {
    zero_emitted_ = true;
    ++emitted_;
    return base_;
  }
  for (;;) {
    const std::uint32_t state = lfsr_.next();
    if (state < size_) {
      ++emitted_;
      return base_ + state;
    }
  }
}

}  // namespace opcua_study
