#include "scanner/record.hpp"

#include <algorithm>

#include "crypto/x509.hpp"

namespace opcua_study {

std::string protocol_name(ProtocolId id) {
  switch (id) {
    case ProtocolId::opcua: return "opcua";
    case ProtocolId::mqtt_tls: return "mqtt-tls";
  }
  return "protocol-" + std::to_string(static_cast<unsigned>(id));
}

std::vector<MessageSecurityMode> HostScanRecord::advertised_modes() const {
  std::vector<MessageSecurityMode> out;
  for (const auto& ep : endpoints) {
    if (std::find(out.begin(), out.end(), ep.mode) == out.end()) out.push_back(ep.mode);
  }
  return out;
}

std::vector<SecurityPolicy> HostScanRecord::advertised_policies() const {
  std::vector<SecurityPolicy> out;
  for (const auto& ep : endpoints) {
    if (!ep.policy_known) continue;
    if (std::find(out.begin(), out.end(), ep.policy) == out.end()) out.push_back(ep.policy);
  }
  return out;
}

std::vector<UserTokenType> HostScanRecord::advertised_token_types() const {
  std::vector<UserTokenType> out;
  for (const auto& ep : endpoints) {
    for (UserTokenType t : ep.token_types) {
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Bytes> HostScanRecord::distinct_certificates() const {
  std::vector<Bytes> out;
  for (const auto& ep : endpoints) {
    if (ep.certificate_der.empty()) continue;
    if (std::find(out.begin(), out.end(), ep.certificate_der) == out.end()) {
      out.push_back(ep.certificate_der);
    }
  }
  return out;
}

std::vector<std::uint64_t> HostScanRecord::distinct_cert_fingerprints() const {
  std::vector<std::uint64_t> out;
  for_each_distinct_certificate(
      [&](std::span<const std::uint8_t> der) { out.push_back(certificate_fingerprint64(der)); });
  return out;
}

std::size_t ScanSnapshot::server_count() const {
  std::size_t n = 0;
  for (const auto& host : hosts) {
    if (!host.is_discovery_server()) ++n;
  }
  return n;
}

std::size_t ScanSnapshot::discovery_count() const {
  std::size_t n = 0;
  for (const auto& host : hosts) {
    if (host.is_discovery_server()) ++n;
  }
  return n;
}

}  // namespace opcua_study
