// Event scheduler for the simulated Internet.
//
// The concurrent scan engine keeps hundreds of hosts in flight at once by
// modelling every pending action (a paced request, a task wake-up, a grab
// completion) as a timed event on a min-heap. Popping the earliest event
// advances the simulated clock to the event's timestamp, so simulated time
// is the max over all interleaved per-host timelines instead of their sum —
// exactly how the paper's zmap/zgrab2 deployment spreads thousands of
// in-flight hosts across a 24 h scan window (§A.2). See DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netsim/clock.hpp"

namespace opcua_study {

class EventScheduler {
 public:
  using Callback = std::function<void()>;

  explicit EventScheduler(SimClock& clock) : clock_(clock) {}

  /// Run `fn` once the clock reaches `at_us` (clamped to "not in the past").
  void schedule_at(std::uint64_t at_us, Callback fn);
  /// Run `fn` after `delay_us` microseconds of simulated time.
  void schedule_in(std::uint64_t delay_us, Callback fn);

  /// Pop the earliest event, advance the clock to its timestamp, run it.
  /// Returns false when no event is pending. Events scheduled for the same
  /// microsecond run in FIFO order.
  bool run_next();

  /// Drain the heap; returns the number of events executed.
  std::size_t run_until_idle();

  std::size_t pending() const { return heap_.size(); }
  bool idle() const { return heap_.empty(); }

 private:
  struct Event {
    std::uint64_t at_us = 0;
    std::uint64_t seq = 0;  // FIFO tie-break for simultaneous events
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;
    }
  };

  SimClock& clock_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;  // managed with std::push_heap / std::pop_heap
};

}  // namespace opcua_study
