#include "netsim/event.hpp"

#include <algorithm>

namespace opcua_study {

void EventScheduler::schedule_at(std::uint64_t at_us, Callback fn) {
  heap_.push_back(Event{std::max(at_us, clock_.now_us()), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventScheduler::schedule_in(std::uint64_t delay_us, Callback fn) {
  schedule_at(clock_.now_us() + delay_us, std::move(fn));
}

bool EventScheduler::run_next() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  clock_.advance_to(event.at_us);
  event.fn();
  return true;
}

std::size_t EventScheduler::run_until_idle() {
  std::size_t executed = 0;
  while (run_next()) ++executed;
  return executed;
}

}  // namespace opcua_study
