// A simulated MQTT-over-TLS broker behind a netsim listener — the second
// protocol family of the plugin scan layer (scanner/protocol.hpp).
//
// The simulation keeps the TLS handshake at posture granularity: the
// broker answers a client hello with its certificate DER, its TLS profile
// (modern vs. legacy/deprecated suites) and the authentication methods it
// accepts — exactly the facts an Internet-wide TLS/MQTT scan records
// (cf. "Missed Opportunities", PAM 2022). The MQTT layer then accepts or
// refuses an anonymous CONNECT and, for accessible brokers, answers a
// $SYS read with its version banner and announced topic prefixes.
//
// Frames ride the existing message-per-roundtrip netsim transport, OPC UA
// binary primitive encoding (UaWriter/UaReader), each frame led by a
// 4-byte magic: MQHL/MQHA (hello), MQCO/MQCA (connect), MQSR/MQSV ($SYS).
#pragma once

#include <memory>

#include "netsim/network.hpp"
#include "opcua/encoding.hpp"

namespace opcua_study {

namespace mqtt_auth {
inline constexpr std::uint8_t kAnonymous = 1u << 0;
inline constexpr std::uint8_t kPassword = 1u << 1;
inline constexpr std::uint8_t kClientCert = 1u << 2;
}  // namespace mqtt_auth

/// Everything one simulated broker presents on the wire.
struct MqttBrokerConfig {
  Bytes certificate_der;
  /// true: only deprecated TLS suites (the posture analog of a deprecated
  /// OPC UA security policy).
  bool legacy_tls = false;
  std::uint8_t auth_mask = mqtt_auth::kPassword;
  std::string software_version = "mosquitto/1.6.9";
  /// Announced topic prefixes, returned on the $SYS read.
  std::vector<std::string> topics;
};

class MqttTlsService : public ConnectionHandler {
 public:
  explicit MqttTlsService(std::shared_ptr<const MqttBrokerConfig> config)
      : config_(std::move(config)) {}

  Bytes on_message(std::span<const std::uint8_t> request) override;
  bool closed() const override { return closed_; }

 private:
  std::shared_ptr<const MqttBrokerConfig> config_;
  bool hello_done_ = false;
  bool session_up_ = false;
  bool closed_ = false;
};

inline HandlerFactory make_mqtt_factory(std::shared_ptr<const MqttBrokerConfig> config) {
  return [config = std::move(config)]() -> std::unique_ptr<ConnectionHandler> {
    return std::make_unique<MqttTlsService>(config);
  };
}

}  // namespace opcua_study
