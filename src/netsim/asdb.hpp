// Autonomous-system database: prefix → ASN mapping.
//
// §B.1.2 of the paper breaks configuration deficits down by AS and finds
// (i) an "(I)IoT ISP" AS concentrating weak-certificate and reused-
// certificate hosts and (ii) two regional ISPs concentrating deprecated
// policies + anonymous access. The simulated Internet assigns prefixes to
// ASes so those breakdowns can be reproduced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ipv4.hpp"

namespace opcua_study {

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
};

class AsDatabase {
 public:
  void add(const Cidr& prefix, AsInfo info);
  /// Longest-prefix match; nullptr when unrouted.
  const AsInfo* lookup(Ipv4 addr) const;
  std::uint32_t asn_of(Ipv4 addr) const;  // 0 when unrouted
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Cidr prefix;
    AsInfo info;
  };
  std::vector<Entry> entries_;
};

}  // namespace opcua_study
