#include "netsim/mqtt_service.hpp"

namespace opcua_study {

namespace {

constexpr std::uint32_t kHello = 0x4c48514du;     // 'MQHL'
constexpr std::uint32_t kHelloAck = 0x4148514du;  // 'MQHA'
constexpr std::uint32_t kConnect = 0x4f43514du;   // 'MQCO'
constexpr std::uint32_t kConnAck = 0x4143514du;   // 'MQCA'
constexpr std::uint32_t kSysRead = 0x5253514du;   // 'MQSR'
constexpr std::uint32_t kSysVal = 0x5653514du;    // 'MQSV'

constexpr std::uint8_t kConnAccepted = 0;
constexpr std::uint8_t kConnNotAuthorized = 5;

}  // namespace

Bytes MqttTlsService::on_message(std::span<const std::uint8_t> request) {
  UaReader r(request);
  std::uint32_t magic = 0;
  try {
    magic = r.u32();
  } catch (const DecodeError&) {
    closed_ = true;
    return {};
  }

  if (magic == kHello && !hello_done_) {
    hello_done_ = true;
    UaWriter w;
    w.u32(kHelloAck);
    w.byte(config_->legacy_tls ? 1 : 0);
    w.byte(config_->auth_mask);
    w.byte_string(config_->certificate_der);
    w.string(config_->software_version);
    return w.take();
  }
  if (magic == kConnect && hello_done_ && !session_up_) {
    std::uint8_t credentials = 0;
    try {
      credentials = r.byte();
    } catch (const DecodeError&) {
      closed_ = true;
      return {};
    }
    UaWriter w;
    w.u32(kConnAck);
    if (credentials == 0 && (config_->auth_mask & mqtt_auth::kAnonymous) != 0) {
      session_up_ = true;
      w.byte(kConnAccepted);
    } else {
      // Anonymous refused (or credential auth, which the scanner never
      // attempts): answer then close, like a broker dropping the client.
      closed_ = true;
      w.byte(kConnNotAuthorized);
    }
    return w.take();
  }
  if (magic == kSysRead && session_up_) {
    UaWriter w;
    w.u32(kSysVal);
    w.string(config_->software_version);
    w.string_array(config_->topics);
    return w.take();
  }

  closed_ = true;  // protocol violation: hang up
  return {};
}

}  // namespace opcua_study
