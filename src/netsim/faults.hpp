// Deterministic fault injection for the simulated Internet.
//
// A FaultPlan attaches to a Network and perturbs it the way a real scan
// target population would: dropped SYNs, listeners that flap away between
// discovery and grab, mid-session resets, response stalls long enough to
// trip client timeouts, and truncated/garbage replies. Every fault is drawn
// from a per-(ip, port) RNG stream derived from the plan seed, and each
// endpoint is only ever touched by its own (sequential) host task — so the
// injected fault sequence is a pure function of (seed, endpoint, the
// endpoint's own event order) and is bit-identical regardless of thread
// count, shard layout, or how many other hosts are in flight.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/ipv4.hpp"
#include "util/rng.hpp"

namespace opcua_study {

/// Base class for injected transport failures. Deliberately NOT a
/// DecodeError: the OPC UA Client converts DecodeError into status codes
/// (protocol-level rejection), while these must propagate to the scan task
/// so it can retry/reconnect.
class NetFault : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A request exceeded the connection's per-request timeout budget (e.g. an
/// injected response stall). The connection is desynced and unusable.
class NetTimeout : public NetFault {
  using NetFault::NetFault;
};

/// The peer reset the connection mid-session.
class NetReset : public NetFault {
  using NetFault::NetFault;
};

/// Fault probabilities and magnitudes. All probabilities default to zero:
/// a default-constructed profile is a no-op (and a Network without a plan
/// draws nothing at all, keeping fault-free runs byte-identical).
struct FaultProfile {
  /// P(connect attempt's SYN is dropped): the caller sees a timeout after
  /// connect_timeout_us instead of a SYN-ACK.
  double connect_drop = 0;
  /// P(listener refuses this attempt): service flapped — RST after one RTT
  /// even though the endpoint exists.
  double listener_flap = 0;
  /// P(an accepted connection is reset after N completed exchanges), with
  /// N drawn uniformly from [reset_after_min, reset_after_max].
  double reset = 0;
  std::uint32_t reset_after_min = 1;
  std::uint32_t reset_after_max = 4;
  /// P(a response stalls), adding stall_us of latency to the exchange. A
  /// stall longer than the client's request timeout surfaces as NetTimeout.
  double stall = 0;
  std::uint64_t stall_us = 30'000'000;  // 30 s — beyond any sane timeout
  /// P(a reply is truncated to a garbage prefix the client cannot decode).
  double truncate = 0;
  /// Simulated SYN retransmit window charged on a dropped connect.
  std::uint64_t connect_timeout_us = 5'000'000;

  bool enabled() const {
    return connect_drop > 0 || listener_flap > 0 || reset > 0 || stall > 0 || truncate > 0;
  }

  /// A moderately hostile network: every fault class fires, yet a bounded
  /// retry policy recovers the large majority of hosts. Used by the fault
  /// bench and the determinism tests.
  static FaultProfile hostile() {
    FaultProfile p;
    p.connect_drop = 0.08;
    p.listener_flap = 0.04;
    p.reset = 0.10;
    p.stall = 0.06;
    p.truncate = 0.06;
    return p;
  }
};

/// Seeded source of per-endpoint fault streams. Owned by a Network; the
/// stream for (ip, port) is created lazily on first contact and persists
/// for the Network's lifetime, so retries and later waves keep consuming
/// the same deterministic sequence.
class FaultPlan {
 public:
  struct Endpoint {
    Rng rng;
    explicit Endpoint(Rng r) : rng(r) {}
  };

  FaultPlan(std::uint64_t seed, FaultProfile profile)
      : seed_(seed), profile_(profile), root_(seed) {}

  std::uint64_t seed() const { return seed_; }
  const FaultProfile& profile() const { return profile_; }

  Endpoint& endpoint(Ipv4 ip, std::uint16_t port) {
    const std::uint64_t k = (static_cast<std::uint64_t>(ip) << 16) | port;
    auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
      it = endpoints_
               .emplace(k, Endpoint(root_.child("fault-" + format_ipv4(ip) + ":" +
                                                std::to_string(port))))
               .first;
    }
    return it->second;
  }

 private:
  std::uint64_t seed_;
  FaultProfile profile_;
  Rng root_;
  std::unordered_map<std::uint64_t, Endpoint> endpoints_;
};

}  // namespace opcua_study
