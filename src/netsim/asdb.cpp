#include "netsim/asdb.hpp"

namespace opcua_study {

void AsDatabase::add(const Cidr& prefix, AsInfo info) {
  entries_.push_back({prefix, std::move(info)});
}

const AsInfo* AsDatabase::lookup(Ipv4 addr) const {
  const Entry* best = nullptr;
  for (const auto& entry : entries_) {
    if (!entry.prefix.contains(addr)) continue;
    if (best == nullptr || entry.prefix.prefix_len > best->prefix.prefix_len) best = &entry;
  }
  return best == nullptr ? nullptr : &best->info;
}

std::uint32_t AsDatabase::asn_of(Ipv4 addr) const {
  const AsInfo* info = lookup(addr);
  return info == nullptr ? 0 : info->asn;
}

}  // namespace opcua_study
