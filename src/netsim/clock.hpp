// Simulated wall clock.
//
// The paper's ethics constraints are *time* constraints — 500 ms between
// requests to a host, 60 min / 50 MB caps per host, scans spread over 24 h.
// The simulation reproduces them against this clock instead of real time,
// so a full weekly sweep of the synthetic Internet runs in seconds while
// still exercising the same budget logic.
#pragma once

#include <cstdint>

#include "util/date.hpp"

namespace opcua_study {

class SimClock {
 public:
  /// Time starts at `start_days` (days since 1970) midnight.
  explicit SimClock(std::int64_t start_days = days_from_civil({2020, 2, 9}))
      : start_days_(start_days), micros_(0) {}

  void advance_us(std::uint64_t us) { micros_ += us; }
  void advance_ms(std::uint64_t ms) { micros_ += ms * 1000; }
  /// Move forward to an absolute timestamp; never goes backwards.
  void advance_to(std::uint64_t us) {
    if (us > micros_) micros_ = us;
  }

  std::uint64_t now_us() const { return micros_; }
  double now_seconds() const { return static_cast<double>(micros_) / 1e6; }
  std::int64_t today_days() const {
    return start_days_ + static_cast<std::int64_t>(micros_ / (86400ULL * 1000000ULL));
  }
  /// OPC UA DateTime (FILETIME ticks) for "now".
  std::int64_t now_filetime() const {
    return filetime_from_days(start_days_) + static_cast<std::int64_t>(micros_) * 10;
  }

  void reset(std::int64_t start_days) {
    start_days_ = start_days;
    micros_ = 0;
  }

 private:
  std::int64_t start_days_;
  std::uint64_t micros_;
};

}  // namespace opcua_study
