// The simulated IPv4 Internet.
//
// Hosts register listeners on (ip, port); the scanner probes and connects
// exactly as zmap/zgrab2 would. Connections are lock-step request/response
// byte pipes with a per-path RTT model and per-connection byte accounting
// (the paper reports 352 kB average outgoing traffic per host, §A.2).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "netsim/asdb.hpp"
#include "netsim/clock.hpp"
#include "opcua/transport.hpp"
#include "util/ipv4.hpp"

namespace opcua_study {

/// Server side of one TCP connection.
class ConnectionHandler {
 public:
  virtual ~ConnectionHandler() = default;
  /// One message in, one message out. Empty = peer closed the connection.
  virtual Bytes on_message(std::span<const std::uint8_t> request) = 0;
  virtual bool closed() const { return false; }
};

using HandlerFactory = std::function<std::unique_ptr<ConnectionHandler>()>;

class NetConnection;

class Network {
 public:
  Network();

  SimClock& clock() { return clock_; }
  AsDatabase& as_db() { return as_db_; }
  const AsDatabase& as_db() const { return as_db_; }

  void listen(Ipv4 ip, std::uint16_t port, HandlerFactory factory);
  void close_listener(Ipv4 ip, std::uint16_t port);
  bool is_listening(Ipv4 ip, std::uint16_t port) const;

  /// SYN probe: advances the clock by the path RTT; true = SYN-ACK.
  bool syn_probe(Ipv4 ip, std::uint16_t port);

  /// TCP connect; nullptr when the port is closed.
  std::unique_ptr<NetConnection> connect(Ipv4 ip, std::uint16_t port);

  /// All bound (ip, port) pairs — the "oracle sweep" ground truth used by
  /// the benches in place of a multi-minute 2^32 LFSR walk (see DESIGN.md).
  std::vector<std::pair<Ipv4, std::uint16_t>> bound_endpoints() const;
  std::size_t listener_count() const { return listeners_.size(); }

  /// Deterministic per-destination RTT in microseconds (10..150 ms).
  std::uint64_t rtt_us(Ipv4 ip) const;

  std::uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  std::uint64_t total_bytes_received() const { return total_bytes_received_; }

 private:
  friend class NetConnection;
  static std::uint64_t key(Ipv4 ip, std::uint16_t port) {
    return (static_cast<std::uint64_t>(ip) << 16) | port;
  }

  SimClock clock_;
  AsDatabase as_db_;
  std::unordered_map<std::uint64_t, HandlerFactory> listeners_;
  std::uint64_t total_bytes_sent_ = 0;
  std::uint64_t total_bytes_received_ = 0;
};

/// Client end of an established connection; implements the OPC UA client's
/// MessageTransport with clock + byte accounting.
class NetConnection : public MessageTransport {
 public:
  NetConnection(Network& net, Ipv4 peer, std::unique_ptr<ConnectionHandler> handler);

  Bytes roundtrip(const Bytes& request) override;
  void send_oneway(const Bytes& message) override;

  /// Outgoing traffic (scanner → host), the paper's per-host budget metric.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  bool peer_closed() const { return handler_ == nullptr || handler_->closed(); }
  Ipv4 peer() const { return peer_; }

 private:
  Network& net_;
  Ipv4 peer_;
  std::unique_ptr<ConnectionHandler> handler_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// A non-OPC-UA service occupying port 4840 (the paper: only 0.5 ‰ of hosts
/// with an open port 4840 actually speak OPC UA). Replies with an HTTP-ish
/// banner to whatever it receives, then closes.
class DummyBannerService : public ConnectionHandler {
 public:
  explicit DummyBannerService(std::string banner) : banner_(std::move(banner)) {}
  Bytes on_message(std::span<const std::uint8_t>) override;
  bool closed() const override { return served_; }

 private:
  std::string banner_;
  bool served_ = false;
};

}  // namespace opcua_study
