// The simulated IPv4 Internet.
//
// Hosts register listeners on (ip, port); the scanner probes and connects
// exactly as zmap/zgrab2 would. Connections are request/response byte pipes
// with a per-path RTT model and per-connection byte accounting (the paper
// reports 352 kB average outgoing traffic per host, §A.2).
//
// Two clock modes exist per connection (see DESIGN.md):
//  - Blocking: every roundtrip advances the global SimClock — the legacy
//    lock-step model, still used by single-host tools.
//  - Deferred: roundtrips charge their simulated cost (RTT + transfer time)
//    to a per-connection accumulator instead, so many connections can have
//    requests in flight at once; the scan engine turns those costs into
//    timed events on the Network's EventScheduler.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "netsim/asdb.hpp"
#include "netsim/clock.hpp"
#include "netsim/event.hpp"
#include "netsim/faults.hpp"
#include "opcua/transport.hpp"
#include "util/ipv4.hpp"

namespace opcua_study {

/// Server side of one TCP connection.
class ConnectionHandler {
 public:
  virtual ~ConnectionHandler() = default;
  /// One message in, one message out. Empty = peer closed the connection.
  virtual Bytes on_message(std::span<const std::uint8_t> request) = 0;
  virtual bool closed() const { return false; }
};

using HandlerFactory = std::function<std::unique_ptr<ConnectionHandler>()>;

class NetConnection;

/// How a connection charges simulated time (see file comment).
enum class ConnMode { Blocking, Deferred };

/// Why a connect() returned nullptr when a FaultPlan is active. The caller
/// needs the distinction: fault-driven refusals are retryable (the service
/// exists), a genuinely closed port is not.
enum class ConnectFault : std::uint8_t {
  None = 0,  // no fault: the nullptr means the port really is closed
  SynDrop,   // SYN silently dropped — costs the connect timeout
  Flap,      // listener flapped away — RST after one RTT
};

class Network {
 public:
  Network();

  // The scheduler holds a reference to clock_; copying would leave it
  // pointed at the original's clock.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  SimClock& clock() { return clock_; }
  EventScheduler& scheduler() { return scheduler_; }
  AsDatabase& as_db() { return as_db_; }
  const AsDatabase& as_db() const { return as_db_; }

  void listen(Ipv4 ip, std::uint16_t port, HandlerFactory factory);
  void close_listener(Ipv4 ip, std::uint16_t port);
  bool is_listening(Ipv4 ip, std::uint16_t port) const;

  /// SYN probe: advances the clock by the path RTT; true = SYN-ACK.
  bool syn_probe(Ipv4 ip, std::uint16_t port);

  /// TCP connect; nullptr when the port is closed. Blocking mode advances
  /// the global clock by the handshake RTT (and by the RST RTT on refusal);
  /// Deferred mode charges the handshake to the connection's accumulator
  /// and leaves the global clock untouched — a refused deferred connect
  /// charges nothing, the caller accounts the RST RTT itself.
  ///
  /// With a FaultPlan installed, a connect attempt may be dropped or
  /// refused by an injected fault; `fault` (when non-null) reports why.
  std::unique_ptr<NetConnection> connect(Ipv4 ip, std::uint16_t port,
                                         ConnMode mode = ConnMode::Blocking,
                                         ConnectFault* fault = nullptr);

  /// Attach (or clear) a deterministic fault plan. Without one — or with a
  /// profile whose probabilities are all zero — no RNG stream is ever
  /// consulted and behavior is bit-identical to the fault-free network.
  void set_fault_plan(std::unique_ptr<FaultPlan> plan) { fault_plan_ = std::move(plan); }
  FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// All bound (ip, port) pairs — the "oracle sweep" ground truth used by
  /// the benches in place of a multi-minute 2^32 LFSR walk (see DESIGN.md).
  std::vector<std::pair<Ipv4, std::uint16_t>> bound_endpoints() const;
  std::size_t listener_count() const { return listeners_.size(); }

  /// Deterministic per-destination RTT in microseconds (10..150 ms).
  std::uint64_t rtt_us(Ipv4 ip) const;

  std::uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  std::uint64_t total_bytes_received() const { return total_bytes_received_; }

 private:
  friend class NetConnection;
  static std::uint64_t key(Ipv4 ip, std::uint16_t port) {
    return (static_cast<std::uint64_t>(ip) << 16) | port;
  }

  SimClock clock_;
  EventScheduler scheduler_{clock_};
  AsDatabase as_db_;
  std::unordered_map<std::uint64_t, HandlerFactory> listeners_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::uint64_t total_bytes_sent_ = 0;
  std::uint64_t total_bytes_received_ = 0;
};

/// Client end of an established connection; implements the OPC UA client's
/// MessageTransport with clock + byte accounting.
class NetConnection : public MessageTransport {
 public:
  NetConnection(Network& net, Ipv4 peer, std::unique_ptr<ConnectionHandler> handler,
                ConnMode mode = ConnMode::Blocking);

  Bytes roundtrip(const Bytes& request) override;
  void send_oneway(const Bytes& message) override;

  /// Outgoing traffic (scanner → host), the paper's per-host budget metric.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  bool peer_closed() const { return handler_ == nullptr || handler_->closed(); }
  Ipv4 peer() const { return peer_; }

  ConnMode mode() const { return mode_; }
  /// Deferred mode: simulated time charged since the last take. The scan
  /// engine drains this after every protocol exchange and converts it into
  /// event-heap wake-ups.
  std::uint64_t take_elapsed() {
    const std::uint64_t elapsed = deferred_elapsed_us_;
    deferred_elapsed_us_ = 0;
    return elapsed;
  }

  /// Per-request timeout budget: an exchange whose simulated cost would
  /// exceed this charges exactly the timeout and throws NetTimeout (the
  /// connection is then desynced and dead). 0 = no timeout.
  void set_request_timeout_us(std::uint64_t us) { request_timeout_us_ = us; }

  /// Number of injected faults that fired on this connection (resets,
  /// timeouts, truncated replies). Lets the scan task tell a fault-driven
  /// protocol failure (retryable) from a genuine rejection.
  std::uint32_t faults_injected() const { return faults_injected_; }

 private:
  friend class Network;  // pre-charges the deferred handshake RTT
  static constexpr std::uint32_t kNoReset = 0xffffffff;
  void charge(std::uint64_t us);

  Network& net_;
  Ipv4 peer_;
  std::unique_ptr<ConnectionHandler> handler_;
  ConnMode mode_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t deferred_elapsed_us_ = 0;
  FaultPlan::Endpoint* faults_ = nullptr;      // null = no injection
  const FaultProfile* fault_profile_ = nullptr;
  std::uint32_t reset_after_ = kNoReset;       // exchanges until injected RST
  std::uint64_t request_timeout_us_ = 0;
  std::uint32_t faults_injected_ = 0;
};

/// A non-OPC-UA service occupying port 4840 (the paper: only 0.5 ‰ of hosts
/// with an open port 4840 actually speak OPC UA). Replies with an HTTP-ish
/// banner to whatever it receives, then closes.
class DummyBannerService : public ConnectionHandler {
 public:
  explicit DummyBannerService(std::string banner) : banner_(std::move(banner)) {}
  Bytes on_message(std::span<const std::uint8_t>) override;
  bool closed() const override { return served_; }

 private:
  std::string banner_;
  bool served_ = false;
};

}  // namespace opcua_study
