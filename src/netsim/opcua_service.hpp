// Glue: host an opcua::Server behind a netsim listener.
#pragma once

#include <memory>

#include "netsim/network.hpp"
#include "opcua/server.hpp"

namespace opcua_study {

class OpcUaService : public ConnectionHandler {
 public:
  explicit OpcUaService(std::shared_ptr<Server> server)
      : server_(std::move(server)), connection_(server_->accept()) {}

  Bytes on_message(std::span<const std::uint8_t> request) override {
    return connection_->on_frame(request);
  }
  bool closed() const override { return connection_->closed(); }

 private:
  std::shared_ptr<Server> server_;
  std::unique_ptr<ServerConnection> connection_;
};

inline HandlerFactory make_opcua_factory(std::shared_ptr<Server> server) {
  return [server = std::move(server)]() -> std::unique_ptr<ConnectionHandler> {
    return std::make_unique<OpcUaService>(server);
  };
}

}  // namespace opcua_study
