#include "netsim/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {
// Cells of obs::Metric::net_faults_injected (see obs::kFaultCells).
constexpr unsigned kObsSynDrop = 0;
constexpr unsigned kObsListenerFlap = 1;
constexpr unsigned kObsReset = 2;
constexpr unsigned kObsStall = 3;
constexpr unsigned kObsTruncate = 4;
constexpr unsigned kObsTimeout = 5;
}  // namespace

Network::Network() = default;

void Network::listen(Ipv4 ip, std::uint16_t port, HandlerFactory factory) {
  listeners_[key(ip, port)] = std::move(factory);
}

void Network::close_listener(Ipv4 ip, std::uint16_t port) { listeners_.erase(key(ip, port)); }

bool Network::is_listening(Ipv4 ip, std::uint16_t port) const {
  return listeners_.contains(key(ip, port));
}

std::uint64_t Network::rtt_us(Ipv4 ip) const {
  // Deterministic 10..150 ms derived from the address (splitmix finalizer —
  // adjacent addresses must not share a path delay).
  std::uint64_t h = ip + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return 10000 + h % 140000;
}

bool Network::syn_probe(Ipv4 ip, std::uint16_t port) {
  // zmap-style stateless probe: one RTT worth of simulated time, amortized —
  // zmap keeps thousands of probes in flight, so we charge a microsecond.
  clock_.advance_us(1);
  return is_listening(ip, port);
}

std::unique_ptr<NetConnection> Network::connect(Ipv4 ip, std::uint16_t port, ConnMode mode,
                                                ConnectFault* fault) {
  if (fault != nullptr) *fault = ConnectFault::None;
  const auto it = listeners_.find(key(ip, port));
  if (it == listeners_.end()) {
    if (mode == ConnMode::Blocking) clock_.advance_us(rtt_us(ip));  // RST after one RTT
    return nullptr;
  }
  FaultPlan::Endpoint* ep = nullptr;
  if (fault_plan_ != nullptr && fault_plan_->profile().enabled()) {
    ep = &fault_plan_->endpoint(ip, port);
    const FaultProfile& profile = fault_plan_->profile();
    if (ep->rng.chance(profile.connect_drop)) {
      obs::add(obs::Metric::net_faults_injected, 1, kObsSynDrop);
      if (fault != nullptr) *fault = ConnectFault::SynDrop;
      if (mode == ConnMode::Blocking) clock_.advance_us(profile.connect_timeout_us);
      return nullptr;
    }
    if (ep->rng.chance(profile.listener_flap)) {
      obs::add(obs::Metric::net_faults_injected, 1, kObsListenerFlap);
      if (fault != nullptr) *fault = ConnectFault::Flap;
      if (mode == ConnMode::Blocking) clock_.advance_us(rtt_us(ip));  // RST
      return nullptr;
    }
  }
  if (mode == ConnMode::Blocking) clock_.advance_us(rtt_us(ip));  // three-way handshake
  auto conn = std::make_unique<NetConnection>(*this, ip, it->second(), mode);
  if (mode == ConnMode::Deferred) conn->charge(rtt_us(ip));  // handshake, deferred
  if (ep != nullptr) {
    const FaultProfile& profile = fault_plan_->profile();
    conn->faults_ = ep;
    conn->fault_profile_ = &profile;
    if (ep->rng.chance(profile.reset)) {
      conn->reset_after_ = static_cast<std::uint32_t>(
          ep->rng.range(profile.reset_after_min, profile.reset_after_max));
    }
  }
  return conn;
}

std::vector<std::pair<Ipv4, std::uint16_t>> Network::bound_endpoints() const {
  std::vector<std::pair<Ipv4, std::uint16_t>> out;
  out.reserve(listeners_.size());
  for (const auto& [k, factory] : listeners_) {
    out.emplace_back(static_cast<Ipv4>(k >> 16), static_cast<std::uint16_t>(k & 0xffff));
  }
  return out;
}

NetConnection::NetConnection(Network& net, Ipv4 peer, std::unique_ptr<ConnectionHandler> handler,
                             ConnMode mode)
    : net_(net), peer_(peer), handler_(std::move(handler)), mode_(mode) {}

void NetConnection::charge(std::uint64_t us) {
  if (mode_ == ConnMode::Deferred) {
    deferred_elapsed_us_ += us;
  } else {
    net_.clock_.advance_us(us);
  }
}

Bytes NetConnection::roundtrip(const Bytes& request) {
  if (faults_ != nullptr && reset_after_ == 0) {
    handler_.reset();
    ++faults_injected_;
    obs::add(obs::Metric::net_faults_injected, 1, kObsReset);
    throw NetReset("connection reset by peer (injected fault)");
  }
  if (handler_ == nullptr || handler_->closed()) {
    throw DecodeError("connection closed by peer");
  }
  bytes_sent_ += request.size();
  net_.total_bytes_sent_ += request.size();
  std::uint64_t cost = net_.rtt_us(peer_) + request.size() / 10;  // ~10 MB/s path
  bool stall = false;
  bool truncate = false;
  if (faults_ != nullptr) {
    // Two draws per exchange, always, so the endpoint stream stays aligned
    // no matter which faults fire.
    stall = faults_->rng.chance(fault_profile_->stall);
    truncate = faults_->rng.chance(fault_profile_->truncate);
  }
  if (stall) {
    cost += fault_profile_->stall_us;
    obs::add(obs::Metric::net_faults_injected, 1, kObsStall);
  }
  if (request_timeout_us_ != 0 && cost > request_timeout_us_) {
    charge(request_timeout_us_);
    handler_.reset();  // the client aborts: the stream is desynced
    ++faults_injected_;
    obs::add(obs::Metric::net_faults_injected, 1, kObsTimeout);
    throw NetTimeout("request timed out after " + std::to_string(request_timeout_us_ / 1000) +
                     " ms");
  }
  charge(cost);
  Bytes response = handler_->on_message(request);
  if (response.empty()) {
    handler_.reset();
    throw DecodeError("connection closed by peer");
  }
  bytes_received_ += response.size();
  net_.total_bytes_received_ += response.size();
  charge(response.size() / 10);
  if (truncate) {
    // Garble the reply down to a prefix too short for a UA message header:
    // the client always surfaces a decode failure, never bad data.
    const std::uint64_t cap = std::min<std::uint64_t>(response.size(), 15);
    response.resize(1 + static_cast<std::size_t>(faults_->rng.below(cap)));
    response[0] ^= 0xA5;
    ++faults_injected_;
    obs::add(obs::Metric::net_faults_injected, 1, kObsTruncate);
  }
  if (reset_after_ != kNoReset) --reset_after_;
  return response;
}

void NetConnection::send_oneway(const Bytes& message) {
  if (handler_ == nullptr) return;
  bytes_sent_ += message.size();
  net_.total_bytes_sent_ += message.size();
  charge(net_.rtt_us(peer_) / 2);
  handler_->on_message(message);
}

Bytes DummyBannerService::on_message(std::span<const std::uint8_t>) {
  served_ = true;
  return to_bytes("HTTP/1.0 400 Bad Request\r\nServer: " + banner_ + "\r\n\r\n");
}

}  // namespace opcua_study
