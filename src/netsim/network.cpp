#include "netsim/network.hpp"

#include "util/rng.hpp"

namespace opcua_study {

Network::Network() = default;

void Network::listen(Ipv4 ip, std::uint16_t port, HandlerFactory factory) {
  listeners_[key(ip, port)] = std::move(factory);
}

void Network::close_listener(Ipv4 ip, std::uint16_t port) { listeners_.erase(key(ip, port)); }

bool Network::is_listening(Ipv4 ip, std::uint16_t port) const {
  return listeners_.contains(key(ip, port));
}

std::uint64_t Network::rtt_us(Ipv4 ip) const {
  // Deterministic 10..150 ms derived from the address (splitmix finalizer —
  // adjacent addresses must not share a path delay).
  std::uint64_t h = ip + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return 10000 + h % 140000;
}

bool Network::syn_probe(Ipv4 ip, std::uint16_t port) {
  // zmap-style stateless probe: one RTT worth of simulated time, amortized —
  // zmap keeps thousands of probes in flight, so we charge a microsecond.
  clock_.advance_us(1);
  return is_listening(ip, port);
}

std::unique_ptr<NetConnection> Network::connect(Ipv4 ip, std::uint16_t port, ConnMode mode) {
  const auto it = listeners_.find(key(ip, port));
  if (it == listeners_.end()) {
    if (mode == ConnMode::Blocking) clock_.advance_us(rtt_us(ip));  // RST after one RTT
    return nullptr;
  }
  if (mode == ConnMode::Blocking) clock_.advance_us(rtt_us(ip));  // three-way handshake
  auto conn = std::make_unique<NetConnection>(*this, ip, it->second(), mode);
  if (mode == ConnMode::Deferred) conn->charge(rtt_us(ip));  // handshake, deferred
  return conn;
}

std::vector<std::pair<Ipv4, std::uint16_t>> Network::bound_endpoints() const {
  std::vector<std::pair<Ipv4, std::uint16_t>> out;
  out.reserve(listeners_.size());
  for (const auto& [k, factory] : listeners_) {
    out.emplace_back(static_cast<Ipv4>(k >> 16), static_cast<std::uint16_t>(k & 0xffff));
  }
  return out;
}

NetConnection::NetConnection(Network& net, Ipv4 peer, std::unique_ptr<ConnectionHandler> handler,
                             ConnMode mode)
    : net_(net), peer_(peer), handler_(std::move(handler)), mode_(mode) {}

void NetConnection::charge(std::uint64_t us) {
  if (mode_ == ConnMode::Deferred) {
    deferred_elapsed_us_ += us;
  } else {
    net_.clock_.advance_us(us);
  }
}

Bytes NetConnection::roundtrip(const Bytes& request) {
  if (handler_ == nullptr || handler_->closed()) {
    throw DecodeError("connection closed by peer");
  }
  bytes_sent_ += request.size();
  net_.total_bytes_sent_ += request.size();
  charge(net_.rtt_us(peer_) + request.size() / 10);  // ~10 MB/s path
  Bytes response = handler_->on_message(request);
  if (response.empty()) {
    handler_.reset();
    throw DecodeError("connection closed by peer");
  }
  bytes_received_ += response.size();
  net_.total_bytes_received_ += response.size();
  charge(response.size() / 10);
  return response;
}

void NetConnection::send_oneway(const Bytes& message) {
  if (handler_ == nullptr) return;
  bytes_sent_ += message.size();
  net_.total_bytes_sent_ += message.size();
  charge(net_.rtt_us(peer_) / 2);
  handler_->on_message(message);
}

Bytes DummyBannerService::on_message(std::span<const std::uint8_t>) {
  served_ = true;
  return to_bytes("HTTP/1.0 400 Bad Request\r\nServer: " + banner_ + "\r\n\r\n");
}

}  // namespace opcua_study
