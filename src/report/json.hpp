// Minimal ordered JSON emitter for the BENCH_*.json trend files.
//
// The bench binaries emit machine-readable results that CI diffs against
// checked-in baselines (bench/baselines/ + bench/check_bench.py); this
// writer keeps that output well-formed without hand-managed commas. It
// covers exactly what the benches need — objects, arrays, scalars — and
// nothing else.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace opcua_study {

class JsonWriter {
 public:
  JsonWriter() { out_.precision(12); }

  JsonWriter& begin_object() {
    open('{');
    return *this;
  }
  JsonWriter& end_object() {
    close('}');
    return *this;
  }
  JsonWriter& begin_array() {
    open('[');
    return *this;
  }
  JsonWriter& end_array() {
    close(']');
    return *this;
  }

  JsonWriter& key(const std::string& name) {
    comma();
    quote(name);
    out_ << ": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    comma();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  template <typename T>
  JsonWriter& field(const std::string& name, T v) {
    key(name);
    return value(v);
  }

  std::string str() const { return out_.str() + "\n"; }

 private:
  void open(char bracket) {
    comma();
    out_ << bracket;
    stack_.push_back(bracket);
    first_.push_back(true);
  }
  void close(char bracket) {
    out_ << bracket;
    stack_.pop_back();
    first_.pop_back();
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ << ", ";
      first_.back() = false;
    }
  }
  void quote(const std::string& s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        case '\r': out_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static const char* hex = "0123456789abcdef";
            out_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<char> stack_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace opcua_study
