// Plain-text rendering of tables, bars and paper-vs-measured comparisons.
// Every bench binary prints through these helpers so the regenerated
// tables/figures share one look.
#pragma once

#include <string>
#include <vector>

namespace opcua_study {

class TextTable {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_separator();
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

/// Horizontal ASCII bar scaled to `max`.
std::string render_bar(double value, double max, int width = 40);

/// "paper vs measured" comparison block with a ✓/✗ marker per row.
struct ComparisonRow {
  std::string metric;
  std::string paper;
  std::string measured;
  bool matches = true;
};

std::string render_comparison(const std::string& title, const std::vector<ComparisonRow>& rows);

std::string fmt_int(long v);
std::string fmt_pct(double fraction_0_to_1, int decimals = 1);
std::string fmt_double(double v, int decimals = 2);

/// Convenience for numeric rows: marks rows as matching when |a-b| <= tol.
ComparisonRow compare_num(const std::string& metric, double paper, double measured,
                          double tolerance = 0.5);

}  // namespace opcua_study
