#include "report/telemetry.hpp"

#include <fstream>
#include <stdexcept>

#include "report/json.hpp"

namespace opcua_study {

namespace {

using obs::kHistBounds;
using obs::kHistBucketCount;
using obs::kMetricCount;
using obs::kMetricDefs;
using obs::MetricDef;
using obs::MetricKind;
using obs::MetricValue;
using obs::Stability;

std::string cell_name(const MetricDef& def, unsigned cell) {
  return def.cell_names != nullptr ? def.cell_names[cell] : std::string();
}

void emit_histogram_json(JsonWriter& json, const obs::HistogramValue& hist) {
  json.begin_object();
  json.key("buckets").begin_object();
  for (std::size_t b = 0; b < kHistBucketCount; ++b) {
    json.field(std::to_string(kHistBounds[b]), hist.buckets[b]);
  }
  json.field("+inf", hist.buckets[kHistBucketCount]);
  json.end_object();
  json.field("sum", hist.sum);
  json.field("count", hist.count);
  json.end_object();
}

void emit_metric_json(JsonWriter& json, const MetricDef& def, const MetricValue& value) {
  json.key(def.name);
  if (def.kind == MetricKind::histogram) {
    if (def.cells == 1) {
      emit_histogram_json(json, value.hists[0]);
      return;
    }
    json.begin_object();
    for (unsigned c = 0; c < def.cells; ++c) {
      json.key(cell_name(def, c));
      emit_histogram_json(json, value.hists[c]);
    }
    json.end_object();
    return;
  }
  if (def.cells == 1) {
    json.value(value.cells[0]);
    return;
  }
  json.begin_object();
  for (unsigned c = 0; c < def.cells; ++c) json.field(cell_name(def, c), value.cells[c]);
  json.end_object();
}

}  // namespace

std::string telemetry_json(const obs::MetricsSample& sample,
                           const TelemetryReportOptions& options) {
  JsonWriter json;
  json.begin_object();
  json.field("schema", "opcua-telemetry-v1");
  if (!options.campaign_label.empty()) json.field("campaign", options.campaign_label);
  json.key("stable").begin_object();
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kMetricDefs[i].stability != Stability::stable) continue;
    emit_metric_json(json, kMetricDefs[i], sample.metrics[i]);
  }
  json.end_object();
  if (options.include_operational) {
    json.key("operational").begin_object();
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      if (kMetricDefs[i].stability != Stability::operational) continue;
      emit_metric_json(json, kMetricDefs[i], sample.metrics[i]);
    }
    json.end_object();
  }
  json.end_object();
  return json.str();
}

std::string prometheus_escape_label(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

namespace {

/// Joined label pairs ("a=\"x\",b=\"y\"") — empty fragments drop out.
std::string join_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

std::string braced(const std::string& labels) {
  return labels.empty() ? std::string() : "{" + labels + "}";
}

}  // namespace

std::string telemetry_prometheus(const obs::MetricsSample& sample,
                                 const TelemetryReportOptions& options) {
  // Every label *value* below is escaped — the campaign label is caller
  // data, and escaping the compile-time cell names too costs nothing.
  const std::string campaign =
      options.campaign_label.empty()
          ? std::string()
          : "campaign=\"" + prometheus_escape_label(options.campaign_label) + "\"";
  std::string out;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const MetricDef& def = kMetricDefs[i];
    if (def.stability == Stability::operational && !options.include_operational) continue;
    const MetricValue& value = sample.metrics[i];
    const std::string name = "opcua_study_" + std::string(def.name);
    out += "# HELP " + name + " " + def.help + "\n";
    if (def.kind == MetricKind::histogram) {
      out += "# TYPE " + name + " histogram\n";
      for (unsigned c = 0; c < def.cells; ++c) {
        const obs::HistogramValue& hist = value.hists[c];
        const std::string cell =
            def.cells == 1
                ? std::string()
                : "cell=\"" + prometheus_escape_label(cell_name(def, c)) + "\"";
        const std::string base = join_labels(campaign, cell);
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < kHistBucketCount; ++b) {
          cumulative += hist.buckets[b];
          out += name + "_bucket{" +
                 join_labels(base, "le=\"" + std::to_string(kHistBounds[b]) + "\"") + "} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += hist.buckets[kHistBucketCount];
        out += name + "_bucket{" + join_labels(base, "le=\"+Inf\"") + "} " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum" + braced(base) + " " + std::to_string(hist.sum) + "\n";
        out += name + "_count" + braced(base) + " " + std::to_string(hist.count) + "\n";
      }
      continue;
    }
    out += "# TYPE " + name + (def.kind == MetricKind::gauge ? " gauge\n" : " counter\n");
    for (unsigned c = 0; c < def.cells; ++c) {
      const std::string cell =
          def.cells == 1 ? std::string()
                         : "cell=\"" + prometheus_escape_label(cell_name(def, c)) + "\"";
      out += name + braced(join_labels(campaign, cell)) + " " +
             std::to_string(value.cells[c]) + "\n";
    }
  }
  return out;
}

std::string telemetry_prometheus(const obs::MetricsSample& sample, bool include_operational) {
  TelemetryReportOptions options;
  options.include_operational = include_operational;
  return telemetry_prometheus(sample, options);
}

namespace {

void write_text(const std::string& path, const std::string& body, const char* what) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error(std::string("cannot write ") + what + ": " + path);
  out << body;
  out.close();
  if (!out) throw std::runtime_error(std::string("write failure on ") + what + ": " + path);
}

}  // namespace

void write_telemetry_report(const std::string& path, const obs::MetricsSample& sample,
                            const TelemetryReportOptions& options) {
  write_text(path, telemetry_json(sample, options), "telemetry report");
}

void write_prometheus_textfile(const std::string& path, const obs::MetricsSample& sample,
                               const TelemetryReportOptions& options) {
  write_text(path, telemetry_prometheus(sample, options), "prometheus textfile");
}

void write_prometheus_textfile(const std::string& path, const obs::MetricsSample& sample,
                               bool include_operational) {
  TelemetryReportOptions options;
  options.include_operational = include_operational;
  write_prometheus_textfile(path, sample, options);
}

}  // namespace opcua_study
