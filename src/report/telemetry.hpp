// Exposition for the obs metrics plane: the per-campaign
// TELEMETRY_report.json and a Prometheus text endpoint/file.
//
// Both formats walk the merged MetricsSample in metric-id order and emit
// stable metrics only by default — the stable subset is the determinism
// contract (identical across thread counts, in-flight windows and shard
// layouts), so two equal samples always serialize to identical bytes.
// Operational metrics (wall timings, peaks) ride along only when asked.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace opcua_study {

struct TelemetryReportOptions {
  bool include_operational = false;
  std::string campaign_label;  // stamped into the report when non-empty
};

/// TELEMETRY_report.json body: stable metric totals, histogram buckets,
/// and (optionally) the operational section.
std::string telemetry_json(const obs::MetricsSample& sample,
                           const TelemetryReportOptions& options = {});

/// Escape a Prometheus label *value* per the text exposition format:
/// backslash, double quote and newline become \\, \" and \n. Every label
/// value emitted below goes through this — a hostile campaign label can
/// not break the exposition apart.
std::string prometheus_escape_label(const std::string& value);

/// Prometheus text exposition (`# HELP`/`# TYPE` + samples). Metric names
/// are prefixed `opcua_study_`; labeled cells use a single `cell` label,
/// histograms emit cumulative `_bucket{le=...}`, `_sum`, `_count`. A
/// non-empty options.campaign_label stamps an escaped `campaign` label
/// onto every sample line.
std::string telemetry_prometheus(const obs::MetricsSample& sample,
                                 const TelemetryReportOptions& options);
/// Back-compat overload: no campaign label; output is byte-identical to
/// the options overload with an empty campaign_label.
std::string telemetry_prometheus(const obs::MetricsSample& sample,
                                 bool include_operational = false);

void write_telemetry_report(const std::string& path, const obs::MetricsSample& sample,
                            const TelemetryReportOptions& options = {});

void write_prometheus_textfile(const std::string& path, const obs::MetricsSample& sample,
                               const TelemetryReportOptions& options);
void write_prometheus_textfile(const std::string& path, const obs::MetricsSample& sample,
                               bool include_operational = false);

}  // namespace opcua_study
