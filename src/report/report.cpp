#include "report/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace opcua_study {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      out << (i ? "  " : "") << cell << std::string(widths[i] - cell.size(), ' ');
    }
    out << '\n';
  };
  auto print_rule = [&] {
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    out << std::string(total + 2 * (widths.empty() ? 0 : widths.size() - 1), '-') << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  return out.str();
}

std::string render_bar(double value, double max, int width) {
  if (max <= 0) max = 1;
  const int filled = static_cast<int>(std::lround(std::clamp(value / max, 0.0, 1.0) * width));
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(width - filled), '.');
}

std::string render_comparison(const std::string& title, const std::vector<ComparisonRow>& rows) {
  TextTable table;
  table.set_header({"metric", "paper", "measured", ""});
  bool all_ok = true;
  for (const auto& row : rows) {
    table.add_row({row.metric, row.paper, row.measured, row.matches ? "ok" : "MISMATCH"});
    all_ok &= row.matches;
  }
  std::ostringstream out;
  out << "== " << title << " ==\n"
      << table.str() << (all_ok ? "[all reproduced]" : "[DEVIATIONS PRESENT]") << "\n";
  return out.str();
}

std::string fmt_int(long v) { return std::to_string(v); }

std::string fmt_pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_double(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

ComparisonRow compare_num(const std::string& metric, double paper, double measured,
                          double tolerance) {
  const bool is_integral = std::abs(paper - std::round(paper)) < 1e-9;
  return {metric, is_integral ? fmt_int(static_cast<long>(paper)) : fmt_double(paper),
          std::abs(measured - std::round(measured)) < 1e-9
              ? fmt_int(static_cast<long>(measured))
              : fmt_double(measured),
          std::abs(paper - measured) <= tolerance};
}

}  // namespace opcua_study
