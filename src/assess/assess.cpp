#include "assess/assess.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/batch_gcd.hpp"
#include "util/date.hpp"
#include "util/hex.hpp"

namespace opcua_study {

std::string manufacturer_cluster(const std::string& application_uri) {
  struct Pattern {
    const char* needle;
    const char* cluster;
  };
  static const Pattern kPatterns[] = {
      {"urn:bachmann:", "Bachmann"},
      {"urn:beckhoff:", "Beckhoff"},
      {"urn:wago:", "Wago"},
      {"urn:siemens:", "Siemens"},
      {"urn:br-automation:", "B&R"},
      {"urn:unifiedautomation:", "Unified Automation"},
      {"urn:open62541", "open62541"},
      {"urn:freeopcua:", "FreeOpcUa"},
      {"urn:energotec:", "EnergoTec"},
      {"urn:opcfoundation:ua:lds", "OPC Foundation"},
  };
  for (const auto& pattern : kPatterns) {
    if (application_uri.rfind(pattern.needle, 0) == 0) return pattern.cluster;
  }
  return "other";
}

SecurityPolicy strongest_policy(const HostScanRecord& host) {
  SecurityPolicy best = SecurityPolicy::None;
  for (const auto& policy : host.advertised_policies()) {
    if (policy_info(policy).rank > policy_info(best).rank) best = policy;
  }
  return best;
}

std::optional<Certificate> primary_certificate(const HostScanRecord& host) {
  for (const auto& ep : host.endpoints) {
    if (ep.certificate_der.empty()) continue;
    try {
      return x509_parse(ep.certificate_der);
    } catch (const DecodeError&) {
      continue;
    }
  }
  return std::nullopt;
}

bool is_deficient(const HostScanRecord& host) {
  const SecurityPolicy max = strongest_policy(host);
  if (max == SecurityPolicy::None) return true;
  if (policy_info(max).deprecated) return true;
  if (const auto cert = primary_certificate(host)) {
    if (classify_certificate(max, cert->signature_hash, cert->key_bits()) ==
        CertConformance::too_weak) {
      return true;
    }
  }
  if (host.anonymous_offered) return true;
  return false;
}

// ----------------------------------------------------------------- Fig 3 --

ModePolicyStats assess_modes_policies(const ScanSnapshot& snapshot) {
  ModePolicyStats stats;
  for (const auto& host : snapshot.hosts) {
    if (host.is_discovery_server()) continue;
    ++stats.servers;

    const auto modes = host.advertised_modes();
    MessageSecurityMode weakest_mode = MessageSecurityMode::Invalid;
    MessageSecurityMode strongest_mode = MessageSecurityMode::Invalid;
    for (const auto mode : modes) {
      stats.mode_support[mode]++;
      if (weakest_mode == MessageSecurityMode::Invalid ||
          security_mode_rank(mode) < security_mode_rank(weakest_mode)) {
        weakest_mode = mode;
      }
      if (security_mode_rank(mode) > security_mode_rank(strongest_mode)) strongest_mode = mode;
    }
    if (weakest_mode != MessageSecurityMode::Invalid) stats.mode_least[weakest_mode]++;
    if (strongest_mode != MessageSecurityMode::Invalid) stats.mode_most[strongest_mode]++;
    if (strongest_mode == MessageSecurityMode::None) ++stats.none_only;
    if (security_mode_rank(strongest_mode) >= security_mode_rank(MessageSecurityMode::Sign)) {
      ++stats.secure_mode_capable;
    }

    const auto policies = host.advertised_policies();
    SecurityPolicy weakest = SecurityPolicy::None;
    SecurityPolicy strongest = SecurityPolicy::None;
    int weakest_rank = 1000, strongest_rank = -1;
    bool any_deprecated = false;
    for (const auto policy : policies) {
      stats.policy_support[policy]++;
      const auto& info = policy_info(policy);
      any_deprecated |= info.deprecated;
      if (info.rank < weakest_rank) {
        weakest_rank = info.rank;
        weakest = policy;
      }
      if (info.rank > strongest_rank) {
        strongest_rank = info.rank;
        strongest = policy;
      }
    }
    if (!policies.empty()) {
      stats.policy_least[weakest]++;
      stats.policy_most[strongest]++;
      if (policy_info(weakest).secure) ++stats.strong_enforcing;
      if (policy_info(strongest).secure) ++stats.strong_capable;
      if (policy_info(strongest).deprecated) ++stats.deprecated_max;
    }
    stats.deprecated_supported += any_deprecated;
  }
  return stats;
}

// ----------------------------------------------------------------- Fig 4 --

CertConformanceStats assess_certificates(const ScanSnapshot& snapshot) {
  CertConformanceStats stats;
  for (const auto& host : snapshot.hosts) {
    if (host.is_discovery_server()) continue;
    const auto cert = primary_certificate(host);
    if (!cert) continue;
    ++stats.hosts_with_cert;
    if (!cert->self_signed()) ++stats.ca_signed;
    const CertClassKey key{cert->signature_hash, cert->key_bits()};
    for (const auto policy : host.advertised_policies()) {
      stats.class_counts[policy][key]++;
      stats.announced_with_cert[policy]++;
      switch (classify_certificate(policy, cert->signature_hash, cert->key_bits())) {
        case CertConformance::too_weak: stats.too_weak[policy]++; break;
        case CertConformance::too_strong: stats.too_strong[policy]++; break;
        case CertConformance::conformant: break;
      }
    }
    const SecurityPolicy max = strongest_policy(host);
    if (max != SecurityPolicy::None &&
        classify_certificate(max, cert->signature_hash, cert->key_bits()) ==
            CertConformance::too_weak) {
      ++stats.weaker_than_max;
    }
  }
  return stats;
}

// ----------------------------------------------------------------- Fig 5 --

ReuseStats assess_reuse(const ScanSnapshot& snapshot) {
  struct ClusterAccumulator {
    int hosts = 0;
    std::set<std::uint32_t> ases;
    std::string org;
  };
  std::map<std::string, ClusterAccumulator> clusters;
  for (const auto& host : snapshot.hosts) {
    if (host.is_discovery_server()) continue;
    for (const auto& der : host.distinct_certificates()) {
      const std::string fp = to_hex(x509_thumbprint(der));
      auto& cluster = clusters[fp];
      ++cluster.hosts;
      cluster.ases.insert(host.asn);
      if (cluster.org.empty()) {
        try {
          cluster.org = x509_parse(der).subject.organization;
        } catch (const DecodeError&) {
        }
      }
    }
  }
  ReuseStats stats;
  stats.distinct_certificates = static_cast<int>(clusters.size());
  for (auto& [fp, acc] : clusters) {
    if (acc.hosts >= 3) {
      ++stats.clusters_ge3;
      stats.hosts_in_ge3 += acc.hosts;
    }
    if (acc.hosts >= 2) {
      stats.clusters.push_back({fp, acc.hosts, std::move(acc.ases), std::move(acc.org)});
    }
  }
  std::sort(stats.clusters.begin(), stats.clusters.end(),
            [](const ReuseCluster& a, const ReuseCluster& b) { return a.host_count > b.host_count; });
  return stats;
}

SharedPrimeStats assess_shared_primes(const ScanSnapshot& snapshot) {
  // Deduplicate moduli first: reused certificates and multi-endpoint hosts
  // trivially repeat the same key and are not a randomness finding.
  std::set<std::string> seen;
  std::vector<Bignum> moduli;
  for (const auto& host : snapshot.hosts) {
    for (const auto& der : host.distinct_certificates()) {
      try {
        const Certificate cert = x509_parse(der);
        if (seen.insert(cert.public_key.n.to_hex()).second) {
          moduli.push_back(cert.public_key.n);
        }
      } catch (const DecodeError&) {
      }
    }
  }
  SharedPrimeStats stats;
  stats.distinct_moduli = moduli.size();
  stats.moduli_with_shared_prime = batch_gcd(moduli).affected();
  return stats;
}

// ------------------------------------------------------- Fig 6 / Table 2 --

SystemClass classify_namespaces(const std::vector<std::string>& namespaces) {
  static const char* kProductionHints[] = {"IEC61131", "PLCopen", "plant",   "parking",
                                           "sewerage", "simatic", "factory", "scada"};
  static const char* kTestHints[] = {"example", "tutorial", "freeopcua.github.io"};
  bool production = false, test = false;
  for (const auto& ns : namespaces) {
    for (const char* hint : kTestHints) {
      if (ns.find(hint) != std::string::npos) test = true;
    }
    for (const char* hint : kProductionHints) {
      if (ns.find(hint) != std::string::npos) production = true;
    }
  }
  if (production) return SystemClass::production;
  if (test) return SystemClass::test;
  return SystemClass::unclassified;
}

AuthStats assess_auth(const ScanSnapshot& snapshot) {
  AuthStats stats;
  std::map<std::tuple<bool, bool, bool, bool>, AuthRow> rows;
  for (const auto& host : snapshot.hosts) {
    if (host.is_discovery_server()) continue;
    ++stats.servers;
    AuthRow probe;
    for (const auto token : host.advertised_token_types()) {
      switch (token) {
        case UserTokenType::Anonymous: probe.anonymous = true; break;
        case UserTokenType::UserName: probe.credentials = true; break;
        case UserTokenType::Certificate: probe.certificate = true; break;
        case UserTokenType::IssuedToken: probe.token = true; break;
      }
    }
    auto& row = rows.try_emplace(probe.key(), probe).first->second;

    const bool sc_rejected = host.channel == ChannelOutcome::cert_rejected ||
                             host.channel == ChannelOutcome::failed;
    if (sc_rejected) {
      ++stats.channel_rejected;
      ++row.channel_rejected;
    } else {
      ++stats.channel_capable;
    }
    if (probe.anonymous) {
      ++stats.anonymous_offered;
      if (!sc_rejected) ++stats.anonymous_channel_capable;
      bool none_mode = false;
      for (const auto mode : host.advertised_modes()) {
        none_mode |= mode == MessageSecurityMode::None;
      }
      if (!none_mode) ++stats.anonymous_secure_only;
    }
    if (host.session == SessionOutcome::accessible) {
      ++stats.accessible;
      switch (classify_namespaces(host.namespaces)) {
        case SystemClass::production:
          ++stats.production;
          ++row.production;
          break;
        case SystemClass::test:
          ++stats.test;
          ++row.test;
          break;
        case SystemClass::unclassified:
          ++stats.unclassified;
          ++row.unclassified;
          break;
      }
    } else if (!sc_rejected) {
      ++stats.auth_rejected;
      ++row.auth_rejected;
    }
  }
  for (auto& [key, row] : rows) stats.rows.push_back(row);
  return stats;
}

// ----------------------------------------------------------------- Fig 7 --

AccessRightsStats assess_access_rights(const ScanSnapshot& snapshot) {
  AccessRightsStats stats;
  for (const auto& host : snapshot.hosts) {
    if (host.session != SessionOutcome::accessible) continue;
    int vars = 0, readable = 0, writable = 0, methods = 0, executable = 0;
    for (const auto& node : host.nodes) {
      if (node.node_class == NodeClass::Variable) {
        ++vars;
        readable += node.readable;
        writable += node.writable;
      } else if (node.node_class == NodeClass::Method) {
        ++methods;
        executable += node.executable;
      }
    }
    if (vars > 0) {
      stats.read_fractions.push_back(static_cast<double>(readable) / vars);
      stats.write_fractions.push_back(static_cast<double>(writable) / vars);
    }
    if (methods > 0) {
      stats.exec_fractions.push_back(static_cast<double>(executable) / methods);
    }
  }
  return stats;
}

double AccessRightsStats::hosts_above(const std::vector<double>& fractions, double threshold) {
  if (fractions.empty()) return 0;
  const auto count = std::count_if(fractions.begin(), fractions.end(),
                                   [threshold](double f) { return f > threshold; });
  return static_cast<double>(count) / static_cast<double>(fractions.size());
}

std::vector<std::pair<double, double>> AccessRightsStats::survival_curve(
    std::vector<double> fractions) {
  std::vector<std::pair<double, double>> curve;
  if (fractions.empty()) return curve;
  std::sort(fractions.begin(), fractions.end());
  const double n = static_cast<double>(fractions.size());
  for (double hosts_frac = 0.1; hosts_frac <= 1.0001; hosts_frac += 0.05) {
    // Fraction of nodes that the top `hosts_frac` of hosts can access.
    const std::size_t idx =
        fractions.size() - std::min<std::size_t>(fractions.size(),
                                                 static_cast<std::size_t>(hosts_frac * n + 0.5));
    const std::size_t clamped = std::min(idx, fractions.size() - 1);
    curve.emplace_back(hosts_frac, fractions[clamped]);
  }
  return curve;
}

// ----------------------------------------------------------------- Fig 8 --

DeficitBreakdown assess_deficits(const ScanSnapshot& snapshot) {
  DeficitBreakdown stats;
  const ReuseStats reuse = assess_reuse(snapshot);
  std::set<std::string> reused_fingerprints;
  for (const auto& cluster : reuse.clusters) {
    if (cluster.host_count >= 3) reused_fingerprints.insert(cluster.fingerprint_hex);
  }

  for (const auto& host : snapshot.hosts) {
    if (host.is_discovery_server()) continue;
    ++stats.servers;
    const std::string cluster = manufacturer_cluster(host.application_uri);
    const SecurityPolicy max = strongest_policy(host);
    const auto cert = primary_certificate(host);

    auto tally = [&](const char* deficit) {
      stats.by_manufacturer[deficit][cluster]++;
      stats.by_as[deficit][host.asn]++;
    };
    if (max == SecurityPolicy::None) {
      ++stats.none_only;
      tally("None");
    }
    if (max != SecurityPolicy::None && policy_info(max).deprecated) {
      ++stats.deprecated_only;
      tally("Deprecated Policies");
    }
    if (cert && max != SecurityPolicy::None &&
        classify_certificate(max, cert->signature_hash, cert->key_bits()) ==
            CertConformance::too_weak) {
      ++stats.weak_certificate;
      tally("Too Weak Certificate");
    }
    bool reused = false;
    for (const auto& der : host.distinct_certificates()) {
      if (reused_fingerprints.contains(to_hex(x509_thumbprint(der)))) reused = true;
    }
    if (reused) {
      ++stats.cert_reuse;
      tally("Certificate Reuse");
    }
    if (host.anonymous_offered) {
      ++stats.anonymous_access;
      tally("Anonymous Access");
    }
    if (is_deficient(host)) ++stats.deficient_total;
  }
  return stats;
}

// -------------------------------------------------------- Fig 2 / §5.5 ----

LongitudinalStats assess_longitudinal(const std::vector<ScanSnapshot>& snapshots) {
  LongitudinalStats stats;
  const std::int64_t y2017 = days_from_civil({2017, 1, 1});
  const std::int64_t y2019 = days_from_civil({2019, 1, 1});

  // Cross-measurement certificate corpus.
  std::map<std::string, std::pair<HashAlgorithm, std::int64_t>> corpus;  // fp -> (hash, notBefore)
  // Largest reuse clusters of the final measurement, tracked over time.
  std::set<std::string> big_cluster_fps;
  if (!snapshots.empty()) {
    const ReuseStats reuse = assess_reuse(snapshots.back());
    for (const auto& cluster : reuse.clusters) {
      if (cluster.host_count >= 3 && cluster.subject_organization == "Bachmann electronic") {
        big_cluster_fps.insert(cluster.fingerprint_hex);
      }
    }
  }

  // Per-IP certificate/software history for renewal detection.
  struct HostHistory {
    std::vector<int> weeks;
    std::vector<std::set<std::string>> cert_sets;        // fingerprints per week
    std::vector<std::map<std::string, HashAlgorithm>> hashes;
    std::vector<std::string> software;
  };
  std::map<std::pair<Ipv4, std::uint16_t>, HostHistory> history;

  double sum = 0, sum_sq = 0;
  stats.deficiency_min = 100;
  for (const auto& snapshot : snapshots) {
    WeeklyObservation week;
    week.measurement_index = snapshot.measurement_index;
    week.date_days = snapshot.date_days;
    for (const auto& host : snapshot.hosts) {
      const std::string cluster = manufacturer_cluster(host.application_uri);
      if (host.is_discovery_server()) {
        ++week.discovery;
        continue;
      }
      ++week.servers;
      week.by_manufacturer[cluster]++;
      week.via_reference += host.found_via_reference;
      week.non_default_port += host.port != kOpcUaDefaultPort;
      week.deficient += is_deficient(host);

      HostHistory& h = history[{host.ip, host.port}];
      h.weeks.push_back(snapshot.measurement_index);
      std::set<std::string> fps;
      std::map<std::string, HashAlgorithm> hashes;
      bool in_big_cluster = false;
      for (const auto& der : host.distinct_certificates()) {
        const std::string fp = to_hex(x509_thumbprint(der));
        fps.insert(fp);
        try {
          const Certificate cert = x509_parse(der);
          hashes[fp] = cert.signature_hash;
          corpus.try_emplace(fp, cert.signature_hash, cert.not_before_days);
        } catch (const DecodeError&) {
        }
        if (big_cluster_fps.contains(fp)) in_big_cluster = true;
      }
      week.reuse_devices += in_big_cluster;
      h.cert_sets.push_back(std::move(fps));
      h.hashes.push_back(std::move(hashes));
      h.software.push_back(host.software_version);
    }
    week.deficient_pct = week.servers == 0
                             ? 0
                             : 100.0 * week.deficient / static_cast<double>(week.servers);
    sum += week.deficient_pct;
    sum_sq += week.deficient_pct * week.deficient_pct;
    stats.deficiency_min = std::min(stats.deficiency_min, week.deficient_pct);
    stats.deficiency_max = std::max(stats.deficiency_max, week.deficient_pct);
    stats.weeks.push_back(std::move(week));
  }
  if (!stats.weeks.empty()) {
    const double n = static_cast<double>(stats.weeks.size());
    stats.deficiency_avg = sum / n;
    stats.deficiency_std = std::sqrt(std::max(0.0, sum_sq / n - stats.deficiency_avg * stats.deficiency_avg));
  }

  stats.total_distinct_certificates = corpus.size();
  for (const auto& [fp, info] : corpus) {
    if (info.first != HashAlgorithm::sha1) continue;
    if (info.second >= y2017) ++stats.sha1_after_2017;
    if (info.second >= y2019) ++stats.sha1_after_2019;
  }

  // Renewal detection: hosts on a static IP whose certificate set changed
  // between consecutive observations.
  for (const auto& [endpoint, h] : history) {
    for (std::size_t i = 1; i < h.weeks.size(); ++i) {
      if (h.cert_sets[i] == h.cert_sets[i - 1] || h.cert_sets[i].empty() ||
          h.cert_sets[i - 1].empty()) {
        continue;
      }
      RenewalEvent event;
      event.ip = endpoint.first;
      event.week = h.weeks[i];
      event.software_update = !h.software[i].empty() && !h.software[i - 1].empty() &&
                              h.software[i] != h.software[i - 1];
      bool removed_sha1 = false, added_sha1 = false, removed_sha256 = false, added_sha256 = false;
      for (const auto& fp : h.cert_sets[i - 1]) {
        if (h.cert_sets[i].contains(fp)) continue;
        const auto it = h.hashes[i - 1].find(fp);
        if (it == h.hashes[i - 1].end()) continue;
        removed_sha1 |= it->second == HashAlgorithm::sha1;
        removed_sha256 |= it->second == HashAlgorithm::sha256;
      }
      for (const auto& fp : h.cert_sets[i]) {
        if (h.cert_sets[i - 1].contains(fp)) continue;
        const auto it = h.hashes[i].find(fp);
        if (it == h.hashes[i].end()) continue;
        added_sha1 |= it->second == HashAlgorithm::sha1;
        added_sha256 |= it->second == HashAlgorithm::sha256;
      }
      event.sha1_replaced = removed_sha1 && added_sha256 && !added_sha1;
      event.downgraded_to_sha1 = removed_sha256 && added_sha1 && !added_sha256;
      stats.renewals_with_software_update += event.software_update;
      stats.sha1_upgrades += event.sha1_replaced;
      stats.downgrades += event.downgraded_to_sha1;
      stats.renewals.push_back(event);
    }
  }
  return stats;
}

// --------------------------------------------- cross-protocol populations --

ProtocolStats assess_protocols(const std::vector<ScanSnapshot>& snapshots) {
  ProtocolStats stats;
  for (const auto& snapshot : snapshots) {
    ProtocolWeek week;
    week.measurement_index = snapshot.measurement_index;
    for (const auto& host : snapshot.hosts) week.hosts[host.protocol]++;
    stats.weeks.push_back(std::move(week));
  }
  if (snapshots.empty()) return stats;
  for (const auto& host : snapshots.back().hosts) {
    if (host.is_discovery_server()) continue;
    stats.servers[host.protocol]++;
    if (is_deficient(host)) stats.deficient[host.protocol]++;
    if (host.anonymous_offered) stats.anonymous[host.protocol]++;
  }
  return stats;
}

}  // namespace opcua_study
