// Security assessment of scan snapshots — the paper's §5 analyses.
//
// Everything here consumes only HostScanRecord data measured over the
// wire; the population plans are never consulted. Each struct mirrors one
// table or figure of the paper.
//
// These are the *reference* implementations: one function per figure,
// whole snapshot in RAM. Production consumers (benches, examples) go
// through src/analysis/, which computes the same statistics from a
// chunked record stream in bounded memory; test_snapshot_pipeline pins
// the two paths bit-for-bit against each other.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/x509.hpp"
#include "scanner/record.hpp"

namespace opcua_study {

/// Manufacturer clustering of ApplicationURI values (the paper clustered
/// these manually; we match the URI prefixes of the known vendors).
std::string manufacturer_cluster(const std::string& application_uri);

// ------------------------------------------------------------- Fig. 3 ----

struct ModePolicyStats {
  int servers = 0;
  std::map<MessageSecurityMode, int> mode_support, mode_least, mode_most;
  std::map<SecurityPolicy, int> policy_support, policy_least, policy_most;
  int none_only = 0;             // only security mode None (270)
  int secure_mode_capable = 0;   // Sign or SignAndEncrypt available (844)
  int deprecated_supported = 0;  // supports D1 or D2 (786)
  int deprecated_max = 0;        // strongest policy deprecated (280)
  int strong_enforcing = 0;      // weakest policy in {S1,S2,S3} (16)
  int strong_capable = 0;        // strongest policy in {S1,S2,S3} (564)

  friend bool operator==(const ModePolicyStats&, const ModePolicyStats&) = default;
};

ModePolicyStats assess_modes_policies(const ScanSnapshot& snapshot);

// ------------------------------------------------------------- Fig. 4 ----

struct CertClassKey {
  HashAlgorithm hash = HashAlgorithm::sha1;
  std::size_t key_bits = 0;
  auto operator<=>(const CertClassKey&) const = default;
};

struct CertConformanceStats {
  /// Per announced policy: hosts delivering a certificate, by class.
  std::map<SecurityPolicy, std::map<CertClassKey, int>> class_counts;
  std::map<SecurityPolicy, int> announced_with_cert;
  std::map<SecurityPolicy, int> too_weak;    // S2: 409, S1: 7
  std::map<SecurityPolicy, int> too_strong;  // D1: 75, D2: 5
  /// Certificate weaker than the host's strongest announced policy (591).
  int weaker_than_max = 0;
  int hosts_with_cert = 0;
  int ca_signed = 0;  // paper: 99 % self-signed, 2 CA-signed

  friend bool operator==(const CertConformanceStats&, const CertConformanceStats&) = default;
};

CertConformanceStats assess_certificates(const ScanSnapshot& snapshot);

// ------------------------------------------------------------- Fig. 5 ----

struct ReuseCluster {
  std::string fingerprint_hex;  // SHA-1 thumbprint
  int host_count = 0;
  std::set<std::uint32_t> ases;
  std::string subject_organization;

  friend bool operator==(const ReuseCluster&, const ReuseCluster&) = default;
};

struct ReuseStats {
  std::vector<ReuseCluster> clusters;  // sorted by host_count descending
  int clusters_ge3 = 0;                // certificates on >= 3 hosts (9)
  int hosts_in_ge3 = 0;
  int distinct_certificates = 0;

  friend bool operator==(const ReuseStats&, const ReuseStats&) = default;
};

ReuseStats assess_reuse(const ScanSnapshot& snapshot);

// ------------------------------------------------------------- §5.3 ----

struct SharedPrimeStats {
  std::size_t distinct_moduli = 0;
  std::size_t moduli_with_shared_prime = 0;  // paper found none

  friend bool operator==(const SharedPrimeStats&, const SharedPrimeStats&) = default;
};

SharedPrimeStats assess_shared_primes(const ScanSnapshot& snapshot);

// ---------------------------------------------------- Fig. 6 / Table 2 ----

enum class SystemClass { production, test, unclassified };

/// Namespace-based classification (§5.4): vendor/standards namespaces →
/// production; example-application namespaces → test; ns0-only →
/// unclassified.
SystemClass classify_namespaces(const std::vector<std::string>& namespaces);

struct AuthRow {
  bool anonymous = false, credentials = false, certificate = false, token = false;
  int production = 0, test = 0, unclassified = 0;
  int auth_rejected = 0, channel_rejected = 0;
  int total() const { return production + test + unclassified + auth_rejected + channel_rejected; }
  auto key() const { return std::tie(anonymous, credentials, certificate, token); }

  friend bool operator==(const AuthRow&, const AuthRow&) = default;
};

struct AuthStats {
  std::vector<AuthRow> rows;  // sorted by token combination
  int servers = 0;
  int channel_capable = 0;    // secure channel possible (1034)
  int channel_rejected = 0;   // certificate not accepted (80)
  int anonymous_offered = 0;  // 572
  int anonymous_channel_capable = 0;  // anonymous & channel ok (563)
  int anonymous_secure_only = 0;  // anonymous on hosts forcing security (71)
  int accessible = 0;         // 493
  int auth_rejected = 0;      // 541
  int production = 0, test = 0, unclassified = 0;  // 295 / 42 / 156

  friend bool operator==(const AuthStats&, const AuthStats&) = default;
};

AuthStats assess_auth(const ScanSnapshot& snapshot);

// ------------------------------------------------------------- Fig. 7 ----

struct AccessRightsStats {
  std::vector<double> read_fractions;   // per accessible host
  std::vector<double> write_fractions;
  std::vector<double> exec_fractions;
  /// Fraction of hosts whose fraction exceeds `threshold`.
  static double hosts_above(const std::vector<double>& fractions, double threshold);
  /// 1-CDF sample points for rendering.
  static std::vector<std::pair<double, double>> survival_curve(std::vector<double> fractions);

  friend bool operator==(const AccessRightsStats&, const AccessRightsStats&) = default;
};

AccessRightsStats assess_access_rights(const ScanSnapshot& snapshot);

// ------------------------------------------------------------- Fig. 8 ----

struct DeficitBreakdown {
  // Deficit class -> (manufacturer or AS label) -> host count.
  std::map<std::string, std::map<std::string, int>> by_manufacturer;
  std::map<std::string, std::map<std::uint32_t, int>> by_as;
  int none_only = 0;        // 270
  int deprecated_only = 0;  // strongest policy deprecated (280)
  int weak_certificate = 0; // cert weaker than strongest policy (591)
  int cert_reuse = 0;       // hosts sharing a certificate with >= 2 others
  int anonymous_access = 0; // anonymous offered (572)
  int deficient_total = 0;  // 1025 = 92.0 %
  int servers = 0;

  friend bool operator==(const DeficitBreakdown&, const DeficitBreakdown&) = default;
};

DeficitBreakdown assess_deficits(const ScanSnapshot& snapshot);

// ------------------------------------------------------ Fig. 2 / §5.5 ----

struct WeeklyObservation {
  int measurement_index = 0;
  std::int64_t date_days = 0;
  int servers = 0;
  int discovery = 0;
  int via_reference = 0;
  int non_default_port = 0;
  int deficient = 0;
  double deficient_pct = 0;
  std::map<std::string, int> by_manufacturer;
  int reuse_devices = 0;  // hosts sharing one of the big-cluster certs

  friend bool operator==(const WeeklyObservation&, const WeeklyObservation&) = default;
};

struct RenewalEvent {
  Ipv4 ip = 0;
  int week = 0;  // measurement where the new certificate first appeared
  bool software_update = false;
  bool sha1_replaced = false;   // security increased (7 cases)
  bool downgraded_to_sha1 = false;  // 1 case

  friend bool operator==(const RenewalEvent&, const RenewalEvent&) = default;
};

struct LongitudinalStats {
  std::vector<WeeklyObservation> weeks;
  double deficiency_avg = 0, deficiency_std = 0, deficiency_min = 0, deficiency_max = 0;
  std::size_t total_distinct_certificates = 0;  // 4296
  std::size_t sha1_after_2017 = 0;              // 2174
  std::size_t sha1_after_2019 = 0;              // 1923
  std::vector<RenewalEvent> renewals;           // 84 on static IPs
  int renewals_with_software_update = 0;        // 9
  int sha1_upgrades = 0;                        // 7
  int downgrades = 0;                           // 1

  friend bool operator==(const LongitudinalStats&, const LongitudinalStats&) = default;
};

LongitudinalStats assess_longitudinal(const std::vector<ScanSnapshot>& snapshots);

// --------------------------------------------- cross-protocol populations ----

/// One measurement's per-protocol record counts. Covers *every* record
/// (discovery servers included), like the scan-quality tallies: the row
/// measures what the scan engine talked to, not the server population.
struct ProtocolWeek {
  int measurement_index = 0;
  std::map<ProtocolId, std::uint64_t> hosts;

  friend bool operator==(const ProtocolWeek&, const ProtocolWeek&) = default;
};

/// Per-protocol population split along the ProtocolProbe registry
/// dimension. The final-measurement maps count servers only (discovery
/// filtered, like the figures). A pure OPC UA study yields a single
/// ProtocolId::opcua key everywhere, so pre-registry outputs stay
/// comparable.
struct ProtocolStats {
  std::vector<ProtocolWeek> weeks;
  std::map<ProtocolId, std::uint64_t> servers;    // final measurement
  std::map<ProtocolId, std::uint64_t> deficient;  // is_deficient() servers
  std::map<ProtocolId, std::uint64_t> anonymous;  // anonymous_offered servers

  friend bool operator==(const ProtocolStats&, const ProtocolStats&) = default;
};

ProtocolStats assess_protocols(const std::vector<ScanSnapshot>& snapshots);

/// Shared helpers.
bool is_deficient(const HostScanRecord& host);
std::optional<Certificate> primary_certificate(const HostScanRecord& host);
SecurityPolicy strongest_policy(const HostScanRecord& host);

}  // namespace opcua_study
