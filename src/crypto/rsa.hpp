// RSA primitives for OPC UA secure-channel crypto and certificate
// signatures.
//
// Policy mapping (Table 1 of the paper / OPC UA profiles):
//   Basic128Rsa15          → PKCS#1 v1.5 encryption, PKCS#1 v1.5 SHA-1 sigs
//   Basic256               → OAEP(SHA-1) encryption,  PKCS#1 v1.5 SHA-1 sigs
//   Aes128_Sha256_RsaOaep  → OAEP(SHA-1) encryption,  PKCS#1 v1.5 SHA-256 sigs
//   Basic256Sha256         → OAEP(SHA-1) encryption,  PKCS#1 v1.5 SHA-256 sigs
//   Aes256_Sha256_RsaPss   → OAEP(SHA-256) encryption, PSS SHA-256 sigs
#pragma once

#include <optional>

#include "crypto/bignum.hpp"
#include "crypto/hash.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace opcua_study {

struct RsaPublicKey {
  Bignum n;
  Bignum e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  std::size_t modulus_bits() const { return n.bit_length(); }
  bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }
};

struct RsaPrivateKey {
  Bignum n, e, d;
  Bignum p, q, dp, dq, qinv;  // CRT components

  RsaPublicKey public_key() const { return {n, e}; }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key with public exponent 65537. `bits` is the modulus
/// size (1024 / 2048 / 4096 in the study corpus; tests use smaller).
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits, int mr_rounds = 12);

/// Raw modular exponentiation (m^e mod n) — building block only.
Bignum rsa_public_op(const RsaPublicKey& key, const Bignum& m);
/// Raw private operation via CRT.
Bignum rsa_private_op(const RsaPrivateKey& key, const Bignum& c);

// --- Signatures -----------------------------------------------------------

Bytes rsa_pkcs1v15_sign(const RsaPrivateKey& key, HashAlgorithm alg,
                        std::span<const std::uint8_t> message);
bool rsa_pkcs1v15_verify(const RsaPublicKey& key, HashAlgorithm alg,
                         std::span<const std::uint8_t> message,
                         std::span<const std::uint8_t> signature);

Bytes rsa_pss_sign(const RsaPrivateKey& key, HashAlgorithm alg,
                   std::span<const std::uint8_t> message, Rng& rng);
bool rsa_pss_verify(const RsaPublicKey& key, HashAlgorithm alg,
                    std::span<const std::uint8_t> message,
                    std::span<const std::uint8_t> signature);

// --- Encryption -----------------------------------------------------------

/// Max plaintext bytes a single RSA block can carry under each scheme.
std::size_t rsa_pkcs1v15_max_plaintext(const RsaPublicKey& key);
std::size_t rsa_oaep_max_plaintext(const RsaPublicKey& key, HashAlgorithm alg);

Bytes rsa_pkcs1v15_encrypt(const RsaPublicKey& key, std::span<const std::uint8_t> plaintext,
                           Rng& rng);
std::optional<Bytes> rsa_pkcs1v15_decrypt(const RsaPrivateKey& key,
                                          std::span<const std::uint8_t> ciphertext);

Bytes rsa_oaep_encrypt(const RsaPublicKey& key, HashAlgorithm alg,
                       std::span<const std::uint8_t> plaintext, Rng& rng);
std::optional<Bytes> rsa_oaep_decrypt(const RsaPrivateKey& key, HashAlgorithm alg,
                                      std::span<const std::uint8_t> ciphertext);

/// MGF1 mask generation (shared by OAEP and PSS).
Bytes mgf1(HashAlgorithm alg, std::span<const std::uint8_t> seed, std::size_t length);

}  // namespace opcua_study
