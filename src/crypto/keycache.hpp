// Deterministic RSA key factory with an optional disk cache.
//
// The synthetic Internet carries ~1900 RSA keys (1024/2048/4096 bit).
// Generating them is by far the most expensive step of a full campaign, so
// keys are (a) derived deterministically from (seed, label, bits) — the
// same study config always yields the same corpus — and (b) memoised in a
// small text file so repeated bench/test runs skip generation entirely.
// The cache stores p and q; all derived values (d, CRT parts) are
// recomputed, keeping the file format trivial and diffable.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "crypto/rsa.hpp"

namespace opcua_study {

class KeyFactory {
 public:
  /// `cache_path` empty → in-memory only. The default path comes from
  /// $OPCUA_STUDY_KEY_CACHE, falling back to ".opcua_study_keycache" in the
  /// working directory.
  explicit KeyFactory(std::uint64_t seed, std::string cache_path = default_cache_path());
  ~KeyFactory();

  KeyFactory(const KeyFactory&) = delete;
  KeyFactory& operator=(const KeyFactory&) = delete;

  /// Deterministic key for (seed, label, bits).
  RsaKeyPair get(const std::string& label, std::size_t bits);

  std::size_t generated() const { return generated_; }
  std::size_t cache_hits() const { return cache_hits_; }
  /// Persist newly generated entries; called by the destructor as well.
  void flush();

  static std::string default_cache_path();

 private:
  RsaKeyPair assemble(const Bignum& p, const Bignum& q) const;

  std::uint64_t seed_;
  std::string cache_path_;
  // (label, bits) -> (p hex, q hex)
  std::map<std::pair<std::string, std::size_t>, std::pair<std::string, std::string>> entries_;
  std::size_t generated_ = 0;
  std::size_t cache_hits_ = 0;
  bool dirty_ = false;
};

}  // namespace opcua_study
