// Deterministic RSA key factory with an optional disk cache.
//
// The synthetic Internet carries ~1900 RSA keys (1024/2048/4096 bit).
// Generating them is by far the most expensive step of a full campaign, so
// keys are (a) derived deterministically from (seed, label, bits) — the
// same study config always yields the same corpus — and (b) memoised in a
// small text file so repeated bench/test runs skip generation entirely.
// The cache stores p and q; all derived values (d, CRT parts) are
// recomputed, keeping the file format trivial and diffable.
//
// Thread model: every (label, bits) pair owns an independent Rng stream,
// so generation order — and therefore thread count — cannot change any
// key. prefetch() exploits that to generate a deployment's whole key
// corpus on a worker pool; get() stays safe to call concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "crypto/rsa.hpp"

namespace opcua_study {

class KeyFactory {
 public:
  /// `cache_path` empty → in-memory only. The default path comes from
  /// $OPCUA_STUDY_KEY_CACHE, falling back to ".opcua_study_keycache" in the
  /// working directory.
  explicit KeyFactory(std::uint64_t seed, std::string cache_path = default_cache_path());
  ~KeyFactory();

  KeyFactory(const KeyFactory&) = delete;
  KeyFactory& operator=(const KeyFactory&) = delete;

  /// Deterministic key for (seed, label, bits).
  RsaKeyPair get(const std::string& label, std::size_t bits);

  /// Generate every (label, bits) not yet cached, on `threads` workers
  /// (<= 0: hardware concurrency, 1: inline). Duplicates in `wants` are
  /// deduplicated; entries already cached cost nothing. The resulting
  /// cache state is identical to issuing the same get() calls serially.
  void prefetch(const std::vector<std::pair<std::string, std::size_t>>& wants, int threads = 0);

  std::size_t generated() const;
  std::size_t cache_hits() const;
  /// Persist newly generated entries; called by the destructor as well.
  /// Writes the whole file to `<path>.tmp` and atomically renames it over
  /// the cache, so a crash mid-flush never clobbers the existing corpus.
  void flush();

  static std::string default_cache_path();

 private:
  RsaKeyPair assemble(const Bignum& p, const Bignum& q) const;
  /// The deterministic generation loop for one entry; pure function of
  /// (seed, label, bits) — safe to run on any thread.
  static std::pair<Bignum, Bignum> generate_pq(std::uint64_t seed, const std::string& label,
                                               std::size_t bits);

  std::uint64_t seed_;
  std::string cache_path_;
  mutable std::mutex mu_;  // guards entries_, counters, dirty_
  // (label, bits) -> (p hex, q hex)
  std::map<std::pair<std::string, std::size_t>, std::pair<std::string, std::string>> entries_;
  std::size_t generated_ = 0;
  std::size_t cache_hits_ = 0;
  bool dirty_ = false;
};

}  // namespace opcua_study
