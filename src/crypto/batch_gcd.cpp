#include "crypto/batch_gcd.hpp"

#include "util/thread_pool.hpp"

namespace opcua_study {

std::size_t BatchGcdResult::affected() const {
  std::size_t n = 0;
  for (const auto& f : shared_factor) {
    if (!f.is_zero()) ++n;
  }
  return n;
}

BatchGcdResult batch_gcd(const std::vector<Bignum>& moduli, int threads) {
  BatchGcdResult result;
  result.shared_factor.assign(moduli.size(), Bignum{});
  if (moduli.size() < 2) return result;
  const ThreadPool pool(threads);

  // Leaves: zero moduli would collapse the whole product to zero, so they
  // ride along as 1 (and can never be reported as sharing).
  std::vector<Bignum> leaves(moduli.size());
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    leaves[i] = moduli[i].is_zero() ? Bignum{1} : moduli[i];
  }

  // Squares tree, bottom-up: squares[0][i] = n_i² (the only squarings in
  // the whole run), squares[L+1][i] = squares[L][2i]·squares[L][2i+1] ==
  // (node_L_2i·node_L_2i+1)². Odd tails are carried up by copy — their
  // square is never recomputed. The topmost level (the square of the full
  // product) is never needed: the remainder tree is seeded with P itself.
  std::vector<std::vector<Bignum>> squares;
  squares.emplace_back(leaves.size());
  pool.parallel_for(leaves.size(),
                    [&](std::size_t i) { squares[0][i] = leaves[i].sqr(); });
  while (squares.back().size() > 2) {
    const auto& prev = squares.back();
    std::vector<Bignum> next((prev.size() + 1) / 2);
    pool.parallel_for(prev.size() / 2, [&](std::size_t i) {
      next[i] = prev[2 * i] * prev[2 * i + 1];
    });
    if (prev.size() % 2) next.back() = prev.back();
    squares.push_back(std::move(next));
  }

  // Root of the *plain* product tree (levels collapsed as we go — only P
  // is needed above the leaves; `leaves` is dead after this point).
  std::vector<Bignum> products = std::move(leaves);
  while (products.size() > 1) {
    std::vector<Bignum> next((products.size() + 1) / 2);
    pool.parallel_for(products.size() / 2, [&](std::size_t i) {
      next[i] = products[2 * i] * products[2 * i + 1];
    });
    if (products.size() % 2) next.back() = std::move(products.back());
    products = std::move(next);
  }

  // Remainder tree downward over the squares: rem[i] at level L equals
  // P mod (node_L_i)². Each level only needs its parent level, and each
  // consumed squares level is freed immediately — peak memory stays one
  // tree, not two.
  std::vector<Bignum> rems = {std::move(products[0])};
  for (std::size_t level = squares.size(); level-- > 0;) {
    const auto& sq = squares[level];
    std::vector<Bignum> next(sq.size());
    pool.parallel_for(sq.size(), [&](std::size_t i) {
      const Bignum& parent_rem = rems[i / 2];
      next[i] = parent_rem % sq[i];
    });
    rems = std::move(next);
    squares[level].clear();
    squares[level].shrink_to_fit();
  }

  pool.parallel_for(moduli.size(), [&](std::size_t i) {
    if (moduli[i].is_zero()) return;
    // z = (P mod n_i²) / n_i is exact; gcd(z, n_i) > 1 iff n_i shares a
    // prime with the rest of the batch.
    const Bignum z = rems[i] / moduli[i];
    const Bignum g = Bignum::gcd(z, moduli[i]);
    if (g > Bignum{1}) result.shared_factor[i] = g;
  });
  return result;
}

BatchGcdResult pairwise_gcd(const std::vector<Bignum>& moduli) {
  BatchGcdResult result;
  result.shared_factor.assign(moduli.size(), Bignum{});
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < moduli.size(); ++j) {
      const Bignum g = Bignum::gcd(moduli[i], moduli[j]);
      if (g > Bignum{1}) {
        result.shared_factor[i] = g;
        result.shared_factor[j] = g;
      }
    }
  }
  return result;
}

}  // namespace opcua_study
