#include "crypto/batch_gcd.hpp"

namespace opcua_study {

std::size_t BatchGcdResult::affected() const {
  std::size_t n = 0;
  for (const auto& f : shared_factor) {
    if (!f.is_zero()) ++n;
  }
  return n;
}

BatchGcdResult batch_gcd(const std::vector<Bignum>& moduli) {
  BatchGcdResult result;
  result.shared_factor.assign(moduli.size(), Bignum{});
  if (moduli.size() < 2) return result;

  // Product tree: levels[0] = moduli, levels.back() = single product.
  std::vector<std::vector<Bignum>> levels;
  levels.push_back(moduli);
  while (levels.back().size() > 1) {
    const auto& prev = levels.back();
    std::vector<Bignum> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) next.push_back(prev[i] * prev[i + 1]);
    if (prev.size() % 2) next.push_back(prev.back());
    levels.push_back(std::move(next));
  }

  // Remainder tree downward over squares: rem[i] at level L equals
  // P mod (node_L_i)^2.
  std::vector<Bignum> rems = {levels.back()[0]};
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const auto& nodes = levels[level];
    std::vector<Bignum> next(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Bignum& parent_rem = rems[i / 2];
      next[i] = parent_rem % (nodes[i] * nodes[i]);
    }
    rems = std::move(next);
  }

  for (std::size_t i = 0; i < moduli.size(); ++i) {
    if (moduli[i].is_zero()) continue;
    // z = (P mod n_i^2) / n_i is exact; gcd(z, n_i) > 1 iff n_i shares a
    // prime with the rest of the batch.
    const Bignum z = rems[i] / moduli[i];
    const Bignum g = Bignum::gcd(z, moduli[i]);
    if (g > Bignum{1}) result.shared_factor[i] = g;
  }
  return result;
}

BatchGcdResult pairwise_gcd(const std::vector<Bignum>& moduli) {
  BatchGcdResult result;
  result.shared_factor.assign(moduli.size(), Bignum{});
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < moduli.size(); ++j) {
      const Bignum g = Bignum::gcd(moduli[i], moduli[j]);
      if (g > Bignum{1}) {
        result.shared_factor[i] = g;
        result.shared_factor[j] = g;
      }
    }
  }
  return result;
}

}  // namespace opcua_study
