// HMAC (RFC 2104) and the TLS-style P_SHA pseudo-random function.
//
// OPC UA SecureConversation derives its symmetric signing/encryption keys
// and IVs from the channel nonces with P_SHA1 (Basic128Rsa15, Basic256) or
// P_SHA256 (the SHA-256 policy family) — OPC 10000-6 §6.7.5.
#pragma once

#include <span>

#include "crypto/hash.hpp"
#include "util/bytes.hpp"

namespace opcua_study {

Bytes hmac(HashAlgorithm alg, std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> data);

/// P_HASH(secret, seed) expanded to `length` bytes (RFC 5246 §5 without the
/// label; OPC UA feeds the remote nonce as secret and local nonce as seed).
Bytes p_hash(HashAlgorithm alg, std::span<const std::uint8_t> secret,
             std::span<const std::uint8_t> seed, std::size_t length);

}  // namespace opcua_study
