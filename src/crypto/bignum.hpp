// Arbitrary-precision unsigned integers for RSA.
//
// Scope: exactly what the study needs — modular exponentiation
// (Montgomery, fixed-window), Miller-Rabin prime generation for
// 512..2048-bit primes, GCD/modular inverse, and byte-string conversions
// for DER. Not constant-time: this library generates and analyses a
// *synthetic* certificate corpus; it does not protect secrets.
//
// Representation: little-endian 64-bit limbs with __int128 carry chains.
// Multiplication is schoolbook below kKaratsubaThresholdLimbs and
// Karatsuba above (with a dedicated squaring routine); division is Knuth
// TAOCP Algorithm D in base 2^64 below kBurnikelThresholdLimbs and
// Burnikel-Ziegler recursive division above, so the §5.3 batch-GCD
// remainder tree stops paying quadratic divmod on its megabit nodes.
//
// Determinism invariant: random_bits() draws one Rng::next() per 32-bit
// word (low halves only) — the exact consumption pattern of the original
// 32-bit-limb core — so a given seed keeps producing bit-identical primes,
// keys and certificates across the 64-bit conversion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace opcua_study {

class Bignum {
 public:
  Bignum() = default;
  Bignum(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  static Bignum from_bytes_be(std::span<const std::uint8_t> bytes);
  static Bignum from_hex(std::string_view hex);

  /// Big-endian bytes, zero-padded on the left to at least `min_len`.
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  int compare(const Bignum& other) const;  // -1 / 0 / +1
  bool operator==(const Bignum& other) const { return compare(other) == 0; }
  bool operator!=(const Bignum& other) const { return compare(other) != 0; }
  bool operator<(const Bignum& other) const { return compare(other) < 0; }
  bool operator<=(const Bignum& other) const { return compare(other) <= 0; }
  bool operator>(const Bignum& other) const { return compare(other) > 0; }
  bool operator>=(const Bignum& other) const { return compare(other) >= 0; }

  Bignum operator+(const Bignum& other) const;
  /// Requires *this >= other.
  Bignum operator-(const Bignum& other) const;
  Bignum operator*(const Bignum& other) const;
  /// this², via the dedicated squaring routine (≈2/3 the limb products of
  /// a general multiply); Karatsuba-recursive above the threshold.
  Bignum sqr() const;
  Bignum operator<<(std::size_t bits) const;
  Bignum operator>>(std::size_t bits) const;

  struct DivMod;  // {quotient, remainder}; defined after the class
  /// Dispatches Knuth-D (small/unbalanced) or Burnikel-Ziegler (large).
  DivMod divmod(const Bignum& divisor) const;
  /// Schoolbook Knuth Algorithm D in base 2^64; the Burnikel-Ziegler base
  /// case, exposed as a cross-check oracle for the recursive path.
  DivMod divmod_knuth(const Bignum& divisor) const;
  /// Slow reference division (shift-subtract test oracle).
  DivMod divmod_binary(const Bignum& divisor) const;
  Bignum operator/(const Bignum& d) const;
  Bignum operator%(const Bignum& d) const;
  std::uint32_t mod_u32(std::uint32_t d) const;
  std::uint64_t mod_u64(std::uint64_t d) const;

  static Bignum gcd(Bignum a, Bignum b);
  /// a^{-1} mod m; throws std::domain_error if gcd(a, m) != 1.
  static Bignum mod_inverse(const Bignum& a, const Bignum& m);
  /// base^exp mod mod. Fixed-window Montgomery for odd moduli, generic
  /// square-and-multiply otherwise.
  static Bignum mod_pow(const Bignum& base, const Bignum& exp, const Bignum& mod);

  /// Uniform in [0, 2^bits) with exactly `bits` significant bits requested
  /// by callers that set the top bit themselves. Consumes one Rng draw per
  /// 32-bit word (see the determinism invariant in the file header).
  static Bignum random_bits(Rng& rng, std::size_t bits);
  static Bignum random_below(Rng& rng, const Bignum& bound);

  /// Miller-Rabin with `rounds` random bases (plus base 2 first — it
  /// eliminates nearly all composites immediately), fronted by packed
  /// small-prime trial division.
  static bool is_probable_prime(const Bignum& n, int rounds, Rng& rng);
  /// Random prime with the top two bits set (so p*q has exactly 2*bits bits).
  static Bignum generate_prime(Rng& rng, std::size_t bits, int mr_rounds = 12);

  /// Schoolbook→Karatsuba crossover, in limbs. The setter is a test/bench
  /// hook (threshold-crossing equivalence checks); it is not synchronized,
  /// so only touch it from single-threaded test code.
  static std::size_t karatsuba_threshold();
  static void set_karatsuba_threshold(std::size_t limbs);

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  friend class Montgomery;
  void trim();
  /// Limbs [from, from+count) as a trimmed value; out-of-range limbs are 0.
  Bignum slice_limbs(std::size_t from, std::size_t count) const;
  static DivMod bz_div_2n_by_1n(const Bignum& a, const Bignum& b, std::size_t n);
  static DivMod bz_div_3h_by_2h(const Bignum& a, const Bignum& b, std::size_t h);
  DivMod divmod_burnikel(const Bignum& divisor) const;
  // Little-endian 64-bit limbs; empty vector == zero.
  std::vector<std::uint64_t> limbs_;
};

struct Bignum::DivMod {
  Bignum quotient;
  Bignum remainder;
};

inline Bignum Bignum::operator/(const Bignum& d) const { return divmod(d).quotient; }
inline Bignum Bignum::operator%(const Bignum& d) const { return divmod(d).remainder; }

/// Montgomery multiplication context for a fixed odd modulus. Used by
/// mod_pow and Miller-Rabin; exposed for RSA-CRT. Small moduli use a
/// 64-bit CIOS multiply; large ones a Karatsuba product plus separated
/// REDC. pow() is fixed-window (k-ary) with a window sized from the
/// exponent length.
class Montgomery {
 public:
  explicit Montgomery(const Bignum& odd_modulus);

  Bignum to_mont(const Bignum& x) const;
  Bignum from_mont(const Bignum& x) const;
  Bignum mul(const Bignum& a_mont, const Bignum& b_mont) const;
  Bignum sqr(const Bignum& a_mont) const;
  Bignum pow(const Bignum& base, const Bignum& exp) const;
  /// pow() without the final conversion — the result stays in Montgomery
  /// form (Miller-Rabin keeps squaring it there).
  Bignum pow_to_mont(const Bignum& base, const Bignum& exp) const;
  /// R mod n — the Montgomery representation of 1 (canonical, comparable).
  const Bignum& one_mont() const { return one_; }
  const Bignum& modulus() const { return n_; }

 private:
  Bignum reduce(const Bignum& t) const;  // REDC of t < n*R
  Bignum n_;
  Bignum rr_;   // R^2 mod n, R = 2^(64*k)
  Bignum one_;  // R mod n
  std::uint64_t n0_inv_ = 0;
  std::size_t k_ = 0;
};

}  // namespace opcua_study
