// Arbitrary-precision unsigned integers for RSA.
//
// Scope: exactly what the study needs — modular exponentiation (Montgomery),
// Miller-Rabin prime generation for 512..2048-bit primes, GCD/modular
// inverse, and byte-string conversions for DER. Not constant-time: this
// library generates and analyses a *synthetic* certificate corpus; it does
// not protect secrets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace opcua_study {

class Bignum {
 public:
  Bignum() = default;
  Bignum(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  static Bignum from_bytes_be(std::span<const std::uint8_t> bytes);
  static Bignum from_hex(std::string_view hex);

  /// Big-endian bytes, zero-padded on the left to at least `min_len`.
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);
  std::uint64_t low_u64() const;

  int compare(const Bignum& other) const;  // -1 / 0 / +1
  bool operator==(const Bignum& other) const { return compare(other) == 0; }
  bool operator!=(const Bignum& other) const { return compare(other) != 0; }
  bool operator<(const Bignum& other) const { return compare(other) < 0; }
  bool operator<=(const Bignum& other) const { return compare(other) <= 0; }
  bool operator>(const Bignum& other) const { return compare(other) > 0; }
  bool operator>=(const Bignum& other) const { return compare(other) >= 0; }

  Bignum operator+(const Bignum& other) const;
  /// Requires *this >= other.
  Bignum operator-(const Bignum& other) const;
  Bignum operator*(const Bignum& other) const;
  Bignum operator<<(std::size_t bits) const;
  Bignum operator>>(std::size_t bits) const;

  struct DivMod;  // {quotient, remainder}; defined after the class
  DivMod divmod(const Bignum& divisor) const;
  /// Slow reference division (test oracle for the Knuth-D fast path).
  DivMod divmod_binary(const Bignum& divisor) const;
  Bignum operator/(const Bignum& d) const;
  Bignum operator%(const Bignum& d) const;
  std::uint32_t mod_u32(std::uint32_t d) const;

  static Bignum gcd(Bignum a, Bignum b);
  /// a^{-1} mod m; throws std::domain_error if gcd(a, m) != 1.
  static Bignum mod_inverse(const Bignum& a, const Bignum& m);
  /// base^exp mod mod. Montgomery ladder for odd moduli, generic otherwise.
  static Bignum mod_pow(const Bignum& base, const Bignum& exp, const Bignum& mod);

  /// Uniform in [0, 2^bits) with exactly `bits` significant bits requested
  /// by callers that set the top bit themselves.
  static Bignum random_bits(Rng& rng, std::size_t bits);
  static Bignum random_below(Rng& rng, const Bignum& bound);

  /// Miller-Rabin with `rounds` random bases (plus base 2 first — it
  /// eliminates nearly all composites immediately).
  static bool is_probable_prime(const Bignum& n, int rounds, Rng& rng);
  /// Random prime with the top two bits set (so p*q has exactly 2*bits bits).
  static Bignum generate_prime(Rng& rng, std::size_t bits, int mr_rounds = 12);

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  friend class Montgomery;
  void trim();
  // Little-endian 32-bit limbs; empty vector == zero.
  std::vector<std::uint32_t> limbs_;
};

struct Bignum::DivMod {
  Bignum quotient;
  Bignum remainder;
};

inline Bignum Bignum::operator/(const Bignum& d) const { return divmod(d).quotient; }
inline Bignum Bignum::operator%(const Bignum& d) const { return divmod(d).remainder; }

/// Montgomery multiplication context for a fixed odd modulus. Used by
/// mod_pow and Miller-Rabin; exposed for RSA-CRT.
class Montgomery {
 public:
  explicit Montgomery(const Bignum& odd_modulus);

  Bignum to_mont(const Bignum& x) const;
  Bignum from_mont(const Bignum& x) const;
  Bignum mul(const Bignum& a_mont, const Bignum& b_mont) const;
  Bignum pow(const Bignum& base, const Bignum& exp) const;
  const Bignum& modulus() const { return n_; }

 private:
  Bignum n_;
  Bignum rr_;  // R^2 mod n, R = 2^(32*k)
  std::uint32_t n0_inv_ = 0;
  std::size_t k_ = 0;
};

}  // namespace opcua_study
