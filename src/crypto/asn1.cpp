#include "crypto/asn1.hpp"

#include <cstdio>

#include "util/date.hpp"

namespace opcua_study {

// ------------------------------------------------------------------ Oid ----

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(arcs[i]);
  }
  return out;
}

Bytes Oid::encode_body() const {
  if (arcs.size() < 2) throw std::invalid_argument("OID needs >= 2 arcs");
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(arcs[0] * 40 + arcs[1]));
  for (std::size_t i = 2; i < arcs.size(); ++i) {
    std::uint32_t v = arcs[i];
    std::uint8_t tmp[5];
    int n = 0;
    do {
      tmp[n++] = static_cast<std::uint8_t>(v & 0x7f);
      v >>= 7;
    } while (v);
    for (int j = n - 1; j >= 0; --j) {
      out.push_back(static_cast<std::uint8_t>(tmp[j] | (j ? 0x80 : 0x00)));
    }
  }
  return out;
}

Oid Oid::decode_body(std::span<const std::uint8_t> body) {
  if (body.empty()) throw DecodeError("empty OID");
  Oid o;
  o.arcs.push_back(body[0] / 40);
  o.arcs.push_back(body[0] % 40);
  std::uint32_t v = 0;
  for (std::size_t i = 1; i < body.size(); ++i) {
    v = (v << 7) | (body[i] & 0x7f);
    if (!(body[i] & 0x80)) {
      o.arcs.push_back(v);
      v = 0;
    }
  }
  return o;
}

namespace oid {
const Oid kRsaEncryption{{1, 2, 840, 113549, 1, 1, 1}};
const Oid kMd5WithRsa{{1, 2, 840, 113549, 1, 1, 4}};
const Oid kSha1WithRsa{{1, 2, 840, 113549, 1, 1, 5}};
const Oid kSha256WithRsa{{1, 2, 840, 113549, 1, 1, 11}};
const Oid kCommonName{{2, 5, 4, 3}};
const Oid kOrganization{{2, 5, 4, 10}};
const Oid kCountry{{2, 5, 4, 6}};
const Oid kSubjectAltName{{2, 5, 29, 17}};
const Oid kBasicConstraints{{2, 5, 29, 19}};
const Oid kKeyUsage{{2, 5, 29, 15}};
}  // namespace oid

// ------------------------------------------------------------ DerWriter ----

void DerWriter::length(std::size_t len) {
  if (len < 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  std::uint8_t tmp[8];
  int n = 0;
  while (len) {
    tmp[n++] = static_cast<std::uint8_t>(len & 0xff);
    len >>= 8;
  }
  buf_.push_back(static_cast<std::uint8_t>(0x80 | n));
  for (int i = n - 1; i >= 0; --i) buf_.push_back(tmp[i]);
}

void DerWriter::tlv(std::uint8_t tag, std::span<const std::uint8_t> content) {
  buf_.push_back(tag);
  length(content.size());
  buf_.insert(buf_.end(), content.begin(), content.end());
}

void DerWriter::boolean(bool v) {
  const std::uint8_t b = v ? 0xff : 0x00;
  tlv(der::kBoolean, {&b, 1});
}

void DerWriter::integer(const Bignum& v) {
  Bytes body = v.to_bytes_be();
  if (body.empty()) body.push_back(0);
  // DER: positive integers must not have the top bit set.
  if (body[0] & 0x80) body.insert(body.begin(), 0x00);
  tlv(der::kInteger, body);
}

void DerWriter::integer(std::int64_t v) {
  if (v < 0) throw std::invalid_argument("negative DER integers unsupported");
  integer(Bignum{static_cast<std::uint64_t>(v)});
}

void DerWriter::null() { tlv(der::kNull, {}); }

void DerWriter::oid_value(const Oid& o) { tlv(der::kOid, o.encode_body()); }

void DerWriter::bit_string(std::span<const std::uint8_t> bits, unsigned unused_bits) {
  Bytes body;
  body.reserve(bits.size() + 1);
  body.push_back(static_cast<std::uint8_t>(unused_bits));
  body.insert(body.end(), bits.begin(), bits.end());
  tlv(der::kBitString, body);
}

void DerWriter::octet_string(std::span<const std::uint8_t> data) { tlv(der::kOctetString, data); }

void DerWriter::utf8_string(std::string_view s) {
  tlv(der::kUtf8String, {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void DerWriter::printable_string(std::string_view s) {
  tlv(der::kPrintableString, {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void DerWriter::ia5_string(std::string_view s) {
  tlv(der::kIa5String, {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void DerWriter::time(std::int64_t days_since_epoch) {
  const CivilDate d = civil_from_days(days_since_epoch);
  char buf[24];
  if (d.year >= 2050) {
    std::snprintf(buf, sizeof buf, "%04d%02u%02u000000Z", d.year, d.month, d.day);
    tlv(der::kGeneralizedTime, {reinterpret_cast<const std::uint8_t*>(buf), 15});
  } else {
    std::snprintf(buf, sizeof buf, "%02d%02u%02u000000Z", d.year % 100, d.month, d.day);
    tlv(der::kUtcTime, {reinterpret_cast<const std::uint8_t*>(buf), 13});
  }
}

void DerWriter::constructed(std::uint8_t tag, const std::function<void(DerWriter&)>& fill) {
  DerWriter inner;
  fill(inner);
  tlv(tag, inner.buf_);
}

void DerWriter::raw(std::span<const std::uint8_t> already_encoded) {
  buf_.insert(buf_.end(), already_encoded.begin(), already_encoded.end());
}

// ------------------------------------------------------------ DerParser ----

std::uint8_t DerParser::peek_tag() const {
  if (done()) throw DecodeError("DER: peek past end");
  return data_[pos_];
}

DerParser::Tlv DerParser::next() {
  if (done()) throw DecodeError("DER: read past end");
  const std::size_t start = pos_;
  const std::uint8_t tag = data_[pos_++];
  if (pos_ >= data_.size()) throw DecodeError("DER: truncated length");
  std::size_t len = data_[pos_++];
  if (len & 0x80) {
    const std::size_t n = len & 0x7f;
    if (n == 0 || n > 8) throw DecodeError("DER: bad long-form length");
    if (pos_ + n > data_.size()) throw DecodeError("DER: truncated length");
    len = 0;
    for (std::size_t i = 0; i < n; ++i) len = (len << 8) | data_[pos_++];
  }
  if (pos_ + len > data_.size()) throw DecodeError("DER: truncated content");
  Tlv out;
  out.tag = tag;
  out.content = data_.subspan(pos_, len);
  out.full = data_.subspan(start, pos_ + len - start);
  pos_ += len;
  return out;
}

DerParser::Tlv DerParser::expect(std::uint8_t tag) {
  Tlv t = next();
  if (t.tag != tag) {
    throw DecodeError("DER: expected tag " + std::to_string(tag) + ", got " + std::to_string(t.tag));
  }
  return t;
}

Bignum DerParser::read_integer() {
  const Tlv t = expect(der::kInteger);
  return Bignum::from_bytes_be(t.content);
}

Oid DerParser::read_oid() {
  const Tlv t = expect(der::kOid);
  return Oid::decode_body(t.content);
}

std::string DerParser::read_string() {
  const Tlv t = next();
  if (t.tag != der::kUtf8String && t.tag != der::kPrintableString && t.tag != der::kIa5String) {
    throw DecodeError("DER: not a string type");
  }
  return std::string(t.content.begin(), t.content.end());
}

std::int64_t DerParser::read_time_days() {
  const Tlv t = next();
  const std::string s(t.content.begin(), t.content.end());
  CivilDate d;
  if (t.tag == der::kUtcTime) {
    if (s.size() < 13) throw DecodeError("bad UTCTime");
    const int yy = std::stoi(s.substr(0, 2));
    d.year = yy >= 50 ? 1900 + yy : 2000 + yy;
    d.month = static_cast<unsigned>(std::stoi(s.substr(2, 2)));
    d.day = static_cast<unsigned>(std::stoi(s.substr(4, 2)));
  } else if (t.tag == der::kGeneralizedTime) {
    if (s.size() < 15) throw DecodeError("bad GeneralizedTime");
    d.year = std::stoi(s.substr(0, 4));
    d.month = static_cast<unsigned>(std::stoi(s.substr(4, 2)));
    d.day = static_cast<unsigned>(std::stoi(s.substr(6, 2)));
  } else {
    throw DecodeError("DER: not a time type");
  }
  return days_from_civil(d);
}

Bytes DerParser::read_octet_string() {
  const Tlv t = expect(der::kOctetString);
  return Bytes(t.content.begin(), t.content.end());
}

Bytes DerParser::read_bit_string() {
  const Tlv t = expect(der::kBitString);
  if (t.content.empty()) throw DecodeError("empty BIT STRING");
  return Bytes(t.content.begin() + 1, t.content.end());
}

}  // namespace opcua_study
