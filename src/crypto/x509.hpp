// X.509 v3 certificate subset for OPC UA application-instance certificates.
//
// OPC UA servers authenticate the secure channel with an application
// instance certificate whose subjectAltName carries the ApplicationURI.
// The study parses each received certificate and classifies it by
// signature hash (MD5 / SHA-1 / SHA-256) and RSA modulus length — the two
// dimensions of the paper's Figure 4 — plus NotBefore (§5.5 longitudinal
// analysis) and subject organization (the certificate-reuse manufacturer
// discussion of §5.3).
#pragma once

#include <optional>
#include <string>

#include "crypto/asn1.hpp"
#include "crypto/hash.hpp"
#include "crypto/rsa.hpp"
#include "util/bytes.hpp"

namespace opcua_study {

struct X509Name {
  std::string common_name;
  std::string organization;
  std::string country;

  bool operator==(const X509Name&) const = default;
};

struct CertificateSpec {
  X509Name subject;
  std::optional<X509Name> issuer;  // nullopt → self-signed
  HashAlgorithm signature_hash = HashAlgorithm::sha256;
  Bignum serial{1};
  std::int64_t not_before_days = 0;  // days since 1970-01-01
  std::int64_t not_after_days = 0;
  std::string application_uri;  // subjectAltName URI; empty → no SAN
};

struct Certificate {
  Bignum serial;
  HashAlgorithm signature_hash = HashAlgorithm::sha256;
  X509Name issuer;
  X509Name subject;
  std::int64_t not_before_days = 0;
  std::int64_t not_after_days = 0;
  RsaPublicKey public_key;
  std::string application_uri;
  Bytes tbs_der;     // signed portion
  Bytes signature;   // raw RSA signature bytes
  Bytes der;         // complete certificate

  bool self_signed() const { return issuer == subject; }
  std::size_t key_bits() const { return public_key.modulus_bits(); }
};

/// Build and sign a certificate; returns the DER encoding.
Bytes x509_create(const CertificateSpec& spec, const RsaPublicKey& subject_key,
                  const RsaPrivateKey& issuer_key);

/// Parse DER; throws DecodeError on malformed input.
Certificate x509_parse(std::span<const std::uint8_t> der_bytes);

/// Verify the certificate's signature against an issuer key (the subject's
/// own key for self-signed certificates).
bool x509_verify(const Certificate& cert, const RsaPublicKey& issuer_key);

/// OPC UA certificate thumbprint: SHA-1 over the DER encoding.
Bytes x509_thumbprint(std::span<const std::uint8_t> der_bytes);

/// 64-bit certificate fingerprint: the first 8 thumbprint bytes folded
/// big-endian. Collision-free in practice at study scale; the shared key
/// for posture matching, distinct_cert_fingerprints() and the v6 snapshot
/// certificate dictionary.
std::uint64_t certificate_fingerprint64(std::span<const std::uint8_t> der_bytes);

}  // namespace opcua_study
