#include "crypto/x509.hpp"

#include <stdexcept>

namespace opcua_study {

namespace {

const Oid& signature_oid(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::md5: return oid::kMd5WithRsa;
    case HashAlgorithm::sha1: return oid::kSha1WithRsa;
    case HashAlgorithm::sha256: return oid::kSha256WithRsa;
  }
  throw std::logic_error("bad hash");
}

HashAlgorithm hash_from_oid(const Oid& o) {
  if (o == oid::kMd5WithRsa) return HashAlgorithm::md5;
  if (o == oid::kSha1WithRsa) return HashAlgorithm::sha1;
  if (o == oid::kSha256WithRsa) return HashAlgorithm::sha256;
  throw DecodeError("unsupported signature algorithm OID " + o.to_string());
}

void write_name(DerWriter& w, const X509Name& name) {
  w.sequence([&](DerWriter& rdn_seq) {
    auto attribute = [&rdn_seq](const Oid& type, const std::string& value, bool printable) {
      if (value.empty()) return;
      rdn_seq.set([&](DerWriter& s) {
        s.sequence([&](DerWriter& attr) {
          attr.oid_value(type);
          if (printable) {
            attr.printable_string(value);
          } else {
            attr.utf8_string(value);
          }
        });
      });
    };
    attribute(oid::kCountry, name.country, true);
    attribute(oid::kOrganization, name.organization, false);
    attribute(oid::kCommonName, name.common_name, false);
  });
}

X509Name parse_name(std::span<const std::uint8_t> content) {
  X509Name name;
  DerParser rdns(content);
  while (!rdns.done()) {
    auto set_tlv = rdns.expect(der::kSet);
    DerParser set_parser(set_tlv.content);
    while (!set_parser.done()) {
      auto attr_tlv = set_parser.expect(der::kSequence);
      DerParser attr(attr_tlv.content);
      const Oid type = attr.read_oid();
      const std::string value = attr.read_string();
      if (type == oid::kCommonName) {
        name.common_name = value;
      } else if (type == oid::kOrganization) {
        name.organization = value;
      } else if (type == oid::kCountry) {
        name.country = value;
      }
    }
  }
  return name;
}

void write_spki(DerWriter& w, const RsaPublicKey& key) {
  w.sequence([&](DerWriter& spki) {
    spki.sequence([](DerWriter& alg) {
      alg.oid_value(oid::kRsaEncryption);
      alg.null();
    });
    DerWriter rsa_key;
    rsa_key.sequence([&](DerWriter& k) {
      k.integer(key.n);
      k.integer(key.e);
    });
    const Bytes key_der = rsa_key.take();
    spki.bit_string(key_der);
  });
}

RsaPublicKey parse_spki(std::span<const std::uint8_t> content) {
  DerParser spki(content);
  auto alg_tlv = spki.expect(der::kSequence);
  DerParser alg(alg_tlv.content);
  if (!(alg.read_oid() == oid::kRsaEncryption)) throw DecodeError("not an RSA key");
  const Bytes key_der = spki.read_bit_string();
  DerParser key_outer(key_der);
  auto key_tlv = key_outer.expect(der::kSequence);
  DerParser key(key_tlv.content);
  RsaPublicKey out;
  out.n = key.read_integer();
  out.e = key.read_integer();
  return out;
}

}  // namespace

Bytes x509_create(const CertificateSpec& spec, const RsaPublicKey& subject_key,
                  const RsaPrivateKey& issuer_key) {
  const X509Name& issuer = spec.issuer ? *spec.issuer : spec.subject;

  DerWriter tbs_writer;
  tbs_writer.sequence([&](DerWriter& tbs) {
    // [0] EXPLICIT version v3(2)
    tbs.constructed(der::context(0, true), [](DerWriter& v) { v.integer(std::int64_t{2}); });
    tbs.integer(spec.serial);
    tbs.sequence([&](DerWriter& alg) {
      alg.oid_value(signature_oid(spec.signature_hash));
      alg.null();
    });
    write_name(tbs, issuer);
    tbs.sequence([&](DerWriter& validity) {
      validity.time(spec.not_before_days);
      validity.time(spec.not_after_days);
    });
    write_name(tbs, spec.subject);
    write_spki(tbs, subject_key);
    // [3] EXPLICIT extensions
    tbs.constructed(der::context(3, true), [&](DerWriter& ext_wrap) {
      ext_wrap.sequence([&](DerWriter& exts) {
        if (!spec.application_uri.empty()) {
          exts.sequence([&](DerWriter& ext) {
            ext.oid_value(oid::kSubjectAltName);
            DerWriter san;
            san.sequence([&](DerWriter& names) {
              // GeneralName uniformResourceIdentifier [6] IA5String (primitive)
              names.tlv(der::context(6, false),
                        {reinterpret_cast<const std::uint8_t*>(spec.application_uri.data()),
                         spec.application_uri.size()});
            });
            const Bytes san_der = san.take();
            ext.octet_string(san_der);
          });
        }
        // basicConstraints: CA=false (end-entity application certificate)
        exts.sequence([](DerWriter& ext) {
          ext.oid_value(oid::kBasicConstraints);
          DerWriter bc;
          bc.sequence([](DerWriter&) {});
          const Bytes bc_der = bc.take();
          ext.octet_string(bc_der);
        });
      });
    });
  });
  const Bytes tbs = tbs_writer.take();
  const Bytes signature = rsa_pkcs1v15_sign(issuer_key, spec.signature_hash, tbs);

  DerWriter cert;
  cert.sequence([&](DerWriter& c) {
    c.raw(tbs);
    c.sequence([&](DerWriter& alg) {
      alg.oid_value(signature_oid(spec.signature_hash));
      alg.null();
    });
    c.bit_string(signature);
  });
  return cert.take();
}

Certificate x509_parse(std::span<const std::uint8_t> der_bytes) {
  Certificate cert;
  cert.der.assign(der_bytes.begin(), der_bytes.end());

  DerParser outer(der_bytes);
  auto cert_tlv = outer.expect(der::kSequence);
  if (!outer.done()) throw DecodeError("trailing bytes after certificate");

  DerParser fields(cert_tlv.content);
  auto tbs_tlv = fields.expect(der::kSequence);
  cert.tbs_der.assign(tbs_tlv.full.begin(), tbs_tlv.full.end());

  {
    DerParser tbs(tbs_tlv.content);
    if (tbs.peek_tag() == der::context(0, true)) tbs.next();  // version
    cert.serial = tbs.read_integer();
    auto alg_tlv = tbs.expect(der::kSequence);
    DerParser alg(alg_tlv.content);
    cert.signature_hash = hash_from_oid(alg.read_oid());
    cert.issuer = parse_name(tbs.expect(der::kSequence).content);
    auto validity_tlv = tbs.expect(der::kSequence);
    DerParser validity(validity_tlv.content);
    cert.not_before_days = validity.read_time_days();
    cert.not_after_days = validity.read_time_days();
    cert.subject = parse_name(tbs.expect(der::kSequence).content);
    cert.public_key = parse_spki(tbs.expect(der::kSequence).content);
    // Optional extensions.
    while (!tbs.done()) {
      auto tlv = tbs.next();
      if (tlv.tag != der::context(3, true)) continue;
      DerParser ext_wrap(tlv.content);
      auto exts_tlv = ext_wrap.expect(der::kSequence);
      DerParser exts(exts_tlv.content);
      while (!exts.done()) {
        auto ext_tlv = exts.expect(der::kSequence);
        DerParser ext(ext_tlv.content);
        const Oid type = ext.read_oid();
        if (ext.peek_tag() == der::kBoolean) ext.next();  // critical flag
        const Bytes value = ext.read_octet_string();
        if (type == oid::kSubjectAltName) {
          DerParser san_outer(value);
          auto names_tlv = san_outer.expect(der::kSequence);
          DerParser names(names_tlv.content);
          while (!names.done()) {
            auto name = names.next();
            if (name.tag == der::context(6, false)) {
              cert.application_uri.assign(name.content.begin(), name.content.end());
            }
          }
        }
      }
    }
  }

  auto sig_alg_tlv = fields.expect(der::kSequence);
  DerParser sig_alg(sig_alg_tlv.content);
  const HashAlgorithm outer_hash = hash_from_oid(sig_alg.read_oid());
  if (outer_hash != cert.signature_hash) throw DecodeError("signature algorithm mismatch");
  cert.signature = fields.read_bit_string();
  if (!fields.done()) throw DecodeError("trailing certificate fields");
  return cert;
}

bool x509_verify(const Certificate& cert, const RsaPublicKey& issuer_key) {
  return rsa_pkcs1v15_verify(issuer_key, cert.signature_hash, cert.tbs_der, cert.signature);
}

Bytes x509_thumbprint(std::span<const std::uint8_t> der_bytes) {
  return hash(HashAlgorithm::sha1, der_bytes);
}

std::uint64_t certificate_fingerprint64(std::span<const std::uint8_t> der_bytes) {
  const Bytes thumb = x509_thumbprint(der_bytes);
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < 8 && i < thumb.size(); ++i) {
    fp = (fp << 8) | thumb[i];
  }
  return fp;
}

}  // namespace opcua_study
