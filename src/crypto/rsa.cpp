#include "crypto/rsa.hpp"

#include <stdexcept>

namespace opcua_study {

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits, int mr_rounds) {
  if (bits < 128 || bits % 2 != 0) throw std::invalid_argument("bad RSA size");
  const Bignum e{65537};
  for (;;) {
    Bignum p = Bignum::generate_prime(rng, bits / 2, mr_rounds);
    Bignum q = Bignum::generate_prime(rng, bits / 2, mr_rounds);
    if (p == q) continue;
    if (p < q) std::swap(p, q);
    const Bignum p1 = p - Bignum{1};
    const Bignum q1 = q - Bignum{1};
    // e must be invertible mod phi.
    if (p1.mod_u32(65537) == 0 || q1.mod_u32(65537) == 0) continue;
    const Bignum n = p * q;
    if (n.bit_length() != bits) continue;
    const Bignum phi = p1 * q1;
    const Bignum d = Bignum::mod_inverse(e, phi);
    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    priv.p = p;
    priv.q = q;
    priv.dp = d % p1;
    priv.dq = d % q1;
    priv.qinv = Bignum::mod_inverse(q, p);
    return {priv.public_key(), priv};
  }
}

Bignum rsa_public_op(const RsaPublicKey& key, const Bignum& m) {
  return Bignum::mod_pow(m, key.e, key.n);
}

Bignum rsa_private_op(const RsaPrivateKey& key, const Bignum& c) {
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv*(m1-m2) mod p.
  const Bignum m1 = Bignum::mod_pow(c % key.p, key.dp, key.p);
  const Bignum m2 = Bignum::mod_pow(c % key.q, key.dq, key.q);
  Bignum diff = m1 >= m2 ? m1 - m2 : key.p - ((m2 - m1) % key.p);
  const Bignum h = (key.qinv * diff) % key.p;
  return m2 + h * key.q;
}

// ----------------------------------------------------------- signatures ----

namespace {

// DER DigestInfo prefixes (RFC 8017 §9.2 note 1).
const Bytes& digest_info_prefix(HashAlgorithm alg) {
  static const Bytes md5 = {0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48,
                            0x86, 0xf7, 0x0d, 0x02, 0x05, 0x05, 0x00, 0x04, 0x10};
  static const Bytes sha1 = {0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b,
                             0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14};
  static const Bytes sha256 = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
                               0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};
  switch (alg) {
    case HashAlgorithm::md5: return md5;
    case HashAlgorithm::sha1: return sha1;
    case HashAlgorithm::sha256: return sha256;
  }
  throw std::logic_error("bad hash");
}

Bytes emsa_pkcs1v15(HashAlgorithm alg, std::span<const std::uint8_t> message, std::size_t em_len) {
  const Bytes digest = hash(alg, message);
  const Bytes& prefix = digest_info_prefix(alg);
  const std::size_t t_len = prefix.size() + digest.size();
  if (em_len < t_len + 11) throw std::invalid_argument("RSA key too small for digest");
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), prefix.begin(), prefix.end());
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

Bytes rsa_pkcs1v15_sign(const RsaPrivateKey& key, HashAlgorithm alg,
                        std::span<const std::uint8_t> message) {
  const std::size_t k = key.modulus_bytes();
  const Bytes em = emsa_pkcs1v15(alg, message, k);
  const Bignum s = rsa_private_op(key, Bignum::from_bytes_be(em));
  return s.to_bytes_be(k);
}

bool rsa_pkcs1v15_verify(const RsaPublicKey& key, HashAlgorithm alg,
                         std::span<const std::uint8_t> message,
                         std::span<const std::uint8_t> signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const Bignum s = Bignum::from_bytes_be(signature);
  if (s >= key.n) return false;
  const Bytes em = rsa_public_op(key, s).to_bytes_be(k);
  Bytes expected;
  try {
    expected = emsa_pkcs1v15(alg, message, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return em == expected;
}

Bytes mgf1(HashAlgorithm alg, std::span<const std::uint8_t> seed, std::size_t length) {
  Bytes out;
  out.reserve(length);
  for (std::uint32_t counter = 0; out.size() < length; ++counter) {
    Bytes block(seed.begin(), seed.end());
    block.push_back(static_cast<std::uint8_t>(counter >> 24));
    block.push_back(static_cast<std::uint8_t>(counter >> 16));
    block.push_back(static_cast<std::uint8_t>(counter >> 8));
    block.push_back(static_cast<std::uint8_t>(counter));
    Bytes digest = hash(alg, block);
    const std::size_t take = std::min(digest.size(), length - out.size());
    out.insert(out.end(), digest.begin(), digest.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes rsa_pss_sign(const RsaPrivateKey& key, HashAlgorithm alg,
                   std::span<const std::uint8_t> message, Rng& rng) {
  const std::size_t h_len = digest_size(alg);
  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < 2 * h_len + 2) throw std::invalid_argument("RSA key too small for PSS");
  const Bytes m_hash = hash(alg, message);
  const Bytes salt = rng.bytes(h_len);

  Bytes m_prime(8, 0);
  m_prime.insert(m_prime.end(), m_hash.begin(), m_hash.end());
  m_prime.insert(m_prime.end(), salt.begin(), salt.end());
  const Bytes h = hash(alg, m_prime);

  Bytes db(em_len - h_len - 1, 0);
  db[db.size() - salt.size() - 1] = 0x01;
  std::copy(salt.begin(), salt.end(), db.end() - static_cast<std::ptrdiff_t>(salt.size()));

  const Bytes mask = mgf1(alg, h, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= mask[i];
  db[0] &= static_cast<std::uint8_t>(0xff >> (8 * em_len - em_bits));

  Bytes em = db;
  em.insert(em.end(), h.begin(), h.end());
  em.push_back(0xbc);
  const Bignum s = rsa_private_op(key, Bignum::from_bytes_be(em));
  return s.to_bytes_be(key.modulus_bytes());
}

bool rsa_pss_verify(const RsaPublicKey& key, HashAlgorithm alg,
                    std::span<const std::uint8_t> message,
                    std::span<const std::uint8_t> signature) {
  const std::size_t h_len = digest_size(alg);
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const Bignum s = Bignum::from_bytes_be(signature);
  if (s >= key.n) return false;
  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < 2 * h_len + 2) return false;
  Bytes em = rsa_public_op(key, s).to_bytes_be(em_len);
  if (em.back() != 0xbc) return false;

  Bytes db(em.begin(), em.end() - static_cast<std::ptrdiff_t>(h_len) - 1);
  const Bytes h(em.end() - static_cast<std::ptrdiff_t>(h_len) - 1, em.end() - 1);
  if (db[0] & ~(0xff >> (8 * em_len - em_bits))) return false;
  const Bytes mask = mgf1(alg, h, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= mask[i];
  db[0] &= static_cast<std::uint8_t>(0xff >> (8 * em_len - em_bits));

  // DB = PS(0...) || 0x01 || salt
  const std::size_t salt_off = db.size() - h_len;
  for (std::size_t i = 0; i + 1 < salt_off; ++i) {
    if (db[i] != 0) return false;
  }
  if (db[salt_off - 1] != 0x01) return false;
  const Bytes salt(db.begin() + static_cast<std::ptrdiff_t>(salt_off), db.end());

  const Bytes m_hash = hash(alg, message);
  Bytes m_prime(8, 0);
  m_prime.insert(m_prime.end(), m_hash.begin(), m_hash.end());
  m_prime.insert(m_prime.end(), salt.begin(), salt.end());
  return hash(alg, m_prime) == h;
}

// ----------------------------------------------------------- encryption ----

std::size_t rsa_pkcs1v15_max_plaintext(const RsaPublicKey& key) {
  return key.modulus_bytes() - 11;
}

std::size_t rsa_oaep_max_plaintext(const RsaPublicKey& key, HashAlgorithm alg) {
  return key.modulus_bytes() - 2 * digest_size(alg) - 2;
}

Bytes rsa_pkcs1v15_encrypt(const RsaPublicKey& key, std::span<const std::uint8_t> plaintext,
                           Rng& rng) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() > k - 11) throw std::invalid_argument("plaintext too long");
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  for (std::size_t i = 0; i < k - plaintext.size() - 3; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next());
    } while (b == 0);
    em.push_back(b);
  }
  em.push_back(0x00);
  em.insert(em.end(), plaintext.begin(), plaintext.end());
  return rsa_public_op(key, Bignum::from_bytes_be(em)).to_bytes_be(k);
}

std::optional<Bytes> rsa_pkcs1v15_decrypt(const RsaPrivateKey& key,
                                          std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const Bytes em = rsa_private_op(key, Bignum::from_bytes_be(ciphertext)).to_bytes_be(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0) ++sep;
  if (sep == em.size() || sep < 10) return std::nullopt;
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

Bytes rsa_oaep_encrypt(const RsaPublicKey& key, HashAlgorithm alg,
                       std::span<const std::uint8_t> plaintext, Rng& rng) {
  const std::size_t k = key.modulus_bytes();
  const std::size_t h_len = digest_size(alg);
  if (plaintext.size() > k - 2 * h_len - 2) throw std::invalid_argument("plaintext too long");
  const Bytes l_hash = hash(alg, std::span<const std::uint8_t>{});
  Bytes db = l_hash;
  db.insert(db.end(), k - plaintext.size() - 2 * h_len - 2, 0x00);
  db.push_back(0x01);
  db.insert(db.end(), plaintext.begin(), plaintext.end());

  const Bytes seed = rng.bytes(h_len);
  const Bytes db_mask = mgf1(alg, seed, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];
  Bytes seed_masked = seed;
  const Bytes seed_mask = mgf1(alg, db, h_len);
  for (std::size_t i = 0; i < h_len; ++i) seed_masked[i] ^= seed_mask[i];

  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), seed_masked.begin(), seed_masked.end());
  em.insert(em.end(), db.begin(), db.end());
  return rsa_public_op(key, Bignum::from_bytes_be(em)).to_bytes_be(k);
}

std::optional<Bytes> rsa_oaep_decrypt(const RsaPrivateKey& key, HashAlgorithm alg,
                                      std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  const std::size_t h_len = digest_size(alg);
  if (ciphertext.size() != k || k < 2 * h_len + 2) return std::nullopt;
  const Bytes em = rsa_private_op(key, Bignum::from_bytes_be(ciphertext)).to_bytes_be(k);
  if (em[0] != 0x00) return std::nullopt;

  Bytes seed(em.begin() + 1, em.begin() + 1 + static_cast<std::ptrdiff_t>(h_len));
  Bytes db(em.begin() + 1 + static_cast<std::ptrdiff_t>(h_len), em.end());
  const Bytes seed_mask = mgf1(alg, db, h_len);
  for (std::size_t i = 0; i < h_len; ++i) seed[i] ^= seed_mask[i];
  const Bytes db_mask = mgf1(alg, seed, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];

  const Bytes l_hash = hash(alg, std::span<const std::uint8_t>{});
  if (!std::equal(l_hash.begin(), l_hash.end(), db.begin())) return std::nullopt;
  std::size_t i = h_len;
  while (i < db.size() && db[i] == 0x00) ++i;
  if (i == db.size() || db[i] != 0x01) return std::nullopt;
  return Bytes(db.begin() + static_cast<std::ptrdiff_t>(i + 1), db.end());
}

}  // namespace opcua_study
