#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/hex.hpp"

namespace opcua_study {

Bignum::Bignum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void Bignum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_bytes_be(std::span<const std::uint8_t> bytes) {
  Bignum out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 32] |= static_cast<std::uint32_t>(bytes[i]) << (bit_pos % 32);
  }
  out.trim();
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes_be(opcua_study::from_hex(padded));
}

Bytes Bignum::to_bytes_be(std::size_t min_len) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(nbytes, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::size_t bit_pos = i * 8;
    out[len - 1 - i] = static_cast<std::uint8_t>(limbs_[bit_pos / 32] >> (bit_pos % 32));
  }
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  auto bytes = to_bytes_be();
  std::string h = opcua_study::to_hex(bytes);
  // Strip one leading zero nibble if present.
  if (h.size() > 1 && h[0] == '0') h.erase(h.begin());
  return h;
}

std::size_t Bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool Bignum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

void Bignum::set_bit(std::size_t i) {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= std::uint32_t{1} << (i % 32);
}

std::uint64_t Bignum::low_u64() const {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int Bignum::compare(const Bignum& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::operator+(const Bignum& other) const {
  Bignum out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

Bignum Bignum::operator-(const Bignum& other) const {
  if (*this < other) throw std::domain_error("Bignum underflow");
  Bignum out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow -
                        (i < other.limbs_.size() ? static_cast<std::int64_t>(other.limbs_[i]) : 0);
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

Bignum Bignum::operator*(const Bignum& other) const {
  if (is_zero() || other.is_zero()) return Bignum{};
  Bignum out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (is_zero()) return Bignum{};
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  Bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

Bignum Bignum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return Bignum{};
  const std::size_t bit_shift = bits % 32;
  Bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

Bignum::DivMod Bignum::divmod_binary(const Bignum& divisor) const {
  // Reference implementation (shift-subtract), kept as a property-test
  // oracle for the Knuth-D fast path below.
  if (divisor.is_zero()) throw std::domain_error("Bignum division by zero");
  if (*this < divisor) return {Bignum{}, *this};
  const std::size_t shift = bit_length() - divisor.bit_length();
  Bignum remainder = *this;
  Bignum quotient;
  Bignum d = divisor << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= d) {
      remainder = remainder - d;
      quotient.set_bit(i);
    }
    d = d >> 1;
  }
  quotient.trim();
  return {quotient, remainder};
}

Bignum::DivMod Bignum::divmod(const Bignum& divisor) const {
  // Knuth TAOCP vol. 2 Algorithm D (after Hacker's Delight divmnu), base 2^32.
  // Needed at scale by the batch-GCD remainder tree (§5.3 shared-prime scan),
  // where operands reach megabit sizes.
  if (divisor.is_zero()) throw std::domain_error("Bignum division by zero");
  if (*this < divisor) return {Bignum{}, *this};
  const std::size_t n = divisor.limbs_.size();
  if (n == 1) {
    const std::uint32_t d = divisor.limbs_[0];
    Bignum q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, Bignum{rem}};
  }

  const std::size_t m = limbs_.size();
  const int s = std::countl_zero(divisor.limbs_.back());
  // Normalized copies: vn has exactly n limbs with the top bit set.
  std::vector<std::uint32_t> vn(n);
  for (std::size_t i = n; i-- > 0;) {
    std::uint32_t v = divisor.limbs_[i] << s;
    if (s && i > 0) v |= divisor.limbs_[i - 1] >> (32 - s);
    vn[i] = v;
  }
  std::vector<std::uint32_t> un(m + 1, 0);
  un[m] = s ? (limbs_[m - 1] >> (32 - s)) : 0;
  for (std::size_t i = m; i-- > 0;) {
    std::uint32_t v = limbs_[i] << s;
    if (s && i > 0) v |= limbs_[i - 1] >> (32 - s);
    un[i] = v;
  }

  Bignum q;
  q.limbs_.assign(m - n + 1, 0);
  constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
  for (std::size_t j = m - n + 1; j-- > 0;) {
    const std::uint64_t num = (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply and subtract.
    std::int64_t k = 0;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i];
      t = static_cast<std::int64_t>(un[i + j]) - k - static_cast<std::int64_t>(p & 0xffffffffULL);
      un[i + j] = static_cast<std::uint32_t>(t);
      k = static_cast<std::int64_t>(p >> 32) - (t >> 32);
    }
    t = static_cast<std::int64_t>(un[j + n]) - k;
    un[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
    if (t < 0) {
      // Rare add-back step.
      --q.limbs_[j];
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry;
        un[i + j] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
      }
      un[j + n] += static_cast<std::uint32_t>(carry);
    }
  }
  q.trim();
  // Denormalize the remainder (low n limbs of un, shifted right by s).
  Bignum r;
  r.limbs_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = un[i] >> s;
    if (s && i + 1 < n + 1) v |= static_cast<std::uint64_t>(un[i + 1]) << (32 - s);
    r.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  r.trim();
  return {q, r};
}

std::uint32_t Bignum::mod_u32(std::uint32_t d) const {
  if (d == 0) throw std::domain_error("mod by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % d;
  }
  return static_cast<std::uint32_t>(rem);
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  // Binary GCD.
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  std::size_t shift = 0;
  while (!a.is_odd() && !b.is_odd()) {
    a = a >> 1;
    b = b >> 1;
    ++shift;
  }
  while (!a.is_odd()) a = a >> 1;
  while (!b.is_zero()) {
    while (!b.is_odd()) b = b >> 1;
    if (a > b) std::swap(a, b);
    b = b - a;
  }
  return a << shift;
}

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
  // Extended Euclid tracking only the coefficient of `a`, with values kept
  // in [0, m) via a sign flag.
  Bignum r0 = m, r1 = a % m;
  Bignum t0, t1 = 1;
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1 (signed)
    Bignum qt = q * t1;
    Bignum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != Bignum{1}) throw std::domain_error("no modular inverse");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

// ----------------------------------------------------------- Montgomery ----

Montgomery::Montgomery(const Bignum& odd_modulus) : n_(odd_modulus) {
  if (!n_.is_odd()) throw std::domain_error("Montgomery modulus must be odd");
  k_ = n_.limbs_.size();
  // n0_inv = -n^{-1} mod 2^32 via Newton-Hensel lifting.
  const std::uint32_t n0 = n_.limbs_[0];
  std::uint32_t x = n0;  // correct mod 2^3 already (odd)
  for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
  n0_inv_ = ~x + 1;  // -x mod 2^32
  // rr_ = R^2 mod n where R = 2^(32k): start from 1 and double 64k times.
  Bignum r = Bignum{1} << (32 * k_);
  rr_ = (r % n_);
  rr_ = (rr_ * rr_) % n_;
}

Bignum Montgomery::mul(const Bignum& a_mont, const Bignum& b_mont) const {
  // CIOS (coarsely integrated operand scanning).
  std::vector<std::uint32_t> t(k_ + 2, 0);
  const auto& a = a_mont.limbs_;
  const auto& b = b_mont.limbs_;
  const auto& n = n_.limbs_;
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t ai = i < a.size() ? a[i] : 0;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t bj = j < b.size() ? b[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[k_] + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    const std::uint32_t m = t[0] * n0_inv_;
    carry = (static_cast<std::uint64_t>(t[0]) + static_cast<std::uint64_t>(m) * n[0]) >> 32;
    for (std::size_t j = 1; j < k_; ++j) {
      const std::uint64_t cur2 = t[j] + static_cast<std::uint64_t>(m) * n[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    cur = t[k_] + carry;
    t[k_ - 1] = static_cast<std::uint32_t>(cur);
    t[k_] = t[k_ + 1] + static_cast<std::uint32_t>(cur >> 32);
    t[k_ + 1] = 0;
  }
  Bignum out;
  out.limbs_.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_ + 1));
  out.trim();
  if (out >= n_) out = out - n_;
  return out;
}

Bignum Montgomery::to_mont(const Bignum& x) const { return mul(x % n_, rr_); }

Bignum Montgomery::from_mont(const Bignum& x) const { return mul(x, Bignum{1}); }

Bignum Montgomery::pow(const Bignum& base, const Bignum& exp) const {
  if (exp.is_zero()) return Bignum{1} % n_;
  Bignum result = to_mont(Bignum{1});
  Bignum b = to_mont(base);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = mul(result, result);
    if (exp.bit(i)) result = mul(result, b);
  }
  return from_mont(result);
}

Bignum Bignum::mod_pow(const Bignum& base, const Bignum& exp, const Bignum& mod) {
  if (mod.is_zero()) throw std::domain_error("mod_pow modulus zero");
  if (mod == Bignum{1}) return Bignum{};
  if (mod.is_odd()) {
    Montgomery mont(mod);
    return mont.pow(base, exp);
  }
  // Rare path (even modulus): plain square-and-multiply with divmod.
  Bignum result{1};
  Bignum b = base % mod;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % mod;
    if (exp.bit(i)) result = (result * b) % mod;
  }
  return result;
}

// -------------------------------------------------------------- primes ----

Bignum Bignum::random_bits(Rng& rng, std::size_t bits) {
  Bignum out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next());
  const std::size_t excess = out.limbs_.size() * 32 - bits;
  if (excess) out.limbs_.back() &= (~std::uint32_t{0}) >> excess;
  out.trim();
  return out;
}

Bignum Bignum::random_below(Rng& rng, const Bignum& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below(0)");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    Bignum candidate = random_bits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

namespace {

// Primes below 8192 for trial division; computed once.
const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::uint32_t kLimit = 8192;
    std::vector<bool> sieve(kLimit, true);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint32_t j = i * 2; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}

bool mr_round(const Montgomery& mont, const Bignum& n, const Bignum& n_minus_1, const Bignum& d,
              std::size_t r, const Bignum& base) {
  Bignum x = mont.pow(base, d);
  if (x == Bignum{1} || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return true;
    if (x == Bignum{1}) return false;
  }
  return false;
}

}  // namespace

bool Bignum::is_probable_prime(const Bignum& n, int rounds, Rng& rng) {
  if (n < Bignum{2}) return false;
  for (std::uint32_t p : small_primes()) {
    if (n == Bignum{p}) return true;
    if (n.mod_u32(p) == 0) return false;
  }
  // n odd and > all small primes here.
  const Bignum n_minus_1 = n - Bignum{1};
  Bignum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  Montgomery mont(n);
  if (!mr_round(mont, n, n_minus_1, d, r, Bignum{2})) return false;
  for (int i = 0; i < rounds; ++i) {
    Bignum base = random_below(rng, n - Bignum{3}) + Bignum{2};  // [2, n-2]
    if (!mr_round(mont, n, n_minus_1, d, r, base)) return false;
  }
  return true;
}

Bignum Bignum::generate_prime(Rng& rng, std::size_t bits, int mr_rounds) {
  if (bits < 16) throw std::invalid_argument("prime too small");
  for (;;) {
    Bignum candidate = random_bits(rng, bits);
    candidate.set_bit(bits - 1);
    candidate.set_bit(bits - 2);  // keep products at full length
    candidate.set_bit(0);
    // Cheap trial division first.
    bool composite = false;
    for (std::uint32_t p : small_primes()) {
      if (candidate.mod_u32(p) == 0) {
        composite = true;
        break;
      }
    }
    if (composite) continue;
    if (is_probable_prime(candidate, mr_rounds, rng)) return candidate;
  }
}

}  // namespace opcua_study
